// Package teleadjust is a from-scratch Go reproduction of "TeleAdjusting:
// Using Path Coding and Opportunistic Forwarding for Remote Control in
// WSNs" (Liu et al., ICDCS 2015): a prefix-code addressing scheme built on
// the collection tree plus an opportunistic downward forwarding protocol
// that delivers control packets from the sink to any individual node.
//
// The repository contains the complete system the paper describes and
// everything it depends on:
//
//   - internal/core — the contribution: path coding (Algorithms 1–3),
//     prefix-match opportunistic forwarding, backtracking, and the
//     destination-unreachable rescue path;
//   - internal/{sim,radio,mac,noise,topology} — a discrete-event wireless
//     network simulator standing in for TOSSIM and the TelosB testbed:
//     CC2420-like PHY, CPM noise, low-power-listening MAC;
//   - internal/{ctp,linkest,trickle} — the Collection Tree Protocol
//     substrate;
//   - internal/{drip,rpl} — the paper's two baselines;
//   - internal/experiment — scenario builders and runners regenerating
//     every table and figure of the evaluation.
//
// The root-level benchmarks (bench_test.go) regenerate each table and
// figure; cmd/teleadjust-bench prints them as text reports. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for paper-versus-measured
// results.
package teleadjust
