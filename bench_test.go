package teleadjust

// Macro-benchmarks regenerating the paper's evaluation, one per table and
// figure. They report the headline quantity of each experiment as a custom
// benchmark metric, so `go test -bench=.` doubles as a reproduction run:
//
//	BenchmarkFig6aCodeLength      — bits/hop on Tight-grid (Fig 6a)
//	BenchmarkFig6aSparseLinear    — bits/hop on Sparse-linear (Fig 6a)
//	BenchmarkFig6bChildren        — children/node (Fig 6b)
//	BenchmarkFig6cConvergence     — p90 beacons to code (Fig 6c)
//	BenchmarkFig6dHopRatio        — reverse/CTP hop ratio (Fig 6d)
//	BenchmarkTable2IndoorCodeLength — bits at max hop, indoor (Table II)
//	BenchmarkFig7PDR*             — PDR per protocol (Fig 7)
//	BenchmarkTable3TxCount*       — transmissions/packet (Table III)
//	BenchmarkFig8ATHX             — mean ATHX/CTP-hop ratio (Fig 8)
//	BenchmarkFig9DutyCycle*       — duty cycle per protocol (Fig 9)
//	BenchmarkFig10Latency*        — mean one-way latency (Fig 10)
//	BenchmarkAblation*            — design-choice ablations (strict-path,
//	                                reserve policy, wake interval,
//	                                feedback interception)
//	BenchmarkExtensionScopedDissemination — subtree multicast extension
//
// Durations are scaled down from the paper's 3–9 hour runs; EXPERIMENTS.md
// records a full-length pass.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/experiment"
)

// benchCodingTight runs (and caches) the Tight-grid coding study.
var benchCache = struct {
	tight, sparse, indoor *experiment.CodingResult
	control               map[string]*experiment.ControlResult
}{control: make(map[string]*experiment.ControlResult)}

func codingStudy(b *testing.B, which string) *experiment.CodingResult {
	b.Helper()
	var cached **experiment.CodingResult
	var scn experiment.Scenario
	var dur time.Duration
	switch which {
	case "tight":
		cached, scn, dur = &benchCache.tight, experiment.TightGrid(1), 8*time.Minute
	case "sparse":
		cached, scn, dur = &benchCache.sparse, experiment.SparseLinear(1), 25*time.Minute
	case "indoor":
		cached, scn, dur = &benchCache.indoor, experiment.Indoor(1, false), 8*time.Minute
	default:
		b.Fatalf("unknown study %q", which)
	}
	if *cached == nil {
		res, err := experiment.RunCodingStudy(scn, dur)
		if err != nil {
			b.Fatal(err)
		}
		*cached = res
	}
	return *cached
}

func controlStudy(b *testing.B, proto experiment.Proto, wifi bool) *experiment.ControlResult {
	b.Helper()
	key := proto.String()
	if wifi {
		key += "+wifi"
	}
	if res, ok := benchCache.control[key]; ok {
		return res
	}
	opts := experiment.DefaultControlOpts()
	opts.Warmup = 6 * time.Minute
	opts.Packets = 25
	opts.Interval = 20 * time.Second
	build := func(seed uint64) experiment.Scenario {
		scn := experiment.Indoor(seed, wifi)
		scn.TuneControlTimeouts(18 * time.Second)
		return scn
	}
	res, err := experiment.RunControlStudySeeds(build, proto, opts, []uint64{1, 2})
	if err != nil {
		b.Fatal(err)
	}
	benchCache.control[key] = res
	return res
}

// avgOf returns the sample-weighted mean across a ByKey grouping.
func avgOf(res *experiment.ControlResult, latency bool) float64 {
	by := res.PDRByHop
	if latency {
		by = res.LatencyByHop
	}
	sum, n := 0.0, 0
	for _, k := range by.Keys() {
		s := by.Get(k)
		sum += s.Mean() * float64(s.Count())
		n += s.Count()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func BenchmarkFig6aCodeLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := codingStudy(b, "tight")
		keys := res.CodeLenByHop.Keys()
		if len(keys) == 0 {
			b.Fatal("no code length data")
		}
		last := keys[len(keys)-1]
		b.ReportMetric(res.CodeLenByHop.Get(last).Mean(), "bits@maxhop")
		b.ReportMetric(res.CodeLenByHop.Get(last).Mean()/float64(last), "bits/hop")
		b.ReportMetric(100*res.Converged, "%converged")
	}
}

func BenchmarkFig6aSparseLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := codingStudy(b, "sparse")
		keys := res.CodeLenByHop.Keys()
		if len(keys) == 0 {
			b.Fatal("no code length data")
		}
		last := keys[len(keys)-1]
		b.ReportMetric(res.CodeLenByHop.Get(last).Mean(), "bits@maxhop")
		b.ReportMetric(float64(last), "maxhop")
		b.ReportMetric(100*res.Converged, "%converged")
	}
}

func BenchmarkFig6bChildren(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := codingStudy(b, "tight")
		sum, n := 0.0, 0
		for _, k := range res.ChildrenByHop.Keys() {
			s := res.ChildrenByHop.Get(k)
			sum += s.Mean() * float64(s.Count())
			n += s.Count()
		}
		if n == 0 {
			b.Fatal("no children data")
		}
		b.ReportMetric(sum/float64(n), "children/node")
	}
}

func BenchmarkFig6cConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := codingStudy(b, "tight")
		b.ReportMetric(res.ConvergenceBeacons.Mean(), "beacons-mean")
		b.ReportMetric(res.ConvergenceBeacons.Percentile(90), "beacons-p90")
	}
}

func BenchmarkFig6dHopRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := codingStudy(b, "tight")
		b.ReportMetric(res.HopRatio, "rev/ctp-ratio")
	}
}

func BenchmarkTable2IndoorCodeLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := codingStudy(b, "indoor")
		keys := res.CodeLenByHop.Keys()
		if len(keys) == 0 {
			b.Fatal("no code length data")
		}
		first, last := keys[0], keys[len(keys)-1]
		b.ReportMetric(res.CodeLenByHop.Get(first).Mean(), "bits@hop1")
		b.ReportMetric(res.CodeLenByHop.Get(last).Mean(), "bits@maxhop")
	}
}

func benchPDR(b *testing.B, proto experiment.Proto, wifi bool) {
	for i := 0; i < b.N; i++ {
		res := controlStudy(b, proto, wifi)
		b.ReportMetric(100*res.PDR(), "%PDR")
	}
}

func BenchmarkFig7PDRTele(b *testing.B)       { benchPDR(b, experiment.ProtoTele, false) }
func BenchmarkFig7PDRReTele(b *testing.B)     { benchPDR(b, experiment.ProtoReTele, false) }
func BenchmarkFig7PDRDrip(b *testing.B)       { benchPDR(b, experiment.ProtoDrip, false) }
func BenchmarkFig7PDRRPL(b *testing.B)        { benchPDR(b, experiment.ProtoRPL, false) }
func BenchmarkFig7PDRTeleWifi(b *testing.B)   { benchPDR(b, experiment.ProtoTele, true) }
func BenchmarkFig7PDRReTeleWifi(b *testing.B) { benchPDR(b, experiment.ProtoReTele, true) }
func BenchmarkFig7PDRDripWifi(b *testing.B)   { benchPDR(b, experiment.ProtoDrip, true) }
func BenchmarkFig7PDRRPLWifi(b *testing.B)    { benchPDR(b, experiment.ProtoRPL, true) }

func benchTx(b *testing.B, proto experiment.Proto) {
	for i := 0; i < b.N; i++ {
		res := controlStudy(b, proto, false)
		b.ReportMetric(res.TxPerPacket, "tx/packet")
	}
}

func BenchmarkTable3TxCountTele(b *testing.B) { benchTx(b, experiment.ProtoTele) }
func BenchmarkTable3TxCountDrip(b *testing.B) { benchTx(b, experiment.ProtoDrip) }
func BenchmarkTable3TxCountRPL(b *testing.B)  { benchTx(b, experiment.ProtoRPL) }

func BenchmarkFig8ATHX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := controlStudy(b, experiment.ProtoTele, false)
		if res.ATHX.Len() == 0 {
			b.Fatal("no ATHX samples")
		}
		// Mean ratio of transmissions travelled to the receiver's CTP hop
		// count — Fig 8a's claim is that this sits at or below 1 for
		// TeleAdjusting.
		sum := 0.0
		for j := range res.ATHX.Xs {
			sum += res.ATHX.Ys[j] / res.ATHX.Xs[j]
		}
		b.ReportMetric(sum/float64(res.ATHX.Len()), "athx/ctphop")
	}
}

func benchDuty(b *testing.B, proto experiment.Proto) {
	for i := 0; i < b.N; i++ {
		res := controlStudy(b, proto, false)
		b.ReportMetric(100*res.AvgDutyCycle, "%duty")
	}
}

func BenchmarkFig9DutyCycleTele(b *testing.B) { benchDuty(b, experiment.ProtoTele) }
func BenchmarkFig9DutyCycleDrip(b *testing.B) { benchDuty(b, experiment.ProtoDrip) }
func BenchmarkFig9DutyCycleRPL(b *testing.B)  { benchDuty(b, experiment.ProtoRPL) }

func benchLatency(b *testing.B, proto experiment.Proto) {
	for i := 0; i < b.N; i++ {
		res := controlStudy(b, proto, false)
		b.ReportMetric(avgOf(res, true), "s-latency")
	}
}

func BenchmarkFig10LatencyTele(b *testing.B) { benchLatency(b, experiment.ProtoTele) }
func BenchmarkFig10LatencyDrip(b *testing.B) { benchLatency(b, experiment.ProtoDrip) }
func BenchmarkFig10LatencyRPL(b *testing.B)  { benchLatency(b, experiment.ProtoRPL) }

// BenchmarkAblationStrictPath compares opportunistic forwarding against
// the strict-path variant (the value of Section III-C2's mechanism).
func BenchmarkAblationStrictPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		strict := controlStudy(b, experiment.ProtoTeleStrict, false)
		opp := controlStudy(b, experiment.ProtoTele, false)
		b.ReportMetric(100*strict.PDR(), "%PDR-strict")
		b.ReportMetric(100*opp.PDR(), "%PDR-opportunistic")
	}
}

// BenchmarkAblationReservePolicy compares Algorithm 1 reserve policies:
// code length (cost of over-provisioning) vs space extensions (cost of
// under-provisioning).
func BenchmarkAblationReservePolicy(b *testing.B) {
	policies := []struct {
		name   string
		policy core.ReservePolicy
	}{
		{"tight", core.TightReserve},
		{"default", core.DefaultReserve},
		{"generous", core.GenerousReserve},
	}
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			scn := experiment.Indoor(1, false)
			scn.Tele.Reserve = p.policy
			res, err := experiment.RunCodingStudy(scn, 5*time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			sum, n := 0.0, 0
			for _, k := range res.CodeLenByHop.Keys() {
				s := res.CodeLenByHop.Get(k)
				sum += s.Mean() * float64(s.Count())
				n += s.Count()
			}
			if n > 0 {
				b.ReportMetric(sum/float64(n), "bits-"+p.name)
			}
		}
	}
}

// BenchmarkExtensionScopedDissemination evaluates the paper's one-to-many
// extension: reconfiguring code subtrees with scoped floods versus
// per-member unicast control.
func BenchmarkExtensionScopedDissemination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiment.DefaultScopeOpts()
		opts.Warmup = 6 * time.Minute
		opts.Operations = 2
		res, err := experiment.RunScopeStudy(experiment.Indoor(1, false), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage.Mean(), "%coverage")
		b.ReportMetric(res.TxPerMember, "tx/member-scoped")
		b.ReportMetric(res.UnicastTxPerMember, "tx/member-unicast")
	}
}

// benchLineScenario is the shared 8-node line (see experiment.Line); the
// alias keeps the benchmark call sites readable.
var benchLineScenario = experiment.Line

// BenchmarkReplicationSpeedup measures the wall-clock gain of the
// parallel replication runner: 8 independent replications of a small
// control study on one worker versus the full GOMAXPROCS pool. The merged
// reports must be byte-identical — the speedup is only valid if the
// parallel path changes nothing but wall-clock time.
func BenchmarkReplicationSpeedup(b *testing.B) {
	opts := experiment.DefaultControlOpts()
	opts.Warmup = 2 * time.Minute
	opts.Packets = 5
	opts.Interval = 16 * time.Second
	seeds := experiment.DeriveSeeds(1, 8)
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serial, err := experiment.Replicator{Workers: 1}.ControlStudy(
			benchLineScenario, experiment.ProtoTele, opts, seeds)
		if err != nil {
			b.Fatal(err)
		}
		serialDur := time.Since(t0)

		t1 := time.Now()
		par, err := experiment.Replicator{}.ControlStudy(
			benchLineScenario, experiment.ProtoTele, opts, seeds)
		if err != nil {
			b.Fatal(err)
		}
		parDur := time.Since(t1)

		var sb, pb bytes.Buffer
		experiment.WriteControlReport(&sb, serial)
		experiment.WriteControlReport(&pb, par)
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			b.Fatal("parallel replication diverged from serial")
		}
		b.ReportMetric(float64(serialDur)/float64(parDur), "x-speedup")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	}
}

// BenchmarkTelemetryOverhead measures the telemetry plane in both of its
// states on the same study BenchmarkReplicationSpeedup runs: disabled (no
// span subscriber — every hot-path Emit is rejected by a single mask test,
// the contract that keeps telemetry near-free by default) and traced (a
// Collector subscribed to the core and run layers, full span stream
// retained). Compare the two ns/op figures to see the cost of turning
// tracing on; compare "disabled" against the pre-telemetry baseline of
// BenchmarkReplicationSpeedup to see the cost of having the plane wired
// at all. BENCH_telemetry.json records a reference pass.
func BenchmarkTelemetryOverhead(b *testing.B) {
	opts := experiment.DefaultControlOpts()
	opts.Warmup = 2 * time.Minute
	opts.Packets = 5
	opts.Interval = 16 * time.Second
	seeds := experiment.DeriveSeeds(1, 4)

	bench := func(trace bool) func(*testing.B) {
		return func(b *testing.B) {
			o := opts
			o.Trace = trace
			var events int
			for i := 0; i < b.N; i++ {
				res, err := experiment.Replicator{Workers: 1}.ControlStudy(
					benchLineScenario, experiment.ProtoTele, o, seeds)
				if err != nil {
					b.Fatal(err)
				}
				if trace && len(res.Events) == 0 {
					b.Fatal("tracing enabled but no events collected")
				}
				if !trace && len(res.Events) != 0 {
					b.Fatal("events collected with tracing off")
				}
				events = len(res.Events)
			}
			if trace {
				b.ReportMetric(float64(events), "events/study")
			}
		}
	}
	b.Run("disabled", bench(false))
	b.Run("traced", bench(true))
}

// BenchmarkSinkSchedulerGoodput measures the sink command plane on the
// 100-node reference grid: a closed-loop workload at 1-way and 8-way
// concurrency. The asserted contract — 8-way goodput strictly above
// sequential — is what justifies the scheduler's existence: pipelining
// independent subtrees must buy real operation throughput, not just
// queue depth. Reported metrics are the sweep's goodput levels and the
// resulting speedup.
func BenchmarkSinkSchedulerGoodput(b *testing.B) {
	opts := experiment.DefaultThroughputOpts()
	opts.Warmup = 4 * time.Minute
	opts.Ops = 24
	opts.Concurrency = []int{1, 8}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunThroughputStudy(
			experiment.ReferenceGrid(1), experiment.ProtoTele, opts)
		if err != nil {
			b.Fatal(err)
		}
		seq, conc := res.Points[0], res.Points[1]
		if seq.OK == 0 || conc.OK == 0 {
			b.Fatalf("no completions: seq=%+v conc=%+v", seq, conc)
		}
		if conc.Goodput <= seq.Goodput {
			b.Fatalf("8-way goodput %.4f ops/s does not beat sequential %.4f ops/s",
				conc.Goodput, seq.Goodput)
		}
		b.ReportMetric(seq.Goodput, "ops/s-conc1")
		b.ReportMetric(conc.Goodput, "ops/s-conc8")
		b.ReportMetric(conc.Goodput/seq.Goodput, "x-speedup")
	}
}

// BenchmarkCmdSvcBatching measures the command service against its
// transparent baseline on the reference grid — the exact default
// `-study service -proto teleadjust` ramp, asserted at the top offered
// rate. The contract — service goodput strictly above the unbatched
// baseline at overload — is what justifies the service front-end:
// prefix batching, route-freshness caching, and delay-pacing must buy
// completed operations per second, not just queue machinery. The run is
// the full default study deliberately: per-point outcomes are one
// Poisson realization, so a cheaper reduced-op variant would pin a
// different (and meaningless) draw. The committed capture lives in
// BENCH_service.json.
func BenchmarkCmdSvcBatching(b *testing.B) {
	opts := experiment.DefaultServiceOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunServiceStudy(
			experiment.ReferenceGrid(1), experiment.ProtoTeleAdjust, opts)
		if err != nil {
			b.Fatal(err)
		}
		pt := res.Points[len(res.Points)-1]
		if pt.OKBase == 0 || pt.OKSvc == 0 {
			b.Fatalf("no completions: %+v", pt)
		}
		if pt.GoodputSvc <= pt.GoodputBase {
			b.Fatalf("service goodput %.4f ops/s does not beat baseline %.4f ops/s",
				pt.GoodputSvc, pt.GoodputBase)
		}
		if pt.Batches == 0 {
			b.Fatal("batcher flushed no multi-member carriers")
		}
		b.ReportMetric(pt.GoodputBase, "ops/s-base")
		b.ReportMetric(pt.GoodputSvc, "ops/s-svc")
		b.ReportMetric(pt.Speedup(), "x-speedup")
		b.ReportMetric(pt.CacheHitRate(), "cache-hit")
	}
}

// BenchmarkAblationWakeInterval sweeps the LPL wake-up interval (the
// paper fixes 512 ms) and reports the latency/energy trade-off.
func BenchmarkAblationWakeInterval(b *testing.B) {
	intervals := []time.Duration{256 * time.Millisecond, 512 * time.Millisecond, 1024 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		for _, wi := range intervals {
			opts := experiment.DefaultControlOpts()
			opts.Warmup = 6 * time.Minute
			opts.Packets = 15
			opts.Interval = 20 * time.Second
			build := func(seed uint64) experiment.Scenario {
				scn := experiment.Indoor(seed, false)
				scn.TuneControlTimeouts(18 * time.Second)
				scn.Mac.WakeInterval = wi
				scn.Mac.StreamSlack = wi / 8
				scn.Tele.AllocDelay = 10 * wi
				return scn
			}
			res, err := experiment.RunControlStudySeeds(build, experiment.ProtoTele, opts, []uint64{1})
			if err != nil {
				b.Fatal(err)
			}
			ms := wi.Milliseconds()
			b.ReportMetric(avgOf(res, true), fmt.Sprintf("s-latency@%dms", ms))
			b.ReportMetric(100*res.AvgDutyCycle, fmt.Sprintf("%%duty@%dms", ms))
		}
	}
}

// BenchmarkAblationFeedbackIntercept measures the Figure 5(a) refinement
// (on-path nodes intercepting overheard feedback packets) on the
// interfered channel where backtracking actually occurs.
func BenchmarkAblationFeedbackIntercept(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, intercept := range []bool{true, false} {
			opts := experiment.DefaultControlOpts()
			opts.Warmup = 6 * time.Minute
			opts.Packets = 20
			opts.Interval = 20 * time.Second
			build := func(seed uint64) experiment.Scenario {
				scn := experiment.Indoor(seed, true)
				scn.TuneControlTimeouts(18 * time.Second)
				scn.Tele.FeedbackIntercept = intercept
				return scn
			}
			res, err := experiment.RunControlStudySeeds(build, experiment.ProtoTele, opts, []uint64{1})
			if err != nil {
				b.Fatal(err)
			}
			name := "off"
			if intercept {
				name = "on"
			}
			b.ReportMetric(100*res.PDR(), "%PDR-intercept-"+name)
		}
	}
}
