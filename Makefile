GO ?= go

.PHONY: all build vet fmt-check test race fuzz bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Brief fuzz pass over each wire-codec target (the committed corpus under
# internal/core/testdata/fuzz always runs as part of plain `go test`).
FUZZTIME ?= 5s
fuzz:
	@for t in FuzzDecodeCode FuzzUnmarshalExt FuzzUnmarshalControl \
		FuzzUnmarshalFeedback FuzzUnmarshalCodeReport FuzzUnmarshalE2EAck \
		FuzzControlEncode FuzzExtEncode; do \
		$(GO) test ./internal/core/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

bench:
	$(GO) test -bench=. -benchmem .

check: build vet fmt-check test
