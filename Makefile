GO ?= go

.PHONY: all build vet fmt-check lint test test-fault race fuzz test-fuzz bench bench-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static checks only (no tests): formatting and go vet.
lint: fmt-check vet

test:
	$(GO) test ./...

# The fault-injection subsystem end to end: the plan/injector/oracle unit
# tests, the scripted recovery-path suite, and the fault-plan replication
# and churn-matrix integration tests.
test-fault:
	$(GO) test ./internal/fault/...
	$(GO) test -run 'TestRecoveryPaths' ./internal/core/
	$(GO) test -run 'TestFault|TestReboot|TestKillNode|TestLongChurn' ./internal/experiment/

race:
	$(GO) test -race ./internal/fault/... ./internal/experiment/...
	$(GO) test -race ./...

# Brief fuzz pass over each wire-codec target, the codec-allocator
# invariant target, the fault-plan parser, and the sink scheduler's subtree
# grouping key (the committed corpora under */testdata/fuzz always run as
# part of plain `go test`).
FUZZTIME ?= 5s
fuzz:
	@for t in FuzzDecodeCode FuzzUnmarshalExt FuzzUnmarshalControl \
		FuzzUnmarshalFeedback FuzzUnmarshalCodeReport FuzzUnmarshalE2EAck \
		FuzzControlEncode FuzzExtEncode FuzzExtEncodeLabels FuzzCodecLabels; do \
		$(GO) test ./internal/core/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	$(GO) test ./internal/fault/ -run '^$$' -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sink/ -run '^$$' -fuzz '^FuzzGroupKey$$' -fuzztime $(FUZZTIME)

test-fuzz: fuzz

bench:
	$(GO) test -bench=. -benchmem .

# One-iteration smoke pass over the benchmarks that assert contracts (the
# telemetry plane's disabled/traced split and the sink scheduler's
# concurrency speedup) — fast enough for CI, still failing on regression.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead|BenchmarkSinkSchedulerGoodput' -benchtime=1x .

check: build vet fmt-check test
