GO ?= go

.PHONY: all build vet fmt-check lint test test-fault race fuzz bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static checks only (no tests): formatting and go vet.
lint: fmt-check vet

test:
	$(GO) test ./...

# The fault-injection subsystem end to end: the plan/injector/oracle unit
# tests, the scripted recovery-path suite, and the fault-plan replication
# and churn-matrix integration tests.
test-fault:
	$(GO) test ./internal/fault/...
	$(GO) test -run 'TestRecoveryPaths' ./internal/core/
	$(GO) test -run 'TestFault|TestReboot|TestKillNode|TestLongChurn' ./internal/experiment/

race:
	$(GO) test -race ./internal/fault/... ./internal/experiment/...
	$(GO) test -race ./...

# Brief fuzz pass over each wire-codec target plus the fault-plan parser
# (the committed corpora under */testdata/fuzz always run as part of
# plain `go test`).
FUZZTIME ?= 5s
fuzz:
	@for t in FuzzDecodeCode FuzzUnmarshalExt FuzzUnmarshalControl \
		FuzzUnmarshalFeedback FuzzUnmarshalCodeReport FuzzUnmarshalE2EAck \
		FuzzControlEncode FuzzExtEncode; do \
		$(GO) test ./internal/core/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	$(GO) test ./internal/fault/ -run '^$$' -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem .

check: build vet fmt-check test
