GO ?= go

.PHONY: all build vet fmt-check lint test test-fault test-scale test-scale-full race fuzz test-fuzz bench bench-smoke profile profile-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static checks only (no tests): formatting and go vet.
lint: fmt-check vet

test:
	$(GO) test ./...

# The fault-injection subsystem end to end: the plan/injector/oracle unit
# tests, the scripted recovery-path suite, and the fault-plan replication
# and churn-matrix integration tests.
test-fault:
	$(GO) test ./internal/fault/...
	$(GO) test -run 'TestRecoveryPaths' ./internal/core/
	$(GO) test -run 'TestFault|TestReboot|TestKillNode|TestLongChurn' ./internal/experiment/

# The sparse-medium scaling contract under the race detector, in short
# mode: dense/sparse equivalence, the grid spatial index, per-link fault
# offsets, and the 1k-node field smoke.
test-scale:
	$(GO) test -race -short \
		-run 'Grid1k|GridIndex|SparseMatchesDense|SparseTrace|LinkOffsetStore|ReseedPCG' \
		./internal/radio/ ./internal/topology/ ./internal/experiment/

# The multi-minute 1k-node studies: 2-seed serial-vs-parallel replication
# byte-identity and the full control study on grid1k. Opt-in (they exceed
# the default per-package test timeout budget); expect ~20 minutes.
test-scale-full:
	TELEADJUST_SCALE=1 $(GO) test -v -timeout 45m -run 'TestGrid1k' ./internal/experiment/

race:
	$(GO) test -race ./internal/fault/... ./internal/experiment/...
	$(GO) test -race ./...

# Brief fuzz pass over each wire-codec target, the codec-allocator
# invariant target, the fault-plan parser, and the sink scheduler's subtree
# grouping key (the committed corpora under */testdata/fuzz always run as
# part of plain `go test`).
FUZZTIME ?= 5s
fuzz:
	@for t in FuzzDecodeCode FuzzUnmarshalExt FuzzUnmarshalControl \
		FuzzUnmarshalFeedback FuzzUnmarshalCodeReport FuzzUnmarshalE2EAck \
		FuzzControlEncode FuzzExtEncode FuzzExtEncodeLabels FuzzCodecLabels \
		FuzzBatchControlWire; do \
		$(GO) test ./internal/core/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	$(GO) test ./internal/fault/ -run '^$$' -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sink/ -run '^$$' -fuzz '^FuzzGroupKey$$' -fuzztime $(FUZZTIME)

test-fuzz: fuzz

bench:
	$(GO) test -bench=. -benchmem .

# One-iteration smoke pass over the benchmarks that assert contracts (the
# telemetry plane's disabled/traced split, the sink scheduler's
# concurrency speedup, the sparse medium's construction/per-frame
# scaling, and the windowed aggregator's alloc-free fold) — fast enough
# for CI, still failing on regression.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead|BenchmarkSinkSchedulerGoodput|BenchmarkCmdSvcBatching' -benchtime=1x .
	$(GO) test -run '^$$' -bench 'BenchmarkMediumConstruction|BenchmarkMediumScale' -benchtime=1x ./internal/radio/
	$(GO) test -run '^$$' -bench 'BenchmarkAggregatorFold' -benchmem -benchtime=1x ./internal/obs/
	$(GO) test -run '^$$' -bench 'BenchmarkSourceNext|BenchmarkSourceReadAt' -benchmem -benchtime=1x ./internal/noise/
	$(GO) test -run '^$$' -bench 'BenchmarkScheduleAndRun|BenchmarkTimerRestart' -benchmem -benchtime=1x ./internal/sim/
	$(GO) test -run 'TestScheduleAllocFree|TestSourceNextAllocFree|TestBroadcastAllocFree' ./internal/sim/ ./internal/noise/ ./internal/radio/
	$(GO) test -run 'TestBenchSpeedTrajectory' .

# Reference profile capture of the frame hot path: the 8-node line control
# study (deep tree, every hop exercised) and the 1024-node grid opening.
# Writes pprof/exec-trace captures into profiles/; inspect with
# `go tool pprof -top -cum profiles/line_cpu.pprof`. The recorded summary
# of a full pass lives in BENCH_profile.json.
PROFILE_DIR ?= profiles
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/teleadjust-sim -scenario line -study control -proto retele \
		-warmup 10m -packets 40 -interval 15s -reps 64 \
		-cpuprofile $(PROFILE_DIR)/line_cpu.pprof \
		-memprofile $(PROFILE_DIR)/line_mem.pprof \
		-exectrace $(PROFILE_DIR)/line_trace.out
	$(GO) run ./cmd/teleadjust-sim -scenario grid1k -study control -proto retele \
		-warmup 10m -packets 24 -interval 8s -progress 2m \
		-cpuprofile $(PROFILE_DIR)/grid1k_cpu.pprof \
		-memprofile $(PROFILE_DIR)/grid1k_mem.pprof

# CI-sized profile capture: a short line-scenario run proving the
# -cpuprofile/-memprofile/-exectrace plumbing produces loadable captures.
profile-smoke:
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/teleadjust-sim -scenario line -study control -proto retele \
		-warmup 90s -packets 3 -interval 16s \
		-cpuprofile $(PROFILE_DIR)/smoke_cpu.pprof \
		-memprofile $(PROFILE_DIR)/smoke_mem.pprof \
		-exectrace $(PROFILE_DIR)/smoke_trace.out
	$(GO) tool pprof -top -nodecount 3 $(PROFILE_DIR)/smoke_cpu.pprof
	$(GO) tool pprof -top -nodecount 3 -sample_index=alloc_space $(PROFILE_DIR)/smoke_mem.pprof

check: build vet fmt-check test
