package main

import (
	"strings"
	"testing"
	"time"
)

// baseConfig mirrors the flag defaults.
func baseConfig() cliConfig {
	return cliConfig{
		scenario:    "indoor",
		study:       "control",
		proto:       "tele",
		dur:         8 * time.Minute,
		warmup:      4 * time.Minute,
		packets:     40,
		interval:    15 * time.Second,
		seed:        1,
		reps:        1,
		traceOp:     -1,
		joins:       -1,
		batchWindow: -1,
		batchBits:   -1,
		maxBatch:    -1,
		cacheTTL:    -1,
		cacheCap:    -1,
		queueDepth:  -1,
		highWater:   -1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	c := baseConfig()
	if err := c.validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliConfig)
		wantSub string
	}{
		{"reps zero", func(c *cliConfig) { c.reps = 0 }, "-reps"},
		{"reps negative", func(c *cliConfig) { c.reps = -3 }, "-reps"},
		{"parallel without reps", func(c *cliConfig) { c.parallel = 4 }, "-parallel"},
		{"parallel negative", func(c *cliConfig) { c.parallel = -1 }, "-parallel"},
		{"svg with reps", func(c *cliConfig) { c.reps = 4; c.svg = "out.svg" }, "-svg"},
		{"packets zero", func(c *cliConfig) { c.packets = 0 }, "-packets"},
		{"interval zero", func(c *cliConfig) { c.interval = 0 }, "-interval"},
		{"dur zero", func(c *cliConfig) { c.dur = 0 }, "-dur"},
		{"warmup negative", func(c *cliConfig) { c.warmup = -time.Second }, "-warmup"},
		{"trace on coding", func(c *cliConfig) { c.study = "coding"; c.trace = "x.jsonl" }, "-trace"},
		{"trace-op on throughput", func(c *cliConfig) { c.study = "throughput"; c.traceOp = 3 }, "-trace-op"},
		{"progress negative", func(c *cliConfig) { c.progress = -time.Minute }, "-progress"},
		{"progress on coding", func(c *cliConfig) { c.study = "coding"; c.progress = time.Minute }, "-progress"},
		{"progress with reps", func(c *cliConfig) { c.progress = time.Minute; c.reps = 4 }, "-reps 1"},
		{"convergence on throughput", func(c *cliConfig) { c.study = "throughput"; c.convergence = "conv.txt" }, "-convergence"},
		{"trace-sample negative", func(c *cliConfig) { c.trace = "x.jsonl"; c.traceSample = -2 }, "-trace-sample"},
		{"trace-sample without trace", func(c *cliConfig) { c.traceSample = 8 }, "-trace"},
		{"workload outside throughput", func(c *cliConfig) { c.workload = "closed" }, "-workload"},
		{"rates outside throughput", func(c *cliConfig) { c.rates = "0.2" }, "-rates"},
		{"conc outside throughput", func(c *cliConfig) { c.conc = "1,2" }, "-conc"},
		{"ops outside throughput", func(c *cliConfig) { c.ops = 10 }, "-ops"},
		{"dist outside throughput", func(c *cliConfig) { c.dist = "uniform" }, "-dist"},
		{"window outside throughput", func(c *cliConfig) { c.window = 4 }, "-window"},
		{"csv outside throughput", func(c *cliConfig) { c.csv = "x.csv" }, "-csv"},
		{"rates with closed loop", func(c *cliConfig) { c.study = "throughput"; c.rates = "0.2" }, "-rates"},
		{"conc with open loop", func(c *cliConfig) {
			c.study = "throughput"
			c.workload = "open"
			c.rates = "0.2"
			c.conc = "1,2"
		}, "-conc"},
		{"open loop without rates", func(c *cliConfig) { c.study = "throughput"; c.workload = "open" }, "-rates"},
		{"unknown workload", func(c *cliConfig) { c.study = "throughput"; c.workload = "bursty" }, "workload"},
		{"unknown codec", func(c *cliConfig) { c.codec = "morse" }, "codec"},
		{"codec with drip", func(c *cliConfig) { c.codec = "huffman"; c.proto = "drip" }, "-codec"},
		{"codec with rpl", func(c *cliConfig) { c.codec = "paper"; c.proto = "rpl" }, "-codec"},
		{"codec with coding-schemes", func(c *cliConfig) { c.study = "coding-schemes"; c.codec = "paper" }, "-codecs"},
		{"codecs outside coding-schemes", func(c *cliConfig) { c.codecs = "paper,huffman" }, "-codecs"},
		{"joins outside coding-schemes", func(c *cliConfig) { c.joins = 2 }, "-joins"},
		{"joins below unset sentinel", func(c *cliConfig) { c.study = "coding-schemes"; c.joins = -2 }, "-joins"},
		{"unknown codec in codecs list", func(c *cliConfig) { c.study = "coding-schemes"; c.codecs = "paper,morse" }, "codec"},
		{"svg with coding-schemes", func(c *cliConfig) { c.study = "coding-schemes"; c.svg = "out.svg" }, "-svg"},
		{"batch-window outside service", func(c *cliConfig) { c.batchWindow = time.Second }, "-batch-window"},
		{"batch-window zero outside service", func(c *cliConfig) { c.batchWindow = 0 }, "-batch-window"},
		{"batch-bits outside service", func(c *cliConfig) { c.batchBits = 6 }, "-batch-bits"},
		{"max-batch outside service", func(c *cliConfig) { c.maxBatch = 8 }, "-max-batch"},
		{"cache-ttl outside service", func(c *cliConfig) { c.cacheTTL = time.Minute }, "-cache-ttl"},
		{"cache-cap outside service", func(c *cliConfig) { c.cacheCap = 64 }, "-cache-cap"},
		{"queue-depth outside service", func(c *cliConfig) { c.queueDepth = 32 }, "-queue-depth"},
		{"high-water outside service", func(c *cliConfig) { c.highWater = 16 }, "-high-water"},
		{"shed outside service", func(c *cliConfig) { c.shed = "delay" }, "-shed"},
		{"service flag on throughput", func(c *cliConfig) { c.study = "throughput"; c.cacheTTL = time.Minute }, "-cache-ttl"},
		{"workload with service", func(c *cliConfig) { c.study = "service"; c.workload = "open" }, "-workload"},
		{"conc with service", func(c *cliConfig) { c.study = "service"; c.conc = "1,2" }, "-conc"},
		{"unknown shed policy", func(c *cliConfig) { c.study = "service"; c.shed = "drop" }, "-shed"},
		{"max-batch below two", func(c *cliConfig) { c.study = "service"; c.maxBatch = 1 }, "-max-batch"},
		{"max-batch above wire bound", func(c *cliConfig) { c.study = "service"; c.maxBatch = 300 }, "-max-batch"},
		{"batch-bits above key width", func(c *cliConfig) { c.study = "service"; c.batchBits = 64 }, "-batch-bits"},
		{"high-water above queue-depth", func(c *cliConfig) {
			c.study = "service"
			c.queueDepth = 16
			c.highWater = 32
		}, "-high-water"},
		{"service ops negative", func(c *cliConfig) { c.study = "service"; c.ops = -1 }, "-ops"},
		{"service window negative", func(c *cliConfig) { c.study = "service"; c.window = -1 }, "-window"},
	}
	for _, tc := range cases {
		c := baseConfig()
		tc.mutate(&c)
		err := c.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestValidateAcceptsThroughputCombos(t *testing.T) {
	closed := baseConfig()
	closed.study = "throughput"
	closed.conc = "1,2,4,8"
	closed.ops = 40
	closed.dist = "hotspot"
	closed.csv = "sweep.csv"
	if err := closed.validate(); err != nil {
		t.Fatalf("closed-loop combo rejected: %v", err)
	}
	open := baseConfig()
	open.study = "throughput"
	open.workload = "open"
	open.rates = "0.1,0.2,0.4"
	open.window = 16
	open.trace = "events.jsonl"
	if err := open.validate(); err != nil {
		t.Fatalf("open-loop combo rejected: %v", err)
	}
	// Standalone -trace-op on a control study is a documented usage.
	traced := baseConfig()
	traced.traceOp = 17
	if err := traced.validate(); err != nil {
		t.Fatalf("standalone -trace-op rejected: %v", err)
	}
	replicated := baseConfig()
	replicated.reps = 4
	replicated.parallel = 4
	if err := replicated.validate(); err != nil {
		t.Fatalf("replicated run rejected: %v", err)
	}
}

func TestValidateAcceptsObservabilityCombos(t *testing.T) {
	// The full live-run surface on a single-replication control study.
	live := baseConfig()
	live.progress = time.Minute
	live.convergence = "conv.txt"
	live.trace = "ops.jsonl"
	live.traceSample = 8
	live.cpuprofile = "cpu.pprof"
	live.memprofile = "mem.pprof"
	live.exectrace = "trace.out"
	if err := live.validate(); err != nil {
		t.Fatalf("observability combo rejected: %v", err)
	}
	// The merged convergence report stays available on replicated runs —
	// only the live -progress stream is single-replication.
	merged := baseConfig()
	merged.reps = 4
	merged.convergence = "conv.txt"
	if err := merged.validate(); err != nil {
		t.Fatalf("replicated -convergence rejected: %v", err)
	}
	// Profile captures are study-agnostic.
	prof := baseConfig()
	prof.study = "coding"
	prof.cpuprofile = "cpu.pprof"
	if err := prof.validate(); err != nil {
		t.Fatalf("profiled coding study rejected: %v", err)
	}
}

func TestValidateAcceptsCodecCombos(t *testing.T) {
	// -codec with every TeleAdjusting variant.
	for _, proto := range []string{"tele", "retele", "strict", "teleadjust"} {
		c := baseConfig()
		c.proto = proto
		c.codec = "treeexplorer"
		if err := c.validate(); err != nil {
			t.Errorf("-codec with -proto %s rejected: %v", proto, err)
		}
	}
	// The coding-schemes study with its own knobs.
	s := baseConfig()
	s.study = "coding-schemes"
	s.codecs = "paper, huffman"
	s.joins = 0
	s.csv = "codecs.csv"
	if err := s.validate(); err != nil {
		t.Fatalf("coding-schemes combo rejected: %v", err)
	}
	if got := splitList(s.codecs); len(got) != 2 || got[0] != "paper" || got[1] != "huffman" {
		t.Fatalf("splitList = %v", got)
	}
	if got := splitList(""); got != nil {
		t.Fatalf("splitList(\"\") = %v, want nil", got)
	}
}

func TestParseConcurrency(t *testing.T) {
	got, err := parseConcurrency("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseConcurrency = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2"} {
		if _, err := parseConcurrency(bad); err == nil {
			t.Errorf("parseConcurrency(%q) accepted", bad)
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates("0.1,0.25, 2")
	if err != nil || len(got) != 3 || got[0] != 0.1 || got[1] != 0.25 || got[2] != 2 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-0.5", "x"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestThroughputOptsFromFlags(t *testing.T) {
	c := baseConfig()
	c.study = "throughput"
	c.workload = "open"
	c.rates = "0.1,0.4"
	c.ops = 25
	c.dist = "depth"
	c.window = 12
	c.warmup = 2 * time.Minute
	opts, err := c.throughputOpts()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Mode != "open" || len(opts.Rates) != 2 || opts.Ops != 25 ||
		opts.Dist != "depth" || opts.Window != 12 || opts.Warmup != 2*time.Minute {
		t.Fatalf("opts = %+v", opts)
	}
	// Defaults survive when the knobs are left unset.
	d := baseConfig()
	d.study = "throughput"
	opts, err = d.throughputOpts()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Mode != "closed" || len(opts.Concurrency) != 4 || opts.Ops != 40 {
		t.Fatalf("default opts = %+v", opts)
	}
}

func TestValidateAcceptsServiceCombos(t *testing.T) {
	full := baseConfig()
	full.study = "service"
	full.rates = "0.5,2.0"
	full.ops = 120
	full.dist = "hotspot"
	full.window = 16
	full.csv = "svc.csv"
	full.trace = "svc.jsonl"
	full.batchWindow = 2 * time.Second
	full.batchBits = 6
	full.maxBatch = 8
	full.cacheTTL = 5 * time.Minute
	full.cacheCap = 256
	full.queueDepth = 64
	full.highWater = 48
	full.shed = "delay"
	if err := full.validate(); err != nil {
		t.Fatalf("full service combo rejected: %v", err)
	}
	// Explicit zeros disable features without tripping validation: this is
	// the transparent configuration whose trace replays the open-loop
	// throughput study.
	transparent := baseConfig()
	transparent.study = "service"
	transparent.batchWindow = 0
	transparent.cacheTTL = 0
	transparent.queueDepth = 0
	transparent.highWater = 0
	if err := transparent.validate(); err != nil {
		t.Fatalf("transparent service combo rejected: %v", err)
	}
	bare := baseConfig()
	bare.study = "service"
	if err := bare.validate(); err != nil {
		t.Fatalf("bare service study rejected: %v", err)
	}
}

func TestServiceOptsFromFlags(t *testing.T) {
	c := baseConfig()
	c.study = "service"
	c.rates = "0.25,1.5"
	c.ops = 60
	c.dist = "uniform"
	c.window = 24
	c.warmup = 3 * time.Minute
	c.batchWindow = 4 * time.Second
	c.batchBits = 8
	c.maxBatch = 12
	c.cacheTTL = time.Minute
	c.cacheCap = 32
	c.queueDepth = 20
	c.highWater = 10
	c.shed = "delay"
	opts, err := c.serviceOpts()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Rates) != 2 || opts.Rates[1] != 1.5 || opts.Ops != 60 ||
		opts.Dist != "uniform" || opts.Window != 24 || opts.Warmup != 3*time.Minute {
		t.Fatalf("opts = %+v", opts)
	}
	if opts.BatchWindow != 4*time.Second || opts.BatchBits != 8 || opts.MaxBatch != 12 {
		t.Fatalf("batch knobs = %+v", opts)
	}
	if opts.CacheTTL != time.Minute || opts.CacheCap != 32 {
		t.Fatalf("cache knobs = %+v", opts)
	}
	if opts.QueueDepth != 20 || opts.HighWater != 10 || opts.Policy != "delay" {
		t.Fatalf("backpressure knobs = %+v", opts)
	}
	if opts.Transparent() {
		t.Fatal("fully configured service reported transparent")
	}
	// Defaults survive when the knobs are left unset; explicit zeros
	// disable every feature and make the study transparent.
	d := baseConfig()
	d.study = "service"
	opts, err = d.serviceOpts()
	if err != nil {
		t.Fatal(err)
	}
	if opts.BatchWindow != 500*time.Millisecond || opts.MaxBatch != 16 || opts.Policy != "delay" {
		t.Fatalf("default opts = %+v", opts)
	}
	z := baseConfig()
	z.study = "service"
	z.batchWindow = 0
	z.cacheTTL = 0
	z.queueDepth = 0
	z.highWater = 0
	opts, err = z.serviceOpts()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Transparent() {
		t.Fatalf("zeroed service opts not transparent: %+v", opts)
	}
}
