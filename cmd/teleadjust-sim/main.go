// Command teleadjust-sim runs a single TeleAdjusting simulation scenario
// and prints its metrics: either a coding study (path-code length,
// convergence, reverse hops) or a control study (PDR, latency, duty cycle,
// transmission counts) for one protocol. With -reps > 1 the study is
// replicated over consecutive seeds and the replications run concurrently
// on -parallel workers; the merged result is identical to a serial run.
//
// Control studies can capture the unified telemetry stream: -trace
// exports every operation-lifecycle event as JSONL (replication-merged,
// byte-identical regardless of -parallel), and -trace-op renders the
// per-operation span trees for one destination node to stdout.
//
// Examples:
//
//	teleadjust-sim -scenario indoor -study control -proto tele -packets 40
//	teleadjust-sim -scenario tight -study coding -dur 8m
//	teleadjust-sim -scenario indoor -study control -proto rpl -reps 4 -parallel 4
//	teleadjust-sim -scenario indoor -study control -proto retele -trace ops.jsonl
//	teleadjust-sim -scenario indoor -study control -proto retele -trace-op 17
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"teleadjust/internal/experiment"
	"teleadjust/internal/fault"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// writeTrace exports the collected event stream as JSONL.
func writeTrace(path string, events []telemetry.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "teleadjust-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario  = flag.String("scenario", "indoor", "scenario: tight, sparse, indoor, indoor-wifi")
		study     = flag.String("study", "control", "study: coding, control, scope")
		proto     = flag.String("proto", "tele", "protocol: tele, retele, strict, teleadjust, drip, rpl")
		dur       = flag.Duration("dur", 8*time.Minute, "coding study duration")
		warmup    = flag.Duration("warmup", 4*time.Minute, "control study warmup")
		packets   = flag.Int("packets", 40, "control packets to send")
		interval  = flag.Duration("interval", 15*time.Second, "inter-packet interval")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		reps      = flag.Int("reps", 1, "independent replications over consecutive seeds")
		parallel  = flag.Int("parallel", 0, "replication workers (0 = GOMAXPROCS)")
		tracePath = flag.String("trace", "", "write the telemetry event stream as JSONL to this file (control study)")
		traceOp   = flag.Int("trace-op", -1, "render operation span traces for this destination node (control study)")
		svgPath   = flag.String("svg", "", "write the converged topology/tree/codes as SVG to this file")
		planPath  = flag.String("faultplan", "", "JSON fault plan scheduled on every replication (see EXPERIMENTS.md)")
	)
	flag.Parse()

	tracing := *tracePath != "" || *traceOp >= 0
	if *reps < 1 {
		return fmt.Errorf("-reps must be >= 1")
	}
	if *reps > 1 && *svgPath != "" {
		// The SVG hook instruments one network instance; with concurrent
		// replications there is no single network to tap. The telemetry
		// trace has no such restriction: each replication collects on its
		// own bus and the merge is deterministic in seed order.
		return fmt.Errorf("-svg requires -reps 1")
	}
	if tracing && *study != "control" {
		return fmt.Errorf("-trace and -trace-op apply to control studies only")
	}
	var plan *fault.Plan
	if *planPath != "" {
		p, err := fault.LoadPlan(*planPath)
		if err != nil {
			return err
		}
		plan = p
	}
	scn, err := pickScenario(*scenario, *seed)
	if err != nil {
		return err
	}
	scn.Fault = plan
	var builtNet *experiment.Net
	prevHook := scn.OnNetBuilt
	scn.OnNetBuilt = func(net *experiment.Net) {
		builtNet = net
		if prevHook != nil {
			prevHook(net)
		}
	}
	if *svgPath != "" {
		defer func() {
			if builtNet == nil {
				return
			}
			f, err := os.Create(*svgPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "svg:", err)
				return
			}
			defer f.Close()
			if err := builtNet.WriteTopologySVG(f); err != nil {
				fmt.Fprintln(os.Stderr, "svg:", err)
				return
			}
			fmt.Printf("topology SVG written to %s\n", *svgPath)
		}()
	}

	seeds := make([]uint64, *reps)
	for i := range seeds {
		seeds[i] = *seed + uint64(i)
	}
	build := func(s uint64) experiment.Scenario {
		b, _ := pickScenario(*scenario, s)
		b.Fault = plan
		return b
	}
	rep := experiment.Replicator{Workers: *parallel}

	switch *study {
	case "coding":
		if *reps == 1 {
			res, err := experiment.RunCodingStudy(scn, *dur)
			if err != nil {
				return err
			}
			experiment.WriteCodingReport(os.Stdout, res)
			return nil
		}
		res, err := rep.CodingStudy(build, *dur, seeds)
		if err != nil {
			return err
		}
		experiment.WriteCodingReport(os.Stdout, res)
	case "control":
		p, err := pickProto(*proto)
		if err != nil {
			return err
		}
		opts := experiment.DefaultControlOpts()
		opts.Warmup = *warmup
		opts.Packets = *packets
		opts.Interval = *interval
		opts.Trace = tracing
		var res *experiment.ControlResult
		if *reps == 1 {
			res, err = experiment.RunControlStudy(scn, p, opts)
		} else {
			res, err = rep.ControlStudy(build, p, opts, seeds)
		}
		if err != nil {
			return err
		}
		experiment.WriteControlReport(os.Stdout, res)
		if *tracePath != "" {
			if err := writeTrace(*tracePath, res.Events); err != nil {
				return err
			}
			fmt.Printf("\n%d telemetry events written to %s\n", len(res.Events), *tracePath)
		}
		if *traceOp >= 0 {
			dst := radio.NodeID(*traceOp)
			fmt.Printf("\n--- operation spans to node %d ---\n", dst)
			telemetry.RenderOpSpans(os.Stdout, res.Events, func(s *telemetry.OpSpan) bool {
				return s.Dst == dst
			})
		}
	case "scope":
		if *reps > 1 {
			return fmt.Errorf("the scope study does not support -reps")
		}
		opts := experiment.DefaultScopeOpts()
		opts.Warmup = *warmup
		res, err := experiment.RunScopeStudy(scn, opts)
		if err != nil {
			return err
		}
		experiment.WriteScopeReport(os.Stdout, res)
	default:
		return fmt.Errorf("unknown study %q", *study)
	}
	return nil
}

func pickScenario(name string, seed uint64) (experiment.Scenario, error) {
	switch name {
	case "tight":
		return experiment.TightGrid(seed), nil
	case "sparse":
		return experiment.SparseLinear(seed), nil
	case "indoor":
		return experiment.Indoor(seed, false), nil
	case "indoor-wifi":
		return experiment.Indoor(seed, true), nil
	}
	return experiment.Scenario{}, fmt.Errorf("unknown scenario %q", name)
}

func pickProto(name string) (experiment.Proto, error) {
	switch name {
	case "tele":
		return experiment.ProtoTele, nil
	case "retele":
		return experiment.ProtoReTele, nil
	case "strict":
		return experiment.ProtoTeleStrict, nil
	case "teleadjust":
		return experiment.ProtoTeleAdjust, nil
	case "drip":
		return experiment.ProtoDrip, nil
	case "rpl":
		return experiment.ProtoRPL, nil
	}
	return experiment.ProtoNone, fmt.Errorf("unknown protocol %q", name)
}
