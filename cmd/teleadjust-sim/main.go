// Command teleadjust-sim runs a single TeleAdjusting simulation scenario
// and prints its metrics: either a coding study (path-code length,
// convergence, reverse hops) or a control study (PDR, latency, duty cycle,
// transmission counts) for one protocol. With -reps > 1 the study is
// replicated over consecutive seeds and the replications run concurrently
// on -parallel workers; the merged result is identical to a serial run.
//
// Examples:
//
//	teleadjust-sim -scenario indoor -study control -proto tele -packets 40
//	teleadjust-sim -scenario tight -study coding -dur 8m
//	teleadjust-sim -scenario indoor -study control -proto rpl -reps 4 -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"teleadjust/internal/experiment"
	"teleadjust/internal/fault"
	"teleadjust/internal/radio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "teleadjust-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "indoor", "scenario: tight, sparse, indoor, indoor-wifi")
		study    = flag.String("study", "control", "study: coding, control, scope")
		proto    = flag.String("proto", "tele", "protocol: tele, retele, strict, teleadjust, drip, rpl")
		dur      = flag.Duration("dur", 8*time.Minute, "coding study duration")
		warmup   = flag.Duration("warmup", 4*time.Minute, "control study warmup")
		packets  = flag.Int("packets", 40, "control packets to send")
		interval = flag.Duration("interval", 15*time.Second, "inter-packet interval")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		reps     = flag.Int("reps", 1, "independent replications over consecutive seeds")
		parallel = flag.Int("parallel", 0, "replication workers (0 = GOMAXPROCS)")
		trace    = flag.Int("trace", 0, "dump the last N medium events (tx/rx) after the run")
		svgPath  = flag.String("svg", "", "write the converged topology/tree/codes as SVG to this file")
		planPath = flag.String("faultplan", "", "JSON fault plan scheduled on every replication (see EXPERIMENTS.md)")
	)
	flag.Parse()

	if *reps < 1 {
		return fmt.Errorf("-reps must be >= 1")
	}
	if *reps > 1 && (*trace > 0 || *svgPath != "") {
		// The trace ring and SVG hooks instrument one network instance;
		// with concurrent replications there is no single network to tap.
		return fmt.Errorf("-trace and -svg require -reps 1")
	}
	var plan *fault.Plan
	if *planPath != "" {
		p, err := fault.LoadPlan(*planPath)
		if err != nil {
			return err
		}
		plan = p
	}
	scn, err := pickScenario(*scenario, *seed)
	if err != nil {
		return err
	}
	scn.Fault = plan
	var ring *radio.TraceRing
	var builtNet *experiment.Net
	prevHook := scn.OnNetBuilt
	scn.OnNetBuilt = func(net *experiment.Net) {
		builtNet = net
		if prevHook != nil {
			prevHook(net)
		}
		if *trace > 0 {
			ring = radio.NewTraceRing(*trace)
			net.Medium.SetTraceFn(ring.Record)
		}
	}
	if *trace > 0 {
		defer func() {
			if ring == nil {
				return
			}
			fmt.Printf("\n--- last %d medium events ---\n", *trace)
			_ = ring.Dump(os.Stdout)
		}()
	}
	if *svgPath != "" {
		defer func() {
			if builtNet == nil {
				return
			}
			f, err := os.Create(*svgPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "svg:", err)
				return
			}
			defer f.Close()
			if err := builtNet.WriteTopologySVG(f); err != nil {
				fmt.Fprintln(os.Stderr, "svg:", err)
				return
			}
			fmt.Printf("topology SVG written to %s\n", *svgPath)
		}()
	}

	seeds := make([]uint64, *reps)
	for i := range seeds {
		seeds[i] = *seed + uint64(i)
	}
	build := func(s uint64) experiment.Scenario {
		b, _ := pickScenario(*scenario, s)
		b.Fault = plan
		return b
	}
	rep := experiment.Replicator{Workers: *parallel}

	switch *study {
	case "coding":
		if *reps == 1 {
			res, err := experiment.RunCodingStudy(scn, *dur)
			if err != nil {
				return err
			}
			experiment.WriteCodingReport(os.Stdout, res)
			return nil
		}
		res, err := rep.CodingStudy(build, *dur, seeds)
		if err != nil {
			return err
		}
		experiment.WriteCodingReport(os.Stdout, res)
	case "control":
		p, err := pickProto(*proto)
		if err != nil {
			return err
		}
		opts := experiment.DefaultControlOpts()
		opts.Warmup = *warmup
		opts.Packets = *packets
		opts.Interval = *interval
		if *reps == 1 {
			res, err := experiment.RunControlStudy(scn, p, opts)
			if err != nil {
				return err
			}
			experiment.WriteControlReport(os.Stdout, res)
			return nil
		}
		res, err := rep.ControlStudy(build, p, opts, seeds)
		if err != nil {
			return err
		}
		experiment.WriteControlReport(os.Stdout, res)
	case "scope":
		if *reps > 1 {
			return fmt.Errorf("the scope study does not support -reps")
		}
		opts := experiment.DefaultScopeOpts()
		opts.Warmup = *warmup
		res, err := experiment.RunScopeStudy(scn, opts)
		if err != nil {
			return err
		}
		experiment.WriteScopeReport(os.Stdout, res)
	default:
		return fmt.Errorf("unknown study %q", *study)
	}
	return nil
}

func pickScenario(name string, seed uint64) (experiment.Scenario, error) {
	switch name {
	case "tight":
		return experiment.TightGrid(seed), nil
	case "sparse":
		return experiment.SparseLinear(seed), nil
	case "indoor":
		return experiment.Indoor(seed, false), nil
	case "indoor-wifi":
		return experiment.Indoor(seed, true), nil
	}
	return experiment.Scenario{}, fmt.Errorf("unknown scenario %q", name)
}

func pickProto(name string) (experiment.Proto, error) {
	switch name {
	case "tele":
		return experiment.ProtoTele, nil
	case "retele":
		return experiment.ProtoReTele, nil
	case "strict":
		return experiment.ProtoTeleStrict, nil
	case "teleadjust":
		return experiment.ProtoTeleAdjust, nil
	case "drip":
		return experiment.ProtoDrip, nil
	case "rpl":
		return experiment.ProtoRPL, nil
	}
	return experiment.ProtoNone, fmt.Errorf("unknown protocol %q", name)
}
