// Command teleadjust-sim runs a single TeleAdjusting simulation scenario
// and prints its metrics: a coding study (path-code length, convergence,
// reverse hops), a control study (PDR, latency, duty cycle, transmission
// counts) for one protocol, a scoped-dissemination study, a throughput
// study sweeping offered control load through the sink command plane, or
// a coding-schemes study comparing tree-coding codecs side by side, or a
// command-service study ramping open-loop load through the persistent
// sink front-end (prefix batching, route-freshness cache, backpressure)
// against a transparent baseline.
// With -reps > 1 the study is replicated over consecutive seeds and the
// replications run concurrently on -parallel workers; the merged result
// is identical to a serial run.
//
// TeleAdjusting variants accept -codec to swap the tree-coding scheme
// (paper, treeexplorer, huffman); the coding-schemes study instead sweeps
// the -codecs list over one or more -scenario entries (comma-separated).
//
// Control studies can capture the unified telemetry stream: -trace
// exports every operation-lifecycle event as JSONL (replication-merged,
// byte-identical regardless of -parallel), -trace-sample thins that
// export to every 1-in-N operation (whole spans kept) so traces stay
// usable on 1k-node fields, and -trace-op renders the per-operation span
// trees for one destination node to stdout. Throughput studies export
// the sink-layer command-plane events through -trace and the per-point
// sweep through -csv.
//
// The observability surface watches a run converge: -progress prints one
// live windowed status line per period to stderr (nodes coded/reporting,
// ops issued/resolved/in flight, retries, radio load), and -convergence
// writes the full depth-binned windowed report at the end. The merged
// -convergence report from -reps > 1 is byte-identical regardless of
// -parallel. -cpuprofile, -memprofile and -exectrace bracket the whole
// run with pprof/runtime-trace captures (see make profile).
//
// Examples:
//
//	teleadjust-sim -scenario indoor -study control -proto tele -packets 40
//	teleadjust-sim -scenario tight -study coding -dur 8m
//	teleadjust-sim -scenario indoor -study control -proto rpl -reps 4 -parallel 4
//	teleadjust-sim -scenario indoor -study control -proto retele -trace ops.jsonl
//	teleadjust-sim -scenario indoor -study control -proto retele -trace-op 17
//	teleadjust-sim -scenario grid1k -study control -proto retele -progress 1m -convergence conv.txt
//	teleadjust-sim -scenario grid1k -study control -proto retele -trace ops.jsonl -trace-sample 8
//	teleadjust-sim -scenario line -study control -proto retele -cpuprofile cpu.pprof -memprofile mem.pprof
//	teleadjust-sim -scenario refgrid -study throughput -conc 1,2,4,8 -ops 40
//	teleadjust-sim -scenario refgrid -study throughput -workload open -rates 0.1,0.2,0.4 -csv sweep.csv
//	teleadjust-sim -scenario refgrid -study service -rates 0.5,1.8 -dist hotspot -csv svc.csv
//	teleadjust-sim -scenario refgrid -study service -queue-depth 32 -high-water 24 -shed delay
//	teleadjust-sim -scenario indoor -study control -proto retele -codec huffman
//	teleadjust-sim -scenario refgrid,sparse -study coding-schemes -csv codecs.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/experiment"
	"teleadjust/internal/fault"
	"teleadjust/internal/obs"
	"teleadjust/internal/prof"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// writeTrace exports the collected event stream as JSONL.
func writeTrace(path string, events []telemetry.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cliConfig carries every parsed flag; validate checks the mutually
// dependent combinations before any simulation work starts.
type cliConfig struct {
	scenario string
	study    string
	proto    string
	codec    string
	codecs   string
	joins    int
	dur      time.Duration
	warmup   time.Duration
	packets  int
	interval time.Duration
	seed     uint64
	reps     int
	parallel int
	trace    string
	traceOp  int
	svg      string
	plan     string

	// Observability surface: the live progress period, the convergence
	// report file, and the 1-in-N trace sampling factor.
	progress    time.Duration
	convergence string
	traceSample int

	// Profiling capture harness outputs ("" = off).
	cpuprofile string
	memprofile string
	exectrace  string

	// Throughput-study knobs ("" / 0 = not specified).
	workload string
	rates    string
	conc     string
	ops      int
	dist     string
	window   int
	csv      string

	// Command-service study knobs (-study service); -1 / "" = not
	// specified, explicit 0 disables the feature.
	batchWindow time.Duration
	batchBits   int
	maxBatch    int
	cacheTTL    time.Duration
	cacheCap    int
	queueDepth  int
	highWater   int
	shed        string
}

// validate fails fast on flag combinations that would otherwise be
// silently ignored or crash mid-run.
func (c *cliConfig) validate() error {
	if c.reps < 1 {
		return fmt.Errorf("-reps must be >= 1")
	}
	if c.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0")
	}
	if c.parallel > 0 && c.reps == 1 {
		return fmt.Errorf("-parallel only applies to replicated runs: combine it with -reps > 1")
	}
	if c.reps > 1 && c.svg != "" {
		// The SVG hook instruments one network instance; with concurrent
		// replications there is no single network to tap. The telemetry
		// trace has no such restriction: each replication collects on its
		// own bus and the merge is deterministic in seed order.
		return fmt.Errorf("-svg requires -reps 1")
	}
	if c.packets < 1 {
		return fmt.Errorf("-packets must be >= 1")
	}
	if c.interval <= 0 {
		return fmt.Errorf("-interval must be positive")
	}
	if c.dur <= 0 {
		return fmt.Errorf("-dur must be positive")
	}
	if c.warmup < 0 {
		return fmt.Errorf("-warmup must be >= 0")
	}
	throughput := c.study == "throughput"
	schemes := c.study == "coding-schemes"
	service := c.study == "service"
	if !service {
		for _, sf := range []struct {
			name string
			set  bool
		}{
			{"-batch-window", c.batchWindow >= 0},
			{"-batch-bits", c.batchBits >= 0},
			{"-max-batch", c.maxBatch >= 0},
			{"-cache-ttl", c.cacheTTL >= 0},
			{"-cache-cap", c.cacheCap >= 0},
			{"-queue-depth", c.queueDepth >= 0},
			{"-high-water", c.highWater >= 0},
			{"-shed", c.shed != ""},
		} {
			if sf.set {
				return fmt.Errorf("%s applies to command-service studies only (-study service)", sf.name)
			}
		}
	}
	if c.trace != "" && c.study != "control" && !throughput && !service {
		return fmt.Errorf("-trace applies to control, throughput, and service studies only")
	}
	if c.traceOp >= 0 && c.study != "control" {
		return fmt.Errorf("-trace-op applies to control studies only")
	}
	if c.progress < 0 {
		return fmt.Errorf("-progress must be a positive period")
	}
	if c.progress > 0 && c.study != "control" {
		return fmt.Errorf("-progress applies to control studies only")
	}
	if c.progress > 0 && c.reps > 1 {
		// Replications run concurrently on the worker pool; their live
		// lines would interleave nondeterministically. The merged
		// -convergence report has no such restriction.
		return fmt.Errorf("-progress requires -reps 1")
	}
	if c.convergence != "" && c.study != "control" {
		return fmt.Errorf("-convergence applies to control studies only")
	}
	if c.traceSample < 0 {
		return fmt.Errorf("-trace-sample must be >= 1 (export every 1-in-N operation)")
	}
	if c.traceSample > 0 && c.trace == "" {
		return fmt.Errorf("-trace-sample requires -trace")
	}
	if c.codec != "" {
		if schemes {
			return fmt.Errorf("-codec conflicts with -study coding-schemes: use -codecs to pick the compared schemes")
		}
		if _, err := core.CodecByName(c.codec); err != nil {
			return err
		}
		if c.proto == "drip" || c.proto == "rpl" {
			return fmt.Errorf("-codec applies to TeleAdjusting variants only, not -proto %s", c.proto)
		}
	}
	if c.codecs != "" && !schemes {
		return fmt.Errorf("-codecs applies to coding-schemes studies only (-study coding-schemes)")
	}
	if c.joins >= 0 && !schemes {
		return fmt.Errorf("-joins applies to coding-schemes studies only (-study coding-schemes)")
	}
	if c.joins < -1 { // -1 is the unset default
		return fmt.Errorf("-joins must be >= 0")
	}
	if schemes {
		for _, name := range splitList(c.codecs) {
			if _, err := core.CodecByName(name); err != nil {
				return err
			}
		}
		if c.svg != "" {
			// The study builds one network per (scenario, codec) cell; no
			// single topology represents the run.
			return fmt.Errorf("-svg does not apply to coding-schemes studies")
		}
		return nil
	}
	if service {
		if c.workload != "" {
			return fmt.Errorf("-workload does not apply to service studies: the command service is always driven open-loop")
		}
		if c.conc != "" {
			return fmt.Errorf("-conc does not apply to service studies: sweep offered load with -rates instead")
		}
		switch c.shed {
		case "", "reject", "delay":
		default:
			return fmt.Errorf("unknown -shed policy %q: reject or delay", c.shed)
		}
		if c.batchBits > 56 {
			return fmt.Errorf("-batch-bits must be <= 56 (prefix key width)")
		}
		if c.maxBatch >= 0 && (c.maxBatch < 2 || c.maxBatch > core.MaxBatchMembers) {
			return fmt.Errorf("-max-batch must be between 2 and %d (wire member bound)", core.MaxBatchMembers)
		}
		if c.queueDepth > 0 && c.highWater > c.queueDepth {
			return fmt.Errorf("-high-water must not exceed -queue-depth: the hard bound would shed before the soft one engages")
		}
		if c.ops < 0 {
			return fmt.Errorf("-ops must be >= 1")
		}
		if c.window < 0 {
			return fmt.Errorf("-window must be >= 1")
		}
		return nil
	}
	if !throughput {
		for flagName, set := range map[string]bool{
			"-workload": c.workload != "",
			"-rates":    c.rates != "",
			"-conc":     c.conc != "",
			"-ops":      c.ops != 0,
			"-dist":     c.dist != "",
			"-window":   c.window != 0,
			"-csv":      c.csv != "",
		} {
			if set {
				switch flagName {
				case "-csv":
					return fmt.Errorf("-csv applies to throughput, service, and coding-schemes studies only")
				case "-workload", "-conc":
					return fmt.Errorf("%s applies to throughput studies only (-study throughput)", flagName)
				default:
					return fmt.Errorf("%s applies to throughput and service studies only", flagName)
				}
			}
		}
		return nil
	}
	switch c.workload {
	case "", "closed":
		if c.rates != "" {
			return fmt.Errorf("-rates applies to open-loop workloads only (-workload open)")
		}
	case "open":
		if c.conc != "" {
			return fmt.Errorf("-conc applies to closed-loop workloads only (-workload closed)")
		}
		if c.rates == "" {
			return fmt.Errorf("an open-loop workload requires -rates (offered ops/s, comma-separated)")
		}
	default:
		return fmt.Errorf("unknown workload mode %q: closed or open", c.workload)
	}
	if c.ops < 0 {
		return fmt.Errorf("-ops must be >= 1")
	}
	if c.window < 0 {
		return fmt.Errorf("-window must be >= 1")
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseConcurrency parses a comma-separated list of positive ints.
func parseConcurrency(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad concurrency level %q: want positive integers", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRates parses a comma-separated list of positive rates (ops/s).
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q: want positive ops/s", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// serviceOpts assembles command-service study options from validated
// flags; -1 sentinels keep the study defaults, explicit zeros disable.
func (c *cliConfig) serviceOpts() (experiment.ServiceOpts, error) {
	opts := experiment.DefaultServiceOpts()
	opts.Warmup = c.warmup
	opts.Trace = c.trace != ""
	if c.ops > 0 {
		opts.Ops = c.ops
	}
	if c.dist != "" {
		opts.Dist = c.dist
	}
	if c.window > 0 {
		opts.Window = c.window
	}
	if c.rates != "" {
		rates, err := parseRates(c.rates)
		if err != nil {
			return opts, err
		}
		opts.Rates = rates
	}
	if c.batchWindow >= 0 {
		opts.BatchWindow = c.batchWindow
	}
	if c.batchBits >= 0 {
		opts.BatchBits = c.batchBits
	}
	if c.maxBatch >= 0 {
		opts.MaxBatch = c.maxBatch
	}
	if c.cacheTTL >= 0 {
		opts.CacheTTL = c.cacheTTL
	}
	if c.cacheCap >= 0 {
		opts.CacheCap = c.cacheCap
	}
	if c.queueDepth >= 0 {
		opts.QueueDepth = c.queueDepth
	}
	if c.highWater >= 0 {
		opts.HighWater = c.highWater
	}
	if c.shed != "" {
		opts.Policy = c.shed
	}
	return opts, nil
}

// throughputOpts assembles the study options from validated flags.
func (c *cliConfig) throughputOpts() (experiment.ThroughputOpts, error) {
	opts := experiment.DefaultThroughputOpts()
	opts.Warmup = c.warmup
	opts.Trace = c.trace != ""
	if c.workload != "" {
		opts.Mode = c.workload
	}
	if c.ops > 0 {
		opts.Ops = c.ops
	}
	if c.dist != "" {
		opts.Dist = c.dist
	}
	if c.window > 0 {
		opts.Window = c.window
	}
	if c.conc != "" {
		levels, err := parseConcurrency(c.conc)
		if err != nil {
			return opts, err
		}
		opts.Concurrency = levels
	}
	if c.rates != "" {
		rates, err := parseRates(c.rates)
		if err != nil {
			return opts, err
		}
		opts.Rates = rates
	}
	return opts, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "teleadjust-sim:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var c cliConfig
	flag.StringVar(&c.scenario, "scenario", "indoor", "scenario: tight, sparse, indoor, indoor-wifi, refgrid, grid1k, line")
	flag.StringVar(&c.study, "study", "control", "study: coding, control, scope, throughput, service, coding-schemes")
	flag.StringVar(&c.proto, "proto", "tele", "protocol: tele, retele, strict, teleadjust, drip, rpl")
	flag.StringVar(&c.codec, "codec", "", "tree-coding scheme for TeleAdjusting variants: "+strings.Join(core.CodecNames(), ", "))
	flag.StringVar(&c.codecs, "codecs", "", "coding-schemes study: comma-separated codecs to compare (default all)")
	flag.IntVar(&c.joins, "joins", -1, "coding-schemes study: mid-probe crash-reboots per codec (default 3)")
	flag.DurationVar(&c.dur, "dur", 8*time.Minute, "coding study duration")
	flag.DurationVar(&c.warmup, "warmup", 4*time.Minute, "study warmup")
	flag.IntVar(&c.packets, "packets", 40, "control packets to send")
	flag.DurationVar(&c.interval, "interval", 15*time.Second, "inter-packet interval")
	flag.Uint64Var(&c.seed, "seed", 1, "simulation seed")
	flag.IntVar(&c.reps, "reps", 1, "independent replications over consecutive seeds")
	flag.IntVar(&c.parallel, "parallel", 0, "replication workers (0 = GOMAXPROCS; requires -reps > 1)")
	flag.StringVar(&c.trace, "trace", "", "write the telemetry event stream as JSONL to this file (control/throughput study)")
	flag.IntVar(&c.traceOp, "trace-op", -1, "render operation span traces for this destination node (control study)")
	flag.DurationVar(&c.progress, "progress", 0, "print a live windowed convergence/throughput line at this period (control study, -reps 1)")
	flag.StringVar(&c.convergence, "convergence", "", "write the windowed convergence report to this file (control study)")
	flag.IntVar(&c.traceSample, "trace-sample", 0, "thin the -trace export to every 1-in-N operation's events (whole spans kept)")
	flag.StringVar(&c.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	flag.StringVar(&c.memprofile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.StringVar(&c.exectrace, "exectrace", "", "write a runtime execution trace to this file")
	flag.StringVar(&c.svg, "svg", "", "write the converged topology/tree/codes as SVG to this file")
	flag.StringVar(&c.plan, "faultplan", "", "JSON fault plan scheduled on every replication (see EXPERIMENTS.md)")
	flag.StringVar(&c.workload, "workload", "", "throughput loop discipline: closed (default) or open")
	flag.StringVar(&c.rates, "rates", "", "open-loop offered rates in ops/s, comma-separated (e.g. 0.1,0.2,0.4)")
	flag.StringVar(&c.conc, "conc", "", "closed-loop concurrency levels, comma-separated (default 1,2,4,8)")
	flag.IntVar(&c.ops, "ops", 0, "control operations per throughput load point (default 40)")
	flag.StringVar(&c.dist, "dist", "", "throughput destinations: uniform (default), hotspot, depth")
	flag.IntVar(&c.window, "window", 0, "open-loop admission window (default 8)")
	flag.StringVar(&c.csv, "csv", "", "write the throughput/service sweep as CSV to this file")
	flag.DurationVar(&c.batchWindow, "batch-window", -1, "service study: prefix-batching window (0 disables batching; default 500ms)")
	flag.IntVar(&c.batchBits, "batch-bits", -1, "service study: code-prefix bits commands are batched by (default 3)")
	flag.IntVar(&c.maxBatch, "max-batch", -1, "service study: flush a batch group early at this many commands (default 16)")
	flag.DurationVar(&c.cacheTTL, "cache-ttl", -1, "service study: route-freshness cache TTL (0 disables the cache; default 5m)")
	flag.IntVar(&c.cacheCap, "cache-cap", -1, "service study: route cache capacity (default 256)")
	flag.IntVar(&c.queueDepth, "queue-depth", -1, "service study: hard admission backlog bound (0 = unbounded; default 128)")
	flag.IntVar(&c.highWater, "high-water", -1, "service study: soft backlog mark where -shed engages (0 disables; default 6)")
	flag.StringVar(&c.shed, "shed", "", "service study: over-high-water policy, delay (default) or reject")
	flag.Parse()

	if err := c.validate(); err != nil {
		return err
	}

	stopProf, err := prof.Start(prof.Config{CPU: c.cpuprofile, Mem: c.memprofile, Trace: c.exectrace})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); retErr == nil {
			retErr = perr
		}
	}()

	var plan *fault.Plan
	if c.plan != "" {
		p, err := fault.LoadPlan(c.plan)
		if err != nil {
			return err
		}
		plan = p
	}
	if c.study == "coding-schemes" {
		return runCodingSchemes(&c, plan)
	}
	scn, err := pickScenario(c.scenario, c.seed)
	if err != nil {
		return err
	}
	scn.Fault = plan
	scn.Codec = c.codec
	var builtNet *experiment.Net
	prevHook := scn.OnNetBuilt
	scn.OnNetBuilt = func(net *experiment.Net) {
		builtNet = net
		if prevHook != nil {
			prevHook(net)
		}
	}
	if c.svg != "" {
		defer func() {
			if builtNet == nil {
				return
			}
			f, err := os.Create(c.svg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "svg:", err)
				return
			}
			defer f.Close()
			if err := builtNet.WriteTopologySVG(f); err != nil {
				fmt.Fprintln(os.Stderr, "svg:", err)
				return
			}
			fmt.Printf("topology SVG written to %s\n", c.svg)
		}()
	}

	seeds := make([]uint64, c.reps)
	for i := range seeds {
		seeds[i] = c.seed + uint64(i)
	}
	build := func(s uint64) experiment.Scenario {
		b, _ := pickScenario(c.scenario, s)
		b.Fault = plan
		b.Codec = c.codec
		return b
	}
	rep := experiment.Replicator{Workers: c.parallel}

	switch c.study {
	case "coding":
		if c.reps == 1 {
			res, err := experiment.RunCodingStudy(scn, c.dur)
			if err != nil {
				return err
			}
			experiment.WriteCodingReport(os.Stdout, res)
			return nil
		}
		res, err := rep.CodingStudy(build, c.dur, seeds)
		if err != nil {
			return err
		}
		experiment.WriteCodingReport(os.Stdout, res)
	case "control":
		p, err := pickProto(c.proto)
		if err != nil {
			return err
		}
		opts := experiment.DefaultControlOpts()
		opts.Warmup = c.warmup
		opts.Packets = c.packets
		opts.Interval = c.interval
		opts.Trace = c.trace != "" || c.traceOp >= 0
		opts.Window = c.progress
		if c.convergence != "" && opts.Window == 0 {
			// -convergence without -progress still needs a window period;
			// 30 s matches the report/golden defaults.
			opts.Window = 30 * time.Second
		}
		if c.progress > 0 {
			opts.Progress = os.Stderr
		}
		var res *experiment.ControlResult
		if c.reps == 1 {
			res, err = experiment.RunControlStudy(scn, p, opts)
		} else {
			res, err = rep.ControlStudy(build, p, opts, seeds)
		}
		if err != nil {
			return err
		}
		experiment.WriteControlReport(os.Stdout, res)
		if c.convergence != "" {
			f, err := os.Create(c.convergence)
			if err != nil {
				return err
			}
			obs.WriteConvergenceReport(f, res.Convergence)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("\nconvergence report written to %s\n", c.convergence)
		}
		if c.trace != "" {
			events := res.Events
			sampled := ""
			if c.traceSample > 1 {
				events = telemetry.SampleOps(events, c.traceSample)
				sampled = fmt.Sprintf(" (1-in-%d op sample of %d)", c.traceSample, len(res.Events))
			}
			if err := writeTrace(c.trace, events); err != nil {
				return err
			}
			fmt.Printf("\n%d telemetry events written to %s%s\n", len(events), c.trace, sampled)
		}
		if c.traceOp >= 0 {
			dst := radio.NodeID(c.traceOp)
			fmt.Printf("\n--- operation spans to node %d ---\n", dst)
			telemetry.RenderOpSpans(os.Stdout, res.Events, func(s *telemetry.OpSpan) bool {
				return s.Dst == dst
			})
		}
	case "throughput":
		p, err := pickProto(c.proto)
		if err != nil {
			return err
		}
		opts, err := c.throughputOpts()
		if err != nil {
			return err
		}
		var res *experiment.ThroughputResult
		if c.reps == 1 {
			res, err = experiment.RunThroughputStudy(scn, p, opts)
		} else {
			res, err = rep.ThroughputStudy(build, p, opts, seeds)
		}
		if err != nil {
			return err
		}
		experiment.WriteThroughputReport(os.Stdout, res)
		if c.csv != "" {
			f, err := os.Create(c.csv)
			if err != nil {
				return err
			}
			if err := experiment.WriteThroughputCSV(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("\nthroughput sweep written to %s\n", c.csv)
		}
		if c.trace != "" {
			if err := writeTrace(c.trace, res.Events); err != nil {
				return err
			}
			fmt.Printf("\n%d telemetry events written to %s\n", len(res.Events), c.trace)
		}
	case "service":
		p, err := pickProto(c.proto)
		if err != nil {
			return err
		}
		opts, err := c.serviceOpts()
		if err != nil {
			return err
		}
		var res *experiment.ServiceResult
		if c.reps == 1 {
			res, err = experiment.RunServiceStudy(scn, p, opts)
		} else {
			res, err = rep.ServiceStudy(build, p, opts, seeds)
		}
		if err != nil {
			return err
		}
		experiment.WriteServiceReport(os.Stdout, res)
		if c.csv != "" {
			f, err := os.Create(c.csv)
			if err != nil {
				return err
			}
			if err := experiment.WriteServiceCSV(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("\nservice sweep written to %s\n", c.csv)
		}
		if c.trace != "" {
			// The service sub-runs' events (including the svc.batch
			// membership spans); a transparent study exports the baseline,
			// byte-identical to the open-loop throughput trace.
			if err := writeTrace(c.trace, res.EventsSvc); err != nil {
				return err
			}
			fmt.Printf("\n%d telemetry events written to %s\n", len(res.EventsSvc), c.trace)
		}
	case "scope":
		if c.reps > 1 {
			return fmt.Errorf("the scope study does not support -reps")
		}
		opts := experiment.DefaultScopeOpts()
		opts.Warmup = c.warmup
		res, err := experiment.RunScopeStudy(scn, opts)
		if err != nil {
			return err
		}
		experiment.WriteScopeReport(os.Stdout, res)
	default:
		return fmt.Errorf("unknown study %q", c.study)
	}
	return nil
}

// runCodingSchemes sweeps the codec list over every scenario in the
// comma-separated -scenario value, printing one comparison per scenario
// and optionally exporting all rows to one CSV file.
func runCodingSchemes(c *cliConfig, plan *fault.Plan) error {
	codecs := splitList(c.codecs)
	if len(codecs) == 0 {
		codecs = core.CodecNames()
	}
	opts := experiment.DefaultCodingSchemesOpts()
	opts.Warmup = c.warmup
	opts.Packets = c.packets
	opts.Interval = c.interval
	if c.joins >= 0 {
		opts.Joins = c.joins
	}
	scenarios := splitList(c.scenario)
	if len(scenarios) == 0 {
		return fmt.Errorf("-scenario must name at least one scenario")
	}
	seeds := make([]uint64, c.reps)
	for i := range seeds {
		seeds[i] = c.seed + uint64(i)
	}
	rep := experiment.Replicator{Workers: c.parallel}
	var results []*experiment.CodingSchemesResult
	for i, name := range scenarios {
		if _, err := pickScenario(name, c.seed); err != nil {
			return err
		}
		build := func(s uint64) experiment.Scenario {
			b, _ := pickScenario(name, s)
			b.Fault = plan
			return b
		}
		res, err := rep.CodingSchemesStudy(build, codecs, opts, seeds)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
		}
		experiment.WriteCodingSchemesReport(os.Stdout, res)
		results = append(results, res)
	}
	if c.csv != "" {
		f, err := os.Create(c.csv)
		if err != nil {
			return err
		}
		if err := experiment.WriteCodingSchemesCSV(f, results...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ncodec comparison written to %s\n", c.csv)
	}
	return nil
}

func pickScenario(name string, seed uint64) (experiment.Scenario, error) {
	switch name {
	case "tight":
		return experiment.TightGrid(seed), nil
	case "sparse":
		return experiment.SparseLinear(seed), nil
	case "indoor":
		return experiment.Indoor(seed, false), nil
	case "indoor-wifi":
		return experiment.Indoor(seed, true), nil
	case "refgrid":
		return experiment.ReferenceGrid(seed), nil
	case "grid1k":
		return experiment.Grid1K(seed), nil
	case "line":
		return experiment.Line(seed), nil
	}
	return experiment.Scenario{}, fmt.Errorf("unknown scenario %q", name)
}

func pickProto(name string) (experiment.Proto, error) {
	switch name {
	case "tele":
		return experiment.ProtoTele, nil
	case "retele":
		return experiment.ProtoReTele, nil
	case "strict":
		return experiment.ProtoTeleStrict, nil
	case "teleadjust":
		return experiment.ProtoTeleAdjust, nil
	case "drip":
		return experiment.ProtoDrip, nil
	case "rpl":
		return experiment.ProtoRPL, nil
	}
	return experiment.ProtoNone, fmt.Errorf("unknown protocol %q", name)
}
