// Command topogen emits the evaluation deployments as text for inspection
// and external plotting: node positions, the computed link gains, and the
// expected PRR adjacency at a chosen transmit power.
//
//	topogen -topology indoor -seed 1 -links
package main

import (
	"flag"
	"fmt"
	"os"

	"teleadjust/internal/experiment"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name    = flag.String("topology", "indoor", "topology: tight, sparse, indoor, indoor-wifi")
		seed    = flag.Uint64("seed", 1, "placement seed")
		links   = flag.Bool("links", false, "also print the PRR adjacency (links with PRR ≥ 0.1)")
		minPRR  = flag.Float64("min-prr", 0.1, "PRR threshold for -links")
		degrees = flag.Bool("degrees", false, "print per-node degree summary")
		hops    = flag.Bool("hops", false, "print BFS hop distribution from the sink over good links")
	)
	flag.Parse()

	var scn experiment.Scenario
	switch *name {
	case "tight":
		scn = experiment.TightGrid(*seed)
	case "sparse":
		scn = experiment.SparseLinear(*seed)
	case "indoor":
		scn = experiment.Indoor(*seed, false)
	case "indoor-wifi":
		scn = experiment.Indoor(*seed, true)
	default:
		return fmt.Errorf("unknown topology %q", *name)
	}

	dep := scn.Dep
	fmt.Printf("# topology %s seed %d: %d nodes, sink %d\n", dep.Name, *seed, dep.Len(), dep.Sink)
	minX, minY, maxX, maxY := dep.Bounds()
	fmt.Printf("# bounds: (%.1f, %.1f) .. (%.1f, %.1f) m\n", minX, minY, maxX, maxY)
	fmt.Println("# id\tx\ty")
	for i, p := range dep.Positions {
		fmt.Printf("%d\t%.2f\t%.2f\n", i, p.X, p.Y)
	}
	if !*links && !*degrees && !*hops {
		return nil
	}

	eng := sim.NewEngine()
	med, err := radio.NewMedium(eng, dep, nil, scn.Radio, *seed)
	if err != nil {
		return err
	}
	power := scn.Mac.TxPowerDBm
	if *links {
		fmt.Println("# links: from\tto\tprr")
		for i := 0; i < dep.Len(); i++ {
			for j := 0; j < dep.Len(); j++ {
				if i == j {
					continue
				}
				prr := med.ExpectedPRR(radio.NodeID(i), radio.NodeID(j), power, 32)
				if prr >= *minPRR {
					fmt.Printf("%d\t%d\t%.3f\n", i, j, prr)
				}
			}
		}
	}
	if *hops {
		printHopDistribution(med, dep.Sink, dep.Len(), power)
	}
	if *degrees {
		fmt.Println("# degrees: id\tout-degree")
		for i := 0; i < dep.Len(); i++ {
			deg := 0
			for j := 0; j < dep.Len(); j++ {
				if i == j {
					continue
				}
				if med.ExpectedPRR(radio.NodeID(i), radio.NodeID(j), power, 32) >= *minPRR {
					deg++
				}
			}
			fmt.Printf("%d\t%d\n", i, deg)
		}
	}
	return nil
}

// printHopDistribution runs BFS from the sink over links with PRR ≥ 0.5
// in both directions — a quick static estimate of the network diameter
// used to calibrate the scenarios.
func printHopDistribution(med *radio.Medium, sink, n int, power float64) {
	const goodPRR = 0.5
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[sink] = 0
	queue := []int{sink}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for j := 0; j < n; j++ {
			if dist[j] >= 0 || j == cur {
				continue
			}
			up := med.ExpectedPRR(radio.NodeID(j), radio.NodeID(cur), power, 32)
			down := med.ExpectedPRR(radio.NodeID(cur), radio.NodeID(j), power, 32)
			if up >= goodPRR && down >= goodPRR {
				dist[j] = dist[cur] + 1
				queue = append(queue, j)
			}
		}
	}
	hist := map[int]int{}
	unreachable := 0
	maxHop := 0
	for i, d := range dist {
		if i == sink {
			continue
		}
		if d < 0 {
			unreachable++
			continue
		}
		hist[d]++
		if d > maxHop {
			maxHop = d
		}
	}
	fmt.Println("# BFS hop distribution (bidirectional PRR ≥ 0.5):")
	for h := 1; h <= maxHop; h++ {
		fmt.Printf("# hop %d: %d nodes\n", h, hist[h])
	}
	if unreachable > 0 {
		fmt.Printf("# unreachable: %d nodes\n", unreachable)
	}
}
