// Command teleadjust-bench regenerates every table and figure of the
// paper's evaluation section:
//
//	fig6a/fig6b/fig6c/fig6d  — path-code studies on Tight-grid and
//	                           Sparse-linear (225 nodes)
//	table2                   — indoor code length by hop
//	fig7/fig8/fig9/fig10,
//	table3                   — protocol comparison (Tele, Re-Tele, Drip,
//	                           RPL) on the 40-node indoor testbed, clean
//	                           channel 26 and WiFi-interfered channel 19
//	ablation                 — reserve-policy and opportunistic-forwarding
//	                           ablations
//	scope                    — the one-to-many extension: subtree-scoped
//	                           floods vs per-member unicast
//
// Use -exp to select one experiment, -quick for a fast pass, -csv DIR to
// also emit plot-ready CSV files. -cpuprofile, -memprofile and -exectrace
// bracket the selected experiments with pprof/runtime-trace captures
// (see make profile).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/experiment"
	"teleadjust/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "teleadjust-bench:", err)
		os.Exit(1)
	}
}

type settings struct {
	exp        string
	quick      bool
	seeds      int
	seed       uint64
	packet     int
	parallel   int
	reps       int
	csvDir     string
	cpuprofile string
	memprofile string
	exectrace  string
}

func run() (retErr error) {
	var s settings
	flag.StringVar(&s.exp, "exp", "all", "experiment: fig6, table2, compare26, compare19, ablation, scope, replication, all")
	flag.BoolVar(&s.quick, "quick", false, "reduced durations and seed counts")
	flag.IntVar(&s.seeds, "seeds", 3, "seeds per protocol for comparison studies")
	flag.Uint64Var(&s.seed, "seed", 1, "base seed")
	flag.IntVar(&s.packet, "packets", 40, "control packets per run")
	flag.IntVar(&s.parallel, "parallel", 0, "replication workers for multi-seed studies (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&s.reps, "reps", 8, "replications for the replication speedup experiment")
	flag.StringVar(&s.csvDir, "csv", "", "also write plot-ready CSV files into this directory")
	flag.StringVar(&s.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	flag.StringVar(&s.memprofile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.StringVar(&s.exectrace, "exectrace", "", "write a runtime execution trace to this file")
	flag.Parse()
	if s.csvDir != "" {
		if err := os.MkdirAll(s.csvDir, 0o755); err != nil {
			return err
		}
	}
	stopProf, err := prof.Start(prof.Config{CPU: s.cpuprofile, Mem: s.memprofile, Trace: s.exectrace})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); retErr == nil {
			retErr = perr
		}
	}()

	if s.quick {
		s.seeds = 1
		s.packet = 15
	}
	steps := map[string]func(settings) error{
		"fig6":        runFig6,
		"table2":      runTable2,
		"compare26":   func(st settings) error { return runComparison(st, false) },
		"compare19":   func(st settings) error { return runComparison(st, true) },
		"ablation":    runAblation,
		"scope":       runScope,
		"replication": runReplication,
	}
	order := []string{"fig6", "table2", "compare26", "compare19", "ablation", "scope"}
	if s.exp != "all" {
		fn, ok := steps[s.exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", s.exp)
		}
		return fn(s)
	}
	for _, name := range order {
		if err := steps[name](s); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

// runFig6 regenerates Fig 6a–d on both 225-node simulation fields. The
// sparse strip is tens of hops deep and needs a longer construction phase.
func runFig6(s settings) error {
	cases := []struct {
		build func(uint64) experiment.Scenario
		dur   time.Duration
	}{
		{experiment.TightGrid, 10 * time.Minute},
		{experiment.SparseLinear, 30 * time.Minute},
	}
	for _, tc := range cases {
		dur := tc.dur
		if s.quick {
			dur /= 2
		}
		res, err := experiment.RunCodingStudy(tc.build(s.seed), dur)
		if err != nil {
			return err
		}
		experiment.WriteCodingReport(os.Stdout, res)
		if err := writeCodingCSV(s, res); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// writeCodingCSV exports a coding study when -csv is set.
func writeCodingCSV(s settings, res *experiment.CodingResult) error {
	if s.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(s.csvDir, "coding_"+res.Scenario+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiment.WriteCodingCSV(f, res)
}

// writeControlCSV exports a control study when -csv is set.
func writeControlCSV(s settings, res *experiment.ControlResult) error {
	if s.csvDir == "" {
		return nil
	}
	name := fmt.Sprintf("control_%s_%s.csv", res.Scenario, res.Proto)
	f, err := os.Create(filepath.Join(s.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiment.WriteControlCSV(f, res)
}

// runTable2 regenerates the indoor code-length table.
func runTable2(s settings) error {
	dur := 8 * time.Minute
	if s.quick {
		dur = 4 * time.Minute
	}
	res, err := experiment.RunCodingStudy(experiment.Indoor(s.seed, false), dur)
	if err != nil {
		return err
	}
	fmt.Println("Table II — indoor testbed code length by hop (paper: avg 4.2→15.8 bits over 6 hops, max ≤20):")
	experiment.WriteCodingReport(os.Stdout, res)
	return nil
}

// runComparison regenerates Fig 7–10 and Table III on one channel.
func runComparison(s settings, wifi bool) error {
	opts := experiment.DefaultControlOpts()
	opts.Warmup = 7 * time.Minute
	opts.Packets = s.packet
	opts.Interval = 20 * time.Second
	if s.quick {
		opts.Warmup = 5 * time.Minute
	}
	seeds := make([]uint64, s.seeds)
	for i := range seeds {
		seeds[i] = s.seed + uint64(i)
	}
	build := func(seed uint64) experiment.Scenario {
		scn := experiment.Indoor(seed, wifi)
		scn.TuneControlTimeouts(18 * time.Second)
		return scn
	}
	rep := experiment.Replicator{Workers: s.parallel}
	var results []*experiment.ControlResult
	for _, proto := range []experiment.Proto{
		experiment.ProtoTele,
		experiment.ProtoReTele,
		experiment.ProtoDrip,
		experiment.ProtoRPL,
	} {
		res, err := rep.ControlStudy(build, proto, opts, seeds)
		if err != nil {
			return err
		}
		results = append(results, res)
		experiment.WriteControlReport(os.Stdout, res)
		if err := writeControlCSV(s, res); err != nil {
			return err
		}
		fmt.Println()
	}
	experiment.WriteComparisonSummary(os.Stdout, results)
	return nil
}

// runAblation evaluates the design choices DESIGN.md calls out: the
// Algorithm 1 reserve policy (code length vs extension count) and
// opportunistic forwarding (PDR vs the strict-path variant).
func runAblation(s settings) error {
	dur := 6 * time.Minute
	if s.quick {
		dur = 3 * time.Minute
	}
	fmt.Println("--- Ablation: Algorithm 1 reserve policy (indoor testbed) ---")
	fmt.Printf("%-10s %14s %14s %12s\n", "policy", "avg code bits", "max code bits", "extensions")
	for _, p := range []struct {
		name   string
		policy core.ReservePolicy
	}{
		{"tight", core.TightReserve},
		{"default", core.DefaultReserve},
		{"generous", core.GenerousReserve},
	} {
		scn := experiment.Indoor(s.seed, false)
		scn.Tele.Reserve = p.policy
		res, err := experiment.RunCodingStudy(scn, dur)
		if err != nil {
			return err
		}
		var sum, count, maxBits float64
		for _, k := range res.CodeLenByHop.Keys() {
			series := res.CodeLenByHop.Get(k)
			sum += series.Mean() * float64(series.Count())
			count += float64(series.Count())
			if series.Max() > maxBits {
				maxBits = series.Max()
			}
		}
		avg := 0.0
		if count > 0 {
			avg = sum / count
		}
		fmt.Printf("%-10s %14.1f %14.0f %12s\n", p.name, avg, maxBits, "(see stats)")
	}

	fmt.Println("\n--- Ablation: opportunistic vs strict-path forwarding ---")
	opts := experiment.DefaultControlOpts()
	opts.Warmup = 6 * time.Minute
	opts.Packets = s.packet
	opts.Interval = 20 * time.Second
	build := func(seed uint64) experiment.Scenario {
		scn := experiment.Indoor(seed, false)
		scn.TuneControlTimeouts(18 * time.Second)
		return scn
	}
	var results []*experiment.ControlResult
	for _, proto := range []experiment.Proto{experiment.ProtoTele, experiment.ProtoTeleStrict} {
		res, err := experiment.RunControlStudySeeds(build, proto, opts, []uint64{s.seed})
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	experiment.WriteComparisonSummary(os.Stdout, results)
	return nil
}

// runScope evaluates the one-to-many extension: subtree-scoped floods vs
// per-member unicast control.
func runScope(s settings) error {
	opts := experiment.DefaultScopeOpts()
	if s.quick {
		opts.Warmup = 5 * time.Minute
		opts.Operations = 2
	}
	res, err := experiment.RunScopeStudy(experiment.Indoor(s.seed, false), opts)
	if err != nil {
		return err
	}
	fmt.Println("--- Extension: subtree-scoped dissemination (indoor testbed) ---")
	fmt.Printf("operations=%d members=%d acked=%d mean-coverage=%.1f%%\n",
		res.Operations, res.Members, res.Acked, 100*res.Coverage.Mean())
	fmt.Printf("scoped flood:     %.2f tx per addressed member\n", res.TxPerMember)
	fmt.Printf("per-member unicast: %.2f tx per addressed member\n", res.UnicastTxPerMember)
	return nil
}

// runReplication measures the wall-clock speedup of the parallel
// replication runner: the same -reps-seed control study once on one
// worker and once on the full pool, verifying the merged reports match.
func runReplication(s settings) error {
	opts := experiment.DefaultControlOpts()
	opts.Warmup = 4 * time.Minute
	opts.Packets = s.packet
	opts.Interval = 15 * time.Second
	if s.quick {
		opts.Packets = 10
	}
	seeds := experiment.DeriveSeeds(s.seed, s.reps)
	build := func(seed uint64) experiment.Scenario {
		scn := experiment.Indoor(seed, false)
		scn.TuneControlTimeouts(12 * time.Second)
		return scn
	}
	workers := s.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("--- Replication runner: %d replications, 1 vs %d workers ---\n", s.reps, workers)

	t0 := time.Now()
	serial, err := experiment.Replicator{Workers: 1}.ControlStudy(build, experiment.ProtoTele, opts, seeds)
	if err != nil {
		return err
	}
	serialDur := time.Since(t0)

	t1 := time.Now()
	par, err := experiment.Replicator{Workers: workers}.ControlStudy(build, experiment.ProtoTele, opts, seeds)
	if err != nil {
		return err
	}
	parDur := time.Since(t1)

	var sb, pb strings.Builder
	experiment.WriteControlReport(&sb, serial)
	experiment.WriteControlReport(&pb, par)
	match := "byte-identical"
	if sb.String() != pb.String() {
		match = "MISMATCH (determinism bug)"
	}
	experiment.WriteControlReport(os.Stdout, par)
	fmt.Printf("serial:   %v\nparallel: %v (%d workers)\nspeedup:  %.2fx — merged reports %s\n",
		serialDur.Round(time.Millisecond), parDur.Round(time.Millisecond), workers,
		float64(serialDur)/float64(parDur), match)
	if match != "byte-identical" {
		return fmt.Errorf("parallel replication diverged from serial")
	}
	return nil
}
