package teleadjust

import (
	"path/filepath"
	"testing"

	"teleadjust/internal/benchjson"
)

// TestCommittedBenchRecordsValidate holds every committed BENCH_*.json
// to the shared benchjson schema: one envelope, a complete environment
// (gomaxprocs included — replication numbers are meaningless without
// it), and non-empty sections. A record that drifts from the schema
// fails here, not when someone tries to diff runs months later.
func TestCommittedBenchRecordsValidate(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("found %d BENCH_*.json records, want at least scale, telemetry and profile", len(paths))
	}
	for _, path := range paths {
		rec, err := benchjson.Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if rec.Environment.GOMAXPROCS < 1 {
			t.Errorf("%s: gomaxprocs %d", path, rec.Environment.GOMAXPROCS)
		}
		t.Logf("%s: %d section(s): %v", path, len(rec.Sections), rec.SectionNames())
	}
}
