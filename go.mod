module teleadjust

go 1.22
