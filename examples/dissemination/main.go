// Dissemination demonstrates the paper's one-to-many extension claim
// (Section I): TeleAdjusting "can be easily extended to application
// scenarios of one-to-all or one-to-many packet dissemination". The
// controller reconfigures a GROUP of nodes, once with targeted
// TeleAdjusting control packets and once by Drip-flooding the whole
// network, and compares the transmission bills.
//
//	go run ./examples/dissemination
package main

import (
	"fmt"
	"log"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/experiment"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// group is the set of nodes whose configuration changes (one-to-many).
var group = []radio.NodeID{5, 11, 17}

func run() error {
	teleTx, teleOK, err := viaTele()
	if err != nil {
		return err
	}
	scopeTx, scopeOK, scopeOf, err := viaScope()
	if err != nil {
		return err
	}
	dripTx, dripOK, err := viaDrip()
	if err != nil {
		return err
	}
	fmt.Println("\n--- one-to-many reconfiguration of", len(group), "of 24 nodes ---")
	fmt.Printf("%-22s %12s %10s\n", "mechanism", "delivered", "tx spent")
	fmt.Printf("%-22s %9d/%d %10d\n", "TeleAdjusting unicast", teleOK, len(group), teleTx)
	fmt.Printf("%-22s %9d/%d %10d\n", "TeleAdjusting scope", scopeOK, scopeOf, scopeTx)
	fmt.Printf("%-22s %9d/%d %10d\n", "Drip flood", dripOK, len(group), dripTx)
	if teleOK == len(group) && teleTx < dripTx {
		fmt.Println("Targeted control reconfigures the group at a fraction of the flooding bill;")
		fmt.Println("a code-prefix scope reaches a whole subtree in one shot with zero group state.")
	}
	return nil
}

// viaScope reconfigures one code SUBTREE with a single scoped flood: pick
// the sink child with the largest subtree in the controller's registry and
// address its code prefix.
func viaScope() (tx uint64, acked, members int, err error) {
	net, err := buildNet(experiment.ProtoTeleAdjust)
	if err != nil {
		return 0, 0, 0, err
	}
	reg := net.SinkTele().Registry()
	// Find the most popular length-3 code prefix (a sink child's subtree).
	type bucket struct {
		scope core.PathCode
		n     int
	}
	best := bucket{}
	for _, info := range reg {
		if info.Code.Len() < 3 {
			continue
		}
		prefix := info.Code.Prefix(3)
		n := 0
		for _, other := range reg {
			if prefix.IsPrefixOf(other.Code) {
				n++
			}
		}
		if n > best.n {
			best = bucket{scope: prefix, n: n}
		}
	}
	if best.n == 0 {
		return 0, 0, 0, fmt.Errorf("no subtree found in registry")
	}
	before := ctrlSends(net)
	var res core.ScopeResult
	done := false
	if _, err := net.SinkTele().SendScopeControl(best.scope, "cfg-v2", func(r core.ScopeResult) {
		res = r
		done = true
	}); err != nil {
		return 0, 0, 0, err
	}
	if err := net.Run(90 * time.Second); err != nil {
		return 0, 0, 0, err
	}
	if !done {
		return 0, 0, 0, fmt.Errorf("scoped operation never resolved")
	}
	return ctrlSends(net) - before, len(res.Acked), res.Expected, nil
}

func buildNet(p experiment.Proto) (*experiment.Net, error) {
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 1.0
	cfg := experiment.Config{
		Dep:      topology.Grid("field", 4, 6, 42, 28, true, topology.Point{}, 3),
		Radio:    params,
		Mac:      mac.DefaultConfig(),
		Ctp:      ctp.DefaultConfig(),
		Tele:     core.DefaultConfig(),
		Drip:     drip.DefaultConfig(),
		Rpl:      rpl.DefaultConfig(),
		Protocol: p,
		Seed:     3,
	}
	net, err := experiment.Build(cfg)
	if err != nil {
		return nil, err
	}
	net.Start()
	return net, net.Run(5 * time.Minute)
}

// viaTele sends one targeted control packet per group member.
func viaTele() (tx uint64, delivered int, err error) {
	net, err := buildNet(experiment.ProtoTeleAdjust)
	if err != nil {
		return 0, 0, err
	}
	got := map[radio.NodeID]bool{}
	for _, id := range group {
		id := id
		net.Tele(id).SetDeliveredFn(func(op uint32, hops uint8) { got[id] = true })
	}
	before := ctrlSends(net)
	for _, id := range group {
		if _, err := net.SinkTele().SendControl(id, "cfg-v2", nil); err != nil {
			return 0, 0, fmt.Errorf("control to %d: %w", id, err)
		}
		if err := net.Run(20 * time.Second); err != nil {
			return 0, 0, err
		}
	}
	if err := net.Run(30 * time.Second); err != nil {
		return 0, 0, err
	}
	return ctrlSends(net) - before, len(got), nil
}

// ctrlSends sums the network's control-plane transmissions through the
// uniform ControlProtocol interface — the same sum for any protocol.
func ctrlSends(net *experiment.Net) uint64 {
	var sum uint64
	for i := 0; i < net.Dep.Len(); i++ {
		if c := net.Ctrl(radio.NodeID(i)); c != nil {
			sum += c.ControlTx()
		}
	}
	return sum
}

// viaDrip floods one group-addressed command per member (the unstructured
// baseline has no targeted mode: every update visits every node).
func viaDrip() (tx uint64, delivered int, err error) {
	net, err := buildNet(experiment.ProtoDrip)
	if err != nil {
		return 0, 0, err
	}
	got := map[radio.NodeID]bool{}
	for _, id := range group {
		id := id
		net.Drip(id).SetDeliveredFn(func(uid uint32, hops uint8) { got[id] = true })
	}
	before := ctrlSends(net)
	for _, id := range group {
		if _, err := net.SinkDrip().SendControl(id, "cfg-v2", nil); err != nil {
			return 0, 0, fmt.Errorf("drip control to %d: %w", id, err)
		}
		// Drip commands share one dissemination key: a new version
		// supersedes the old network-wide, so each flood must complete
		// before the next command (the paper uses one-minute spacing).
		if err := net.Run(40 * time.Second); err != nil {
			return 0, 0, err
		}
	}
	if err := net.Run(30 * time.Second); err != nil {
		return 0, 0, err
	}
	return ctrlSends(net) - before, len(got), nil
}
