// Quickstart: build a small TeleAdjusting network, wait for the collection
// tree and path codes to converge, and deliver one remote-control packet
// from the sink to a chosen node.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/experiment"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10-node line: node 0 is the sink, node 9 is nine hops out.
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0 // deterministic links for the demo
	cfg := experiment.Config{
		Dep:      topology.Line(10, 7),
		Radio:    params,
		Mac:      mac.DefaultConfig(),
		Ctp:      ctp.DefaultConfig(),
		Tele:     core.DefaultConfig(),
		Drip:     drip.DefaultConfig(),
		Rpl:      rpl.DefaultConfig(),
		Protocol: experiment.ProtoTeleAdjust,
		Seed:     42,
	}
	net, err := experiment.Build(cfg)
	if err != nil {
		return err
	}
	net.Start()

	fmt.Println("quickstart: letting the tree and path codes converge...")
	if err := net.Run(4 * time.Minute); err != nil {
		return err
	}
	fmt.Printf("tree coverage: %.0f%%, code coverage: %.0f%%\n\n",
		100*net.TreeCoverage(), 100*net.CodeCoverage())

	// Print the address book the coding scheme produced.
	fmt.Println("node  hops  path code")
	for i := 0; i < net.Dep.Len(); i++ {
		code, ok := net.Tele(radio.NodeID(i)).Code()
		mark := code.String()
		if !ok {
			mark = "(none)"
		}
		fmt.Printf("%4d  %4d  %s\n", i, net.CTPHops(radio.NodeID(i)), mark)
	}

	// Remote-control node 9: the control packet is forwarded downward via
	// prefix matching on those codes, opportunistically taking whichever
	// qualifying neighbor is awake first.
	const target radio.NodeID = 9
	fmt.Printf("\nsending control packet to node %d...\n", target)
	done := false
	net.Tele(target).SetDeliveredFn(func(op uint32, hops uint8) {
		fmt.Printf("node %d received the command after %d transmissions at t=%v\n",
			target, hops, net.Eng.Now())
	})
	_, err = net.SinkTele().SendControl(target, "set-sampling-rate=30s", func(r core.Result) {
		done = true
		if r.OK {
			fmt.Printf("controller: end-to-end acknowledged in %v (%d hops)\n", r.Latency, r.E2EHops)
		} else {
			fmt.Printf("controller: operation failed after %v\n", r.Latency)
		}
	})
	if err != nil {
		return err
	}
	if err := net.Run(time.Minute); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("no controller result within a minute")
	}
	return nil
}
