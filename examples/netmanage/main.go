// Netmanage reproduces the paper's motivating scenario (Section II): a
// deployed collection network streams sensor readings to the controller;
// the controller detects a node whose predefined configuration no longer
// fits (here: a sampling anomaly producing implausible readings), derives
// the root cause, and remotely adjusts that single node with a
// TeleAdjusting control packet — no network-wide flood, no manual visit to
// a node strapped to a tree trunk.
//
//	go run ./examples/netmanage
package main

import (
	"fmt"
	"log"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/experiment"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// reading is the periodic sensor report each node collects upward.
type reading struct {
	TempC float64
	Gain  float64 // the node's current (possibly mis-)configured gain
}

// adjustCmd is the remote-control payload fixing a node's gain.
type adjustCmd struct {
	Gain float64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 1.0
	cfg := experiment.Config{
		Dep:      topology.Grid("orchard", 4, 4, 28, 28, true, topology.Point{}, 7),
		Radio:    params,
		Mac:      mac.DefaultConfig(),
		Ctp:      ctp.DefaultConfig(),
		Tele:     core.DefaultConfig(),
		Drip:     drip.DefaultConfig(),
		Rpl:      rpl.DefaultConfig(),
		Protocol: experiment.ProtoTeleAdjust,
		Seed:     7,
	}
	net, err := experiment.Build(cfg)
	if err != nil {
		return err
	}

	// Application state: per-node sensor gain; node 13 is misconfigured,
	// so its readings are implausibly scaled.
	gains := make([]float64, net.Dep.Len())
	for i := range gains {
		gains[i] = 1.0
	}
	const broken = 13
	gains[broken] = 12.0

	// Each node samples every 45 s and reports over the collection tree.
	rng := sim.NewRNG(99)
	for i := range net.Stacks {
		if radio.NodeID(i) == net.Sink {
			continue
		}
		i := i
		c := net.Stacks[i].Ctp
		tick := sim.NewTicker(net.Eng, 45*time.Second, func() {
			temp := (18 + 4*rng.Float64()) * gains[i]
			_ = c.SendToSink(&reading{TempC: temp, Gain: gains[i]})
		})
		tick.StartWithOffset(time.Duration(rng.Int64N(int64(45 * time.Second))))
	}

	// Controller: watch readings, flag anomalies, remotely adjust.
	type anomaly struct {
		node  radio.NodeID
		value float64
	}
	var flagged *anomaly
	reports := 0
	net.SinkTele().SetAppDeliver(func(origin radio.NodeID, app any) {
		r, ok := app.(*reading)
		if !ok {
			return
		}
		reports++
		if flagged == nil && (r.TempC < -20 || r.TempC > 60) {
			flagged = &anomaly{node: origin, value: r.TempC}
		}
	})

	net.Start()
	fmt.Println("netmanage: network converging and reporting...")
	if err := net.Run(6 * time.Minute); err != nil {
		return err
	}
	fmt.Printf("controller received %d readings\n", reports)
	if flagged == nil {
		return fmt.Errorf("anomalous node was never detected")
	}
	fmt.Printf("anomaly detected: node %d reports %.1f °C (plausible range -20..60)\n",
		flagged.node, flagged.value)

	// The fix must be applied at the node when the control packet lands.
	applied := false
	target := flagged.node
	net.Tele(target).SetDeliveredFn(func(op uint32, hops uint8) {
		// In a real deployment the App payload carries the parameters;
		// the simulation applies them to the node's state here.
		gains[target] = 1.0
		applied = true
		fmt.Printf("node %d applied remote adjustment at t=%v (after %d transmissions)\n",
			target, net.Eng.Now(), hops)
	})
	fmt.Printf("controller sends gain adjustment to node %d (CTP hops: %d)...\n",
		target, net.CTPHops(target))
	if _, err := net.SinkTele().SendControl(target, &adjustCmd{Gain: 1.0}, func(r core.Result) {
		fmt.Printf("controller: adjustment %s in %v\n", okWord(r.OK), r.Latency)
	}); err != nil {
		return err
	}
	if err := net.Run(time.Minute); err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("adjustment never reached node %d", target)
	}

	// Verify subsequent readings are healthy.
	healthy := 0
	net.SinkTele().SetAppDeliver(func(origin radio.NodeID, app any) {
		r, ok := app.(*reading)
		if ok && origin == target && r.TempC >= -20 && r.TempC <= 60 {
			healthy++
		}
	})
	if err := net.Run(3 * time.Minute); err != nil {
		return err
	}
	fmt.Printf("post-adjustment: %d healthy readings from node %d — anomaly resolved\n",
		healthy, target)
	if healthy == 0 {
		return fmt.Errorf("no healthy readings after adjustment")
	}
	return nil
}

func okWord(ok bool) string {
	if ok {
		return "acknowledged end-to-end"
	}
	return "NOT acknowledged"
}
