package radio

import (
	"fmt"
	"math"
	"testing"
	"time"

	"teleadjust/internal/noise"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

type captureHandler struct {
	frames []*Frame
	txDone int
}

func (h *captureHandler) OnFrame(f *Frame) { h.frames = append(h.frames, f) }
func (h *captureHandler) OnTxDone()        { h.txDone++ }

// testMedium builds a quiet-noise line network with the given spacing.
func testMedium(t *testing.T, n int, spacing float64) (*sim.Engine, *Medium) {
	t.Helper()
	eng := sim.NewEngine()
	params := DefaultParams()
	params.ShadowSigmaDB = 0 // deterministic gains for unit tests
	m, err := NewMedium(eng, topology.Line(n, spacing), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestAirtime(t *testing.T) {
	p := DefaultParams()
	// 30-byte MAC frame + 6 bytes PHY = 36 bytes = 288 bits at 250kbps.
	want := time.Duration(float64(288) / 250000 * float64(time.Second))
	if got := p.Airtime(30); got != want {
		t.Fatalf("Airtime(30) = %v, want %v", got, want)
	}
}

func TestPathLossMonotone(t *testing.T) {
	p := DefaultParams()
	prev := p.PathLossDB(1)
	for d := 2.0; d < 500; d *= 1.5 {
		cur := p.PathLossDB(d)
		if cur <= prev {
			t.Fatalf("path loss not increasing at %vm", d)
		}
		prev = cur
	}
	// Exponent 4: doubling distance adds ~12 dB.
	delta := p.PathLossDB(20) - p.PathLossDB(10)
	if math.Abs(delta-12.04) > 0.1 {
		t.Fatalf("doubling distance adds %v dB, want ~12", delta)
	}
}

func TestPRRCurveShape(t *testing.T) {
	// PRR must be ~0 at very low SNR, ~1 at high SNR, monotone between.
	const frame = 40
	if p := prrFromSNR(dbFactor(-5), frame); p > 0.01 {
		t.Fatalf("PRR at -5dB = %v, want ~0", p)
	}
	if p := prrFromSNR(dbFactor(10), frame); p < 0.99 {
		t.Fatalf("PRR at 10dB = %v, want ~1", p)
	}
	prev := 0.0
	for db := -6.0; db <= 12; db += 0.5 {
		cur := prrFromSNR(dbFactor(db), frame)
		if cur < prev-1e-9 {
			t.Fatalf("PRR not monotone at %v dB", db)
		}
		prev = cur
	}
	// The transition region exists (gray zone).
	mid := prrFromSNR(dbFactor(3), frame)
	if mid < 0.001 || mid > 0.9999 {
		t.Logf("note: PRR at 3dB = %v", mid)
	}
}

func TestPRRLongerFramesLoseMore(t *testing.T) {
	snr := dbFactor(4)
	if prrFromSNR(snr, 100) >= prrFromSNR(snr, 20) {
		t.Fatal("longer frame should have lower PRR at same SNR")
	}
}

func TestPowerLevelDBm(t *testing.T) {
	if got := PowerLevelDBm(31); got != 0 {
		t.Fatalf("level 31 = %v, want 0", got)
	}
	if got := PowerLevelDBm(3); got != -25 {
		t.Fatalf("level 3 = %v, want -25", got)
	}
	// Level 2 extrapolates below -25.
	if got := PowerLevelDBm(2); got >= -25 {
		t.Fatalf("level 2 = %v, want < -25", got)
	}
	// Monotone increasing in level.
	prev := PowerLevelDBm(0)
	for l := 1; l <= 31; l++ {
		cur := PowerLevelDBm(l)
		if cur < prev {
			t.Fatalf("power not monotone at level %d", l)
		}
		prev = cur
	}
}

func TestDeliveryBetweenCloseNodes(t *testing.T) {
	eng, m := testMedium(t, 2, 5) // 5 m apart: excellent link
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	rx.SetOn(true)
	tx := m.Radio(0)
	tx.SetOn(true)
	f := &Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 30}
	if err := tx.Transmit(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(h.frames))
	}
	if h.frames[0] != f {
		t.Fatal("delivered wrong frame")
	}
}

func TestNoDeliveryBeyondRange(t *testing.T) {
	eng, m := testMedium(t, 2, 400) // 400 m at exponent 4: unreachable
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	rx.SetOn(true)
	tx := m.Radio(0)
	tx.SetOn(true)
	err := tx.Transmit(&Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 0 {
		t.Fatal("frame delivered across 400m at exponent 4")
	}
}

func TestSleepingRadioMissesFrame(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	// rx stays off.
	tx := m.Radio(0)
	tx.SetOn(true)
	if err := tx.Transmit(&Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 0 {
		t.Fatal("sleeping radio received a frame")
	}
}

func TestWakeMidFrameCannotDecode(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	tx := m.Radio(0)
	tx.SetOn(true)
	f := &Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 100}
	if err := tx.Transmit(f, 0); err != nil {
		t.Fatal(err)
	}
	// Wake halfway through the frame: preamble missed.
	eng.Schedule(m.Params().Airtime(100)/2, func() { rx.SetOn(true) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 0 {
		t.Fatal("radio decoded a frame whose preamble it slept through")
	}
}

func TestCCABusyDuringTransmission(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	rx := m.Radio(1)
	rx.SetOn(true)
	tx := m.Radio(0)
	tx.SetOn(true)
	var busyDuring, busyAfter bool
	if err := tx.Transmit(&Frame{Kind: FrameData, Src: 0, Size: 100}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(m.Params().Airtime(100)/2, func() { busyDuring = rx.CCABusy() })
	eng.Schedule(m.Params().Airtime(100)+time.Millisecond, func() { busyAfter = rx.CCABusy() })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !busyDuring {
		t.Fatal("CCA idle during nearby transmission")
	}
	if busyAfter {
		t.Fatal("CCA busy after transmission ended")
	}
}

func TestCollisionCorruptsWeakerFrame(t *testing.T) {
	// Nodes 0 and 2 both transmit to node 1; equal distances mean SINR ~0dB
	// for whichever frame node 1 locks onto, which yields PRR ~0.
	eng, m := testMedium(t, 3, 5)
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	rx.SetOn(true)
	a, b := m.Radio(0), m.Radio(2)
	a.SetOn(true)
	b.SetOn(true)
	if err := a.Transmit(&Frame{Kind: FrameData, Src: 0, Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Transmit(&Frame{Kind: FrameData, Src: 2, Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 0 {
		t.Fatalf("collision delivered %d frames", len(h.frames))
	}
	if rx.Counters().RxCorrupted == 0 {
		t.Fatal("collision not recorded as corruption")
	}
}

func TestLateInterferenceCorrupts(t *testing.T) {
	eng, m := testMedium(t, 3, 5)
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	rx.SetOn(true)
	a, b := m.Radio(0), m.Radio(2)
	a.SetOn(true)
	b.SetOn(true)
	if err := a.Transmit(&Frame{Kind: FrameData, Src: 0, Size: 100}, 0); err != nil {
		t.Fatal(err)
	}
	// b starts halfway through a's frame: rx already locked on a, but the
	// interference burst must still corrupt it.
	eng.Schedule(m.Params().Airtime(100)/2, func() {
		if err := b.Transmit(&Frame{Kind: FrameData, Src: 2, Size: 30}, 0); err != nil {
			t.Fatal(err)
		}
	})
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 0 {
		t.Fatal("frame survived equal-power mid-frame interference")
	}
}

func TestTransmitErrors(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	r := m.Radio(0)
	if err := r.Transmit(&Frame{Size: 10}, 0); err != ErrRadioOff {
		t.Fatalf("transmit while off = %v, want ErrRadioOff", err)
	}
	r.SetOn(true)
	if err := r.Transmit(&Frame{Size: 100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Transmit(&Frame{Size: 10}, 0); err != ErrTxBusy {
		t.Fatalf("transmit while busy = %v, want ErrTxBusy", err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if r.Transmitting() {
		t.Fatal("still transmitting after airtime")
	}
}

func TestOnTxDoneFires(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	r := m.Radio(0)
	h := &captureHandler{}
	r.SetHandler(h)
	r.SetOn(true)
	if err := r.Transmit(&Frame{Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if h.txDone != 1 {
		t.Fatalf("txDone = %d, want 1", h.txDone)
	}
}

func TestOnTimeAccounting(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	r := m.Radio(0)
	eng.Schedule(100*time.Millisecond, func() { r.SetOn(true) })
	eng.Schedule(300*time.Millisecond, func() { r.SetOn(false) })
	eng.Schedule(500*time.Millisecond, func() { r.SetOn(true) })
	eng.Schedule(600*time.Millisecond, func() { r.SetOn(false) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.OnTime(); got != 300*time.Millisecond {
		t.Fatalf("OnTime = %v, want 300ms", got)
	}
}

func TestExpectedPRRMatchesGeometry(t *testing.T) {
	_, m := testMedium(t, 3, 5)
	// Exponent-4 range at 0 dBm with RefLoss 55 is ~10 m: 5 m is a strong
	// link, 10 m is marginal.
	p1 := m.ExpectedPRR(0, 1, 0, 40)
	p2 := m.ExpectedPRR(0, 2, 0, 40)
	if p1 < 0.99 {
		t.Fatalf("PRR at 5m = %v, want ~1", p1)
	}
	if p2 > p1 {
		t.Fatal("PRR should not increase with distance")
	}
	if m.ExpectedPRR(0, 2, -60, 40) != 0 {
		t.Fatal("PRR at tiny power should be 0 (below sensitivity)")
	}
}

func TestCountersTrackKinds(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	r := m.Radio(0)
	r.SetOn(true)
	if err := r.Transmit(&Frame{Kind: FrameData, Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.Transmit(NewAck(0, &Frame{Src: 1, Seq: 9}), 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := r.Counters()
	if c.TxData != 1 || c.TxAck != 1 {
		t.Fatalf("counters = %+v, want 1 data + 1 ack", c)
	}
}

func TestNewAck(t *testing.T) {
	f := &Frame{Kind: FrameData, Src: 7, Seq: 42}
	ack := NewAck(3, f)
	if ack.Kind != FrameAck || ack.Src != 3 || ack.Dst != 7 || ack.AckSrc != 7 || ack.AckSeq != 42 {
		t.Fatalf("bad ack: %+v", ack)
	}
}

func dbFactor(db float64) float64 { return math.Pow(10, db/10) }

func TestWifiInterferenceCorruptsFrames(t *testing.T) {
	// With a strong interferer, a marginal link's delivery rate collapses.
	eng := sim.NewEngine()
	params := DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := NewMedium(eng, topology.Line(2, 8), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	deliver := func(withWifi bool) uint64 {
		eng := sim.NewEngine()
		m, err := NewMedium(eng, topology.Line(2, 8), nil, params, 1)
		if err != nil {
			t.Fatal(err)
		}
		if withWifi {
			w := noise.NewWifiInterferer(sim.NewRNG(9), -60)
			m.SetInterferer(w)
		}
		rx := m.Radio(1)
		rx.SetOn(true)
		tx := m.Radio(0)
		tx.SetOn(true)
		for i := 0; i < 200; i++ {
			at := time.Duration(i) * 5 * time.Millisecond
			eng.Schedule(at, func() {
				_ = tx.Transmit(&Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 30}, 0)
			})
		}
		if err := eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return rx.Counters().RxDelivered
	}
	clean := deliver(false)
	noisy := deliver(true)
	if clean < 190 {
		t.Fatalf("clean link delivered %d/200", clean)
	}
	if noisy >= clean {
		t.Fatalf("interference did not reduce delivery: %d vs %d", noisy, clean)
	}
	_ = med
}

func TestFadingChangesLinkOverTime(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	params.ShadowSigmaDB = 0
	params.FadingSigmaDB = 3
	params.FadingMinPeriod = 10 * time.Second
	params.FadingMaxPeriod = 20 * time.Second
	params.TxJitterSigmaDB = 0
	m, err := NewMedium(eng, topology.Line(2, 8), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sample the instantaneous gain across a fading period.
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		g := m.gainAt(0, 1, at)
		seen[fmt.Sprintf("%.1f", g)] = true
	}
	if len(seen) < 5 {
		t.Fatalf("fading produced only %d distinct gains", len(seen))
	}
}

func TestLinkOffsetSeversAndRestores(t *testing.T) {
	send := func(m *Medium, eng *sim.Engine, h *captureHandler) {
		tx := m.Radio(0)
		if err := tx.Transmit(&Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 30}, 0); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(eng.Now() + time.Second); err != nil {
			t.Fatal(err)
		}
	}
	eng, m := testMedium(t, 2, 5)
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	rx.SetOn(true)
	m.Radio(0).SetOn(true)

	m.AddLinkOffsetDB(0, 1, -200)
	if got := m.LinkOffsetDB(0, 1); got != -200 {
		t.Fatalf("LinkOffsetDB = %v, want -200", got)
	}
	send(m, eng, h)
	if len(h.frames) != 0 {
		t.Fatal("frame delivered over a severed link")
	}
	// Reverse direction untouched.
	if got := m.LinkOffsetDB(1, 0); got != 0 {
		t.Fatalf("reverse offset = %v, want 0", got)
	}
	// Restore (additive inverse) and the link works again.
	m.AddLinkOffsetDB(0, 1, 200)
	send(m, eng, h)
	if len(h.frames) != 1 {
		t.Fatalf("delivered %d frames after restore, want 1", len(h.frames))
	}
}

func TestDropFnDiscardsAsCorrupted(t *testing.T) {
	eng, m := testMedium(t, 2, 5)
	rx := m.Radio(1)
	h := &captureHandler{}
	rx.SetHandler(h)
	rx.SetOn(true)
	m.Radio(0).SetOn(true)
	drops := 0
	m.SetDropFn(func(id NodeID, f *Frame) bool {
		drops++
		return id == 1
	})
	if err := m.Radio(0).Transmit(&Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 0 {
		t.Fatal("dropped frame still delivered")
	}
	if drops != 1 {
		t.Fatalf("drop filter consulted %d times, want 1", drops)
	}
	c := rx.Counters()
	if c.RxCorrupted != 1 || c.RxDelivered != 0 {
		t.Fatalf("counters = %+v, want the drop counted as corruption", c)
	}
	// Removing the filter restores delivery.
	m.SetDropFn(nil)
	if err := m.Radio(0).Transmit(&Frame{Kind: FrameData, Src: 0, Dst: 1, Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(eng.Now() + time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 1 {
		t.Fatalf("delivered %d after filter removal, want 1", len(h.frames))
	}
}
