package radio

// FrameKind distinguishes link-layer frame types.
type FrameKind uint8

// Frame kinds.
const (
	FrameData FrameKind = iota + 1
	FrameAck
)

// Frame is a link-layer frame. Frames delivered to multiple overhearing
// receivers share one instance; receivers must treat them as read-only.
type Frame struct {
	Kind FrameKind
	Src  NodeID
	// Dst is the link-layer destination; BroadcastID for broadcast or
	// anycast frames (upper layers decide acceptance).
	Dst NodeID
	// Seq is a per-transmitter link-layer sequence number. Retransmissions
	// of the same packet reuse the Seq, letting receivers detect
	// duplicates and letting acks name the frame they acknowledge.
	Seq uint32
	// AckSrc/AckSeq identify the frame being acknowledged (Kind=FrameAck).
	AckSrc NodeID
	AckSeq uint32
	// Size is the MAC frame length in bytes (excluding PHY overhead),
	// used for airtime and PRR computation.
	Size int
	// Payload carries the upper-layer message (in-memory simulation; no
	// byte serialization). Must be immutable once transmitted.
	Payload any
}

// ackSize is the MAC-layer size of an acknowledgement frame in bytes.
const ackSize = 5

// NewAck builds an acknowledgement for frame f sent by acker.
func NewAck(acker NodeID, f *Frame) *Frame {
	return &Frame{
		Kind:   FrameAck,
		Src:    acker,
		Dst:    f.Src,
		AckSrc: f.Src,
		AckSeq: f.Seq,
		Size:   ackSize,
	}
}
