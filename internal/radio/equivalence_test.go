package radio

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"teleadjust/internal/noise"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// ---------------------------------------------------------------------------
// Dense matrix oracle
//
// A verbatim re-implementation of the historical dense construction: full
// n×n gain matrices and O(n²) neighbor scans. The sparse medium must
// reproduce its neighbor sets, gains, and ExpectedPRR exactly.
// ---------------------------------------------------------------------------

type denseOracle struct {
	params    Params
	gain      [][]float64
	neighbors [][]NodeID
}

func newDenseOracle(dep *topology.Deployment, params Params, seed uint64) *denseOracle {
	n := dep.Len()
	o := &denseOracle{params: params}
	o.gain = make([][]float64, n)
	for i := range o.gain {
		o.gain[i] = make([]float64, n)
	}
	switch params.GainModel {
	case GainSweep:
		// The historical sequential sweep: one shared stream, row-major.
		shadowRNG := sim.DeriveRNG(seed, 0xface)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				d := dep.Positions[i].Distance(dep.Positions[j])
				o.gain[i][j] = -params.PathLossDB(d) + shadowRNG.NormFloat64()*params.ShadowSigmaDB
			}
		}
	case GainPerLink:
		// All pairs, one derived stream each, clamped shadowing.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				rng := sim.DeriveRNG(seed, linkStream(i, j))
				d := dep.Positions[i].Distance(dep.Positions[j])
				o.gain[i][j] = -params.PathLossDB(d) + clampSigma(rng.NormFloat64())*params.ShadowSigmaDB
			}
		}
	}
	o.neighbors = make([][]NodeID, n)
	fadeHeadroom := 1.6 * params.FadingSigmaDB
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if params.MaxTxPowerDBm+o.gain[i][j]+fadeHeadroom >= params.InterferenceFloorDBm {
				o.neighbors[i] = append(o.neighbors[i], NodeID(j))
			}
		}
	}
	return o
}

func (o *denseOracle) expectedPRR(from, to NodeID, txPowerDBm float64, sizeBytes int) float64 {
	rx := txPowerDBm + o.gain[from][to]
	if rx < o.params.SensitivityDBm {
		return 0
	}
	snr := dbmToMW(rx) / dbmToMW(quietFloorDBm)
	return prrFromSNR(snr, sizeBytes+o.params.PhyOverheadBytes)
}

// ---------------------------------------------------------------------------
// Randomized deployments
// ---------------------------------------------------------------------------

// clusterDeployment scatters n nodes in gaussian clusters around a few
// centers — the worst case for a uniform grid index (dense cells next to
// empty ones).
func clusterDeployment(n int, seed uint64) *topology.Deployment {
	rng := sim.NewRNG(seed)
	centers := []topology.Point{{X: 20, Y: 20}, {X: 95, Y: 30}, {X: 55, Y: 100}}
	pts := make([]topology.Point, n)
	for i := range pts {
		c := centers[rng.IntN(len(centers))]
		pts[i] = topology.Point{
			X: c.X + rng.NormFloat64()*12,
			Y: c.Y + rng.NormFloat64()*12,
		}
	}
	return &topology.Deployment{Name: "eq-cluster", Positions: pts, Sink: 0}
}

// jitteredLine spreads n nodes along a noisy line (boundary-heavy: every
// node sits near a cell edge of the index).
func jitteredLine(n int, seed uint64) *topology.Deployment {
	rng := sim.NewRNG(seed)
	pts := make([]topology.Point, n)
	for i := range pts {
		pts[i] = topology.Point{
			X: float64(i)*9 + rng.Float64()*4,
			Y: rng.NormFloat64() * 3,
		}
	}
	return &topology.Deployment{Name: "eq-line", Positions: pts, Sink: 0}
}

func equivalenceDeployments(seed uint64) []*topology.Deployment {
	return []*topology.Deployment{
		clusterDeployment(48, seed),
		topology.Grid("eq-grid", 7, 7, 90, 90, true, topology.Point{X: 45, Y: 45}, seed),
		jitteredLine(32, seed),
	}
}

func equivalenceParams() []Params {
	sweep := DefaultParams()
	perlink := DefaultParams()
	perlink.GainModel = GainPerLink
	perlinkFade := perlink
	perlinkFade.FadingSigmaDB = 1.5
	perlinkFade.FadingMinPeriod = 15 * time.Second
	perlinkFade.FadingMaxPeriod = 60 * time.Second
	sweepFade := sweep
	sweepFade.FadingSigmaDB = 1.5
	sweepFade.FadingMinPeriod = 15 * time.Second
	sweepFade.FadingMaxPeriod = 60 * time.Second
	return []Params{sweep, perlink, sweepFade, perlinkFade}
}

// TestSparseMatchesDenseOracle is the equivalence property test: over
// randomized cluster, grid-with-jitter, and linear deployments, the
// sparse medium must reproduce the dense oracle's neighbor sets, stored
// gains, and ExpectedPRR for every ordered pair, under both gain models.
func TestSparseMatchesDenseOracle(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, dep := range equivalenceDeployments(seed) {
			for pi, params := range equivalenceParams() {
				name := fmt.Sprintf("%s/params%d/seed%d", dep.Name, pi, seed)
				m, err := NewMedium(sim.NewEngine(), dep, nil, params, seed)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				oracle := newDenseOracle(dep, params, seed)
				n := dep.Len()
				floorGain := params.linkFloorGainDB()
				for i := 0; i < n; i++ {
					id := NodeID(i)
					got := m.neighborIDs(id)
					want := oracle.neighbors[i]
					if len(got) != len(want) {
						t.Fatalf("%s: node %d has %d neighbors, oracle %d", name, i, len(got), len(want))
					}
					for k := range got {
						if got[k] != want[k] {
							t.Fatalf("%s: node %d neighbor[%d] = %d, oracle %d", name, i, k, got[k], want[k])
						}
					}
					dsts, gains := m.storedLinks(id)
					stored := make(map[NodeID]float64, len(dsts))
					for k, dst := range dsts {
						if gains[k] != oracle.gain[i][dst] {
							t.Fatalf("%s: gain(%d→%d) = %v, oracle %v", name, i, dst, gains[k], oracle.gain[i][dst])
						}
						stored[dst] = gains[k]
					}
					for j := 0; j < n; j++ {
						if j == i {
							continue
						}
						jd := NodeID(j)
						if _, ok := stored[jd]; !ok && oracle.gain[i][j] >= floorGain {
							t.Fatalf("%s: link %d→%d above tracking floor (%.1f ≥ %.1f) but not stored",
								name, i, j, oracle.gain[i][j], floorGain)
						}
						if g := m.GainDB(id, jd); !math.IsInf(g, -1) && g != oracle.gain[i][j] {
							t.Fatalf("%s: GainDB(%d,%d) = %v, oracle %v", name, i, j, g, oracle.gain[i][j])
						}
						for _, power := range []float64{params.MaxTxPowerDBm, params.MaxTxPowerDBm - 5} {
							got := m.ExpectedPRR(id, jd, power, 32)
							want := oracle.expectedPRR(id, jd, power, 32)
							if got != want {
								t.Fatalf("%s: ExpectedPRR(%d,%d,%v) = %v, oracle %v", name, i, j, power, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// scriptedTraces builds the medium with build, runs a fixed transmission
// script over it, and returns the rendered medium trace stream.
func scriptedTraces(t *testing.T, dep *topology.Deployment, params Params, seed uint64,
	build func(*sim.Engine, *topology.Deployment, *noise.Model, Params, uint64) (*Medium, error)) []string {
	t.Helper()
	eng := sim.NewEngine()
	m, err := build(eng, dep, nil, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	m.SetTraceFn(func(e TraceEvent) { out = append(out, e.Format()) })
	n := m.NumNodes()
	for i := 0; i < n; i++ {
		m.Radio(NodeID(i)).SetOn(true)
	}
	// Staggered broadcasts from every node, with deliberate collisions
	// every 7th slot (two transmitters in the same slot).
	for step := 0; step < 3*n; step++ {
		src := NodeID(step % n)
		at := time.Duration(step) * 7 * time.Millisecond
		f := &Frame{Kind: FrameData, Src: src, Dst: BroadcastID, Seq: uint32(step), Size: 30}
		eng.Schedule(at, func() { _ = m.Radio(src).Transmit(f, params.MaxTxPowerDBm) })
		if step%7 == 3 {
			other := NodeID((step + n/2) % n)
			f2 := &Frame{Kind: FrameData, Src: other, Dst: BroadcastID, Seq: uint32(step), Size: 30}
			eng.Schedule(at, func() { _ = m.Radio(other).Transmit(f2, params.MaxTxPowerDBm) })
		}
	}
	if err := eng.Run(time.Duration(3*n+10) * 7 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSparseTraceMatchesDenseRun drives the same scripted transmission
// schedule over the sparse medium and the dense all-pairs oracle medium
// and asserts the full TraceEvent streams match byte-for-byte: identical
// neighbor order means identical jitter/PRR RNG consumption, so any
// divergence in the link table shows up as a diverging stream.
func TestSparseTraceMatchesDenseRun(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		for _, dep := range equivalenceDeployments(seed) {
			for pi, params := range equivalenceParams() {
				name := fmt.Sprintf("%s/params%d/seed%d", dep.Name, pi, seed)
				sparse := scriptedTraces(t, dep, params, seed, NewMedium)
				dense := scriptedTraces(t, dep, params, seed, newDenseMedium)
				if len(sparse) == 0 {
					t.Fatalf("%s: scripted run produced no trace events", name)
				}
				if len(sparse) != len(dense) {
					t.Fatalf("%s: %d sparse events vs %d dense", name, len(sparse), len(dense))
				}
				for k := range sparse {
					if sparse[k] != dense[k] {
						t.Fatalf("%s: trace diverges at event %d:\nsparse: %s\ndense:  %s",
							name, k, sparse[k], dense[k])
					}
				}
			}
		}
	}
}

// grid1kParams is the large-field calibration (matches the grid1k
// scenario): refgrid's high-gain radio with the per-link gain model and
// a slightly raised interference floor to keep audible neighborhoods at
// ~60 m.
func grid1kParams() Params {
	params := DefaultParams()
	params.RefLossDB = 35
	params.InterferenceFloorDBm = -106
	params.GainModel = GainPerLink
	return params
}

func grid1kDeployment(seed uint64) *topology.Deployment {
	return topology.Grid("grid-1k", 32, 32, 420, 420, true, topology.Point{X: 210, Y: 210}, seed)
}

// TestLinkOffsetStoreIsPerLink is the fault-injection allocation
// regression: on a 1024-node field the first injected link fault must
// allocate O(links) — not an n×n matrix — and subsequent injections must
// not allocate at all.
func TestLinkOffsetStoreIsPerLink(t *testing.T) {
	m, err := NewMedium(sim.NewEngine(), grid1kDeployment(1), nil, grid1kParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	n, links := m.NumNodes(), m.NumLinks()
	if n != 1024 {
		t.Fatalf("deployment has %d nodes, want 1024", n)
	}
	if links >= n*(n-1)/4 {
		t.Fatalf("link table not sparse: %d links for %d nodes", links, n)
	}
	if got := m.numOffsetSlots(); got != 0 {
		t.Fatalf("offset store allocated before any injection: %d slots", got)
	}
	// Adjacent grid nodes are guaranteed within range: the first
	// injection allocates exactly one slot per indexed link.
	m.AddLinkOffsetDB(0, 1, -30)
	if got := m.numOffsetSlots(); got != links {
		t.Fatalf("offset store has %d slots, want NumLinks = %d", got, links)
	}
	if got := m.LinkOffsetDB(0, 1); got != -30 {
		t.Fatalf("LinkOffsetDB(0,1) = %v, want -30", got)
	}
	if avg := testing.AllocsPerRun(100, func() { m.AddLinkOffsetDB(5, 6, -1) }); avg != 0 {
		t.Fatalf("warm link-fault injection allocates %.1f objects per run, want 0", avg)
	}
	// A pair across the full 420 m field is unindexed: the offset is
	// readable but must not grow the per-link store.
	far := NodeID(n - 1)
	m.AddLinkOffsetDB(0, far, -7)
	if got := m.LinkOffsetDB(0, far); got != -7 {
		t.Fatalf("unindexed LinkOffsetDB = %v, want -7", got)
	}
	if got := m.numOffsetSlots(); got != links {
		t.Fatalf("unindexed injection grew the offset store to %d slots", got)
	}
}

// TestGrid1kMediumSparse pins the scaling contract of the per-link
// model: a 1024-node field builds a link table that is a small fraction
// of n², every node keeps a usable audible neighborhood, and unit-disc
// truth (nodes within the deterministic radio range) is fully linked.
func TestGrid1kMediumSparse(t *testing.T) {
	dep := grid1kDeployment(2)
	m, err := NewMedium(sim.NewEngine(), dep, nil, grid1kParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumNodes()
	avgDeg := float64(m.NumLinks()) / float64(n)
	if avgDeg < 10 || avgDeg > 200 {
		t.Fatalf("average degree %.1f outside the calibrated range", avgDeg)
	}
	// Spot-check reciprocity of storage against brute-force geometry for
	// a handful of nodes: every pair within 30 m (strong deterministic
	// link at RefLoss 35) must be stored.
	for _, i := range []int{0, 511, 1023} {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if dep.Positions[i].Distance(dep.Positions[j]) < 30 {
				if math.IsInf(m.GainDB(NodeID(i), NodeID(j)), -1) {
					t.Fatalf("close pair %d→%d (%.1fm) missing from link table",
						i, j, dep.Positions[i].Distance(dep.Positions[j]))
				}
			}
		}
	}
}

// TestReseedPCGMatchesDeriveRNG pins the allocation-free per-link stream
// derivation to DeriveRNG's output.
func TestReseedPCGMatchesDeriveRNG(t *testing.T) {
	pcg := rand.NewPCG(0, 0)
	shared := rand.New(pcg)
	for stream := uint64(0); stream < 50; stream++ {
		sim.ReseedPCG(pcg, 42, linkStream(3, int(stream)))
		fresh := sim.DeriveRNG(42, linkStream(3, int(stream)))
		for d := 0; d < 4; d++ {
			if a, b := shared.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("stream %d draw %d: ReseedPCG %#x vs DeriveRNG %#x", stream, d, a, b)
			}
		}
	}
}
