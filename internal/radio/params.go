// Package radio implements the wireless physical layer of the simulator:
// log-distance path loss with shadowing, SINR computation with concurrent
// transmissions as interference, the CC2420/802.15.4 analytic SNR→PRR
// curve, CPM noise per node, clear-channel assessment, and radio on-time
// accounting used for duty-cycle measurements.
package radio

import (
	"math"
	"time"
)

// NodeID identifies a node on the medium.
type NodeID uint16

// BroadcastID is the link-layer broadcast destination.
const BroadcastID NodeID = 0xFFFF

// Params are physical-layer parameters. Defaults model a CC2420 radio in a
// harsh propagation environment (path exponent 4), matching the paper's
// TOSSIM setup.
type Params struct {
	// PathLossExponent is the log-distance path loss exponent.
	PathLossExponent float64
	// RefLossDB is path loss at the reference distance RefDist (metres).
	RefLossDB float64
	RefDist   float64
	// ShadowSigmaDB is the standard deviation of per-directed-link
	// log-normal shadowing, producing asymmetric links like TOSSIM's
	// link-layer model.
	ShadowSigmaDB float64
	// SensitivityDBm is the minimum signal power for preamble lock.
	SensitivityDBm float64
	// CCAThresholdDBm is the energy threshold for "channel busy".
	CCAThresholdDBm float64
	// CaptureThresholdDB is the minimum signal-to-interference ratio for a
	// locked frame to survive a concurrent 802.15.4 transmission (capture
	// effect). The DSSS processing gain in the analytic PRR curve applies
	// to uncorrelated noise, not to co-channel frames, so collisions are
	// gated separately.
	CaptureThresholdDB float64
	// BitRate is the radio bit rate in bits per second.
	BitRate int
	// PhyOverheadBytes covers preamble, SFD and length fields.
	PhyOverheadBytes int
	// TxJitterSigmaDB adds independent per-transmission, per-receiver
	// gain jitter (fast fading): each copy of an LPL stream gets a fresh
	// draw, so marginal links deliver a fraction of copies rather than
	// none — the per-packet PRR variance real links exhibit.
	TxJitterSigmaDB float64
	// FadingSigmaDB enables slow time-varying per-directed-link fading
	// with this RMS amplitude (0 disables). Links then swing through the
	// PRR gray zone over tens of seconds, reproducing the bursty links
	// (β-factor) of real deployments.
	FadingSigmaDB float64
	// FadingMinPeriod/FadingMaxPeriod bound the per-link fading periods.
	FadingMinPeriod, FadingMaxPeriod time.Duration
	// InterferenceFloorDBm: links whose best-case received power is below
	// this are ignored entirely (connectivity pruning).
	InterferenceFloorDBm float64
	// MaxTxPowerDBm is used for connectivity pruning.
	MaxTxPowerDBm float64
	// GainModel selects how per-link gains are derived from the seed
	// (GainSweep reproduces the historical dense draw order; GainPerLink
	// scales to thousand-node fields).
	GainModel GainModel
}

// GainModel selects how per-directed-link channel gains are derived from
// the simulation seed.
type GainModel uint8

const (
	// GainSweep (the zero value) draws shadowing and fading from
	// sequential all-pairs RNG sweeps, byte-identically reproducing the
	// draw order of the historical dense-matrix medium — existing
	// scenario traces do not move. Construction costs O(n²) time (every
	// pair's draw must be consumed to keep the stream aligned) but only
	// O(links) memory.
	GainSweep GainModel = iota
	// GainPerLink derives an independent RNG stream per directed link,
	// so only the candidate pairs a spatial index finds within
	// Params.MaxCommRangeM ever draw: construction is O(n·neighbors) in
	// time and memory. Shadow draws are clamped to ±ShadowClampSigma
	// standard deviations, which bounds the maximum communication range
	// and makes the index cutoff provably lossless. The large-field
	// scenarios (grid1k and up) use this model.
	GainPerLink
)

// ShadowClampSigma bounds per-link shadowing draws (in standard
// deviations) under GainPerLink. Four sigma truncates ~0.006% of the
// lognormal tail while keeping the spatial index's candidate discs small
// enough that candidate counts stay within a constant factor of the true
// audible neighborhood.
const ShadowClampSigma = 4.0

// fadeHeadroomDB is the connectivity-pruning headroom reserved for slow
// fading peaks: a link whose static gain sits this far below the
// interference floor can still swing into audibility.
func (p Params) fadeHeadroomDB() float64 { return 1.6 * p.FadingSigmaDB }

// linkFloorGainDB returns the minimum static gain worth tracking: below
// it a pair can neither be heard above the interference floor nor decoded
// at the sensitivity threshold, even at maximum TX power with fade
// headroom, so the medium stores no state for it.
func (p Params) linkFloorGainDB() float64 {
	return math.Min(p.InterferenceFloorDBm, p.SensitivityDBm) - p.MaxTxPowerDBm - p.fadeHeadroomDB()
}

// MaxCommRangeM returns the distance beyond which no directed pair can
// reach linkFloorGainDB under GainPerLink's clamped shadowing — the
// spatial index's cell size and query radius.
func (p Params) MaxCommRangeM() float64 {
	// Largest tolerable path loss: -PL(d) + ShadowClampSigma·σ ≥ floor.
	budget := ShadowClampSigma*p.ShadowSigmaDB - p.linkFloorGainDB()
	if budget <= p.RefLossDB {
		return p.RefDist
	}
	return p.RefDist * math.Pow(10, (budget-p.RefLossDB)/(10*p.PathLossExponent))
}

// DefaultParams returns CC2420-like parameters with path exponent 4.
func DefaultParams() Params {
	return Params{
		PathLossExponent:     4.0,
		RefLossDB:            55.0,
		RefDist:              1.0,
		ShadowSigmaDB:        2.5,
		SensitivityDBm:       -95.0,
		CCAThresholdDBm:      -90.0,
		CaptureThresholdDB:   4.0,
		BitRate:              250000,
		PhyOverheadBytes:     6,
		TxJitterSigmaDB:      1.5,
		FadingSigmaDB:        0,
		FadingMinPeriod:      20 * time.Second,
		FadingMaxPeriod:      120 * time.Second,
		InterferenceFloorDBm: -110.0,
		MaxTxPowerDBm:        0.0,
	}
}

// Airtime returns the on-air duration of a frame with the given MAC-layer
// size in bytes.
func (p Params) Airtime(sizeBytes int) time.Duration {
	bits := (sizeBytes + p.PhyOverheadBytes) * 8
	return time.Duration(float64(bits) / float64(p.BitRate) * float64(time.Second))
}

// PathLossDB returns deterministic path loss at distance d metres.
func (p Params) PathLossDB(d float64) float64 {
	if d < p.RefDist {
		d = p.RefDist
	}
	return p.RefLossDB + 10*p.PathLossExponent*math.Log10(d/p.RefDist)
}

// PowerLevelDBm maps CC2420 register power levels to approximate output
// power in dBm (interpolated from the datasheet table; the paper's indoor
// testbed uses level 2).
func PowerLevelDBm(level int) float64 {
	// Datasheet anchor points: 31→0, 27→-1, 23→-3, 19→-5, 15→-7,
	// 11→-10, 7→-15, 3→-25 dBm.
	anchors := []struct {
		level int
		dbm   float64
	}{
		{3, -25}, {7, -15}, {11, -10}, {15, -7}, {19, -5}, {23, -3}, {27, -1}, {31, 0},
	}
	if level <= anchors[0].level {
		// Extrapolate below level 3 at the local slope (-2.5 dB/level).
		return anchors[0].dbm - 2.5*float64(anchors[0].level-level)
	}
	if level >= anchors[len(anchors)-1].level {
		return anchors[len(anchors)-1].dbm
	}
	for i := 1; i < len(anchors); i++ {
		if level <= anchors[i].level {
			lo, hi := anchors[i-1], anchors[i]
			f := float64(level-lo.level) / float64(hi.level-lo.level)
			return lo.dbm + f*(hi.dbm-lo.dbm)
		}
	}
	return 0
}

// dbmToMW converts dBm to milliwatts.
func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// mwToDBm converts milliwatts to dBm.
func mwToDBm(mw float64) float64 {
	if mw <= 0 {
		return -200
	}
	return 10 * math.Log10(mw)
}

// prrFromSNR returns the packet reception ratio for the given linear SNR
// and frame length in bytes, using the analytic CC2420 (802.15.4 DSSS
// O-QPSK) bit-error model used by TOSSIM-class simulators:
//
//	Pb = (8/15)·(1/16)·Σ_{k=2}^{16} (−1)^k · C(16,k) · exp(20·SNR·(1/k − 1))
//	PRR = (1 − Pb)^(8·f)
func prrFromSNR(snrLinear float64, frameBytes int) float64 {
	if snrLinear <= 0 {
		return 0
	}
	var pb float64
	sign := 1.0 // (−1)^k for k=2 is +1
	for k := 2; k <= 16; k++ {
		pb += sign * binom16[k] * math.Exp(20*snrLinear*(1/float64(k)-1))
		sign = -sign
	}
	pb *= 8.0 / 15.0 / 16.0
	if pb < 0 {
		pb = 0
	}
	if pb > 1 {
		pb = 1
	}
	prr := math.Pow(1-pb, float64(8*frameBytes))
	return prr
}

// binom16 holds C(16, k).
var binom16 = [17]float64{
	1, 16, 120, 560, 1820, 4368, 8008, 11440, 12870,
	11440, 8008, 4368, 1820, 560, 120, 16, 1,
}
