package radio

import (
	"strings"
	"testing"
	"time"

	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

func TestTraceCapturesTxAndRx(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	params.ShadowSigmaDB = 0
	m, err := NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewTraceRing(16)
	m.SetTraceFn(ring.Record)
	m.Radio(0).SetOn(true)
	m.Radio(1).SetOn(true)
	if err := m.Radio(0).Transmit(&Frame{Kind: FrameData, Src: 0, Dst: 1, Seq: 7, Size: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("captured %d events, want tx+rx", len(evs))
	}
	if evs[0].Kind != TraceTxStart || evs[0].Node != 0 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Kind != TraceRxOK || evs[1].Node != 1 {
		t.Fatalf("second event = %+v", evs[1])
	}
	if evs[1].SINRdB < 5 {
		t.Fatalf("recorded SINR %.1f dB implausibly low for a 5 m link", evs[1].SINRdB)
	}
	if !strings.Contains(evs[0].Format(), "tx") || !strings.Contains(evs[1].Format(), "rx-ok") {
		t.Fatalf("formatting broken: %q / %q", evs[0].Format(), evs[1].Format())
	}
}

func TestTraceRingWraps(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(TraceEvent{At: time.Duration(i), Kind: TraceTxStart, Frame: &Frame{}})
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.At != time.Duration(6+i) {
			t.Fatalf("ring order wrong: %v", evs)
		}
	}
}

func TestTraceRingDump(t *testing.T) {
	ring := NewTraceRing(4)
	ring.Record(TraceEvent{Kind: TraceRxCorrupt, Frame: &Frame{Src: 3}})
	var sb strings.Builder
	if err := ring.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rx-bad") {
		t.Fatalf("dump missing event: %q", sb.String())
	}
}

func TestTraceKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range TraceKinds {
		s := k.String()
		if s == "unknown" || s == "" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if TraceUnknown.String() != "unknown" || TraceKind(99).String() != "unknown" {
		t.Fatalf("fallback names wrong: %q / %q", TraceUnknown.String(), TraceKind(99).String())
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	params.ShadowSigmaDB = 0
	m, err := NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Radio(0).SetOn(true)
	if err := m.Radio(0).Transmit(&Frame{Kind: FrameData, Size: 10}, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err) // no trace fn installed: must not panic
	}
}
