package radio

import "time"

// EnergyModel converts radio on-time into charge and energy using CC2420
// datasheet currents. Listening and receiving draw the same current on
// this radio (the RX chain runs either way), which is why duty cycle is
// the paper's energy proxy.
type EnergyModel struct {
	// SupplyVolts is the battery voltage (TelosB: 3.0 V nominal).
	SupplyVolts float64
	// RxCurrentA is the listen/receive current (CC2420: 18.8 mA).
	RxCurrentA float64
	// TxCurrentA is the transmit current at the configured power
	// (CC2420: 17.4 mA at 0 dBm, ~8.5 mA at -25 dBm).
	TxCurrentA float64
	// SleepCurrentA is the power-down current (CC2420: ~20 µA with the
	// MCU asleep).
	SleepCurrentA float64
}

// DefaultEnergyModel returns CC2420/TelosB values at 0 dBm.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		SupplyVolts:   3.0,
		RxCurrentA:    0.0188,
		TxCurrentA:    0.0174,
		SleepCurrentA: 0.00002,
	}
}

// EnergyBreakdown is the per-node energy spent over an interval.
type EnergyBreakdown struct {
	TxJoules    float64
	RxJoules    float64
	SleepJoules float64
}

// Total returns the summed energy in joules.
func (b EnergyBreakdown) Total() float64 { return b.TxJoules + b.RxJoules + b.SleepJoules }

// Energy computes the energy a radio spent over an elapsed wall interval,
// splitting its on-time into transmit airtime (reconstructed from the
// frame counters) and listen/receive time.
func (m EnergyModel) Energy(r *Radio, elapsed time.Duration) EnergyBreakdown {
	on := r.OnTime()
	if on > elapsed {
		on = elapsed
	}
	// Approximate transmit airtime from the counters: data frames at the
	// protocol sizes are not tracked individually, so use the medium's
	// accumulated airtime counter.
	tx := r.txAirtime
	if tx > on {
		tx = on
	}
	listen := on - tx
	sleep := elapsed - on
	return EnergyBreakdown{
		TxJoules:    m.SupplyVolts * m.TxCurrentA * tx.Seconds(),
		RxJoules:    m.SupplyVolts * m.RxCurrentA * listen.Seconds(),
		SleepJoules: m.SupplyVolts * m.SleepCurrentA * sleep.Seconds(),
	}
}

// TxAirtime returns the cumulative time this radio spent transmitting.
func (r *Radio) TxAirtime() time.Duration { return r.txAirtime }
