package radio

import (
	"math"
	"testing"
	"time"

	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

func TestEnergyBreakdown(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	params.ShadowSigmaDB = 0
	m, err := NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Radio(0)
	r.SetOn(true)
	// 10 frames of 30 bytes: airtime 36B × 32 µs = 1.152 ms each.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		eng.Schedule(at, func() {
			if err := r.Transmit(&Frame{Kind: FrameData, Size: 30}, 0); err != nil {
				t.Error(err)
			}
		})
	}
	eng.Schedule(200*time.Millisecond, func() { r.SetOn(false) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	wantTx := 10 * params.Airtime(30)
	if got := r.TxAirtime(); got != wantTx {
		t.Fatalf("tx airtime %v, want %v", got, wantTx)
	}
	model := DefaultEnergyModel()
	e := model.Energy(r, time.Second)
	if e.TxJoules <= 0 || e.RxJoules <= 0 || e.SleepJoules <= 0 {
		t.Fatalf("non-positive components: %+v", e)
	}
	// Sanity: tx energy = 3V × 17.4mA × 11.52ms ≈ 0.60 mJ.
	if math.Abs(e.TxJoules-3.0*0.0174*wantTx.Seconds()) > 1e-9 {
		t.Fatalf("tx energy %v", e.TxJoules)
	}
	// Listening dominates: radio was on 200 ms, transmitting only ~12 ms.
	if e.RxJoules < e.TxJoules {
		t.Fatalf("rx %v should exceed tx %v here", e.RxJoules, e.TxJoules)
	}
	if e.Total() <= 0 {
		t.Fatal("zero total")
	}
}

func TestEnergySleepOnlyIsCheap(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	m, err := NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	model := DefaultEnergyModel()
	e := model.Energy(m.Radio(0), time.Second)
	if e.TxJoules != 0 || e.RxJoules != 0 {
		t.Fatalf("off radio burned active energy: %+v", e)
	}
	// 3V × 20µA × 1s = 60 µJ.
	if math.Abs(e.SleepJoules-60e-6) > 1e-9 {
		t.Fatalf("sleep energy %v, want 60µJ", e.SleepJoules)
	}
}
