package radio

import (
	"fmt"
	"io"
	"time"
)

// TraceKind classifies medium trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceUnknown is the zero kind; it is never emitted by the medium and
	// names values outside the known set.
	TraceUnknown TraceKind = iota
	// TraceTxStart: a frame went on the air.
	TraceTxStart
	// TraceRxOK: a receiver decoded the frame.
	TraceRxOK
	// TraceRxCorrupt: a locked receiver failed the SINR draw.
	TraceRxCorrupt
)

// TraceKinds is the full set of kinds the medium emits, for consumers
// (like the telemetry bus) that map them without guessing the range.
var TraceKinds = [...]TraceKind{TraceTxStart, TraceRxOK, TraceRxCorrupt}

// String names the kind; values outside the set render as TraceUnknown.
func (k TraceKind) String() string {
	switch k {
	case TraceTxStart:
		return "tx"
	case TraceRxOK:
		return "rx-ok"
	case TraceRxCorrupt:
		return "rx-bad"
	case TraceUnknown:
	}
	return "unknown"
}

// TraceEvent is one medium-level event, reported as it happens.
type TraceEvent struct {
	At   time.Duration
	Kind TraceKind
	// Node is the transmitter for TraceTxStart, the receiver otherwise.
	Node  NodeID
	Frame *Frame
	// SINRdB is populated for receive events.
	SINRdB float64
}

// Format renders the event as one log line.
func (e TraceEvent) Format() string {
	switch e.Kind {
	case TraceTxStart:
		return fmt.Sprintf("%12v %-6s node=%-3d kind=%d src=%d dst=%d seq=%d size=%d",
			e.At, e.Kind, e.Node, e.Frame.Kind, e.Frame.Src, e.Frame.Dst, e.Frame.Seq, e.Frame.Size)
	default:
		return fmt.Sprintf("%12v %-6s node=%-3d kind=%d src=%d dst=%d seq=%d sinr=%.1fdB",
			e.At, e.Kind, e.Node, e.Frame.Kind, e.Frame.Src, e.Frame.Dst, e.Frame.Seq, e.SINRdB)
	}
}

// SetTraceFn installs a medium-level event tap (nil disables). The
// callback fires synchronously inside the simulation; keep it cheap.
func (m *Medium) SetTraceFn(fn func(TraceEvent)) { m.traceFn = fn }

// TraceRing captures the last N medium events, for post-mortem dumps.
type TraceRing struct {
	events []TraceEvent
	next   int
	filled bool
}

// NewTraceRing creates a ring holding up to n events.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 1024
	}
	return &TraceRing{events: make([]TraceEvent, n)}
}

// Record stores an event (use as the Medium trace function).
func (r *TraceRing) Record(e TraceEvent) {
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Events returns the captured events in chronological order.
func (r *TraceRing) Events() []TraceEvent {
	if !r.filled {
		out := make([]TraceEvent, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes the captured events to w, one line each.
func (r *TraceRing) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e.Format()); err != nil {
			return err
		}
	}
	return nil
}

func (m *Medium) trace(e TraceEvent) {
	if m.traceFn != nil {
		e.At = m.eng.Now()
		m.traceFn(e)
	}
}
