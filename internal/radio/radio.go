package radio

import (
	"errors"
	"math/rand/v2"
	"time"
)

// State is the radio state machine state.
type State uint8

// Radio states.
const (
	StateOff State = iota + 1
	StateListening
	StateReceiving
	StateTransmitting
)

// Errors returned by Transmit.
var (
	ErrRadioOff = errors.New("radio: transmit while off")
	ErrTxBusy   = errors.New("radio: transmit while already transmitting")
)

// Handler receives radio events. MAC layers implement it.
type Handler interface {
	// OnFrame delivers a successfully decoded frame. The frame is shared
	// with other receivers and must be treated as read-only.
	OnFrame(f *Frame)
	// OnTxDone signals the end of a transmission started with Transmit.
	OnTxDone()
}

// Counters aggregates per-radio traffic statistics.
type Counters struct {
	TxData      uint64
	TxAck       uint64
	RxDelivered uint64
	RxCorrupted uint64
}

// Radio is one node's transceiver. All methods must be called from engine
// event context (single-goroutine simulation).
type Radio struct {
	medium  *Medium
	id      NodeID
	noise   noiseSource
	rng     *rand.Rand
	handler Handler

	state State
	// air tracks the received power (mW) of every in-flight transmission
	// audible at this node, keyed by transmission id. Maintained even
	// while off so CCA is correct right after waking.
	air map[uint64]float64

	// rx is the in-progress reception context, valid only while rxActive
	// is set. It is a value field: locking onto a frame used to allocate
	// one rxContext per audible neighbor per transmission, the largest
	// allocation site on the recorded frame-path profiles.
	rx       rxContext
	rxActive bool
	curTx    *transmission

	onSince   time.Duration
	onTime    time.Duration
	txAirtime time.Duration

	counters Counters
}

// noiseSource abstracts the CPM source so tests can run without a model.
type noiseSource interface {
	ReadAt(t time.Duration) float64
}

type rxContext struct {
	tx          *transmission
	signalMW    float64
	maxInterfMW float64
}

// ID returns the node id this radio belongs to.
func (r *Radio) ID() NodeID { return r.id }

// Params returns the physical-layer parameters of the medium.
func (r *Radio) Params() Params { return r.medium.params }

// SetHandler installs the MAC-layer event handler.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// State returns the current radio state.
func (r *Radio) State() State {
	if r.state == 0 {
		return StateOff
	}
	return r.state
}

// On reports whether the radio is powered.
func (r *Radio) On() bool { return r.State() != StateOff }

// SetOn powers the radio up or down. Powering down aborts any reception in
// progress; powering down while transmitting is a protocol-stack bug and
// panics.
func (r *Radio) SetOn(on bool) {
	now := r.medium.eng.Now()
	switch {
	case on && r.State() == StateOff:
		r.state = StateListening
		r.onSince = now
	case !on && r.State() != StateOff:
		if r.state == StateTransmitting {
			panic("radio: SetOn(false) during transmission")
		}
		r.dropRx()
		r.state = StateOff
		r.onTime += now - r.onSince
	}
}

// ForceOff powers the radio down unconditionally, aborting any reception
// and abandoning any transmission in progress (a node dying mid-frame; the
// energy already on the air completes at the medium's discretion).
func (r *Radio) ForceOff() {
	if r.State() == StateOff {
		return
	}
	r.dropRx()
	r.curTx = nil
	r.onTime += r.medium.eng.Now() - r.onSince
	r.state = StateOff
}

// OnTime returns cumulative powered time (the duty-cycle numerator).
func (r *Radio) OnTime() time.Duration {
	t := r.onTime
	if r.State() != StateOff {
		t += r.medium.eng.Now() - r.onSince
	}
	return t
}

// Counters returns a copy of the traffic counters.
func (r *Radio) Counters() Counters { return r.counters }

// CCABusy samples clear-channel assessment: true when the total energy at
// the antenna exceeds the CCA threshold. The radio must be on.
func (r *Radio) CCABusy() bool {
	if r.State() == StateOff {
		return false
	}
	total := r.medium.noiseAt(r.id, r.medium.eng.Now())
	for _, p := range r.air {
		total += p
	}
	return mwToDBm(total) > r.medium.params.CCAThresholdDBm
}

// Transmit puts frame f on the air at powerDBm. The handler's OnTxDone
// fires when the frame leaves the air. Any reception in progress is
// abandoned (the MAC performs CCA before transmitting, so this models a
// deliberate decision, not an accident).
func (r *Radio) Transmit(f *Frame, powerDBm float64) error {
	switch r.State() {
	case StateOff:
		return ErrRadioOff
	case StateTransmitting:
		return ErrTxBusy
	}
	r.dropRx()
	r.state = StateTransmitting
	if f.Kind == FrameAck {
		r.counters.TxAck++
	} else {
		r.counters.TxData++
	}
	r.txAirtime += r.medium.params.Airtime(f.Size)
	r.curTx = r.medium.startTransmission(r, f, powerDBm)
	return nil
}

// dropRx abandons any reception in progress. Clearing the transmission
// pointer matters: transmission records are pooled by the medium, and an
// abandoned context must not pin (or later falsely match) a recycled one.
func (r *Radio) dropRx() {
	r.rxActive = false
	r.rx = rxContext{}
}

// Transmitting reports whether a transmission is in flight.
func (r *Radio) Transmitting() bool { return r.State() == StateTransmitting }

// onAirStart is called by the medium when a transmission begins in range.
func (r *Radio) onAirStart(tx *transmission, rxPowerDBm float64) {
	if r.air == nil {
		r.air = make(map[uint64]float64, 8)
	}
	mw := dbmToMW(rxPowerDBm)
	r.air[tx.id] = mw
	switch r.State() {
	case StateListening:
		if rxPowerDBm >= r.medium.params.SensitivityDBm {
			// Lock onto this frame; everything else on the air interferes.
			r.rx = rxContext{tx: tx, signalMW: mw}
			r.rx.maxInterfMW = r.interferenceMW(tx.id)
			r.rxActive = true
			r.state = StateReceiving
		}
	case StateReceiving:
		if r.rxActive {
			if i := r.interferenceMW(r.rx.tx.id); i > r.rx.maxInterfMW {
				r.rx.maxInterfMW = i
			}
		}
	}
}

// interferenceMW sums audible power excluding the given transmission.
func (r *Radio) interferenceMW(exclude uint64) float64 {
	var sum float64
	for id, p := range r.air {
		if id != exclude {
			sum += p
		}
	}
	return sum
}

// onAirEnd is called by the medium when a transmission leaves the air.
func (r *Radio) onAirEnd(tx *transmission) {
	delete(r.air, tx.id)
	if r.State() != StateReceiving || !r.rxActive || r.rx.tx != tx {
		return
	}
	ctx := r.rx
	r.dropRx()
	r.state = StateListening
	nowNoise := r.medium.noiseAt(r.id, r.medium.eng.Now())
	snr := ctx.signalMW / (nowNoise + ctx.maxInterfMW)
	prr := prrFromSNR(snr, tx.frame.Size+r.medium.params.PhyOverheadBytes)
	if ctx.maxInterfMW > 0 {
		// Capture gate against co-channel 802.15.4 frames.
		sir := ctx.signalMW / ctx.maxInterfMW
		if mwToDBm(sir) < r.medium.params.CaptureThresholdDB {
			prr = 0
		}
	}
	ok := r.rng.Float64() < prr
	if ok && r.medium.dropFn != nil && r.medium.dropFn(r.id, tx.frame) {
		// Injected loss window: the frame decoded fine but the fault
		// filter discards it. The PRR draw above already happened, so
		// fault-free links keep their exact RNG stream.
		ok = false
	}
	if ok {
		r.counters.RxDelivered++
		r.medium.trace(TraceEvent{Kind: TraceRxOK, Node: r.id, Frame: tx.frame, SINRdB: mwToDBm(snr)})
		if r.handler != nil {
			r.handler.OnFrame(tx.frame)
		}
	} else {
		r.counters.RxCorrupted++
		r.medium.trace(TraceEvent{Kind: TraceRxCorrupt, Node: r.id, Frame: tx.frame, SINRdB: mwToDBm(snr)})
	}
}

// txDone is called by the medium when this radio's transmission ends.
func (r *Radio) txDone(tx *transmission) {
	if r.curTx != tx {
		return
	}
	r.curTx = nil
	if r.state == StateTransmitting {
		r.state = StateListening
	}
	if r.handler != nil {
		r.handler.OnTxDone()
	}
}
