package radio

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"teleadjust/internal/noise"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// Medium is the shared wireless channel. It owns per-directed-link gains,
// per-node noise sources, and the set of in-flight transmissions, and it
// adjudicates packet reception with SINR and the CC2420 PRR curve.
type Medium struct {
	eng    *sim.Engine
	params Params
	radios []*Radio

	// gainDB[i][j] is the static channel gain (negative path loss +
	// shadowing) from i to j in dB; receivedPower = txPower + gainDB.
	gainDB [][]float64
	// fading holds per-directed-link slow fading processes (nil when
	// disabled): gainAt = gainDB + Σ amp·sin(2π t/T + φ).
	fading [][]fadeProc
	// neighbors[i] lists j with gain above the interference floor at max
	// TX power, pruning the O(N) blast per transmission.
	neighbors [][]NodeID

	// offsetDB holds injected per-directed-link gain perturbations
	// (fault injection: degradation, severing). Lazily allocated; nil
	// means no link has ever been perturbed.
	offsetDB [][]float64
	// dropFn, when set, is consulted for every frame that passed the
	// SINR draw; returning true discards it as corrupted (fault
	// injection: probabilistic loss/corruption windows).
	dropFn func(rx NodeID, f *Frame) bool

	interferer *noise.WifiInterferer
	jitterRNG  *rand.Rand
	traceFn    func(TraceEvent)
	seq        uint64 // transmission id counter
}

// NewMedium builds a medium over the deployment. Each node gets an
// independent CPM noise source derived from the model; pass a nil model
// for a constant -98 dBm floor (useful in unit tests).
func NewMedium(eng *sim.Engine, dep *topology.Deployment, model *noise.Model, params Params, seed uint64) (*Medium, error) {
	if err := dep.Validate(); err != nil {
		return nil, err
	}
	n := dep.Len()
	if n > int(BroadcastID) {
		return nil, fmt.Errorf("radio: %d nodes exceed address space", n)
	}
	m := &Medium{
		eng:       eng,
		params:    params,
		jitterRNG: sim.DeriveRNG(seed, 0xf457),
	}
	shadowRNG := sim.DeriveRNG(seed, 0xface)
	m.gainDB = make([][]float64, n)
	for i := range m.gainDB {
		m.gainDB[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := dep.Positions[i].Distance(dep.Positions[j])
			m.gainDB[i][j] = -params.PathLossDB(d) + shadowRNG.NormFloat64()*params.ShadowSigmaDB
		}
	}
	if params.FadingSigmaDB > 0 {
		fadeRNG := sim.DeriveRNG(seed, 0xfade2)
		m.fading = make([][]fadeProc, n)
		span := params.FadingMaxPeriod - params.FadingMinPeriod
		for i := range m.fading {
			m.fading[i] = make([]fadeProc, n)
			for j := range m.fading[i] {
				if i == j {
					continue
				}
				// Two incommensurate sinusoids approximate a slow random
				// process with RMS ≈ FadingSigmaDB.
				amp := params.FadingSigmaDB
				m.fading[i][j] = fadeProc{
					amp1:    amp,
					amp2:    amp * 0.6,
					period1: params.FadingMinPeriod + time.Duration(fadeRNG.Int64N(int64(span)+1)),
					period2: params.FadingMinPeriod + time.Duration(fadeRNG.Int64N(int64(span)+1)),
					phase1:  fadeRNG.Float64() * 2 * math.Pi,
					phase2:  fadeRNG.Float64() * 2 * math.Pi,
				}
			}
		}
	}
	m.neighbors = make([][]NodeID, n)
	fadeHeadroom := 1.6 * params.FadingSigmaDB
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if params.MaxTxPowerDBm+m.gainDB[i][j]+fadeHeadroom >= params.InterferenceFloorDBm {
				m.neighbors[i] = append(m.neighbors[i], NodeID(j))
			}
		}
	}
	m.radios = make([]*Radio, n)
	for i := 0; i < n; i++ {
		r := &Radio{
			medium: m,
			id:     NodeID(i),
			rng:    sim.DeriveRNG(seed, 0x10000+uint64(i)),
		}
		if model != nil {
			r.noise = model.NewSource(sim.DeriveRNG(seed, uint64(i)+1))
		}
		m.radios[i] = r
	}
	return m, nil
}

// SetInterferer installs a WiFi interference process affecting all nodes.
func (m *Medium) SetInterferer(w *noise.WifiInterferer) { m.interferer = w }

// Radio returns the radio attached to node id.
func (m *Medium) Radio(id NodeID) *Radio { return m.radios[id] }

// NumNodes returns the number of attached radios.
func (m *Medium) NumNodes() int { return len(m.radios) }

// Params returns the physical-layer parameters.
func (m *Medium) Params() Params { return m.params }

// GainDB returns the static channel gain from one node to another.
func (m *Medium) GainDB(from, to NodeID) float64 { return m.gainDB[from][to] }

// fadeProc is a slow per-link fading process.
type fadeProc struct {
	amp1, amp2       float64
	period1, period2 time.Duration
	phase1, phase2   float64
}

func (f *fadeProc) at(t time.Duration) float64 {
	if f.period1 == 0 {
		return 0
	}
	return f.amp1*math.Sin(2*math.Pi*float64(t)/float64(f.period1)+f.phase1) +
		f.amp2*math.Sin(2*math.Pi*float64(t)/float64(f.period2)+f.phase2)
}

// gainAt returns the instantaneous channel gain including fading and any
// injected perturbation.
func (m *Medium) gainAt(from, to NodeID, t time.Duration) float64 {
	g := m.gainDB[from][to]
	if m.fading != nil {
		g += m.fading[from][to].at(t)
	}
	if m.offsetDB != nil {
		g += m.offsetDB[from][to]
	}
	return g
}

// AddLinkOffsetDB adds dB to the directed link from→to on top of the
// static gain. Offsets are additive so that overlapping fault windows
// compose and restore cleanly (apply −x at window start, +x at end). A
// large negative offset (≤ −200 dB) effectively severs the link.
func (m *Medium) AddLinkOffsetDB(from, to NodeID, dB float64) {
	if m.offsetDB == nil {
		n := len(m.radios)
		m.offsetDB = make([][]float64, n)
		for i := range m.offsetDB {
			m.offsetDB[i] = make([]float64, n)
		}
	}
	m.offsetDB[from][to] += dB
}

// LinkOffsetDB returns the current injected offset on the directed link.
func (m *Medium) LinkOffsetDB(from, to NodeID) float64 {
	if m.offsetDB == nil {
		return 0
	}
	return m.offsetDB[from][to]
}

// SetDropFn installs a receive-side frame filter consulted after the SINR
// draw succeeds; returning true discards the frame as corrupted. The SINR
// draw itself is unaffected, so installing a filter never perturbs the
// RNG stream of fault-free links. Pass nil to remove.
func (m *Medium) SetDropFn(fn func(rx NodeID, f *Frame) bool) { m.dropFn = fn }

// ExpectedPRR returns the interference-free packet reception ratio for a
// frame of sizeBytes sent from→to at txPowerDBm over the quiet noise floor.
// This is the controller's "global topology knowledge" view used by the
// destination-unreachable countermeasure and by tests.
func (m *Medium) ExpectedPRR(from, to NodeID, txPowerDBm float64, sizeBytes int) float64 {
	rx := txPowerDBm + m.gainDB[from][to]
	if rx < m.params.SensitivityDBm {
		return 0
	}
	snr := dbmToMW(rx) / dbmToMW(quietFloorDBm)
	return prrFromSNR(snr, sizeBytes+m.params.PhyOverheadBytes)
}

// quietFloorDBm is the nominal quiet noise floor used for the analytic
// ExpectedPRR view (the live simulation samples CPM noise instead).
const quietFloorDBm = -98.0

// noiseAt returns total non-802.15.4 noise power (mW) at node id.
func (m *Medium) noiseAt(id NodeID, t time.Duration) float64 {
	var dbm float64 = quietFloorDBm
	if src := m.radios[id].noise; src != nil {
		dbm = src.ReadAt(t)
	}
	total := dbmToMW(dbm)
	if m.interferer != nil {
		total += dbmToMW(m.interferer.InterferenceAt(t))
	}
	return total
}

// transmission is an in-flight frame on the air.
type transmission struct {
	id    uint64
	src   NodeID
	frame *Frame
	power float64 // dBm at transmitter
	end   time.Duration
}

// startTransmission is called by Radio.Transmit. It notifies every radio in
// range: awake listeners lock on; everyone else records interference.
func (m *Medium) startTransmission(src *Radio, f *Frame, powerDBm float64) *transmission {
	m.seq++
	tx := &transmission{
		id:    m.seq,
		src:   src.id,
		frame: f,
		power: powerDBm,
		end:   m.eng.Now() + m.params.Airtime(f.Size),
	}
	m.trace(TraceEvent{Kind: TraceTxStart, Node: src.id, Frame: f})
	now := m.eng.Now()
	for _, nid := range m.neighbors[src.id] {
		r := m.radios[nid]
		rxPower := powerDBm + m.gainAt(src.id, nid, now)
		if m.params.TxJitterSigmaDB > 0 {
			rxPower += m.jitterRNG.NormFloat64() * m.params.TxJitterSigmaDB
		}
		r.onAirStart(tx, rxPower)
	}
	m.eng.Schedule(m.params.Airtime(f.Size), func() {
		for _, nid := range m.neighbors[src.id] {
			m.radios[nid].onAirEnd(tx)
		}
		src.txDone(tx)
	})
	return tx
}
