package radio

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"time"

	"teleadjust/internal/noise"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// Medium is the shared wireless channel. It owns per-directed-link gains,
// per-node noise sources, and the set of in-flight transmissions, and it
// adjudicates packet reception with SINR and the CC2420 PRR curve.
//
// Channel state is sparse: gains, fading processes, and injected offsets
// exist only for the directed pairs whose static gain clears the tracking
// floor (Params.linkFloorGainDB — pairs below it can neither be heard
// above the interference floor nor decoded at the sensitivity threshold,
// even at maximum TX power with fade headroom). Links live in a CSR link
// table — flat slices keyed by link index, never maps — so iteration
// order and RNG draw order are deterministic, and a frame on the air
// costs O(audible neighbors), not O(nodes).
type Medium struct {
	eng    *sim.Engine
	params Params
	radios []*Radio

	// CSR link table: the directed links i→j of node i occupy indices
	// linkStart[i]..linkStart[i+1] in ascending j order.
	linkStart []int32
	linkDst   []NodeID
	// linkGain is the static channel gain (negative path loss +
	// shadowing) per link in dB; receivedPower = txPower + gain.
	linkGain []float64
	// linkNbr marks links audible above the interference floor at max TX
	// power plus fade headroom: the per-transmission notify set. With
	// the default calibration every stored link qualifies; the flag only
	// filters when SensitivityDBm sits below InterferenceFloorDBm and
	// widens storage beyond the audible set.
	linkNbr []bool
	// linkFade holds per-link slow fading processes (nil when disabled):
	// gainAt = gain + Σ amp·sin(2π t/T + φ).
	linkFade []fadeProc
	// linkOffset holds injected per-link gain perturbations (fault
	// injection: degradation, severing). Lazily allocated as one
	// O(links) slice on the first injection; nil means no link has ever
	// been perturbed.
	linkOffset []float64
	// offsetUnindexed records offsets injected on pairs outside the link
	// table (e.g. a fault plan degrading a link that never existed).
	// Such pairs are never notified of transmissions, so the offsets
	// cannot affect delivery, but LinkOffsetDB reads them back
	// faithfully. Looked up by key only, never iterated.
	offsetUnindexed map[uint32]float64

	// dropFn, when set, is consulted for every frame that passed the
	// SINR draw; returning true discards it as corrupted (fault
	// injection: probabilistic loss/corruption windows).
	dropFn func(rx NodeID, f *Frame) bool

	interferer *noise.WifiInterferer
	jitterRNG  *rand.Rand
	traceFn    func(TraceEvent)
	seq        uint64 // transmission id counter

	// freeTx pools transmission records (one per frame on the air), and
	// endAirFn is the end-of-air callback bound once at construction —
	// together they make putting a frame on the air allocation-free where
	// it used to cost a transmission plus a per-transmission closure.
	freeTx   []*transmission
	endAirFn func(any)
}

// NewMedium builds a medium over the deployment. Each node gets an
// independent CPM noise source derived from the model; pass a nil model
// for a constant -98 dBm floor (useful in unit tests).
func NewMedium(eng *sim.Engine, dep *topology.Deployment, model *noise.Model, params Params, seed uint64) (*Medium, error) {
	return newMedium(eng, dep, model, params, seed, false)
}

// newMedium is the shared constructor; storeAll forces every directed
// pair into the link table (the dense all-pairs construction, kept as
// the oracle for equivalence tests).
func newMedium(eng *sim.Engine, dep *topology.Deployment, model *noise.Model, params Params, seed uint64, storeAll bool) (*Medium, error) {
	if err := dep.Validate(); err != nil {
		return nil, err
	}
	n := dep.Len()
	if n > int(BroadcastID) {
		return nil, fmt.Errorf("radio: %d nodes exceed address space", n)
	}
	m := &Medium{
		eng:       eng,
		params:    params,
		jitterRNG: sim.DeriveRNG(seed, 0xf457),
	}
	m.endAirFn = m.endOfAir
	switch params.GainModel {
	case GainSweep:
		m.buildLinksSweep(dep, seed, storeAll)
	case GainPerLink:
		m.buildLinksPerLink(dep, seed, storeAll)
	default:
		return nil, fmt.Errorf("radio: unknown gain model %d", params.GainModel)
	}
	m.markNeighbors()
	m.radios = make([]*Radio, n)
	for i := 0; i < n; i++ {
		r := &Radio{
			medium: m,
			id:     NodeID(i),
			rng:    sim.DeriveRNG(seed, 0x10000+uint64(i)),
		}
		if model != nil {
			r.noise = model.NewSource(sim.DeriveRNG(seed, uint64(i)+1))
		}
		m.radios[i] = r
	}
	return m, nil
}

// buildLinksSweep fills the link table from sequential all-pairs RNG
// sweeps, reproducing the historical dense-matrix draw order exactly:
// shadowing for every ordered pair in row-major order, then (when
// enabled) fading for every ordered pair in the same order. Every draw
// is consumed whether or not the pair is stored, so existing scenario
// traces stay byte-identical while memory drops to O(links).
func (m *Medium) buildLinksSweep(dep *topology.Deployment, seed uint64, storeAll bool) {
	n := dep.Len()
	shadowRNG := sim.DeriveRNG(seed, 0xface)
	floorGain := m.params.linkFloorGainDB()
	m.linkStart = make([]int32, n+1)
	for i := 0; i < n; i++ {
		m.linkStart[i] = int32(len(m.linkDst))
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := dep.Positions[i].Distance(dep.Positions[j])
			gain := -m.params.PathLossDB(d) + shadowRNG.NormFloat64()*m.params.ShadowSigmaDB
			if storeAll || gain >= floorGain {
				m.linkDst = append(m.linkDst, NodeID(j))
				m.linkGain = append(m.linkGain, gain)
			}
		}
	}
	m.linkStart[n] = int32(len(m.linkDst))
	if m.params.FadingSigmaDB <= 0 {
		return
	}
	fadeRNG := sim.DeriveRNG(seed, 0xfade2)
	span := m.params.FadingMaxPeriod - m.params.FadingMinPeriod
	m.linkFade = make([]fadeProc, len(m.linkDst))
	k := 0
	for i := 0; i < n; i++ {
		rowEnd := int(m.linkStart[i+1])
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			fp := drawFade(fadeRNG, m.params.FadingSigmaDB, m.params.FadingMinPeriod, span)
			if k < rowEnd && m.linkDst[k] == NodeID(j) {
				m.linkFade[k] = fp
				k++
			}
		}
	}
}

// linkStreamTag namespaces the per-link RNG streams away from the
// per-node streams NewMedium and the experiment builder derive.
const linkStreamTag uint64 = 0x71e1 << 32

// linkStream is the DeriveRNG stream index of the directed link i→j.
func linkStream(i, j int) uint64 {
	return linkStreamTag | uint64(i)<<16 | uint64(j)
}

// buildLinksPerLink fills the link table from one independent RNG stream
// per directed pair, visiting only the candidate pairs a spatial
// grid-bucket index finds within Params.MaxCommRangeM — construction is
// O(n·neighbors) in time and memory. Shadow draws are clamped to
// ±ShadowClampSigma standard deviations, which is what makes the range
// cutoff lossless: beyond it no clamped draw can lift a pair over the
// tracking floor.
func (m *Medium) buildLinksPerLink(dep *topology.Deployment, seed uint64, storeAll bool) {
	n := dep.Len()
	floorGain := m.params.linkFloorGainDB()
	maxRange := m.params.MaxCommRangeM()
	fading := m.params.FadingSigmaDB > 0
	span := m.params.FadingMaxPeriod - m.params.FadingMinPeriod
	var idx *topology.GridIndex
	if !storeAll {
		idx = topology.NewGridIndex(dep.Positions, maxRange)
	}
	pcg := rand.NewPCG(0, 0)
	rng := rand.New(pcg)
	var cand []int32
	m.linkStart = make([]int32, n+1)
	for i := 0; i < n; i++ {
		m.linkStart[i] = int32(len(m.linkDst))
		if idx != nil {
			cand = idx.AppendNear(cand, dep.Positions[i], maxRange)
		} else {
			cand = cand[:0]
			for j := 0; j < n; j++ {
				cand = append(cand, int32(j))
			}
		}
		for _, jj := range cand {
			j := int(jj)
			if j == i {
				continue
			}
			d := dep.Positions[i].Distance(dep.Positions[j])
			if !storeAll && d > maxRange {
				continue
			}
			sim.ReseedPCG(pcg, seed, linkStream(i, j))
			shadow := clampSigma(rng.NormFloat64()) * m.params.ShadowSigmaDB
			gain := -m.params.PathLossDB(d) + shadow
			if !storeAll && gain < floorGain {
				continue
			}
			m.linkDst = append(m.linkDst, NodeID(j))
			m.linkGain = append(m.linkGain, gain)
			if fading {
				// Fade params come from the same per-link stream, right
				// after the shadow draw, so linkFade tracks linkDst 1:1.
				m.linkFade = append(m.linkFade, drawFade(rng, m.params.FadingSigmaDB, m.params.FadingMinPeriod, span))
			}
		}
	}
	m.linkStart[n] = int32(len(m.linkDst))
}

// clampSigma bounds a standard-normal draw to ±ShadowClampSigma.
func clampSigma(z float64) float64 {
	if z > ShadowClampSigma {
		return ShadowClampSigma
	}
	if z < -ShadowClampSigma {
		return -ShadowClampSigma
	}
	return z
}

// drawFade consumes one fading process worth of draws (two periods, two
// phases — the historical per-pair order) from rng.
func drawFade(rng *rand.Rand, amp float64, minPeriod time.Duration, span time.Duration) fadeProc {
	// Two incommensurate sinusoids approximate a slow random process
	// with RMS ≈ FadingSigmaDB.
	return fadeProc{
		amp1:    amp,
		amp2:    amp * 0.6,
		period1: minPeriod + time.Duration(rng.Int64N(int64(span)+1)),
		period2: minPeriod + time.Duration(rng.Int64N(int64(span)+1)),
		phase1:  rng.Float64() * 2 * math.Pi,
		phase2:  rng.Float64() * 2 * math.Pi,
	}
}

// markNeighbors flags the stored links audible above the interference
// floor at maximum TX power (plus fade headroom) — the set every
// transmission notifies. Consumes no RNG.
func (m *Medium) markNeighbors() {
	m.linkNbr = make([]bool, len(m.linkDst))
	threshold := m.params.InterferenceFloorDBm - m.params.MaxTxPowerDBm - m.params.fadeHeadroomDB()
	for k, g := range m.linkGain {
		m.linkNbr[k] = g >= threshold
	}
}

// linkIndex returns the CSR index of the directed link from→to, or -1
// when the pair is below the tracking floor (unindexed).
func (m *Medium) linkIndex(from, to NodeID) int {
	start := m.linkStart[from]
	row := m.linkDst[start:m.linkStart[from+1]]
	if k, ok := slices.BinarySearch(row, to); ok {
		return int(start) + k
	}
	return -1
}

// SetInterferer installs a WiFi interference process affecting all nodes.
func (m *Medium) SetInterferer(w *noise.WifiInterferer) { m.interferer = w }

// Radio returns the radio attached to node id.
func (m *Medium) Radio(id NodeID) *Radio { return m.radios[id] }

// NumNodes returns the number of attached radios.
func (m *Medium) NumNodes() int { return len(m.radios) }

// NumLinks returns the number of indexed directed links — the medium's
// memory footprint is O(NumLinks), not O(NumNodes²).
func (m *Medium) NumLinks() int { return len(m.linkDst) }

// Params returns the physical-layer parameters.
func (m *Medium) Params() Params { return m.params }

// GainDB returns the static channel gain from one node to another, or
// -Inf for pairs below the tracking floor (whose true gain is known to
// be too weak for the frame ever to be heard or decoded).
func (m *Medium) GainDB(from, to NodeID) float64 {
	if k := m.linkIndex(from, to); k >= 0 {
		return m.linkGain[k]
	}
	return math.Inf(-1)
}

// fadeProc is a slow per-link fading process.
type fadeProc struct {
	amp1, amp2       float64
	period1, period2 time.Duration
	phase1, phase2   float64
}

func (f *fadeProc) at(t time.Duration) float64 {
	if f.period1 == 0 {
		return 0
	}
	return f.amp1*math.Sin(2*math.Pi*float64(t)/float64(f.period1)+f.phase1) +
		f.amp2*math.Sin(2*math.Pi*float64(t)/float64(f.period2)+f.phase2)
}

// gainAtLink returns the instantaneous gain of link k including fading
// and any injected perturbation — the per-transmission hot path.
func (m *Medium) gainAtLink(k int, t time.Duration) float64 {
	g := m.linkGain[k]
	if m.linkFade != nil {
		g += m.linkFade[k].at(t)
	}
	if m.linkOffset != nil {
		g += m.linkOffset[k]
	}
	return g
}

// gainAt returns the instantaneous channel gain of a directed pair
// (-Inf when unindexed).
func (m *Medium) gainAt(from, to NodeID, t time.Duration) float64 {
	if k := m.linkIndex(from, to); k >= 0 {
		return m.gainAtLink(k, t)
	}
	return math.Inf(-1)
}

// AddLinkOffsetDB adds dB to the directed link from→to on top of the
// static gain. Offsets are additive so that overlapping fault windows
// compose and restore cleanly (apply −x at window start, +x at end). A
// large negative offset (≤ −200 dB) effectively severs the link. The
// offset store is per-link: the first injection allocates O(links), and
// offsets on unindexed pairs (which can never deliver a frame anyway)
// are kept aside for read-back without growing the table.
func (m *Medium) AddLinkOffsetDB(from, to NodeID, dB float64) {
	if k := m.linkIndex(from, to); k >= 0 {
		if m.linkOffset == nil {
			m.linkOffset = make([]float64, len(m.linkDst))
		}
		m.linkOffset[k] += dB
		return
	}
	if m.offsetUnindexed == nil {
		m.offsetUnindexed = make(map[uint32]float64, 1)
	}
	m.offsetUnindexed[pairKey(from, to)] += dB
}

// LinkOffsetDB returns the current injected offset on the directed link.
func (m *Medium) LinkOffsetDB(from, to NodeID) float64 {
	if k := m.linkIndex(from, to); k >= 0 {
		if m.linkOffset == nil {
			return 0
		}
		return m.linkOffset[k]
	}
	return m.offsetUnindexed[pairKey(from, to)]
}

// pairKey packs a directed pair for the unindexed-offset side table.
func pairKey(from, to NodeID) uint32 { return uint32(from)<<16 | uint32(to) }

// SetDropFn installs a receive-side frame filter consulted after the SINR
// draw succeeds; returning true discards the frame as corrupted. The SINR
// draw itself is unaffected, so installing a filter never perturbs the
// RNG stream of fault-free links. Pass nil to remove.
func (m *Medium) SetDropFn(fn func(rx NodeID, f *Frame) bool) { m.dropFn = fn }

// ExpectedPRR returns the interference-free packet reception ratio for a
// frame of sizeBytes sent from→to at txPowerDBm over the quiet noise floor.
// This is the controller's "global topology knowledge" view used by the
// destination-unreachable countermeasure and by tests. Exact for
// txPowerDBm ≤ Params.MaxTxPowerDBm; unindexed pairs report 0 (their
// received power is below sensitivity at any admissible power).
func (m *Medium) ExpectedPRR(from, to NodeID, txPowerDBm float64, sizeBytes int) float64 {
	k := m.linkIndex(from, to)
	if k < 0 {
		return 0
	}
	rx := txPowerDBm + m.linkGain[k]
	if rx < m.params.SensitivityDBm {
		return 0
	}
	snr := dbmToMW(rx) / dbmToMW(quietFloorDBm)
	return prrFromSNR(snr, sizeBytes+m.params.PhyOverheadBytes)
}

// quietFloorDBm is the nominal quiet noise floor used for the analytic
// ExpectedPRR view (the live simulation samples CPM noise instead).
const quietFloorDBm = -98.0

// noiseAt returns total non-802.15.4 noise power (mW) at node id.
func (m *Medium) noiseAt(id NodeID, t time.Duration) float64 {
	var dbm float64 = quietFloorDBm
	if src := m.radios[id].noise; src != nil {
		dbm = src.ReadAt(t)
	}
	total := dbmToMW(dbm)
	if m.interferer != nil {
		total += dbmToMW(m.interferer.InterferenceAt(t))
	}
	return total
}

// transmission is an in-flight frame on the air. Records are pooled by
// the medium (freeTx); the id stays unique across reuse, so anything that
// keys on it — the per-radio air map in particular — is stale-safe.
type transmission struct {
	id       uint64
	src      NodeID
	srcRadio *Radio
	frame    *Frame
	power    float64 // dBm at transmitter
	end      time.Duration
	// rowStart/rowEnd cache the sender's CSR link row so end-of-air
	// revisits exactly the notified set without re-deriving it.
	rowStart, rowEnd int32
}

// startTransmission is called by Radio.Transmit. It notifies every radio in
// range: awake listeners lock on; everyone else records interference.
func (m *Medium) startTransmission(src *Radio, f *Frame, powerDBm float64) *transmission {
	m.seq++
	var tx *transmission
	if n := len(m.freeTx); n > 0 {
		tx = m.freeTx[n-1]
		m.freeTx[n-1] = nil
		m.freeTx = m.freeTx[:n-1]
	} else {
		tx = new(transmission)
	}
	airtime := m.params.Airtime(f.Size)
	*tx = transmission{
		id:       m.seq,
		src:      src.id,
		srcRadio: src,
		frame:    f,
		power:    powerDBm,
		end:      m.eng.Now() + airtime,
		rowStart: m.linkStart[src.id],
		rowEnd:   m.linkStart[src.id+1],
	}
	m.trace(TraceEvent{Kind: TraceTxStart, Node: src.id, Frame: f})
	now := m.eng.Now()
	for k := tx.rowStart; k < tx.rowEnd; k++ {
		if !m.linkNbr[k] {
			continue
		}
		r := m.radios[m.linkDst[k]]
		rxPower := powerDBm + m.gainAtLink(int(k), now)
		if m.params.TxJitterSigmaDB > 0 {
			rxPower += m.jitterRNG.NormFloat64() * m.params.TxJitterSigmaDB
		}
		r.onAirStart(tx, rxPower)
	}
	m.eng.ScheduleArg(airtime, m.endAirFn, tx)
	return tx
}

// endOfAir takes one transmission off the air: every notified radio gets
// onAirEnd (adjudicating reception), the sender gets txDone, and the
// record returns to the pool. Pre-bound as m.endAirFn so scheduling it
// never allocates a closure.
func (m *Medium) endOfAir(a any) {
	tx := a.(*transmission)
	for k := tx.rowStart; k < tx.rowEnd; k++ {
		if !m.linkNbr[k] {
			continue
		}
		m.radios[m.linkDst[k]].onAirEnd(tx)
	}
	tx.srcRadio.txDone(tx)
	tx.frame, tx.srcRadio = nil, nil
	m.freeTx = append(m.freeTx, tx)
}
