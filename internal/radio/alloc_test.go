package radio

import (
	"testing"
	"time"

	"teleadjust/internal/sim"
)

// TestBroadcastAllocFree is the alloc contract for the frame hot path: a
// broadcast delivery — transmission start, per-neighbor air tracking,
// end-of-air adjudication, tx-done — must not allocate once the medium's
// pools and per-radio air maps are warm. The path used to cost 20+
// allocations per broadcast (transmission record, end-of-air closure,
// per-neighbor rxContext, event heap nodes); this pins it at zero.
func TestBroadcastAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	dep := benchDeployment(10, 1)
	m, err := NewMedium(eng, dep, nil, benchParams(GainPerLink), 1)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumNodes()
	for i := 0; i < n; i++ {
		m.Radio(NodeID(i)).SetOn(true)
	}
	f := &Frame{Kind: FrameData, Dst: BroadcastID, Size: 30}
	broadcast := func(src NodeID) {
		f.Src = src
		if err := m.Radio(src).Transmit(f, 0); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(eng.Now() + 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every pool this path touches: one broadcast from each node
	// sizes the per-radio air maps and the event/transmission free lists.
	for i := 0; i < n; i++ {
		broadcast(NodeID(i))
	}
	var src NodeID
	if allocs := testing.AllocsPerRun(200, func() {
		broadcast(src)
		src = (src + 1) % NodeID(n)
	}); allocs != 0 {
		t.Fatalf("broadcast delivery allocates %v per frame, want 0", allocs)
	}
}
