package radio

import (
	"teleadjust/internal/noise"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// newDenseMedium builds a medium with every directed pair in the link
// table — the all-pairs dense construction, kept behind this test-only
// path as the oracle for sparse/dense equivalence tests. Under GainSweep
// storage does not consume RNG, and under GainPerLink every pair's
// stream is independent, so a dense medium behaves identically to the
// sparse one wherever the sparse one stored the link.
func newDenseMedium(eng *sim.Engine, dep *topology.Deployment, model *noise.Model, params Params, seed uint64) (*Medium, error) {
	return newMedium(eng, dep, model, params, seed, true)
}

// numOffsetSlots exposes the per-link offset store's size (0 until the
// first injection) for the O(links) allocation regression test.
func (m *Medium) numOffsetSlots() int { return len(m.linkOffset) }

// neighborIDs returns the audible neighbor list of id in notify order.
func (m *Medium) neighborIDs(id NodeID) []NodeID {
	var out []NodeID
	for k := m.linkStart[id]; k < m.linkStart[id+1]; k++ {
		if m.linkNbr[k] {
			out = append(out, m.linkDst[k])
		}
	}
	return out
}

// storedLinks returns the (dst, gain) pairs of id's CSR row.
func (m *Medium) storedLinks(id NodeID) (dsts []NodeID, gains []float64) {
	for k := m.linkStart[id]; k < m.linkStart[id+1]; k++ {
		dsts = append(dsts, m.linkDst[k])
		gains = append(gains, m.linkGain[k])
	}
	return dsts, gains
}
