package radio

import (
	"testing"
	"time"

	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// BenchmarkBroadcastBlast measures the per-transmission cost of the medium
// with a dense neighborhood (the hot path of every simulation).
func BenchmarkBroadcastBlast(b *testing.B) {
	eng := sim.NewEngine()
	params := DefaultParams()
	params.RefLossDB = 35 // dense connectivity
	m, err := NewMedium(eng, topology.TightGrid(1), nil, params, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < m.NumNodes(); i++ {
		m.Radio(NodeID(i)).SetOn(true)
	}
	tx := m.Radio(NodeID(112)) // center
	f := &Frame{Kind: FrameData, Src: 112, Dst: BroadcastID, Size: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Transmit(f, 0); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(eng.Now() + 10*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPRRCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prrFromSNR(1.5, 40)
	}
}
