package radio

import (
	"fmt"
	"testing"
	"time"

	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// BenchmarkBroadcastBlast measures the per-transmission cost of the medium
// with a dense neighborhood (the hot path of every simulation).
func BenchmarkBroadcastBlast(b *testing.B) {
	eng := sim.NewEngine()
	params := DefaultParams()
	params.RefLossDB = 35 // dense connectivity
	m, err := NewMedium(eng, topology.TightGrid(1), nil, params, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < m.NumNodes(); i++ {
		m.Radio(NodeID(i)).SetOn(true)
	}
	tx := m.Radio(NodeID(112)) // center
	f := &Frame{Kind: FrameData, Src: 112, Dst: BroadcastID, Size: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Transmit(f, 0); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(eng.Now() + 10*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPRRCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prrFromSNR(1.5, 40)
	}
}

// benchDeployment is a side×side jittered grid at refgrid density
// (13.125 m spacing), the geometry of the scale study.
func benchDeployment(side int, seed uint64) *topology.Deployment {
	span := 13.125 * float64(side)
	return topology.Grid(fmt.Sprintf("bench-%dx%d", side, side), side, side,
		span, span, true, topology.Point{X: span / 2, Y: span / 2}, seed)
}

func benchParams(model GainModel) Params {
	params := DefaultParams()
	params.RefLossDB = 35
	params.InterferenceFloorDBm = -106
	params.GainModel = model
	return params
}

// BenchmarkMediumConstruction measures building the channel state:
// GainSweep pays the historical O(n²) draw sweep (kept for trace
// compatibility), GainPerLink builds from the spatial index in
// O(n·neighbors). The n≥1024 sizes only run per-link — the point of the
// sparse medium is that the sweep is never taken to those scales.
func BenchmarkMediumConstruction(b *testing.B) {
	cases := []struct {
		side  int
		model GainModel
		name  string
	}{
		{10, GainSweep, "n=100/sweep"},
		{10, GainPerLink, "n=100/perlink"},
		{32, GainSweep, "n=1024/sweep"},
		{32, GainPerLink, "n=1024/perlink"},
		{64, GainPerLink, "n=4096/perlink"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			dep := benchDeployment(c.side, 1)
			params := benchParams(c.model)
			b.ReportAllocs()
			b.ResetTimer()
			var links int
			for i := 0; i < b.N; i++ {
				m, err := NewMedium(sim.NewEngine(), dep, nil, params, 1)
				if err != nil {
					b.Fatal(err)
				}
				links = m.NumLinks()
			}
			b.ReportMetric(float64(links), "links")
		})
	}
}

// BenchmarkMediumScale measures the per-frame broadcast cost on a live
// field: a transmission fans out to the audible neighborhood, so the
// per-frame cost must track node degree, not field size.
func BenchmarkMediumScale(b *testing.B) {
	for _, side := range []int{10, 32} {
		b.Run(fmt.Sprintf("n=%d", side*side), func(b *testing.B) {
			dep := benchDeployment(side, 1)
			eng := sim.NewEngine()
			m, err := NewMedium(eng, dep, nil, benchParams(GainPerLink), 1)
			if err != nil {
				b.Fatal(err)
			}
			n := m.NumNodes()
			for i := 0; i < n; i++ {
				m.Radio(NodeID(i)).SetOn(true)
			}
			f := &Frame{Kind: FrameData, Dst: BroadcastID, Size: 30}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Src = NodeID(i % n)
				if err := m.Radio(f.Src).Transmit(f, 0); err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(eng.Now() + 10*time.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
