// Package node provides the per-node runtime that lets several protocols
// (CTP, TeleAdjusting, Drip, RPL) share one MAC instance: incoming frames
// are dispatched to the protocol that owns their payload type, and send
// completions are routed back to the protocol that sent them.
package node

import (
	"fmt"

	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

// Protocol is a network protocol running on a node. Protocols declare
// ownership of payload types via Owns; the runtime routes MAC callbacks for
// owned payloads to them.
type Protocol interface {
	// Owns reports whether this protocol handles the given frame payload.
	Owns(payload any) bool
	// Classify decides acceptance of an overheard frame (see mac.Upper).
	Classify(f *radio.Frame) mac.Classification
	// Deliver hands up an accepted frame.
	Deliver(f *radio.Frame)
	// OnSendDone reports the fate of a frame this protocol sent.
	OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool)
}

// Node binds a MAC to a set of protocols.
type Node struct {
	eng       *sim.Engine
	mac       *mac.MAC
	protocols []Protocol
}

var _ mac.Upper = (*Node)(nil)

// New creates a node runtime over a MAC built elsewhere. The runtime
// installs itself as the MAC's upper layer.
func New(eng *sim.Engine, m *mac.MAC) *Node {
	n := &Node{eng: eng, mac: m}
	m.SetUpper(n)
	return n
}

// ID returns the node id.
func (n *Node) ID() radio.NodeID { return n.mac.ID() }

// Engine returns the simulation engine.
func (n *Node) Engine() *sim.Engine { return n.eng }

// MAC returns the node's link layer.
func (n *Node) MAC() *mac.MAC { return n.mac }

// Register adds a protocol to the dispatch table.
func (n *Node) Register(p Protocol) {
	n.protocols = append(n.protocols, p)
}

// Send transmits a frame through the MAC.
func (n *Node) Send(f *radio.Frame) error {
	if f.Payload == nil {
		return fmt.Errorf("node %d: send without payload", n.ID())
	}
	return n.mac.Send(f)
}

func (n *Node) owner(payload any) Protocol {
	for _, p := range n.protocols {
		if p.Owns(payload) {
			return p
		}
	}
	return nil
}

// Classify implements mac.Upper.
func (n *Node) Classify(f *radio.Frame) mac.Classification {
	if p := n.owner(f.Payload); p != nil {
		return p.Classify(f)
	}
	return mac.Classification{Decision: mac.Ignore}
}

// Deliver implements mac.Upper.
func (n *Node) Deliver(f *radio.Frame) {
	if p := n.owner(f.Payload); p != nil {
		p.Deliver(f)
	}
}

// OnSendDone implements mac.Upper.
func (n *Node) OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool) {
	if p := n.owner(f.Payload); p != nil {
		p.OnSendDone(f, acker, ok)
	}
}
