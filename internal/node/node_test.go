package node_test

import (
	"testing"
	"time"

	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// msgA and msgB are two distinct protocol payload types.
type msgA struct{ v int }
type msgB struct{ v int }

func (msgA) NoAck() bool { return true }
func (msgB) NoAck() bool { return true }

// fakeProto records dispatched events for one payload type.
type fakeProto struct {
	owns      func(any) bool
	delivered []*radio.Frame
	sendDone  []*radio.Frame
	classify  mac.Classification
}

func (p *fakeProto) Owns(payload any) bool { return p.owns(payload) }

func (p *fakeProto) Classify(f *radio.Frame) mac.Classification { return p.classify }

func (p *fakeProto) Deliver(f *radio.Frame) { p.delivered = append(p.delivered, f) }

func (p *fakeProto) OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool) {
	p.sendDone = append(p.sendDone, f)
}

func buildPair(t *testing.T) (*sim.Engine, [2]*node.Node, [2]*mac.MAC) {
	t.Helper()
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := radio.NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	var nodes [2]*node.Node
	var macs [2]*mac.MAC
	for i := 0; i < 2; i++ {
		cfg := mac.DefaultConfig()
		cfg.AlwaysOn = true
		macs[i] = mac.New(eng, med.Radio(radio.NodeID(i)), cfg, sim.DeriveRNG(1, uint64(i)), nil)
		nodes[i] = node.New(eng, macs[i])
		macs[i].Start()
	}
	return eng, nodes, macs
}

func TestDispatchByPayloadType(t *testing.T) {
	eng, nodes, _ := buildPair(t)
	pa := &fakeProto{
		owns:     func(p any) bool { _, ok := p.(msgA); return ok },
		classify: mac.Classification{Decision: mac.Deliver},
	}
	pb := &fakeProto{
		owns:     func(p any) bool { _, ok := p.(msgB); return ok },
		classify: mac.Classification{Decision: mac.Deliver},
	}
	nodes[1].Register(pa)
	nodes[1].Register(pb)

	if err := nodes[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: radio.BroadcastID, Size: 20, Payload: msgA{1}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: radio.BroadcastID, Size: 20, Payload: msgB{2}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(pa.delivered) != 1 || len(pb.delivered) != 1 {
		t.Fatalf("deliveries A=%d B=%d, want 1 each", len(pa.delivered), len(pb.delivered))
	}
	if _, ok := pa.delivered[0].Payload.(msgA); !ok {
		t.Fatal("protocol A received wrong payload type")
	}
}

func TestUnownedPayloadIgnored(t *testing.T) {
	eng, nodes, macs := buildPair(t)
	pa := &fakeProto{
		owns:     func(p any) bool { _, ok := p.(msgA); return ok },
		classify: mac.Classification{Decision: mac.Deliver},
	}
	nodes[1].Register(pa)
	// msgB has no owner at node 1: must be ignored silently.
	if err := nodes[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: radio.BroadcastID, Size: 20, Payload: msgB{9}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(pa.delivered) != 0 {
		t.Fatal("protocol A received a payload it does not own")
	}
	_ = macs
}

func TestSendDoneRoutedToOwner(t *testing.T) {
	eng, nodes, _ := buildPair(t)
	pa := &fakeProto{
		owns:     func(p any) bool { _, ok := p.(msgA); return ok },
		classify: mac.Classification{Decision: mac.Deliver},
	}
	nodes[0].Register(pa)
	nodes[1].Register(&fakeProto{
		owns:     func(p any) bool { _, ok := p.(msgA); return ok },
		classify: mac.Classification{Decision: mac.Deliver},
	})
	f := &radio.Frame{Kind: radio.FrameData, Dst: radio.BroadcastID, Size: 20, Payload: msgA{1}}
	if err := nodes[0].Send(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(pa.sendDone) != 1 || pa.sendDone[0] != f {
		t.Fatalf("send completion not routed: %v", pa.sendDone)
	}
}

func TestSendWithoutPayloadErrors(t *testing.T) {
	_, nodes, _ := buildPair(t)
	if err := nodes[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 10}); err == nil {
		t.Fatal("payload-less send accepted")
	}
}

func TestNodeAccessors(t *testing.T) {
	eng, nodes, macs := buildPair(t)
	if nodes[0].ID() != 0 || nodes[1].ID() != 1 {
		t.Fatal("wrong node ids")
	}
	if nodes[0].Engine() != eng {
		t.Fatal("wrong engine")
	}
	if nodes[0].MAC() != macs[0] {
		t.Fatal("wrong MAC")
	}
}
