package noise

import (
	"testing"
	"time"

	"teleadjust/internal/sim"
)

// BenchmarkSourceNext measures one chain step of a trained CPM source —
// the per-sample cost behind every noiseAt call on a live field. On
// grid1k this is the single hottest flat path on record
// (BENCH_profile.json), so its cost and alloc count are contract.
func BenchmarkSourceNext(b *testing.B) {
	m := Train(GenerateTrace(100000, 2))
	src := m.NewSource(sim.NewRNG(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.next()
	}
}

// BenchmarkSourceReadAt measures the lazy catch-up path the radio medium
// actually calls: advancing a source in SamplePeriodMS strides.
func BenchmarkSourceReadAt(b *testing.B) {
	m := Train(GenerateTrace(100000, 2))
	src := m.NewSource(sim.NewRNG(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.ReadAt(time.Duration(i+1) * SamplePeriodMS * time.Millisecond)
	}
}

// BenchmarkTrain measures model construction (cold path; here to catch
// accidental blowups from the pattern-index representation).
func BenchmarkTrain(b *testing.B) {
	trace := GenerateTrace(100000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(trace)
	}
}
