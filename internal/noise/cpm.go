package noise

import (
	"math/rand/v2"
	"time"
)

// Quantization for CPM: 1 dB bins over [-105, -40] dBm.
const (
	quantMinDBm = -105.0
	quantBins   = 66
)

// Default CPM history lengths, longest first. The model backs off to
// shorter histories (and finally the marginal) when a pattern was not seen
// during training, which is the "closest pattern matching" behaviour.
var defaultHistLens = []int{8, 4, 2, 1}

// maxCatchUpSteps bounds how many 1 ms steps a lazy Source will simulate to
// catch up with virtual time; beyond that the chain is resampled from the
// marginal distribution (the chain mixes fast, so this is statistically
// indistinguishable and keeps long idle gaps O(1)).
const maxCatchUpSteps = 64

// dist is a sparse categorical distribution over quantized noise bins.
type dist struct {
	bins   []uint8
	counts []uint32
	total  uint32
}

func (d *dist) add(bin uint8) {
	for i, b := range d.bins {
		if b == bin {
			d.counts[i]++
			d.total++
			return
		}
	}
	d.bins = append(d.bins, bin)
	d.counts = append(d.counts, 1)
	d.total++
}

func (d *dist) sample(rng *rand.Rand) uint8 {
	if d.total == 0 {
		return uint8(-quantMinDBm + quietFloorDBm) // quiet floor bin
	}
	target := rng.Uint32N(d.total)
	var acc uint32
	for i, c := range d.counts {
		acc += c
		if target < acc {
			return d.bins[i]
		}
	}
	return d.bins[len(d.bins)-1]
}

// Model is a trained CPM noise model. It is immutable after Train and safe
// to share across all node Sources.
type Model struct {
	histLens []int
	tables   []map[string]*dist // parallel to histLens
	marginal dist
}

// Train builds a CPM model from a noise trace (dBm samples at 1 kHz).
func Train(trace []float64) *Model {
	m := &Model{histLens: defaultHistLens}
	m.tables = make([]map[string]*dist, len(m.histLens))
	for i := range m.tables {
		m.tables[i] = make(map[string]*dist)
	}
	q := make([]uint8, len(trace))
	for i, v := range trace {
		q[i] = quantize(v)
	}
	for i, bin := range q {
		m.marginal.add(bin)
		for li, hl := range m.histLens {
			if i < hl {
				continue
			}
			key := string(q[i-hl : i])
			d := m.tables[li][key]
			if d == nil {
				d = &dist{}
				m.tables[li][key] = d
			}
			d.add(bin)
		}
	}
	return m
}

// Patterns returns the number of distinct patterns at the longest history
// length. Exposed for tests and diagnostics.
func (m *Model) Patterns() int {
	if len(m.tables) == 0 {
		return 0
	}
	return len(m.tables[0])
}

func quantize(dbm float64) uint8 {
	bin := int(dbm - quantMinDBm + 0.5)
	if bin < 0 {
		bin = 0
	}
	if bin >= quantBins {
		bin = quantBins - 1
	}
	return uint8(bin)
}

func dequantize(bin uint8, rng *rand.Rand) float64 {
	return quantMinDBm + float64(bin) + (rng.Float64() - 0.5)
}

// Source is a per-node noise stream driven by a shared Model. It is lazy:
// ReadAt advances the underlying 1 kHz chain only as far as needed.
type Source struct {
	model *Model
	rng   *rand.Rand
	hist  []uint8
	last  float64
	step  int64 // chain position, in SamplePeriodMS units
}

// NewSource creates an independent noise stream. Different sources should
// use different rng streams (see sim.DeriveRNG).
func (m *Model) NewSource(rng *rand.Rand) *Source {
	s := &Source{model: m, rng: rng, step: -1}
	s.reseed()
	return s
}

// reseed fills the history from the marginal distribution.
func (s *Source) reseed() {
	maxHist := s.model.histLens[0]
	s.hist = s.hist[:0]
	for i := 0; i < maxHist; i++ {
		s.hist = append(s.hist, s.model.marginal.sample(s.rng))
	}
	s.last = dequantize(s.hist[len(s.hist)-1], s.rng)
}

// next advances the chain one step using closest-pattern matching.
func (s *Source) next() float64 {
	var bin uint8
	matched := false
	for li, hl := range s.model.histLens {
		if hl > len(s.hist) {
			continue
		}
		key := string(s.hist[len(s.hist)-hl:])
		if d, ok := s.model.tables[li][key]; ok {
			bin = d.sample(s.rng)
			matched = true
			break
		}
	}
	if !matched {
		bin = s.model.marginal.sample(s.rng)
	}
	// Slide history.
	copy(s.hist, s.hist[1:])
	s.hist[len(s.hist)-1] = bin
	s.last = dequantize(bin, s.rng)
	return s.last
}

// ReadAt returns the noise floor (dBm) at virtual time t. Calls must be
// monotone in t per Source; earlier times return the current value.
func (s *Source) ReadAt(t time.Duration) float64 {
	target := int64(t / (SamplePeriodMS * time.Millisecond))
	if target <= s.step {
		return s.last
	}
	steps := target - s.step
	s.step = target
	if steps > maxCatchUpSteps {
		s.reseed()
		return s.last
	}
	for i := int64(0); i < steps; i++ {
		s.next()
	}
	return s.last
}
