package noise

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// Quantization for CPM: 1 dB bins over [-105, -40] dBm.
const (
	quantMinDBm = -105.0
	quantBins   = 66
)

// Default CPM history lengths, longest first. The model backs off to
// shorter histories (and finally the marginal) when a pattern was not seen
// during training, which is the "closest pattern matching" behaviour.
var defaultHistLens = []int{8, 4, 2, 1}

// histShift is the bit width one quantized bin occupies in a packed
// history key. quantBins < 256, so a byte per bin keeps packing injective
// (a packed key equals the old string key byte for byte), and the longest
// supported history is maxPackedHist bins per uint64 key.
const (
	histShift     = 8
	maxPackedHist = 64 / histShift
)

// maxCatchUpSteps bounds how many 1 ms steps a lazy Source will simulate to
// catch up with virtual time; beyond that the chain is resampled from the
// marginal distribution (the chain mixes fast, so this is statistically
// indistinguishable and keeps long idle gaps O(1)).
const maxCatchUpSteps = 64

// dist is a sparse categorical distribution over quantized noise bins.
type dist struct {
	bins   []uint8
	counts []uint32
	total  uint32
}

func (d *dist) add(bin uint8) {
	for i, b := range d.bins {
		if b == bin {
			d.counts[i]++
			d.total++
			return
		}
	}
	d.bins = append(d.bins, bin)
	d.counts = append(d.counts, 1)
	d.total++
}

func (d *dist) sample(rng *rand.Rand) uint8 {
	if d.total == 0 {
		return quantize(quietFloorDBm) // quiet floor bin
	}
	target := rng.Uint32N(d.total)
	var acc uint32
	for i, c := range d.counts {
		acc += c
		if target < acc {
			return d.bins[i]
		}
	}
	return d.bins[len(d.bins)-1]
}

// patEntry is one bucket of a patTable: a packed history key and its
// distribution slot in Model.dists (-1 marks an empty bucket). Key and
// slot share a bucket so a probe touches one cache line, not two.
type patEntry struct {
	key  uint64
	slot int32
}

// patTable is an open-addressed hash index from a packed history key to a
// distribution slot in Model.dists. It replaces the former
// map[string]*dist: lookups are one multiply-shift hash plus a linear
// probe over a flat bucket array — no map machinery, no string([]byte)
// conversion, no per-lookup allocation. Bucket count is always a power
// of two, so probing wraps with a mask.
type patTable struct {
	entries []patEntry
	mask    uint64
	n       int
}

const patTableInitBuckets = 16

// hashKey mixes a packed history key (splitmix64 finalizer) so linear
// probing sees a uniform distribution even for near-identical histories.
func hashKey(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return key
}

// get returns the distribution slot for key, or -1 when the pattern was
// never seen in training. This is the per-sample hot path.
func (t *patTable) get(key uint64) int32 {
	if t.n == 0 {
		return -1
	}
	i := hashKey(key) & t.mask
	for {
		e := t.entries[i]
		if e.slot < 0 || e.key == key {
			return e.slot
		}
		i = (i + 1) & t.mask
	}
}

// put inserts key→slot, growing at 1/2 load (lookup speed over training
// memory: probes on the per-sample path stay short). Training-time only.
func (t *patTable) put(key uint64, slot int32) {
	if t.entries == nil {
		t.entries = newPatBuckets(patTableInitBuckets)
		t.mask = patTableInitBuckets - 1
	} else if uint64(t.n+1) > (t.mask+1)/2 {
		t.grow()
	}
	i := hashKey(key) & t.mask
	for t.entries[i].slot >= 0 {
		i = (i + 1) & t.mask
	}
	t.entries[i] = patEntry{key: key, slot: slot}
	t.n++
}

func newPatBuckets(size uint64) []patEntry {
	entries := make([]patEntry, size)
	for i := range entries {
		entries[i].slot = -1
	}
	return entries
}

func (t *patTable) grow() {
	old := t.entries
	size := (t.mask + 1) * 2
	t.entries = newPatBuckets(size)
	t.mask = size - 1
	for _, e := range old {
		if e.slot < 0 {
			continue
		}
		j := hashKey(e.key) & t.mask
		for t.entries[j].slot >= 0 {
			j = (j + 1) & t.mask
		}
		t.entries[j] = e
	}
}

// Model is a trained CPM noise model. It is immutable after Train and safe
// to share across all node Sources.
type Model struct {
	histLens []int
	// histMask[i] selects the low histLens[i] bins of a packed rolling
	// history; tables[i] indexes the patterns of that length.
	histMask []uint64
	tables   []patTable
	// dists holds every conditional distribution, addressed by the slot
	// values stored in tables.
	dists    []dist
	marginal dist
}

// histMaskFor returns the packed-key mask covering hl bins.
func histMaskFor(hl int) uint64 {
	if hl >= maxPackedHist {
		return ^uint64(0)
	}
	return (uint64(1) << (histShift * hl)) - 1
}

// Train builds a CPM model from a noise trace (dBm samples at 1 kHz).
func Train(trace []float64) *Model {
	m := &Model{histLens: defaultHistLens}
	if m.histLens[0] > maxPackedHist {
		panic(fmt.Sprintf("noise: history length %d exceeds packed key capacity %d",
			m.histLens[0], maxPackedHist))
	}
	m.histMask = make([]uint64, len(m.histLens))
	for i, hl := range m.histLens {
		m.histMask[i] = histMaskFor(hl)
	}
	m.tables = make([]patTable, len(m.histLens))
	q := make([]uint8, len(trace))
	for i, v := range trace {
		q[i] = quantize(v)
	}
	// packed carries the most recent bins of the trace, newest in the low
	// byte, so packed&histMask[li] is exactly the length-hl window that
	// used to be string(q[i-hl:i]).
	var packed uint64
	for i, bin := range q {
		m.marginal.add(bin)
		for li, hl := range m.histLens {
			if i < hl {
				continue
			}
			key := packed & m.histMask[li]
			slot := m.tables[li].get(key)
			if slot < 0 {
				slot = int32(len(m.dists))
				m.dists = append(m.dists, dist{})
				m.tables[li].put(key, slot)
			}
			m.dists[slot].add(bin)
		}
		packed = packed<<histShift | uint64(bin)
	}
	return m
}

// Patterns returns the number of distinct patterns at the longest history
// length. Exposed for tests and diagnostics.
func (m *Model) Patterns() int {
	if len(m.tables) == 0 {
		return 0
	}
	return m.tables[0].n
}

func quantize(dbm float64) uint8 {
	bin := int(dbm - quantMinDBm + 0.5)
	if bin < 0 {
		bin = 0
	}
	if bin >= quantBins {
		bin = quantBins - 1
	}
	return uint8(bin)
}

func dequantize(bin uint8, rng *rand.Rand) float64 {
	return quantMinDBm + float64(bin) + (rng.Float64() - 0.5)
}

// Source is a per-node noise stream driven by a shared Model. It is lazy:
// ReadAt advances the underlying 1 kHz chain only as far as needed.
type Source struct {
	model *Model
	rng   *rand.Rand
	// packed is the rolling quantized history, newest bin in the low
	// byte — the same representation the model's pattern tables key on,
	// so one mask per history length replaces the former slice-to-string
	// map key.
	packed uint64
	filled int // history bins populated (maxHist after reseed)
	last   float64
	step   int64 // chain position, in SamplePeriodMS units
}

// NewSource creates an independent noise stream. Different sources should
// use different rng streams (see sim.DeriveRNG).
func (m *Model) NewSource(rng *rand.Rand) *Source {
	s := &Source{model: m, rng: rng, step: -1}
	s.reseed()
	return s
}

// reseed fills the history from the marginal distribution.
func (s *Source) reseed() {
	maxHist := s.model.histLens[0]
	var bin uint8
	for i := 0; i < maxHist; i++ {
		bin = s.model.marginal.sample(s.rng)
		s.packed = s.packed<<histShift | uint64(bin)
	}
	s.filled = maxHist
	s.last = dequantize(bin, s.rng)
}

// next advances the chain one step using closest-pattern matching.
func (s *Source) next() float64 {
	var bin uint8
	matched := false
	m := s.model
	for li, hl := range m.histLens {
		if hl > s.filled {
			continue
		}
		if slot := m.tables[li].get(s.packed & m.histMask[li]); slot >= 0 {
			bin = m.dists[slot].sample(s.rng)
			matched = true
			break
		}
	}
	if !matched {
		bin = m.marginal.sample(s.rng)
	}
	// Slide history: the shift drops the oldest bin off the top.
	s.packed = s.packed<<histShift | uint64(bin)
	s.last = dequantize(bin, s.rng)
	return s.last
}

// ReadAt returns the noise floor (dBm) at virtual time t. Calls must be
// monotone in t per Source; earlier times return the current value.
func (s *Source) ReadAt(t time.Duration) float64 {
	target := int64(t / (SamplePeriodMS * time.Millisecond))
	if target <= s.step {
		return s.last
	}
	steps := target - s.step
	s.step = target
	if steps > maxCatchUpSteps {
		s.reseed()
		return s.last
	}
	for i := int64(0); i < steps; i++ {
		s.next()
	}
	return s.last
}
