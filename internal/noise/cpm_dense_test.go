package noise

import (
	"math/rand/v2"
	"testing"
	"time"

	"teleadjust/internal/sim"
)

// --- Reference implementation ---
//
// mapModel is the pre-dense-index CPM implementation, string-keyed maps
// and all, kept verbatim as the behavioural reference: the dense model
// must consume the RNG identically and emit bit-identical samples, or
// every pinned scenario trace in the repo shifts.

type mapModel struct {
	histLens []int
	tables   []map[string]*dist
	marginal dist
}

func trainMap(trace []float64) *mapModel {
	m := &mapModel{histLens: defaultHistLens}
	m.tables = make([]map[string]*dist, len(m.histLens))
	for i := range m.tables {
		m.tables[i] = make(map[string]*dist)
	}
	q := make([]uint8, len(trace))
	for i, v := range trace {
		q[i] = quantize(v)
	}
	for i, bin := range q {
		m.marginal.add(bin)
		for li, hl := range m.histLens {
			if i < hl {
				continue
			}
			key := string(q[i-hl : i])
			d := m.tables[li][key]
			if d == nil {
				d = &dist{}
				m.tables[li][key] = d
			}
			d.add(bin)
		}
	}
	return m
}

type mapSource struct {
	model *mapModel
	rng   *rand.Rand
	hist  []uint8
	last  float64
}

func (m *mapModel) newSource(rng *rand.Rand) *mapSource {
	s := &mapSource{model: m, rng: rng}
	s.reseed()
	return s
}

func (s *mapSource) reseed() {
	maxHist := s.model.histLens[0]
	s.hist = s.hist[:0]
	for i := 0; i < maxHist; i++ {
		s.hist = append(s.hist, s.model.marginal.sample(s.rng))
	}
	s.last = dequantize(s.hist[len(s.hist)-1], s.rng)
}

func (s *mapSource) next() float64 {
	var bin uint8
	matched := false
	for li, hl := range s.model.histLens {
		if hl > len(s.hist) {
			continue
		}
		key := string(s.hist[len(s.hist)-hl:])
		if d, ok := s.model.tables[li][key]; ok {
			bin = d.sample(s.rng)
			matched = true
			break
		}
	}
	if !matched {
		bin = s.model.marginal.sample(s.rng)
	}
	copy(s.hist, s.hist[1:])
	s.hist[len(s.hist)-1] = bin
	s.last = dequantize(bin, s.rng)
	return s.last
}

// TestDenseModelMatchesMapModel pins the dense-index model bit-for-bit
// against the map-based reference on a trained trace: same pattern
// counts, same RNG consumption, identical sample streams.
func TestDenseModelMatchesMapModel(t *testing.T) {
	trace := GenerateTrace(120000, 11)
	dense := Train(trace)
	ref := trainMap(trace)

	if got, want := dense.Patterns(), len(ref.tables[0]); got != want {
		t.Fatalf("Patterns() = %d, map reference has %d", got, want)
	}
	// Every table level must index the identical pattern set with
	// identical distributions (bin order and counts, not just totals —
	// sampling walks the bins in insertion order).
	for li := range dense.histLens {
		if dense.tables[li].n != len(ref.tables[li]) {
			t.Fatalf("level %d: dense %d patterns, map %d",
				li, dense.tables[li].n, len(ref.tables[li]))
		}
		for key, rd := range ref.tables[li] {
			var packed uint64
			for i := 0; i < len(key); i++ {
				packed = packed<<histShift | uint64(key[i])
			}
			slot := dense.tables[li].get(packed)
			if slot < 0 {
				t.Fatalf("level %d: pattern %x missing from dense index", li, key)
			}
			dd := &dense.dists[slot]
			if len(dd.bins) != len(rd.bins) || dd.total != rd.total {
				t.Fatalf("level %d pattern %x: dense dist %v/%d, map %v/%d",
					li, key, dd.bins, dd.total, rd.bins, rd.total)
			}
			for i := range dd.bins {
				if dd.bins[i] != rd.bins[i] || dd.counts[i] != rd.counts[i] {
					t.Fatalf("level %d pattern %x: bin slot %d differs", li, key, i)
				}
			}
		}
	}

	// Identical sample streams from identically seeded RNGs, across both
	// the plain chain and the lazy ReadAt path (catch-up and reseed).
	const seed = 77
	ds := dense.NewSource(sim.NewRNG(seed))
	ms := ref.newSource(sim.NewRNG(seed))
	for i := 0; i < 20000; i++ {
		if dv, mv := ds.next(), ms.next(); dv != mv {
			t.Fatalf("step %d: dense %v, map %v", i, dv, mv)
		}
	}
	// Drive ReadAt through catch-up gaps of every size up to past the
	// reseed threshold; mirror each gap on the reference chain.
	now := ds.step
	for gap := int64(1); gap <= maxCatchUpSteps+3; gap++ {
		now += gap
		dv := ds.ReadAt(time.Duration(now) * SamplePeriodMS * time.Millisecond)
		var mv float64
		if gap > maxCatchUpSteps {
			ms.reseed()
			mv = ms.last
		} else {
			for i := int64(0); i < gap; i++ {
				mv = ms.next()
			}
		}
		if dv != mv {
			t.Fatalf("gap %d: dense %v, map %v", gap, dv, mv)
		}
	}
}

// TestEmptyDistQuietFloor covers the empty-distribution fallback: it must
// return the properly quantized quiet-floor bin (rounded and clamped via
// quantize), not raw float-to-uint8 arithmetic.
func TestEmptyDistQuietFloor(t *testing.T) {
	var d dist
	rng := sim.NewRNG(1)
	got := d.sample(rng)
	want := quantize(quietFloorDBm)
	if got != want {
		t.Fatalf("empty dist sampled bin %d, want quantize(%v) = %d", got, quietFloorDBm, want)
	}
	if dbm := dequantize(got, rng); dbm < quietFloorDBm-1 || dbm > quietFloorDBm+1 {
		t.Fatalf("empty dist bin dequantizes to %v, want ~%v", dbm, quietFloorDBm)
	}
	// A model trained on an empty trace has an empty marginal: every
	// sample must sit on the quiet floor and never panic.
	m := Train(nil)
	src := m.NewSource(sim.NewRNG(2))
	for i := 0; i < 10; i++ {
		v := src.next()
		if v < quietFloorDBm-1 || v > quietFloorDBm+1 {
			t.Fatalf("empty-model sample %v, want quiet floor ±1", v)
		}
	}
}

// TestSourceNextAllocFree is the alloc contract for the per-sample hot
// path: the dense index does zero map lookups, zero string conversions,
// and zero allocations per chain step.
func TestSourceNextAllocFree(t *testing.T) {
	m := Train(GenerateTrace(50000, 3))
	src := m.NewSource(sim.NewRNG(4))
	if allocs := testing.AllocsPerRun(1000, func() { src.next() }); allocs != 0 {
		t.Fatalf("Source.next allocates %v per step, want 0", allocs)
	}
	var tick int64
	src2 := m.NewSource(sim.NewRNG(5))
	if allocs := testing.AllocsPerRun(1000, func() {
		tick++
		src2.ReadAt(time.Duration(tick) * SamplePeriodMS * time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("Source.ReadAt allocates %v per step, want 0", allocs)
	}
}

// TestSourceReadAtBoundaries pins the lazy catch-up contract: monotone
// reads, catch-up of exactly maxCatchUpSteps steps, and a reseed at
// maxCatchUpSteps+1.
func TestSourceReadAtBoundaries(t *testing.T) {
	trace := GenerateTrace(50000, 6)
	stepAt := func(i int64) time.Duration {
		return time.Duration(i) * SamplePeriodMS * time.Millisecond
	}

	// Monotone-time contract: same or earlier times return the current
	// value without advancing the chain (no RNG consumption).
	m := Train(trace)
	src := m.NewSource(sim.NewRNG(7))
	v := src.ReadAt(stepAt(10))
	if src.ReadAt(stepAt(10)) != v || src.ReadAt(stepAt(3)) != v || src.ReadAt(0) != v {
		t.Fatal("non-advancing ReadAt changed the value")
	}

	// A gap of exactly maxCatchUpSteps steps walks the chain; the result
	// must equal stepping one at a time on a twin source.
	walk := m.NewSource(sim.NewRNG(8))
	jump := m.NewSource(sim.NewRNG(8))
	walk.ReadAt(stepAt(1))
	jump.ReadAt(stepAt(1))
	var want float64
	for i := int64(2); i <= 1+maxCatchUpSteps; i++ {
		want = walk.ReadAt(stepAt(i))
	}
	if got := jump.ReadAt(stepAt(1 + maxCatchUpSteps)); got != want {
		t.Fatalf("catch-up of exactly %d steps = %v, stepwise = %v", maxCatchUpSteps, got, want)
	}

	// One step beyond the cap must reseed instead: the twin that walks
	// diverges from the twin that jumps, and the jump consumes exactly a
	// reseed's worth of RNG (histLens[0] marginal draws + 1 dequantize).
	jump2 := m.NewSource(sim.NewRNG(9))
	jump2.ReadAt(stepAt(1))
	// twin shares jump2's RNG state: after the same construction and
	// first read, refRNG sits exactly where jump2's stream does.
	refRNG := sim.NewRNG(9)
	twin := m.NewSource(refRNG)
	twin.ReadAt(stepAt(1))
	got := jump2.ReadAt(stepAt(2 + maxCatchUpSteps))
	// The jump crossed maxCatchUpSteps+1 steps: it must have reseeded,
	// consuming exactly histLens[0] marginal draws plus one dequantize.
	var bin uint8
	for i := 0; i < defaultHistLens[0]; i++ {
		bin = m.marginal.sample(refRNG)
	}
	reseedWant := dequantize(bin, refRNG)
	if got != reseedWant {
		t.Fatalf("catch-up of %d steps = %v, want reseed result %v", maxCatchUpSteps+1, got, reseedWant)
	}
}
