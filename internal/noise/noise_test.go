package noise

import (
	"testing"
	"time"

	"teleadjust/internal/sim"
)

func TestGenerateTraceStats(t *testing.T) {
	trace := GenerateTrace(200000, 1)
	s := Stats(trace)
	if s.Mean < -99 || s.Mean > -85 {
		t.Fatalf("mean %v outside plausible band", s.Mean)
	}
	if s.Min < -105 {
		t.Fatalf("min %v below physical floor", s.Min)
	}
	if s.Max > MeyerHeavy().BurstCapDBm+1 {
		t.Fatalf("max %v above burst cap", s.Max)
	}
	if s.BurstFrac < 0.02 || s.BurstFrac > 0.4 {
		t.Fatalf("burst fraction %v not heavy-tailed-like", s.BurstFrac)
	}
}

func TestGenerateTraceDeterminism(t *testing.T) {
	a := GenerateTrace(1000, 5)
	b := GenerateTrace(1000, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, v := range []float64{-104.9, -98, -70.3, -45, -40} {
		bin := quantize(v)
		got := dequantize(bin, rng)
		if diff := got - v; diff > 1.1 || diff < -1.1 {
			t.Fatalf("round trip %v -> bin %d -> %v", v, bin, got)
		}
	}
	if quantize(-300) != 0 {
		t.Fatal("underflow not clamped")
	}
	if quantize(0) != quantBins-1 {
		t.Fatal("overflow not clamped")
	}
}

func TestTrainAndSample(t *testing.T) {
	trace := GenerateTrace(100000, 2)
	m := Train(trace)
	if m.Patterns() == 0 {
		t.Fatal("no patterns learned")
	}
	src := m.NewSource(sim.NewRNG(3))
	// Sample a long run; check generated statistics roughly match training.
	n := 50000
	sum, bursts := 0.0, 0
	for i := 0; i < n; i++ {
		v := src.next()
		if v < quantMinDBm-1 || v > MeyerHeavy().BurstCapDBm+2 {
			t.Fatalf("sample %v out of range", v)
		}
		sum += v
		if v > quietFloorDBm+6 {
			bursts++
		}
	}
	trainStats := Stats(trace)
	genMean := sum / float64(n)
	if diff := genMean - trainStats.Mean; diff > 3 || diff < -3 {
		t.Fatalf("generated mean %v far from training mean %v", genMean, trainStats.Mean)
	}
	genBurst := float64(bursts) / float64(n)
	if genBurst < trainStats.BurstFrac/3 || genBurst > trainStats.BurstFrac*3 {
		t.Fatalf("generated burst frac %v vs training %v", genBurst, trainStats.BurstFrac)
	}
}

func TestCPMTemporalCorrelation(t *testing.T) {
	// Burst samples should be followed by burst samples more often than the
	// marginal burst probability (that is the whole point of CPM).
	trace := GenerateTrace(100000, 4)
	m := Train(trace)
	src := m.NewSource(sim.NewRNG(5))
	const thresh = quietFloorDBm + 6
	prev := src.next()
	burstAfterBurst, burstCount, total, bursts := 0, 0, 0, 0
	for i := 0; i < 50000; i++ {
		v := src.next()
		total++
		if v > thresh {
			bursts++
		}
		if prev > thresh {
			burstCount++
			if v > thresh {
				burstAfterBurst++
			}
		}
		prev = v
	}
	if burstCount == 0 || bursts == 0 {
		t.Skip("no bursts generated; statistics unusable")
	}
	pCond := float64(burstAfterBurst) / float64(burstCount)
	pMarg := float64(bursts) / float64(total)
	if pCond <= pMarg*1.5 {
		t.Fatalf("no temporal correlation: P(burst|burst)=%v vs P(burst)=%v", pCond, pMarg)
	}
}

func TestSourceReadAtMonotone(t *testing.T) {
	m := Train(GenerateTrace(20000, 6))
	src := m.NewSource(sim.NewRNG(7))
	v1 := src.ReadAt(10 * time.Millisecond)
	v2 := src.ReadAt(10 * time.Millisecond)
	if v1 != v2 {
		t.Fatal("ReadAt at same time changed value")
	}
	// Large jumps must not hang (lazy catch-up cap).
	done := make(chan struct{})
	go func() {
		src.ReadAt(10 * time.Hour)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ReadAt with huge gap did not return promptly")
	}
}

func TestSourceReadAtAdvances(t *testing.T) {
	m := Train(GenerateTrace(20000, 8))
	src := m.NewSource(sim.NewRNG(9))
	seen := map[float64]bool{}
	for i := 1; i <= 200; i++ {
		seen[src.ReadAt(time.Duration(i)*5*time.Millisecond)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("noise stream barely changes: %d unique of 200", len(seen))
	}
}

func TestWifiInterfererDutyCycle(t *testing.T) {
	w := NewWifiInterferer(sim.NewRNG(10), -55)
	on, total := 0, 0
	for i := 0; i < 200000; i++ {
		ts := time.Duration(i) * 500 * time.Microsecond // 100 s
		if w.InterferenceAt(ts) > -100 {
			on++
		}
		total++
	}
	frac := float64(on) / float64(total)
	if frac < 0.01 || frac > 0.5 {
		t.Fatalf("wifi on-fraction %v implausible", frac)
	}
}

func TestWifiInterfererPower(t *testing.T) {
	w := NewWifiInterferer(sim.NewRNG(11), -55)
	sawOn := false
	for i := 0; i < 100000; i++ {
		v := w.InterferenceAt(time.Duration(i) * time.Millisecond)
		if v > -100 {
			sawOn = true
			if v != -55 {
				t.Fatalf("on power = %v, want -55", v)
			}
		}
	}
	if !sawOn {
		t.Fatal("interferer never turned on in 100s")
	}
}
