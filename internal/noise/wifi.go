package noise

import (
	"math/rand/v2"
	"time"
)

// WifiInterferer models co-channel 802.11 interference as an on/off burst
// process: when a WiFi transmitter is active it elevates the interference
// power seen by every sensor node (WiFi cells are large compared to the
// testbed). This reproduces the paper's "interfered by WIFI (channel 19)"
// condition, where ZigBee channel 19 overlaps a busy WiFi channel.
//
// The schedule is generated lazily and queried at monotonically
// non-decreasing times, which matches how the radio medium samples it.
type WifiInterferer struct {
	rng *rand.Rand

	// PowerDBm is the interference power while a burst is on.
	PowerDBm float64

	segEnd time.Duration
	on     bool

	// Burst shape parameters.
	meanOn      time.Duration
	meanOff     time.Duration
	activeFrac  float64       // fraction of time the WiFi network has traffic at all
	activePhase time.Duration // length of each activity-decision epoch
	epochEnd    time.Duration
	epochActive bool
}

// NewWifiInterferer creates an interferer modelling a busy WiFi network
// overlapping the ZigBee channel: ~3 ms frame bursts separated by ~6 ms
// gaps during active epochs of 250 ms, with roughly 55% of epochs active
// (≈18% of airtime occupied overall).
func NewWifiInterferer(rng *rand.Rand, powerDBm float64) *WifiInterferer {
	return &WifiInterferer{
		rng:         rng,
		PowerDBm:    powerDBm,
		meanOn:      3 * time.Millisecond,
		meanOff:     6 * time.Millisecond,
		activeFrac:  0.55,
		activePhase: 250 * time.Millisecond,
	}
}

// InterferenceAt returns the WiFi interference power (dBm) at time t, or
// -200 (negligible) when no burst is on. Calls must be monotone in t.
func (w *WifiInterferer) InterferenceAt(t time.Duration) float64 {
	for t >= w.epochEnd {
		w.epochActive = w.rng.Float64() < w.activeFrac
		w.epochEnd += w.activePhase
		w.segEnd = w.epochEnd
		w.on = false
		if w.epochActive {
			w.segEnd = w.epochEnd - w.activePhase // restart segments within epoch
			if w.segEnd < t-w.activePhase {
				w.segEnd = t
			}
		}
	}
	if !w.epochActive {
		return -200
	}
	for t >= w.segEnd {
		w.on = !w.on
		mean := w.meanOff
		if w.on {
			mean = w.meanOn
		}
		w.segEnd += time.Duration(w.rng.ExpFloat64() * float64(mean))
	}
	if w.on {
		return w.PowerDBm
	}
	return -200
}
