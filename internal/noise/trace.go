// Package noise models the radio noise environment. It provides (1) a
// synthetic generator of meyer-heavy-like noise traces (the paper's TOSSIM
// runs use the meyer-heavy.txt trace, which is not redistributable), (2) the
// CPM closest-pattern-matching noise model trained on such a trace, and (3)
// a WiFi interferer used for the "channel 19" experiments.
//
// All power values are in dBm unless noted otherwise.
package noise

import (
	"math"
	"math/rand/v2"

	"teleadjust/internal/sim"
)

// SamplePeriodMS is the trace sampling period in milliseconds, matching
// the CPM paper's 1 kHz sampling.
const SamplePeriodMS = 1

const (
	quietFloorDBm = -98.0
	quietSigmaDB  = 1.2
)

// TraceProfile parameterizes the two-state semi-Markov noise generator.
type TraceProfile struct {
	// FloorDBm / FloorSigmaDB describe the quiet state.
	FloorDBm, FloorSigmaDB float64
	// BurstBaseDBm + Exp(BurstMeanDB) capped at BurstCapDBm describes
	// burst amplitudes.
	BurstBaseDBm, BurstMeanDB, BurstCapDBm float64
	// MeanQuietDwell / MeanBurstDwell are state dwell times in samples.
	MeanQuietDwell, MeanBurstDwell float64
}

// MeyerHeavy mimics the marginal and burst statistics of the meyer-heavy
// trace: a quiet floor near -98 dBm with frequent bursty excursions up to
// roughly -45 dBm. Used for the paper's TOSSIM-style simulations.
func MeyerHeavy() TraceProfile {
	return TraceProfile{
		FloorDBm:       quietFloorDBm,
		FloorSigmaDB:   quietSigmaDB,
		BurstBaseDBm:   -92,
		BurstMeanDB:    14,
		BurstCapDBm:    -45,
		MeanQuietDwell: 180,
		MeanBurstDwell: 24,
	}
}

// QuietChannel models a clean 802.15.4 channel (the testbed's channel 26,
// which no WiFi overlaps): the same floor with rare, small excursions.
func QuietChannel() TraceProfile {
	return TraceProfile{
		FloorDBm:       quietFloorDBm,
		FloorSigmaDB:   quietSigmaDB,
		BurstBaseDBm:   -96,
		BurstMeanDB:    4,
		BurstCapDBm:    -85,
		MeanQuietDwell: 2000,
		MeanBurstDwell: 10,
	}
}

// GenerateTrace produces n samples of meyer-heavy-like noise.
func GenerateTrace(n int, seed uint64) []float64 {
	return GenerateTraceProfile(n, seed, MeyerHeavy())
}

// GenerateTraceProfile produces n samples of synthetic noise using a
// two-state semi-Markov process (quiet / bursty) with the given profile.
func GenerateTraceProfile(n int, seed uint64, p TraceProfile) []float64 {
	rng := sim.NewRNG(seed)
	out := make([]float64, n)
	inBurst := false
	dwell := geometric(rng, p.MeanQuietDwell)
	for i := range out {
		if dwell == 0 {
			inBurst = !inBurst
			if inBurst {
				dwell = geometric(rng, p.MeanBurstDwell)
			} else {
				dwell = geometric(rng, p.MeanQuietDwell)
			}
		} else {
			dwell--
		}
		if inBurst {
			v := p.BurstBaseDBm + rng.ExpFloat64()*p.BurstMeanDB
			if v > p.BurstCapDBm {
				v = p.BurstCapDBm
			}
			out[i] = v
		} else {
			out[i] = p.FloorDBm + rng.NormFloat64()*p.FloorSigmaDB
		}
	}
	return out
}

// geometric returns a geometric dwell time with the given mean.
func geometric(rng *rand.Rand, mean float64) int {
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := int(math.Log(u) / math.Log(1-1/mean))
	if d < 1 {
		d = 1
	}
	return d
}

// TraceStats summarizes a noise trace.
type TraceStats struct {
	Mean, Min, Max float64
	// BurstFrac is the fraction of samples more than 6 dB above the floor.
	BurstFrac float64
}

// Stats computes summary statistics of a trace.
func Stats(trace []float64) TraceStats {
	if len(trace) == 0 {
		return TraceStats{}
	}
	s := TraceStats{Min: math.Inf(1), Max: math.Inf(-1)}
	bursts := 0
	for _, v := range trace {
		s.Mean += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
		if v > quietFloorDBm+6 {
			bursts++
		}
	}
	s.Mean /= float64(len(trace))
	s.BurstFrac = float64(bursts) / float64(len(trace))
	return s
}
