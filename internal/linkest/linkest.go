// Package linkest implements a CTP-style hybrid link estimator: inbound
// quality from routing-beacon sequence gaps (broadcast reception ratio),
// outbound quality from unicast acknowledgement outcomes, combined into a
// bidirectional ETX metric with EWMA smoothing — the same structure as
// TinyOS's 4-bit link estimator.
package linkest

import (
	"math"
	"sort"
	"time"

	"teleadjust/internal/radio"
)

// Config holds estimator parameters.
type Config struct {
	// BeaconWindow is how many beacon observations fold into one EWMA
	// update of inbound quality.
	BeaconWindow int
	// DataWindow is how many unicast attempts fold into one EWMA update
	// of outbound quality.
	DataWindow int
	// Alpha is the EWMA weight of history (0..1).
	Alpha float64
	// MaxEntries caps the neighbor table.
	MaxEntries int
	// StaleAfter evicts neighbors not heard for this long.
	StaleAfter time.Duration
}

// DefaultConfig mirrors TinyOS defaults.
func DefaultConfig() Config {
	return Config{
		BeaconWindow: 8,
		DataWindow:   5,
		Alpha:        0.8,
		MaxEntries:   32,
		StaleAfter:   10 * time.Minute,
	}
}

// UnknownETX is returned for neighbors without an estimate.
const UnknownETX = math.MaxFloat64

type entry struct {
	inQuality  float64 // EWMA beacon reception ratio
	outQuality float64 // EWMA ack success ratio
	haveIn     bool
	haveOut    bool

	lastSeq  uint32
	haveSeq  bool
	rcvd     int
	missed   int
	acked    int
	attempts int

	lastHeard time.Duration
}

// Estimator tracks link quality to each neighbor of one node.
type Estimator struct {
	cfg   Config
	table map[radio.NodeID]*entry
}

// New creates an estimator.
func New(cfg Config) *Estimator {
	if cfg.BeaconWindow <= 0 || cfg.DataWindow <= 0 || cfg.MaxEntries <= 0 {
		panic("linkest: invalid config")
	}
	return &Estimator{cfg: cfg, table: make(map[radio.NodeID]*entry)}
}

// OnBeacon records reception of a beacon from a neighbor carrying the
// neighbor's beacon sequence number.
func (e *Estimator) OnBeacon(from radio.NodeID, seq uint32, now time.Duration) {
	en := e.get(from, now)
	if en == nil {
		return
	}
	en.lastHeard = now
	if en.haveSeq {
		gap := seq - en.lastSeq
		if gap == 0 {
			return // duplicate
		}
		// gap-1 beacons were missed (modular arithmetic handles wrap).
		// The miss penalty is capped at one window so a single congested
		// episode cannot poison the estimate beyond one quality sample.
		if gap < 64 {
			missed := int(gap) - 1
			if missed > e.cfg.BeaconWindow {
				missed = e.cfg.BeaconWindow
			}
			en.missed += missed
		}
	}
	en.haveSeq = true
	en.lastSeq = seq
	en.rcvd++
	if en.rcvd+en.missed >= e.cfg.BeaconWindow {
		ratio := float64(en.rcvd) / float64(en.rcvd+en.missed)
		en.inQuality = e.fold(en.inQuality, ratio, en.haveIn)
		en.haveIn = true
		en.rcvd, en.missed = 0, 0
	}
}

// OnDataOutcome records the result of a unicast attempt to a neighbor
// (acked or not after the full LPL round).
func (e *Estimator) OnDataOutcome(to radio.NodeID, acked bool, now time.Duration) {
	en := e.get(to, now)
	if en == nil {
		return
	}
	en.attempts++
	if acked {
		en.acked++
		en.lastHeard = now
	}
	if en.attempts >= e.cfg.DataWindow {
		ratio := float64(en.acked) / float64(en.attempts)
		en.outQuality = e.fold(en.outQuality, ratio, en.haveOut)
		// Floor the outbound estimate: a failure streak (congestion, a
		// neighbor's long broadcast stream) must leave the link retryable,
		// or the estimate can never observe a success again.
		const outFloor = 0.1
		if en.outQuality < outFloor {
			en.outQuality = outFloor
		}
		en.haveOut = true
		en.acked, en.attempts = 0, 0
	}
}

func (e *Estimator) fold(old, sample float64, have bool) float64 {
	if !have {
		return sample
	}
	return e.cfg.Alpha*old + (1-e.cfg.Alpha)*sample
}

// get returns (possibly inserting) the entry for a neighbor, evicting the
// worst entry when the table is full.
func (e *Estimator) get(id radio.NodeID, now time.Duration) *entry {
	if en, ok := e.table[id]; ok {
		return en
	}
	if len(e.table) >= e.cfg.MaxEntries {
		e.evict(now)
		if len(e.table) >= e.cfg.MaxEntries {
			return nil
		}
	}
	en := &entry{lastHeard: now}
	e.table[id] = en
	return en
}

// evict removes stale entries, then the lowest-quality entry if needed.
func (e *Estimator) evict(now time.Duration) {
	for id, en := range e.table {
		if now-en.lastHeard > e.cfg.StaleAfter {
			delete(e.table, id)
		}
	}
	if len(e.table) < e.cfg.MaxEntries {
		return
	}
	var worst radio.NodeID
	worstQ := math.Inf(1)
	for id, en := range e.table {
		q := en.inQuality
		if !en.haveIn {
			q = 0.01 // barely-known entries are cheapest to drop
		}
		// Ties broken by id: eviction must not depend on map iteration
		// order, or dense networks lose run-to-run reproducibility.
		if q < worstQ || (q == worstQ && id < worst) {
			worstQ = q
			worst = id
		}
	}
	delete(e.table, worst)
}

// inQualityOf returns the inbound estimate, using a provisional
// within-window ratio once two beacons have been received — a fresh link
// becomes usable for routing before a full window accumulates (TinyOS's
// estimator similarly seeds from the first receptions), which is what lets
// a construction frontier advance at beacon pace.
func (e *Estimator) inQualityOf(en *entry) (float64, bool) {
	if en.haveIn {
		return en.inQuality, true
	}
	if en.rcvd >= 2 {
		return float64(en.rcvd) / float64(en.rcvd+en.missed), true
	}
	return 0, false
}

// InQuality returns the inbound (beacon) reception ratio estimate, or 0
// when unknown.
func (e *Estimator) InQuality(id radio.NodeID) float64 {
	en, ok := e.table[id]
	if !ok {
		return 0
	}
	q, have := e.inQualityOf(en)
	if !have {
		return 0
	}
	return q
}

// ETX returns the expected transmissions for one successful bidirectional
// exchange with the neighbor: 1/(p_in · p_out). Unknown links return
// UnknownETX. Without data-plane feedback the outbound estimate defaults
// to the inbound one.
func (e *Estimator) ETX(id radio.NodeID) float64 {
	en, ok := e.table[id]
	if !ok {
		return UnknownETX
	}
	in, have := e.inQualityOf(en)
	if !have {
		return UnknownETX
	}
	out := en.outQuality
	if !en.haveOut {
		out = in
	}
	if in <= 0 || out <= 0 {
		return UnknownETX
	}
	etx := 1 / (in * out)
	if etx > 100 {
		return UnknownETX
	}
	return etx
}

// Neighbors returns neighbor ids with a usable estimate, sorted by ETX
// ascending.
func (e *Estimator) Neighbors() []radio.NodeID {
	ids := make([]radio.NodeID, 0, len(e.table))
	for id := range e.table {
		if e.ETX(id) != UnknownETX {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := e.ETX(ids[i]), e.ETX(ids[j])
		if a != b {
			return a < b
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Known reports whether the neighbor is in the table at all.
func (e *Estimator) Known(id radio.NodeID) bool {
	_, ok := e.table[id]
	return ok
}

// Forget removes a neighbor (used when a link is declared dead).
func (e *Estimator) Forget(id radio.NodeID) { delete(e.table, id) }

// Len returns the neighbor table size.
func (e *Estimator) Len() int { return len(e.table) }
