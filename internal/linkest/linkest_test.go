package linkest

import (
	"math"
	"testing"
	"time"

	"teleadjust/internal/radio"
)

func TestPerfectLink(t *testing.T) {
	e := New(DefaultConfig())
	for i := uint32(1); i <= 16; i++ {
		e.OnBeacon(1, i, time.Duration(i)*time.Second)
	}
	if q := e.InQuality(1); q != 1 {
		t.Fatalf("in quality = %v, want 1", q)
	}
	if etx := e.ETX(1); etx != 1 {
		t.Fatalf("ETX = %v, want 1", etx)
	}
}

func TestLossyLinkETX(t *testing.T) {
	e := New(DefaultConfig())
	// Receive every other beacon: quality 0.5, ETX = 1/(0.5*0.5) = 4.
	for i := uint32(2); i <= 64; i += 2 {
		e.OnBeacon(1, i, time.Duration(i)*time.Second)
	}
	q := e.InQuality(1)
	if q < 0.4 || q > 0.6 {
		t.Fatalf("in quality = %v, want ~0.5", q)
	}
	etx := e.ETX(1)
	if etx < 3 || etx > 5.5 {
		t.Fatalf("ETX = %v, want ~4", etx)
	}
}

func TestUnknownNeighbor(t *testing.T) {
	e := New(DefaultConfig())
	if e.ETX(9) != UnknownETX {
		t.Fatal("unknown neighbor should have UnknownETX")
	}
	if e.InQuality(9) != 0 {
		t.Fatal("unknown neighbor should have zero quality")
	}
	// A single beacon is below the window: still unknown ETX.
	e.OnBeacon(9, 1, time.Second)
	if e.ETX(9) != UnknownETX {
		t.Fatal("sub-window estimate should be unknown")
	}
	if !e.Known(9) {
		t.Fatal("neighbor should be in table after one beacon")
	}
}

func TestDataOutcomeImprovesEstimate(t *testing.T) {
	cfg := DefaultConfig()
	e := New(cfg)
	for i := uint32(1); i <= 16; i++ {
		e.OnBeacon(2, i, time.Duration(i)*time.Second)
	}
	before := e.ETX(2) // 1.0: symmetric assumption
	// Unicast acks mostly fail: outbound quality collapses.
	for i := 0; i < 20; i++ {
		e.OnDataOutcome(2, i%5 == 0, 20*time.Second)
	}
	after := e.ETX(2)
	if after <= before {
		t.Fatalf("ETX %v -> %v; failed acks must worsen the estimate", before, after)
	}
}

func TestDuplicateBeaconIgnored(t *testing.T) {
	e := New(DefaultConfig())
	for i := 0; i < 20; i++ {
		e.OnBeacon(3, 7, time.Second) // same seq over and over
	}
	// One real reception, no window progress: quality still unknown.
	if e.ETX(3) != UnknownETX {
		t.Fatalf("duplicates should not build an estimate, got ETX %v", e.ETX(3))
	}
}

func TestSequenceWrap(t *testing.T) {
	e := New(DefaultConfig())
	start := uint32(math.MaxUint32 - 4)
	for i := uint32(0); i < 16; i++ {
		e.OnBeacon(4, start+i, time.Duration(i)*time.Second)
	}
	if q := e.InQuality(4); q != 1 {
		t.Fatalf("quality across wrap = %v, want 1", q)
	}
}

func TestEvictionCapsTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEntries = 4
	e := New(cfg)
	for id := 0; id < 10; id++ {
		for i := uint32(1); i <= 8; i++ {
			e.OnBeacon(radio.NodeID(id), i, time.Duration(i)*time.Second)
		}
	}
	if e.Len() > 4 {
		t.Fatalf("table size %d exceeds cap 4", e.Len())
	}
}

func TestStaleEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEntries = 2
	cfg.StaleAfter = 10 * time.Second
	e := New(cfg)
	for i := uint32(1); i <= 8; i++ {
		e.OnBeacon(1, i, time.Duration(i)*time.Second)
		e.OnBeacon(2, i, time.Duration(i)*time.Second)
	}
	// Much later, a new neighbor appears; the stale ones must make room.
	e.OnBeacon(3, 1, time.Hour)
	if !e.Known(3) {
		t.Fatal("new neighbor not admitted after stale eviction")
	}
}

func TestNeighborsSortedByETX(t *testing.T) {
	e := New(DefaultConfig())
	// Neighbor 1: perfect. Neighbor 2: half.
	for i := uint32(1); i <= 16; i++ {
		e.OnBeacon(1, i, time.Duration(i)*time.Second)
	}
	for i := uint32(2); i <= 32; i += 2 {
		e.OnBeacon(2, i, time.Duration(i)*time.Second)
	}
	ns := e.Neighbors()
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 2 {
		t.Fatalf("neighbors = %v, want [1 2]", ns)
	}
}

func TestForget(t *testing.T) {
	e := New(DefaultConfig())
	for i := uint32(1); i <= 8; i++ {
		e.OnBeacon(1, i, time.Duration(i)*time.Second)
	}
	e.Forget(1)
	if e.Known(1) {
		t.Fatal("neighbor known after Forget")
	}
}

func TestProvisionalEstimateAfterTwoBeacons(t *testing.T) {
	e := New(DefaultConfig())
	e.OnBeacon(5, 1, time.Second)
	if e.ETX(5) != UnknownETX {
		t.Fatal("one beacon should not yield an estimate")
	}
	e.OnBeacon(5, 2, 2*time.Second)
	if e.ETX(5) == UnknownETX {
		t.Fatal("two consecutive beacons should yield a provisional estimate")
	}
	if q := e.InQuality(5); q != 1 {
		t.Fatalf("provisional quality = %v, want 1", q)
	}
}

func TestProvisionalEstimateReflectsLoss(t *testing.T) {
	e := New(DefaultConfig())
	e.OnBeacon(5, 1, time.Second)
	e.OnBeacon(5, 4, 2*time.Second) // missed 2 and 3
	q := e.InQuality(5)
	if q < 0.3 || q > 0.7 {
		t.Fatalf("provisional quality = %v, want ~0.5", q)
	}
}

func TestOutboundFloorAllowsRecovery(t *testing.T) {
	e := New(DefaultConfig())
	for i := uint32(1); i <= 16; i++ {
		e.OnBeacon(2, i, time.Duration(i)*time.Second)
	}
	// A long failure streak must not make the link permanently unusable.
	for i := 0; i < 50; i++ {
		e.OnDataOutcome(2, false, 20*time.Second)
	}
	if e.ETX(2) == UnknownETX {
		t.Fatal("failure streak pushed the link to Unknown; retries are impossible")
	}
	// Successes bring it back.
	for i := 0; i < 50; i++ {
		e.OnDataOutcome(2, true, 30*time.Second)
	}
	if etx := e.ETX(2); etx > 3 {
		t.Fatalf("link did not recover after successes: ETX %v", etx)
	}
}

func TestMissPenaltyCapped(t *testing.T) {
	cfg := DefaultConfig()
	e := New(cfg)
	for i := uint32(1); i <= 16; i++ {
		e.OnBeacon(3, i, time.Duration(i)*time.Second)
	}
	before := e.InQuality(3)
	// One congested episode: a huge sequence gap in a single beacon.
	e.OnBeacon(3, 60, 30*time.Second)
	after := e.InQuality(3)
	// The gap folds at most one window of misses: quality must not
	// collapse to near zero from a single event.
	if after < before*0.3 {
		t.Fatalf("single gap collapsed quality %v -> %v", before, after)
	}
}
