package stats_test

import (
	"fmt"

	"teleadjust/internal/stats"
)

// ExampleByKey groups per-hop measurements the way the evaluation runners
// build the paper's per-hop figures.
func ExampleByKey() {
	pdr := stats.NewByKey()
	pdr.Add(1, 1) // hop 1: delivered
	pdr.Add(1, 1)
	pdr.Add(2, 1) // hop 2: delivered
	pdr.Add(2, 0) // hop 2: lost
	for _, hop := range pdr.Keys() {
		fmt.Printf("hop %d: PDR %.2f over %d packets\n",
			hop, pdr.Get(hop).Mean(), pdr.Get(hop).Count())
	}
	// Output:
	// hop 1: PDR 1.00 over 2 packets
	// hop 2: PDR 0.50 over 2 packets
}

// ExampleCDF computes the convergence-time quantiles of Fig 6c.
func ExampleCDF() {
	c := stats.NewCDF([]float64{2, 4, 6, 8, 20})
	fmt.Printf("P(X<=8) = %.1f\n", c.At(8))
	fmt.Printf("p80 = %.0f beacons\n", c.Quantile(0.8))
	// Output:
	// P(X<=8) = 0.8
	// p80 = 20 beacons
}
