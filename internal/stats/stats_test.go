package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 2.8 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series should return zeros")
	}
	// Min/Max follow the same convention: an empty series must never leak
	// ±Inf into a report (check Count to distinguish a genuine zero).
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty min/max = %v/%v, want 0/0", s.Min(), s.Max())
	}
}

func TestStddev(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if math.Abs(s.Stddev()-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", s.Stddev())
	}
}

func TestPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestPercentileHelpers(t *testing.T) {
	var s Series
	for i := 1; i <= 200; i++ {
		s.Add(float64(i))
	}
	if got := s.P50(); got != 100 {
		t.Fatalf("P50 = %v, want 100", got)
	}
	if got := s.P95(); got != 190 {
		t.Fatalf("P95 = %v, want 190", got)
	}
	if got := s.P99(); got != 198 {
		t.Fatalf("P99 = %v, want 198", got)
	}
}

func TestPercentileHelpersEmpty(t *testing.T) {
	var s Series
	if s.P50() != 0 || s.P95() != 0 || s.P99() != 0 {
		t.Fatalf("empty percentiles = %v/%v/%v, want zeros", s.P50(), s.P95(), s.P99())
	}
}

func TestPercentileHelpersSingleElement(t *testing.T) {
	var s Series
	s.Add(42.5)
	// Every percentile of a one-sample series is that sample.
	if s.P50() != 42.5 || s.P95() != 42.5 || s.P99() != 42.5 {
		t.Fatalf("single-element percentiles = %v/%v/%v, want 42.5", s.P50(), s.P95(), s.P99())
	}
}

func TestByKey(t *testing.T) {
	b := NewByKey()
	b.Add(2, 10)
	b.Add(1, 5)
	b.Add(2, 20)
	keys := b.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if b.Get(2).Mean() != 15 {
		t.Fatalf("mean(2) = %v", b.Get(2).Mean())
	}
	if b.Get(99) != nil {
		t.Fatal("missing key should be nil")
	}
	tbl := b.Table("hop", "x")
	if !strings.Contains(tbl, "hop") || !strings.Contains(tbl, "15.000") {
		t.Fatalf("table rendering broken:\n%s", tbl)
	}
}

func TestScatter(t *testing.T) {
	var sc Scatter
	sc.Add(1, 10)
	sc.Add(1, 20)
	sc.Add(2, 30)
	if sc.Len() != 3 {
		t.Fatalf("len = %d", sc.Len())
	}
	byX := sc.MeanYForX()
	if byX.Get(1).Mean() != 15 || byX.Get(2).Mean() != 30 {
		t.Fatal("MeanYForX aggregation wrong")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.At(0) != 0 {
		t.Fatalf("At(0) = %v", c.At(0))
	}
	if c.At(2) != 0.5 {
		t.Fatalf("At(2) = %v", c.At(2))
	}
	if c.At(10) != 1 {
		t.Fatalf("At(10) = %v", c.At(10))
	}
	if c.Quantile(0.5) != 3 {
		t.Fatalf("Q(0.5) = %v", c.Quantile(0.5))
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		c := NewCDF(vals)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesMeanBoundedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Clamp to a physical range; the accumulator overflows near
			// ±MaxFloat64, which no metric here approaches.
			s.Add(math.Mod(v, 1e12))
		}
		if s.Count() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
