// Package stats provides the small aggregation toolkit the experiment
// runners use to turn raw simulation events into the paper's tables and
// figures: series with summary statistics, keyed (per-hop) groupings,
// scatter clouds, and empirical CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series accumulates float samples.
type Series struct {
	vals []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// Count returns the number of samples.
func (s *Series) Count() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for empty series).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest sample. An empty series returns 0, matching
// Mean and Stddev, so reports never print ±Inf; check Count to tell an
// empty series from one whose minimum is genuinely zero.
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, v := range s.vals {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the largest sample (0 for empty series; see Min).
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, v := range s.vals {
		m = math.Max(m, v)
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Series) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.vals))
	copy(sorted, s.vals)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// P50 returns the median by nearest-rank (0 for empty series).
func (s *Series) P50() float64 { return s.Percentile(50) }

// P95 returns the 95th percentile by nearest-rank (0 for empty series).
func (s *Series) P95() float64 { return s.Percentile(95) }

// P99 returns the 99th percentile by nearest-rank (0 for empty series).
func (s *Series) P99() float64 { return s.Percentile(99) }

// Values returns a copy of the samples.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// ByKey groups samples by an integer key (typically hop count).
type ByKey struct {
	m map[int]*Series
}

// NewByKey creates an empty grouping.
func NewByKey() *ByKey { return &ByKey{m: make(map[int]*Series)} }

// Add records a sample under key.
func (b *ByKey) Add(key int, v float64) {
	s, ok := b.m[key]
	if !ok {
		s = &Series{}
		b.m[key] = s
	}
	s.Add(v)
}

// Keys returns the keys in ascending order.
func (b *ByKey) Keys() []int {
	out := make([]int, 0, len(b.m))
	for k := range b.m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Get returns the series for key (nil if absent).
func (b *ByKey) Get(key int) *Series { return b.m[key] }

// Merge folds all samples of other into b.
func (b *ByKey) Merge(other *ByKey) {
	if other == nil {
		return
	}
	for k, s := range other.m {
		for _, v := range s.vals {
			b.Add(k, v)
		}
	}
}

// Table renders the grouping as an aligned text table with mean/min/max
// per key; label names the key column, metric the value column.
func (b *ByKey) Table(label, metric string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %10s %10s %10s\n", label, "n", "mean "+metric, "min", "max")
	for _, k := range b.Keys() {
		s := b.m[k]
		fmt.Fprintf(&sb, "%-10d %8d %10.3f %10.3f %10.3f\n", k, s.Count(), s.Mean(), s.Min(), s.Max())
	}
	return sb.String()
}

// Scatter is a cloud of (x, y) points.
type Scatter struct {
	Xs, Ys []float64
}

// Add appends a point.
func (s *Scatter) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len returns the number of points.
func (s *Scatter) Len() int { return len(s.Xs) }

// Merge appends all points of other.
func (s *Scatter) Merge(other *Scatter) {
	if other == nil {
		return
	}
	s.Xs = append(s.Xs, other.Xs...)
	s.Ys = append(s.Ys, other.Ys...)
}

// MeanYForX returns the mean y per distinct integer x.
func (s *Scatter) MeanYForX() *ByKey {
	b := NewByKey()
	for i := range s.Xs {
		b.Add(int(math.Round(s.Xs[i])), s.Ys[i])
	}
	return b
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples.
func NewCDF(vals []float64) *CDF {
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0..1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}
