package rpl_test

import (
	"testing"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/experiment"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/topology"
)

func buildRPL(t *testing.T, dep *topology.Deployment, seed uint64) *experiment.Net {
	t.Helper()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	cfg := experiment.Config{
		Dep:      dep,
		Radio:    params,
		Mac:      mac.DefaultConfig(),
		Ctp:      ctp.DefaultConfig(),
		Rpl:      rpl.DefaultConfig(),
		Protocol: experiment.ProtoRPL,
		Seed:     seed,
	}
	cfg.Rpl.DAOInterval = 20 * time.Second
	cfg.Rpl.ControlTimeout = 30 * time.Second
	net, err := experiment.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	return net
}

func TestDAOsPopulateRoutes(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildRPL(t, dep, 1)
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// The sink must have routes to every node; intermediate nodes to their
	// subtrees.
	for i := 1; i < 4; i++ {
		if !net.SinkRPL().HasRoute(radio.NodeID(i)) {
			t.Fatalf("sink has no route to node %d", i)
		}
	}
	if !net.RPL(1).HasRoute(3) {
		t.Fatal("node 1 has no route to descendant 3")
	}
	if net.RPL(3).HasRoute(1) {
		t.Fatal("leaf stores a route to its ancestor")
	}
}

func TestDownwardControlDelivers(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildRPL(t, dep, 2)
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var res rpl.Result
	got := false
	var deliveredHops uint8
	net.RPL(3).SetDeliveredFn(func(uid uint32, hops uint8) { deliveredHops = hops })
	if _, err := net.SinkRPL().SendControl(3, "cmd", func(r rpl.Result) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !got || !res.OK {
		t.Fatalf("rpl control failed: got=%v res=%+v", got, res)
	}
	if deliveredHops != 3 {
		t.Fatalf("delivered after %d hops, want 3 (strict routing table path)", deliveredHops)
	}
}

func TestNoRouteError(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildRPL(t, dep, 3)
	// Before any DAO arrives, the sink has no route.
	if _, err := net.SinkRPL().SendControl(2, "x", nil); err != rpl.ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if _, err := net.RPL(1).SendControl(2, "x", nil); err != rpl.ErrNotSink {
		t.Fatalf("err = %v, want ErrNotSink", err)
	}
}

func TestDeadRelayBreaksDeterministicPath(t *testing.T) {
	// The paper's point: RPL's stored route cannot adapt when the on-path
	// relay dies, so delivery fails.
	dep := topology.Line(4, 7)
	net := buildRPL(t, dep, 4)
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !net.SinkRPL().HasRoute(3) {
		t.Skip("route to node 3 never formed")
	}
	net.KillNode(2) // kill the on-path relay (line: 0-1-2-3)
	var res rpl.Result
	got := false
	if _, err := net.SinkRPL().SendControl(3, "x", func(r rpl.Result) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("no result")
	}
	if res.OK {
		t.Fatal("control across a dead deterministic relay reported success")
	}
}

func TestTransmissionsMatchHops(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildRPL(t, dep, 5)
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	before := uint64(0)
	for i := 0; i < net.Dep.Len(); i++ {
		before += net.RPL(radio.NodeID(i)).Stats().DownSends
	}
	const packets = 5
	okCount := 0
	for p := 0; p < packets; p++ {
		if _, err := net.SinkRPL().SendControl(3, p, func(r rpl.Result) {
			if r.OK {
				okCount++
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	after := uint64(0)
	for i := 0; i < net.Dep.Len(); i++ {
		after += net.RPL(radio.NodeID(i)).Stats().DownSends
	}
	if okCount < packets-1 {
		t.Fatalf("only %d/%d delivered", okCount, packets)
	}
	per := float64(after-before) / packets
	// 3 hops: expect ~3 transmissions plus occasional retries.
	if per < 2.5 || per > 7 {
		t.Fatalf("%.1f transmissions per 3-hop packet", per)
	}
}

func TestRouteExpiry(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildRPL(t, dep, 6)
	if err := net.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !net.SinkRPL().HasRoute(2) {
		t.Skip("route never formed")
	}
	// Kill the origin: its DAO refreshes stop and the stored route must
	// expire after RouteLifetime.
	net.KillNode(2)
	if err := net.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if net.SinkRPL().HasRoute(2) {
		t.Fatal("route to a dead node survived past its lifetime")
	}
	if _, err := net.SinkRPL().SendControl(2, "x", nil); err != rpl.ErrNoRoute {
		t.Fatalf("send over expired route = %v, want ErrNoRoute", err)
	}
}

func TestStaleDAOIgnored(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildRPL(t, dep, 7)
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	s := net.SinkRPL().Stats()
	if s.RouteCount == 0 {
		t.Skip("no routes formed")
	}
	// DAO sequence numbers only move forward; the estimator-driven
	// behaviour is covered by the integration runs — here just confirm
	// the stats surface is consistent.
	if s.DAOSent != 0 {
		t.Fatalf("sink originated %d DAOs; the sink advertises nothing", s.DAOSent)
	}
}

func TestRPLStatsSurface(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildRPL(t, dep, 8)
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if net.RPL(radio.NodeID(i)).Stats().DAOSent == 0 {
			t.Fatalf("node %d never advertised", i)
		}
	}
	if _, err := net.SinkRPL().SendControl(3, "x", nil); err != nil {
		t.Skip("no route yet")
	}
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	var down uint64
	for i := 0; i < net.Dep.Len(); i++ {
		down += net.RPL(radio.NodeID(i)).Stats().DownSends
	}
	if down == 0 {
		t.Fatal("no downward transmissions recorded")
	}
}
