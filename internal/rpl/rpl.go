// Package rpl implements the downward half of RPL (RFC 6550) in storing
// mode, the deterministic-routing baseline of the paper's evaluation. The
// DODAG mirrors the collection tree: nodes advertise themselves upward
// with DAO messages, every ancestor stores a (target → next-hop child)
// route, and downward control packets follow those stored routes hop by
// hop. Staleness of the stored state under link dynamics is exactly the
// weakness the paper measures.
package rpl

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

// DAO is the destination advertisement, forwarded parent-ward; each hop
// stores a downward route for Target via the child it came from.
type DAO struct {
	Target radio.NodeID
	Seq    uint32
}

// Downward is a control packet routed by the stored tables.
type Downward struct {
	UID  uint32
	Dst  radio.NodeID
	Hops uint8
	App  any
}

// DownAck is the destination's end-to-end acknowledgement (upward via
// CTP).
type DownAck struct {
	UID  uint32
	From radio.NodeID
	Hops uint8
}

// Config holds RPL parameters.
type Config struct {
	// DAOInterval paces destination advertisements.
	DAOInterval time.Duration
	// RouteLifetime expires stored routes.
	RouteLifetime time.Duration
	// MaxRetries bounds per-hop LPL retransmission rounds.
	MaxRetries int
	// DAOSize / DownSize are MAC frame sizes.
	DAOSize  int
	DownSize int
	// ControlTimeout bounds pending operations at the sink.
	ControlTimeout time.Duration
}

// DefaultConfig returns sane defaults for a 512 ms wake interval.
func DefaultConfig() Config {
	return Config{
		DAOInterval:    60 * time.Second,
		RouteLifetime:  4 * 60 * time.Second,
		MaxRetries:     6,
		DAOSize:        12,
		DownSize:       30,
		ControlTimeout: 60 * time.Second,
	}
}

// Stats counts RPL activity at one node.
type Stats struct {
	DAOSent    uint64
	RouteCount int
	// DownSends counts downward transmissions (Table III metric).
	DownSends   uint64
	Delivered   uint64
	DropNoRoute uint64
	DropRetry   uint64
}

// Result mirrors the TeleAdjusting controller result.
type Result = protocol.Result

type route struct {
	next radio.NodeID
	seq  uint32
	at   time.Duration
}

type pendingDown struct {
	dst     radio.NodeID
	sentAt  time.Duration
	cb      func(Result)
	timeout sim.EventRef
}

type inflight struct {
	pkt     *Downward
	retries int
}

// RPL is one node's instance.
type RPL struct {
	node   *node.Node
	eng    *sim.Engine
	cfg    Config
	rng    *rand.Rand
	ctp    *ctp.CTP
	isSink bool

	routes map[radio.NodeID]*route
	daoSeq uint32
	daoTk  *sim.Ticker

	inflightByFrame map[*radio.Frame]*inflight

	pending   map[uint32]*pendingDown
	uidSeq    uint32
	deliverFn func(uid uint32, hops uint8)

	athx  []ATHXSample
	stats Stats
}

// ATHXSample is one Fig-8 scatter point: a downward packet received at
// this node after travelling Hops transmissions.
type ATHXSample = protocol.ATHXSample

var _ node.Protocol = (*RPL)(nil)
var _ protocol.ControlProtocol = (*RPL)(nil)

// Name identifies the protocol family for uniform stacks.
func (r *RPL) Name() string { return "rpl" }

// New creates an RPL instance on the node, registered with the runtime.
// The sink instance takes over the CTP sink delivery hook for DownAcks.
func New(n *node.Node, c *ctp.CTP, cfg Config, rng *rand.Rand) *RPL {
	r := &RPL{
		node:            n,
		eng:             n.Engine(),
		cfg:             cfg,
		rng:             rng,
		ctp:             c,
		isSink:          c.IsSink(),
		routes:          make(map[radio.NodeID]*route),
		inflightByFrame: make(map[*radio.Frame]*inflight),
	}
	if r.isSink {
		r.pending = make(map[uint32]*pendingDown)
		c.SetDeliverFunc(r.handleCollect)
	}
	n.Register(r)
	return r
}

// Start begins periodic DAO advertisement (non-sink nodes) at a random
// phase; a DAO is also sent immediately on every parent change.
func (r *RPL) Start() {
	if r.isSink {
		return
	}
	r.ctp.OnParentChange(func(old, new radio.NodeID) { r.sendDAO() })
	r.daoTk = sim.NewTicker(r.eng, r.cfg.DAOInterval, r.sendDAO)
	r.daoTk.StartWithOffset(time.Duration(r.rng.Int64N(int64(r.cfg.DAOInterval))))
}

// Stop halts timers.
func (r *RPL) Stop() {
	if r.daoTk != nil {
		r.daoTk.Stop()
	}
}

// SetDeliveredFn installs a hook fired when this node consumes a downward
// packet addressed to it.
func (r *RPL) SetDeliveredFn(fn func(uid uint32, hops uint8)) { r.deliverFn = fn }

// Stats returns a snapshot of the statistics.
func (r *RPL) Stats() Stats {
	s := r.stats
	s.RouteCount = len(r.routes)
	return s
}

// ControlTx returns the node's downward transmissions (the Table III
// metric).
func (r *RPL) ControlTx() uint64 { return r.stats.DownSends }

// Detail exports the diagnostic counters the comparison studies report.
func (r *RPL) Detail() map[string]uint64 {
	return map[string]uint64{
		"daos":           r.stats.DAOSent,
		"drops-no-route": r.stats.DropNoRoute,
		"drops-retry":    r.stats.DropRetry,
	}
}

// ATHX returns the Fig-8 samples recorded at this node.
func (r *RPL) ATHX() []ATHXSample {
	out := make([]ATHXSample, len(r.athx))
	copy(out, r.athx)
	return out
}

// HasRoute reports whether this node stores a downward route for dst.
func (r *RPL) HasRoute(dst radio.NodeID) bool {
	rt, ok := r.routes[dst]
	return ok && r.eng.Now()-rt.at <= r.cfg.RouteLifetime
}

// ErrNotSink is returned when control operations originate off-sink.
var ErrNotSink = errors.New("rpl: control operations originate at the sink")

// ErrNoRoute is returned when the sink has no stored route for dst. It
// wraps protocol.ErrNoRoute so protocol-agnostic runners can classify the
// failure.
var ErrNoRoute = fmt.Errorf("rpl: no stored downward route: %w", protocol.ErrNoRoute)

// SendControl routes app downward to dst; cb fires on the end-to-end ack
// or timeout.
func (r *RPL) SendControl(dst radio.NodeID, app any, cb func(Result)) (uint32, error) {
	if !r.isSink {
		return 0, ErrNotSink
	}
	if !r.HasRoute(dst) {
		return 0, ErrNoRoute
	}
	r.uidSeq++
	uid := r.uidSeq
	p := &pendingDown{dst: dst, sentAt: r.eng.Now(), cb: cb}
	p.timeout = r.eng.Schedule(r.cfg.ControlTimeout, func() {
		if _, ok := r.pending[uid]; !ok {
			return
		}
		delete(r.pending, uid)
		if cb != nil {
			cb(Result{UID: uid, Dst: dst, OK: false, Latency: r.eng.Now() - p.sentAt})
		}
	})
	r.pending[uid] = p
	r.forward(&Downward{UID: uid, Dst: dst, Hops: 1, App: app})
	return uid, nil
}

// sendDAO advertises this node upward.
func (r *RPL) sendDAO() {
	parent := r.ctp.Parent()
	if parent == ctp.NoParent {
		return
	}
	r.daoSeq++
	r.stats.DAOSent++
	_ = r.node.Send(&radio.Frame{
		Kind:    radio.FrameData,
		Dst:     parent,
		Size:    r.cfg.DAOSize,
		Payload: &DAO{Target: r.node.ID(), Seq: r.daoSeq},
	})
}

// handleDAO stores the route and forwards the advertisement upward.
func (r *RPL) handleDAO(from radio.NodeID, d *DAO) {
	rt, ok := r.routes[d.Target]
	if ok && d.Seq != 0 && d.Seq < rt.seq {
		return // stale
	}
	if !ok {
		rt = &route{}
		r.routes[d.Target] = rt
	}
	rt.next = from
	rt.seq = d.Seq
	rt.at = r.eng.Now()
	if r.isSink {
		return
	}
	parent := r.ctp.Parent()
	if parent == ctp.NoParent {
		return
	}
	_ = r.node.Send(&radio.Frame{
		Kind:    radio.FrameData,
		Dst:     parent,
		Size:    r.cfg.DAOSize,
		Payload: &DAO{Target: d.Target, Seq: d.Seq},
	})
}

// forward routes a downward packet one hop via the stored table.
func (r *RPL) forward(pkt *Downward) {
	rt, ok := r.routes[pkt.Dst]
	if !ok || r.eng.Now()-rt.at > r.cfg.RouteLifetime {
		r.stats.DropNoRoute++
		return
	}
	f := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     rt.next,
		Size:    r.cfg.DownSize,
		Payload: pkt,
	}
	r.inflightByFrame[f] = &inflight{pkt: pkt, retries: r.cfg.MaxRetries}
	if err := r.node.Send(f); err != nil {
		delete(r.inflightByFrame, f)
		r.stats.DropRetry++
		return
	}
	r.stats.DownSends++
}

// handleDownward consumes or relays a received downward packet.
func (r *RPL) handleDownward(pkt *Downward) {
	r.athx = append(r.athx, ATHXSample{Hops: pkt.Hops, At: r.eng.Now()})
	if pkt.Dst == r.node.ID() {
		r.stats.Delivered++
		if r.deliverFn != nil {
			r.deliverFn(pkt.UID, pkt.Hops)
		}
		_ = r.ctp.SendToSink(&DownAck{UID: pkt.UID, From: r.node.ID(), Hops: pkt.Hops})
		return
	}
	r.forward(&Downward{UID: pkt.UID, Dst: pkt.Dst, Hops: pkt.Hops + 1, App: pkt.App})
}

// handleCollect resolves end-to-end acks at the sink.
func (r *RPL) handleCollect(origin radio.NodeID, app any) {
	ack, ok := app.(*DownAck)
	if !ok {
		return
	}
	p, ok := r.pending[ack.UID]
	if !ok {
		return
	}
	delete(r.pending, ack.UID)
	p.timeout.Cancel()
	if p.cb != nil {
		p.cb(Result{
			UID:     ack.UID,
			Dst:     ack.From,
			OK:      true,
			Latency: r.eng.Now() - p.sentAt,
			E2EHops: ack.Hops,
		})
	}
}

// --- node.Protocol ---

// Owns implements node.Protocol.
func (r *RPL) Owns(payload any) bool {
	switch payload.(type) {
	case *DAO, *Downward:
		return true
	}
	return false
}

// Classify implements node.Protocol.
func (r *RPL) Classify(f *radio.Frame) mac.Classification {
	if f.Dst == r.node.ID() {
		return mac.Classification{Decision: mac.AckAndDeliver}
	}
	return mac.Classification{Decision: mac.Ignore}
}

// Deliver implements node.Protocol.
func (r *RPL) Deliver(f *radio.Frame) {
	switch p := f.Payload.(type) {
	case *DAO:
		r.handleDAO(f.Src, p)
	case *Downward:
		r.handleDownward(p)
	}
}

// OnSendDone implements node.Protocol.
func (r *RPL) OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool) {
	// Every RPL unicast outcome (DAO or downward) informs the shared link
	// estimator; without this, asymmetric links are invisible to the tree.
	r.ctp.ReportLinkOutcome(f.Dst, ok)
	inf, tracked := r.inflightByFrame[f]
	if !tracked {
		return
	}
	delete(r.inflightByFrame, f)
	if ok {
		return
	}
	inf.retries--
	if inf.retries < 0 {
		r.stats.DropRetry++
		return
	}
	// Deterministic retry through the same stored route (RPL has no
	// anycast alternative — the paper's point).
	nf := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     f.Dst,
		Size:    r.cfg.DownSize,
		Payload: inf.pkt,
	}
	r.inflightByFrame[nf] = inf
	if err := r.node.Send(nf); err != nil {
		delete(r.inflightByFrame, nf)
		r.stats.DropRetry++
		return
	}
	r.stats.DownSends++
}
