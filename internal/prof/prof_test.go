package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartCapturesAllThree(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPU:   filepath.Join(dir, "cpu.pprof"),
		Mem:   filepath.Join(dir, "mem.pprof"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	if !cfg.Enabled() {
		t.Fatal("config with all captures reports disabled")
	}
	stop, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the captures have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cfg.CPU, cfg.Mem, cfg.Trace} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestStartDisabledIsNoOp(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	stop, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRejectsUnwritablePath(t *testing.T) {
	if _, err := Start(Config{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}); err == nil {
		t.Fatal("unwritable cpu profile path accepted")
	}
}
