// Package prof is the CLI profiling capture harness shared by
// teleadjust-sim and teleadjust-bench: it turns the -cpuprofile,
// -memprofile and -exectrace flags into pprof/trace captures bracketing
// the whole run, so the frame hot path can be profiled from any study
// the binaries already know how to run (make profile records the
// reference captures behind BENCH_profile.json).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the capture output files; empty fields disable that
// capture.
type Config struct {
	// CPU receives a pprof CPU profile covering Start..stop.
	CPU string
	// Mem receives a pprof heap profile written at stop, after a final
	// GC, so it shows live allocations plus cumulative allocation sites.
	Mem string
	// Trace receives a runtime execution trace covering Start..stop.
	Trace string
}

// Enabled reports whether any capture is requested.
func (c Config) Enabled() bool { return c.CPU != "" || c.Mem != "" || c.Trace != "" }

// Start begins the requested captures and returns a stop function that
// ends them and writes the heap profile; the caller must invoke it
// exactly once (typically via defer) and check its error. A config with
// no captures returns a no-op stop.
func Start(c Config) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if c.CPU != "" {
		cpuF, err = os.Create(c.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if c.Trace != "" {
		traceF, err = os.Create(c.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("exec trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("exec trace: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
			cpuF = nil
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil {
				return fmt.Errorf("exec trace: %w", err)
			}
			traceF = nil
		}
		if c.Mem != "" {
			f, err := os.Create(c.Mem)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
