package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTightGridShape(t *testing.T) {
	d := TightGrid(1)
	if d.Len() != 225 {
		t.Fatalf("len = %d, want 225", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	minX, minY, maxX, maxY := d.Bounds()
	if minX < 0 || minY < 0 || maxX > 200 || maxY > 200 {
		t.Fatalf("bounds (%v,%v,%v,%v) outside 200x200 field", minX, minY, maxX, maxY)
	}
	// Sink should be near the field centre.
	sink := d.Positions[d.Sink]
	if sink.Distance(Point{X: 100, Y: 100}) > 20 {
		t.Fatalf("sink at %v too far from centre", sink)
	}
}

func TestSparseLinearShape(t *testing.T) {
	d := SparseLinear(1)
	if d.Len() != 225 {
		t.Fatalf("len = %d, want 225", d.Len())
	}
	_, _, maxX, maxY := d.Bounds()
	if maxX > 600 || maxY > 60 {
		t.Fatalf("bounds exceed 600x60 field: %v %v", maxX, maxY)
	}
	// Sink near the left endpoint.
	sink := d.Positions[d.Sink]
	if sink.X > 60 {
		t.Fatalf("sink at %v, want near x=0 endpoint", sink)
	}
}

func TestIndoorTestbedShape(t *testing.T) {
	d := IndoorTestbed(1)
	if d.Len() != 40 {
		t.Fatalf("len = %d, want 40", d.Len())
	}
	if d.Sink != 0 {
		t.Fatalf("sink = %d, want 0", d.Sink)
	}
	// The first 22 nodes form an exact 2x11 grid.
	for r := 0; r < 2; r++ {
		for c := 0; c < 11; c++ {
			p := d.Positions[r*11+c]
			if p.X != float64(c)*6 || p.Y != float64(r)*4 {
				t.Fatalf("board node (%d,%d) at %v", r, c, p)
			}
		}
	}
}

func TestGridDeterminism(t *testing.T) {
	a, b := TightGrid(7), TightGrid(7)
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("same seed produced different deployments")
		}
	}
	c := TightGrid(8)
	same := true
	for i := range a.Positions {
		if a.Positions[i] != c.Positions[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical deployments")
	}
}

func TestGridNoJitterCentres(t *testing.T) {
	d := Grid("g", 2, 2, 10, 10, false, Point{}, 0)
	want := []Point{{2.5, 2.5}, {7.5, 2.5}, {2.5, 7.5}, {7.5, 7.5}}
	for i, w := range want {
		if d.Positions[i] != w {
			t.Fatalf("pos[%d] = %v, want %v", i, d.Positions[i], w)
		}
	}
}

func TestLine(t *testing.T) {
	d := Line(5, 10)
	if d.Len() != 5 || d.Sink != 0 {
		t.Fatalf("unexpected line deployment: %+v", d)
	}
	if d.Positions[4].X != 40 {
		t.Fatalf("node 4 at %v, want x=40", d.Positions[4])
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (&Deployment{Name: "empty"}).Validate(); err == nil {
		t.Fatal("empty deployment validated")
	}
	d := &Deployment{Name: "bad-sink", Positions: []Point{{}}, Sink: 3}
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range sink validated")
	}
}

func TestDistanceProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by float64) bool {
		// Constrain to physically plausible coordinates; quick generates
		// values near ±MaxFloat64 whose distances overflow to +Inf.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		return math.Abs(a.Distance(b)-b.Distance(a)) < 1e-9
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Fatal(err)
	}
	identity := func(x, y float64) bool {
		p := Point{x, y}
		return p.Distance(p) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridJitterStaysInCell(t *testing.T) {
	d := Grid("g", 4, 4, 40, 40, true, Point{}, 3)
	for i, p := range d.Positions {
		r, c := i/4, i%4
		if p.X < float64(c)*10 || p.X > float64(c+1)*10 ||
			p.Y < float64(r)*10 || p.Y > float64(r+1)*10 {
			t.Fatalf("node %d at %v escaped its cell (%d,%d)", i, p, r, c)
		}
	}
}
