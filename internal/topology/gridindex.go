package topology

import (
	"math"
	"slices"
)

// GridIndex is a uniform grid-bucket spatial index over a fixed set of
// points. Queries return the indices of every point whose bucket overlaps
// a disc — a superset of the points actually inside the disc — in
// ascending index order, so callers that iterate candidates consume RNG
// streams deterministically. Built once per deployment; the point set is
// immutable after construction.
type GridIndex struct {
	cell       float64
	minX, minY float64
	cols, rows int
	buckets    [][]int32
}

// maxBucketFactor caps the bucket count at this multiple of the point
// count, growing the cell size when a small query radius over a large
// field would otherwise allocate a huge, mostly-empty grid.
const maxBucketFactor = 4

// NewGridIndex buckets pts into square cells of the given size. The cell
// size must be positive and finite; it is the query radius callers intend
// to use (a radius-r query then touches at most the 3×3 cell block around
// the query point).
func NewGridIndex(pts []Point, cell float64) *GridIndex {
	if !(cell > 0) || math.IsInf(cell, 1) {
		panic("topology: GridIndex cell size must be positive and finite")
	}
	g := &GridIndex{cell: cell}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		g.buckets = make([][]int32, 1)
		return g
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	// Grow the cell until the grid is O(n) buckets; a coarser grid only
	// widens the candidate superset, never drops a point.
	for {
		g.cols = int((maxX-minX)/g.cell) + 1
		g.rows = int((maxY-minY)/g.cell) + 1
		if g.cols*g.rows <= maxBucketFactor*len(pts)+16 {
			break
		}
		g.cell *= 2
	}
	g.buckets = make([][]int32, g.cols*g.rows)
	for i, p := range pts {
		c := g.bucketOf(p)
		g.buckets[c] = append(g.buckets[c], int32(i))
	}
	return g
}

// CellSize returns the effective cell size (≥ the requested size when the
// bucket cap coarsened the grid).
func (g *GridIndex) CellSize() float64 { return g.cell }

// Dims returns the grid dimensions in cells.
func (g *GridIndex) Dims() (cols, rows int) { return g.cols, g.rows }

// CellOf returns the cell coordinates holding p (clamped to the grid, so
// points outside the indexed bounding box map to the border cells).
func (g *GridIndex) CellOf(p Point) (cx, cy int) {
	cx = g.clampCol(math.Floor((p.X - g.minX) / g.cell))
	cy = g.clampRow(math.Floor((p.Y - g.minY) / g.cell))
	return cx, cy
}

func (g *GridIndex) bucketOf(p Point) int {
	cx, cy := g.CellOf(p)
	return cy*g.cols + cx
}

func (g *GridIndex) clampCol(f float64) int {
	if !(f > 0) { // also catches NaN
		return 0
	}
	if c := int(f); c < g.cols {
		return c
	}
	return g.cols - 1
}

func (g *GridIndex) clampRow(f float64) int {
	if !(f > 0) {
		return 0
	}
	if r := int(f); r < g.rows {
		return r
	}
	return g.rows - 1
}

// Near returns the indices of every point whose bucket intersects the
// axis-aligned square circumscribing the radius-r disc around p, sorted
// ascending. The result is a superset of the points within distance r of
// p (including a point at p itself, if indexed); callers filter by exact
// distance.
func (g *GridIndex) Near(p Point, r float64) []int32 {
	return g.AppendNear(nil, p, r)
}

// AppendNear is Near with a caller-provided buffer, for allocation-free
// repeated queries (dst is truncated, filled, and returned).
func (g *GridIndex) AppendNear(dst []int32, p Point, r float64) []int32 {
	dst = dst[:0]
	if r < 0 {
		r = 0
	}
	x0 := g.clampCol(math.Floor((p.X - r - g.minX) / g.cell))
	x1 := g.clampCol(math.Floor((p.X + r - g.minX) / g.cell))
	y0 := g.clampRow(math.Floor((p.Y - r - g.minY) / g.cell))
	y1 := g.clampRow(math.Floor((p.Y + r - g.minY) / g.cell))
	for cy := y0; cy <= y1; cy++ {
		row := cy * g.cols
		for cx := x0; cx <= x1; cx++ {
			dst = append(dst, g.buckets[row+cx]...)
		}
	}
	slices.Sort(dst)
	return dst
}
