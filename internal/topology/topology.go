// Package topology generates node deployments for the paper's evaluation
// scenarios: the 225-node Tight-grid and Sparse-linear simulation fields and
// the 40-node indoor testbed, plus generic grids for tests and examples.
package topology

import (
	"fmt"
	"math"

	"teleadjust/internal/sim"
)

// Point is a node position in metres.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Deployment is a set of node positions with a designated sink.
type Deployment struct {
	Name      string
	Positions []Point
	Sink      int // index into Positions
}

// Len returns the number of nodes.
func (d *Deployment) Len() int { return len(d.Positions) }

// Validate checks structural invariants.
func (d *Deployment) Validate() error {
	if len(d.Positions) == 0 {
		return fmt.Errorf("topology: deployment %q has no nodes", d.Name)
	}
	if d.Sink < 0 || d.Sink >= len(d.Positions) {
		return fmt.Errorf("topology: deployment %q sink index %d out of range", d.Name, d.Sink)
	}
	return nil
}

// Bounds returns the bounding box (minX, minY, maxX, maxY).
func (d *Deployment) Bounds() (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, p := range d.Positions {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	return minX, minY, maxX, maxY
}

// Grid places rows×cols nodes on a jittered grid covering width×height
// metres. Each node is placed uniformly at random within its cell when
// jitter is true, otherwise at the cell centre. The sink is the node whose
// cell is closest to sinkAt.
func Grid(name string, rows, cols int, width, height float64, jitter bool, sinkAt Point, seed uint64) *Deployment {
	if rows <= 0 || cols <= 0 {
		panic("topology: Grid requires positive rows and cols")
	}
	rng := sim.NewRNG(seed)
	cellW := width / float64(cols)
	cellH := height / float64(rows)
	positions := make([]Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := float64(c) * cellW
			y := float64(r) * cellH
			if jitter {
				x += rng.Float64() * cellW
				y += rng.Float64() * cellH
			} else {
				x += cellW / 2
				y += cellH / 2
			}
			positions = append(positions, Point{X: x, Y: y})
		}
	}
	sink := 0
	best := math.Inf(1)
	for i, p := range positions {
		if d := p.Distance(sinkAt); d < best {
			best = d
			sink = i
		}
	}
	return &Deployment{Name: name, Positions: positions, Sink: sink}
}

// TightGrid is the paper's dense simulation field: 225 nodes randomly
// deployed in a 200 m × 200 m square divided into 15×15 cells, sink at the
// centre of the field.
func TightGrid(seed uint64) *Deployment {
	return Grid("tight-grid", 15, 15, 200, 200, true, Point{X: 100, Y: 100}, seed)
}

// SparseLinear is the paper's elongated simulation field: 225 nodes in a
// 60 m × 600 m rectangle divided into 5×45 cells, sink at one endpoint.
func SparseLinear(seed uint64) *Deployment {
	// 45 columns along the 600 m axis, 5 rows across the 60 m axis.
	return Grid("sparse-linear", 5, 45, 600, 60, true, Point{X: 0, Y: 30}, seed)
}

// IndoorTestbed is the 40-node indoor testbed: 22 nodes on a 2×11 testbed
// board plus 18 nodes scattered around it. Geometry is scaled so that with
// the low transmission power used in the experiments the network diameter
// is about 6 hops. The sink is the first board node (a board corner).
func IndoorTestbed(seed uint64) *Deployment {
	rng := sim.NewRNG(seed)
	positions := make([]Point, 0, 40)
	// Board: 2 rows × 11 columns, 6 m column spacing, 4 m row spacing.
	const (
		colSpacing = 6.0
		rowSpacing = 4.0
	)
	for r := 0; r < 2; r++ {
		for c := 0; c < 11; c++ {
			positions = append(positions, Point{
				X: float64(c) * colSpacing,
				Y: float64(r) * rowSpacing,
			})
		}
	}
	// Scattered nodes: 18 nodes around the board, each placed 3–8 m from a
	// previously placed node so the testbed stays radio-connected at the
	// low transmission power, while extending the hop diameter outward.
	for i := 0; i < 18; i++ {
		anchor := positions[rng.IntN(len(positions))]
		r := 3 + rng.Float64()*5
		theta := rng.Float64() * 2 * math.Pi
		positions = append(positions, Point{
			X: anchor.X + r*math.Cos(theta),
			Y: anchor.Y + r*math.Sin(theta),
		})
	}
	return &Deployment{Name: "indoor-testbed", Positions: positions, Sink: 0}
}

// Line places n nodes on a straight line with the given spacing; the sink
// is node 0. Useful for unit tests with a known hop structure.
func Line(n int, spacing float64) *Deployment {
	if n <= 0 {
		panic("topology: Line requires positive n")
	}
	positions := make([]Point, n)
	for i := range positions {
		positions[i] = Point{X: float64(i) * spacing}
	}
	return &Deployment{Name: "line", Positions: positions, Sink: 0}
}
