package topology

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"
)

func TestGridIndexCellAssignment(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0},
		{X: 25, Y: 0},
		{X: 0, Y: 25},
		{X: 25, Y: 25},
		{X: 12, Y: 12},
	}
	g := NewGridIndex(pts, 10)
	cases := []struct {
		p      Point
		cx, cy int
	}{
		{Point{X: 0, Y: 0}, 0, 0},
		{Point{X: 9.99, Y: 9.99}, 0, 0},
		{Point{X: 10, Y: 0}, 1, 0},
		{Point{X: 0, Y: 10}, 0, 1},
		{Point{X: 25, Y: 25}, 2, 2},
		{Point{X: 12, Y: 12}, 1, 1},
		// Outside the indexed bounding box: clamped to border cells.
		{Point{X: -50, Y: -50}, 0, 0},
		{Point{X: 1e6, Y: 1e6}, 2, 2},
	}
	if cols, rows := g.Dims(); cols != 3 || rows != 3 {
		t.Fatalf("Dims() = %d×%d, want 3×3", cols, rows)
	}
	for _, c := range cases {
		cx, cy := g.CellOf(c.p)
		if cx != c.cx || cy != c.cy {
			t.Errorf("CellOf(%v) = (%d,%d), want (%d,%d)", c.p, cx, cy, c.cx, c.cy)
		}
	}
}

// TestGridIndexBoundaryStraddle covers points sitting exactly on cell
// edges and queries whose disc straddles cell boundaries: candidates
// must include everything within the radius regardless of which side of
// an edge a point landed on.
func TestGridIndexBoundaryStraddle(t *testing.T) {
	// Four points around the x=10 cell boundary, plus the query origin.
	pts := []Point{
		{X: 9.999, Y: 5},
		{X: 10.0, Y: 5},
		{X: 10.001, Y: 5},
		{X: 19.999, Y: 5},
		{X: 5, Y: 5},
	}
	g := NewGridIndex(pts, 10)
	// A radius-6 query from (5,5) spans the boundary; all five points are
	// within or near the disc's circumscribing square.
	got := g.Near(Point{X: 5, Y: 5}, 6)
	for i, p := range pts {
		if p.Distance(Point{X: 5, Y: 5}) <= 6 && !slices.Contains(got, int32(i)) {
			t.Errorf("point %d at %v within radius but missing from candidates %v", i, p, got)
		}
	}
	if !slices.IsSorted(got) {
		t.Errorf("candidates not sorted: %v", got)
	}
	// A zero-radius query still returns the query point's own bucket.
	self := g.Near(pts[4], 0)
	if !slices.Contains(self, 4) {
		t.Errorf("zero-radius query missing the co-located point: %v", self)
	}
}

func TestGridIndexBucketCap(t *testing.T) {
	// 16 points over a 10 km field with a 1 m requested cell would need
	// 10⁸ buckets; the cap must coarsen the cell instead.
	pts := make([]Point, 16)
	for i := range pts {
		pts[i] = Point{X: float64(i) * 625, Y: float64(i%4) * 2500}
	}
	g := NewGridIndex(pts, 1)
	cols, rows := g.Dims()
	if cols*rows > maxBucketFactor*len(pts)+16 {
		t.Fatalf("bucket cap violated: %d×%d cells for %d points", cols, rows, len(pts))
	}
	if g.CellSize() < 1 {
		t.Fatalf("cell size %v shrank below the requested size", g.CellSize())
	}
	// Coarsening must not lose points: a full-field query sees all 16.
	all := g.Near(Point{X: 5000, Y: 5000}, 2e4)
	if len(all) != len(pts) {
		t.Fatalf("full-field query returned %d of %d points", len(all), len(pts))
	}
}

func TestGridIndexEmptyAndDegenerate(t *testing.T) {
	g := NewGridIndex(nil, 5)
	if got := g.Near(Point{}, 100); len(got) != 0 {
		t.Fatalf("empty index returned candidates: %v", got)
	}
	// All points co-located: single bucket, everything is a candidate.
	same := []Point{{X: 3, Y: 3}, {X: 3, Y: 3}, {X: 3, Y: 3}}
	g = NewGridIndex(same, 5)
	if got := g.Near(Point{X: 3, Y: 3}, 1); len(got) != 3 {
		t.Fatalf("co-located index returned %d candidates, want 3", len(got))
	}
}

// checkSuperset asserts the superset contract on one (points, query)
// instance: Near(p, r) contains every index within distance r of p, in
// sorted ascending order.
func checkSuperset(t *testing.T, pts []Point, g *GridIndex, q Point, r float64) {
	t.Helper()
	got := g.Near(q, r)
	if !slices.IsSorted(got) {
		t.Fatalf("candidates not sorted ascending: %v", got)
	}
	inCand := make(map[int32]bool, len(got))
	for _, i := range got {
		if inCand[i] {
			t.Fatalf("duplicate candidate %d in %v", i, got)
		}
		inCand[i] = true
	}
	for i, p := range pts {
		if p.Distance(q) <= r && !inCand[int32(i)] {
			t.Fatalf("point %d at %v is %.3fm from query %v (r=%.3f) but not a candidate",
				i, p, p.Distance(q), q, r)
		}
	}
}

// TestGridIndexSupersetProperty fuzzes random point clouds, cell sizes,
// and query discs against the brute-force truth.
func TestGridIndexSupersetProperty(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e37))
		n := 1 + rng.IntN(120)
		span := 1 + rng.Float64()*500
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		}
		cell := 0.5 + rng.Float64()*span/2
		g := NewGridIndex(pts, cell)
		for q := 0; q < 20; q++ {
			// Query points both inside and well outside the cloud.
			query := Point{
				X: rng.Float64()*span*1.5 - span*0.25,
				Y: rng.Float64()*span*1.5 - span*0.25,
			}
			r := rng.Float64() * cell // contract holds only for r ≤ cell
			checkSuperset(t, pts, g, query, r)
		}
	}
}

// FuzzGridIndexSuperset drives the superset property from fuzzed query
// coordinates and radii over a fixed jittered-grid cloud.
func FuzzGridIndexSuperset(f *testing.F) {
	rng := rand.New(rand.NewPCG(7, 11))
	pts := make([]Point, 80)
	for i := range pts {
		pts[i] = Point{
			X: float64(i%9)*12 + rng.Float64()*4,
			Y: float64(i/9)*12 + rng.Float64()*4,
		}
	}
	const cell = 15.0
	g := NewGridIndex(pts, cell)
	f.Add(50.0, 50.0, 10.0)
	f.Add(0.0, 0.0, 0.0)
	f.Add(-20.0, 130.0, 15.0)
	f.Fuzz(func(t *testing.T, x, y, r float64) {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(r) ||
			math.Abs(x) > 1e9 || math.Abs(y) > 1e9 {
			t.Skip()
		}
		if r < 0 {
			r = -r
		}
		if r > cell {
			r = cell
		}
		checkSuperset(t, pts, g, Point{X: x, Y: y}, r)
	})
}
