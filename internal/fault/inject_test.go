package fault

import (
	"testing"
	"time"

	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

// mockTarget records injector actions against a virtual n-node network.
type mockTarget struct {
	n       int
	alive   []bool
	offsets map[[2]int]float64
	dropFn  func(rx radio.NodeID, f *radio.Frame) bool
	log     []string
}

func newMockTarget(n int) *mockTarget {
	m := &mockTarget{n: n, alive: make([]bool, n), offsets: make(map[[2]int]float64)}
	for i := range m.alive {
		m.alive[i] = true
	}
	return m
}

func (m *mockTarget) NumNodes() int { return m.n }
func (m *mockTarget) Crash(id radio.NodeID) {
	m.alive[id] = false
	m.log = append(m.log, "crash")
}
func (m *mockTarget) Reboot(id radio.NodeID) {
	m.alive[id] = true
	m.log = append(m.log, "reboot")
}
func (m *mockTarget) AddLinkOffsetDB(from, to radio.NodeID, dB float64) {
	m.offsets[[2]int{int(from), int(to)}] += dB
}
func (m *mockTarget) SetDropFn(fn func(rx radio.NodeID, f *radio.Frame) bool) { m.dropFn = fn }

func TestInjectorCrashRebootOrder(t *testing.T) {
	eng := sim.NewEngine()
	tgt := newMockTarget(4)
	in := NewInjector(eng, tgt, 1)
	plan := &Plan{Events: []Event{
		{At: Duration(2 * time.Second), Kind: Crash, Node: 3},
		{At: Duration(5 * time.Second), Kind: Reboot, Node: 3},
	}}
	if err := in.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tgt.alive[3] {
		t.Fatal("node 3 alive after crash")
	}
	if err := eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !tgt.alive[3] {
		t.Fatal("node 3 dead after reboot")
	}
	if in.Applied() != 2 {
		t.Fatalf("Applied = %d, want 2", in.Applied())
	}
}

func TestInjectorLinkWindowRestores(t *testing.T) {
	eng := sim.NewEngine()
	tgt := newMockTarget(4)
	in := NewInjector(eng, tgt, 1)
	plan := &Plan{Events: []Event{
		{At: Duration(time.Second), Kind: Link, From: 1, To: 2, OffsetDB: -30, Both: true, For: Duration(4 * time.Second)},
	}}
	if err := in.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := tgt.offsets[[2]int{1, 2}]; got != -30 {
		t.Fatalf("offset 1→2 during window = %v, want -30", got)
	}
	if got := tgt.offsets[[2]int{2, 1}]; got != -30 {
		t.Fatalf("offset 2→1 during window = %v, want -30 (both)", got)
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, v := range tgt.offsets {
		if v != 0 {
			t.Fatalf("offset %v = %v after window, want 0", k, v)
		}
	}
}

func TestInjectorPartitionSeversAllLinks(t *testing.T) {
	eng := sim.NewEngine()
	tgt := newMockTarget(4)
	in := NewInjector(eng, tgt, 1)
	plan := &Plan{Events: []Event{
		{At: Duration(time.Second), Kind: Partition, Node: 0, For: Duration(2 * time.Second)},
	}}
	if err := in.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 4; j++ {
		if tgt.offsets[[2]int{0, j}] != SeverDB || tgt.offsets[[2]int{j, 0}] != SeverDB {
			t.Fatalf("link 0↔%d not severed: %v / %v", j,
				tgt.offsets[[2]int{0, j}], tgt.offsets[[2]int{j, 0}])
		}
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, v := range tgt.offsets {
		if v != 0 {
			t.Fatalf("offset %v = %v after heal, want 0", k, v)
		}
	}
}

func TestInjectorDropWindow(t *testing.T) {
	eng := sim.NewEngine()
	tgt := newMockTarget(4)
	in := NewInjector(eng, tgt, 7)
	plan := &Plan{Events: []Event{
		{At: 0, Kind: Drop, From: 1, To: 2, Prob: 1, Dst: DstBcast, For: Duration(10 * time.Second)},
	}}
	if err := in.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if tgt.dropFn == nil {
		t.Fatal("drop filter not installed at schedule time")
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	bcast := &radio.Frame{Src: 1, Dst: radio.BroadcastID}
	ucast := &radio.Frame{Src: 1, Dst: 2}
	if !tgt.dropFn(2, bcast) {
		t.Error("matching broadcast not dropped at p=1")
	}
	if tgt.dropFn(2, ucast) {
		t.Error("unicast dropped despite bcast filter")
	}
	if tgt.dropFn(3, bcast) {
		t.Error("wrong receiver dropped")
	}
	if tgt.dropFn(2, &radio.Frame{Src: 0, Dst: radio.BroadcastID}) {
		t.Error("wrong sender dropped")
	}
	// Window closes: nothing matches any more.
	if err := eng.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tgt.dropFn(2, bcast) {
		t.Error("frame dropped after the window closed")
	}
}

func TestInjectorDropDeterministic(t *testing.T) {
	draw := func(seed uint64) []bool {
		eng := sim.NewEngine()
		tgt := newMockTarget(4)
		in := NewInjector(eng, tgt, seed)
		plan := &Plan{Events: []Event{{At: 0, Kind: Drop, From: Any, To: Any, Prob: 0.5}}}
		if err := in.Schedule(plan); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		if err := eng.Run(time.Millisecond); err != nil {
			t.Fatal(err)
		}
		f := &radio.Frame{Src: 1, Dst: 2}
		out := make([]bool, 64)
		for i := range out {
			out[i] = tgt.dropFn(2, f)
		}
		return out
	}
	a, b := draw(42), draw(42)
	seen := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
		if a[i] {
			seen = true
		}
	}
	if !seen {
		t.Fatal("p=0.5 window dropped nothing in 64 draws")
	}
}

func TestInjectorRejectsOutOfRangePlan(t *testing.T) {
	eng := sim.NewEngine()
	tgt := newMockTarget(4)
	in := NewInjector(eng, tgt, 1)
	plan := &Plan{Events: []Event{{Kind: Crash, Node: 9}}}
	if err := in.Schedule(plan); err == nil {
		t.Fatal("out-of-range plan accepted")
	}
}
