package fault

import (
	"fmt"
	"math/rand/v2"

	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

// SeverDB is the link offset used to sever links (partition events, and
// the conventional "cut this link" value for link events). −200 dB puts
// any realistic link far below sensitivity.
const SeverDB = -200.0

// Target is the network surface the injector manipulates. It is
// implemented by experiment.Net (via an adapter) and by test doubles;
// keeping it an interface here avoids an import cycle with the
// experiment package.
type Target interface {
	NumNodes() int
	// Crash kills a node (idempotent on an already-dead node).
	Crash(id radio.NodeID)
	// Reboot resurrects a crashed node with a fresh stack (no-op on a
	// live node).
	Reboot(id radio.NodeID)
	// AddLinkOffsetDB perturbs the directed link gain additively.
	AddLinkOffsetDB(from, to radio.NodeID, dB float64)
	// SetDropFn installs the receive-side drop filter (nil removes it).
	SetDropFn(fn func(rx radio.NodeID, f *radio.Frame) bool)
}

// dropRule is one active (or scheduled) drop window.
type dropRule struct {
	from, to int // Any (−1) = wildcard
	prob     float64
	dst      string
	active   bool
}

func (r *dropRule) matches(rx radio.NodeID, f *radio.Frame) bool {
	if !r.active {
		return false
	}
	if r.from != Any && radio.NodeID(r.from) != f.Src {
		return false
	}
	if r.to != Any && radio.NodeID(r.to) != rx {
		return false
	}
	switch r.dst {
	case DstBcast:
		return f.Dst == radio.BroadcastID
	case DstUcast:
		return f.Dst != radio.BroadcastID
	default:
		return true
	}
}

// Injector executes fault plans against a Target through a simulation
// engine. All randomness (drop draws) comes from a dedicated seeded
// stream, consumed only while at least one drop window matches, so
// fault-free portions of a run keep their exact event sequence and
// replicated runs stay byte-identical.
type Injector struct {
	eng *sim.Engine
	tgt Target
	rng *rand.Rand

	drops     []*dropRule
	installed bool
	applied   int
	epochFn   func(ev Event, end bool)
}

// NewInjector binds an injector to an engine and target. The drop stream
// is derived from seed on a fault-private stream id.
func NewInjector(eng *sim.Engine, tgt Target, seed uint64) *Injector {
	return &Injector{eng: eng, tgt: tgt, rng: sim.DeriveRNG(seed, 0xfa177)}
}

// OnEpoch registers a hook called after each fault edge is applied: once
// when an event takes effect (end=false) and once when a bounded window
// closes (end=true). Tests hang invariant checks here.
func (in *Injector) OnEpoch(fn func(ev Event, end bool)) { in.epochFn = fn }

// Applied returns the number of fault edges applied so far.
func (in *Injector) Applied() int { return in.applied }

// Schedule validates the plan against the target and enqueues every
// event on the engine. It may be called before or during a run; events
// whose time has already passed apply at the current instant. The plan
// is treated as read-only (it may be shared across replicated runs).
func (in *Injector) Schedule(p *Plan) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(in.tgt.NumNodes()); err != nil {
		return err
	}
	for i := range p.Events {
		ev := p.Events[i] // copy: the plan itself stays untouched
		if ev.Kind == Drop && !in.installed {
			in.installed = true
			in.tgt.SetDropFn(in.dropFrame)
		}
		in.eng.ScheduleAt(ev.At.D(), func() { in.apply(ev) })
	}
	return nil
}

func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case Crash:
		in.tgt.Crash(radio.NodeID(ev.Node))
	case Reboot:
		in.tgt.Reboot(radio.NodeID(ev.Node))
	case Link:
		in.tgt.AddLinkOffsetDB(radio.NodeID(ev.From), radio.NodeID(ev.To), ev.OffsetDB)
		if ev.Both {
			in.tgt.AddLinkOffsetDB(radio.NodeID(ev.To), radio.NodeID(ev.From), ev.OffsetDB)
		}
		if ev.For > 0 {
			in.eng.Schedule(ev.For.D(), func() {
				in.tgt.AddLinkOffsetDB(radio.NodeID(ev.From), radio.NodeID(ev.To), -ev.OffsetDB)
				if ev.Both {
					in.tgt.AddLinkOffsetDB(radio.NodeID(ev.To), radio.NodeID(ev.From), -ev.OffsetDB)
				}
				in.edge(ev, true)
			})
		}
	case Partition:
		in.partition(ev.Node, SeverDB)
		if ev.For > 0 {
			in.eng.Schedule(ev.For.D(), func() {
				in.partition(ev.Node, -SeverDB)
				in.edge(ev, true)
			})
		}
	case Drop:
		r := &dropRule{from: ev.From, to: ev.To, prob: ev.Prob, dst: ev.Dst, active: true}
		in.drops = append(in.drops, r)
		if ev.For > 0 {
			in.eng.Schedule(ev.For.D(), func() {
				r.active = false
				in.edge(ev, true)
			})
		}
	default:
		panic(fmt.Sprintf("fault: unvalidated event kind %q", ev.Kind))
	}
	in.edge(ev, false)
}

// partition severs (or restores, with a positive offset) every directed
// link touching node.
func (in *Injector) partition(node int, dB float64) {
	id := radio.NodeID(node)
	for j := 0; j < in.tgt.NumNodes(); j++ {
		if j == node {
			continue
		}
		in.tgt.AddLinkOffsetDB(id, radio.NodeID(j), dB)
		in.tgt.AddLinkOffsetDB(radio.NodeID(j), id, dB)
	}
}

func (in *Injector) edge(ev Event, end bool) {
	in.applied++
	if in.epochFn != nil {
		in.epochFn(ev, end)
	}
}

// dropFrame is the receive-side filter installed on the target. With k
// matching active windows of probabilities p1..pk the frame survives
// with probability Π(1−pi); exactly one RNG draw is consumed per frame
// that matches at least one window.
func (in *Injector) dropFrame(rx radio.NodeID, f *radio.Frame) bool {
	keep := 1.0
	matched := false
	for _, r := range in.drops {
		if r.matches(rx, f) {
			matched = true
			keep *= 1 - r.prob
		}
	}
	if !matched {
		return false
	}
	return in.rng.Float64() >= keep
}
