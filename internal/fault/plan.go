// Package fault provides deterministic, seed-driven fault injection for
// simulated networks: a scripted FaultPlan (node crash/reboot, link
// degradation or severing, probabilistic frame-drop windows, partitions)
// executed through the simulation engine so runs remain byte-reproducible,
// plus an invariant Oracle that watches the radio trace and per-node
// protocol state to check the paper's recovery guarantees after every
// fault epoch.
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// Kind identifies a fault event type.
type Kind string

// Fault event kinds.
const (
	// Crash kills Node: its stacks stop and its radio powers off.
	Crash Kind = "crash"
	// Reboot resurrects a crashed Node with a fresh protocol stack.
	Reboot Kind = "reboot"
	// Link adds OffsetDB to the directed link From→To (Both mirrors it).
	// OffsetDB ≤ SeverDB effectively severs the link. For > 0 restores
	// the offset when the window closes.
	Link Kind = "link"
	// Drop discards frames that would otherwise have been received,
	// matching From (tx, −1 = any), To (rx, −1 = any) and Dst filter,
	// each with probability Prob. For > 0 bounds the window.
	Drop Kind = "drop"
	// Partition severs every link to and from Node (both directions).
	// Pointing it at the sink models a sink partition. For > 0 heals it.
	Partition Kind = "partition"
)

// Dst filter values for Drop events.
const (
	DstAny   = "any"   // all frames (also the meaning of an empty filter)
	DstBcast = "bcast" // only broadcast-addressed frames (anycast streams)
	DstUcast = "ucast" // only unicast-addressed frames (acks, feedback)
)

// Any is the wildcard node id for Drop event endpoints.
const Any = -1

// Duration is a time.Duration that unmarshals from either a JSON number
// (nanoseconds) or a Go duration string like "90s".
type Duration time.Duration

// D converts to a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON encodes the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a number (nanoseconds) or a duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	case string:
		dur, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q: %w", x, err)
		}
		*d = Duration(dur)
		return nil
	default:
		return fmt.Errorf("fault: duration must be a number or string, got %T", v)
	}
}

// Event is one scripted fault. Which fields matter depends on Kind.
type Event struct {
	// At is the virtual time the fault applies (relative to the start of
	// the run). Events scheduled in the past apply immediately.
	At   Duration `json:"at"`
	Kind Kind     `json:"kind"`
	// Node is the subject of crash/reboot/partition events.
	Node int `json:"node,omitempty"`
	// From/To are the directed link endpoints for link/drop events. Drop
	// events may use Any (−1) as a wildcard on either side.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// OffsetDB is the gain perturbation for link events (negative
	// degrades; ≤ −200 severs).
	OffsetDB float64 `json:"offset_db,omitempty"`
	// Both mirrors a link event onto the reverse direction.
	Both bool `json:"both,omitempty"`
	// Prob is the per-frame drop probability in [0,1] for drop events.
	Prob float64 `json:"prob,omitempty"`
	// Dst filters drop events by frame addressing: "any"/"" (default),
	// "bcast", or "ucast".
	Dst string `json:"dst,omitempty"`
	// For bounds the fault window; zero means permanent.
	For Duration `json:"for,omitempty"`
}

// Plan is a named, ordered fault script.
type Plan struct {
	Name   string  `json:"name,omitempty"`
	Events []Event `json:"events"`
}

// ParsePlan decodes a JSON plan and validates it structurally (node-id
// range checks happen at schedule time, against the actual network).
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a JSON plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Marshal encodes the plan as indented JSON.
func (p *Plan) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Validate checks every event. numNodes > 0 additionally range-checks
// node ids against the network size; numNodes ≤ 0 skips those checks
// (structural validation only, e.g. right after parsing).
func (p *Plan) Validate(numNodes int) error {
	for i := range p.Events {
		if err := p.Events[i].validate(numNodes); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return nil
}

func (ev *Event) validate(numNodes int) error {
	if ev.At < 0 {
		return fmt.Errorf("negative at %v", ev.At.D())
	}
	if ev.For < 0 {
		return fmt.Errorf("negative for %v", ev.For.D())
	}
	inRange := func(id int) bool { return numNodes <= 0 || id < numNodes }
	switch ev.Kind {
	case Crash, Reboot, Partition:
		if ev.Node < 0 || !inRange(ev.Node) {
			return fmt.Errorf("%s: node %d out of range", ev.Kind, ev.Node)
		}
	case Link:
		if ev.From < 0 || ev.To < 0 || !inRange(ev.From) || !inRange(ev.To) {
			return fmt.Errorf("link: endpoints %d→%d out of range", ev.From, ev.To)
		}
		if ev.From == ev.To {
			return fmt.Errorf("link: self link %d→%d", ev.From, ev.To)
		}
		if math.IsNaN(ev.OffsetDB) || math.IsInf(ev.OffsetDB, 0) {
			return fmt.Errorf("link: offset_db not finite")
		}
	case Drop:
		if ev.From < Any || ev.To < Any || !inRange(ev.From) || !inRange(ev.To) {
			return fmt.Errorf("drop: endpoints %d→%d out of range", ev.From, ev.To)
		}
		if math.IsNaN(ev.Prob) || ev.Prob < 0 || ev.Prob > 1 {
			return fmt.Errorf("drop: prob %v outside [0,1]", ev.Prob)
		}
		switch ev.Dst {
		case "", DstAny, DstBcast, DstUcast:
		default:
			return fmt.Errorf("drop: unknown dst filter %q", ev.Dst)
		}
	default:
		return fmt.Errorf("unknown kind %q", ev.Kind)
	}
	return nil
}
