package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParsePlanForms(t *testing.T) {
	data := []byte(`{
		"name": "mixed",
		"events": [
			{"at": "90s", "kind": "crash", "node": 5},
			{"at": "120s", "kind": "reboot", "node": 5},
			{"at": 1000000000, "kind": "link", "from": 2, "to": 3, "offset_db": -20, "both": true, "for": "60s"},
			{"at": "150s", "kind": "drop", "from": 1, "to": 2, "prob": 0.5, "dst": "bcast"},
			{"at": "200s", "kind": "drop", "from": -1, "to": -1, "prob": 0.1},
			{"at": "300s", "kind": "partition", "node": 0, "for": "30s"}
		]
	}`)
	p, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Name != "mixed" || len(p.Events) != 6 {
		t.Fatalf("got name=%q events=%d", p.Name, len(p.Events))
	}
	if p.Events[0].At.D() != 90*time.Second {
		t.Errorf("string duration: got %v", p.Events[0].At.D())
	}
	if p.Events[2].At.D() != time.Second {
		t.Errorf("numeric duration: got %v", p.Events[2].At.D())
	}
	if !p.Events[2].Both || p.Events[2].For.D() != time.Minute {
		t.Errorf("link window fields wrong: %+v", p.Events[2])
	}
	if p.Events[4].From != Any || p.Events[4].To != Any {
		t.Errorf("wildcard endpoints wrong: %+v", p.Events[4])
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := &Plan{Name: "rt", Events: []Event{
		{At: Duration(time.Second), Kind: Crash, Node: 3},
		{At: Duration(2 * time.Second), Kind: Drop, From: Any, To: 4, Prob: 0.25, Dst: DstUcast, For: Duration(time.Minute)},
		{At: Duration(3 * time.Second), Kind: Link, From: 1, To: 2, OffsetDB: -30, Both: true},
	}}
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(q.Events) != len(p.Events) {
		t.Fatalf("event count changed: %d != %d", len(q.Events), len(p.Events))
	}
	for i := range p.Events {
		if p.Events[i] != q.Events[i] {
			t.Errorf("event %d changed: %+v != %+v", i, p.Events[i], q.Events[i])
		}
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		n    int
		want string
	}{
		{"unknown-kind", Event{Kind: "melt"}, 0, "unknown kind"},
		{"negative-at", Event{At: -1, Kind: Crash, Node: 1}, 0, "negative at"},
		{"negative-for", Event{Kind: Crash, Node: 1, For: -1}, 0, "negative for"},
		{"crash-negative-node", Event{Kind: Crash, Node: -1}, 0, "out of range"},
		{"crash-node-too-big", Event{Kind: Crash, Node: 9}, 5, "out of range"},
		{"link-self", Event{Kind: Link, From: 2, To: 2}, 0, "self link"},
		{"link-wildcard", Event{Kind: Link, From: Any, To: 2}, 0, "out of range"},
		{"drop-bad-prob", Event{Kind: Drop, From: Any, To: Any, Prob: 1.5}, 0, "outside [0,1]"},
		{"drop-bad-dst", Event{Kind: Drop, From: Any, To: Any, Prob: 0.5, Dst: "acks"}, 0, "unknown dst filter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{Events: []Event{tc.ev}}
			err := p.Validate(tc.n)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want substring %q", err, tc.want)
			}
		})
	}

	ok := &Plan{Events: []Event{
		{Kind: Crash, Node: 4},
		{Kind: Drop, From: Any, To: 4, Prob: 1},
		{Kind: Partition, Node: 0, For: Duration(time.Second)},
	}}
	if err := ok.Validate(5); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}
