package fault

import (
	"strings"
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

func testOracle(rescue bool) *Oracle {
	return NewOracle(OracleConfig{
		NumNodes:       8,
		Sink:           0,
		RetryRounds:    2,
		Backtracks:     1,
		ControlTimeout: 10 * time.Second,
		RescueEnabled:  rescue,
	})
}

func ctrlTx(src radio.NodeID, seq uint32, c *core.Control) telemetry.Event {
	return telemetry.Event{
		Layer: telemetry.LayerRadio,
		Kind:  telemetry.KindRadioTx,
		Node:  src,
		Src:   src,
		Seq:   seq,
		Frame: &radio.Frame{Kind: radio.FrameData, Src: src, Dst: radio.BroadcastID, Seq: seq, Payload: c},
	}
}

func hasViolation(o *Oracle, invariant string) bool {
	for _, v := range o.Violations() {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

func TestOracleRetxBound(t *testing.T) {
	o := testOracle(false)
	// (RetryRounds+1)×(Backtracks+2) = 9 logical sends allowed per relay.
	for seq := uint32(1); seq <= 9; seq++ {
		o.Consume(ctrlTx(3, seq, &core.Control{UID: 1, Op: 1, Dst: 7}))
	}
	// LPL stream copies reuse the link-layer seq: not a new logical send.
	o.Consume(ctrlTx(3, 9, &core.Control{UID: 1, Op: 1, Dst: 7}))
	if hasViolation(o, "retx-bound") {
		t.Fatalf("bound hit too early: %s", o.Summary())
	}
	o.Consume(ctrlTx(3, 10, &core.Control{UID: 1, Op: 1, Dst: 7}))
	if !hasViolation(o, "retx-bound") {
		t.Fatal("10th distinct send from one relay not flagged")
	}
	if o.SendsFor(1, 3) != 10 {
		t.Fatalf("SendsFor = %d, want 10", o.SendsFor(1, 3))
	}
}

func TestOracleHopBound(t *testing.T) {
	o := testOracle(false)
	// Default bound: 8 × 3 × 3 = 72.
	o.Consume(ctrlTx(2, 1, &core.Control{UID: 4, Op: 4, Dst: 7, Hops: 72}))
	if hasViolation(o, "hop-bound") {
		t.Fatalf("bound hit at the limit: %s", o.Summary())
	}
	o.Consume(ctrlTx(2, 2, &core.Control{UID: 4, Op: 4, Dst: 7, Hops: 73}))
	if !hasViolation(o, "hop-bound") {
		t.Fatal("hop counter past bound not flagged")
	}
}

func TestOracleDetourDiscipline(t *testing.T) {
	// A detour with rescue disabled is always a violation.
	o := testOracle(false)
	o.Consume(ctrlTx(0, 1, &core.Control{UID: 1, Op: 1, Dst: 7}))
	o.Consume(ctrlTx(0, 2, &core.Control{UID: 2, Op: 1, Dst: 5, Detour: true}))
	if !hasViolation(o, "retele-enabled") {
		t.Fatal("detour with rescue disabled not flagged")
	}

	// Proper sequence: direct attempt first, then the detour referencing it.
	o = testOracle(true)
	o.Consume(ctrlTx(0, 1, &core.Control{UID: 1, Op: 1, Dst: 7}))
	o.Consume(ctrlTx(0, 2, &core.Control{UID: 2, Op: 1, Dst: 5, Detour: true}))
	if len(o.Violations()) != 0 {
		t.Fatalf("legitimate rescue flagged: %s", o.Summary())
	}

	// Detour with no prior direct attempt on the air.
	o = testOracle(true)
	o.Consume(ctrlTx(0, 1, &core.Control{UID: 9, Op: 3, Dst: 5, Detour: true}))
	if !hasViolation(o, "retele-after-failure") {
		t.Fatal("detour without prior attempt not flagged")
	}

	// Detour that is its own origin (Op == UID).
	o = testOracle(true)
	o.Consume(ctrlTx(0, 1, &core.Control{UID: 4, Op: 4, Dst: 5, Detour: true}))
	if !hasViolation(o, "retele-after-failure") {
		t.Fatal("self-referential detour not flagged")
	}
}

func TestOracleCheckWithoutStateHooksIsClean(t *testing.T) {
	o := testOracle(false)
	o.Consume(ctrlTx(1, 1, &core.Control{UID: 1, Op: 1, Dst: 7}))
	if v := o.Check(); len(v) != 0 {
		t.Fatalf("clean trace produced violations: %s", o.Summary())
	}
	if s := o.Summary(); s != "" {
		t.Fatalf("Summary() = %q, want empty", s)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{At: time.Second, Invariant: "hop-bound", Detail: "too far"}
	if !strings.Contains(v.String(), "hop-bound") || !strings.Contains(v.String(), "too far") {
		t.Fatalf("String() = %q", v.String())
	}
}
