package fault

import (
	"fmt"
	"sort"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// OracleConfig carries the protocol bounds the invariants are checked
// against (mirror the core.Config the network runs with).
type OracleConfig struct {
	NumNodes int
	Sink     radio.NodeID
	// RetryRounds and Backtracks mirror core.Config: a relay may send a
	// control packet at most RetryRounds+1 times per forwarding episode
	// and may be reopened by feedback at most Backtracks times.
	RetryRounds int
	Backtracks  int
	// ControlTimeout mirrors core.Config.ControlTimeout; a pending op
	// older than 2× this (plus grace) is a liveness violation.
	ControlTimeout time.Duration
	// RescueEnabled mirrors core.Config.Rescue; detour frames on the air
	// with rescue disabled are a violation.
	RescueEnabled bool
	// MaxHops bounds the accumulated Control.Hops counter per operation.
	// Zero derives NumNodes × (RetryRounds+1) × (Backtracks+2): Hops
	// increments on every forwarding attempt, so the diameter bound is
	// scaled by the per-node retry and reopen budgets.
	MaxHops int
}

func (c *OracleConfig) maxHops() int {
	if c.MaxHops > 0 {
		return c.MaxHops
	}
	return c.NumNodes * (c.RetryRounds + 1) * (c.Backtracks + 2)
}

// maxSendsPerRelay bounds distinct link-layer packets one relay may
// originate for one operation: RetryRounds+1 per episode, across the
// initial episode plus at most Backtracks+1 feedback reopenings.
func (c *OracleConfig) maxSendsPerRelay() int {
	return (c.RetryRounds + 1) * (c.Backtracks + 2)
}

// Violation is one observed invariant breach.
type Violation struct {
	At        time.Duration
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s", v.At, v.Invariant, v.Detail)
}

// opTrace accumulates what the oracle has seen on the air for one
// control UID.
type opTrace struct {
	firstAt time.Duration
	op      uint32
	detour  bool
	maxHops int
	// sends[src] is the set of link-layer sequence numbers observed for
	// control frames from src (LPL stream copies share one seq, so this
	// counts logical sends, not airtime copies).
	sends map[radio.NodeID]map[uint32]bool
	// feedbacks[src] counts feedback packets from src.
	feedbacks map[radio.NodeID]map[uint32]bool
}

// Oracle subscribes to the telemetry event stream and per-node protocol
// state and checks the paper's recovery invariants: path-code prefix
// consistency, bounded forwarding (no loop beyond the diameter-derived hop
// budget), backtracking within the retransmission bound, Re-Tele only
// after a failed direct attempt (and only when enabled), and
// pending-operation liveness. Attach with
// bus.Subscribe(o, telemetry.LayerRadio) — the same stream the traces and
// figure aggregations read — and call Check after each fault epoch and at
// end of run.
type Oracle struct {
	cfg OracleConfig

	// TeleAt returns node id's TeleAdjusting engine (nil if the node
	// runs another protocol or is dead). Required for state checks.
	TeleAt func(id radio.NodeID) *core.Engine
	// Alive reports node liveness; nil means all nodes count as alive.
	Alive func(id radio.NodeID) bool
	// Now supplies the virtual clock for Check-time violations.
	Now func() time.Duration

	ops        map[uint32]*opTrace
	violations []Violation
}

// NewOracle builds an oracle for a network of the given shape.
func NewOracle(cfg OracleConfig) *Oracle {
	return &Oracle{cfg: cfg, ops: make(map[uint32]*opTrace)}
}

// Violations returns everything recorded so far, in observation order.
func (o *Oracle) Violations() []Violation { return o.violations }

// SendsFor returns the number of distinct logical control sends observed
// from src for operation uid (test introspection).
func (o *Oracle) SendsFor(uid uint32, src radio.NodeID) int {
	ot := o.ops[uid]
	if ot == nil {
		return 0
	}
	return len(ot.sends[src])
}

func (o *Oracle) violate(at time.Duration, inv, format string, args ...any) {
	o.violations = append(o.violations, Violation{
		At:        at,
		Invariant: inv,
		Detail:    fmt.Sprintf(format, args...),
	})
}

var _ telemetry.Sink = (*Oracle)(nil)

// Consume implements telemetry.Sink over the radio layer of the unified
// event stream. Only transmit starts matter: the invariants constrain
// what nodes put on the air.
func (o *Oracle) Consume(ev telemetry.Event) {
	if ev.Kind != telemetry.KindRadioTx || ev.Frame == nil {
		return
	}
	switch p := ev.Frame.Payload.(type) {
	case *core.Control:
		o.observeControl(ev, p)
	case *core.Feedback:
		ot := o.op(p.UID, ev.At)
		if ot.feedbacks[ev.Frame.Src] == nil {
			ot.feedbacks[ev.Frame.Src] = make(map[uint32]bool)
		}
		ot.feedbacks[ev.Frame.Src][ev.Frame.Seq] = true
	}
}

func (o *Oracle) op(uid uint32, at time.Duration) *opTrace {
	ot := o.ops[uid]
	if ot == nil {
		ot = &opTrace{
			firstAt:   at,
			op:        uid,
			sends:     make(map[radio.NodeID]map[uint32]bool),
			feedbacks: make(map[radio.NodeID]map[uint32]bool),
		}
		o.ops[uid] = ot
	}
	return ot
}

func (o *Oracle) observeControl(ev telemetry.Event, c *core.Control) {
	ot := o.op(c.UID, ev.At)
	ot.op = c.Op
	if c.Detour {
		if !ot.detour {
			ot.detour = true
			// Re-Tele discipline: a detour operation must reference an
			// earlier, non-detour attempt (same Op, distinct UID) that
			// was actually seen on the air, and rescue must be enabled.
			if !o.cfg.RescueEnabled {
				o.violate(ev.At, "retele-enabled",
					"detour uid=%d on the air with rescue disabled", c.UID)
			}
			orig, ok := o.ops[c.Op]
			if !ok || orig.detour || c.Op == c.UID {
				o.violate(ev.At, "retele-after-failure",
					"detour uid=%d op=%d without a prior direct attempt", c.UID, c.Op)
			}
		}
	}
	if h := int(c.Hops); h > ot.maxHops {
		ot.maxHops = h
		if h > o.cfg.maxHops() {
			o.violate(ev.At, "hop-bound",
				"uid=%d hops=%d exceeds bound %d", c.UID, h, o.cfg.maxHops())
		}
	}
	src := ev.Frame.Src
	if ot.sends[src] == nil {
		ot.sends[src] = make(map[uint32]bool)
	}
	if !ot.sends[src][ev.Frame.Seq] {
		ot.sends[src][ev.Frame.Seq] = true
		if n := len(ot.sends[src]); n > o.cfg.maxSendsPerRelay() {
			o.violate(ev.At, "retx-bound",
				"uid=%d relay=%d made %d sends, bound %d",
				c.UID, src, n, o.cfg.maxSendsPerRelay())
		}
	}
}

// Check runs the state-based invariants (prefix consistency, pending-op
// liveness) and returns all violations recorded so far. Call it after
// each fault epoch and once at the end of a run.
func (o *Oracle) Check() []Violation {
	now := time.Duration(0)
	if o.Now != nil {
		now = o.Now()
	}
	if o.TeleAt != nil {
		o.checkCodes(now)
		o.checkPending(now)
	}
	return o.violations
}

func (o *Oracle) checkCodes(now time.Duration) {
	for i := 0; i < o.cfg.NumNodes; i++ {
		id := radio.NodeID(i)
		if o.Alive != nil && !o.Alive(id) {
			continue
		}
		te := o.TeleAt(id)
		if te == nil {
			continue
		}
		code, haveCode := te.Code()
		if id == o.cfg.Sink {
			if haveCode && !code.Equal(core.RootCode()) {
				o.violate(now, "prefix-consistency",
					"sink holds non-root code %s", code)
			}
			continue
		}
		if !haveCode {
			continue
		}
		pcode, haveParent := te.ParentCode()
		if !haveParent {
			o.violate(now, "prefix-consistency",
				"node %d holds code %s with no parent code", id, code)
			continue
		}
		if !pcode.IsPrefixOf(code) || pcode.Len() >= code.Len() {
			o.violate(now, "prefix-consistency",
				"node %d code %s does not strictly extend parent code %s", id, code, pcode)
		}
	}
}

func (o *Oracle) checkPending(now time.Duration) {
	sink := o.TeleAt(o.cfg.Sink)
	if sink == nil || o.cfg.ControlTimeout <= 0 {
		return
	}
	// One rescue attempt restarts the timeout once, so a pending op may
	// legitimately live for ~2 timeouts; beyond that (plus scheduling
	// grace) the "ack returns or failure is reported" promise is broken.
	limit := 2*o.cfg.ControlTimeout + time.Second
	for _, p := range sink.PendingOps() {
		if age := now - p.SentAt; age > limit {
			o.violate(now, "pending-liveness",
				"op uid=%d dst=%d pending for %v (limit %v)", p.UID, p.Dst, age, limit)
		}
	}
}

// Summary renders the violations as a sorted, deterministic multi-line
// string (empty when clean) — convenient for test failure messages.
func (o *Oracle) Summary() string {
	if len(o.violations) == 0 {
		return ""
	}
	lines := make([]string, len(o.violations))
	for i, v := range o.violations {
		lines[i] = v.String()
	}
	sort.Strings(lines)
	out := lines[0]
	for _, l := range lines[1:] {
		out += "\n" + l
	}
	return out
}
