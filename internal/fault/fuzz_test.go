package fault

import (
	"testing"
)

// FuzzParsePlan exercises the plan parser: it must never panic, and any
// plan it accepts must survive a marshal/reparse round trip unchanged.
func FuzzParsePlan(f *testing.F) {
	f.Add([]byte(`{"name":"churn","events":[{"at":"90s","kind":"crash","node":5}]}`))
	f.Add([]byte(`{"events":[{"at":1000,"kind":"drop","from":-1,"to":2,"prob":0.5,"dst":"bcast","for":"1m"}]}`))
	f.Add([]byte(`{"events":[{"at":"1s","kind":"link","from":1,"to":2,"offset_db":-200,"both":true}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted plan failed to marshal: %v", err)
		}
		q, err := ParsePlan(out)
		if err != nil {
			t.Fatalf("marshalled plan failed to reparse: %v\n%s", err, out)
		}
		if len(q.Events) != len(p.Events) {
			t.Fatalf("round trip changed event count: %d != %d", len(q.Events), len(p.Events))
		}
		for i := range p.Events {
			if p.Events[i] != q.Events[i] {
				t.Fatalf("round trip changed event %d: %+v != %+v", i, p.Events[i], q.Events[i])
			}
		}
	})
}
