// Package protocol defines the uniform surface every control protocol in
// this repository (TeleAdjusting, Drip, RPL) presents to the experiment
// layer: a lifecycle, a sink-side dispatch entry point, an end-to-end
// delivery hook, and the metric exports the paper's evaluation compares
// (Table III transmission counts, Fig. 8 ATHX samples, per-protocol
// diagnostics). Node stacks hold a ControlProtocol value instead of one
// concrete field per protocol, which keeps the scenario runners
// protocol-agnostic: adding a protocol means implementing this interface
// and registering a builder, not threading a new parallel slice through
// every study.
package protocol

import (
	"errors"
	"time"

	"teleadjust/internal/radio"
)

// ErrNoRoute reports that the controller holds no routing state (stored
// route, path code, ...) for the requested destination at dispatch time.
// Protocol-specific sentinels wrap this error so runners can classify the
// failure without knowing the concrete protocol.
var ErrNoRoute = errors.New("protocol: no route to destination")

// Result is the controller-side outcome of one control operation,
// reported through the SendControl callback on the end-to-end
// acknowledgement or the controller timeout.
type Result struct {
	UID     uint32
	Dst     radio.NodeID
	OK      bool
	Latency time.Duration
	// E2EHops is the transmission count the acknowledgement reported
	// (TeleAdjusting and RPL; zero for Drip floods).
	E2EHops uint8
	// Detoured reports that the packet left the coded path and was routed
	// around a failure (TeleAdjusting only).
	Detoured bool
}

// ATHXSample is one Fig-8 scatter point: a control packet (or flood
// update) received at a node after travelling Hops logical transmissions.
type ATHXSample struct {
	Hops uint8
	At   time.Duration
}

// ControlProtocol is the lifecycle and control-plane surface of one
// node's protocol instance. Construction (with protocol-specific config
// and RNG streams) stays in each package's New; everything the experiment
// layer touches afterwards goes through this interface.
type ControlProtocol interface {
	// Name identifies the protocol family ("teleadjust", "drip", "rpl").
	Name() string
	// Start arms timers and hooks; called once after the MAC and routing
	// substrate of the node are running.
	Start()
	// Stop halts all protocol activity (node failure or teardown).
	Stop()
	// SendControl dispatches a control operation for dst from the sink
	// and reports the end-to-end outcome (ack or timeout) through cb.
	// Off-sink instances return an error.
	SendControl(dst radio.NodeID, app any, cb func(Result)) (uint32, error)
	// SetDeliveredFn installs a hook fired when this node consumes a
	// control packet addressed to it. Protocols without a meaningful hop
	// count report hops == 0.
	SetDeliveredFn(fn func(uid uint32, hops uint8))
	// ControlTx returns the node's logical control-plane transmission
	// count (the Table III metric).
	ControlTx() uint64
	// Detail returns protocol-specific diagnostic counters (backtracks,
	// rescues, DAO traffic, ...), keyed by stable names.
	Detail() map[string]uint64
	// ATHX returns the Fig-8 samples recorded at this node.
	ATHX() []ATHXSample
}
