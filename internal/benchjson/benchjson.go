// Package benchjson is the shared schema behind the repo's committed
// BENCH_*.json records. Every record is one Envelope: a description of
// what was measured, the exact command, the machine environment
// (including gomaxprocs — replication throughput is meaningless without
// it), and named sections holding repeated samples, derived scalars and
// free-form info. One schema means one loader, so a root-level test can
// validate every committed record and tooling can diff runs across
// machines without per-file parsing.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// Environment pins the machine a record was captured on.
type Environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Date       string `json:"date"` // YYYY-MM-DD
}

// Section is one named group of measurements inside an Envelope.
type Section struct {
	// Note carries the prose interpretation of the numbers.
	Note string `json:"note,omitempty"`
	// Command overrides the envelope command when this section was
	// captured by a different invocation.
	Command string `json:"command,omitempty"`
	// Info holds free-form string facts (commit hashes, benchmark names).
	Info map[string]string `json:"info,omitempty"`
	// Samples holds repeated raw measurements, one slice per metric
	// (e.g. ns_per_op across -count runs), never aggregated in place.
	Samples map[string][]float64 `json:"samples,omitempty"`
	// Values holds derived scalars (means, counts, percentages).
	Values map[string]float64 `json:"values,omitempty"`
}

// Envelope is one complete BENCH_*.json record.
type Envelope struct {
	Description string             `json:"description"`
	Command     string             `json:"command"`
	Environment Environment        `json:"environment"`
	Sections    map[string]Section `json:"sections"`
}

// New starts an envelope for the current machine: goos/goarch/gomaxprocs
// from the runtime, the CPU model from the host, and the caller's
// capture date (recorded, not sampled, so emitting is deterministic).
func New(description, command, date string) *Envelope {
	return &Envelope{
		Description: description,
		Command:     command,
		Environment: Environment{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPU:        cpuModel(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Date:       date,
		},
		Sections: map[string]Section{},
	}
}

// cpuModel reads the host CPU model name; best effort, "" when unknown.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// Validate checks the invariants every committed record must satisfy.
func (e *Envelope) Validate() error {
	if e.Description == "" {
		return fmt.Errorf("benchjson: description is empty")
	}
	if e.Command == "" {
		return fmt.Errorf("benchjson: command is empty")
	}
	env := e.Environment
	if env.GOOS == "" || env.GOARCH == "" {
		return fmt.Errorf("benchjson: environment is missing goos/goarch")
	}
	if env.GOMAXPROCS < 1 {
		return fmt.Errorf("benchjson: environment gomaxprocs %d, want >= 1", env.GOMAXPROCS)
	}
	if len(env.Date) != len("2006-01-02") || strings.Count(env.Date, "-") != 2 {
		return fmt.Errorf("benchjson: environment date %q, want YYYY-MM-DD", env.Date)
	}
	if len(e.Sections) == 0 {
		return fmt.Errorf("benchjson: no sections")
	}
	for name, s := range e.Sections {
		if len(s.Samples) == 0 && len(s.Values) == 0 && len(s.Info) == 0 {
			return fmt.Errorf("benchjson: section %q has no samples, values or info", name)
		}
		for metric, samples := range s.Samples {
			if len(samples) == 0 {
				return fmt.Errorf("benchjson: section %q sample series %q is empty", name, metric)
			}
		}
	}
	return nil
}

// SectionNames returns the section names in sorted order.
func (e *Envelope) SectionNames() []string {
	names := make([]string, 0, len(e.Sections))
	for name := range e.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Write emits the validated record as indented JSON with a trailing
// newline, the exact on-disk format of the committed BENCH_*.json files.
func (e *Envelope) Write(w io.Writer) error {
	if err := e.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile emits the record to path via Write.
func (e *Envelope) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads and validates one record. Unknown fields are an error: the
// schema is the contract, and a misspelled key must not silently vanish.
func Load(path string) (*Envelope, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var e Envelope
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &e, nil
}
