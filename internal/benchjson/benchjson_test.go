package benchjson

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func sample() *Envelope {
	e := New("test record", "go test -bench X", "2026-08-07")
	e.Sections["latency"] = Section{
		Note:    "three runs",
		Samples: map[string][]float64{"ns_per_op": {100, 110, 105}},
		Values:  map[string]float64{"mean_ms": 0.000105},
	}
	return e
}

func TestNewFillsEnvironment(t *testing.T) {
	e := sample()
	env := e.Environment
	if env.GOOS != runtime.GOOS || env.GOARCH != runtime.GOARCH {
		t.Fatalf("environment = %+v", env)
	}
	if env.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d", env.GOMAXPROCS)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Envelope)
		wantSub string
	}{
		{"empty description", func(e *Envelope) { e.Description = "" }, "description"},
		{"empty command", func(e *Envelope) { e.Command = "" }, "command"},
		{"missing goos", func(e *Envelope) { e.Environment.GOOS = "" }, "goos"},
		{"zero gomaxprocs", func(e *Envelope) { e.Environment.GOMAXPROCS = 0 }, "gomaxprocs"},
		{"bad date", func(e *Envelope) { e.Environment.Date = "yesterday" }, "date"},
		{"no sections", func(e *Envelope) { e.Sections = nil }, "sections"},
		{"empty section", func(e *Envelope) { e.Sections["hollow"] = Section{Note: "words only"} }, "hollow"},
		{"empty sample series", func(e *Envelope) {
			e.Sections["latency"] = Section{Samples: map[string][]float64{"ns_per_op": {}}}
		}, "ns_per_op"},
	}
	for _, tc := range cases {
		e := sample()
		tc.mutate(e)
		err := e.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	e := sample()
	e.Sections["alloc"] = Section{
		Command: "go test -bench Y -benchmem",
		Info:    map[string]string{"benchmark": "BenchmarkY"},
		Values:  map[string]float64{"allocs_per_op": 3},
	}
	if err := e.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != e.Description || got.Environment != e.Environment {
		t.Fatalf("round trip changed envelope: %+v", got)
	}
	if names := got.SectionNames(); len(names) != 2 || names[0] != "alloc" || names[1] != "latency" {
		t.Fatalf("SectionNames = %v", names)
	}
	s := got.Sections["latency"]
	if len(s.Samples["ns_per_op"]) != 3 || s.Values["mean_ms"] == 0 {
		t.Fatalf("latency section = %+v", s)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := writeString(path, `{"description":"d","command":"c","surprise":1}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("record with unknown field accepted")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := writeString(path, `{"description":"d","command":"c","environment":{"goos":"linux","goarch":"amd64","cpu":"x","gomaxprocs":0,"date":"2026-08-07"},"sections":{"s":{"values":{"v":1}}}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "gomaxprocs") {
		t.Fatalf("invalid record error = %v", err)
	}
}

func writeString(path, s string) error {
	return os.WriteFile(path, []byte(s), 0o644)
}
