// Package trickle implements the Trickle algorithm (RFC 6206), the timer
// discipline CTP and Drip use to pace routing beacons and dissemination
// advertisements: exponential backoff while the network is consistent,
// immediate reset on inconsistency, and suppression when enough redundant
// messages are heard.
package trickle

import (
	"math/rand/v2"
	"time"

	"teleadjust/internal/sim"
)

// Config holds Trickle parameters.
type Config struct {
	// IMin is the minimum interval size.
	IMin time.Duration
	// IMax is the maximum interval size (RFC 6206 expresses it as
	// doublings of IMin; here it is the absolute cap).
	IMax time.Duration
	// K is the redundancy constant: the message is suppressed when K or
	// more consistent messages were heard in the current interval. K<=0
	// disables suppression.
	K int
}

// DefaultConfig matches TinyOS CTP beacon timing: 128 ms minimum interval
// doubling up to 512 s.
func DefaultConfig() Config {
	return Config{
		IMin: 128 * time.Millisecond,
		IMax: 512 * time.Second,
		K:    0,
	}
}

// Timer is a Trickle timer instance. Fire callbacks happen at the random
// point t ∈ [I/2, I) of each interval unless suppressed.
type Timer struct {
	eng *sim.Engine
	cfg Config
	rng *rand.Rand
	fn  func()

	interval time.Duration
	counter  int
	running  bool

	fireEv sim.EventRef
	endEv  sim.EventRef
}

// New creates a stopped Trickle timer that calls fn on each unsuppressed
// firing.
func New(eng *sim.Engine, cfg Config, rng *rand.Rand, fn func()) *Timer {
	if cfg.IMin <= 0 || cfg.IMax < cfg.IMin {
		panic("trickle: invalid interval configuration")
	}
	return &Timer{eng: eng, cfg: cfg, rng: rng, fn: fn}
}

// Start begins the algorithm with the minimum interval.
func (t *Timer) Start() {
	if t.running {
		return
	}
	t.running = true
	t.interval = t.cfg.IMin
	t.beginInterval()
}

// Stop halts the timer.
func (t *Timer) Stop() {
	t.running = false
	t.cancelInterval()
}

// Running reports whether the timer is active.
func (t *Timer) Running() bool { return t.running }

// Interval returns the current interval size.
func (t *Timer) Interval() time.Duration { return t.interval }

// Hear records a consistent message (counts toward suppression).
func (t *Timer) Hear() {
	if t.running {
		t.counter++
	}
}

// Reset reacts to an inconsistency: shrink the interval to IMin and start a
// new interval immediately (no-op if already at IMin, per RFC 6206 §4.2).
func (t *Timer) Reset() {
	if !t.running {
		t.Start()
		return
	}
	if t.interval == t.cfg.IMin {
		return
	}
	t.interval = t.cfg.IMin
	t.cancelInterval()
	t.beginInterval()
}

func (t *Timer) cancelInterval() {
	t.fireEv.Cancel()
	t.fireEv = sim.EventRef{}
	t.endEv.Cancel()
	t.endEv = sim.EventRef{}
}

func (t *Timer) beginInterval() {
	t.counter = 0
	half := t.interval / 2
	fireAt := half + time.Duration(t.rng.Int64N(int64(t.interval-half)))
	t.fireEv = t.eng.Schedule(fireAt, func() {
		t.fireEv = sim.EventRef{}
		if !t.running {
			return
		}
		if t.cfg.K <= 0 || t.counter < t.cfg.K {
			t.fn()
		}
	})
	t.endEv = t.eng.Schedule(t.interval, func() {
		t.endEv = sim.EventRef{}
		if !t.running {
			return
		}
		t.interval *= 2
		if t.interval > t.cfg.IMax {
			t.interval = t.cfg.IMax
		}
		t.beginInterval()
	})
}
