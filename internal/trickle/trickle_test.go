package trickle

import (
	"testing"
	"testing/quick"
	"time"

	"teleadjust/internal/sim"
)

func newTimer(eng *sim.Engine, cfg Config, fired *[]time.Duration) *Timer {
	return New(eng, cfg, sim.NewRNG(1), func() {
		*fired = append(*fired, eng.Now())
	})
}

func TestIntervalDoublesToMax(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{IMin: 100 * time.Millisecond, IMax: 800 * time.Millisecond}
	var fired []time.Duration
	tr := newTimer(eng, cfg, &fired)
	tr.Start()
	if tr.Interval() != cfg.IMin {
		t.Fatalf("initial interval %v, want IMin", tr.Interval())
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tr.Interval() != cfg.IMax {
		t.Fatalf("interval %v after long run, want IMax", tr.Interval())
	}
	// Intervals: 100,200,400,800,800,... → by 10s roughly 13 firings.
	if len(fired) < 8 || len(fired) > 16 {
		t.Fatalf("fired %d times in 10s, want ~13", len(fired))
	}
}

func TestFiringInSecondHalf(t *testing.T) {
	// Property: each firing falls in [I/2, I) of its interval. We verify
	// the first interval precisely across many seeds.
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		cfg := Config{IMin: 100 * time.Millisecond, IMax: 100 * time.Millisecond}
		var at time.Duration
		tr := New(eng, cfg, sim.NewRNG(seed), func() {
			if at == 0 {
				at = eng.Now()
			}
		})
		tr.Start()
		// The second interval's firing is at >=150ms, so running to 100ms
		// captures exactly the first interval's firing.
		if err := eng.Run(100 * time.Millisecond); err != nil {
			return false
		}
		// Stop so later intervals don't fire.
		tr.Stop()
		return at >= 50*time.Millisecond && at < 100*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResetShrinksInterval(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{IMin: 100 * time.Millisecond, IMax: 6400 * time.Millisecond}
	var fired []time.Duration
	tr := newTimer(eng, cfg, &fired)
	tr.Start()
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tr.Interval() <= cfg.IMin {
		t.Fatal("interval did not grow before reset")
	}
	tr.Reset()
	if tr.Interval() != cfg.IMin {
		t.Fatalf("interval after reset = %v, want IMin", tr.Interval())
	}
	n := len(fired)
	if err := eng.Run(eng.Now() + 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) <= n {
		t.Fatal("no firing shortly after reset")
	}
}

func TestResetAtIMinIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{IMin: 100 * time.Millisecond, IMax: 800 * time.Millisecond}
	var fired []time.Duration
	tr := newTimer(eng, cfg, &fired)
	tr.Start()
	// Reset repeatedly within the first interval; per RFC 6206 this must
	// not postpone the firing indefinitely.
	for i := 1; i <= 4; i++ {
		eng.Schedule(time.Duration(i)*10*time.Millisecond, tr.Reset)
	}
	if err := eng.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) == 0 {
		t.Fatal("resets at IMin starved the timer")
	}
}

func TestSuppression(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{IMin: 100 * time.Millisecond, IMax: 100 * time.Millisecond, K: 2}
	var fired []time.Duration
	tr := newTimer(eng, cfg, &fired)
	tr.Start()
	// Feed >= K consistent messages early in every interval.
	tick := sim.NewTicker(eng, 20*time.Millisecond, func() { tr.Hear() })
	tick.Start()
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("fired %d times despite suppression", len(fired))
	}
}

func TestNoSuppressionWhenQuiet(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{IMin: 100 * time.Millisecond, IMax: 100 * time.Millisecond, K: 2}
	var fired []time.Duration
	tr := newTimer(eng, cfg, &fired)
	tr.Start()
	// One Hear per interval is below K=2: no suppression.
	tick := sim.NewTicker(eng, 100*time.Millisecond, func() { tr.Hear() })
	tick.Start()
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) < 8 {
		t.Fatalf("fired %d times, want ~10", len(fired))
	}
}

func TestStop(t *testing.T) {
	eng := sim.NewEngine()
	var fired []time.Duration
	tr := newTimer(eng, DefaultConfig(), &fired)
	tr.Start()
	eng.Schedule(50*time.Millisecond, tr.Stop)
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tr.Running() {
		t.Fatal("timer running after Stop")
	}
	for _, at := range fired {
		if at > 50*time.Millisecond {
			t.Fatalf("fired at %v after Stop", at)
		}
	}
}

func TestResetWhileStoppedStarts(t *testing.T) {
	eng := sim.NewEngine()
	var fired []time.Duration
	tr := newTimer(eng, DefaultConfig(), &fired)
	tr.Reset()
	if !tr.Running() {
		t.Fatal("Reset on stopped timer did not start it")
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) == 0 {
		t.Fatal("timer never fired after Reset-start")
	}
}
