package trickle_test

import (
	"fmt"
	"time"

	"teleadjust/internal/sim"
	"teleadjust/internal/trickle"
)

// Example shows the Trickle discipline driving a beacon: exponential
// silence while the network is consistent, an immediate restart on an
// inconsistency.
func Example() {
	eng := sim.NewEngine()
	cfg := trickle.Config{IMin: 100 * time.Millisecond, IMax: 800 * time.Millisecond}
	beacons := 0
	tr := trickle.New(eng, cfg, sim.NewRNG(1), func() { beacons++ })
	tr.Start()

	_ = eng.Run(5 * time.Second)
	quiet := beacons
	fmt.Printf("interval grew to %v\n", tr.Interval())

	// An inconsistency (a routing change, an outdated neighbor) resets
	// the interval to IMin, producing a prompt beacon.
	tr.Reset()
	_ = eng.Run(eng.Now() + 200*time.Millisecond)
	fmt.Printf("beaconed again after reset: %v\n", beacons > quiet)
	// Output:
	// interval grew to 800ms
	// beaconed again after reset: true
}
