// Package workload generates deterministic streams of control operations
// against the sink command plane. Two loop disciplines are provided:
//
//   - ClosedLoop keeps a fixed number of operations outstanding and
//     submits a replacement the moment one completes, measuring the
//     pipeline's sustainable service rate.
//   - OpenLoop submits on a Poisson arrival process at a configured
//     offered rate regardless of completions, exposing queueing collapse
//     once the offered load exceeds capacity.
//
// Destination choice is factored into Dist so the same loop discipline
// can sweep uniform, hotspot-subtree, and depth-weighted target mixes.
// All randomness flows through sim.RNG streams derived from the run
// seed, so a workload replays byte-identically under serial and
// parallel replication.
package workload

import (
	"fmt"
	"math/rand/v2"
	"time"

	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/sink"
)

// Submitter is the slice of the sink scheduler a generator needs; it is
// satisfied by *sink.Scheduler.
type Submitter interface {
	Submit(dst radio.NodeID, app any, done func(sink.Outcome)) (uint32, error)
}

// Dist picks the destination of the next operation.
type Dist interface {
	// Pick returns the next destination, drawing randomness only from rng.
	Pick(rng *rand.Rand) radio.NodeID
	// Name identifies the distribution in reports and CSV headers.
	Name() string
}

// uniformDist spreads operations evenly over the destination set.
type uniformDist struct{ nodes []radio.NodeID }

// Uniform returns a distribution choosing uniformly among nodes. It
// panics on an empty node set; the caller owns filtering to reachable
// destinations.
func Uniform(nodes []radio.NodeID) Dist {
	if len(nodes) == 0 {
		panic("workload: Uniform with no destinations")
	}
	return &uniformDist{nodes: append([]radio.NodeID(nil), nodes...)}
}

func (d *uniformDist) Pick(rng *rand.Rand) radio.NodeID {
	return d.nodes[rng.IntN(len(d.nodes))]
}

func (d *uniformDist) Name() string { return "uniform" }

// weightedDist draws destinations proportionally to per-node weights.
type weightedDist struct {
	name    string
	nodes   []radio.NodeID
	cum     []float64
	totalWt float64
}

func newWeighted(name string, nodes []radio.NodeID, weight func(radio.NodeID) float64) Dist {
	if len(nodes) == 0 {
		panic(fmt.Sprintf("workload: %s with no destinations", name))
	}
	d := &weightedDist{name: name, nodes: append([]radio.NodeID(nil), nodes...)}
	d.cum = make([]float64, len(d.nodes))
	for i, id := range d.nodes {
		w := weight(id)
		if w < 0 {
			w = 0
		}
		d.totalWt += w
		d.cum[i] = d.totalWt
	}
	if d.totalWt <= 0 {
		// Degenerate weights: fall back to uniform mass.
		for i := range d.cum {
			d.cum[i] = float64(i + 1)
		}
		d.totalWt = float64(len(d.cum))
	}
	return d
}

func (d *weightedDist) Pick(rng *rand.Rand) radio.NodeID {
	x := rng.Float64() * d.totalWt
	lo, hi := 0, len(d.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return d.nodes[lo]
}

func (d *weightedDist) Name() string { return d.name }

// DepthWeighted biases operation targets toward deep nodes: each node's
// weight is max(depth(id), 1) hops, so far-from-sink destinations — the
// expensive ones for the control plane — see proportionally more traffic.
func DepthWeighted(nodes []radio.NodeID, depth func(radio.NodeID) int) Dist {
	return newWeighted("depth", nodes, func(id radio.NodeID) float64 {
		d := depth(id)
		if d < 1 {
			d = 1
		}
		return float64(d)
	})
}

// Hotspot concentrates a bias fraction of operations on the hot subset
// and spreads the remainder uniformly over all nodes. Bias is clamped to
// [0, 1]; an empty hot set degenerates to uniform.
func Hotspot(nodes, hot []radio.NodeID, bias float64) Dist {
	if bias < 0 {
		bias = 0
	}
	if bias > 1 {
		bias = 1
	}
	if len(hot) == 0 {
		bias = 0
	}
	hotSet := make(map[radio.NodeID]bool, len(hot))
	for _, id := range hot {
		hotSet[id] = true
	}
	extra := bias / (1 - bias + 1e-12) * float64(len(nodes)) / float64(max(len(hot), 1))
	return newWeighted("hotspot", nodes, func(id radio.NodeID) float64 {
		if hotSet[id] {
			return 1 + extra
		}
		return 1
	})
}

// Generator is the common surface of both loop disciplines.
type Generator interface {
	// Start submits the initial operations; completions drive the rest.
	Start()
	// Done reports whether every planned operation has resolved.
	Done() bool
	// Outcomes returns the resolved operations in completion order.
	Outcomes() []sink.Outcome
	// FinishedAt returns the sim time the last operation resolved (valid
	// once Done).
	FinishedAt() time.Duration
}

// ClosedLoop keeps Concurrency operations in flight until Total have
// resolved. Each completion immediately submits the next operation, so
// the loop self-clocks to the command plane's service rate.
type ClosedLoop struct {
	eng         *sim.Engine
	sub         Submitter
	dist        Dist
	rng         *rand.Rand
	concurrency int
	total       int

	submitted int
	outcomes  []sink.Outcome
	finished  time.Duration
	payload   func(seq int) any
}

// NewClosedLoop builds a closed-loop generator issuing total operations
// with the given fixed concurrency (clamped to ≥ 1).
func NewClosedLoop(eng *sim.Engine, sub Submitter, dist Dist, rng *rand.Rand, concurrency, total int) *ClosedLoop {
	if concurrency < 1 {
		concurrency = 1
	}
	if total < 0 {
		total = 0
	}
	return &ClosedLoop{
		eng: eng, sub: sub, dist: dist, rng: rng,
		concurrency: concurrency, total: total,
		payload: func(seq int) any { return fmt.Sprintf("op-%d", seq) },
	}
}

func (g *ClosedLoop) Start() {
	n := g.concurrency
	if n > g.total {
		n = g.total
	}
	for i := 0; i < n; i++ {
		g.next()
	}
}

func (g *ClosedLoop) next() {
	if g.submitted >= g.total {
		return
	}
	seq := g.submitted
	g.submitted++
	dst := g.dist.Pick(g.rng)
	_, err := g.sub.Submit(dst, g.payload(seq), func(o sink.Outcome) {
		g.outcomes = append(g.outcomes, o)
		g.finished = g.eng.Now()
		g.next()
	})
	if err != nil {
		// Rejected at submit (queue full): record a synthetic failure and
		// keep the loop width by moving on to the next operation.
		g.outcomes = append(g.outcomes, sink.Outcome{Dst: dst, Err: err, EnqueuedAt: g.eng.Now(), DoneAt: g.eng.Now()})
		g.finished = g.eng.Now()
		g.next()
	}
}

func (g *ClosedLoop) Done() bool                { return len(g.outcomes) >= g.total }
func (g *ClosedLoop) Outcomes() []sink.Outcome  { return g.outcomes }
func (g *ClosedLoop) FinishedAt() time.Duration { return g.finished }

// OpenLoop submits Total operations on a Poisson process with the given
// mean rate (operations per second), independent of completions.
type OpenLoop struct {
	eng   *sim.Engine
	sub   Submitter
	dist  Dist
	rng   *rand.Rand
	rate  float64
	total int

	submitted int
	outcomes  []sink.Outcome
	finished  time.Duration
	payload   func(seq int) any
}

// NewOpenLoop builds an open-loop generator offering rate operations per
// second (must be > 0) until total have been submitted.
func NewOpenLoop(eng *sim.Engine, sub Submitter, dist Dist, rng *rand.Rand, rate float64, total int) *OpenLoop {
	if rate <= 0 {
		panic("workload: open-loop rate must be positive")
	}
	if total < 0 {
		total = 0
	}
	return &OpenLoop{
		eng: eng, sub: sub, dist: dist, rng: rng, rate: rate, total: total,
		payload: func(seq int) any { return fmt.Sprintf("op-%d", seq) },
	}
}

func (g *OpenLoop) Start() {
	if g.total == 0 {
		return
	}
	g.eng.Schedule(g.interArrival(), g.tick)
}

// interArrival draws the next exponential gap, floored at 1 ms so the
// event queue cannot be flooded by pathological draws.
func (g *OpenLoop) interArrival() time.Duration {
	gap := time.Duration(g.rng.ExpFloat64() / g.rate * float64(time.Second))
	if gap < time.Millisecond {
		gap = time.Millisecond
	}
	return gap
}

func (g *OpenLoop) tick() {
	if g.submitted >= g.total {
		return
	}
	seq := g.submitted
	g.submitted++
	dst := g.dist.Pick(g.rng)
	_, err := g.sub.Submit(dst, g.payload(seq), func(o sink.Outcome) {
		g.outcomes = append(g.outcomes, o)
		g.finished = g.eng.Now()
	})
	if err != nil {
		g.outcomes = append(g.outcomes, sink.Outcome{Dst: dst, Err: err, EnqueuedAt: g.eng.Now(), DoneAt: g.eng.Now()})
		g.finished = g.eng.Now()
	}
	if g.submitted < g.total {
		g.eng.Schedule(g.interArrival(), g.tick)
	}
}

func (g *OpenLoop) Done() bool                { return len(g.outcomes) >= g.total }
func (g *OpenLoop) Outcomes() []sink.Outcome  { return g.outcomes }
func (g *OpenLoop) FinishedAt() time.Duration { return g.finished }
