package workload

import (
	"testing"
	"time"

	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/sink"
)

// fakeSub resolves every submitted op after a fixed latency and records
// the peak number outstanding.
type fakeSub struct {
	eng         *sim.Engine
	latency     time.Duration
	inflight    int
	maxInflight int
	submitted   []radio.NodeID
	tickets     uint32
}

func (f *fakeSub) Submit(dst radio.NodeID, app any, done func(sink.Outcome)) (uint32, error) {
	f.tickets++
	t := f.tickets
	f.inflight++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	f.submitted = append(f.submitted, dst)
	start := f.eng.Now()
	f.eng.Schedule(f.latency, func() {
		f.inflight--
		done(sink.Outcome{Ticket: t, Dst: dst, OK: true, Attempts: 1,
			EnqueuedAt: start, AdmittedAt: start, Admitted: true, DoneAt: f.eng.Now()})
	})
	return t, nil
}

func nodeRange(lo, hi int) []radio.NodeID {
	var out []radio.NodeID
	for i := lo; i <= hi; i++ {
		out = append(out, radio.NodeID(i))
	}
	return out
}

func TestClosedLoopHoldsConcurrency(t *testing.T) {
	eng := sim.NewEngine()
	sub := &fakeSub{eng: eng, latency: time.Second}
	gen := NewClosedLoop(eng, sub, Uniform(nodeRange(1, 9)), sim.NewRNG(7), 4, 20)
	gen.Start()
	if err := eng.RunAll(100000); err != nil {
		t.Fatal(err)
	}
	if !gen.Done() || len(gen.Outcomes()) != 20 {
		t.Fatalf("done=%v outcomes=%d", gen.Done(), len(gen.Outcomes()))
	}
	if sub.maxInflight != 4 {
		t.Fatalf("peak outstanding = %d, want 4", sub.maxInflight)
	}
	// 20 ops at 1 s each over width 4 = 5 s of service.
	if gen.FinishedAt() != 5*time.Second {
		t.Fatalf("finished at %v, want 5s", gen.FinishedAt())
	}
}

func TestOpenLoopOffersIndependentOfCompletions(t *testing.T) {
	eng := sim.NewEngine()
	// Service is far slower than offered rate: open loop must still push
	// all arrivals out on schedule.
	sub := &fakeSub{eng: eng, latency: time.Minute}
	gen := NewOpenLoop(eng, sub, Uniform(nodeRange(1, 9)), sim.NewRNG(7), 2.0, 15)
	gen.Start()
	if err := eng.RunAll(100000); err != nil {
		t.Fatal(err)
	}
	if !gen.Done() || len(gen.Outcomes()) != 15 {
		t.Fatalf("done=%v outcomes=%d", gen.Done(), len(gen.Outcomes()))
	}
	if sub.maxInflight < 10 {
		t.Fatalf("peak outstanding = %d; open loop throttled by completions", sub.maxInflight)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	run := func(open bool) []radio.NodeID {
		eng := sim.NewEngine()
		sub := &fakeSub{eng: eng, latency: 3 * time.Second}
		var gen Generator
		dist := DepthWeighted(nodeRange(1, 20), func(id radio.NodeID) int { return int(id) % 5 })
		if open {
			gen = NewOpenLoop(eng, sub, dist, sim.DeriveRNG(42, 1), 1.5, 30)
		} else {
			gen = NewClosedLoop(eng, sub, dist, sim.DeriveRNG(42, 1), 3, 30)
		}
		gen.Start()
		if err := eng.RunAll(100000); err != nil {
			t.Fatal(err)
		}
		return sub.submitted
	}
	for _, open := range []bool{false, true} {
		a, b := run(open), run(open)
		if len(a) != len(b) {
			t.Fatalf("open=%v: submitted %d vs %d", open, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("open=%v: destination %d differs: %d vs %d", open, i, a[i], b[i])
			}
		}
	}
}

func TestHotspotBias(t *testing.T) {
	nodes := nodeRange(1, 20)
	hot := nodeRange(1, 2)
	dist := Hotspot(nodes, hot, 0.8)
	rng := sim.NewRNG(11)
	hits := 0
	const draws = 4000
	for i := 0; i < draws; i++ {
		id := dist.Pick(rng)
		if id <= 2 {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("hot fraction = %.3f, want ≈ 0.8", frac)
	}
}

func TestUniformCoversAllNodes(t *testing.T) {
	nodes := nodeRange(1, 6)
	dist := Uniform(nodes)
	rng := sim.NewRNG(3)
	seen := map[radio.NodeID]int{}
	for i := 0; i < 600; i++ {
		seen[dist.Pick(rng)]++
	}
	for _, id := range nodes {
		if seen[id] == 0 {
			t.Fatalf("node %d never drawn", id)
		}
	}
}

func TestDepthWeightedFavorsDeepNodes(t *testing.T) {
	nodes := nodeRange(1, 10)
	// Node 10 is 9 hops deep, node 1 is adjacent to the sink.
	dist := Dist(DepthWeighted(nodes, func(id radio.NodeID) int { return int(id) - 1 }))
	rng := sim.NewRNG(5)
	counts := map[radio.NodeID]int{}
	for i := 0; i < 5000; i++ {
		counts[dist.Pick(rng)]++
	}
	if counts[10] <= counts[2]*2 {
		t.Fatalf("deep node drew %d, shallow node %d: depth weighting ineffective", counts[10], counts[2])
	}
}
