package cmdsvc

import (
	"errors"
	"sort"

	"teleadjust/internal/core"
	"teleadjust/internal/fault"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/sink"
	"teleadjust/internal/telemetry"
)

// Service errors.
var (
	// ErrShed reports that the admission gate refused the submission
	// (queue depth bound, or high-water mark under the reject policy).
	ErrShed = errors.New("cmdsvc: submission shed by backpressure")
	// ErrClosed reports a submission to a closed service.
	ErrClosed = errors.New("cmdsvc: service closed")
)

// ShedPolicy selects what happens to submissions above the high-water
// mark.
type ShedPolicy string

const (
	// PolicyReject sheds over-high-water submissions immediately.
	PolicyReject ShedPolicy = "reject"
	// PolicyDelay parks them in a deferred queue drained as completions
	// free capacity.
	PolicyDelay ShedPolicy = "delay"
)

// Config tunes a Service. The zero value is a fully transparent
// front-end: no batching, no cache, no backpressure.
type Config struct {
	// Batch configures the prefix batcher (Window 0 = pass-through).
	Batch BatcherConfig
	// Cache configures the route-freshness cache (TTL <= 0 = disabled).
	Cache CacheConfig
	// QueueDepth bounds the total backlog (scheduler queue + deferred
	// submissions); submissions beyond it are shed. 0 = unbounded.
	QueueDepth int
	// HighWater is the soft backlog threshold where Policy kicks in.
	// 0 = disabled.
	HighWater int
	// Policy selects reject or delay above HighWater (default reject).
	Policy ShedPolicy
}

// TenantStats are one tenant's lifetime counters.
type TenantStats struct {
	Name      string
	Submitted uint64 // accepted + shed + delayed
	Shed      uint64
	Delayed   uint64
	Completed uint64
	OK        uint64
}

// deferredCmd is one submission parked above the high-water mark.
type deferredCmd struct {
	tenant *TenantStats
	dst    radio.NodeID
	app    any
	done   func(sink.Outcome)
}

// Service is the persistent command front-end: tenants submit
// continuously, the admission gate sheds or delays past the backlog
// bounds, the prefix batcher coalesces what descends shared subtrees, and
// the route cache trims recovery work for fresh routes. It owns the sink
// scheduler it fronts.
type Service struct {
	eng     *sim.Engine
	sched   *sink.Scheduler
	batcher *Batcher
	cache   *RouteCache
	cfg     Config

	deferred []deferredCmd
	pumping  bool
	closed   bool

	tenants map[string]*TenantStats
	order   []string

	bus  *telemetry.Bus
	node radio.NodeID
}

// DefaultTenant is the tenant name Submit uses.
const DefaultTenant = "default"

// New builds a service dispatching through d (the sink protocol's control
// entry point) with the given scheduler and service configs. The
// scheduler's Window and PerGroup should be at least cfg.Batch.MaxBatch
// when batching is on, or buffered commands can never fill a batch.
func New(eng *sim.Engine, d sink.Dispatcher, schedCfg sink.Config, cfg Config) *Service {
	if cfg.Policy == "" {
		cfg.Policy = PolicyReject
	}
	s := &Service{
		eng:     eng,
		cfg:     cfg,
		batcher: NewBatcher(eng, d, cfg.Batch),
		tenants: make(map[string]*TenantStats),
	}
	if cfg.Cache.TTL > 0 {
		s.cache = NewRouteCache(eng.Now, cfg.Cache)
		s.batcher.SetCache(s.cache)
	}
	s.sched = sink.New(eng, s.batcher, schedCfg)
	return s
}

// SetCoder installs the destination → code resolver on both the scheduler
// (subtree grouping) and the batcher (prefix keys).
func (s *Service) SetCoder(fn func(radio.NodeID) (core.PathCode, bool)) {
	s.sched.SetCoder(fn)
	s.batcher.SetCoder(fn)
}

// SetTelemetry binds scheduler counters and service events to the
// registry and bus, and subscribes the route cache (if any) to the
// invalidation layers.
func (s *Service) SetTelemetry(reg *telemetry.Registry, bus *telemetry.Bus, node radio.NodeID) {
	s.bus = bus
	s.node = node
	s.sched.SetTelemetry(reg, bus, node)
	s.batcher.SetTelemetry(bus, node)
	if s.cache != nil && bus != nil {
		bus.Subscribe(s.cache, telemetry.LayerCore, telemetry.LayerCoding)
	}
}

// AttachFaults chains the route cache onto the fault injector's epoch
// hook so scripted faults invalidate the routes they can move. No-op
// without a cache.
func (s *Service) AttachFaults(inj *fault.Injector) {
	if s.cache != nil && inj != nil {
		inj.OnEpoch(s.cache.OnFault)
	}
}

// Scheduler exposes the owned sink scheduler (stats, quiescence checks).
func (s *Service) Scheduler() *sink.Scheduler { return s.sched }

// BatcherStats returns the prefix batcher's counters.
func (s *Service) BatcherStats() BatcherStats { return s.batcher.Stats() }

// CacheStats returns the route cache's counters (zero value when the
// cache is disabled).
func (s *Service) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// Depth returns the admission backlog: queued plus deferred submissions
// (in-flight and batcher-buffered commands excluded — they hold window
// slots, not queue slots).
func (s *Service) Depth() int { return s.sched.QueueLen() + len(s.deferred) }

// DeferredLen returns the number of submissions parked by the delay
// policy.
func (s *Service) DeferredLen() int { return len(s.deferred) }

// Quiesced reports that nothing is queued, deferred, buffered, or in
// flight.
func (s *Service) Quiesced() bool {
	return s.sched.Quiesced() && len(s.deferred) == 0 && s.batcher.PendingLen() == 0
}

// Tenant is one named submission stream into the service.
type Tenant struct {
	svc   *Service
	stats *TenantStats
}

// Tenant returns (creating on first use) the named tenant's submission
// handle.
func (s *Service) Tenant(name string) *Tenant {
	st, ok := s.tenants[name]
	if !ok {
		st = &TenantStats{Name: name}
		s.tenants[name] = st
		s.order = append(s.order, name)
	}
	return &Tenant{svc: s, stats: st}
}

// Tenants returns per-tenant counter snapshots sorted by name.
func (s *Service) Tenants() []TenantStats {
	out := make([]TenantStats, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *s.tenants[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Submit enqueues one command for the default tenant. See Tenant.Submit.
func (s *Service) Submit(dst radio.NodeID, app any, done func(sink.Outcome)) (uint32, error) {
	return s.Tenant(DefaultTenant).Submit(dst, app, done)
}

// SubmitBatch enqueues a set of commands for the default tenant,
// returning per-command tickets aligned with reqs and the first admission
// error (later commands are still attempted).
func (s *Service) SubmitBatch(dsts []radio.NodeID, app any, done func(sink.Outcome)) ([]uint32, error) {
	t := s.Tenant(DefaultTenant)
	tickets := make([]uint32, len(dsts))
	var firstErr error
	for i, dst := range dsts {
		tk, err := t.Submit(dst, app, done)
		tickets[i] = tk
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return tickets, firstErr
}

// Submit enqueues one command for this tenant and returns its scheduler
// ticket. done (optional) fires exactly once with the outcome. Above the
// backlog bounds the submission is shed (ErrShed) or — under the delay
// policy — parked with ticket 0 and admitted as completions free
// capacity. Submitting to a closed service returns ErrClosed.
func (t *Tenant) Submit(dst radio.NodeID, app any, done func(sink.Outcome)) (uint32, error) {
	return t.svc.submit(t.stats, dst, app, done)
}

// Done implements the generator-facing half of workload.Submitter for the
// tenant view; the Submit signature already matches.

func (s *Service) submit(tn *TenantStats, dst radio.NodeID, app any, done func(sink.Outcome)) (uint32, error) {
	if s.closed {
		return 0, ErrClosed
	}
	tn.Submitted++
	depth := s.Depth()
	if s.cfg.QueueDepth > 0 && depth >= s.cfg.QueueDepth {
		return 0, s.shed(tn, dst)
	}
	if s.cfg.HighWater > 0 && depth >= s.cfg.HighWater {
		if s.cfg.Policy == PolicyDelay {
			tn.Delayed++
			s.emit(telemetry.Event{Kind: telemetry.KindSvcDelay, Dst: dst, Note: tn.Name,
				Value: float64(depth)})
			s.deferred = append(s.deferred, deferredCmd{tenant: tn, dst: dst, app: app, done: done})
			return 0, nil
		}
		return 0, s.shed(tn, dst)
	}
	return s.dispatch(tn, dst, app, done)
}

func (s *Service) shed(tn *TenantStats, dst radio.NodeID) error {
	tn.Shed++
	s.emit(telemetry.Event{Kind: telemetry.KindSvcShed, Dst: dst, Note: tn.Name,
		Value: float64(s.Depth())})
	return ErrShed
}

func (s *Service) dispatch(tn *TenantStats, dst radio.NodeID, app any, done func(sink.Outcome)) (uint32, error) {
	return s.sched.Submit(dst, app, func(o sink.Outcome) {
		tn.Completed++
		if o.OK {
			tn.OK++
		}
		if s.cache != nil {
			if o.OK {
				s.cache.Confirm(o.Dst)
			} else {
				s.cache.InvalidateNode(o.Dst)
			}
		}
		if done != nil {
			done(o)
		}
		s.drainDeferred(false)
	})
}

// drainDeferred admits parked submissions while the scheduler backlog
// sits below the high-water mark (or unconditionally when forced by
// Drain/Close). Re-entrant completions fold into the outermost drain.
func (s *Service) drainDeferred(force bool) {
	if s.pumping {
		return
	}
	s.pumping = true
	defer func() { s.pumping = false }()
	for len(s.deferred) > 0 {
		if !force && s.cfg.HighWater > 0 && s.sched.QueueLen() >= s.cfg.HighWater {
			return
		}
		d := s.deferred[0]
		s.deferred = s.deferred[1:]
		s.dispatch(d.tenant, d.dst, d.app, d.done)
	}
}

// Drain pushes everything buffered out now: deferred submissions are
// admitted regardless of the high-water mark and open batch groups flush
// without waiting for their windows. In-flight operations still resolve
// through the engine as usual.
func (s *Service) Drain() {
	s.drainDeferred(true)
	s.batcher.Drain()
}

// Close drains the service and refuses subsequent submissions. Pending
// outcomes still fire as the protocol resolves them.
func (s *Service) Close() {
	s.closed = true
	s.Drain()
}

// emit publishes a sink-layer service event.
func (s *Service) emit(ev telemetry.Event) {
	if !s.bus.Wants(telemetry.LayerSink) {
		return
	}
	ev.Layer = telemetry.LayerSink
	ev.Node = s.node
	s.bus.Emit(ev)
}
