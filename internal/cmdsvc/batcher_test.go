package cmdsvc

import (
	"errors"
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/telemetry"
)

// stubDispatcher records every dispatch and implements all three
// capability surfaces (plain, options, batch). Callbacks fire only when
// the test resolves them explicitly.
type stubDispatcher struct {
	uidSeq   uint32
	singles  []radio.NodeID
	optCalls []core.SendOpts
	batches  [][]core.BatchRequest
	uidBuf   []uint32
	batchErr error
	sendErr  error
}

func (d *stubDispatcher) SendControl(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	if d.sendErr != nil {
		return 0, d.sendErr
	}
	d.uidSeq++
	d.singles = append(d.singles, dst)
	return d.uidSeq, nil
}

func (d *stubDispatcher) SendControlWith(dst radio.NodeID, app any, opts core.SendOpts, cb func(protocol.Result)) (uint32, error) {
	d.optCalls = append(d.optCalls, opts)
	return d.SendControl(dst, app, cb)
}

func (d *stubDispatcher) SendControlBatch(reqs []core.BatchRequest) ([]uint32, error) {
	if d.batchErr != nil {
		return nil, d.batchErr
	}
	cp := make([]core.BatchRequest, len(reqs))
	copy(cp, reqs)
	d.batches = append(d.batches, cp)
	d.uidBuf = d.uidBuf[:0]
	for range reqs {
		d.uidSeq++
		d.uidBuf = append(d.uidBuf, d.uidSeq)
	}
	return d.uidBuf, nil
}

// plainDispatcher has no batch or option capability.
type plainDispatcher struct {
	singles []radio.NodeID
	uidSeq  uint32
}

func (d *plainDispatcher) SendControl(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	d.uidSeq++
	d.singles = append(d.singles, dst)
	return d.uidSeq, nil
}

// testCoder maps destinations to fixed codes.
func testCoder(codes map[radio.NodeID]core.PathCode) func(radio.NodeID) (core.PathCode, bool) {
	return func(dst radio.NodeID) (core.PathCode, bool) {
		c, ok := codes[dst]
		return c, ok
	}
}

// mustExtend builds a code by successive positional extensions.
func mustExtend(t testing.TB, positions ...uint16) core.PathCode {
	t.Helper()
	c := core.RootCode()
	for _, p := range positions {
		var err error
		c, err = c.Extend(p, 2)
		if err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// sharedCodes returns four codes: three sharing a deep prefix and one in a
// disjoint subtree.
func sharedCodes(t testing.TB) map[radio.NodeID]core.PathCode {
	return map[radio.NodeID]core.PathCode{
		2: mustExtend(t, 1, 1),
		3: mustExtend(t, 1, 2),
		4: mustExtend(t, 1, 3),
		5: mustExtend(t, 2, 1),
	}
}

func TestBatcherWindowZeroPassesThrough(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: 0})
	b.SetCoder(testCoder(sharedCodes(t)))
	uid, err := b.SendControl(2, "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if uid == 0 {
		t.Fatal("pass-through lost the real uid")
	}
	if len(d.singles) != 1 || d.singles[0] != 2 {
		t.Fatalf("singles = %v", d.singles)
	}
	if s := b.Stats(); s.PassThrough != 1 || s.Batches != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBatcherNoCapabilityPassesThrough(t *testing.T) {
	eng := sim.NewEngine()
	d := &plainDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second})
	b.SetCoder(testCoder(sharedCodes(t)))
	if _, err := b.SendControl(2, "x", nil); err != nil {
		t.Fatal(err)
	}
	if len(d.singles) != 1 {
		t.Fatalf("singles = %v", d.singles)
	}
	if b.PendingLen() != 0 {
		t.Fatalf("pending = %d, want 0", b.PendingLen())
	}
}

func TestBatcherCoderMissPassesThrough(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second})
	b.SetCoder(testCoder(sharedCodes(t)))
	if _, err := b.SendControl(99, "x", nil); err != nil {
		t.Fatal(err)
	}
	if len(d.singles) != 1 || d.singles[0] != 99 {
		t.Fatalf("singles = %v", d.singles)
	}
}

func TestBatcherWindowCoalesces(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second, Bits: 3})
	b.SetCoder(testCoder(sharedCodes(t)))
	for _, dst := range []radio.NodeID{2, 3, 4} {
		uid, err := b.SendControl(dst, "x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if uid != 0 {
			t.Fatalf("buffered command returned uid %d, want 0", uid)
		}
	}
	if b.PendingLen() != 3 {
		t.Fatalf("pending = %d, want 3", b.PendingLen())
	}
	if len(d.batches) != 0 {
		t.Fatal("flushed before the window expired")
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(d.batches) != 1 || len(d.batches[0]) != 3 {
		t.Fatalf("batches = %v", d.batches)
	}
	if b.PendingLen() != 0 {
		t.Fatalf("pending = %d after flush", b.PendingLen())
	}
	s := b.Stats()
	if s.Batches != 1 || s.BatchedCmds != 3 || s.Singles != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.MeanBatchSize(); got != 3 {
		t.Fatalf("mean batch size = %v, want 3", got)
	}
}

func TestBatcherMaxBatchFlushesEarly(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Hour, Bits: 3, MaxBatch: 2})
	b.SetCoder(testCoder(sharedCodes(t)))
	b.SendControl(2, "x", nil)
	if len(d.batches) != 0 {
		t.Fatal("flushed below MaxBatch")
	}
	b.SendControl(3, "x", nil)
	if len(d.batches) != 1 || len(d.batches[0]) != 2 {
		t.Fatalf("batches = %v", d.batches)
	}
	// The cancelled window timer must not re-flush.
	if err := eng.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(d.batches) != 1 || len(d.singles) != 0 {
		t.Fatalf("late flush: batches=%d singles=%d", len(d.batches), len(d.singles))
	}
}

func TestBatcherDisjointPrefixesSeparateGroups(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second, Bits: 3})
	b.SetCoder(testCoder(sharedCodes(t)))
	b.SendControl(2, "x", nil) // subtree 1
	b.SendControl(3, "x", nil) // subtree 1
	b.SendControl(5, "x", nil) // subtree 2
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Subtree 1 flushes as a 2-batch, subtree 2 as a single.
	if len(d.batches) != 1 || len(d.batches[0]) != 2 {
		t.Fatalf("batches = %v", d.batches)
	}
	if len(d.singles) != 1 || d.singles[0] != 5 {
		t.Fatalf("singles = %v", d.singles)
	}
	if s := b.Stats(); s.Singles != 1 || s.Batches != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBatcherDrainFlushesInActivationOrder(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Hour, Bits: 3})
	b.SetCoder(testCoder(sharedCodes(t)))
	b.SendControl(5, "x", nil) // group B first
	b.SendControl(2, "x", nil) // group A
	b.SendControl(3, "x", nil)
	b.Drain()
	if b.PendingLen() != 0 {
		t.Fatalf("pending = %d after Drain", b.PendingLen())
	}
	// Activation order: the single for 5 goes out before the 2/3 batch.
	if len(d.singles) != 1 || d.singles[0] != 5 {
		t.Fatalf("singles = %v", d.singles)
	}
	if len(d.batches) != 1 || len(d.batches[0]) != 2 {
		t.Fatalf("batches = %v", d.batches)
	}
	if d.batches[0][0].Dst != 2 || d.batches[0][1].Dst != 3 {
		t.Fatalf("batch member order = %v", d.batches[0])
	}
	// Drained timers must not fire again.
	if err := eng.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(d.singles) != 1 || len(d.batches) != 1 {
		t.Fatal("drained group flushed twice")
	}
}

func TestBatcherBatchErrorFailsCallbacks(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{batchErr: errors.New("boom")}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second, Bits: 3})
	b.SetCoder(testCoder(sharedCodes(t)))
	var failed []radio.NodeID
	cb := func(r protocol.Result) {
		if !r.OK {
			failed = append(failed, r.Dst)
		}
	}
	b.SendControl(2, "x", cb)
	b.SendControl(3, "x", cb)
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(failed) != 2 {
		t.Fatalf("failed = %v, want both members", failed)
	}
}

func TestBatcherSingleFlushErrorFailsCallback(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{sendErr: errors.New("down")}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second, Bits: 3})
	b.SetCoder(testCoder(sharedCodes(t)))
	var got *protocol.Result
	b.SendControl(2, "x", func(r protocol.Result) { got = &r })
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.OK || got.Dst != 2 {
		t.Fatalf("single flush error result = %+v", got)
	}
}

func TestBatcherPayloadRidesWire(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second, Bits: 3})
	b.SetCoder(testCoder(sharedCodes(t)))
	b.SendControl(2, []byte{9, 8}, nil)
	b.SendControl(3, "not-bytes", nil)
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(d.batches) != 1 {
		t.Fatalf("batches = %v", d.batches)
	}
	reqs := d.batches[0]
	if string(reqs[0].Payload) != "\x09\x08" {
		t.Fatalf("byte app payload = %v", reqs[0].Payload)
	}
	if reqs[1].Payload != nil {
		t.Fatalf("non-byte app payload = %v", reqs[1].Payload)
	}
}

// collector buffers every event it consumes.
type collector struct{ evs []telemetry.Event }

func (c *collector) Consume(ev telemetry.Event) { c.evs = append(c.evs, ev) }

func TestBatcherEmitsBatchSpans(t *testing.T) {
	eng := sim.NewEngine()
	d := &stubDispatcher{}
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second, Bits: 3})
	b.SetCoder(testCoder(sharedCodes(t)))
	bus := telemetry.NewBus(eng.Now)
	col := &collector{}
	bus.Subscribe(col, telemetry.LayerSink)
	b.SetTelemetry(bus, 1)
	b.SendControl(2, "x", nil)
	b.SendControl(3, "x", nil)
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	var batch, members int
	var seq uint32
	for _, ev := range col.evs {
		switch ev.Kind {
		case telemetry.KindSvcBatch:
			batch++
			seq = ev.Seq
			if ev.Value != 2 {
				t.Fatalf("batch span size = %v, want 2", ev.Value)
			}
			if ev.Note == "" {
				t.Fatal("batch span missing common-prefix note")
			}
		case telemetry.KindSvcBatchMember:
			members++
			if ev.UID == 0 {
				t.Fatal("member span missing wire uid")
			}
		}
	}
	if batch != 1 || members != 2 {
		t.Fatalf("spans: %d batch, %d members", batch, members)
	}
	for _, ev := range col.evs {
		if ev.Kind == telemetry.KindSvcBatchMember && ev.Seq != seq {
			t.Fatalf("member seq %d != batch seq %d", ev.Seq, seq)
		}
	}
}

func TestPrefixKeyGroupsByPrefix(t *testing.T) {
	codes := sharedCodes(t)
	k2 := prefixKey(codes[2], 3)
	k3 := prefixKey(codes[3], 3)
	k5 := prefixKey(codes[5], 3)
	if k2 != k3 {
		t.Fatalf("same-subtree keys differ: %x vs %x", k2, k3)
	}
	if k2 == k5 {
		t.Fatalf("cross-subtree keys collide: %x", k2)
	}
	// Bits <= 0 keys by the full code: distinct destinations never group.
	if prefixKey(codes[2], 0) == prefixKey(codes[3], 0) {
		t.Fatal("full-code keys collide for distinct codes")
	}
	if prefixKey(codes[2], 0) != prefixKey(codes[2], 0) {
		t.Fatal("full-code key not stable")
	}
}
