package cmdsvc

import (
	"errors"
	"testing"
	"time"

	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/sink"
	"teleadjust/internal/telemetry"
)

// holdDispatcher parks every dispatch until the test resolves it, so
// backpressure tests can pin the scheduler's in-flight window open.
type holdDispatcher struct {
	uidSeq uint32
	cbs    []func(protocol.Result)
	dsts   []radio.NodeID
}

func (d *holdDispatcher) SendControl(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	d.uidSeq++
	d.cbs = append(d.cbs, cb)
	d.dsts = append(d.dsts, dst)
	return d.uidSeq, nil
}

// resolveNext completes the oldest unresolved dispatch.
func (d *holdDispatcher) resolveNext(ok bool) {
	cb, dst := d.cbs[0], d.dsts[0]
	d.cbs, d.dsts = d.cbs[1:], d.dsts[1:]
	cb(protocol.Result{Dst: dst, OK: ok})
}

// newHeldService builds a service over a hold dispatcher with a 1-op
// scheduler window so each unresolved dispatch occupies the window.
func newHeldService(cfg Config) (*Service, *holdDispatcher) {
	eng := sim.NewEngine()
	d := &holdDispatcher{}
	svc := New(eng, d, sink.Config{Window: 1, PerGroup: 1, MaxQueue: 100}, cfg)
	return svc, d
}

func TestServiceShedAtQueueDepth(t *testing.T) {
	svc, _ := newHeldService(Config{QueueDepth: 3})
	tn := svc.Tenant("ops")
	var accepted, shed int
	for i := 0; i < 6; i++ {
		_, err := tn.Submit(radio.NodeID(2+i), "cmd", nil)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrShed):
			shed++
		default:
			t.Fatal(err)
		}
	}
	// Submit 1 dispatches (in flight), 2-4 queue (depth 0,1,2), 5-6 shed
	// at depth 3.
	if accepted != 4 || shed != 2 {
		t.Fatalf("accepted=%d shed=%d, want 4/2", accepted, shed)
	}
	st := svc.Tenants()
	if len(st) != 1 || st[0].Submitted != 6 || st[0].Shed != 2 {
		t.Fatalf("tenant stats = %+v", st)
	}
	if svc.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", svc.Depth())
	}
}

func TestServiceDelayPolicyParksAndDrains(t *testing.T) {
	svc, d := newHeldService(Config{HighWater: 2, Policy: PolicyDelay})
	tn := svc.Tenant("ops")
	var done []radio.NodeID
	cb := func(o sink.Outcome) { done = append(done, o.Dst) }
	for i := 0; i < 4; i++ {
		tk, err := tn.Submit(radio.NodeID(2+i), "cmd", cb)
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 && tk != 0 {
			t.Fatalf("deferred submission got ticket %d, want 0", tk)
		}
	}
	if svc.DeferredLen() != 1 {
		t.Fatalf("deferred = %d, want 1", svc.DeferredLen())
	}
	st := svc.Tenants()[0]
	if st.Delayed != 1 || st.Shed != 0 {
		t.Fatalf("tenant stats = %+v", st)
	}
	// Resolving completions frees backlog; the parked command is admitted.
	for len(d.cbs) > 0 {
		d.resolveNext(true)
	}
	if svc.DeferredLen() != 0 {
		t.Fatalf("deferred = %d after drain, want 0", svc.DeferredLen())
	}
	if len(done) != 4 {
		t.Fatalf("%d outcomes, want 4 (deferred command never completed)", len(done))
	}
	if !svc.Quiesced() {
		t.Fatal("service not quiesced after all outcomes")
	}
	st = svc.Tenants()[0]
	if st.Completed != 4 || st.OK != 4 {
		t.Fatalf("tenant stats = %+v", st)
	}
}

func TestServiceQueueDepthCountsDeferred(t *testing.T) {
	svc, _ := newHeldService(Config{QueueDepth: 3, HighWater: 1, Policy: PolicyDelay})
	tn := svc.Tenant("ops")
	// 1 dispatches; 2-3 defer (depth 0 < 1? no: after 1 dispatch the queue
	// holds 0, so 2 dispatches too and queues; 3 defers at depth 1; 4
	// defers at depth 2; 5 sheds at depth 3).
	var shed int
	for i := 0; i < 5; i++ {
		if _, err := tn.Submit(radio.NodeID(2+i), "cmd", nil); errors.Is(err, ErrShed) {
			shed++
		}
	}
	if shed != 1 {
		t.Fatalf("shed = %d, want 1 (QueueDepth must count deferred submissions)", shed)
	}
}

func TestServiceCloseRefusesSubmissions(t *testing.T) {
	svc, d := newHeldService(Config{HighWater: 1, Policy: PolicyDelay})
	tn := svc.Tenant("ops")
	tn.Submit(2, "cmd", nil)
	tn.Submit(3, "cmd", nil) // queues
	tn.Submit(4, "cmd", nil) // defers
	if svc.DeferredLen() != 1 {
		t.Fatalf("deferred = %d", svc.DeferredLen())
	}
	svc.Close()
	// Close force-admits the deferred command past the high-water mark.
	if svc.DeferredLen() != 0 {
		t.Fatal("Close left deferred submissions parked")
	}
	if _, err := tn.Submit(5, "cmd", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	for len(d.cbs) > 0 {
		d.resolveNext(true)
	}
	if !svc.Quiesced() {
		t.Fatal("closed service not quiesced after resolution")
	}
}

func TestServiceTenantsIsolatedAndSorted(t *testing.T) {
	svc, d := newHeldService(Config{})
	svc.Tenant("zeta").Submit(2, "cmd", nil)
	svc.Tenant("alpha").Submit(3, "cmd", nil)
	svc.Tenant("alpha").Submit(4, "cmd", nil)
	for len(d.cbs) > 0 {
		d.resolveNext(true)
	}
	st := svc.Tenants()
	if len(st) != 2 || st[0].Name != "alpha" || st[1].Name != "zeta" {
		t.Fatalf("tenants = %+v", st)
	}
	if st[0].Submitted != 2 || st[0].Completed != 2 || st[1].Submitted != 1 {
		t.Fatalf("tenant counters = %+v", st)
	}
}

func TestServiceSubmitBatchTickets(t *testing.T) {
	// Window 1: the first submit goes in flight (outside Depth), the second
	// queues, the third hits the depth bound.
	svc, _ := newHeldService(Config{QueueDepth: 1})
	tickets, err := svc.SubmitBatch([]radio.NodeID{2, 3, 4}, "cmd", nil)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want first shed error", err)
	}
	if len(tickets) != 3 {
		t.Fatalf("tickets = %v", tickets)
	}
	if tickets[0] == 0 || tickets[1] == 0 {
		t.Fatalf("admitted tickets = %v, want nonzero", tickets[:2])
	}
	if tickets[2] != 0 {
		t.Fatalf("shed ticket = %d, want 0", tickets[2])
	}
}

func TestServiceCacheFollowsOutcomes(t *testing.T) {
	svc, d := newHeldService(Config{Cache: CacheConfig{TTL: time.Hour}})
	svc.Submit(2, "cmd", nil)
	d.resolveNext(true)
	if s := svc.CacheStats(); s.Confirms != 1 {
		t.Fatalf("cache stats after OK = %+v", s)
	}
	svc.Submit(2, "cmd", nil)
	d.resolveNext(false)
	if s := svc.CacheStats(); s.Invalidations != 1 {
		t.Fatalf("cache stats after failure = %+v", s)
	}
}

func TestServiceEmitsShedAndDelayEvents(t *testing.T) {
	svc, _ := newHeldService(Config{QueueDepth: 2, HighWater: 1, Policy: PolicyDelay})
	bus := telemetry.NewBus(nil)
	col := &collector{}
	bus.Subscribe(col, telemetry.LayerSink)
	svc.SetTelemetry(telemetry.NewRegistry(), bus, 1)
	tn := svc.Tenant("ops")
	tn.Submit(2, "cmd", nil) // dispatches
	tn.Submit(3, "cmd", nil) // queues (depth 0 < 1)
	tn.Submit(4, "cmd", nil) // defers at depth 1
	tn.Submit(5, "cmd", nil) // sheds at depth 2
	var delays, sheds int
	for _, ev := range col.evs {
		switch ev.Kind {
		case telemetry.KindSvcDelay:
			delays++
			if ev.Note != "ops" {
				t.Fatalf("delay event tenant = %q", ev.Note)
			}
		case telemetry.KindSvcShed:
			sheds++
			if ev.Dst != 5 {
				t.Fatalf("shed event dst = %d", ev.Dst)
			}
		}
	}
	if delays != 1 || sheds != 1 {
		t.Fatalf("events: %d delays, %d sheds", delays, sheds)
	}
}

func TestServiceZeroConfigTransparent(t *testing.T) {
	svc, d := newHeldService(Config{})
	var outcomes int
	for i := 0; i < 10; i++ {
		if _, err := svc.Submit(radio.NodeID(2+i), "cmd", func(sink.Outcome) { outcomes++ }); err != nil {
			t.Fatal(err)
		}
	}
	for len(d.cbs) > 0 {
		d.resolveNext(true)
	}
	if outcomes != 10 {
		t.Fatalf("outcomes = %d, want 10", outcomes)
	}
	if s := svc.BatcherStats(); s.Batches != 0 {
		t.Fatalf("zero config still batched: %+v", s)
	}
	if s := svc.CacheStats(); s != (CacheStats{}) {
		t.Fatalf("zero config has cache stats: %+v", s)
	}
}
