package cmdsvc

import (
	"testing"
	"time"

	"teleadjust/internal/fault"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// testClock is a manually advanced virtual clock.
type testClock struct{ t time.Duration }

func (c *testClock) now() time.Duration { return c.t }

func TestRouteCacheTTLExpiry(t *testing.T) {
	clk := &testClock{}
	c := NewRouteCache(clk.now, CacheConfig{TTL: 10 * time.Second})
	if c.Fresh(3) {
		t.Fatal("empty cache reported fresh")
	}
	c.Confirm(3)
	clk.t = 9 * time.Second
	if !c.Fresh(3) {
		t.Fatal("unexpired entry reported stale")
	}
	clk.t = 11 * time.Second
	if c.Fresh(3) {
		t.Fatal("expired entry reported fresh")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still cached: len=%d", c.Len())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Confirms != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got <= 0.33 || got >= 0.34 {
		t.Fatalf("hit rate = %v, want 1/3", got)
	}
}

func TestRouteCacheLRUEviction(t *testing.T) {
	clk := &testClock{}
	c := NewRouteCache(clk.now, CacheConfig{TTL: time.Hour, Cap: 2})
	c.Confirm(1)
	c.Confirm(2)
	c.Confirm(1) // refresh 1: 2 becomes LRU
	c.Confirm(3) // evicts 2
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Fresh(2) {
		t.Fatal("evicted entry reported fresh")
	}
	if !c.Fresh(1) || !c.Fresh(3) {
		t.Fatal("retained entries reported stale")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRouteCacheInvalidateAndFlush(t *testing.T) {
	clk := &testClock{}
	c := NewRouteCache(clk.now, CacheConfig{TTL: time.Hour})
	c.Confirm(1)
	c.Confirm(2)
	c.InvalidateNode(1)
	c.InvalidateNode(9) // absent: no count
	if c.Fresh(1) {
		t.Fatal("invalidated entry reported fresh")
	}
	c.Flush()
	if c.Len() != 0 || c.Fresh(2) {
		t.Fatal("flush left entries behind")
	}
	if s := c.Stats(); s.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2 (one explicit + one flushed)", s.Invalidations)
	}
}

func TestRouteCacheConsumeInvalidation(t *testing.T) {
	clk := &testClock{}
	c := NewRouteCache(clk.now, CacheConfig{TTL: time.Hour})

	// code.changed drops the node's entry.
	c.Confirm(4)
	c.Consume(telemetry.Event{Kind: telemetry.KindCodeChanged, Node: 4})
	if c.Fresh(4) {
		t.Fatal("code.changed did not invalidate")
	}

	// op give-up resolves through the tracked op → dst map.
	c.Confirm(5)
	c.Consume(telemetry.Event{Kind: telemetry.KindOpIssue, Op: 77, Dst: 5})
	c.Consume(telemetry.Event{Kind: telemetry.KindOpGiveUp, Op: 77})
	if c.Fresh(5) {
		t.Fatal("op give-up did not invalidate the tracked destination")
	}

	// unroutable carries the destination directly.
	c.Confirm(6)
	c.Consume(telemetry.Event{Kind: telemetry.KindOpUnroutable, Dst: 6})
	if c.Fresh(6) {
		t.Fatal("unroutable did not invalidate")
	}

	// an untracked give-up is a no-op, not a panic.
	c.Consume(telemetry.Event{Kind: telemetry.KindOpGiveUp, Op: 9999})
}

func TestRouteCacheOpTrackingBounded(t *testing.T) {
	clk := &testClock{}
	c := NewRouteCache(clk.now, CacheConfig{TTL: time.Hour})
	for op := uint32(1); op <= maxTrackedOps+10; op++ {
		c.Consume(telemetry.Event{Kind: telemetry.KindOpIssue, Op: op, Dst: radio.NodeID(op % 100)})
	}
	if len(c.opDst) > maxTrackedOps {
		t.Fatalf("op map grew to %d, bound is %d", len(c.opDst), maxTrackedOps)
	}
	// The oldest ops were evicted from the ring; the newest still resolve.
	c.Confirm(radio.NodeID((maxTrackedOps + 10) % 100))
	c.Consume(telemetry.Event{Kind: telemetry.KindOpGiveUp, Op: maxTrackedOps + 10})
	if c.Fresh(radio.NodeID((maxTrackedOps + 10) % 100)) {
		t.Fatal("recent op lost from the tracking ring")
	}
}

func TestRouteCacheOnFault(t *testing.T) {
	clk := &testClock{}
	c := NewRouteCache(clk.now, CacheConfig{TTL: time.Hour})
	c.Confirm(1)
	c.Confirm(2)
	c.Confirm(3)
	c.OnFault(fault.Event{Kind: fault.Link, From: 1, To: 2}, false)
	if c.Fresh(1) || c.Fresh(2) {
		t.Fatal("link fault did not invalidate its endpoints")
	}
	if !c.Fresh(3) {
		t.Fatal("link fault flushed an unrelated entry")
	}
	c.OnFault(fault.Event{Kind: fault.Crash, Node: 9}, false)
	if c.Len() != 0 {
		t.Fatal("crash epoch did not flush the cache")
	}
}

func TestRouteCacheDisabledTTL(t *testing.T) {
	// Service-level contract: TTL <= 0 never constructs a cache, but a
	// directly constructed zero-TTL cache must still behave sanely
	// (everything is immediately stale).
	clk := &testClock{}
	c := NewRouteCache(clk.now, CacheConfig{})
	c.Confirm(1)
	clk.t = time.Nanosecond
	if c.Fresh(1) {
		t.Fatal("zero-TTL entry survived time passing")
	}
}
