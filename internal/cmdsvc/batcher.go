// Package cmdsvc implements the sink's long-lived command service: a
// persistent, multi-tenant front-end over the sink scheduler. It adds the
// three things a one-shot study harness does not need but a serving sink
// does: cross-command prefix batching (commands descending the same code
// subtree coalesce into one piggyback carrier within a bounded window), a
// route-freshness cache that skips redundant Re-Tele probing for
// recently-confirmed destinations, and bounded admission with per-tenant
// load shedding. Every feature is individually disableable; with all of
// them off the service is a transparent pass-through whose telemetry
// trace is byte-identical to driving the scheduler directly.
package cmdsvc

import (
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/sink"
	"teleadjust/internal/telemetry"
)

// batchSender is the optional protocol capability the batcher rides on
// (implemented by the TeleAdjusting engine). Protocols without it (Drip,
// RPL floods have no prefix structure) silently fall back to pass-through.
type batchSender interface {
	SendControlBatch(reqs []core.BatchRequest) ([]uint32, error)
}

// optSender is the optional per-operation-options dispatch capability,
// used to suppress the rescue probe for cache-fresh routes.
type optSender interface {
	SendControlWith(dst radio.NodeID, app any, opts core.SendOpts, cb func(protocol.Result)) (uint32, error)
}

// BatcherConfig tunes the prefix batcher.
type BatcherConfig struct {
	// Window is the bounded batching delay: the first command opening a
	// prefix group arms a flush this far in the future, and everything
	// sharing the prefix before then rides along. Zero disables batching
	// entirely (pure pass-through, byte-identical traces).
	Window time.Duration
	// Bits is the code-prefix length commands are grouped by (<= 0 groups
	// by full code, which only batches same-destination commands).
	Bits int
	// MaxBatch flushes a group early once it holds this many commands
	// (clamped to the wire format's member bound).
	MaxBatch int
}

// withDefaults clamps the config to usable values.
func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch < 2 {
		c.MaxBatch = 16
	}
	if c.MaxBatch > core.MaxBatchMembers {
		c.MaxBatch = core.MaxBatchMembers
	}
	return c
}

// BatcherStats are the batcher's lifetime counters.
type BatcherStats struct {
	// PassThrough counts commands dispatched immediately (batching off,
	// protocol without batch support, or no code for the destination).
	PassThrough uint64
	// Singles counts commands flushed alone after their window expired.
	Singles uint64
	// Batches counts flushed multi-command carriers and BatchedCmds the
	// commands they carried.
	Batches     uint64
	BatchedCmds uint64
	// RetrySingles counts scheduler re-dispatches sent as full-rescue
	// singles, bypassing both the batch buffer and the freshness cache.
	RetrySingles uint64
}

// MeanBatchSize returns the mean members per flushed carrier.
func (s BatcherStats) MeanBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedCmds) / float64(s.Batches)
}

// pendingCmd is one buffered command awaiting its group's flush.
type pendingCmd struct {
	dst     radio.NodeID
	code    core.PathCode
	app     any
	payload []byte
	cb      func(protocol.Result)
}

// batchGroup is one open prefix group.
type batchGroup struct {
	key   uint64
	cmds  []pendingCmd
	timer sim.EventRef
}

// retryCmd is one backed-off scheduler re-dispatch awaiting its timer.
type retryCmd struct {
	dst   radio.NodeID
	app   any
	cb    func(protocol.Result)
	timer sim.EventRef
}

// Batcher coalesces scheduler dispatches sharing a path-code prefix into
// piggyback carriers. It implements sink.Dispatcher and fronts the real
// protocol dispatcher, so the scheduler drives it unchanged. Buffered
// commands hold their scheduler window slots — size the scheduler's
// Window and PerGroup at least as large as MaxBatch or groups can never
// fill.
type Batcher struct {
	eng   *sim.Engine
	inner sink.Dispatcher
	batch batchSender
	opt   optSender
	coder func(radio.NodeID) (core.PathCode, bool)
	cache *RouteCache
	cfg   BatcherConfig

	groups map[uint64]*batchGroup
	order  []*batchGroup // activation order: Drain must not iterate a map
	free   []*batchGroup
	reqBuf []core.BatchRequest

	retries   []*retryCmd // pending backed-off re-dispatches, activation order
	freeRetry []*retryCmd

	flushFn func(any) // pre-bound for alloc-free ScheduleArg
	retryFn func(any)

	bus      *telemetry.Bus
	node     radio.NodeID
	batchSeq uint32
	stats    BatcherStats
}

// NewBatcher wraps inner with prefix batching. Batch and option
// capabilities are discovered by type assertion; a protocol with neither
// degrades to a transparent pass-through.
func NewBatcher(eng *sim.Engine, inner sink.Dispatcher, cfg BatcherConfig) *Batcher {
	if eng == nil || inner == nil {
		panic("cmdsvc: NewBatcher requires an engine and a dispatcher")
	}
	b := &Batcher{
		eng:    eng,
		inner:  inner,
		cfg:    cfg.withDefaults(),
		groups: make(map[uint64]*batchGroup),
	}
	b.batch, _ = inner.(batchSender)
	b.opt, _ = inner.(optSender)
	b.flushFn = b.flushArg
	b.retryFn = b.retryArg
	return b
}

// SetCoder installs the destination → path code resolver (normally the
// controller registry). Without one, every command passes through.
func (b *Batcher) SetCoder(fn func(radio.NodeID) (core.PathCode, bool)) { b.coder = fn }

// SetCache attaches a route-freshness cache consulted at dispatch time.
func (b *Batcher) SetCache(c *RouteCache) { b.cache = c }

// SetTelemetry attaches the event bus for batch-membership span events.
func (b *Batcher) SetTelemetry(bus *telemetry.Bus, node radio.NodeID) {
	b.bus = bus
	b.node = node
}

// Stats returns a snapshot of the lifetime counters.
func (b *Batcher) Stats() BatcherStats { return b.stats }

// PendingLen returns the number of buffered, unflushed commands,
// including backed-off re-dispatches awaiting their retry timer.
func (b *Batcher) PendingLen() int {
	n := len(b.retries)
	for _, g := range b.order {
		n += len(g.cmds)
	}
	return n
}

// SendControl implements sink.Dispatcher. Commands for destinations with
// known codes buffer into their prefix group; everything else dispatches
// immediately with unchanged semantics (including synchronous unroutable
// errors). Buffered commands report UID 0 — their wire UIDs are allocated
// at flush and surface on the svc.batch-member telemetry events.
func (b *Batcher) SendControl(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	if b.cfg.Window <= 0 || b.batch == nil || b.coder == nil {
		b.stats.PassThrough++
		return b.sendSingle(dst, app, cb)
	}
	code, ok := b.coder(dst)
	if !ok || code.IsEmpty() {
		b.stats.PassThrough++
		return b.sendSingle(dst, app, cb)
	}
	key := prefixKey(code, b.cfg.Bits)
	g := b.groups[key]
	if g == nil {
		g = b.takeGroup(key)
		b.groups[key] = g
		b.order = append(b.order, g)
		g.timer = b.eng.ScheduleArg(b.cfg.Window, b.flushFn, g)
	}
	payload, _ := app.([]byte) // []byte apps ride the wire as member payloads
	g.cmds = append(g.cmds, pendingCmd{dst: dst, code: code, app: app, payload: payload, cb: cb})
	if len(g.cmds) >= b.cfg.MaxBatch {
		g.timer.Cancel()
		b.flush(g)
	}
	return 0, nil
}

// SendControlRetry implements sink.RetryAware. A re-dispatched operation
// has already failed a full protocol attempt, so it skips the batch
// buffer (another shared carrier would re-expose it to carrier loss) and
// the freshness cache's rescue suppression (the failure is evidence the
// cached confirmation is stale — the entry is dropped). It still waits
// out one batch window before going out as a full-rescue single: an
// immediate re-dispatch dives straight back into the interference that
// just killed the attempt, so the window doubles as retry backoff.
func (b *Batcher) SendControlRetry(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	if b.cache != nil {
		b.cache.InvalidateNode(dst)
	}
	if b.cfg.Window <= 0 {
		return b.inner.SendControl(dst, app, cb) // pass-through mode: unchanged semantics
	}
	b.stats.RetrySingles++
	rc := b.takeRetry()
	rc.dst, rc.app, rc.cb = dst, app, cb
	rc.timer = b.eng.ScheduleArg(b.cfg.Window, b.retryFn, rc)
	b.retries = append(b.retries, rc)
	return 0, nil
}

// retryArg is the ScheduleArg trampoline for backed-off re-dispatches.
func (b *Batcher) retryArg(arg any) { b.fireRetry(arg.(*retryCmd)) }

// fireRetry dispatches one backed-off re-dispatch as a full-rescue
// single. Dispatch errors surface through the command callback (the
// scheduler's synchronous error path already returned nil).
func (b *Batcher) fireRetry(rc *retryCmd) {
	for i, r := range b.retries {
		if r == rc {
			b.retries = append(b.retries[:i], b.retries[i+1:]...)
			break
		}
	}
	dst, app, cb := rc.dst, rc.app, rc.cb
	rc.dst, rc.app, rc.cb, rc.timer = 0, nil, nil, sim.EventRef{}
	b.freeRetry = append(b.freeRetry, rc)
	if _, err := b.inner.SendControl(dst, app, cb); err != nil && cb != nil {
		cb(protocol.Result{Dst: dst})
	}
}

// takeRetry reuses a retired retry slot or allocates a fresh one.
func (b *Batcher) takeRetry() *retryCmd {
	if n := len(b.freeRetry); n > 0 {
		rc := b.freeRetry[n-1]
		b.freeRetry = b.freeRetry[:n-1]
		return rc
	}
	return &retryCmd{}
}

// sendSingle dispatches one command immediately, suppressing the rescue
// probe when the route cache holds a fresh confirmation for it.
func (b *Batcher) sendSingle(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	if b.cache != nil && b.opt != nil && b.cache.Fresh(dst) {
		return b.opt.SendControlWith(dst, app, core.SendOpts{NoRescue: true}, cb)
	}
	return b.inner.SendControl(dst, app, cb)
}

// Drain flushes every open group and fires every backed-off re-dispatch
// immediately, in activation order.
func (b *Batcher) Drain() {
	for len(b.order) > 0 {
		g := b.order[0]
		g.timer.Cancel()
		b.flush(g)
	}
	for len(b.retries) > 0 {
		rc := b.retries[0]
		rc.timer.Cancel()
		b.fireRetry(rc)
	}
}

// flushArg is the ScheduleArg trampoline for window-expiry flushes.
func (b *Batcher) flushArg(arg any) { b.flush(arg.(*batchGroup)) }

// flush closes one group: a lone command goes out as a plain dispatch, two
// or more ride one piggyback carrier. Dispatch errors surface through the
// per-command callbacks (the scheduler's synchronous error path already
// returned nil when the command was buffered).
func (b *Batcher) flush(g *batchGroup) {
	delete(b.groups, g.key)
	b.dropOrder(g)
	switch {
	case len(g.cmds) == 0:
	case len(g.cmds) == 1:
		c := &g.cmds[0]
		b.stats.Singles++
		if _, err := b.sendSingle(c.dst, c.app, c.cb); err != nil && c.cb != nil {
			c.cb(protocol.Result{Dst: c.dst})
		}
	default:
		b.reqBuf = b.reqBuf[:0]
		for i := range g.cmds {
			c := &g.cmds[i]
			if b.cache != nil {
				// Batched members need no rescue suppression (the carrier
				// amortizes the downward leg) but their freshness still
				// feeds the hit/miss accounting.
				b.cache.Fresh(c.dst)
			}
			b.reqBuf = append(b.reqBuf, core.BatchRequest{
				Dst: c.dst, App: c.app, Payload: c.payload, Cb: c.cb,
			})
		}
		uids, err := b.batch.SendControlBatch(b.reqBuf)
		if err != nil {
			for i := range g.cmds {
				if cb := g.cmds[i].cb; cb != nil {
					cb(protocol.Result{Dst: g.cmds[i].dst})
				}
			}
			break
		}
		b.stats.Batches++
		b.stats.BatchedCmds += uint64(len(g.cmds))
		b.batchSeq++
		b.emitBatch(g, uids)
	}
	b.putGroup(g)
}

// emitBatch publishes the batch-membership span: one svc.batch event for
// the carrier and one svc.batch-member per command, linked by Seq.
func (b *Batcher) emitBatch(g *batchGroup, uids []uint32) {
	if !b.bus.Wants(telemetry.LayerSink) {
		return
	}
	common := g.cmds[0].code
	for i := 1; i < len(g.cmds); i++ {
		common = common.Prefix(common.CommonPrefixLen(g.cmds[i].code))
	}
	b.bus.Emit(telemetry.Event{
		Layer: telemetry.LayerSink, Kind: telemetry.KindSvcBatch, Node: b.node,
		Seq: b.batchSeq, Value: float64(len(g.cmds)), Note: common.String(),
	})
	for i := range g.cmds {
		var uid uint32
		if i < len(uids) {
			uid = uids[i]
		}
		b.bus.Emit(telemetry.Event{
			Layer: telemetry.LayerSink, Kind: telemetry.KindSvcBatchMember, Node: b.node,
			Seq: b.batchSeq, Op: uid, UID: uid, Dst: g.cmds[i].dst,
		})
	}
}

// takeGroup reuses a retired group or allocates a fresh one.
func (b *Batcher) takeGroup(key uint64) *batchGroup {
	if n := len(b.free); n > 0 {
		g := b.free[n-1]
		b.free = b.free[:n-1]
		g.key = key
		return g
	}
	return &batchGroup{key: key, cmds: make([]pendingCmd, 0, 8)}
}

// putGroup retires a flushed group to the free list.
func (b *Batcher) putGroup(g *batchGroup) {
	for i := range g.cmds {
		g.cmds[i] = pendingCmd{} // drop app/cb references
	}
	g.cmds = g.cmds[:0]
	g.timer = sim.EventRef{}
	b.free = append(b.free, g)
}

// dropOrder removes g from the activation-order list.
func (b *Batcher) dropOrder(g *batchGroup) {
	for i, o := range b.order {
		if o == g {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

// prefixKey packs the first min(bits, 56) bits of code plus the truncated
// length into one allocation-free comparable key (the string GroupKey
// would allocate per command on the hot path).
func prefixKey(code core.PathCode, bits int) uint64 {
	n := code.Len()
	if bits > 0 && n > bits {
		n = bits
	}
	if n > 56 {
		n = 56
	}
	var k uint64
	for i := 0; i < n; i++ {
		k = k<<1 | uint64(code.Bit(i))
	}
	return k<<8 | uint64(n)
}
