package cmdsvc

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

// nullBatchDispatcher resolves nothing and allocates nothing after its
// uid buffer warms, so it isolates the batcher's own allocation behavior.
type nullBatchDispatcher struct {
	uidSeq uint32
	uids   []uint32
}

func (d *nullBatchDispatcher) SendControl(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	d.uidSeq++
	return d.uidSeq, nil
}

func (d *nullBatchDispatcher) SendControlBatch(reqs []core.BatchRequest) ([]uint32, error) {
	if cap(d.uids) < len(reqs) {
		d.uids = make([]uint32, len(reqs))
	}
	d.uids = d.uids[:len(reqs)]
	for i := range d.uids {
		d.uidSeq++
		d.uids[i] = d.uidSeq
	}
	return d.uids, nil
}

// TestBatcherSteadyStateAllocFree is the alloc contract for the command
// service's hot path: in steady state — group pool, request buffer, order
// list, and engine event pool all warm; telemetry off; cache off — one
// submit→batch→dispatch cycle (MaxBatch submits coalescing into one
// carrier flush) must not allocate. The scheduler above and the protocol
// below have their own budgets; this pins the layer this package adds.
func TestBatcherSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	d := &nullBatchDispatcher{}
	const maxBatch = 8
	b := NewBatcher(eng, d, BatcherConfig{Window: time.Second, Bits: 3, MaxBatch: maxBatch})
	dsts := make([]radio.NodeID, maxBatch)
	codes := make(map[radio.NodeID]core.PathCode, maxBatch)
	base := core.RootCode()
	for i := range dsts {
		dsts[i] = radio.NodeID(2 + i)
		c, err := base.Extend(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		c, err = c.Extend(uint16(i), 4)
		if err != nil {
			t.Fatal(err)
		}
		codes[dsts[i]] = c
	}
	b.SetCoder(func(dst radio.NodeID) (core.PathCode, bool) {
		c, ok := codes[dst]
		return c, ok
	})
	var app any = "cmd" // pre-converted: the interface boxing is not under test
	cb := func(protocol.Result) {}
	cycle := func() {
		for _, dst := range dsts {
			if _, err := b.SendControl(dst, app, cb); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the group pool, request buffer, and event free list.
	for i := 0; i < 8; i++ {
		cycle()
	}
	if got := b.Stats().Batches; got != 8 {
		t.Fatalf("warmup flushed %d batches, want 8", got)
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state batch cycle allocates %v, want 0", allocs)
	}
	// The window-expiry flush path (timer fires instead of MaxBatch) must
	// hold the same contract.
	short := dsts[:maxBatch-1]
	windowCycle := func() {
		for _, dst := range short {
			if _, err := b.SendControl(dst, app, cb); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(eng.Now() + 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		windowCycle()
	}
	if allocs := testing.AllocsPerRun(200, windowCycle); allocs != 0 {
		t.Fatalf("window-expiry batch cycle allocates %v, want 0", allocs)
	}
}
