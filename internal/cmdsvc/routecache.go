package cmdsvc

import (
	"container/list"
	"time"

	"teleadjust/internal/fault"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// CacheConfig tunes the route-freshness cache.
type CacheConfig struct {
	// TTL is how long one confirmation keeps a route fresh. Zero or
	// negative disables the cache entirely.
	TTL time.Duration
	// Cap bounds the number of cached destinations (LRU eviction past it;
	// 0 = unbounded).
	Cap int
}

// CacheStats are the cache's lifetime counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Confirms      uint64
	Invalidations uint64
	Evictions     uint64
}

// HitRate returns hits / (hits + misses).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// rcEntry is one cached confirmation.
type rcEntry struct {
	dst radio.NodeID
	at  time.Duration
}

// RouteCache remembers which destinations recently acknowledged a control
// operation end to end. A fresh entry means the encoded path worked
// moments ago, so the controller can skip the Re-Tele rescue probe on a
// timeout (the probe exists to route around stale code state, which a
// fresh confirmation rules out). Entries expire by TTL, are bounded by an
// LRU cap, and are invalidated eagerly by the telemetry signals that mean
// "this route may have moved": code churn, mid-network give-ups, and
// fault-plan epochs.
//
// The cache also implements telemetry.Sink; subscribe it to the core and
// coding layers to wire up event-driven invalidation.
type RouteCache struct {
	now func() time.Duration
	cfg CacheConfig

	entries map[radio.NodeID]*list.Element
	lru     *list.List // front = most recently confirmed

	// opDst maps live operation ids to their destinations so op-scoped
	// events (give-ups carry only Op/UID) can invalidate the right route.
	opDst    map[uint32]radio.NodeID
	opOrder  []uint32
	opCursor int

	stats CacheStats
}

// maxTrackedOps bounds the op → destination map (give-up events for
// operations older than the window simply miss).
const maxTrackedOps = 1024

// NewRouteCache creates a cache reading virtual time from now.
func NewRouteCache(now func() time.Duration, cfg CacheConfig) *RouteCache {
	return &RouteCache{
		now:     now,
		cfg:     cfg,
		entries: make(map[radio.NodeID]*list.Element),
		lru:     list.New(),
		opDst:   make(map[uint32]radio.NodeID),
	}
}

// Fresh reports whether dst holds an unexpired confirmation, counting the
// lookup as a hit or miss.
func (c *RouteCache) Fresh(dst radio.NodeID) bool {
	el, ok := c.entries[dst]
	if ok {
		e := el.Value.(*rcEntry)
		if c.now()-e.at <= c.cfg.TTL {
			c.stats.Hits++
			return true
		}
		c.remove(el)
	}
	c.stats.Misses++
	return false
}

// Confirm records a successful end-to-end acknowledgement for dst.
func (c *RouteCache) Confirm(dst radio.NodeID) {
	c.stats.Confirms++
	now := c.now()
	if el, ok := c.entries[dst]; ok {
		el.Value.(*rcEntry).at = now
		c.lru.MoveToFront(el)
		return
	}
	if c.cfg.Cap > 0 && c.lru.Len() >= c.cfg.Cap {
		if back := c.lru.Back(); back != nil {
			c.remove(back)
			c.stats.Evictions++
		}
	}
	c.entries[dst] = c.lru.PushFront(&rcEntry{dst: dst, at: now})
}

// InvalidateNode drops dst's confirmation, if any.
func (c *RouteCache) InvalidateNode(dst radio.NodeID) {
	if el, ok := c.entries[dst]; ok {
		c.remove(el)
		c.stats.Invalidations++
	}
}

// Flush drops every confirmation (topology-wide fault epochs).
func (c *RouteCache) Flush() {
	n := c.lru.Len()
	if n == 0 {
		return
	}
	c.lru.Init()
	clear(c.entries)
	c.stats.Invalidations += uint64(n)
}

// Len returns the number of cached confirmations.
func (c *RouteCache) Len() int { return c.lru.Len() }

// Stats returns a snapshot of the lifetime counters.
func (c *RouteCache) Stats() CacheStats { return c.stats }

func (c *RouteCache) remove(el *list.Element) {
	c.lru.Remove(el)
	delete(c.entries, el.Value.(*rcEntry).dst)
}

// Consume implements telemetry.Sink: event-driven invalidation. Subscribe
// the cache to telemetry.LayerCore and telemetry.LayerCoding.
func (c *RouteCache) Consume(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.KindOpIssue:
		c.trackOp(ev.Op, ev.Dst)
	case telemetry.KindCodeChanged:
		// The node's code moved: the registry copy the sink dispatched
		// with is stale until the next report.
		c.InvalidateNode(ev.Node)
	case telemetry.KindOpGiveUp:
		// A relay exhausted its backtrack budget mid-network: the path to
		// that operation's destination is suspect even if a rescue lands.
		if dst, ok := c.opDst[ev.Op]; ok {
			c.InvalidateNode(dst)
		}
	case telemetry.KindOpUnroutable:
		c.InvalidateNode(ev.Dst)
	}
}

// trackOp records op → dst with a bounded ring of tracked operations.
func (c *RouteCache) trackOp(op uint32, dst radio.NodeID) {
	if _, ok := c.opDst[op]; !ok {
		if len(c.opOrder) < maxTrackedOps {
			c.opOrder = append(c.opOrder, op)
		} else {
			delete(c.opDst, c.opOrder[c.opCursor])
			c.opOrder[c.opCursor] = op
			c.opCursor = (c.opCursor + 1) % maxTrackedOps
		}
	}
	c.opDst[op] = dst
}

// OnFault is a fault.Injector epoch hook: fault edges invalidate the
// routes they can move. Link perturbations touch their endpoints; crash,
// reboot, partition, and drop windows can re-parent whole subtrees, so
// they flush the cache.
func (c *RouteCache) OnFault(ev fault.Event, end bool) {
	switch ev.Kind {
	case fault.Link:
		c.InvalidateNode(radio.NodeID(ev.From))
		c.InvalidateNode(radio.NodeID(ev.To))
	default:
		c.Flush()
	}
}
