// Package obs is the streaming observability layer on top of the
// telemetry bus: a time-windowed aggregator that folds the full event
// stream into per-window, per-layer rates and a convergence probe —
// per-node code-assignment/report milestones binned by code-tree depth —
// without retaining any events. Long runs (the 1k–10k-node fields) stay
// observable online: the aggregator costs O(windows + depths) memory for
// an arbitrarily long stream and its steady-state fold is allocation-free.
//
// Determinism matches the rest of the plane: one aggregator serves one
// simulation, window boundaries are fixed multiples of the period from
// t=0, and replicated runs merge their finished reports in seed order, so
// a parallel replication's merged report is byte-identical to a serial
// one — the same regression bar the merged event stream already meets.
package obs

import (
	"time"

	"teleadjust/internal/telemetry"
)

// WindowStats is one closed aggregation window. Event counts are
// per-window; the trailing gauge fields are cumulative snapshots taken at
// window close, so a row reads as "what happened this window, and where
// the run stood when it ended".
type WindowStats struct {
	// Index is the window ordinal; the window covers
	// [Index*Period, (Index+1)*Period).
	Index int
	// Start is the window's opening virtual time.
	Start time.Duration
	// Events counts bus events per layer (indexed by telemetry.Layer).
	Events [telemetry.NumLayers]uint64
	// RadioTx counts frame transmissions (the per-window retransmission
	// pressure gauge; compare against Issued for amplification).
	RadioTx uint64
	// Issued..Rescues count core-layer operation lifecycle milestones.
	Issued     uint64
	Resolved   uint64
	Delivered  uint64
	Retries    uint64
	Backtracks uint64
	Rescues    uint64
	// Coded/Reported/Churn are convergence-probe deltas: nodes obtaining
	// their first code, nodes first appearing in the sink registry, and
	// code churn events within the window.
	Coded    uint64
	Reported uint64
	Churn    uint64
	// InFlight is the number of unresolved control operations at window
	// close; CodedTotal/ReportedTotal are the cumulative unique-node
	// convergence counts at window close.
	InFlight      int
	CodedTotal    int
	ReportedTotal int
}

// DepthStats aggregates convergence milestones for one code-tree depth.
// Sums and maxima (rather than means) keep the bins mergeable across
// replications; the report writers derive means at render time.
type DepthStats struct {
	Depth int
	// Coded/Reported count unique nodes that reached the milestone at
	// this depth; Churn counts code changes by nodes currently at it.
	Coded    int
	Reported int
	Churn    uint64
	// CodeSum/CodeMax aggregate time-to-first-code over the bin's Coded
	// nodes; ReportSum/ReportMax do the same for time-to-first-report.
	CodeSum   time.Duration
	CodeMax   time.Duration
	ReportSum time.Duration
	ReportMax time.Duration
}

// Report is the finished output of one (or several merged) runs.
type Report struct {
	// Period is the window length; Nodes the field size (including the
	// sink); Runs the number of merged replications.
	Period time.Duration
	Nodes  int
	Runs   int
	// Windows holds every closed window in time order; merged reports sum
	// same-index windows across runs.
	Windows []WindowStats
	// Depths holds the convergence bins in ascending depth order, gaps
	// included.
	Depths []DepthStats
}

// Aggregator is a telemetry.Sink folding the stream online. It is bound
// to one run: events must arrive in emission order (the bus guarantees
// this), and window rollover happens lazily when an event or Finalize
// crosses a boundary.
type Aggregator struct {
	period time.Duration
	nodes  int

	cur      WindowStats
	windows  []WindowStats
	onWindow func(WindowStats)

	inflight      int
	codedTotal    int
	reportedTotal int
	coded         []bool
	reported      []bool
	depths        []DepthStats
}

// NewAggregator creates an aggregator for a field of the given size with
// the given window period. The per-node milestone tables are allocated up
// front so the fold path stays allocation-free in steady state.
func NewAggregator(nodes int, period time.Duration) *Aggregator {
	if period <= 0 {
		period = 30 * time.Second
	}
	if nodes < 1 {
		nodes = 1
	}
	return &Aggregator{
		period:   period,
		nodes:    nodes,
		coded:    make([]bool, nodes),
		reported: make([]bool, nodes),
		depths:   make([]DepthStats, 0, 16),
	}
}

// OnWindow registers a callback fired once per closed window, in time
// order — the live progress surface hangs off this.
func (a *Aggregator) OnWindow(fn func(WindowStats)) { a.onWindow = fn }

// Attach subscribes the aggregator to every layer of the bus.
func (a *Aggregator) Attach(bus *telemetry.Bus) { bus.Subscribe(a) }

// Consume implements telemetry.Sink. Steady state allocates nothing: the
// only growth is the windows slice (amortized, one append per period) and
// the depth bins (bounded by tree depth).
func (a *Aggregator) Consume(ev telemetry.Event) {
	// Close every window the stream has moved past before folding the
	// event, so cumulative snapshots reflect state exactly at each close.
	for idx := int(ev.At / a.period); a.cur.Index < idx; {
		a.closeWindow()
	}
	a.cur.Events[ev.Layer]++
	switch ev.Kind {
	case telemetry.KindRadioTx:
		a.cur.RadioTx++
	case telemetry.KindOpIssue:
		a.cur.Issued++
		a.inflight++
	case telemetry.KindOpResult:
		a.cur.Resolved++
		a.inflight--
	case telemetry.KindOpDelivered:
		a.cur.Delivered++
	case telemetry.KindOpRetry:
		a.cur.Retries++
	case telemetry.KindOpBacktrack:
		a.cur.Backtracks++
	case telemetry.KindOpRescue:
		a.cur.Rescues++
	case telemetry.KindCodeAssigned:
		d := a.depthBin(int(ev.Hops))
		if n := int(ev.Node); n < len(a.coded) && !a.coded[n] {
			a.coded[n] = true
			a.codedTotal++
			a.cur.Coded++
			d.Coded++
			d.CodeSum += ev.At
			if ev.At > d.CodeMax {
				d.CodeMax = ev.At
			}
		}
	case telemetry.KindCodeChanged:
		a.cur.Churn++
		a.depthBin(int(ev.Hops)).Churn++
	case telemetry.KindCodeReported:
		d := a.depthBin(int(ev.Hops))
		if n := int(ev.Src); n < len(a.reported) && !a.reported[n] {
			a.reported[n] = true
			a.reportedTotal++
			a.cur.Reported++
			d.Reported++
			d.ReportSum += ev.At
			if ev.At > d.ReportMax {
				d.ReportMax = ev.At
			}
		}
	}
}

// depthBin returns the stats bin for a depth, growing the table through
// it (growth is rare: bounded by the field's tree depth).
func (a *Aggregator) depthBin(depth int) *DepthStats {
	for len(a.depths) <= depth {
		a.depths = append(a.depths, DepthStats{Depth: len(a.depths)})
	}
	return &a.depths[depth]
}

// closeWindow snapshots the cumulative gauges into the open window,
// publishes it, and opens the next one.
func (a *Aggregator) closeWindow() {
	a.cur.InFlight = a.inflight
	a.cur.CodedTotal = a.codedTotal
	a.cur.ReportedTotal = a.reportedTotal
	a.windows = append(a.windows, a.cur)
	if a.onWindow != nil {
		a.onWindow(a.cur)
	}
	a.cur = WindowStats{Index: a.cur.Index + 1,
		Start: time.Duration(a.cur.Index+1) * a.period}
}

// Finalize closes every window through the run's end time and returns
// the finished report. Trailing event-free windows are emitted (with
// carried cumulative gauges), so reports of equal-length runs align
// window for window regardless of where their last events fell.
func (a *Aggregator) Finalize(end time.Duration) *Report {
	last := a.cur.Index
	if end > 0 {
		if idx := int((end - 1) / a.period); idx > last {
			last = idx
		}
	}
	for a.cur.Index <= last {
		a.closeWindow()
	}
	r := &Report{
		Period:  a.period,
		Nodes:   a.nodes,
		Runs:    1,
		Windows: a.windows,
		Depths:  a.depths,
	}
	a.windows = nil
	return r
}

// Merge combines per-replication reports in slice order (the caller
// guarantees seed order), summing same-index windows and same-depth bins.
// Merging in seed order keeps a parallel replication's report
// byte-identical to a serial one. Nil reports are skipped; nil is
// returned when nothing remains.
func Merge(reports ...*Report) *Report {
	var out *Report
	for _, r := range reports {
		if r == nil {
			continue
		}
		if out == nil {
			c := *r
			c.Windows = append([]WindowStats(nil), r.Windows...)
			c.Depths = append([]DepthStats(nil), r.Depths...)
			out = &c
			continue
		}
		out.Nodes += r.Nodes
		out.Runs += r.Runs
		for i, w := range r.Windows {
			for len(out.Windows) <= i {
				n := len(out.Windows)
				out.Windows = append(out.Windows, WindowStats{
					Index: n, Start: time.Duration(n) * out.Period})
			}
			mergeWindow(&out.Windows[i], &w)
		}
		for _, d := range r.Depths {
			for len(out.Depths) <= d.Depth {
				out.Depths = append(out.Depths, DepthStats{Depth: len(out.Depths)})
			}
			mergeDepth(&out.Depths[d.Depth], &d)
		}
	}
	return out
}

func mergeWindow(dst, src *WindowStats) {
	for l := range dst.Events {
		dst.Events[l] += src.Events[l]
	}
	dst.RadioTx += src.RadioTx
	dst.Issued += src.Issued
	dst.Resolved += src.Resolved
	dst.Delivered += src.Delivered
	dst.Retries += src.Retries
	dst.Backtracks += src.Backtracks
	dst.Rescues += src.Rescues
	dst.Coded += src.Coded
	dst.Reported += src.Reported
	dst.Churn += src.Churn
	dst.InFlight += src.InFlight
	dst.CodedTotal += src.CodedTotal
	dst.ReportedTotal += src.ReportedTotal
}

func mergeDepth(dst, src *DepthStats) {
	dst.Coded += src.Coded
	dst.Reported += src.Reported
	dst.Churn += src.Churn
	dst.CodeSum += src.CodeSum
	dst.ReportSum += src.ReportSum
	if src.CodeMax > dst.CodeMax {
		dst.CodeMax = src.CodeMax
	}
	if src.ReportMax > dst.ReportMax {
		dst.ReportMax = src.ReportMax
	}
}
