package obs

import (
	"fmt"
	"io"
	"time"
)

// ProgressPrinter returns a window callback rendering one live status
// line per closed window — the CLI's progress surface for multi-minute
// studies. nodes is the field size including the sink; period is the
// aggregation window (each line is stamped with its window's end time).
func ProgressPrinter(w io.Writer, nodes int, period time.Duration) func(WindowStats) {
	nonSink := nodes - 1
	if nonSink < 1 {
		nonSink = 1
	}
	return func(win WindowStats) {
		fmt.Fprintf(w, "[%8s] coded %d/%d (%.1f%%) reporting %d churn %d | ops %d issued %d ok %d in-flight | retries %d radio-tx %d\n",
			(win.Start + period).Round(time.Second),
			win.CodedTotal, nonSink, 100*float64(win.CodedTotal)/float64(nonSink),
			win.ReportedTotal, win.Churn,
			win.Issued, win.Resolved, win.InFlight,
			win.Retries, win.RadioTx)
	}
}
