package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"teleadjust/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// checkGolden compares got against testdata/<name>, rewriting the file
// when the test runs with -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// feed drives a synthetic event stream through a real bus (so the
// aggregator is exercised exactly as a subscriber) with a controllable
// virtual clock.
func feed(a *Aggregator, events []telemetry.Event) {
	var now time.Duration
	bus := telemetry.NewBus(func() time.Duration { return now })
	a.Attach(bus)
	for _, ev := range events {
		now = ev.At
		bus.Emit(ev)
	}
}

func TestAggregatorWindowsAndConvergenceProbe(t *testing.T) {
	a := NewAggregator(8, 10*time.Second)
	feed(a, []telemetry.Event{
		// Window 0: two nodes code at depth 1, one reports, one op issues.
		{At: 1 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 1, Hops: 1},
		{At: 2 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 2, Hops: 1},
		{At: 2 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeReported, Node: 0, Src: 1, Hops: 1},
		{At: 3 * time.Second, Layer: telemetry.LayerCore, Kind: telemetry.KindOpIssue, Node: 0, Op: 7},
		// Window 2 (window 1 is an empty gap): depth-2 milestones, churn,
		// the op resolves; a duplicate assignment and report must not
		// double-count their nodes.
		{At: 21 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 3, Hops: 2},
		{At: 22 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeChanged, Node: 1, Hops: 1},
		{At: 22 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 3, Hops: 2},
		{At: 23 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeReported, Node: 0, Src: 1, Hops: 1},
		{At: 24 * time.Second, Layer: telemetry.LayerCore, Kind: telemetry.KindOpResult, Node: 0, Op: 7, Value: 1},
	})
	r := a.Finalize(40 * time.Second)

	if len(r.Windows) != 4 {
		t.Fatalf("got %d windows, want 4 (finalize pads through 40s)", len(r.Windows))
	}
	w0 := r.Windows[0]
	if w0.Coded != 2 || w0.Reported != 1 || w0.Issued != 1 || w0.InFlight != 1 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if w0.CodedTotal != 2 || w0.ReportedTotal != 1 {
		t.Fatalf("window 0 totals = %+v", w0)
	}
	w1 := r.Windows[1]
	if w1.Coded != 0 || w1.CodedTotal != 2 || w1.InFlight != 1 {
		t.Fatalf("gap window carried wrong state: %+v", w1)
	}
	w2 := r.Windows[2]
	if w2.Coded != 1 || w2.Churn != 1 || w2.Reported != 0 || w2.Resolved != 1 || w2.InFlight != 0 {
		t.Fatalf("window 2 = %+v", w2)
	}
	if w2.CodedTotal != 3 || w2.ReportedTotal != 1 {
		t.Fatalf("window 2 totals = %+v", w2)
	}
	w3 := r.Windows[3]
	if w3.Start != 30*time.Second || w3.Events != ([telemetry.NumLayers]uint64{}) {
		t.Fatalf("trailing pad window = %+v", w3)
	}

	if len(r.Depths) != 3 {
		t.Fatalf("got %d depth bins, want 3 (0..2)", len(r.Depths))
	}
	d1 := r.Depths[1]
	if d1.Coded != 2 || d1.Reported != 1 || d1.Churn != 1 {
		t.Fatalf("depth 1 = %+v", d1)
	}
	if d1.CodeSum != 3*time.Second || d1.CodeMax != 2*time.Second {
		t.Fatalf("depth 1 code times = %+v", d1)
	}
	if d1.ReportSum != 2*time.Second || d1.ReportMax != 2*time.Second {
		t.Fatalf("depth 1 report times (first report only) = %+v", d1)
	}
	d2 := r.Depths[2]
	if d2.Coded != 1 || d2.CodeSum != 21*time.Second {
		t.Fatalf("depth 2 = %+v", d2)
	}
	if r.CodedTotal() != 3 || r.ReportedTotal() != 1 {
		t.Fatalf("report totals: coded=%d reported=%d", r.CodedTotal(), r.ReportedTotal())
	}
}

// TestAggregatorClosesBoundaryBeforeFold pins the rollover order: an
// event that crosses a window boundary must close the previous window
// first, so cumulative snapshots describe state exactly at window end.
func TestAggregatorClosesBoundaryBeforeFold(t *testing.T) {
	a := NewAggregator(4, 10*time.Second)
	var got []WindowStats
	a.OnWindow(func(w WindowStats) { got = append(got, w) })
	feed(a, []telemetry.Event{
		{At: 9 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 1, Hops: 1},
		{At: 10 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 2, Hops: 1},
	})
	if len(got) != 1 {
		t.Fatalf("crossing one boundary closed %d windows", len(got))
	}
	if got[0].CodedTotal != 1 {
		t.Fatalf("window 0 closed with CodedTotal=%d; the boundary event leaked in", got[0].CodedTotal)
	}
	r := a.Finalize(20 * time.Second)
	if r.Windows[1].Coded != 1 || r.Windows[1].CodedTotal != 2 {
		t.Fatalf("window 1 = %+v", r.Windows[1])
	}
}

// goldenReport is a hand-built fixture exercising every column of the
// convergence report and CSV.
func goldenReport() *Report {
	r := &Report{Period: 30 * time.Second, Nodes: 10, Runs: 2}
	w0 := WindowStats{Index: 0, Start: 0,
		RadioTx: 240, Issued: 2, Resolved: 1, Delivered: 1, Retries: 3, Backtracks: 1,
		Coded: 5, Reported: 2, Churn: 1, InFlight: 1, CodedTotal: 5, ReportedTotal: 2}
	w0.Events = [telemetry.NumLayers]uint64{240, 95, 31, 2, 0, 8}
	w1 := WindowStats{Index: 1, Start: 30 * time.Second,
		RadioTx: 180, Issued: 1, Resolved: 2, Delivered: 1, Rescues: 1,
		Coded: 3, Reported: 4, Churn: 2, InFlight: 0, CodedTotal: 8, ReportedTotal: 6}
	w1.Events = [telemetry.NumLayers]uint64{180, 60, 18, 2, 0, 9}
	r.Windows = []WindowStats{w0, w1}
	r.Depths = []DepthStats{
		{Depth: 0},
		{Depth: 1, Coded: 4, Reported: 4, Churn: 1,
			CodeSum: 40 * time.Second, CodeMax: 15 * time.Second,
			ReportSum: 100 * time.Second, ReportMax: 30 * time.Second},
		{Depth: 2, Coded: 4, Reported: 2, Churn: 2,
			CodeSum: 100 * time.Second, CodeMax: 35 * time.Second,
			ReportSum: 90 * time.Second, ReportMax: 50 * time.Second},
	}
	return r
}

func TestConvergenceReportGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteConvergenceReport(&buf, goldenReport())
	checkGolden(t, "convergence_report.golden", buf.Bytes())
}

func TestConvergenceCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteConvergenceCSV(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "convergence_csv.golden", buf.Bytes())
}

func TestMergeSumsInSliceOrder(t *testing.T) {
	a := NewAggregator(4, 10*time.Second)
	feed(a, []telemetry.Event{
		{At: 1 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 1, Hops: 1},
	})
	ra := a.Finalize(20 * time.Second)
	b := NewAggregator(4, 10*time.Second)
	feed(b, []telemetry.Event{
		{At: 1 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 2, Hops: 1},
		{At: 11 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 3, Hops: 2},
	})
	rb := b.Finalize(20 * time.Second)

	m := Merge(ra, rb)
	if m.Runs != 2 || m.Nodes != 8 {
		t.Fatalf("merged runs/nodes = %d/%d", m.Runs, m.Nodes)
	}
	if len(m.Windows) != 2 {
		t.Fatalf("merged %d windows, want 2", len(m.Windows))
	}
	if m.Windows[0].Coded != 2 || m.Windows[1].CodedTotal != 3 {
		t.Fatalf("merged windows = %+v", m.Windows)
	}
	if len(m.Depths) != 3 || m.Depths[1].Coded != 2 || m.Depths[2].Coded != 1 {
		t.Fatalf("merged depths = %+v", m.Depths)
	}
	// Merge must not mutate its first input (replication results are
	// shared with per-seed consumers).
	if ra.Windows[0].Coded != 1 || ra.Nodes != 4 {
		t.Fatal("Merge mutated its input report")
	}
	if Merge(nil, nil) != nil {
		t.Fatal("merging nothing must yield nil")
	}
}

func TestProgressPrinterLine(t *testing.T) {
	var buf bytes.Buffer
	fn := ProgressPrinter(&buf, 1024, 30*time.Second)
	fn(WindowStats{Index: 10, Start: 300 * time.Second,
		CodedTotal: 412, ReportedTotal: 298, Churn: 18,
		Issued: 4, Resolved: 3, InFlight: 2, Retries: 5, RadioTx: 10234})
	line := buf.String()
	for _, want := range []string{"5m30s", "coded 412/1023 (40.3%)", "reporting 298",
		"churn 18", "ops 4 issued 3 ok 2 in-flight", "retries 5 radio-tx 10234"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
}

// TestFoldAllocFree is the aggregator's half of the telemetry hot-path
// allocation contract: once the window and depth tables exist, folding
// an event allocates nothing.
func TestFoldAllocFree(t *testing.T) {
	a := NewAggregator(64, 30*time.Second)
	// Prime the depth table so steady state starts.
	a.Consume(telemetry.Event{At: time.Second, Layer: telemetry.LayerCoding,
		Kind: telemetry.KindCodeAssigned, Node: 1, Hops: 8})
	events := []telemetry.Event{
		{At: 2 * time.Second, Layer: telemetry.LayerRadio, Kind: telemetry.KindRadioTx, Node: 3},
		{At: 2 * time.Second, Layer: telemetry.LayerCore, Kind: telemetry.KindOpIssue, Node: 0, Op: 9},
		{At: 3 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeChanged, Node: 1, Hops: 8},
		{At: 3 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 1, Hops: 8},
		{At: 4 * time.Second, Layer: telemetry.LayerCore, Kind: telemetry.KindOpResult, Node: 0, Op: 9},
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, ev := range events {
			a.Consume(ev)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state fold allocates %.1f times per batch, want 0", allocs)
	}
}

// BenchmarkAggregatorFold measures the per-event fold cost — the price
// the progress surface adds to every emitted event of a traced run.
func BenchmarkAggregatorFold(b *testing.B) {
	a := NewAggregator(1024, 30*time.Second)
	events := []telemetry.Event{
		{At: time.Second, Layer: telemetry.LayerRadio, Kind: telemetry.KindRadioTx, Node: 3},
		{At: time.Second, Layer: telemetry.LayerMAC, Kind: telemetry.KindMacSendAcked, Node: 3},
		{At: 2 * time.Second, Layer: telemetry.LayerCoding, Kind: telemetry.KindCodeAssigned, Node: 5, Hops: 4},
		{At: 2 * time.Second, Layer: telemetry.LayerCore, Kind: telemetry.KindOpIssue, Node: 0, Op: 3},
		{At: 3 * time.Second, Layer: telemetry.LayerCore, Kind: telemetry.KindOpResult, Node: 0, Op: 3},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Consume(events[i%len(events)])
	}
}
