package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"teleadjust/internal/telemetry"
)

// nonSink returns the number of codable nodes (the field minus one sink
// per run): the denominator of every convergence fraction.
func (r *Report) nonSink() int {
	n := r.Nodes - r.Runs
	if n < 1 {
		n = 1
	}
	return n
}

// CodedTotal returns the cumulative unique nodes coded at the end of the
// run (0 when no window closed).
func (r *Report) CodedTotal() int {
	if len(r.Windows) == 0 {
		return 0
	}
	return r.Windows[len(r.Windows)-1].CodedTotal
}

// ReportedTotal returns the cumulative unique nodes in the sink registry
// at the end of the run.
func (r *Report) ReportedTotal() int {
	if len(r.Windows) == 0 {
		return 0
	}
	return r.Windows[len(r.Windows)-1].ReportedTotal
}

// WriteConvergenceReport renders the depth-binned convergence curve and
// the windowed rate table: where the path-code cascade stands, how long
// each tree level took to code and report, and what every window of the
// run looked like across the layers.
func WriteConvergenceReport(w io.Writer, r *Report) {
	fmt.Fprintf(w, "=== Convergence: %d/%d nodes coded, %d reporting (window %s, %d run(s), %d nodes) ===\n",
		r.CodedTotal(), r.nonSink(), r.ReportedTotal(), r.Period, r.Runs, r.Nodes)

	fmt.Fprintln(w, "\ncascade by code-tree depth (time to first code / first report, s):")
	fmt.Fprintf(w, "%5s %6s %9s %6s %11s %10s %10s %10s\n",
		"depth", "coded", "reporting", "churn", "t-code-mean", "t-code-max", "t-rep-mean", "t-rep-max")
	for _, d := range r.Depths {
		if d.Depth == 0 || (d.Coded == 0 && d.Reported == 0 && d.Churn == 0) {
			continue
		}
		fmt.Fprintf(w, "%5d %6d %9d %6d %11s %10s %10s %10s\n",
			d.Depth, d.Coded, d.Reported, d.Churn,
			meanSeconds(d.CodeSum, d.Coded), seconds(d.CodeMax),
			meanSeconds(d.ReportSum, d.Reported), seconds(d.ReportMax))
	}

	fmt.Fprintln(w, "\nwindowed rates (counts per window; totals at window close):")
	fmt.Fprintf(w, "%4s %8s %6s %6s %6s %6s %9s %4s %4s %6s %8s %7s %7s %6s %6s\n",
		"win", "t-start", "coded", "total", "rept'g", "churn",
		"in-flight", "iss", "ok", "retry", "radio-tx", "mac-ev", "core-ev", "run-ev", "cd-ev")
	for _, win := range r.Windows {
		fmt.Fprintf(w, "%4d %8s %6d %6d %6d %6d %9d %4d %4d %6d %8d %7d %7d %6d %6d\n",
			win.Index, seconds(win.Start), win.Coded, win.CodedTotal,
			win.ReportedTotal, win.Churn, win.InFlight,
			win.Issued, win.Resolved, win.Retries, win.RadioTx,
			win.Events[telemetry.LayerMAC], win.Events[telemetry.LayerCore],
			win.Events[telemetry.LayerRun], win.Events[telemetry.LayerCoding])
	}
}

func seconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 1, 64)
}

func meanSeconds(sum time.Duration, n int) string {
	if n == 0 {
		return "n/a"
	}
	return strconv.FormatFloat(sum.Seconds()/float64(n), 'f', 1, 64)
}

// WriteConvergenceCSV exports the windowed aggregates, one row per
// window with every layer's event count — the machine-readable twin of
// the report for external plotting.
func WriteConvergenceCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	header := []string{"window", "t_start_s",
		"coded", "coded_total", "reported", "reported_total", "churn", "in_flight",
		"issued", "resolved", "delivered", "retries", "backtracks", "rescues", "radio_tx"}
	for l := 0; l < telemetry.NumLayers; l++ {
		header = append(header, "ev_"+telemetry.Layer(l).String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, win := range r.Windows {
		rec := []string{strconv.Itoa(win.Index),
			strconv.FormatFloat(win.Start.Seconds(), 'g', 6, 64),
			u(win.Coded), strconv.Itoa(win.CodedTotal),
			u(win.Reported), strconv.Itoa(win.ReportedTotal),
			u(win.Churn), strconv.Itoa(win.InFlight),
			u(win.Issued), u(win.Resolved), u(win.Delivered),
			u(win.Retries), u(win.Backtracks), u(win.Rescues), u(win.RadioTx)}
		for l := 0; l < telemetry.NumLayers; l++ {
			rec = append(rec, u(win.Events[l]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("convergence csv: %w", err)
	}
	return nil
}
