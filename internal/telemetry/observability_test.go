package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSampleOpsKeepsWholeSpans(t *testing.T) {
	var events []Event
	for op := uint32(1); op <= 6; op++ {
		events = append(events,
			Event{Layer: LayerCore, Kind: KindOpIssue, Op: op, UID: op},
			Event{Layer: LayerCore, Kind: KindOpForward, Op: op, UID: op},
			Event{Layer: LayerCore, Kind: KindOpResult, Op: op, UID: op, Value: 1},
		)
	}
	events = append(events, Event{Layer: LayerCoding, Kind: KindCodeAssigned, Node: 3, Hops: 1})

	sampled := SampleOps(events, 3)
	ops := map[uint32]int{}
	milestones := 0
	for _, ev := range sampled {
		if ev.Op == 0 {
			milestones++
			continue
		}
		ops[ev.Op]++
	}
	if len(ops) != 2 || ops[3] != 3 || ops[6] != 3 {
		t.Fatalf("1-in-3 sample kept ops %v, want complete spans for ops 3 and 6", ops)
	}
	if milestones != 1 {
		t.Fatalf("op-less events must always survive sampling (got %d)", milestones)
	}
	if spans := BuildOpSpans(sampled); len(spans) != 2 || !spans[0].HasResult {
		t.Fatalf("span building on the sampled stream broke: %d spans", len(spans))
	}
	if got := SampleOps(events, 1); len(got) != len(events) {
		t.Fatalf("n=1 must be a passthrough, got %d/%d events", len(got), len(events))
	}
}

// TestBusEmitNoSubscriberAllocFree pins the disabled-path contract in
// allocation terms: emitting to a bus nobody (or nobody on this layer)
// listens to must not allocate — the single mask test is the whole cost.
func TestBusEmitNoSubscriberAllocFree(t *testing.T) {
	empty := NewBus(func() time.Duration { return 0 })
	otherLayer := NewBus(func() time.Duration { return 0 })
	otherLayer.Subscribe(NewCollector(), LayerSink)
	ev := Event{Layer: LayerCore, Kind: KindOpIssue, Op: 1, UID: 1}
	for name, b := range map[string]*Bus{"empty": empty, "other-layer": otherLayer, "nil": nil} {
		allocs := testing.AllocsPerRun(1000, func() { b.Emit(ev) })
		if allocs != 0 {
			t.Fatalf("Emit on %s bus allocates %.1f/op, want 0", name, allocs)
		}
	}
}

// TestRegistryRebootRebinding models a mote reboot: the fresh stack binds
// new counter storage under the same key, the registry must read the new
// (zeroed) storage, and writes through the stale pre-reboot handle must
// no longer be visible anywhere.
func TestRegistryRebootRebinding(t *testing.T) {
	r := NewRegistry()
	var gen1 uint64
	old := r.BindCounter(LayerCore, 7, "control-sends", &gen1)
	old.Add(41)
	if got := r.CounterValue(LayerCore, 7, "control-sends"); got != 41 {
		t.Fatalf("pre-reboot counter = %d, want 41", got)
	}

	var gen2 uint64
	fresh := r.BindCounter(LayerCore, 7, "control-sends", &gen2)
	if got := r.CounterValue(LayerCore, 7, "control-sends"); got != 0 {
		t.Fatalf("rebound counter = %d, want 0 (volatile state lost)", got)
	}
	old.Inc() // the dead stack's handle still works, but writes go nowhere visible
	fresh.Add(3)
	if got := r.CounterValue(LayerCore, 7, "control-sends"); got != 3 {
		t.Fatalf("post-reboot counter = %d, want 3", got)
	}
	if sum := r.SumCounters(LayerCore, "control-sends"); sum != 3 {
		t.Fatalf("SumCounters = %d, want 3 (stale binding leaked)", sum)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 3 {
		t.Fatalf("snapshot after rebinding = %+v", snap)
	}
}

// TestOpSpanTruncatedByRunEnd covers lifecycles cut off by the end of the
// run: an operation with no terminal result must build a span that says
// so rather than invent an outcome.
func TestOpSpanTruncatedByRunEnd(t *testing.T) {
	events := []Event{
		// Op 1: issued and forwarded, then the run ended — unresolved.
		{At: 10 * time.Second, Layer: LayerCore, Kind: KindOpIssue, Node: 0, Op: 1, UID: 1, Dst: 5},
		{At: 11 * time.Second, Layer: LayerCore, Kind: KindOpForward, Node: 2, Op: 1, UID: 1, Dst: 5},
		// Op 2: consumed at the destination but the e2e ack never made it
		// back before run end — delivered, no result.
		{At: 12 * time.Second, Layer: LayerCore, Kind: KindOpIssue, Node: 0, Op: 2, UID: 2, Dst: 6},
		{At: 14 * time.Second, Layer: LayerCore, Kind: KindOpConsume, Node: 6, Op: 2, UID: 2},
	}
	spans := BuildOpSpans(events)
	if len(spans) != 2 {
		t.Fatalf("built %d spans, want 2", len(spans))
	}
	cut := spans[0]
	if cut.HasResult || cut.Delivered || cut.Dst != 5 || len(cut.Attempts) != 1 {
		t.Fatalf("truncated span = %+v", cut)
	}
	if cut.Latency != 0 {
		t.Fatalf("truncated span invented a latency: %v", cut.Latency)
	}
	noAck := spans[1]
	if noAck.HasResult || !noAck.Delivered {
		t.Fatalf("delivered-no-ack span = %+v", noAck)
	}

	var buf bytes.Buffer
	if err := RenderOpSpans(&buf, events, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unresolved") {
		t.Fatalf("render of a truncated op must say unresolved:\n%s", out)
	}
	if !strings.Contains(out, "delivered (no e2e result)") {
		t.Fatalf("render of a delivered-no-ack op must say so:\n%s", out)
	}
}
