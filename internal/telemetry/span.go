package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"

	"teleadjust/internal/radio"
)

// OpSpan is one control operation's reconstructed lifecycle: every event
// sharing the operation id, grouped by wire attempt (the Re-Tele rescue
// travels under a fresh UID within the same operation).
type OpSpan struct {
	Run int
	Op  uint32
	// Dst is the operation's true destination (from the issue event, or
	// the first event naming one).
	Dst       radio.NodeID
	IssuedAt  time.Duration
	Delivered bool
	ResultOK  bool
	HasResult bool
	Latency   time.Duration
	// Attempts holds the wire attempts in first-seen order.
	Attempts []*OpAttempt
	// Events is every event of the span in emission order.
	Events []Event
}

// OpAttempt is one wire attempt (UID) of an operation.
type OpAttempt struct {
	UID    uint32
	Detour bool
	Events []Event
}

// BuildOpSpans reconstructs operation spans from an event stream. Events
// without an operation id are skipped. Spans come back ordered by
// (Run, first event index) so the output is deterministic.
func BuildOpSpans(events []Event) []*OpSpan {
	type key struct {
		run int
		op  uint32
	}
	idx := make(map[key]*OpSpan)
	var order []*OpSpan
	for _, ev := range events {
		if ev.Op == 0 {
			continue
		}
		k := key{run: ev.Run, op: ev.Op}
		sp, ok := idx[k]
		if !ok {
			sp = &OpSpan{Run: ev.Run, Op: ev.Op, IssuedAt: ev.At}
			idx[k] = sp
			order = append(order, sp)
		}
		sp.Events = append(sp.Events, ev)
		switch ev.Kind {
		case KindOpIssue:
			sp.IssuedAt = ev.At
			sp.Dst = ev.Dst
		case KindOpRescue:
			// The detour target is ev.Dst; the true destination stands.
		case KindOpConsume, KindOpDelivered:
			sp.Delivered = true
		case KindOpResult:
			sp.HasResult = true
			sp.ResultOK = ev.Value > 0
			sp.Latency = ev.At - sp.IssuedAt
		}
		if sp.Dst == 0 && (ev.Kind == KindOpForward || ev.Kind == KindOpDelivered) {
			sp.Dst = ev.Dst
		}
		// Events with no wire UID (the harness's uniform op.delivered
		// notifications) belong to the span, not to any attempt.
		uid := ev.UID
		if uid == 0 {
			continue
		}
		var at *OpAttempt
		for _, a := range sp.Attempts {
			if a.UID == uid {
				at = a
				break
			}
		}
		if at == nil {
			at = &OpAttempt{UID: uid}
			sp.Attempts = append(sp.Attempts, at)
		}
		if ev.Kind == KindOpRescue || ev.Kind == KindOpDetourLeg {
			at.Detour = true
		}
		at.Events = append(at.Events, ev)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Run != order[j].Run {
			return order[i].Run < order[j].Run
		}
		return false // stable: keep first-seen order within a run
	})
	return order
}

// RenderOpSpans writes a human-readable span tree for every operation
// matching the filter (nil renders all). Event times are printed relative
// to the operation's issue time.
func RenderOpSpans(w io.Writer, events []Event, match func(*OpSpan) bool) error {
	spans := BuildOpSpans(events)
	rendered := 0
	for _, sp := range spans {
		if match != nil && !match(sp) {
			continue
		}
		rendered++
		if err := renderSpan(w, sp); err != nil {
			return err
		}
	}
	if rendered == 0 {
		_, err := fmt.Fprintln(w, "no matching operation spans")
		return err
	}
	return nil
}

func renderSpan(w io.Writer, sp *OpSpan) error {
	status := "unresolved"
	switch {
	case sp.HasResult && sp.ResultOK:
		status = fmt.Sprintf("ok latency=%v", sp.Latency)
	case sp.HasResult:
		status = "FAILED"
	case sp.Delivered:
		status = "delivered (no e2e result)"
	}
	header := fmt.Sprintf("op %d → node %d  issued %v  %s", sp.Op, sp.Dst, sp.IssuedAt, status)
	if sp.Run > 0 {
		header = fmt.Sprintf("run %d  %s", sp.Run, header)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, at := range sp.Attempts {
		label := fmt.Sprintf("  attempt uid=%d", at.UID)
		if at.Detour {
			label += " (re-tele detour)"
		}
		if _, err := fmt.Fprintln(w, label); err != nil {
			return err
		}
		for _, ev := range at.Events {
			if _, err := fmt.Fprintf(w, "    %+12v  node %-4d %-16s%s\n",
				ev.At-sp.IssuedAt, ev.Node, ev.Kind, eventDetail(ev)); err != nil {
				return err
			}
		}
	}
	return nil
}

// eventDetail renders the kind-specific scalars of one span line.
func eventDetail(ev Event) string {
	s := ""
	if ev.Dst != 0 && ev.Kind != KindRadioRxOK && ev.Kind != KindRadioRxCorrupt {
		s += fmt.Sprintf(" dst=%d", ev.Dst)
	}
	if ev.Hops > 0 {
		s += fmt.Sprintf(" hops=%d", ev.Hops)
	}
	switch ev.Kind {
	case KindRadioRxOK, KindRadioRxCorrupt:
		s += fmt.Sprintf(" src=%d sinr=%.1fdB", ev.Src, ev.Value)
	case KindOpRetry:
		s += fmt.Sprintf(" attempts-left=%.0f", ev.Value)
	case KindOpResult:
		if ev.Value > 0 {
			s += " ok"
		} else {
			s += " failed"
		}
	case KindOpE2EAck:
		s += fmt.Sprintf(" latency=%.3fs", ev.Value)
	}
	if ev.Note != "" {
		s += " " + ev.Note
	}
	return s
}
