// Package telemetry is the unified observability plane of the simulator:
// a simulation-time-stamped event bus crossing the radio, MAC, and
// control-protocol layers, a cross-layer metrics registry with typed
// counter/gauge/histogram handles, JSONL export, and a human-readable
// span renderer for per-operation lifecycle traces.
//
// Design constraints, in order:
//
//   - Determinism. Events are emitted synchronously from the simulation
//     loop and carry the virtual clock, so a run's event stream is a pure
//     function of its seed. Replicated runs keep one bus per replication
//     and merge collected events in seed order, which keeps parallel
//     replication byte-identical to serial.
//   - Near-free when disabled. A bus with no subscriber for a layer
//     rejects emissions on a single mask test; emitting components guard
//     their hot paths with Wants so no event structs are built for
//     layers nobody listens to.
//   - One stream, many consumers. The protocol invariant oracle, the
//     figure aggregations, and the operation traces all read the same
//     events, so they cannot disagree about what happened on the air.
package telemetry

import (
	"time"

	"teleadjust/internal/radio"
)

// Layer identifies the emitting subsystem of an event or metric.
type Layer uint8

// Layers, bottom up.
const (
	// LayerRadio events mirror the medium trace: frame transmissions and
	// reception outcomes.
	LayerRadio Layer = iota
	// LayerMAC events cover the link-layer send lifecycle: stream starts,
	// ack/failure outcomes, anycast suppression, implicit-ack cancels.
	LayerMAC
	// LayerCore events trace control operations end to end: issue, relay
	// decisions, retries, backtracking, interception, rescue, delivery,
	// and the end-to-end result.
	LayerCore
	// LayerRun events are emitted by the experiment harness itself
	// (uniform per-protocol delivery notifications, phase markers).
	LayerRun
	// LayerSink events trace the sink command plane's queueing decisions:
	// enqueue, admission, retry re-queues, and final completion of each
	// scheduled control operation.
	LayerSink
	// LayerCoding events mark path-code cascade milestones per node: first
	// code assignment, code churn, and the sink registry learning a node's
	// code. A separate layer (not LayerCore) so the golden-pinned
	// operation traces stay byte-identical when a convergence probe
	// subscribes.
	LayerCoding

	numLayers = 6
)

// NumLayers is the number of defined layers; consumers aggregating
// per-layer state size their tables with it.
const NumLayers = int(numLayers)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case LayerRadio:
		return "radio"
	case LayerMAC:
		return "mac"
	case LayerCore:
		return "core"
	case LayerRun:
		return "run"
	case LayerSink:
		return "sink"
	case LayerCoding:
		return "coding"
	}
	return "layer?"
}

// Kind classifies an event within its layer.
type Kind uint8

// Event kinds. The radio kinds mirror radio.TraceKind one to one.
const (
	KindUnknown Kind = iota

	// Radio layer.
	KindRadioTx
	KindRadioRxOK
	KindRadioRxCorrupt

	// MAC layer.
	KindMacSendStart
	KindMacSendAcked
	KindMacSendFailed
	KindMacSendBroadcastDone
	KindMacSendCancelled
	KindMacSuppressed

	// Core (control operation) layer.
	KindOpIssue      // sink originates a control operation
	KindOpForward    // a relay streams the packet one hop down
	KindOpRelayCase  // relay acceptance decision (Note holds the case)
	KindOpRetry      // forward failed; retrying with a re-chosen relay
	KindOpBacktrack  // retries exhausted; feedback sent upstream
	KindOpIntercept  // on-path node intercepted an overheard feedback
	KindOpReopen     // feedback addressee reopened the operation
	KindOpGiveUp     // backtrack budget exhausted at this relay
	KindOpRescue     // controller launched the Re-Tele detour
	KindOpDetourLeg  // rescue relay K hands off the final unicast leg
	KindOpConsume    // destination consumed the packet
	KindOpDupConsume // duplicate arrival at the destination
	KindOpE2EAck     // end-to-end acknowledgement reached the sink
	KindOpResult     // operation resolved at the sink (Value 1 ok, 0 fail)
	KindOpDelivered  // uniform cross-protocol delivery notification
	KindOpUnroutable // dispatch refused: no route/code for destination

	// Sink command-plane layer. Seq carries the scheduler ticket, which
	// identifies the queued operation across its whole lifecycle (the
	// protocol Op/UID only exist once the op is admitted and dispatched).
	KindSinkEnqueue  // operation entered the command queue
	KindSinkAdmit    // admission window opened; Value = queue wait (s)
	KindSinkRetry    // failed attempt re-queued; Value = attempts so far
	KindSinkComplete // operation resolved (Value 1 ok, 0 fail)
	KindSinkReject   // queue full; operation refused at submit
	KindSinkExpire   // per-op budget exhausted while still queued

	// Coding-milestone layer. Hops carries the node's code-tree depth at
	// the time of the milestone, which is what the convergence probe bins
	// by.
	KindCodeAssigned // node obtained its first path code
	KindCodeChanged  // node's code churned (re-derived to a different code)
	KindCodeReported // sink registry learned a node's code (Src = origin)

	// Command-service layer (emitted on LayerSink by internal/cmdsvc; only
	// present when the service's batching/backpressure features are on, so
	// pass-through traces stay byte-identical).
	KindSvcBatch       // batch flushed (Seq = batch id, Value = members, Note = prefix)
	KindSvcBatchMember // one member of a flushed batch (Seq = batch id, Op = uid)
	KindSvcShed        // submission shed at the admission gate (Note = tenant)
	KindSvcDelay       // submission deferred past high water (Note = tenant)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRadioTx:
		return "radio.tx"
	case KindRadioRxOK:
		return "radio.rx-ok"
	case KindRadioRxCorrupt:
		return "radio.rx-bad"
	case KindMacSendStart:
		return "mac.send-start"
	case KindMacSendAcked:
		return "mac.send-acked"
	case KindMacSendFailed:
		return "mac.send-failed"
	case KindMacSendBroadcastDone:
		return "mac.send-bcast-done"
	case KindMacSendCancelled:
		return "mac.send-cancelled"
	case KindMacSuppressed:
		return "mac.suppressed"
	case KindOpIssue:
		return "op.issue"
	case KindOpForward:
		return "op.forward"
	case KindOpRelayCase:
		return "op.relay"
	case KindOpRetry:
		return "op.retry"
	case KindOpBacktrack:
		return "op.backtrack"
	case KindOpIntercept:
		return "op.intercept"
	case KindOpReopen:
		return "op.reopen"
	case KindOpGiveUp:
		return "op.give-up"
	case KindOpRescue:
		return "op.rescue"
	case KindOpDetourLeg:
		return "op.detour-leg"
	case KindOpConsume:
		return "op.consume"
	case KindOpDupConsume:
		return "op.dup-consume"
	case KindOpE2EAck:
		return "op.e2e-ack"
	case KindOpResult:
		return "op.result"
	case KindOpDelivered:
		return "op.delivered"
	case KindOpUnroutable:
		return "op.unroutable"
	case KindSinkEnqueue:
		return "sink.enqueue"
	case KindSinkAdmit:
		return "sink.admit"
	case KindSinkRetry:
		return "sink.retry"
	case KindSinkComplete:
		return "sink.complete"
	case KindSinkReject:
		return "sink.reject"
	case KindSinkExpire:
		return "sink.expire"
	case KindCodeAssigned:
		return "code.assigned"
	case KindCodeChanged:
		return "code.changed"
	case KindCodeReported:
		return "code.reported"
	case KindSvcBatch:
		return "svc.batch"
	case KindSvcBatchMember:
		return "svc.batch-member"
	case KindSvcShed:
		return "svc.shed"
	case KindSvcDelay:
		return "svc.delay"
	}
	return "unknown"
}

// Event is one simulation-time-stamped observation. The scalar fields are
// kind-specific; unused ones stay zero. Events are plain values: sinks may
// retain them, but must not mutate the shared Frame.
type Event struct {
	// At is the virtual time the event was emitted (stamped by the bus).
	At    time.Duration `json:"at"`
	Layer Layer         `json:"-"`
	Kind  Kind          `json:"-"`
	// Node is the observing/acting node (transmitter for radio.tx,
	// receiver for radio.rx-*, the relay for op.* events).
	Node radio.NodeID `json:"node"`
	// Op identifies the control operation end to end (0 when n/a); UID is
	// the wire identifier of the attempt (rescues travel under fresh UIDs).
	Op  uint32 `json:"op,omitempty"`
	UID uint32 `json:"uid,omitempty"`
	// Src/Dst/Seq describe the frame (radio/MAC layers) or the relay
	// target (core layer).
	Src radio.NodeID `json:"src,omitempty"`
	Dst radio.NodeID `json:"dst,omitempty"`
	Seq uint32       `json:"seq,omitempty"`
	// Hops is the control packet's accumulated transmission count.
	Hops uint8 `json:"hops,omitempty"`
	// Value is a kind-specific scalar: SINR dB for receptions, attempts
	// left for op.retry, 1/0 for op.result, latency seconds for op.e2e-ack.
	Value float64 `json:"value,omitempty"`
	// Note is a short kind-specific detail (relay case, path code, ...).
	// Emitters use constant or precomputed strings to stay allocation-free.
	Note string `json:"note,omitempty"`
	// Run is the replication index an event belongs to after a seed
	// merge; 0 for single runs.
	Run int `json:"run,omitempty"`
	// Frame is the radio frame for radio-layer events (in-memory
	// consumers only; excluded from JSONL).
	Frame *radio.Frame `json:"-"`
}

// Sink consumes events. Consume is called synchronously inside the
// simulation loop; implementations must be cheap and must not re-enter
// the simulation.
type Sink interface {
	Consume(Event)
}

type sinkEntry struct {
	sink Sink
	mask uint8
}

// Bus is a per-run event bus. One bus serves one simulation: it is not
// safe for concurrent use, matching the single-threaded engine. The zero
// value and the nil bus are valid, permanently-disabled buses.
type Bus struct {
	now      func() time.Duration
	sinks    []sinkEntry
	mask     uint8
	onEnable [numLayers][]func()
}

// NewBus creates a bus stamping events with the given virtual clock.
func NewBus(now func() time.Duration) *Bus {
	return &Bus{now: now}
}

func layerMask(layers []Layer) uint8 {
	if len(layers) == 0 {
		return 1<<numLayers - 1
	}
	var m uint8
	for _, l := range layers {
		m |= 1 << l
	}
	return m
}

// Subscribe attaches a sink for the given layers (all layers when none
// are named). Sinks receive events in emission order.
func (b *Bus) Subscribe(s Sink, layers ...Layer) {
	if b == nil || s == nil {
		return
	}
	m := layerMask(layers)
	enabled := m &^ b.mask
	b.sinks = append(b.sinks, sinkEntry{sink: s, mask: m})
	b.mask |= m
	for l := Layer(0); l < numLayers; l++ {
		if enabled&(1<<l) == 0 {
			continue
		}
		for _, fn := range b.onEnable[l] {
			fn()
		}
		b.onEnable[l] = nil
	}
}

// OnLayerEnabled registers fn to run once, when the layer gains its first
// subscriber (immediately if it already has one). Emitters use it to
// install per-event taps — like the radio trace hook — only when someone
// actually listens, keeping a fully disabled layer at zero per-event cost
// rather than one rejected callback per event.
func (b *Bus) OnLayerEnabled(l Layer, fn func()) {
	if b == nil || fn == nil {
		return
	}
	if b.mask&(1<<l) != 0 {
		fn()
		return
	}
	b.onEnable[l] = append(b.onEnable[l], fn)
}

// Wants reports whether any sink listens to the layer. Emitters use it to
// guard event construction on hot paths; a nil bus wants nothing.
func (b *Bus) Wants(l Layer) bool {
	return b != nil && b.mask&(1<<l) != 0
}

// Emit stamps the event with the virtual clock and fans it out to the
// layer's subscribers. Emitting to a nil or unsubscribed-layer bus is a
// single branch.
func (b *Bus) Emit(ev Event) {
	if b == nil || b.mask&(1<<ev.Layer) == 0 {
		return
	}
	if b.now != nil {
		ev.At = b.now()
	}
	bit := uint8(1) << ev.Layer
	for _, e := range b.sinks {
		if e.mask&bit != 0 {
			e.sink.Consume(ev)
		}
	}
}

// Collector is a Sink buffering events in memory, in emission order.
type Collector struct {
	evs []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Consume implements Sink.
func (c *Collector) Consume(ev Event) { c.evs = append(c.evs, ev) }

// Events returns the collected events in emission order (shared slice;
// callers must not mutate).
func (c *Collector) Events() []Event { return c.evs }

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.evs) }

// OpIdentified is implemented by frame payloads that belong to a control
// operation; the radio tap uses it to associate frame-level events with
// operation spans without importing protocol packages.
type OpIdentified interface {
	// TelemetryIDs returns the end-to-end operation id and the wire UID
	// of the attempt (either may be 0 when unknown).
	TelemetryIDs() (op, uid uint32)
}

// radioKinds maps the exported radio trace kind set onto event kinds.
var radioKinds = map[radio.TraceKind]Kind{
	radio.TraceTxStart:   KindRadioTx,
	radio.TraceRxOK:      KindRadioRxOK,
	radio.TraceRxCorrupt: KindRadioRxCorrupt,
}

// RadioTap adapts the bus to the medium's trace hook: install with
// Medium.SetTraceFn(telemetry.RadioTap(bus)). Frame events gain Op/UID
// when the payload identifies its operation.
func RadioTap(b *Bus) func(radio.TraceEvent) {
	return func(te radio.TraceEvent) {
		if !b.Wants(LayerRadio) {
			return
		}
		k, ok := radioKinds[te.Kind]
		if !ok {
			k = KindUnknown
		}
		ev := Event{
			Layer: LayerRadio,
			Kind:  k,
			Node:  te.Node,
			Value: te.SINRdB,
			Frame: te.Frame,
		}
		if f := te.Frame; f != nil {
			ev.Src, ev.Dst, ev.Seq = f.Src, f.Dst, f.Seq
			if ids, ok := f.Payload.(OpIdentified); ok {
				ev.Op, ev.UID = ids.TelemetryIDs()
			}
		}
		b.Emit(ev)
	}
}
