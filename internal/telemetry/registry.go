package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"

	"teleadjust/internal/radio"
)

// MetricType discriminates registry entries.
type MetricType uint8

// Metric types.
const (
	TypeCounter MetricType = iota + 1
	TypeGauge
	TypeHistogram
)

// String names the type.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "metric?"
}

// MetricKey identifies one metric instance: a name scoped to a layer and
// a node. NoNode scopes run-wide metrics.
type MetricKey struct {
	Layer Layer
	Node  radio.NodeID
	Name  string
}

// NoNode is the node id of run-scoped (not per-node) metrics.
const NoNode = radio.BroadcastID

// Counter is a monotonically increasing metric handle. The zero Counter
// is unusable; obtain handles from a Registry (a nil Registry still
// returns working standalone handles).
type Counter struct {
	v *uint64
}

// Inc adds one.
func (c Counter) Inc() { *c.v++ }

// Add adds n.
func (c Counter) Add(n uint64) { *c.v += n }

// Value returns the current count.
func (c Counter) Value() uint64 { return *c.v }

// Histogram accumulates raw float samples. Snapshots summarize them;
// Quantile answers nearest-rank queries. Samples are kept, so histograms
// are for bounded-cardinality observations (per-op latencies, hop
// counts), not per-frame data.
type Histogram struct {
	vals []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.vals = append(h.vals, v) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.vals) }

// Sum returns the sample sum.
func (h *Histogram) Sum() float64 {
	s := 0.0
	for _, v := range h.vals {
		s += v
	}
	return s
}

// Quantile returns the q-th (0..1) nearest-rank sample, 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(h.vals))
	copy(sorted, h.vals)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Metric is one snapshot row.
type Metric struct {
	Key  MetricKey
	Type MetricType
	// Value holds the counter count or gauge reading.
	Value float64
	// Count/Sum/Min/Max summarize histograms (Count 0 otherwise).
	Count    int
	Sum      float64
	Min, Max float64
}

// Registry indexes metrics by (layer, node, name). One registry serves
// one simulation run; it is not safe for concurrent use. A nil *Registry
// is valid: handle constructors return standalone storage, queries come
// back empty — components can bind their metrics unconditionally.
type Registry struct {
	counters map[MetricKey]Counter
	gauges   map[MetricKey]func() float64
	hists    map[MetricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[MetricKey]Counter),
		gauges:   make(map[MetricKey]func() float64),
		hists:    make(map[MetricKey]*Histogram),
	}
}

// Counter returns (creating if needed) the counter for the key. On a nil
// registry the handle is standalone but fully functional.
func (r *Registry) Counter(l Layer, node radio.NodeID, name string) Counter {
	if r == nil {
		return Counter{v: new(uint64)}
	}
	k := MetricKey{Layer: l, Node: node, Name: name}
	if c, ok := r.counters[k]; ok {
		return c
	}
	c := Counter{v: new(uint64)}
	r.counters[k] = c
	return c
}

// BindCounter registers externally-owned counter storage (for example a
// protocol's stats struct field) under the key, replacing any previous
// binding — a rebooted node re-binds its fresh stack's counters, which
// models the volatile-state loss of a mote reboot.
func (r *Registry) BindCounter(l Layer, node radio.NodeID, name string, v *uint64) Counter {
	c := Counter{v: v}
	if r != nil {
		r.counters[MetricKey{Layer: l, Node: node, Name: name}] = c
	}
	return c
}

// GaugeFunc registers a gauge read through fn at snapshot/query time.
func (r *Registry) GaugeFunc(l Layer, node radio.NodeID, name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gauges[MetricKey{Layer: l, Node: node, Name: name}] = fn
}

// Gauge reads a registered gauge.
func (r *Registry) Gauge(l Layer, node radio.NodeID, name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	fn, ok := r.gauges[MetricKey{Layer: l, Node: node, Name: name}]
	if !ok {
		return 0, false
	}
	return fn(), true
}

// Histogram returns (creating if needed) the histogram for the key. On a
// nil registry the handle is standalone but fully functional.
func (r *Registry) Histogram(l Layer, node radio.NodeID, name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	k := MetricKey{Layer: l, Node: node, Name: name}
	if h, ok := r.hists[k]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[k] = h
	return h
}

// CounterValue reads a counter; 0 when absent.
func (r *Registry) CounterValue(l Layer, node radio.NodeID, name string) uint64 {
	if r == nil {
		return 0
	}
	if c, ok := r.counters[MetricKey{Layer: l, Node: node, Name: name}]; ok {
		return c.Value()
	}
	return 0
}

// SumCounters sums a counter name across all nodes of a layer.
func (r *Registry) SumCounters(l Layer, name string) uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	for k, c := range r.counters {
		if k.Layer == l && k.Name == name {
			sum += c.Value()
		}
	}
	return sum
}

// Snapshot returns every metric, sorted by (layer, node, name, type) so
// snapshots of identical runs are identical.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		out = append(out, Metric{Key: k, Type: TypeCounter, Value: float64(c.Value())})
	}
	for k, fn := range r.gauges {
		out = append(out, Metric{Key: k, Type: TypeGauge, Value: fn()})
	}
	for k, h := range r.hists {
		m := Metric{Key: k, Type: TypeHistogram, Count: h.Count(), Sum: h.Sum()}
		if m.Count > 0 {
			m.Min, m.Max = h.vals[0], h.vals[0]
			for _, v := range h.vals {
				m.Min = math.Min(m.Min, v)
				m.Max = math.Max(m.Max, v)
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// WriteSnapshot renders the snapshot as an aligned text table.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		switch m.Type {
		case TypeHistogram:
			_, err = fmt.Fprintf(w, "%-6s node=%-5d %-28s %-9s n=%d sum=%.3f min=%.3f max=%.3f\n",
				m.Key.Layer, m.Key.Node, m.Key.Name, m.Type, m.Count, m.Sum, m.Min, m.Max)
		default:
			_, err = fmt.Fprintf(w, "%-6s node=%-5d %-28s %-9s %.3f\n",
				m.Key.Layer, m.Key.Node, m.Key.Name, m.Type, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
