package telemetry

// SampleOps thins an event stream for export by keeping every 1-in-n
// operation: an event survives when it belongs to no operation (Op == 0 —
// phase markers, unroutable dispatches, coding milestones) or when its
// operation id falls in the deterministic residue class Op % n == 0.
// Whole operation spans survive or vanish together, so span building on a
// sampled stream still sees complete lifecycles; the same seed and n
// always select the same events, keeping sampled exports replication- and
// rerun-stable. n <= 1 returns the stream unchanged.
func SampleOps(events []Event, n int) []Event {
	if n <= 1 {
		return events
	}
	out := make([]Event, 0, len(events)/n+1)
	for _, ev := range events {
		if ev.Op == 0 || ev.Op%uint32(n) == 0 {
			out = append(out, ev)
		}
	}
	return out
}
