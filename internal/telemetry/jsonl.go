package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlEvent is the export schema: the Event scalars plus the layer and
// kind spelled as stable strings. Field order is fixed by the struct, so
// identical event streams marshal to identical bytes.
type jsonlEvent struct {
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	Event
}

// WriteJSONL writes one JSON object per event, in order. The encoding is
// deterministic: identical streams produce identical bytes, which is what
// the replication byte-identity regression rides on.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		ev := jsonlEvent{
			Layer: events[i].Layer.String(),
			Kind:  events[i].Kind.String(),
			Event: events[i],
		}
		if err := enc.Encode(&ev); err != nil {
			return fmt.Errorf("telemetry: event %d: %w", i, err)
		}
	}
	return bw.Flush()
}
