package telemetry

import (
	"fmt"
	"io"
	"time"

	"teleadjust/internal/radio"
)

// QueueSpan is one scheduled control operation's reconstructed command-
// plane lifecycle, grouped into the three phases the sink scheduler
// moves it through: queued (enqueue → admission), in flight (admission →
// resolution, possibly spanning several wire attempts), and completion.
// The span is keyed by the scheduler ticket (Event.Seq on sink-layer
// events), which exists before the protocol assigns any operation id.
type QueueSpan struct {
	Run    int
	Ticket uint32
	Dst    radio.NodeID
	// Ops lists the protocol operation ids of the dispatch attempts, in
	// dispatch order (one per admit; retries dispatch fresh operations).
	Ops []uint32

	EnqueuedAt time.Duration
	// AdmittedAt is the first admission (valid when Admitted).
	AdmittedAt time.Duration
	Admitted   bool
	// DoneAt is the completion, expiry, or rejection time (valid when
	// Resolved).
	DoneAt   time.Duration
	Resolved bool
	OK       bool
	// Retries counts re-queues after failed attempts.
	Retries int
	// Rejected and Expired flag the two abnormal terminations: refused at
	// submit (queue full) and dropped by the per-op budget while queued.
	Rejected bool
	Expired  bool

	// Events is every sink-layer event of the ticket, in emission order.
	Events []Event
}

// QueueWait returns the enqueue → first-admission delay (0 when the op
// was never admitted).
func (s *QueueSpan) QueueWait() time.Duration {
	if !s.Admitted {
		return 0
	}
	return s.AdmittedAt - s.EnqueuedAt
}

// InFlight returns the first-admission → resolution delay (0 when the op
// never reached the air or never resolved).
func (s *QueueSpan) InFlight() time.Duration {
	if !s.Admitted || !s.Resolved {
		return 0
	}
	return s.DoneAt - s.AdmittedAt
}

// Total returns the enqueue → resolution delay (0 while unresolved).
func (s *QueueSpan) Total() time.Duration {
	if !s.Resolved {
		return 0
	}
	return s.DoneAt - s.EnqueuedAt
}

// BuildQueueSpans reconstructs command-plane spans from an event stream;
// non-sink-layer events are skipped. Spans come back in first-seen
// (ticket emission) order per run, which is deterministic.
func BuildQueueSpans(events []Event) []*QueueSpan {
	type key struct {
		run    int
		ticket uint32
	}
	idx := make(map[key]*QueueSpan)
	var order []*QueueSpan
	for _, ev := range events {
		if ev.Layer != LayerSink {
			continue
		}
		k := key{run: ev.Run, ticket: ev.Seq}
		sp, ok := idx[k]
		if !ok {
			sp = &QueueSpan{Run: ev.Run, Ticket: ev.Seq, Dst: ev.Dst, EnqueuedAt: ev.At}
			idx[k] = sp
			order = append(order, sp)
		}
		sp.Events = append(sp.Events, ev)
		if sp.Dst == 0 && ev.Dst != 0 {
			sp.Dst = ev.Dst
		}
		switch ev.Kind {
		case KindSinkEnqueue:
			sp.EnqueuedAt = ev.At
		case KindSinkAdmit:
			if !sp.Admitted {
				sp.Admitted = true
				sp.AdmittedAt = ev.At
			}
			if ev.Op != 0 {
				sp.Ops = append(sp.Ops, ev.Op)
			}
		case KindSinkRetry:
			sp.Retries++
		case KindSinkComplete:
			sp.Resolved = true
			sp.DoneAt = ev.At
			sp.OK = ev.Value > 0
		case KindSinkReject:
			sp.Resolved = true
			sp.Rejected = true
			sp.DoneAt = ev.At
		case KindSinkExpire:
			sp.Resolved = true
			sp.Expired = true
			sp.DoneAt = ev.At
		}
	}
	return order
}

// RenderQueueSpans writes a one-line-per-phase rendition of every
// command-plane span matching the filter (nil renders all).
func RenderQueueSpans(w io.Writer, events []Event, match func(*QueueSpan) bool) error {
	spans := BuildQueueSpans(events)
	rendered := 0
	for _, sp := range spans {
		if match != nil && !match(sp) {
			continue
		}
		rendered++
		status := "unresolved"
		switch {
		case sp.Rejected:
			status = "REJECTED (queue full)"
		case sp.Expired:
			status = "EXPIRED (budget)"
		case sp.Resolved && sp.OK:
			status = "ok"
		case sp.Resolved:
			status = "FAILED"
		}
		header := fmt.Sprintf("ticket %d → node %d  %s", sp.Ticket, sp.Dst, status)
		if sp.Run > 0 {
			header = fmt.Sprintf("run %d  %s", sp.Run, header)
		}
		if _, err := fmt.Fprintln(w, header); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  queued    %v  (wait %v)\n", sp.EnqueuedAt, sp.QueueWait()); err != nil {
			return err
		}
		if sp.Admitted {
			if _, err := fmt.Fprintf(w, "  in-flight %v  (air %v, %d retries, ops %v)\n",
				sp.AdmittedAt, sp.InFlight(), sp.Retries, sp.Ops); err != nil {
				return err
			}
		}
		if sp.Resolved {
			if _, err := fmt.Fprintf(w, "  done      %v  (total %v)\n", sp.DoneAt, sp.Total()); err != nil {
				return err
			}
		}
	}
	if rendered == 0 {
		_, err := fmt.Fprintln(w, "no matching command-plane spans")
		return err
	}
	return nil
}
