package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"teleadjust/internal/radio"
)

func TestBusNilAndZeroAreDisabled(t *testing.T) {
	var nilBus *Bus
	nilBus.Emit(Event{Layer: LayerCore, Kind: KindOpIssue}) // must not panic
	if nilBus.Wants(LayerCore) {
		t.Fatal("nil bus wants a layer")
	}
	nilBus.Subscribe(NewCollector()) // must not panic

	var zero Bus
	zero.Emit(Event{Layer: LayerCore, Kind: KindOpIssue})
	if zero.Wants(LayerRadio) {
		t.Fatal("zero bus wants a layer")
	}
}

func TestBusLayerMasking(t *testing.T) {
	now := time.Duration(0)
	b := NewBus(func() time.Duration { return now })
	coreOnly := NewCollector()
	all := NewCollector()
	b.Subscribe(coreOnly, LayerCore)
	b.Subscribe(all)

	if !b.Wants(LayerCore) || !b.Wants(LayerRadio) {
		t.Fatal("bus should want core and radio after subscriptions")
	}

	now = 5 * time.Millisecond
	b.Emit(Event{Layer: LayerRadio, Kind: KindRadioTx, Node: 3})
	now = 7 * time.Millisecond
	b.Emit(Event{Layer: LayerCore, Kind: KindOpIssue, Node: 0, Op: 11})

	if coreOnly.Len() != 1 {
		t.Fatalf("core-only sink got %d events, want 1", coreOnly.Len())
	}
	if all.Len() != 2 {
		t.Fatalf("all-layer sink got %d events, want 2", all.Len())
	}
	got := coreOnly.Events()[0]
	if got.At != 7*time.Millisecond || got.Kind != KindOpIssue || got.Op != 11 {
		t.Fatalf("unexpected event: %+v", got)
	}
	// Events are stamped by the bus clock even if the emitter left At set.
	if all.Events()[0].At != 5*time.Millisecond {
		t.Fatalf("radio event stamped %v, want 5ms", all.Events()[0].At)
	}
}

func TestBusWantsRejectsUnsubscribedLayer(t *testing.T) {
	b := NewBus(func() time.Duration { return 0 })
	c := NewCollector()
	b.Subscribe(c, LayerMAC)
	if b.Wants(LayerCore) {
		t.Fatal("bus wants core with only a MAC subscriber")
	}
	b.Emit(Event{Layer: LayerCore, Kind: KindOpIssue})
	if c.Len() != 0 {
		t.Fatalf("MAC sink received a core event")
	}
}

func TestOnLayerEnabled(t *testing.T) {
	b := NewBus(func() time.Duration { return 0 })
	var fired int
	b.OnLayerEnabled(LayerRadio, func() { fired++ })
	if fired != 0 {
		t.Fatal("hook fired before any subscriber")
	}
	b.Subscribe(NewCollector(), LayerCore)
	if fired != 0 {
		t.Fatal("hook fired on an unrelated layer's subscription")
	}
	b.Subscribe(NewCollector(), LayerRadio)
	if fired != 1 {
		t.Fatalf("hook fired %d times after radio subscription, want 1", fired)
	}
	b.Subscribe(NewCollector(), LayerRadio)
	if fired != 1 {
		t.Fatalf("hook re-fired on the second subscriber (%d times)", fired)
	}
	// Already-enabled layers fire immediately.
	b.OnLayerEnabled(LayerRadio, func() { fired++ })
	if fired != 2 {
		t.Fatalf("late hook did not fire immediately (%d)", fired)
	}
	// Nil bus and nil fn are inert.
	var nilBus *Bus
	nilBus.OnLayerEnabled(LayerRadio, func() { fired++ })
	b.OnLayerEnabled(LayerMAC, nil)
	b.Subscribe(NewCollector(), LayerMAC)
	if fired != 2 {
		t.Fatalf("inert hooks fired (%d)", fired)
	}
}

func TestLayerAndKindStrings(t *testing.T) {
	for l := LayerRadio; l < numLayers; l++ {
		if s := l.String(); s == "layer?" || s == "" {
			t.Fatalf("layer %d has no name", l)
		}
	}
	for k := KindRadioTx; k <= KindCodeReported; k++ {
		if s := k.String(); s == "unknown" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Layer(200).String() != "layer?" || Kind(200).String() != "unknown" {
		t.Fatal("fallback names changed")
	}
}

func TestRegistryCountersAndBinding(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(LayerCore, 4, "sends")
	c.Inc()
	c.Add(2)
	if got := r.CounterValue(LayerCore, 4, "sends"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Same key returns the same storage.
	r.Counter(LayerCore, 4, "sends").Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}

	var backing uint64 = 10
	r.BindCounter(LayerCore, 5, "sends", &backing)
	backing += 5
	if got := r.CounterValue(LayerCore, 5, "sends"); got != 15 {
		t.Fatalf("bound counter = %d, want 15", got)
	}
	// Rebinding (reboot) replaces the storage.
	var fresh uint64
	r.BindCounter(LayerCore, 5, "sends", &fresh)
	if got := r.CounterValue(LayerCore, 5, "sends"); got != 0 {
		t.Fatalf("rebound counter = %d, want 0", got)
	}

	if got := r.SumCounters(LayerCore, "sends"); got != 4 {
		t.Fatalf("sum = %d, want 4", got)
	}
}

func TestRegistryNilIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter(LayerCore, 1, "x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter handle broken")
	}
	h := r.Histogram(LayerCore, 1, "y")
	h.Observe(2)
	if h.Count() != 1 {
		t.Fatal("nil-registry histogram handle broken")
	}
	r.GaugeFunc(LayerCore, 1, "z", func() float64 { return 1 })
	if _, ok := r.Gauge(LayerCore, 1, "z"); ok {
		t.Fatal("nil registry returned a gauge")
	}
	if r.Snapshot() != nil || r.CounterValue(LayerCore, 1, "x") != 0 || r.SumCounters(LayerCore, "x") != 0 {
		t.Fatal("nil registry queries not empty")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %v, want 3", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("p100 = %v, want 5", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
	if h.Sum() != 15 {
		t.Fatalf("sum = %v, want 15", h.Sum())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter(LayerMAC, 2, "b").Inc()
		r.Counter(LayerCore, 1, "a").Add(3)
		r.GaugeFunc(LayerRadio, 1, "duty", func() float64 { return 0.5 })
		r.Histogram(LayerCore, NoNode, "lat").Observe(1.5)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteSnapshot(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteSnapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	snap := build().Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d rows, want 4", len(snap))
	}
	// Radio sorts before MAC before core (layer order, bottom up).
	if snap[0].Key.Layer != LayerRadio || snap[len(snap)-1].Key.Layer != LayerCore {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	events := []Event{
		{At: time.Millisecond, Layer: LayerCore, Kind: KindOpIssue, Node: 0, Op: 7, UID: 7, Dst: 5},
		{At: 2 * time.Millisecond, Layer: LayerRadio, Kind: KindRadioTx, Node: 0, Seq: 1,
			Frame: &radio.Frame{Src: 0, Dst: 3}},
		{At: 3 * time.Millisecond, Layer: LayerCore, Kind: KindOpResult, Node: 0, Op: 7, Value: 1},
	}
	var b1, b2 bytes.Buffer
	if err := WriteJSONL(&b1, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("JSONL encoding is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"op.issue"`) || !strings.Contains(lines[0], `"layer":"core"`) {
		t.Fatalf("line 0 missing layer/kind: %s", lines[0])
	}
	// The in-memory Frame pointer must not leak into the export.
	if strings.Contains(lines[1], "Payload") || strings.Contains(lines[1], "frame") {
		t.Fatalf("frame leaked into JSONL: %s", lines[1])
	}
}

func TestBuildAndRenderOpSpans(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []Event{
		{At: ms(0), Layer: LayerCore, Kind: KindOpIssue, Node: 0, Op: 9, UID: 9, Dst: 4},
		{At: ms(2), Layer: LayerCore, Kind: KindOpRelayCase, Node: 1, Op: 9, UID: 9, Note: "expected"},
		{At: ms(4), Layer: LayerCore, Kind: KindOpBacktrack, Node: 1, Op: 9, UID: 9},
		{At: ms(6), Layer: LayerCore, Kind: KindOpRescue, Node: 0, Op: 9, UID: 31, Dst: 2},
		{At: ms(9), Layer: LayerCore, Kind: KindOpConsume, Node: 4, Op: 9, UID: 31, Hops: 3},
		{At: ms(12), Layer: LayerCore, Kind: KindOpResult, Node: 0, Op: 9, UID: 31, Value: 1},
		// A second, separate op.
		{At: ms(20), Layer: LayerCore, Kind: KindOpIssue, Node: 0, Op: 10, UID: 10, Dst: 6},
	}
	spans := BuildOpSpans(events)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	sp := spans[0]
	if sp.Op != 9 || sp.Dst != 4 || !sp.Delivered || !sp.HasResult || !sp.ResultOK {
		t.Fatalf("span 0 wrong: %+v", sp)
	}
	if sp.Latency != ms(12) {
		t.Fatalf("latency = %v, want 12ms", sp.Latency)
	}
	if len(sp.Attempts) != 2 {
		t.Fatalf("got %d attempts, want 2 (original + rescue)", len(sp.Attempts))
	}
	if sp.Attempts[0].UID != 9 || sp.Attempts[1].UID != 31 || !sp.Attempts[1].Detour {
		t.Fatalf("attempts wrong: %+v %+v", sp.Attempts[0], sp.Attempts[1])
	}
	if spans[1].HasResult || spans[1].Delivered {
		t.Fatalf("span 1 should be unresolved: %+v", spans[1])
	}

	var out bytes.Buffer
	if err := RenderOpSpans(&out, events, func(s *OpSpan) bool { return s.Dst == 4 }); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"op 9 → node 4", "ok latency=12ms", "attempt uid=9",
		"attempt uid=31 (re-tele detour)", "op.backtrack", "op.consume"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "op 10") {
		t.Fatalf("filter leaked op 10:\n%s", text)
	}

	out.Reset()
	if err := RenderOpSpans(&out, events, func(s *OpSpan) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no matching operation spans") {
		t.Fatalf("empty match should say so, got:\n%s", out.String())
	}
}

type frameIDs struct{ op, uid uint32 }

func (f frameIDs) TelemetryIDs() (uint32, uint32) { return f.op, f.uid }

func TestRadioTap(t *testing.T) {
	b := NewBus(func() time.Duration { return time.Second })
	c := NewCollector()
	b.Subscribe(c, LayerRadio)
	tap := RadioTap(b)

	tap(radio.TraceEvent{
		Kind: radio.TraceTxStart, Node: 2,
		Frame: &radio.Frame{Src: 2, Dst: radio.BroadcastID, Seq: 42, Payload: frameIDs{op: 7, uid: 19}},
	})
	tap(radio.TraceEvent{Kind: radio.TraceRxOK, Node: 3, SINRdB: 12.5,
		Frame: &radio.Frame{Src: 2, Dst: 3, Seq: 43}})

	if c.Len() != 2 {
		t.Fatalf("tap produced %d events, want 2", c.Len())
	}
	tx := c.Events()[0]
	if tx.Kind != KindRadioTx || tx.Node != 2 || tx.Seq != 42 || tx.Op != 7 || tx.UID != 19 {
		t.Fatalf("tx event wrong: %+v", tx)
	}
	rx := c.Events()[1]
	if rx.Kind != KindRadioRxOK || rx.Value != 12.5 || rx.Op != 0 {
		t.Fatalf("rx event wrong: %+v", rx)
	}

	// With nobody listening to the radio layer, the tap is a no-op.
	quiet := NewBus(func() time.Duration { return 0 })
	quiet.Subscribe(NewCollector(), LayerCore)
	RadioTap(quiet)(radio.TraceEvent{Kind: radio.TraceTxStart, Node: 1})
}
