package sink

import "teleadjust/internal/core"

// GroupKey returns the subtree scheduling key of a destination path code:
// the code's leading min(bits, code length) bits rendered as a '0'/'1'
// string. Operations whose destination codes map to the same key traverse
// the same depth-limited subtree of the code tree, so the scheduler
// serializes (or caps) them against each other instead of letting them
// contend for the same branch of the collection tree.
//
// bits <= 0 disables truncation: the key is the full code, i.e. one group
// per encoded path. The empty code (destination without a code) renders
// as "ε", a key of its own.
//
// The key is an equivalence class, so it approximates subtree identity:
// two codes share a key exactly when their longest common prefix covers
// both truncation lengths — min(len(a), bits) == min(len(b), bits) and
// CommonPrefixLen(a, b) reaches it. An ancestor whose own code is shorter
// than bits therefore keys separately from its deep descendants; the
// fuzz target pins this contract.
func GroupKey(code core.PathCode, bits int) string {
	if bits > 0 && code.Len() > bits {
		code = code.Prefix(bits)
	}
	return code.String()
}
