// Package sink implements the sink-side command plane: a scheduler that
// sits above a control protocol's dispatch entry point and manages a
// queue of concurrent control operations. The paper evaluates
// TeleAdjusting one issue-and-wait packet at a time; a sink serving heavy
// actuation traffic instead needs admission control (a bounded in-flight
// window), per-subtree serialization so operations descending the same
// branch of the code tree do not self-interfere, and per-operation
// retry/deadline budgets layered over the protocol's own recovery.
//
// Path codes make the subtree structure cheap to exploit: operations
// whose destination codes share a prefix traverse the same subtree, so
// the scheduler groups queued operations by a truncated-prefix key (see
// GroupKey) and caps how many run per group at once. Everything runs
// inside the single-threaded simulation loop — submissions, dispatches,
// and completions are engine events — so a run's schedule is a pure
// function of its seed.
package sink

import (
	"errors"
	"fmt"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/telemetry"
)

// Scheduler errors, reported through Outcome.Err or returned by Submit.
var (
	// ErrQueueFull reports that Submit refused the operation because the
	// backlog reached Config.MaxQueue.
	ErrQueueFull = errors.New("sink: command queue full")
	// ErrBudget reports that the per-op budget expired before the
	// operation could be dispatched (or re-dispatched).
	ErrBudget = errors.New("sink: per-op budget exhausted")
)

// Dispatcher is the protocol surface the scheduler drives: the sink-side
// dispatch entry point of any protocol.ControlProtocol.
type Dispatcher interface {
	SendControl(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error)
}

// RetryAware is an optional Dispatcher capability for dispatchers that
// treat re-dispatches differently from first attempts. When the
// dispatcher implements it, every attempt after the first goes through
// SendControlRetry instead of SendControl (the command service's batcher
// uses this to send retries as full-rescue singles rather than
// re-buffering an already-failed operation into a batch carrier).
type RetryAware interface {
	SendControlRetry(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error)
}

// Config tunes a Scheduler.
type Config struct {
	// Window is the admission window: the maximum number of operations in
	// flight at once (minimum 1).
	Window int
	// PerGroup caps concurrent in-flight operations per subtree group
	// (minimum 1; 1 serializes each subtree).
	PerGroup int
	// GroupBits is the prefix length of the subtree grouping key; <= 0
	// groups by the full destination code (see GroupKey).
	GroupBits int
	// MaxQueue bounds the backlog; Submit fails with ErrQueueFull beyond
	// it (0 = unbounded).
	MaxQueue int
	// Retries is the number of times a failed operation is re-queued and
	// re-dispatched before the failure is reported (each dispatch already
	// carries the protocol's own retry/backtrack/rescue recovery).
	Retries int
	// OpBudget, when positive, is the per-op deadline measured from
	// enqueue: an operation still queued at its deadline is dropped with
	// ErrBudget, and a failed attempt past it is not re-queued.
	OpBudget time.Duration
	// TicketBase offsets the scheduler's ticket numbering (first ticket is
	// TicketBase+1). Studies running several schedulers give each a
	// disjoint range so their telemetry spans never collide.
	TicketBase uint32
}

// DefaultConfig returns the reference command-plane tuning: an 8-op
// window, serialized subtrees keyed on 6-bit prefixes, one re-dispatch.
func DefaultConfig() Config {
	return Config{
		Window:    8,
		PerGroup:  1,
		GroupBits: 6,
		Retries:   1,
	}
}

// withDefaults clamps the config to usable minimums.
func (c Config) withDefaults() Config {
	if c.Window < 1 {
		c.Window = 1
	}
	if c.PerGroup < 1 {
		c.PerGroup = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	return c
}

// Outcome reports one scheduled operation's final state through the
// Submit callback.
type Outcome struct {
	Ticket uint32
	Dst    radio.NodeID
	OK     bool
	// Err classifies command-plane failures (ErrBudget, or the dispatch
	// error for unroutable destinations); nil for operations the protocol
	// resolved, even unsuccessfully.
	Err error
	// Attempts counts dispatches (0 when the op expired while queued).
	Attempts int
	// Result is the protocol outcome of the last dispatch.
	Result protocol.Result

	EnqueuedAt time.Duration
	AdmittedAt time.Duration
	Admitted   bool
	DoneAt     time.Duration
}

// QueueWait returns the enqueue → first-admission delay.
func (o Outcome) QueueWait() time.Duration {
	if !o.Admitted {
		return 0
	}
	return o.AdmittedAt - o.EnqueuedAt
}

// Total returns the enqueue → resolution delay.
func (o Outcome) Total() time.Duration { return o.DoneAt - o.EnqueuedAt }

// Stats are the scheduler's lifetime counters.
type Stats struct {
	Submitted   uint64
	Admitted    uint64
	Retried     uint64
	CompletedOK uint64
	Failed      uint64 // protocol-resolved failures (after retry budget)
	Unroutable  uint64 // dispatch refused: no route/code
	Rejected    uint64 // refused at submit (queue full)
	Expired     uint64 // dropped while queued (per-op budget)
}

// opState is one queued-or-in-flight operation.
type opState struct {
	ticket   uint32
	dst      radio.NodeID
	app      any
	group    string
	done     func(Outcome)
	retries  int
	attempts int
	deadline time.Duration // 0 = none
	expire   sim.EventRef

	enqueuedAt time.Duration
	admittedAt time.Duration
	admitted   bool
	inflight   bool
	finished   bool
	lastResult protocol.Result
}

// Scheduler is the sink command plane. It is engine-driven and not safe
// for concurrent use, matching the simulation's single-threaded design.
type Scheduler struct {
	eng   *sim.Engine
	d     Dispatcher
	retry RetryAware // non-nil iff d implements RetryAware
	cfg   Config
	coder func(radio.NodeID) (core.PathCode, bool)

	queue    []*opState
	groups   map[string]int
	inflight int
	tickets  uint32
	pumping  bool

	stats     Stats
	bus       *telemetry.Bus
	node      radio.NodeID
	queueWait *telemetry.Histogram
	totalLat  *telemetry.Histogram
}

// New creates a scheduler dispatching through d on the given engine.
func New(eng *sim.Engine, d Dispatcher, cfg Config) *Scheduler {
	if eng == nil || d == nil {
		panic("sink: New requires an engine and a dispatcher")
	}
	s := &Scheduler{
		eng:     eng,
		d:       d,
		tickets: cfg.TicketBase,
		cfg:     cfg.withDefaults(),
		groups:  make(map[string]int),
	}
	s.retry, _ = d.(RetryAware)
	return s
}

// SetCoder installs the destination → path code resolver used for the
// subtree grouping key. Without one (or for destinations without codes)
// each destination forms its own group, which still serializes repeated
// operations to one node.
func (s *Scheduler) SetCoder(fn func(radio.NodeID) (core.PathCode, bool)) { s.coder = fn }

// SetTelemetry binds the scheduler's counters into the registry under the
// sink layer and attaches the event bus for command-plane span events,
// both attributed to the given (sink) node. Either argument may be nil.
func (s *Scheduler) SetTelemetry(reg *telemetry.Registry, bus *telemetry.Bus, node radio.NodeID) {
	s.bus = bus
	s.node = node
	reg.BindCounter(telemetry.LayerSink, node, "submitted", &s.stats.Submitted)
	reg.BindCounter(telemetry.LayerSink, node, "admitted", &s.stats.Admitted)
	reg.BindCounter(telemetry.LayerSink, node, "retried", &s.stats.Retried)
	reg.BindCounter(telemetry.LayerSink, node, "completed-ok", &s.stats.CompletedOK)
	reg.BindCounter(telemetry.LayerSink, node, "failed", &s.stats.Failed)
	reg.BindCounter(telemetry.LayerSink, node, "unroutable", &s.stats.Unroutable)
	reg.BindCounter(telemetry.LayerSink, node, "rejected", &s.stats.Rejected)
	reg.BindCounter(telemetry.LayerSink, node, "expired", &s.stats.Expired)
	s.queueWait = reg.Histogram(telemetry.LayerSink, node, "queue-wait-s")
	s.totalLat = reg.Histogram(telemetry.LayerSink, node, "total-latency-s")
}

// Stats returns a snapshot of the lifetime counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// QueueLen returns the current backlog (admitted ops excluded).
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// InFlight returns the number of dispatched, unresolved operations.
func (s *Scheduler) InFlight() int { return s.inflight }

// Quiesced reports that no operation is queued or in flight.
func (s *Scheduler) Quiesced() bool { return len(s.queue) == 0 && s.inflight == 0 }

// Submit enqueues a control operation for dst carrying app and returns
// its ticket. done (optional) fires exactly once with the outcome —
// unless Submit itself fails, which reports the only error path that has
// no outcome (ErrQueueFull). Admission may happen within this call.
func (s *Scheduler) Submit(dst radio.NodeID, app any, done func(Outcome)) (uint32, error) {
	s.tickets++
	t := s.tickets
	now := s.eng.Now()
	if s.cfg.MaxQueue > 0 && len(s.queue) >= s.cfg.MaxQueue {
		s.stats.Rejected++
		s.emit(telemetry.Event{Kind: telemetry.KindSinkReject, Seq: t, Dst: dst})
		return t, ErrQueueFull
	}
	op := &opState{
		ticket:     t,
		dst:        dst,
		app:        app,
		group:      s.groupOf(dst),
		done:       done,
		retries:    s.cfg.Retries,
		enqueuedAt: now,
	}
	if s.cfg.OpBudget > 0 {
		op.deadline = now + s.cfg.OpBudget
		op.expire = s.eng.Schedule(s.cfg.OpBudget, func() { s.expireQueued(op) })
	}
	s.stats.Submitted++
	s.emit(telemetry.Event{Kind: telemetry.KindSinkEnqueue, Seq: t, Dst: dst, Note: op.group})
	s.queue = append(s.queue, op)
	s.pump()
	return t, nil
}

// groupOf resolves the subtree grouping key for a destination.
func (s *Scheduler) groupOf(dst radio.NodeID) string {
	if s.coder != nil {
		if code, ok := s.coder(dst); ok && !code.IsEmpty() {
			return GroupKey(code, s.cfg.GroupBits)
		}
	}
	return fmt.Sprintf("n%d", dst)
}

// pump admits queued operations while the window and their subtree
// groups have room, scanning the backlog in FIFO order (a blocked group
// does not head-of-line-block the ops behind it). Re-entrant calls — a
// completion callback submitting the next closed-loop op — fold into the
// outermost pump, which re-checks the queue until nothing is admissible.
func (s *Scheduler) pump() {
	if s.pumping {
		return
	}
	s.pumping = true
	defer func() { s.pumping = false }()
	for s.inflight < s.cfg.Window {
		i := -1
		for j, op := range s.queue {
			if s.groups[op.group] < s.cfg.PerGroup {
				i = j
				break
			}
		}
		if i < 0 {
			return
		}
		op := s.queue[i]
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.dispatch(op)
	}
}

// dispatch admits one operation: it claims a window and group slot and
// hands the op to the protocol. Unroutable dispatches resolve
// immediately; the protocol resolves everything else through resolve.
func (s *Scheduler) dispatch(op *opState) {
	now := s.eng.Now()
	if !op.admitted {
		op.admitted = true
		op.admittedAt = now
		s.stats.Admitted++
		if s.queueWait != nil {
			s.queueWait.Observe((now - op.enqueuedAt).Seconds())
		}
	}
	op.attempts++
	op.inflight = true
	s.inflight++
	s.groups[op.group]++
	cb := func(r protocol.Result) { s.resolve(op, r) }
	var uid uint32
	var err error
	if s.retry != nil && op.attempts > 1 {
		uid, err = s.retry.SendControlRetry(op.dst, op.app, cb)
	} else {
		uid, err = s.d.SendControl(op.dst, op.app, cb)
	}
	s.emit(telemetry.Event{Kind: telemetry.KindSinkAdmit, Seq: op.ticket, Op: uid,
		Dst: op.dst, Value: (now - op.enqueuedAt).Seconds()})
	if err != nil {
		// No route or code for the destination: the command plane cannot
		// heal that by waiting, so it is terminal (and distinct from a
		// protocol-resolved failure in the stats).
		s.release(op)
		s.stats.Unroutable++
		s.finish(op, err)
	}
}

// resolve consumes the protocol's end-to-end outcome of one dispatch.
func (s *Scheduler) resolve(op *opState, r protocol.Result) {
	if op.finished || !op.inflight {
		return
	}
	op.lastResult = r
	s.release(op)
	now := s.eng.Now()
	switch {
	case r.OK:
		s.finish(op, nil)
	case op.retries > 0 && (op.deadline == 0 || now < op.deadline):
		op.retries--
		s.stats.Retried++
		s.emit(telemetry.Event{Kind: telemetry.KindSinkRetry, Seq: op.ticket,
			Dst: op.dst, Value: float64(op.attempts)})
		// Head of the queue: the subtree's serialized order must hold, so
		// a retried op goes back in front of everything queued behind it.
		s.queue = append([]*opState{op}, s.queue...)
	default:
		if op.deadline > 0 && now >= op.deadline && op.retries > 0 {
			s.stats.Expired++
			s.finish(op, ErrBudget)
			break
		}
		s.finish(op, nil)
	}
	s.pump()
}

// release returns the op's window and group slots.
func (s *Scheduler) release(op *opState) {
	op.inflight = false
	s.inflight--
	if n := s.groups[op.group]; n <= 1 {
		delete(s.groups, op.group)
	} else {
		s.groups[op.group] = n - 1
	}
}

// expireQueued drops an operation whose budget ran out while it was
// still (or again) waiting in the queue. In-flight ops are left to the
// protocol, which always resolves within its own control timeout; their
// deadline is enforced at resolve time instead.
func (s *Scheduler) expireQueued(op *opState) {
	if op.finished || op.inflight {
		return
	}
	for i, q := range s.queue {
		if q == op {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.stats.Expired++
	s.emit(telemetry.Event{Kind: telemetry.KindSinkExpire, Seq: op.ticket, Dst: op.dst})
	s.finish(op, ErrBudget)
}

// finish resolves the op exactly once: final bookkeeping, the completion
// event, and the caller's callback.
func (s *Scheduler) finish(op *opState, opErr error) {
	if op.finished {
		return
	}
	op.finished = true
	op.expire.Cancel()
	op.expire = sim.EventRef{}
	now := s.eng.Now()
	ok := opErr == nil && op.lastResult.OK
	if ok {
		s.stats.CompletedOK++
		if s.totalLat != nil {
			s.totalLat.Observe((now - op.enqueuedAt).Seconds())
		}
	} else if opErr == nil {
		s.stats.Failed++
	}
	if opErr != ErrBudget {
		v := 0.0
		if ok {
			v = 1
		}
		s.emit(telemetry.Event{Kind: telemetry.KindSinkComplete, Seq: op.ticket,
			Dst: op.dst, Value: v, Hops: op.lastResult.E2EHops})
	}
	if op.done != nil {
		op.done(Outcome{
			Ticket:     op.ticket,
			Dst:        op.dst,
			OK:         ok,
			Err:        opErr,
			Attempts:   op.attempts,
			Result:     op.lastResult,
			EnqueuedAt: op.enqueuedAt,
			AdmittedAt: op.admittedAt,
			Admitted:   op.admitted,
			DoneAt:     now,
		})
	}
}

// emit publishes a sink-layer event attributed to the scheduler's node.
func (s *Scheduler) emit(ev telemetry.Event) {
	if !s.bus.Wants(telemetry.LayerSink) {
		return
	}
	ev.Layer = telemetry.LayerSink
	ev.Node = s.node
	s.bus.Emit(ev)
}
