package sink

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/telemetry"
)

// fakeProto is a deterministic in-memory Dispatcher: each dispatch
// resolves after a fixed latency, failing the first failures[dst]
// attempts to a destination. It records the peak number of concurrent
// in-flight operations, overall and per destination.
type fakeProto struct {
	eng         *sim.Engine
	latency     time.Duration
	failures    map[radio.NodeID]int
	noRoute     map[radio.NodeID]bool
	uidSeq      uint32
	inflight    int
	maxInflight int
	perDst      map[radio.NodeID]int
	maxPerDst   int
	dispatched  []radio.NodeID
}

func newFakeProto(eng *sim.Engine, latency time.Duration) *fakeProto {
	return &fakeProto{
		eng:      eng,
		latency:  latency,
		failures: map[radio.NodeID]int{},
		noRoute:  map[radio.NodeID]bool{},
		perDst:   map[radio.NodeID]int{},
	}
}

func (f *fakeProto) SendControl(dst radio.NodeID, app any, cb func(protocol.Result)) (uint32, error) {
	if f.noRoute[dst] {
		return 0, protocol.ErrNoRoute
	}
	f.uidSeq++
	uid := f.uidSeq
	f.inflight++
	f.perDst[dst]++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	if f.perDst[dst] > f.maxPerDst {
		f.maxPerDst = f.perDst[dst]
	}
	f.dispatched = append(f.dispatched, dst)
	ok := true
	if f.failures[dst] > 0 {
		f.failures[dst]--
		ok = false
	}
	f.eng.Schedule(f.latency, func() {
		f.inflight--
		f.perDst[dst]--
		cb(protocol.Result{UID: uid, Dst: dst, OK: ok, Latency: f.latency})
	})
	return uid, nil
}

// collect submits n ops to destinations 1..n and returns the outcomes in
// completion order after the engine drains.
func collect(t *testing.T, eng *sim.Engine, s *Scheduler, n int) []Outcome {
	t.Helper()
	var outs []Outcome
	for i := 1; i <= n; i++ {
		if _, err := s.Submit(radio.NodeID(i), "op", func(o Outcome) { outs = append(outs, o) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := eng.RunAll(100000); err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestWindowBoundsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, time.Second)
	s := New(eng, fp, Config{Window: 4, PerGroup: 1})
	outs := collect(t, eng, s, 20)
	if fp.maxInflight != 4 {
		t.Fatalf("peak in-flight = %d, want exactly the window 4", fp.maxInflight)
	}
	if len(outs) != 20 {
		t.Fatalf("resolved %d of 20 ops", len(outs))
	}
	for _, o := range outs {
		if !o.OK || o.Err != nil {
			t.Fatalf("op %d failed: ok=%v err=%v", o.Ticket, o.OK, o.Err)
		}
	}
	if !s.Quiesced() {
		t.Fatal("scheduler not quiesced after drain")
	}
	if st := s.Stats(); st.Submitted != 20 || st.CompletedOK != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSharedSubtreeSerialized drives every op into one grouping key: with
// PerGroup 1 the subtree must never carry two concurrent ops, no matter
// how wide the window is.
func TestSharedSubtreeSerialized(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, time.Second)
	s := New(eng, fp, Config{Window: 8, PerGroup: 1, GroupBits: 4})
	// All destinations live under the "0101..." branch: identical 4-bit
	// prefix, distinct suffixes.
	s.SetCoder(func(dst radio.NodeID) (core.PathCode, bool) {
		return core.MustCode(fmt.Sprintf("0101%06b", int(dst)%64)), true
	})
	collect(t, eng, s, 10)
	if fp.maxInflight != 1 {
		t.Fatalf("shared subtree reached %d concurrent ops, want 1", fp.maxInflight)
	}
}

// TestDisjointSubtreesPipeline is the counterpart: two subtree groups and
// PerGroup 1 must pipeline to exactly two concurrent ops.
func TestDisjointSubtreesPipeline(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, time.Second)
	s := New(eng, fp, Config{Window: 8, PerGroup: 1, GroupBits: 4})
	s.SetCoder(func(dst radio.NodeID) (core.PathCode, bool) {
		branch := "0000"
		if dst%2 == 0 {
			branch = "0111"
		}
		return core.MustCode(fmt.Sprintf("%s%06b", branch, int(dst)%64)), true
	})
	collect(t, eng, s, 10)
	if fp.maxInflight != 2 {
		t.Fatalf("two disjoint subtrees reached %d concurrent ops, want 2", fp.maxInflight)
	}
}

func TestRetryBudgetRecovers(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, time.Second)
	fp.failures[3] = 2
	s := New(eng, fp, Config{Window: 2, Retries: 2})
	outs := collect(t, eng, s, 4)
	var got *Outcome
	for i := range outs {
		if outs[i].Dst == 3 {
			got = &outs[i]
		}
	}
	if got == nil || !got.OK || got.Attempts != 3 {
		t.Fatalf("dst 3 outcome = %+v, want OK after 3 attempts", got)
	}
	if st := s.Stats(); st.Retried != 2 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, time.Second)
	fp.failures[2] = 10
	s := New(eng, fp, Config{Window: 2, Retries: 1})
	outs := collect(t, eng, s, 3)
	for _, o := range outs {
		if o.Dst != 2 {
			continue
		}
		if o.OK || o.Err != nil || o.Attempts != 2 {
			t.Fatalf("dst 2 outcome = %+v, want protocol failure after 2 attempts", o)
		}
	}
	if st := s.Stats(); st.Failed != 1 || st.CompletedOK != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnroutableIsTerminal(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, time.Second)
	fp.noRoute[5] = true
	s := New(eng, fp, Config{Window: 2, Retries: 3})
	outs := collect(t, eng, s, 5)
	for _, o := range outs {
		if o.Dst != 5 {
			continue
		}
		if o.OK || !errors.Is(o.Err, protocol.ErrNoRoute) || o.Attempts != 1 {
			t.Fatalf("unroutable outcome = %+v", o)
		}
	}
	if st := s.Stats(); st.Unroutable != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueFullRejects(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, time.Second)
	s := New(eng, fp, Config{Window: 1, MaxQueue: 2})
	fired := 0
	for i := 1; i <= 5; i++ {
		_, err := s.Submit(radio.NodeID(i), "op", func(Outcome) { fired++ })
		// Op 1 admits immediately; 2 and 3 queue; 4 and 5 must bounce.
		if i <= 3 && err != nil {
			t.Fatalf("submit %d rejected early: %v", i, err)
		}
		if i > 3 && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit %d err = %v, want ErrQueueFull", i, err)
		}
	}
	if err := eng.RunAll(10000); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("%d outcomes fired, want 3", fired)
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpBudgetExpiresQueuedOps(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, 10*time.Second)
	s := New(eng, fp, Config{Window: 1, OpBudget: 5 * time.Second})
	outs := collect(t, eng, s, 3)
	expired := 0
	for _, o := range outs {
		if errors.Is(o.Err, ErrBudget) {
			expired++
			if o.Admitted || o.Attempts != 0 {
				t.Fatalf("expired op was dispatched: %+v", o)
			}
		}
	}
	// Op 1 occupies the window for 10 s; ops 2 and 3 hit their 5 s budget
	// while queued.
	if expired != 2 {
		t.Fatalf("%d ops expired, want 2", expired)
	}
	if st := s.Stats(); st.Expired != 2 || st.CompletedOK != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTelemetryQueueSpans checks that the emitted sink-layer events
// reconstruct into one span per op with coherent phases.
func TestTelemetryQueueSpans(t *testing.T) {
	eng := sim.NewEngine()
	fp := newFakeProto(eng, 2*time.Second)
	fp.failures[2] = 1
	s := New(eng, fp, Config{Window: 1, Retries: 1})
	bus := telemetry.NewBus(eng.Now)
	col := telemetry.NewCollector()
	bus.Subscribe(col, telemetry.LayerSink)
	s.SetTelemetry(telemetry.NewRegistry(), bus, 0)

	collect(t, eng, s, 2)
	spans := telemetry.BuildQueueSpans(col.Events())
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	first := spans[0]
	if !first.Admitted || !first.Resolved || !first.OK || first.QueueWait() != 0 {
		t.Fatalf("span 1 = %+v", first)
	}
	second := spans[1]
	if second.Retries != 1 || !second.OK {
		t.Fatalf("span 2 retries=%d ok=%v, want a retried success", second.Retries, second.OK)
	}
	// Op 2 waited behind op 1's 2 s flight, then flew 2+2 s (one failure,
	// one retry).
	if second.QueueWait() != 2*time.Second || second.InFlight() != 4*time.Second {
		t.Fatalf("span 2 wait=%v flight=%v", second.QueueWait(), second.InFlight())
	}
	if second.Total() != second.QueueWait()+second.InFlight() {
		t.Fatal("phases do not compose")
	}
}

// TestSchedulerDeterministic replays the same submission pattern twice
// and requires identical outcome sequences.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() []Outcome {
		eng := sim.NewEngine()
		fp := newFakeProto(eng, 700*time.Millisecond)
		fp.failures[4] = 1
		s := New(eng, fp, Config{Window: 3, PerGroup: 1, GroupBits: 2, Retries: 1})
		s.SetCoder(func(dst radio.NodeID) (core.PathCode, bool) {
			return core.MustCode(fmt.Sprintf("%08b", int(dst)%256)), true
		})
		var outs []Outcome
		for i := 1; i <= 12; i++ {
			id := radio.NodeID(i)
			_, _ = s.Submit(id, "op", func(o Outcome) { outs = append(outs, o) })
		}
		if err := eng.RunAll(100000); err != nil {
			t.Fatal(err)
		}
		return outs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestGroupKey(t *testing.T) {
	cases := []struct {
		code string
		bits int
		want string
	}{
		{"010111", 4, "0101"},
		{"010111", 0, "010111"},
		{"010111", -3, "010111"},
		{"01", 4, "01"},
		{"", 4, "ε"},
		{"1111", 4, "1111"},
	}
	for _, c := range cases {
		code := core.MustCode(c.code)
		if got := GroupKey(code, c.bits); got != c.want {
			t.Errorf("GroupKey(%q, %d) = %q, want %q", c.code, c.bits, got, c.want)
		}
	}
}
