package sink

import (
	"strings"
	"testing"

	"teleadjust/internal/core"
)

// codeFromFuzzBytes maps an arbitrary byte slice onto a valid path code:
// each byte contributes one bit (low bit), capped at MaxCodeBits.
func codeFromFuzzBytes(raw []byte) core.PathCode {
	if len(raw) > core.MaxCodeBits {
		raw = raw[:core.MaxCodeBits]
	}
	var sb strings.Builder
	for _, b := range raw {
		if b&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return core.MustCode(sb.String())
}

// FuzzGroupKey pins the grouping-key contract the scheduler's subtree
// serialization depends on: the key is a deterministic prefix of the
// code, and two codes share a key exactly when their common prefix
// covers both truncation lengths.
func FuzzGroupKey(f *testing.F) {
	f.Add([]byte{}, []byte{}, 0)
	f.Add([]byte{1, 0, 1, 1}, []byte{1, 0, 1, 0}, 3)
	f.Add([]byte{1, 0, 1, 1}, []byte{1, 0, 1, 0}, 4)
	f.Add([]byte{0, 1}, []byte{0, 1, 1, 1, 0}, 6)
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, []byte{1, 1}, -2)
	f.Add([]byte{0}, []byte{}, 1)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, bits int) {
		a := codeFromFuzzBytes(rawA)
		b := codeFromFuzzBytes(rawB)
		keyA := GroupKey(a, bits)
		keyB := GroupKey(b, bits)

		// Determinism: same inputs, same key.
		if again := GroupKey(a, bits); again != keyA {
			t.Fatalf("GroupKey not deterministic: %q then %q", keyA, again)
		}

		// The key is the rendering of a prefix of the code.
		wantLen := a.Len()
		if bits > 0 && bits < wantLen {
			wantLen = bits
		}
		if keyA != a.Prefix(wantLen).String() {
			t.Fatalf("GroupKey(%v, %d) = %q, want prefix of length %d (%q)",
				a, bits, keyA, wantLen, a.Prefix(wantLen).String())
		}

		// Equivalence contract: keys collide exactly when the longest
		// common prefix covers both truncation lengths.
		lenA, lenB := a.Len(), b.Len()
		if bits > 0 {
			if lenA > bits {
				lenA = bits
			}
			if lenB > bits {
				lenB = bits
			}
		}
		sameKey := keyA == keyB
		wantSame := lenA == lenB && a.CommonPrefixLen(b) >= lenA
		if sameKey != wantSame {
			t.Fatalf("GroupKey(%v)=%q GroupKey(%v)=%q bits=%d: collide=%v, contract says %v",
				a, keyA, b, keyB, bits, sameKey, wantSame)
		}
	})
}
