package core_test

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/experiment"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/topology"
)

// convergedLine builds a 5-node line network with converged codes and
// returns it; node i is i hops from the sink.
func convergedLine(t *testing.T, n int, seed uint64, mutate func(*experiment.Config)) *experiment.Net {
	t.Helper()
	net := buildTele(t, topology.Line(n, 7), seed, mutate)
	run(t, net, 3*time.Minute)
	for i := 1; i < n; i++ {
		if _, ok := net.Tele(radio.NodeID(i)).Code(); !ok {
			t.Fatalf("node %d has no code; cannot test forwarding decisions", i)
		}
	}
	return net
}

// controlFor crafts the anycast control frame a transmitter would stream.
func controlFor(net *experiment.Net, src, dst, expected radio.NodeID, expectedLen int) *radio.Frame {
	code, _ := net.Tele(radio.NodeID(dst)).Code()
	return &radio.Frame{
		Kind: radio.FrameData,
		Src:  src,
		Dst:  radio.BroadcastID,
		Seq:  999,
		Size: 30,
		Payload: &core.Control{
			UID:         777,
			Op:          777,
			Dst:         dst,
			DstCode:     code,
			Expected:    expected,
			ExpectedLen: uint8(expectedLen),
			Hops:        1,
		},
	}
}

// TestRelayConditionExpected: condition (1) of Section III-C — the
// expected relay accepts even without code progress.
func TestRelayConditionExpected(t *testing.T) {
	net := convergedLine(t, 5, 31, nil)
	c1, _ := net.Tele(radio.NodeID(1)).Code()
	// Sink streams toward node 4, expecting node 1.
	f := controlFor(net, 0, 4, 1, c1.Len())
	got := net.Tele(radio.NodeID(1)).Classify(f)
	if got.Decision != mac.AckAndDeliver {
		t.Fatalf("expected relay did not accept: %+v", got)
	}
}

// TestRelayConditionCloser: condition (2) — an on-path node with a longer
// matched prefix than the expected relay accepts, and with an earlier
// (smaller) ack priority the more progress it offers.
func TestRelayConditionCloser(t *testing.T) {
	net := convergedLine(t, 5, 32, nil)
	c1, _ := net.Tele(radio.NodeID(1)).Code()
	f := controlFor(net, 0, 4, 1, c1.Len())
	// Node 2 is on the encoded path (its code extends node 1's): it may
	// take the packet over the expected relay 1.
	got2 := net.Tele(radio.NodeID(2)).Classify(f)
	if got2.Decision != mac.AckAndDeliver {
		t.Fatalf("closer on-path node did not accept: %+v", got2)
	}
	got1 := net.Tele(radio.NodeID(1)).Classify(f)
	if got2.Prio >= got1.Prio {
		t.Fatalf("closer node must ack earlier: node2 prio %d, node1 prio %d", got2.Prio, got1.Prio)
	}
	// Node 3 offers even more progress: earlier or equal slot vs node 2.
	got3 := net.Tele(radio.NodeID(3)).Classify(f)
	if got3.Decision != mac.AckAndDeliver || got3.Prio > got2.Prio {
		t.Fatalf("more progress must not ack later: node3 %+v vs node2 %+v", got3, got2)
	}
}

// TestDestinationAlwaysAccepts: the destination accepts at the earliest
// priority regardless of the attached expectation.
func TestDestinationAlwaysAccepts(t *testing.T) {
	net := convergedLine(t, 5, 33, nil)
	f := controlFor(net, 3, 4, 4, 0)
	got := net.Tele(radio.NodeID(4)).Classify(f)
	if got.Decision != mac.AckAndDeliver || got.Prio != 0 {
		t.Fatalf("destination classification = %+v, want accept at prio 0", got)
	}
}

// TestOffPathIgnores: a node that neither matches the code nor knows a
// qualifying neighbor ignores the packet.
func TestOffPathIgnores(t *testing.T) {
	// Y topology: a second branch hanging off the sink.
	dep := &topology.Deployment{
		Name: "y",
		Positions: []topology.Point{
			{X: 0, Y: 0},   // 0 sink
			{X: 7, Y: 0},   // 1
			{X: 14, Y: 0},  // 2
			{X: 21, Y: 0},  // 3  ← destination branch
			{X: -7, Y: 0},  // 4  ← other branch, out of range of 2,3
			{X: -14, Y: 0}, // 5
		},
		Sink: 0,
	}
	net := buildTele(t, dep, 34, nil)
	run(t, net, 3*time.Minute)
	if _, ok := net.Tele(radio.NodeID(3)).Code(); !ok {
		t.Skip("codes did not converge on the Y topology")
	}
	c2, _ := net.Tele(radio.NodeID(2)).Code()
	f := controlFor(net, 2, 3, 3, c2.Len())
	// Node 5 on the other branch: no prefix match, no qualifying
	// neighbor.
	got := net.Tele(radio.NodeID(5)).Classify(f)
	if got.Decision != mac.Ignore {
		t.Fatalf("off-path node accepted: %+v", got)
	}
}

// TestNeighborCondition: condition (3) — a node that is NOT on the path
// but has a qualifying neighbor accepts (Figure 4c's node E).
func TestNeighborCondition(t *testing.T) {
	// Triangle around the path: h sits beside the 0-1-2 line, hearing
	// both 1 and 2 but holding a code on a different branch.
	dep := &topology.Deployment{
		Name: "side",
		Positions: []topology.Point{
			{X: 0, Y: 0},  // 0 sink
			{X: 7, Y: 0},  // 1
			{X: 14, Y: 0}, // 2 destination
			{X: 7, Y: 5},  // 3 the side node (hears 0,1,2)
		},
		Sink: 0,
	}
	net := buildTele(t, dep, 35, nil)
	run(t, net, 3*time.Minute)
	code2, ok := net.Tele(radio.NodeID(2)).Code()
	if !ok {
		t.Skip("codes did not converge")
	}
	if net.Stacks[2].Ctp.Parent() == 3 {
		t.Skip("node 3 became node 2's parent; scenario needs it off-path")
	}
	// Sink streams toward 2 expecting 1 (code length of 1).
	code1, _ := net.Tele(radio.NodeID(1)).Code()
	f := controlFor(net, 0, 2, 1, code1.Len())
	got := net.Tele(radio.NodeID(3)).Classify(f)
	if got.Decision != mac.AckAndDeliver {
		t.Fatalf("side node with qualifying neighbor did not accept: %+v (knows dest code %v)", got, code2)
	}
	// Its priority must be later than an equally-advanced direct match.
	direct := net.Tele(radio.NodeID(2)).Classify(f) // destination: prio 0
	if got.Prio <= direct.Prio {
		t.Fatalf("neighbor-based acceptance must not outrank the destination: %+v vs %+v", got, direct)
	}
}

// TestStrictModeOnlyExpectedAccepts: the ablation switch disables
// conditions (2) and (3).
func TestStrictModeOnlyExpectedAccepts(t *testing.T) {
	net := convergedLine(t, 5, 36, func(cfg *experiment.Config) {
		cfg.Tele.Opportunistic = false
	})
	c1, _ := net.Tele(radio.NodeID(1)).Code()
	f := controlFor(net, 0, 4, 1, c1.Len())
	if got := net.Tele(radio.NodeID(2)).Classify(f); got.Decision != mac.Ignore {
		t.Fatalf("strict mode: non-expected on-path node accepted: %+v", got)
	}
	if got := net.Tele(radio.NodeID(1)).Classify(f); got.Decision != mac.AckAndDeliver || got.Prio != 0 {
		t.Fatalf("strict mode: expected relay classification = %+v", got)
	}
	// The destination still accepts.
	if got := net.Tele(radio.NodeID(4)).Classify(f); got.Decision != mac.AckAndDeliver {
		t.Fatalf("strict mode: destination ignored: %+v", got)
	}
}

// TestPaperFigure2Example reproduces the worked example of Section III-B1:
// with S→A→B→C→E→D codes as in Figure 2, a node M (a neighbor of S and C
// but NOT on the path) must decide to assist when S names expected relay A
// with 3 valid bits, because M knows C's code is a longer prefix of D's.
func TestPaperFigure2Example(t *testing.T) {
	// Build codes directly with the pathcode algebra (unit-level check of
	// the decision rule, independent of the live protocol).
	s := core.RootCode()
	a, _ := s.Extend(1, 2) // 001
	m, _ := s.Extend(2, 2) // 010
	b, _ := a.Extend(1, 2) // 00101
	c, _ := b.Extend(1, 2) // 0010101
	d, _ := c.Extend(1, 2) // D's code: on the path through C
	if !c.IsPrefixOf(d) || !b.IsPrefixOf(d) || !a.IsPrefixOf(d) {
		t.Fatal("figure 2 chain broken")
	}
	if m.IsPrefixOf(d) {
		t.Fatal("M must not be on D's path")
	}
	// M's decision inputs: expected relay A with valid length 3; M knows
	// C's code (a 7-bit prefix of D's). Condition (3) holds: C's match
	// (7) exceeds the expected relay's length (3).
	if c.Len() <= a.Len() {
		t.Fatal("C must be closer than A")
	}
	if got := c.CommonPrefixLen(d); got != c.Len() {
		t.Fatalf("C matches %d bits of D, want full %d", got, c.Len())
	}
}
