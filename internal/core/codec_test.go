package core

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"teleadjust/internal/sim"
)

func TestCodecRegistry(t *testing.T) {
	def, err := CodecByName("")
	if err != nil || def.Name() != "paper" {
		t.Fatalf("CodecByName(\"\") = %v, %v; want the paper codec", def, err)
	}
	if _, err := CodecByName("morse"); err == nil {
		t.Fatal("unknown codec accepted")
	} else if !strings.Contains(err.Error(), "paper") {
		t.Fatalf("unknown-codec error %q does not list the registry", err)
	}
	names := CodecNames()
	if want := []string{"huffman", "paper", "treeexplorer"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("CodecNames() = %v, want %v", names, want)
	}
	for _, name := range names {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Errorf("codec registered as %q reports Name %q", name, c.Name())
		}
		if got, want := c.Positional(), name == "paper"; got != want {
			t.Errorf("%s: Positional() = %v, want %v", name, got, want)
		}
	}
}

// TestQuasiBalancedLabels pins the treeexplorer label set: for every slot
// count the lengths differ by at most one bit and the Kraft sum is exactly
// one (the label tree wastes no space).
func TestQuasiBalancedLabels(t *testing.T) {
	for chi := 2; chi <= 33; chi++ {
		short, shortLen := quasiBalancedSplit(chi)
		// s·2^-k + (χ−s)·2^-(k+1) = 1, in units of 2^-(k+1).
		if kraft := short*2 + (chi - short); kraft != 1<<(shortLen+1) {
			t.Fatalf("chi=%d: Kraft sum %d/%d", chi, kraft, 1<<(shortLen+1))
		}
		for pos := 1; pos <= chi; pos++ {
			l, err := teLabel(pos, chi)
			if err != nil {
				t.Fatalf("teLabel(%d, %d): %v", pos, chi, err)
			}
			if l.Len() != shortLen && l.Len() != shortLen+1 {
				t.Fatalf("chi=%d pos=%d: label %v is neither %d nor %d bits",
					chi, pos, l, shortLen, shortLen+1)
			}
		}
	}
}

// TestTreeExplorerReserveJoins pins the codec's headline property: joins
// that land inside the pre-labeled reserve change nobody's label, and only
// growing χ beyond the reserve relabels.
func TestTreeExplorerReserveJoins(t *testing.T) {
	alloc := TreeExplorerCodec().NewAllocator(DefaultReserve)
	if err := alloc.AllocateInitial(4); err != nil { // χ = 4 + reserve 2 = 6
		t.Fatal(err)
	}
	before := make(map[uint16]PathCode)
	for p := uint16(1); p <= 4; p++ {
		l, err := alloc.Label(p)
		if err != nil {
			t.Fatal(err)
		}
		before[p] = l
	}
	for i := 0; i < 2; i++ { // joins 5 and 6 land in the reserve
		_, relabel, err := alloc.Add()
		if err != nil {
			t.Fatal(err)
		}
		if relabel {
			t.Fatalf("join %d within the reserve relabeled", i+1)
		}
	}
	for p, want := range before {
		if got, err := alloc.Label(p); err != nil || !got.Equal(want) {
			t.Fatalf("reserve join moved position %d: %v → %v (%v)", p, want, got, err)
		}
	}
	if _, relabel, err := alloc.Add(); err != nil || !relabel {
		t.Fatalf("join beyond the reserve: relabel=%v err=%v, want a relabel", relabel, err)
	}
}

// TestHuffmanWeightsShortenHeavyLabels pins the huffman codec's headline
// property: a position carrying a large subtree-size estimate gets a label
// no longer than any weight-1 sibling's.
func TestHuffmanWeightsShortenHeavyLabels(t *testing.T) {
	alloc := HuffmanCodec().NewAllocator(nil)
	if err := alloc.AllocateInitial(6); err != nil {
		t.Fatal(err)
	}
	if !alloc.SetWeight(3, 40) {
		t.Fatal("weight change on a fresh uniform code must relabel")
	}
	heavy, err := alloc.Label(3)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint16(1); p <= 6; p++ {
		if p == 3 {
			continue
		}
		l, err := alloc.Label(p)
		if err != nil {
			t.Fatal(err)
		}
		if heavy.Len() > l.Len() {
			t.Fatalf("heavy subtree's label %v longer than sibling %d's %v", heavy, p, l)
		}
	}
	alloc.SetWeight(3, 200) // clamps to the saturation cap
	if alloc.SetWeight(3, 300) {
		t.Fatal("weight beyond the saturation cap must be a no-op after saturating")
	}
	if alloc.SetWeight(9, 5) {
		t.Fatal("SetWeight on an unallocated position must be ignored")
	}
}

// sortedPositions returns the live set in ascending order.
func sortedPositions(live map[uint16]bool) []uint16 {
	out := make([]uint16, 0, len(live))
	for p := range live {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkLabelInvariants asserts the codec seam's contract over the live
// position set: every label resolves, is non-empty, fits SpaceBits, the
// label set is prefix-free, and a child's full code parent.Append(label)
// strictly extends the parent (for positional codecs it must also equal the
// fixed-width Extend form the children derive on their own).
func checkLabelInvariants(t *testing.T, alloc Allocator, parent PathCode, live map[uint16]bool, positional bool) {
	t.Helper()
	space := alloc.SpaceBits()
	if space <= 0 {
		t.Fatal("SpaceBits must be positive after allocation")
	}
	positions := sortedPositions(live)
	labels := make([]PathCode, len(positions))
	for i, pos := range positions {
		label, err := alloc.Label(pos)
		if err != nil {
			t.Fatalf("Label(%d): %v", pos, err)
		}
		if label.IsEmpty() {
			t.Fatalf("position %d has an empty label", pos)
		}
		if label.Len() > space {
			t.Fatalf("position %d label %v exceeds SpaceBits %d", pos, label, space)
		}
		full, err := parent.Append(label)
		if err != nil {
			t.Fatalf("Append(%v): %v", label, err)
		}
		if !parent.IsPrefixOf(full) || full.Len() != parent.Len()+label.Len() {
			t.Fatalf("child code %v does not extend parent %v", full, parent)
		}
		if positional {
			viaExtend, err := parent.Extend(pos, space)
			if err != nil {
				t.Fatal(err)
			}
			if !viaExtend.Equal(full) {
				t.Fatalf("positional codec: Extend gives %v, Append gives %v", viaExtend, full)
			}
		}
		labels[i] = label
	}
	for i := range labels {
		for j := range labels {
			if i != j && labels[i].IsPrefixOf(labels[j]) {
				t.Fatalf("labels not prefix-free: position %d (%v) prefixes position %d (%v)",
					positions[i], labels[i], positions[j], labels[j])
			}
		}
	}
}

// TestCodecPrefixFreeRandomizedJoinLeave is the cross-codec property test:
// a long randomized join/leave/weight-churn sequence must keep every
// codec's label set prefix-free with every child code strictly extending
// the parent's, after every single step.
func TestCodecPrefixFreeRandomizedJoinLeave(t *testing.T) {
	parent := MustCode("010")
	for _, name := range CodecNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			codec, err := CodecByName(name)
			if err != nil {
				t.Fatal(err)
			}
			alloc := codec.NewAllocator(nil)
			if alloc.Allocated() {
				t.Fatal("fresh allocator reports Allocated")
			}
			if _, _, err := alloc.Add(); err == nil {
				t.Fatal("Add before initial allocation accepted")
			}
			if err := alloc.AllocateInitial(3); err != nil {
				t.Fatal(err)
			}
			if err := alloc.AllocateInitial(3); err == nil {
				t.Fatal("double AllocateInitial accepted")
			}
			live := map[uint16]bool{1: true, 2: true, 3: true}
			rng := sim.NewRNG(0xc0dec + uint64(len(name)))
			pick := func() uint16 {
				ids := sortedPositions(live)
				return ids[rng.IntN(len(ids))]
			}
			for step := 0; step < 300; step++ {
				switch op := rng.IntN(10); {
				case op < 5 || len(live) == 0: // join
					pos, _, err := alloc.Add()
					if err != nil {
						t.Fatalf("step %d: Add: %v", step, err)
					}
					if pos == 0 || live[pos] {
						t.Fatalf("step %d: Add returned invalid position %d", step, pos)
					}
					live[pos] = true
				case op < 8: // leave
					pos := pick()
					alloc.Release(pos)
					delete(live, pos)
					if _, err := alloc.Label(pos); err == nil {
						t.Fatalf("step %d: Label of released position %d succeeded", step, pos)
					}
				default: // subtree-size estimate churn
					alloc.SetWeight(pick(), 1+rng.IntN(40))
				}
				checkLabelInvariants(t, alloc, parent, live, codec.Positional())
			}
		})
	}
}
