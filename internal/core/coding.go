package core

import (
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// buildExt assembles the TeleAdjusting state piggybacked on each routing
// beacon.
func (e *Engine) buildExt() any {
	ext := &TeleExt{
		HasCode:  e.haveCode,
		Code:     e.myCode,
		Depth:    e.depth,
		Parent:   e.ctp.Parent(),
		Position: e.position,
	}
	if e.children.Allocated() {
		ext.SpaceBits = uint8(e.children.SpaceBits())
		// Attach allocations while any child is unconfirmed, so lost
		// TeleAdjusting beacons are repaired by subsequent routing beacons.
		if !e.children.AllConfirmed() {
			ext.Allocations = e.children.Entries()
		}
	}
	return ext
}

// onParentChange reacts to CTP parent changes: the routing-found event
// arms code construction, and later switches invalidate the current code
// (the new parent allocates a fresh position).
func (e *Engine) onParentChange(old, new radio.NodeID) {
	if e.isSink {
		return
	}
	if old != ctp.NoParent && e.haveCode {
		// Keep the superseded code matchable for a while.
		e.retireCode()
	}
	e.position = 0
	e.havePosition = false
	e.label = PathCode{}
	e.haveLabel = false
	e.haveParent = false
	if !e.haveCode {
		e.haveEligibleAt = false // the clock restarts with the new parent
	}
	// If we already know the new parent's published code (from overheard
	// beacons), request a position proactively instead of waiting for its
	// next beacon — Trickle intervals can be long in a settled network.
	if nc, ok := e.neighborCodes[new]; ok && nc.spaceBits > 0 {
		e.lastRequest = e.eng.Now()
		e.stats.PositionReqs++
		_ = e.node.Send(&radio.Frame{
			Kind:    radio.FrameData,
			Dst:     new,
			Size:    8,
			Payload: &PositionRequest{},
		})
	}
}

// onBeacon processes every received routing beacon: neighbor code learning,
// child discovery, and parent/child consistency (Algorithms 2 and 3).
func (e *Engine) onBeacon(from radio.NodeID, b *ctp.Beacon) {
	now := e.eng.Now()
	// Hearing a routing beacon clears the unreachable flag (Section
	// III-C3: "until it hears the corresponding routing beacon from them
	// again").
	delete(e.unreachable, from)

	ext, ok := b.Ext.(*TeleExt)
	if !ok || ext == nil {
		// Plain beacon: child discovery still works from the routing
		// parent field.
		if b.Parent == e.node.ID() {
			e.observeChild(from)
		}
		return
	}
	// Neighbor code table upkeep.
	if ext.HasCode {
		nc := e.neighborCodes[from]
		if nc == nil {
			nc = &neighborCode{}
			e.neighborCodes[from] = nc
		}
		if !nc.code.IsEmpty() && !nc.code.Equal(ext.Code) {
			nc.oldCode = nc.code
			nc.oldUntil = now + e.cfg.OldCodeTTL
		}
		nc.code = ext.Code
		nc.depth = ext.Depth
		nc.spaceBits = ext.SpaceBits
		nc.heardAt = now
	}

	if from == e.ctp.Parent() {
		e.onParentBeacon(from, ext)
	}
	if ext.Parent == e.node.ID() {
		e.onChildBeacon(from, ext)
	} else {
		// A former child that moved away frees its position.
		if e.children.Position(from) != 0 {
			e.children.Remove(from)
		}
	}
	if !e.codecPositional {
		e.observeGrandchild(from, ext.Parent)
	}
}

// observeGrandchild tracks which of my children each overheard neighbor
// sits under (its beacon names its parent), maintaining the subtree-size
// estimates weight-sensitive codecs use to hand heavier subtrees shorter
// labels. Positional codecs never get here.
func (e *Engine) observeGrandchild(from, parent radio.NodeID) {
	old, had := e.grandkids[from]
	if parent == e.node.ID() || e.children.Position(parent) == 0 {
		// from is my direct child, or sits under a node that is not my
		// child: it contributes to no child subtree of mine.
		if had {
			delete(e.grandkids, from)
			e.updateWeight(old)
		}
		return
	}
	if had && old == parent {
		return
	}
	e.grandkids[from] = parent
	if had {
		e.updateWeight(old)
	}
	e.updateWeight(parent)
}

// updateWeight recomputes a child's subtree estimate (itself plus its
// observed grandchildren) and feeds it to the codec; a resulting relabel
// is announced like a space extension.
func (e *Engine) updateWeight(child radio.NodeID) {
	if e.children.Position(child) == 0 {
		return
	}
	w := 1
	for _, p := range e.grandkids {
		if p == child {
			w++
		}
	}
	if e.children.SetWeight(child, w) {
		e.relabeled()
	}
}

// onParentBeacon implements the child side (Algorithm 3).
func (e *Engine) onParentBeacon(from radio.NodeID, ext *TeleExt) {
	if e.isSink || !ext.HasCode {
		return
	}
	if !e.haveCode && !e.haveEligibleAt {
		e.eligibleAt = e.eng.Now()
		e.haveEligibleAt = true
	}
	parentChanged := !e.haveParent ||
		!e.parentCode.Equal(ext.Code) ||
		e.parentSpace != ext.SpaceBits
	e.parentCode = ext.Code
	e.parentSpace = ext.SpaceBits
	e.parentDepth = ext.Depth
	e.haveParent = true

	// Scan the attached allocations for my entry.
	for _, a := range ext.Allocations {
		if a.Child != e.node.ID() {
			continue
		}
		labelChanged := false
		if !a.Label.IsEmpty() && (!e.haveLabel || !e.label.Equal(a.Label)) {
			// Adopt the explicit label (variable-length codecs) before the
			// position so the code recomputes once, from consistent state.
			e.label = a.Label
			e.haveLabel = true
			labelChanged = true
		}
		if !e.havePosition || e.position != a.Position {
			e.adoptPosition(a.Position)
		}
		if !a.Confirmed {
			e.sendConfirm(from)
		}
		if parentChanged || labelChanged {
			e.recomputeCode()
		}
		return
	}

	switch {
	case e.havePosition:
		// Space extension or upstream code change: recompute.
		if parentChanged {
			e.recomputeCode()
		}
	case ext.SpaceBits > 0:
		// Parent has allocated but I have no position: request one
		// (Section III-B4), rate limited.
		if e.eng.Now()-e.lastRequest >= e.cfg.RequestMinGap {
			e.lastRequest = e.eng.Now()
			e.stats.PositionReqs++
			_ = e.node.Send(&radio.Frame{
				Kind:    radio.FrameData,
				Dst:     from,
				Size:    8,
				Payload: &PositionRequest{},
			})
		}
	}
}

// onChildBeacon implements the parent side (Algorithm 2) driven by the
// child's piggybacked position announcement.
func (e *Engine) onChildBeacon(from radio.NodeID, ext *TeleExt) {
	e.observeChild(from)
	if !e.children.Allocated() {
		return
	}
	if ext.Position == 0 {
		// Child without a position: allocate (or look up) and acknowledge.
		e.allocateAndAck(from)
		return
	}
	out, pos, relabel, err := e.children.Confirm(from, ext.Position)
	if err != nil {
		return
	}
	switch out {
	case ConfirmMatched:
		e.stats.Confirms++
		if !e.codecPositional && ext.HasCode && e.haveCode {
			// Label consistency (variable-length codecs): the child's
			// position matches, but its announced code may still derive
			// from a stale label after a relabel. Unconfirm and re-ack so
			// the current label reaches it.
			if label := e.children.LabelOf(from); !label.IsEmpty() {
				if want, err := e.myCode.Append(label); err == nil && !want.Equal(ext.Code) {
					e.children.Unconfirm(from)
					e.sendAllocationAck(from, pos)
				}
			}
		}
	case ConfirmReallocated, ConfirmNew:
		if relabel {
			e.announceSpaceChange()
		}
		e.sendAllocationAck(from, pos)
	}
}

// observeChild records child discovery and (re)arms the initial-allocation
// timer.
func (e *Engine) observeChild(from radio.NodeID) {
	if e.children.Observe(from) {
		e.lastChildNews = e.eng.Now()
		if !e.children.Allocated() {
			e.allocTimer.Start(e.cfg.AllocDelay)
		}
	}
}

// maybeAllocate fires AllocDelay after the last new-child discovery
// (Algorithm 1's trigger condition).
func (e *Engine) maybeAllocate() {
	if e.children.Allocated() || e.children.PendingLen() == 0 {
		return
	}
	if !e.haveCode {
		// Cannot publish prefixes without a code yet; retry shortly.
		e.allocTimer.Start(e.cfg.AllocDelay / 2)
		return
	}
	if err := e.children.AllocateInitial(); err != nil {
		return
	}
	// "Consecutively broadcast two TeleAdjusting beacon attaching all
	// <child, position, flag> information": reset trickle now; the
	// allocations ride on every beacon until confirmed.
	e.ctp.TriggerBeacon()
}

// allocateAndAck gives a position to a known-or-new child and unicasts the
// allocation acknowledgement.
func (e *Engine) allocateAndAck(child radio.NodeID) {
	pos, relabel, err := e.children.Request(child)
	if err != nil {
		return
	}
	if relabel {
		e.announceSpaceChange()
	}
	e.sendAllocationAck(child, pos)
}

func (e *Engine) sendAllocationAck(child radio.NodeID, pos uint16) {
	e.stats.AllocationAcks++
	label := e.children.LabelOf(child) // empty for positional codecs
	size := 8 + e.myCode.SizeBytes()
	if !label.IsEmpty() {
		size += label.SizeBytes()
	}
	_ = e.node.Send(&radio.Frame{
		Kind: radio.FrameData,
		Dst:  child,
		Size: size,
		Payload: &AllocationAck{
			Position:    pos,
			SpaceBits:   uint8(e.children.SpaceBits()),
			ParentCode:  e.myCode,
			ParentDepth: e.depth,
			Label:       label,
		},
	})
}

// announceSpaceChange reacts to a label-space change on allocation: a
// bit-space extension (positional codecs) or a relabel (variable-length
// codecs). Either way all children must learn the new state, so beacon
// immediately; the child table has already unconfirmed relabeled entries
// so their new labels ride the beacons.
func (e *Engine) announceSpaceChange() {
	if e.codecPositional {
		e.spaceExtended()
	} else {
		e.relabeled()
	}
}

// spaceExtended reacts to a bit-space extension: all children must learn
// the wider width, so beacon immediately.
func (e *Engine) spaceExtended() {
	e.stats.SpaceExtensions++
	e.ctp.TriggerBeacon()
}

// relabeled is the variable-length counterpart of spaceExtended.
func (e *Engine) relabeled() {
	e.stats.Relabels++
	e.ctp.TriggerBeacon()
}

// deliverPositionRequest is the parent side of Section III-B4.
func (e *Engine) deliverPositionRequest(child radio.NodeID) {
	e.observeChild(child)
	if !e.children.Allocated() {
		// Initial allocation hasn't fired; the request marks child
		// pressure, so allocate as soon as the timer allows.
		return
	}
	e.allocateAndAck(child)
}

// deliverAllocationAck is the child side: adopt everything in one step.
func (e *Engine) deliverAllocationAck(from radio.NodeID, a *AllocationAck) {
	if !e.haveCode && !e.haveEligibleAt {
		e.eligibleAt = e.eng.Now()
		e.haveEligibleAt = true
	}
	if from != e.ctp.Parent() {
		return // stale ack from a previous parent
	}
	e.parentCode = a.ParentCode
	e.parentSpace = a.SpaceBits
	e.parentDepth = a.ParentDepth
	e.haveParent = true
	if !a.Label.IsEmpty() {
		e.label = a.Label
		e.haveLabel = true
	}
	e.adoptPosition(a.Position)
	e.recomputeCode()
	e.sendConfirm(from)
}

func (e *Engine) adoptPosition(pos uint16) {
	e.position = pos
	e.havePosition = true
	e.recomputeCode()
}

func (e *Engine) sendConfirm(parent radio.NodeID) {
	_ = e.node.Send(&radio.Frame{
		Kind:    radio.FrameData,
		Dst:     parent,
		Size:    8,
		Payload: &ConfirmFrame{Position: e.position},
	})
}

// recomputeCode derives this node's code from the parent's published code
// and our label — the explicit one for variable-length codecs, or the
// fixed-width encoding of our position for positional codecs; on change it
// retires the old code, triggers a beacon (children must re-derive), and
// reports upward.
func (e *Engine) recomputeCode() {
	if e.isSink || !e.haveParent || !e.havePosition || e.parentSpace == 0 {
		return
	}
	var code PathCode
	var err error
	if e.haveLabel {
		code, err = e.parentCode.Append(e.label)
	} else {
		code, err = e.parentCode.Extend(e.position, int(e.parentSpace))
	}
	if err != nil {
		return
	}
	if e.haveCode && code.Equal(e.myCode) {
		return
	}
	first := !e.haveCode
	if e.haveCode {
		e.retireCode()
	} else {
		e.codeAt = e.eng.Now()
	}
	e.myCode = code
	e.haveCode = true
	e.depth = e.parentDepth + 1
	e.stats.CodeChanges++
	if e.bus.Wants(telemetry.LayerCoding) {
		kind := telemetry.KindCodeChanged
		if first {
			kind = telemetry.KindCodeAssigned
		}
		e.bus.Emit(telemetry.Event{Layer: telemetry.LayerCoding, Kind: kind,
			Node: e.node.ID(), Hops: e.depth})
	}
	e.ctp.TriggerBeacon()
	e.sendCodeReport()
	// A late-arriving code must not stall children that were discovered
	// long ago: allocate as soon as the quiet period is already over.
	if !e.children.Allocated() && e.children.PendingLen() > 0 &&
		e.eng.Now()-e.lastChildNews >= e.cfg.AllocDelay {
		e.maybeAllocate()
	}
}

// retireCode keeps the superseded code matchable for OldCodeTTL.
func (e *Engine) retireCode() {
	e.myOldCode = e.myCode
	e.oldCodeUntil = e.eng.Now() + e.cfg.OldCodeTTL
}

// sendCodeReport pushes the current code to the controller over CTP,
// rate-limited: during initial construction codes change in cascades and
// per-change reports would congest the upward plane.
func (e *Engine) sendCodeReport() {
	if e.isSink || !e.haveCode || !e.ctp.HasRoute() {
		return
	}
	const minGap = 10 * time.Second
	now := e.eng.Now()
	if now-e.lastReport < minGap {
		if !e.reportDirty {
			e.reportDirty = true
			e.eng.Schedule(minGap-(now-e.lastReport), func() {
				e.reportDirty = false
				e.sendCodeReport()
			})
		}
		return
	}
	e.lastReport = now
	_ = e.ctp.SendToSink(&CodeReport{Code: e.myCode, Depth: e.depth})
}

// handleCollect is the sink-side CTP delivery hook: registry updates, e2e
// acks, and pass-through of application payloads.
func (e *Engine) handleCollect(origin radio.NodeID, app any) {
	switch p := app.(type) {
	case *CodeReport:
		e.registry[origin] = CodeInfo{Code: p.Code, Depth: p.Depth, At: e.eng.Now()}
		if e.bus.Wants(telemetry.LayerCoding) {
			e.bus.Emit(telemetry.Event{Layer: telemetry.LayerCoding,
				Kind: telemetry.KindCodeReported, Node: e.node.ID(),
				Src: origin, Hops: p.Depth})
		}
	case *E2EAck:
		e.resolveAck(p)
	case *ScopeAck:
		e.resolveScopeAck(p)
	default:
		if e.appDelive != nil {
			e.appDelive(origin, app)
		}
	}
}
