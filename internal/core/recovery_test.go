package core_test

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/experiment"
	"teleadjust/internal/fault"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
	"teleadjust/internal/topology"
)

// attachOracle wires the protocol invariant oracle onto the network's
// telemetry bus. Attached after convergence so the oracle only judges the
// control exchange under test.
func attachOracle(net *experiment.Net, teleCfg core.Config, rescue bool) *fault.Oracle {
	orc := fault.NewOracle(fault.OracleConfig{
		NumNodes:       net.Dep.Len(),
		Sink:           net.Sink,
		RetryRounds:    teleCfg.RetryRounds,
		Backtracks:     teleCfg.Backtracks,
		ControlTimeout: teleCfg.ControlTimeout,
		RescueEnabled:  rescue,
	})
	orc.TeleAt = net.Tele
	orc.Alive = net.Alive
	orc.Now = net.Eng.Now
	net.Bus.Subscribe(orc, telemetry.LayerRadio)
	return orc
}

// codeParent returns the node whose path code is the strict prefix
// recorded as dst's parent code — the upstream hop of the *coded* path,
// which can differ from the current CTP parent after tree churn.
func codeParent(net *experiment.Net, dst radio.NodeID) (radio.NodeID, bool) {
	pcode, ok := net.Tele(dst).ParentCode()
	if !ok {
		return 0, false
	}
	for i := 0; i < net.Dep.Len(); i++ {
		id := radio.NodeID(i)
		if id == dst {
			continue
		}
		if c, have := net.Tele(id).Code(); have && c.Equal(pcode) {
			return id, true
		}
	}
	return 0, false
}

// recoveryOutcome is what one scripted-fault control exchange produced.
type recoveryOutcome struct {
	net       *experiment.Net
	orc       *fault.Oracle
	uid       uint32 // first op's wire UID
	uids      []uint32
	res       core.Result // first resolved op
	results   []core.Result
	resolved  bool // every sent op resolved
	delivered bool
	parent    radio.NodeID // dst's tree parent before the fault
	grand     radio.NodeID // parent's tree parent before the fault
}

// TestRecoveryPaths drives each of the paper's §III-C recovery mechanisms
// through a scripted FaultPlan and checks the outcome plus the protocol
// invariant oracle:
//
//   - backtracking: the relay below a crashed hop exhausts its retries and
//     feeds back toward the controller (Fig 5a); with interception and
//     rescue disabled on a line there is no way around, so the op must
//     fail cleanly at the controller.
//   - interception: a pure broadcast-loss window silences the anycast
//     stream but lets unicast feedback through; a downstream node with
//     code progress overhears it, adopts the packet, and completes the
//     delivery (Fig 5a's shortcut).
//   - re-tele: with strict-path forwarding the crash of the coded path's
//     last hop is unrecoverable in-band; the controller must re-Tele the
//     op through a detour relay off the coded path (Fig 5b).
//   - exhaustion: a partitioned destination bounds every relay's
//     transmissions (retry × backtrack budget) and the op fails without
//     livelock.
func TestRecoveryPaths(t *testing.T) {
	cases := []struct {
		name     string
		dep      func() *topology.Deployment
		seed     uint64
		dst      radio.NodeID
		converge time.Duration
		mutate   func(*experiment.Config)
		rescue   bool // oracle: rescue traffic legal
		// plan builds the fault script given pre-fault tree positions;
		// times are relative offsets from injection.
		plan func(o *recoveryOutcome) *fault.Plan
		// ops > 1 repeats the control send, opGap apart, so a case stays
		// meaningful when one op dies early to ambient collisions.
		ops    int
		opGap  time.Duration
		settle time.Duration // after the last send
		assert func(t *testing.T, o *recoveryOutcome)
	}{
		{
			name:     "backtracking-bounded-failure",
			dep:      func() *topology.Deployment { return topology.Line(6, 7) },
			seed:     44,
			dst:      5,
			converge: 3 * time.Minute,
			mutate: func(cfg *experiment.Config) {
				cfg.Tele.Rescue = false
				cfg.Tele.FeedbackIntercept = false
			},
			plan: func(o *recoveryOutcome) *fault.Plan {
				return &fault.Plan{Name: "crash-last-hop", Events: []fault.Event{
					{At: fault.Duration(time.Second), Kind: fault.Crash, Node: int(o.parent)},
					// The grandparent must not shortcut two hops to the
					// destination, or the failure never manifests.
					{At: fault.Duration(time.Second), Kind: fault.Link,
						From: int(o.grand), To: int(o.dstID()), OffsetDB: -200, Both: true},
				}}
			},
			settle: 50 * time.Second,
			assert: func(t *testing.T, o *recoveryOutcome) {
				if !o.resolved {
					t.Fatal("controller never resolved the op")
				}
				if o.res.OK || o.delivered {
					t.Fatalf("op delivered through a crashed sole upstream hop (res=%+v)", o.res)
				}
				gs := o.net.Tele(o.grand).Stats()
				if gs.FeedbackSends == 0 {
					t.Errorf("failing relay %d sent no feedback (stats %+v)", o.grand, gs)
				}
				if gs.Backtracks == 0 {
					t.Errorf("failing relay %d recorded no backtrack (stats %+v)", o.grand, gs)
				}
				if d := o.net.Tele(o.dstID()).Stats().ControlDeliv; d != 0 {
					t.Errorf("destination consumed %d control packets through a dead path", d)
				}
			},
		},
		{
			name:     "feedback-interception",
			dep:      func() *topology.Deployment { return topology.Line(6, 7) },
			seed:     45,
			dst:      5,
			converge: 3 * time.Minute,
			mutate: func(cfg *experiment.Config) {
				cfg.Tele.Rescue = false // interception must carry this alone
			},
			plan: func(o *recoveryOutcome) *fault.Plan {
				return &fault.Plan{Name: "bcast-loss-window", Events: []fault.Event{
					// The anycast stream grand→parent is silenced, but
					// unicast (acks, feedback) still passes — the exact
					// asymmetry feedback interception exploits.
					{At: fault.Duration(time.Second), Kind: fault.Drop,
						From: int(o.grand), To: int(o.parent), Prob: 1,
						Dst: fault.DstBcast, For: fault.Duration(30 * time.Second)},
					{At: fault.Duration(time.Second), Kind: fault.Link,
						From: int(o.grand), To: int(o.dstID()), OffsetDB: -200, Both: true,
						For: fault.Duration(30 * time.Second)},
				}}
			},
			settle: 50 * time.Second,
			assert: func(t *testing.T, o *recoveryOutcome) {
				if !o.resolved || !o.res.OK || !o.delivered {
					t.Fatalf("op not delivered despite an interceptable feedback (res=%+v resolved=%v delivered=%v, parent stats %+v)",
						o.res, o.resolved, o.delivered, o.net.Tele(o.parent).Stats())
				}
				ps := o.net.Tele(o.parent).Stats()
				if ps.Backtracks == 0 {
					t.Errorf("interceptor %d recorded no backtrack adoption (stats %+v)", o.parent, ps)
				}
				if ps.ControlRelayed == 0 {
					t.Errorf("interceptor %d relayed nothing (stats %+v)", o.parent, ps)
				}
				if d := o.net.Tele(o.dstID()).Stats().ControlDeliv; d != 1 {
					t.Errorf("destination consumed %d control packets, want 1", d)
				}
			},
		},
		{
			name:     "retele-detour",
			dep:      ladder,
			seed:     42,
			dst:      7,
			converge: 4 * time.Minute,
			mutate: func(cfg *experiment.Config) {
				// Strict-path forwarding with rescue: in-band recovery is
				// impossible, so delivery can only happen via re-Tele.
				cfg.Tele.Opportunistic = false
				cfg.Tele.FeedbackIntercept = false
				cfg.Tele.Rescue = true
			},
			rescue: true,
			plan: func(o *recoveryOutcome) *fault.Plan {
				// Crash the coded path's last hop (the node that allocated
				// dst's code), not necessarily the current CTP parent.
				victim := o.parent
				if cp, ok := codeParent(o.net, o.dstID()); ok {
					victim = cp
				}
				return &fault.Plan{Name: "crash-coded-hop", Events: []fault.Event{
					{At: fault.Duration(time.Second), Kind: fault.Crash, Node: int(victim)},
				}}
			},
			settle: 90 * time.Second,
			assert: func(t *testing.T, o *recoveryOutcome) {
				if !o.delivered {
					t.Fatalf("re-Tele never delivered around the crashed coded hop (res=%+v resolved=%v, sink stats %+v)",
						o.res, o.resolved, o.net.SinkTele().Stats())
				}
				if r := o.net.SinkTele().Stats().Rescues; r == 0 {
					t.Errorf("controller recorded no rescue (sink stats %+v)", o.net.SinkTele().Stats())
				}
				if o.resolved && o.res.OK && !o.res.Detoured {
					t.Errorf("delivery acknowledged without the detour flag (res=%+v)", o.res)
				}
				if d := o.net.Tele(o.dstID()).Stats().ControlDeliv; d == 0 {
					t.Error("destination consumed no control packet")
				}
			},
		},
		{
			name:     "retransmission-exhaustion",
			dep:      func() *topology.Deployment { return topology.Line(6, 7) },
			seed:     46,
			dst:      5,
			converge: 3 * time.Minute,
			mutate: func(cfg *experiment.Config) {
				cfg.Tele.Rescue = false
			},
			plan: func(o *recoveryOutcome) *fault.Plan {
				return &fault.Plan{Name: "partition-dst", Events: []fault.Event{
					{At: fault.Duration(time.Second), Kind: fault.Partition,
						Node: int(o.dstID()), For: fault.Duration(2 * time.Minute)},
				}}
			},
			// Three ops inside the partition window: any single op can be
			// lost upstream to an ambient hidden-terminal collision with
			// the background report traffic, but not all of them.
			ops:    3,
			opGap:  35 * time.Second,
			settle: 50 * time.Second,
			assert: func(t *testing.T, o *recoveryOutcome) {
				if !o.resolved {
					t.Fatalf("controller resolved only %d of %d ops", len(o.results), len(o.uids))
				}
				for _, r := range o.results {
					if r.OK {
						t.Fatalf("op delivered to a partitioned destination (res=%+v)", r)
					}
				}
				if o.delivered {
					t.Fatal("partitioned destination reported a delivery")
				}
				if !o.net.Alive(o.dstID()) {
					t.Error("partition must not kill the destination")
				}
				if d := o.net.Tele(o.dstID()).Stats().ControlDeliv; d != 0 {
					t.Errorf("partitioned destination consumed %d control packets", d)
				}
				// The relay facing the partition is bounded by the retry ×
				// backtrack budget — the oracle's retx invariant, asserted
				// here with the concrete count on the op that got furthest.
				best := 0
				for _, uid := range o.uids {
					if s := o.orc.SendsFor(uid, o.parent); s > best {
						best = s
					}
				}
				if best < 2 || best > 15 {
					t.Errorf("relay %d made %d distinct transmissions facing the partition, want 2..15", o.parent, best)
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var teleCfg core.Config
			net := buildTele(t, tc.dep(), tc.seed, func(cfg *experiment.Config) {
				if tc.mutate != nil {
					tc.mutate(cfg)
				}
				teleCfg = cfg.Tele
			})
			run(t, net, tc.converge)
			if !net.SinkTele().KnowsCode(tc.dst) {
				t.Skipf("controller never learned node %d's code", tc.dst)
			}
			o := &recoveryOutcome{net: net}
			o.parent = net.Stacks[tc.dst].Ctp.Parent()
			if int(o.parent) >= net.Dep.Len() {
				t.Skipf("node %d has no usable parent (%d)", tc.dst, o.parent)
			}
			o.grand = net.Stacks[o.parent].Ctp.Parent()
			if int(o.grand) >= net.Dep.Len() {
				t.Skipf("parent %d has no usable parent (%d)", o.parent, o.grand)
			}
			o.res.Dst = tc.dst

			plan := tc.plan(o)
			// Shift relative offsets to absolute times from "now".
			now := net.Eng.Now()
			for i := range plan.Events {
				plan.Events[i].At += fault.Duration(now)
			}
			if err := net.InjectPlan(plan); err != nil {
				t.Fatal(err)
			}
			run(t, net, 5*time.Second)

			o.orc = attachOracle(net, teleCfg, tc.rescue)
			net.Tele(tc.dst).SetDeliveredFn(func(uid uint32, hops uint8) { o.delivered = true })
			sendOne := func() {
				uid, err := net.SinkTele().SendControl(tc.dst, "recover", func(r core.Result) {
					o.results = append(o.results, r)
				})
				if err != nil {
					t.Fatal(err)
				}
				o.uids = append(o.uids, uid)
			}
			ops := tc.ops
			if ops == 0 {
				ops = 1
			}
			sendOne()
			for i := 1; i < ops; i++ {
				run(t, net, tc.opGap)
				sendOne()
			}
			run(t, net, tc.settle)

			o.uid = o.uids[0]
			o.resolved = len(o.results) == ops
			if len(o.results) > 0 {
				o.res = o.results[0]
			}
			tc.assert(t, o)
			if v := o.orc.Check(); len(v) != 0 {
				t.Fatalf("oracle violations:\n%s", o.orc.Summary())
			}
		})
	}
}

// dstID recovers the destination from the stored result (set before send).
func (o *recoveryOutcome) dstID() radio.NodeID { return o.res.Dst }
