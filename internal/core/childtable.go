package core

import (
	"fmt"
	"sort"

	"teleadjust/internal/radio"
)

// ChildEntry is one row of the child node table (Table I in the paper):
// the child's identity, its allocated position in the parent's bit space,
// and whether the child has confirmed the allocation.
type ChildEntry struct {
	Child     radio.NodeID
	Position  uint16
	Confirmed bool
}

// ReservePolicy computes how many positions to provision for n discovered
// children (Algorithm 1's χ). The paper writes χ = N + [10, N/2]; the
// worked example (Figure 2: two children in a 2-bit space) pins the
// reserve to min(10, ceil(N/2)) with a floor of 1.
type ReservePolicy func(n int) int

// DefaultReserve is the paper-consistent reserve: clamp(ceil(N/2), 1, 10).
func DefaultReserve(n int) int {
	r := (n + 1) / 2
	if r < 1 {
		r = 1
	}
	if r > 10 {
		r = 10
	}
	return n + r
}

// GenerousReserve always provisions ten extra positions (the literal
// "N + 10" reading of Algorithm 1); used by the reserve-policy ablation.
func GenerousReserve(n int) int { return n + 10 }

// TightReserve provisions no headroom at all; used by the ablation to show
// the cost of frequent space extensions.
func TightReserve(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// ChildTable is a parent node's position-allocation state. Positions are
// 1-based: the all-zeros pattern is never allocated (Figure 2 allocates 01
// and 10 from a 2-bit space), so a parent's own code is never confusable
// with a child pattern.
type ChildTable struct {
	entries   map[radio.NodeID]*ChildEntry
	pending   map[radio.NodeID]bool // discovered but not yet allocated
	spaceBits int                   // π; 0 until initial allocation
	reserve   ReservePolicy
}

// NewChildTable creates an empty table with the given reserve policy (nil
// means DefaultReserve).
func NewChildTable(policy ReservePolicy) *ChildTable {
	if policy == nil {
		policy = DefaultReserve
	}
	return &ChildTable{
		entries: make(map[radio.NodeID]*ChildEntry),
		pending: make(map[radio.NodeID]bool),
		reserve: policy,
	}
}

// Observe records a discovered child before initial allocation. It reports
// whether the child is new.
func (t *ChildTable) Observe(child radio.NodeID) bool {
	if _, ok := t.entries[child]; ok {
		return false
	}
	if t.pending[child] {
		return false
	}
	t.pending[child] = true
	return true
}

// Allocated reports whether initial allocation has run.
func (t *ChildTable) Allocated() bool { return t.spaceBits > 0 }

// SpaceBits returns π, the current bit-space width (0 before allocation).
func (t *ChildTable) SpaceBits() int { return t.spaceBits }

// Len returns the number of allocated children.
func (t *ChildTable) Len() int { return len(t.entries) }

// PendingLen returns the number of discovered-but-unallocated children.
func (t *ChildTable) PendingLen() int { return len(t.pending) }

// AllocateInitial runs Algorithm 1: size the bit space for the discovered
// children plus reserve, then deterministically allocate positions in
// ascending child-id order. It is an error to call it twice.
func (t *ChildTable) AllocateInitial() error {
	if t.Allocated() {
		return fmt.Errorf("core: initial allocation already done")
	}
	n := len(t.pending)
	chi := t.reserve(n)
	if chi < n {
		// Every discovered child gets a position regardless of what the
		// reserve policy says; the space must fit them all.
		chi = n
	}
	if chi < 1 {
		chi = 1
	}
	// Positions are 1..2^π−1: find the smallest π that fits χ positions.
	pi := 1
	for (1<<pi)-1 < chi {
		pi++
	}
	t.spaceBits = pi
	ids := make([]radio.NodeID, 0, n)
	for id := range t.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		t.entries[id] = &ChildEntry{Child: id, Position: uint16(i + 1)}
		delete(t.pending, id)
	}
	return nil
}

// nextFree returns the lowest unallocated position, or 0 when full.
func (t *ChildTable) nextFree() uint16 {
	used := make(map[uint16]bool, len(t.entries))
	for _, e := range t.entries {
		used[e.Position] = true
	}
	for p := uint16(1); int(p) < 1<<t.spaceBits; p++ {
		if !used[p] {
			return p
		}
	}
	return 0
}

// Request handles a position request from a child (Algorithm 2, the
// ID ∉ S branch): allocate a free position, extending the space by one bit
// when full. It reports the allocated position and whether the space was
// extended. The entry starts unconfirmed. Requests from known children
// return their existing position.
func (t *ChildTable) Request(child radio.NodeID) (pos uint16, extended bool, err error) {
	if !t.Allocated() {
		return 0, false, fmt.Errorf("core: request before initial allocation")
	}
	if e, ok := t.entries[child]; ok {
		return e.Position, false, nil
	}
	p := t.nextFree()
	if p == 0 {
		// Space extension: widen by one bit; existing positions are
		// unchanged (children re-encode them with the wider width).
		t.spaceBits++
		extended = true
		p = t.nextFree()
		if p == 0 {
			return 0, extended, fmt.Errorf("core: no free position after extension")
		}
	}
	delete(t.pending, child)
	t.entries[child] = &ChildEntry{Child: child, Position: p}
	return p, extended, nil
}

// ConfirmOutcome describes the result of processing a child's announced
// position (Algorithm 2's maintenance branches).
type ConfirmOutcome uint8

// Confirm outcomes.
const (
	// ConfirmMatched: the announced position matches; flag set confirmed.
	ConfirmMatched ConfirmOutcome = iota + 1
	// ConfirmReallocated: mismatch; the child was given a fresh position
	// (returned by Confirm) and the flag reset.
	ConfirmReallocated
	// ConfirmNew: unknown child; a position was allocated.
	ConfirmNew
)

// Confirm processes a child's beacon announcing position p (Algorithm 2).
// For ConfirmReallocated/ConfirmNew, newPos is the allocation to
// acknowledge back; extended reports a space extension.
func (t *ChildTable) Confirm(child radio.NodeID, p uint16) (out ConfirmOutcome, newPos uint16, extended bool, err error) {
	if !t.Allocated() {
		return 0, 0, false, fmt.Errorf("core: confirm before initial allocation")
	}
	e, ok := t.entries[child]
	if !ok {
		newPos, extended, err = t.Request(child)
		return ConfirmNew, newPos, extended, err
	}
	if e.Position == p {
		e.Confirmed = true
		return ConfirmMatched, p, false, nil
	}
	// Mismatch: deterministically reallocate (keep the stored position —
	// the table is authoritative) and reset the flag so the child re-acks.
	e.Confirmed = false
	return ConfirmReallocated, e.Position, false, nil
}

// SetConfirmed marks a child's entry confirmed (confirmation frame).
func (t *ChildTable) SetConfirmed(child radio.NodeID, p uint16) bool {
	e, ok := t.entries[child]
	if !ok || e.Position != p {
		return false
	}
	e.Confirmed = true
	return true
}

// Remove drops a child (e.g. it switched parents).
func (t *ChildTable) Remove(child radio.NodeID) {
	delete(t.entries, child)
	delete(t.pending, child)
}

// Position returns the child's allocated position (0 if none).
func (t *ChildTable) Position(child radio.NodeID) uint16 {
	if e, ok := t.entries[child]; ok {
		return e.Position
	}
	return 0
}

// Entries returns allocated entries sorted by child id (a stable view for
// beacon piggybacking).
func (t *ChildTable) Entries() []ChildEntry {
	out := make([]ChildEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Child < out[j].Child })
	return out
}

// AllConfirmed reports whether every allocated child has confirmed.
func (t *ChildTable) AllConfirmed() bool {
	for _, e := range t.entries {
		if !e.Confirmed {
			return false
		}
	}
	return true
}
