package core

import (
	"fmt"
	"sort"

	"teleadjust/internal/radio"
)

// ChildEntry is one row of the child node table (Table I in the paper):
// the child's identity, its allocated position in the parent's label
// space, its current bit label (only populated by non-positional codecs —
// Algorithm 1's children derive their label from position and width), and
// whether the child has confirmed the allocation.
type ChildEntry struct {
	Child     radio.NodeID
	Position  uint16
	Label     PathCode
	Confirmed bool
}

// ReservePolicy computes how many positions to provision for n discovered
// children (Algorithm 1's χ). The paper writes χ = N + [10, N/2]; the
// worked example (Figure 2: two children in a 2-bit space) pins the
// reserve to min(10, ceil(N/2)) with a floor of 1.
type ReservePolicy func(n int) int

// DefaultReserve is the paper-consistent reserve: clamp(ceil(N/2), 1, 10).
func DefaultReserve(n int) int {
	r := (n + 1) / 2
	if r < 1 {
		r = 1
	}
	if r > 10 {
		r = 10
	}
	return n + r
}

// GenerousReserve always provisions ten extra positions (the literal
// "N + 10" reading of Algorithm 1); used by the reserve-policy ablation.
func GenerousReserve(n int) int { return n + 10 }

// TightReserve provisions no headroom at all; used by the ablation to show
// the cost of frequent space extensions.
func TightReserve(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// ChildTable is a parent node's position-allocation state. It owns the
// identity and confirmation bookkeeping of Algorithms 1–2 and delegates
// the actual label-space decisions (widths, positions, bit labels) to the
// codec's Allocator. Positions are 1-based: position 0 is never allocated
// by any codec, so a parent's own code is never confusable with a child
// pattern.
type ChildTable struct {
	entries map[radio.NodeID]*ChildEntry
	pending map[radio.NodeID]bool // discovered but not yet allocated
	codec   Codec
	alloc   Allocator
}

// NewChildTable creates an empty table running the paper codec
// (Algorithm 1) with the given reserve policy (nil means DefaultReserve).
func NewChildTable(policy ReservePolicy) *ChildTable {
	return NewChildTableWithCodec(nil, policy)
}

// NewChildTableWithCodec creates an empty table running the given codec
// (nil means the paper codec) and reserve policy (nil means
// DefaultReserve).
func NewChildTableWithCodec(codec Codec, policy ReservePolicy) *ChildTable {
	if codec == nil {
		codec = PaperCodec()
	}
	return &ChildTable{
		entries: make(map[radio.NodeID]*ChildEntry),
		pending: make(map[radio.NodeID]bool),
		codec:   codec,
		alloc:   codec.NewAllocator(policy),
	}
}

// Codec returns the table's coding scheme.
func (t *ChildTable) Codec() Codec { return t.codec }

// Observe records a discovered child before initial allocation. It reports
// whether the child is new.
func (t *ChildTable) Observe(child radio.NodeID) bool {
	if _, ok := t.entries[child]; ok {
		return false
	}
	if t.pending[child] {
		return false
	}
	t.pending[child] = true
	return true
}

// Allocated reports whether initial allocation has run.
func (t *ChildTable) Allocated() bool { return t.alloc.Allocated() }

// SpaceBits returns π, the current label-space width put on beacons
// (0 before allocation).
func (t *ChildTable) SpaceBits() int { return t.alloc.SpaceBits() }

// Len returns the number of allocated children.
func (t *ChildTable) Len() int { return len(t.entries) }

// PendingLen returns the number of discovered-but-unallocated children.
func (t *ChildTable) PendingLen() int { return len(t.pending) }

// AllocateInitial runs the codec's initial allocation (Algorithm 1 for the
// paper codec): size the label space for the discovered children plus
// reserve, then deterministically allocate positions 1..n in ascending
// child-id order. It is an error to call it twice.
func (t *ChildTable) AllocateInitial() error {
	if t.Allocated() {
		return fmt.Errorf("core: initial allocation already done")
	}
	n := len(t.pending)
	if err := t.alloc.AllocateInitial(n); err != nil {
		return err
	}
	ids := make([]radio.NodeID, 0, n)
	for id := range t.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		t.entries[id] = &ChildEntry{Child: id, Position: uint16(i + 1)}
		delete(t.pending, id)
	}
	t.refreshLabels()
	return nil
}

// refreshLabels pulls the allocator's current labels into the entries
// (non-positional codecs only — Algorithm 1's labels live implicitly in
// (position, SpaceBits) and are never attached to entries, keeping the
// paper codec's wire image unchanged). An entry whose label changed is
// unconfirmed so the new label re-rides beacons until the child re-acks.
func (t *ChildTable) refreshLabels() {
	if t.codec.Positional() {
		return
	}
	for _, e := range t.entries {
		l, err := t.alloc.Label(e.Position)
		if err != nil {
			continue
		}
		if !l.Equal(e.Label) {
			e.Label = l
			e.Confirmed = false
		}
	}
}

// Request handles a position request from a child (Algorithm 2, the
// ID ∉ S branch): allocate a free position, growing the label space when
// full. It reports the allocated position and whether the allocation
// changed already-published state — a space extension for the paper codec,
// a relabel for variable-length codecs — which the caller must
// re-announce. The entry starts unconfirmed. Requests from known children
// return their existing position.
func (t *ChildTable) Request(child radio.NodeID) (pos uint16, relabel bool, err error) {
	if !t.Allocated() {
		return 0, false, fmt.Errorf("core: request before initial allocation")
	}
	if e, ok := t.entries[child]; ok {
		return e.Position, false, nil
	}
	p, relabel, err := t.alloc.Add()
	if err != nil {
		return 0, relabel, err
	}
	delete(t.pending, child)
	t.entries[child] = &ChildEntry{Child: child, Position: p}
	t.refreshLabels()
	return p, relabel, nil
}

// ConfirmOutcome describes the result of processing a child's announced
// position (Algorithm 2's maintenance branches).
type ConfirmOutcome uint8

// Confirm outcomes.
const (
	// ConfirmMatched: the announced position matches; flag set confirmed.
	ConfirmMatched ConfirmOutcome = iota + 1
	// ConfirmReallocated: mismatch; the child was given a fresh position
	// (returned by Confirm) and the flag reset.
	ConfirmReallocated
	// ConfirmNew: unknown child; a position was allocated.
	ConfirmNew
)

// Confirm processes a child's beacon announcing position p (Algorithm 2).
// For ConfirmReallocated/ConfirmNew, newPos is the allocation to
// acknowledge back; relabel reports a space extension or relabel.
func (t *ChildTable) Confirm(child radio.NodeID, p uint16) (out ConfirmOutcome, newPos uint16, relabel bool, err error) {
	if !t.Allocated() {
		return 0, 0, false, fmt.Errorf("core: confirm before initial allocation")
	}
	e, ok := t.entries[child]
	if !ok {
		newPos, relabel, err = t.Request(child)
		return ConfirmNew, newPos, relabel, err
	}
	if e.Position == p {
		e.Confirmed = true
		return ConfirmMatched, p, false, nil
	}
	// Mismatch: deterministically reallocate (keep the stored position —
	// the table is authoritative) and reset the flag so the child re-acks.
	e.Confirmed = false
	return ConfirmReallocated, e.Position, false, nil
}

// SetConfirmed marks a child's entry confirmed (confirmation frame).
func (t *ChildTable) SetConfirmed(child radio.NodeID, p uint16) bool {
	e, ok := t.entries[child]
	if !ok || e.Position != p {
		return false
	}
	e.Confirmed = true
	return true
}

// Unconfirm resets a child's confirmation flag (the parent detected the
// child holds a stale label and must re-adopt).
func (t *ChildTable) Unconfirm(child radio.NodeID) {
	if e, ok := t.entries[child]; ok {
		e.Confirmed = false
	}
}

// Remove drops a child (e.g. it switched parents), freeing its position
// for reuse.
func (t *ChildTable) Remove(child radio.NodeID) {
	if e, ok := t.entries[child]; ok {
		t.alloc.Release(e.Position)
	}
	delete(t.entries, child)
	delete(t.pending, child)
}

// Position returns the child's allocated position (0 if none).
func (t *ChildTable) Position(child radio.NodeID) uint16 {
	if e, ok := t.entries[child]; ok {
		return e.Position
	}
	return 0
}

// LabelOf returns the child's current bit label (empty for positional
// codecs and unknown children).
func (t *ChildTable) LabelOf(child radio.NodeID) PathCode {
	if e, ok := t.entries[child]; ok {
		return e.Label
	}
	return PathCode{}
}

// SetWeight feeds a subtree-size estimate for a child into the codec.
// Weight-sensitive codecs (huffman) may relabel, reported as true; the
// changed labels are already refreshed into the entries (and unconfirmed)
// on return.
func (t *ChildTable) SetWeight(child radio.NodeID, weight int) bool {
	e, ok := t.entries[child]
	if !ok {
		return false
	}
	if !t.alloc.SetWeight(e.Position, weight) {
		return false
	}
	t.refreshLabels()
	return true
}

// Entries returns allocated entries sorted by child id (a stable view for
// beacon piggybacking).
func (t *ChildTable) Entries() []ChildEntry {
	out := make([]ChildEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Child < out[j].Child })
	return out
}

// AllConfirmed reports whether every allocated child has confirmed.
func (t *ChildTable) AllConfirmed() bool {
	for _, e := range t.entries {
		if !e.Confirmed {
			return false
		}
	}
	return true
}
