package core

// Fuzz coverage for the batch-carrier wire extension. The decode side is
// exercised through UnmarshalControl like any other control packet; this
// file drives the encoder from the value side so the member section —
// suffix codes, variable-length payloads, the one-byte member count — is
// stressed with structured inputs rather than waiting for the generic
// byte fuzzer to stumble into the batch flag.

import (
	"bytes"
	"reflect"
	"testing"

	"teleadjust/internal/radio"
)

// fuzzBatchMemberBytes is the per-member slice of raw fuzz material:
// uid(4) op(4) dst(2) suffix-len(1) suffix-raw(2) payload-len(1) payload(2).
const fuzzBatchMemberBytes = 16

// fuzzBatchControl is a representative two-member carrier.
func fuzzBatchControl() *Control {
	return &Control{
		UID:     0x1001,
		Op:      7,
		Dst:     3,
		DstCode: MustCode("10"),
		Batch: []BatchMember{
			{UID: 0x1001, Op: 7, Dst: 9, Suffix: MustCode("011"), Payload: []byte{0xDE, 0xAD}},
			{UID: 0x1002, Op: 8, Dst: 12, Suffix: EmptyCode},
		},
	}
}

// FuzzBatchControlWire: a carrier built from fuzzed member material must
// marshal, unmarshal back equal, and re-marshal to identical bytes — the
// wire extension may never corrupt a member's suffix or payload.
func FuzzBatchControlWire(f *testing.F) {
	c := fuzzBatchControl()
	f.Add(c.UID, c.Op, uint16(c.Dst),
		uint16(c.DstCode.Len()), AppendCode(nil, c.DstCode)[1:],
		[]byte{
			0x01, 0x10, 0, 0, 7, 0, 0, 0, 9, 0, 3, 0x60, 0, 2, 0xDE, 0xAD,
			0x02, 0x10, 0, 0, 8, 0, 0, 0, 12, 0, 0, 0, 0, 0, 0, 0,
		})
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0), []byte{}, []byte{})
	f.Add(uint32(1), uint32(1), uint16(1), uint16(200), []byte{0xFF}, // oversized declared code
		[]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 200, 0xFF, 0xFF, 2, 1, 2})
	f.Fuzz(func(t *testing.T, uid, op uint32, dst uint16,
		codeLen uint16, codeRaw, memberRaw []byte) {
		c := &Control{
			UID:     uid,
			Op:      op,
			Dst:     radio.NodeID(dst),
			DstCode: canonicalCode(byte(codeLen), codeRaw),
		}
		n := len(memberRaw) / fuzzBatchMemberBytes
		if n > MaxBatchMembers {
			n = MaxBatchMembers // the wire format caps the member count at a byte
		}
		for i := 0; i < n; i++ {
			a := memberRaw[fuzzBatchMemberBytes*i:]
			m := BatchMember{
				UID:    uint32(a[0]) | uint32(a[1])<<8 | uint32(a[2])<<16 | uint32(a[3])<<24,
				Op:     uint32(a[4]) | uint32(a[5])<<8 | uint32(a[6])<<16 | uint32(a[7])<<24,
				Dst:    radio.NodeID(uint16(a[8]) | uint16(a[9])<<8),
				Suffix: canonicalCode(a[10], a[11:13]),
			}
			if pl := int(a[13]) % 3; pl > 0 {
				m.Payload = append([]byte(nil), a[14:14+pl]...)
			}
			c.Batch = append(c.Batch, m)
		}
		enc := MarshalControl(c)
		got, err := UnmarshalControl(enc)
		if err != nil {
			t.Fatalf("decoding a marshalled batch carrier failed: %v", err)
		}
		if !reflect.DeepEqual(c, got) {
			t.Fatalf("round trip changed carrier:\nsent: %+v\ngot:  %+v", c, got)
		}
		if enc2 := MarshalControl(got); !bytes.Equal(enc, enc2) {
			t.Fatal("re-encode is not byte-stable")
		}
	})
}
