package core

import (
	"testing"

	"teleadjust/internal/sim"
)

func benchCodes(n int) []PathCode {
	rng := sim.NewRNG(1)
	codes := make([]PathCode, 0, n)
	c := RootCode()
	for len(codes) < n {
		next, err := c.Extend(uint16(1+rng.IntN(3)), 2)
		if err != nil {
			c = RootCode()
			continue
		}
		c = next
		codes = append(codes, c)
	}
	return codes
}

func BenchmarkIsPrefixOf(b *testing.B) {
	codes := benchCodes(64)
	deep := codes[len(codes)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codes[i%len(codes)].IsPrefixOf(deep)
	}
}

func BenchmarkExtend(b *testing.B) {
	c := RootCode()
	for i := 0; i < b.N; i++ {
		next, err := c.Extend(1, 2)
		if err != nil {
			c = RootCode()
			continue
		}
		c = next
		if c.Len() > 200 {
			c = RootCode()
		}
	}
}

func BenchmarkCommonPrefixLen(b *testing.B) {
	// Two ~200-bit codes diverging only in their final position: the deep
	// shared prefix is what the byte-wise fast path is for (whole-byte XOR
	// compares instead of a per-bit loop).
	base := RootCode()
	for base.Len() < 200 {
		next, err := base.Extend(uint16(1+base.Len()%3), 2)
		if err != nil {
			b.Fatal(err)
		}
		base = next
	}
	left, err := base.Extend(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	right, err := base.Extend(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if left.CommonPrefixLen(right) != base.Len() {
			b.Fatal("wrong common prefix length")
		}
	}
}

func BenchmarkMarshalControl(b *testing.B) {
	c := &Control{UID: 1, Op: 1, Dst: 9, DstCode: MustCode("001010110010101"), Expected: 3, Hops: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MarshalControl(c)
	}
}

func BenchmarkUnmarshalControl(b *testing.B) {
	buf := MarshalControl(&Control{UID: 1, Op: 1, Dst: 9, DstCode: MustCode("001010110010101")})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalControl(buf); err != nil {
			b.Fatal(err)
		}
	}
}
