package core_test

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/experiment"
	"teleadjust/internal/radio"
	"teleadjust/internal/topology"
)

// TestScopeOneToAll: an empty scope reaches every coded node.
func TestScopeOneToAll(t *testing.T) {
	net := convergedLine(t, 5, 51, nil)
	delivered := map[radio.NodeID]bool{}
	for i := 1; i < 5; i++ {
		id := radio.NodeID(i)
		net.Tele(radio.NodeID(i)).SetDeliveredFn(func(op uint32, hops uint8) { delivered[id] = true })
	}
	var res core.ScopeResult
	got := false
	if _, err := net.SinkTele().SendScopeControl(core.EmptyCode, "all-nodes", func(r core.ScopeResult) {
		res = r
		got = true
	}); err != nil {
		t.Fatal(err)
	}
	run(t, net, 90*time.Second)
	if len(delivered) != 4 {
		t.Fatalf("delivered to %d/4 nodes", len(delivered))
	}
	if !got {
		t.Fatal("scope callback never fired")
	}
	if res.Expected != 4 || len(res.Acked) != 4 {
		t.Fatalf("result %+v, want 4/4", res)
	}
	if res.Coverage() != 1 {
		t.Fatalf("coverage %v", res.Coverage())
	}
}

// TestScopeSubtreeOnly: scoping to a mid-chain node's code must reach only
// that node's code subtree.
func TestScopeSubtreeOnly(t *testing.T) {
	// Y topology: two branches; scope one branch.
	dep := &topology.Deployment{
		Name: "y",
		Positions: []topology.Point{
			{X: 0, Y: 0},   // 0 sink
			{X: 7, Y: 3},   // 1 branch A
			{X: 14, Y: 6},  // 2 branch A deep
			{X: 7, Y: -3},  // 3 branch B
			{X: 14, Y: -6}, // 4 branch B deep
		},
		Sink: 0,
	}
	net := buildTele(t, dep, 52, nil)
	run(t, net, 3*time.Minute)
	code1, ok := net.Tele(radio.NodeID(1)).Code()
	if !ok {
		t.Skip("codes did not converge")
	}
	// Scope = node 1's code. Expected members: node 1 and any node whose
	// code extends it (node 2 if parented under 1).
	want := map[radio.NodeID]bool{1: true}
	if c2, ok := net.Tele(radio.NodeID(2)).Code(); ok && code1.IsPrefixOf(c2) {
		want[2] = true
	}
	delivered := map[radio.NodeID]bool{}
	for i := 1; i < 5; i++ {
		id := radio.NodeID(i)
		net.Tele(radio.NodeID(i)).SetDeliveredFn(func(op uint32, hops uint8) { delivered[id] = true })
	}
	var res core.ScopeResult
	if _, err := net.SinkTele().SendScopeControl(code1, "branch-A", func(r core.ScopeResult) {
		res = r
	}); err != nil {
		t.Fatal(err)
	}
	run(t, net, 90*time.Second)
	for id := range want {
		if !delivered[id] {
			t.Fatalf("member %d missed the scoped flood (delivered=%v)", id, delivered)
		}
	}
	for id := range delivered {
		if !want[id] {
			t.Fatalf("non-member %d consumed the scoped flood (want=%v)", id, want)
		}
	}
	if res.Expected != len(want) {
		t.Fatalf("expected %d members, controller counted %d", len(want), res.Expected)
	}
}

// TestScopeFromNonSink is rejected.
func TestScopeFromNonSink(t *testing.T) {
	net := buildTele(t, topology.Line(3, 7), 53, nil)
	if _, err := net.Tele(radio.NodeID(1)).SendScopeControl(core.EmptyCode, "x", nil); err == nil {
		t.Fatal("non-sink scoped control accepted")
	}
}

// TestScopeDedup: a member consumes each scoped operation exactly once
// despite hearing many flood copies.
func TestScopeDedup(t *testing.T) {
	net := convergedLine(t, 4, 54, nil)
	count := 0
	net.Tele(radio.NodeID(2)).SetDeliveredFn(func(op uint32, hops uint8) { count++ })
	if _, err := net.SinkTele().SendScopeControl(core.EmptyCode, "x", nil); err != nil {
		t.Fatal(err)
	}
	run(t, net, 90*time.Second)
	if count != 1 {
		t.Fatalf("member consumed %d times, want 1", count)
	}
}

// TestScopeSurvivesBusyBottleneck: a degenerate topology where the whole
// network hangs off one sink child (which is deaf much of the time,
// streaming upward traffic). The flood's echo copies and the controller's
// mid-timeout repair round must still reach most of the subtree.
func TestScopeSurvivesBusyBottleneck(t *testing.T) {
	dep := topology.Grid("field", 4, 6, 42, 28, true, topology.Point{}, 3)
	net := buildTele(t, dep, 3, func(cfg *experiment.Config) {
		cfg.Radio.ShadowSigmaDB = 1.0
		cfg.Tele = core.DefaultConfig()
	})
	run(t, net, 5*time.Minute)
	reg := net.SinkTele().Registry()
	var scope core.PathCode
	bestN := 0
	for _, info := range reg {
		if info.Code.Len() < 3 {
			continue
		}
		p := info.Code.Prefix(3)
		n := 0
		for _, o := range reg {
			if p.IsPrefixOf(o.Code) {
				n++
			}
		}
		if n > bestN {
			bestN, scope = n, p
		}
	}
	if bestN < 5 {
		t.Skipf("largest subtree only %d members; topology did not concentrate", bestN)
	}
	var res core.ScopeResult
	done := false
	if _, err := net.SinkTele().SendScopeControl(scope, "x", func(r core.ScopeResult) {
		res = r
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	run(t, net, 90*time.Second)
	if !done {
		t.Fatal("scoped operation never resolved")
	}
	if res.Coverage() < 0.6 {
		t.Fatalf("coverage %.2f (%d/%d) through the bottleneck, want ≥0.6",
			res.Coverage(), len(res.Acked), res.Expected)
	}
}
