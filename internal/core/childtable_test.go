package core

import (
	"testing"
	"testing/quick"

	"teleadjust/internal/radio"
)

func TestReservePolicies(t *testing.T) {
	tests := []struct {
		n, wantDefault int
	}{
		{0, 1}, // floor reserve 1
		{1, 2}, // 1 + 1
		{2, 3}, // 2 + 1 — Figure 2: fits in a 2-bit space
		{4, 6}, // 4 + 2
		{10, 15},
		{30, 40}, // reserve capped at 10
	}
	for _, tt := range tests {
		if got := DefaultReserve(tt.n); got != tt.wantDefault {
			t.Errorf("DefaultReserve(%d) = %d, want %d", tt.n, got, tt.wantDefault)
		}
	}
	if GenerousReserve(5) != 15 {
		t.Fatal("GenerousReserve broken")
	}
	if TightReserve(5) != 5 || TightReserve(0) != 1 {
		t.Fatal("TightReserve broken")
	}
}

func TestInitialAllocationMatchesFigure2(t *testing.T) {
	// Two discovered children → χ=3 → 2-bit space, positions 1 and 2.
	ct := NewChildTable(nil)
	ct.Observe(5)
	ct.Observe(3)
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	if ct.SpaceBits() != 2 {
		t.Fatalf("space = %d bits, want 2 (Figure 2)", ct.SpaceBits())
	}
	// Deterministic: ascending id order.
	if ct.Position(3) != 1 || ct.Position(5) != 2 {
		t.Fatalf("positions: 3→%d 5→%d, want 1,2", ct.Position(3), ct.Position(5))
	}
}

func TestAllocateTwiceErrors(t *testing.T) {
	ct := NewChildTable(nil)
	ct.Observe(1)
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	if err := ct.AllocateInitial(); err == nil {
		t.Fatal("double allocation accepted")
	}
}

func TestObserveDedup(t *testing.T) {
	ct := NewChildTable(nil)
	if !ct.Observe(1) {
		t.Fatal("first observe not new")
	}
	if ct.Observe(1) {
		t.Fatal("second observe reported new")
	}
	if ct.PendingLen() != 1 {
		t.Fatalf("pending = %d", ct.PendingLen())
	}
}

func TestRequestAllocatesFreePositions(t *testing.T) {
	ct := NewChildTable(nil)
	ct.Observe(1)
	ct.Observe(2)
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	pos, ext, err := ct.Request(9)
	if err != nil {
		t.Fatal(err)
	}
	if ext {
		t.Fatal("extension with free position available")
	}
	if pos != 3 {
		t.Fatalf("pos = %d, want 3 (lowest free)", pos)
	}
	// Requesting again returns the same position.
	again, _, err := ct.Request(9)
	if err != nil || again != pos {
		t.Fatalf("repeat request = %d,%v", again, err)
	}
}

func TestSpaceExtension(t *testing.T) {
	ct := NewChildTable(TightReserve)
	ct.Observe(1)
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	// Tight reserve with 1 child → 1-bit space, 1 position. Second child
	// forces extension.
	if ct.SpaceBits() != 1 {
		t.Fatalf("space = %d, want 1", ct.SpaceBits())
	}
	pos1 := ct.Position(1)
	pos, ext, err := ct.Request(2)
	if err != nil {
		t.Fatal(err)
	}
	if !ext {
		t.Fatal("no extension when space full")
	}
	if ct.SpaceBits() != 2 {
		t.Fatalf("space after extension = %d, want 2", ct.SpaceBits())
	}
	if ct.Position(1) != pos1 {
		t.Fatal("existing position changed by extension")
	}
	if pos == pos1 || pos == 0 {
		t.Fatalf("extension allocated bad position %d", pos)
	}
}

func TestConfirmBranches(t *testing.T) {
	ct := NewChildTable(nil)
	ct.Observe(1)
	ct.Observe(2)
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	// Match branch.
	out, pos, _, err := ct.Confirm(1, ct.Position(1))
	if err != nil || out != ConfirmMatched {
		t.Fatalf("match: %v %v", out, err)
	}
	_ = pos
	if !ct.entries[1].Confirmed {
		t.Fatal("flag not set on match")
	}
	// Mismatch branch.
	out, pos, _, err = ct.Confirm(2, 9)
	if err != nil || out != ConfirmReallocated {
		t.Fatalf("mismatch: %v %v", out, err)
	}
	if pos != ct.Position(2) {
		t.Fatal("reallocated position not authoritative")
	}
	if ct.entries[2].Confirmed {
		t.Fatal("flag not reset on mismatch")
	}
	// Unknown child branch.
	out, pos, _, err = ct.Confirm(7, 4)
	if err != nil || out != ConfirmNew {
		t.Fatalf("new: %v %v", out, err)
	}
	if pos == 0 {
		t.Fatal("no position for new child")
	}
}

func TestSetConfirmed(t *testing.T) {
	ct := NewChildTable(nil)
	ct.Observe(1)
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	if ct.SetConfirmed(1, 99) {
		t.Fatal("confirmed with wrong position")
	}
	if !ct.SetConfirmed(1, ct.Position(1)) {
		t.Fatal("confirm with right position failed")
	}
	if !ct.AllConfirmed() {
		t.Fatal("AllConfirmed false after confirming all")
	}
}

func TestRemove(t *testing.T) {
	ct := NewChildTable(nil)
	ct.Observe(1)
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	ct.Remove(1)
	if ct.Position(1) != 0 || ct.Len() != 0 {
		t.Fatal("remove did not clear entry")
	}
}

func TestEntriesSorted(t *testing.T) {
	ct := NewChildTable(nil)
	for _, id := range []uint16{9, 2, 7, 4} {
		ct.Observe(radioNodeID(id))
	}
	if err := ct.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	es := ct.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Child <= es[i-1].Child {
			t.Fatalf("entries not sorted: %+v", es)
		}
	}
}

// Property: positions are always unique and within the space.
func TestPositionUniquenessProperty(t *testing.T) {
	f := func(nInitial uint8, nRequests uint8) bool {
		ct := NewChildTable(nil)
		ni := int(nInitial%20) + 1
		for i := 0; i < ni; i++ {
			ct.Observe(radioNodeID(uint16(i)))
		}
		if err := ct.AllocateInitial(); err != nil {
			return false
		}
		for i := 0; i < int(nRequests%40); i++ {
			if _, _, err := ct.Request(radioNodeID(uint16(100 + i))); err != nil {
				return false
			}
		}
		seen := make(map[uint16]bool)
		for _, e := range ct.Entries() {
			if e.Position == 0 || int(e.Position) >= 1<<ct.SpaceBits() {
				return false
			}
			if seen[e.Position] {
				return false
			}
			seen[e.Position] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// radioNodeID converts for test readability.
func radioNodeID(v uint16) radio.NodeID { return radio.NodeID(v) }
