package core

// White-box tests of the coding state machine, driving the Algorithm 2/3
// handlers directly.

import (
	"testing"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// bareEngine builds a TeleAdjusting engine on a small medium without
// starting network timers.
func bareEngine(t *testing.T, isSink bool) (*sim.Engine, *Engine, *ctp.CTP) {
	t.Helper()
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := radio.NewMedium(eng, topology.Line(3, 7), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mac.New(eng, med.Radio(0), mac.DefaultConfig(), sim.NewRNG(1), nil)
	n := node.New(eng, m)
	c := ctp.New(n, ctp.DefaultConfig(), sim.NewRNG(2), isSink)
	te := New(n, c, DefaultConfig(), sim.NewRNG(3))
	return eng, te, c
}

func TestDeliverAllocationAckFromStranger(t *testing.T) {
	_, te, _ := bareEngine(t, false)
	// An allocation ack from a node that is NOT our CTP parent must be
	// ignored (stale ack from a previous parent).
	te.deliverAllocationAck(9, &AllocationAck{
		Position:   1,
		SpaceBits:  2,
		ParentCode: RootCode(),
	})
	if _, ok := te.Code(); ok {
		t.Fatal("adopted a code from a stranger's allocation ack")
	}
}

func TestRecomputeRequiresInputs(t *testing.T) {
	_, te, _ := bareEngine(t, false)
	te.recomputeCode()
	if _, ok := te.Code(); ok {
		t.Fatal("derived a code without parent state")
	}
	// Partial state: position but no parent code.
	te.position = 1
	te.havePosition = true
	te.recomputeCode()
	if _, ok := te.Code(); ok {
		t.Fatal("derived a code without the parent's code")
	}
}

func TestSinkSeedsRootCode(t *testing.T) {
	_, te, _ := bareEngine(t, true)
	code, ok := te.Code()
	if !ok || !code.Equal(RootCode()) {
		t.Fatalf("sink code = %v/%v, want root", code, ok)
	}
	if te.Depth() != 0 {
		t.Fatalf("sink depth = %d", te.Depth())
	}
}

func TestChildBeaconDiscoveryAndMaintenance(t *testing.T) {
	_, te, _ := bareEngine(t, true)
	// A beacon from a child claiming us as parent registers it.
	te.onChildBeacon(2, &TeleExt{Parent: 0, Position: 0})
	if te.children.PendingLen() != 1 {
		t.Fatalf("pending = %d", te.children.PendingLen())
	}
	// Allocate and then process a consistent announcement: confirmed.
	if err := te.children.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	pos := te.children.Position(2)
	te.onChildBeacon(2, &TeleExt{Parent: 0, Position: pos})
	if !te.children.AllConfirmed() {
		t.Fatal("consistent announcement did not confirm")
	}
	// An inconsistent announcement resets the flag (Algorithm 2).
	te.onChildBeacon(2, &TeleExt{Parent: 0, Position: pos + 5})
	if te.children.AllConfirmed() {
		t.Fatal("mismatched announcement left the entry confirmed")
	}
}

func TestFormerChildFreesPosition(t *testing.T) {
	_, te, _ := bareEngine(t, true)
	te.onChildBeacon(2, &TeleExt{Parent: 0})
	if err := te.children.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	if te.children.Position(2) == 0 {
		t.Fatal("setup failed")
	}
	// The child's next beacon names a different parent: the position
	// frees (handled by onBeacon's else-branch).
	b := &ctp.Beacon{Parent: 9, Ext: &TeleExt{Parent: 9, HasCode: true, Code: MustCode("010")}}
	te.onBeacon(2, b)
	if te.children.Position(2) != 0 {
		t.Fatal("former child's position not freed")
	}
}

func TestNeighborCodeRetirement(t *testing.T) {
	eng, te, _ := bareEngine(t, false)
	first := MustCode("001")
	second := MustCode("01001")
	te.onBeacon(2, &ctp.Beacon{Parent: 0, Ext: &TeleExt{HasCode: true, Code: first, Parent: 0}})
	te.onBeacon(2, &ctp.Beacon{Parent: 0, Ext: &TeleExt{HasCode: true, Code: second, Parent: 0}})
	nc := te.neighborCodes[2]
	if nc == nil || !nc.code.Equal(second) {
		t.Fatalf("new code not recorded: %+v", nc)
	}
	if !nc.oldCode.Equal(first) {
		t.Fatalf("old code not retired for matching: %+v", nc)
	}
	if nc.oldUntil <= eng.Now() {
		t.Fatal("old code TTL not set")
	}
}

func TestUnreachableClearedByBeacon(t *testing.T) {
	_, te, _ := bareEngine(t, false)
	te.unreachable[5] = true
	te.onBeacon(5, &ctp.Beacon{Parent: ctp.NoParent})
	if te.unreachable[5] {
		t.Fatal("routing beacon did not clear the unreachable flag (Section III-C3)")
	}
}

func TestCodeReportRateLimited(t *testing.T) {
	eng, te, c := bareEngine(t, false)
	_ = c
	// Give the node a code and a parent-less CTP (SendToSink fails, but
	// the rate limiter is what's under test: count report ATTEMPTS via
	// lastReport movement).
	te.myCode = MustCode("001")
	te.haveCode = true
	te.sendCodeReport() // no route: returns before touching lastReport
	if te.lastReport != 0 {
		t.Fatal("report attempted without a route")
	}
	_ = eng
}

func TestBuildExtAttachesAllocationsWhileUnconfirmed(t *testing.T) {
	_, te, _ := bareEngine(t, true)
	te.onChildBeacon(2, &TeleExt{Parent: 0})
	if err := te.children.AllocateInitial(); err != nil {
		t.Fatal(err)
	}
	ext := te.buildExt().(*TeleExt)
	if len(ext.Allocations) != 1 {
		t.Fatalf("allocations not attached: %+v", ext)
	}
	// After confirmation the piggyback slims down.
	te.children.SetConfirmed(2, te.children.Position(2))
	ext = te.buildExt().(*TeleExt)
	if len(ext.Allocations) != 0 {
		t.Fatal("allocations still attached after all confirmed")
	}
}

func TestScopeRoleOf(t *testing.T) {
	_, te, _ := bareEngine(t, false)
	te.myCode = MustCode("00101")
	te.haveCode = true
	if got := te.scopeRoleOf(MustCode("001")); got != scopeMember {
		t.Fatalf("subtree member role = %v", got)
	}
	if got := te.scopeRoleOf(MustCode("0010101")); got != scopeAncestor {
		t.Fatalf("ancestor role = %v", got)
	}
	if got := te.scopeRoleOf(MustCode("010")); got != scopeOutside {
		t.Fatalf("outsider role = %v", got)
	}
	if got := te.scopeRoleOf(EmptyCode); got != scopeMember {
		t.Fatalf("one-to-all role = %v", got)
	}
}

func TestScopeRoleUsesOldCode(t *testing.T) {
	eng, te, _ := bareEngine(t, false)
	te.myCode = MustCode("010")
	te.haveCode = true
	te.myOldCode = MustCode("00101")
	te.oldCodeUntil = eng.Now() + time.Minute
	if got := te.scopeRoleOf(MustCode("001")); got != scopeMember {
		t.Fatalf("old-code member role = %v", got)
	}
	te.oldCodeUntil = 0 // expired
	if got := te.scopeRoleOf(MustCode("001")); got != scopeOutside {
		t.Fatalf("expired old code still grants membership: %v", got)
	}
}
