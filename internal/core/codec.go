package core

// The tree-coding codec seam. The paper's Algorithm 1 — a fixed-width
// positional bit space per parent, sized for the discovered children plus a
// reserve — is one point in the design space of prefix codes over the
// collection tree. A Codec owns exactly the decisions Algorithm 1 hardwires:
// how many label slots a parent provisions, which bit string each child
// position maps to, and what happens when the space fills up. Everything
// downstream (forwarding, recovery, the controller registry) only ever uses
// prefix relations between full path codes, so it is codec-agnostic by
// construction.
//
// Three codecs ship:
//
//   - paper: Algorithm 1 verbatim. Positions are encoded fixed-width (π
//     bits, π sized for children + reserve); space exhaustion widens π by
//     one bit. Labels are never put on the air — children derive them from
//     (position, π), exactly as before the refactor.
//   - treeexplorer: a near-optimal rooted-tree code in the spirit of
//     TreeExplorer. The χ provisioned slots get quasi-balanced
//     variable-length labels (depths differ by at most one bit), so label
//     cost tracks ⌈log2 χ⌉ instead of the paper's next power of two.
//     Reserve slots are pre-labeled, so joins within the reserve cause no
//     relabeling; exhaustion grows χ by one slot at a time.
//   - huffman: Huffman-by-subtree-size. Children are weighted by an
//     estimate of their subtree population (observed grandchild counts fed
//     in by the engine), so heavy subtrees get short labels. Weight changes
//     and joins rebuild the code; the resulting relabel churn is the cost
//     the coding-schemes study measures against the shorter codes.
//
// Variable-length codecs announce their labels explicitly (beacon
// allocation entries and allocation acks carry label bits); the paper codec
// stays positional and its wire image is byte-identical to the
// pre-refactor format.

import (
	"fmt"
	"math/bits"
	"sort"
)

// Codec is a tree-coding scheme: a factory for per-parent label
// allocators plus the properties the protocol needs to know about the
// scheme as a whole.
type Codec interface {
	// Name is the registry key ("paper", "treeexplorer", "huffman").
	Name() string
	// Positional reports whether children can derive their label from
	// (position, space width) alone, as in Algorithm 1. Positional codecs
	// never put label bits on the air; non-positional codecs announce
	// explicit labels in allocation entries and acks.
	Positional() bool
	// NewAllocator creates the per-parent allocation state. The reserve
	// policy sizes the provisioned slot count from the discovered child
	// count (Algorithm 1's χ); codecs are free to interpret the headroom
	// their own way but must provision at least the discovered children.
	NewAllocator(reserve ReservePolicy) Allocator
}

// Allocator is one parent's label-assignment state: a set of numbered
// positions (1-based stable handles, 0 is never a valid position) with a
// prefix-free bit label per allocated position. Implementations must be
// fully deterministic: no RNG, no map-iteration-order dependence.
type Allocator interface {
	// Allocated reports whether AllocateInitial has run.
	Allocated() bool
	// AllocateInitial provisions the label space for n discovered children
	// (positions 1..n become used) plus reserve. Calling it twice is an
	// error.
	AllocateInitial(n int) error
	// Add allocates one more position (a late join), extending or
	// rebuilding the label space when no free slot remains. It returns the
	// new position and whether any previously assigned label changed
	// (fixed-width codecs: the width grew; variable-length codecs: a
	// relabel) — the caller must re-announce on relabel.
	Add() (pos uint16, relabel bool, err error)
	// Release frees a position (the child left). Freed positions may be
	// reused by later Adds; implementations must not relabel on release.
	Release(pos uint16)
	// Label returns the current bit label of an allocated position.
	Label(pos uint16) (PathCode, error)
	// SpaceBits is the label-space width π put on beacons: the fixed
	// position width for positional codecs, the maximum assigned label
	// length otherwise. It is 0 before AllocateInitial and positive after
	// (receivers use π > 0 as the "parent has allocated" signal).
	SpaceBits() int
	// SetWeight records a subtree-size estimate for an allocated position.
	// Weight-sensitive codecs may relabel (returned as true); others
	// ignore it.
	SetWeight(pos uint16, weight int) (relabel bool)
}

// --- registry ---

// codecs is the built-in codec registry, keyed by Codec.Name.
var codecs = map[string]Codec{
	"paper":        paperCodec{},
	"treeexplorer": treeExplorerCodec{},
	"huffman":      huffmanCodec{},
}

// PaperCodec returns the default codec: the paper's Algorithm 1.
func PaperCodec() Codec { return paperCodec{} }

// TreeExplorerCodec returns the quasi-balanced variable-length codec.
func TreeExplorerCodec() Codec { return treeExplorerCodec{} }

// HuffmanCodec returns the Huffman-by-subtree-size codec.
func HuffmanCodec() Codec { return huffmanCodec{} }

// CodecByName resolves a registry key; the empty name means the paper
// codec (the pre-refactor default).
func CodecByName(name string) (Codec, error) {
	if name == "" {
		return paperCodec{}, nil
	}
	c, ok := codecs[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown codec %q (have %v)", name, CodecNames())
	}
	return c, nil
}

// CodecNames lists the registered codec names in sorted order.
func CodecNames() []string {
	out := make([]string, 0, len(codecs))
	for name := range codecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- paper codec (Algorithm 1) ---

type paperCodec struct{}

func (paperCodec) Name() string     { return "paper" }
func (paperCodec) Positional() bool { return true }
func (paperCodec) NewAllocator(reserve ReservePolicy) Allocator {
	if reserve == nil {
		reserve = DefaultReserve
	}
	return &paperAllocator{reserve: reserve, used: make(map[uint16]bool)}
}

// paperAllocator reproduces the pre-refactor ChildTable allocation
// behavior exactly: positions 1..2^π−1 (the all-zeros pattern is never
// allocated), lowest-free-first assignment, and a one-bit widening of π
// when the space fills.
type paperAllocator struct {
	reserve   ReservePolicy
	spaceBits int
	used      map[uint16]bool
}

func (a *paperAllocator) Allocated() bool { return a.spaceBits > 0 }

func (a *paperAllocator) AllocateInitial(n int) error {
	if a.Allocated() {
		return fmt.Errorf("core: initial allocation already done")
	}
	chi := a.reserve(n)
	if chi < n {
		// Every discovered child gets a position regardless of what the
		// reserve policy says; the space must fit them all.
		chi = n
	}
	if chi < 1 {
		chi = 1
	}
	// Positions are 1..2^π−1: find the smallest π that fits χ positions.
	pi := 1
	for (1<<pi)-1 < chi {
		pi++
	}
	a.spaceBits = pi
	for p := 1; p <= n; p++ {
		a.used[uint16(p)] = true
	}
	return nil
}

// nextFree returns the lowest unallocated position, or 0 when full.
func (a *paperAllocator) nextFree() uint16 {
	for p := uint16(1); int(p) < 1<<a.spaceBits; p++ {
		if !a.used[p] {
			return p
		}
	}
	return 0
}

func (a *paperAllocator) Add() (uint16, bool, error) {
	if !a.Allocated() {
		return 0, false, fmt.Errorf("core: request before initial allocation")
	}
	extended := false
	p := a.nextFree()
	if p == 0 {
		// Space extension: widen by one bit; existing positions are
		// unchanged (children re-encode them with the wider width).
		a.spaceBits++
		extended = true
		p = a.nextFree()
		if p == 0 {
			return 0, extended, fmt.Errorf("core: no free position after extension")
		}
	}
	a.used[p] = true
	return p, extended, nil
}

func (a *paperAllocator) Release(pos uint16) { delete(a.used, pos) }

func (a *paperAllocator) Label(pos uint16) (PathCode, error) {
	if !a.used[pos] {
		return PathCode{}, fmt.Errorf("core: label of unallocated position %d", pos)
	}
	return EmptyCode.Extend(pos, a.spaceBits)
}

func (a *paperAllocator) SpaceBits() int { return a.spaceBits }

func (a *paperAllocator) SetWeight(uint16, int) bool { return false }

// --- treeexplorer codec ---

type treeExplorerCodec struct{}

func (treeExplorerCodec) Name() string     { return "treeexplorer" }
func (treeExplorerCodec) Positional() bool { return false }
func (treeExplorerCodec) NewAllocator(reserve ReservePolicy) Allocator {
	if reserve == nil {
		reserve = DefaultReserve
	}
	return &teAllocator{reserve: reserve, used: make(map[uint16]bool)}
}

// teAllocator assigns quasi-balanced variable-length labels over χ slots:
// with χ slots, labels are ⌊log2 χ⌋ or ⌈log2 χ⌉ bits, shorter labels going
// to lower positions (real children first, reserve slots last). Reserve
// slots are labeled up front, so a join that lands in the reserve changes
// nobody's label; only growing χ beyond the reserve relabels.
type teAllocator struct {
	reserve ReservePolicy
	slots   int // χ; 0 until initial allocation
	used    map[uint16]bool
}

func (a *teAllocator) Allocated() bool { return a.slots > 0 }

func (a *teAllocator) AllocateInitial(n int) error {
	if a.Allocated() {
		return fmt.Errorf("core: initial allocation already done")
	}
	chi := a.reserve(n)
	if chi < n {
		chi = n
	}
	// A single slot would get the empty label, collapsing the child's code
	// onto its parent's: two slots minimum keeps labels non-empty.
	if chi < 2 {
		chi = 2
	}
	a.slots = chi
	for p := 1; p <= n; p++ {
		a.used[uint16(p)] = true
	}
	return nil
}

func (a *teAllocator) Add() (uint16, bool, error) {
	if !a.Allocated() {
		return 0, false, fmt.Errorf("core: request before initial allocation")
	}
	for p := uint16(1); int(p) <= a.slots; p++ {
		if !a.used[p] {
			a.used[p] = true
			return p, false, nil
		}
	}
	// All slots taken: grow one slot at a time. The quasi-balanced label
	// set for χ+1 slots shares no guarantee with the χ-slot one, so this
	// is a relabel (the study's churn metric counts it).
	a.slots++
	p := uint16(a.slots)
	a.used[p] = true
	return p, true, nil
}

func (a *teAllocator) Release(pos uint16) { delete(a.used, pos) }

// quasiBalancedLen returns the label length of slot index i (0-based) when
// χ slots are labeled with depths differing by at most one: the first s
// slots are ⌊log2 χ⌋ bits, the rest one bit longer.
func quasiBalancedSplit(chi int) (short, shortLen int) {
	k := bits.Len(uint(chi)) - 1 // ⌊log2 χ⌋
	if 1<<k == chi {
		return chi, k
	}
	// s short leaves of depth k, d = χ−s deep leaves of depth k+1 with
	// s = 2^(k+1) − χ (Kraft-tight).
	return 1<<(k+1) - chi, k
}

func (a *teAllocator) Label(pos uint16) (PathCode, error) {
	if !a.used[pos] {
		return PathCode{}, fmt.Errorf("core: label of unallocated position %d", pos)
	}
	return teLabel(int(pos), a.slots)
}

// teLabel computes the canonical quasi-balanced label of 1-based slot pos
// among chi slots: codewords assigned in canonical order (all short ones
// first, each the previous plus one, deep ones continuing with a one-bit
// shift).
func teLabel(pos, chi int) (PathCode, error) {
	short, shortLen := quasiBalancedSplit(chi)
	i := pos - 1 // canonical index
	if i < short {
		return codeFromValue(uint64(i), shortLen)
	}
	// First deep codeword = (short) << 1; deep index offsets from there.
	return codeFromValue(uint64(short)<<1+uint64(i-short), shortLen+1)
}

// codeFromValue builds a label from the low `width` bits of v (big-endian
// within the label, consistent with PathCode.Extend).
func codeFromValue(v uint64, width int) (PathCode, error) {
	if width <= 0 || width > MaxCodeBits {
		return PathCode{}, fmt.Errorf("core: invalid label width %d", width)
	}
	if width < 64 && v >= 1<<width {
		return PathCode{}, fmt.Errorf("core: label value %d does not fit in %d bits", v, width)
	}
	c := PathCode{bits: make([]byte, (width+7)/8), n: width}
	for i := 0; i < width; i++ {
		if v>>(width-1-i)&1 == 1 {
			c.bits[i/8] |= 1 << (7 - i%8)
		}
	}
	return c, nil
}

func (a *teAllocator) SpaceBits() int {
	if a.slots == 0 {
		return 0
	}
	short, shortLen := quasiBalancedSplit(a.slots)
	if short == a.slots {
		return shortLen
	}
	return shortLen + 1
}

func (a *teAllocator) SetWeight(uint16, int) bool { return false }

// --- huffman codec ---

type huffmanCodec struct{}

func (huffmanCodec) Name() string     { return "huffman" }
func (huffmanCodec) Positional() bool { return false }
func (huffmanCodec) NewAllocator(reserve ReservePolicy) Allocator {
	if reserve == nil {
		reserve = DefaultReserve
	}
	return &huffAllocator{
		reserve: reserve,
		weights: make(map[uint16]int),
		labels:  make(map[uint16]PathCode),
	}
}

// maxHuffWeight caps subtree-size estimates so one enormous subtree cannot
// starve its siblings into arbitrarily long labels (and bounds relabel
// churn: weights saturate).
const maxHuffWeight = 64

// huffAllocator assigns canonical Huffman labels over the allocated
// positions plus one permanent reserve pseudo-leaf (position 0, weight 1):
// the reserve leaf guarantees at least two leaves (labels never empty) and
// keeps a deep branch of label space unassigned for future joins. Any
// join or effective weight change rebuilds the code; the allocator reports
// a relabel only when an assigned label actually changed.
type huffAllocator struct {
	reserve   ReservePolicy
	allocated bool
	weights   map[uint16]int // allocated positions → weight ≥ 1
	labels    map[uint16]PathCode
	maxLen    int
}

func (a *huffAllocator) Allocated() bool { return a.allocated }

func (a *huffAllocator) AllocateInitial(n int) error {
	if a.allocated {
		return fmt.Errorf("core: initial allocation already done")
	}
	a.allocated = true
	for p := 1; p <= n; p++ {
		a.weights[uint16(p)] = 1
	}
	a.rebuild()
	return nil
}

func (a *huffAllocator) Add() (uint16, bool, error) {
	if !a.allocated {
		return 0, false, fmt.Errorf("core: request before initial allocation")
	}
	// Lowest free position (freed slots are reused, like the paper codec).
	p := uint16(1)
	for a.weights[p] != 0 {
		p++
	}
	a.weights[p] = 1
	return p, a.rebuild(), nil
}

func (a *huffAllocator) Release(pos uint16) {
	// Freeing must not relabel (the protocol has no churn to announce for
	// a departed child); the remaining labels stay prefix-free since the
	// set only shrank. The next Add or weight change rebuilds.
	delete(a.weights, pos)
	delete(a.labels, pos)
}

func (a *huffAllocator) Label(pos uint16) (PathCode, error) {
	l, ok := a.labels[pos]
	if !ok {
		return PathCode{}, fmt.Errorf("core: label of unallocated position %d", pos)
	}
	return l, nil
}

func (a *huffAllocator) SpaceBits() int {
	if !a.allocated {
		return 0
	}
	if a.maxLen < 1 {
		return 1
	}
	return a.maxLen
}

func (a *huffAllocator) SetWeight(pos uint16, weight int) bool {
	if a.weights[pos] == 0 {
		return false
	}
	if weight < 1 {
		weight = 1
	}
	if weight > maxHuffWeight {
		weight = maxHuffWeight
	}
	if a.weights[pos] == weight {
		return false
	}
	a.weights[pos] = weight
	return a.rebuild()
}

// huffNode is one node of the Huffman merge forest.
type huffNode struct {
	weight int
	// minPos is the smallest leaf position in the subtree — the
	// deterministic tie-breaker (no RNG, no map order).
	minPos uint16
	leaf   bool
	pos    uint16
	left   *huffNode
	right  *huffNode
}

// rebuild recomputes canonical Huffman labels over the current weights
// plus the reserve pseudo-leaf and reports whether any assigned label
// changed.
func (a *huffAllocator) rebuild() bool {
	// Deterministic leaf order: reserve leaf (pos 0, weight 1) first, then
	// positions ascending.
	positions := make([]uint16, 0, len(a.weights))
	for p := range a.weights {
		positions = append(positions, p)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })

	nodes := make([]*huffNode, 0, len(positions)+1)
	nodes = append(nodes, &huffNode{weight: 1, minPos: 0, leaf: true, pos: 0})
	for _, p := range positions {
		nodes = append(nodes, &huffNode{weight: a.weights[p], minPos: p, leaf: true, pos: p})
	}

	// Merge the two lightest forests until one remains; ties break on the
	// smallest contained position so the tree is unique.
	depth := map[uint16]int{}
	if len(nodes) == 1 {
		depth[0] = 1 // lone reserve leaf: nothing allocated yet
	} else {
		forest := append([]*huffNode(nil), nodes...)
		for len(forest) > 1 {
			sort.Slice(forest, func(i, j int) bool {
				if forest[i].weight != forest[j].weight {
					return forest[i].weight < forest[j].weight
				}
				return forest[i].minPos < forest[j].minPos
			})
			l, r := forest[0], forest[1]
			merged := &huffNode{weight: l.weight + r.weight, minPos: l.minPos, left: l, right: r}
			if r.minPos < merged.minPos {
				merged.minPos = r.minPos
			}
			forest = append([]*huffNode{merged}, forest[2:]...)
		}
		var walk func(n *huffNode, d int)
		walk = func(n *huffNode, d int) {
			if n.leaf {
				if d == 0 {
					d = 1 // two-leaf degenerate guard; cannot happen with ≥2 leaves
				}
				depth[n.pos] = d
				return
			}
			walk(n.left, d+1)
			walk(n.right, d+1)
		}
		walk(forest[0], 0)
	}

	// Canonical assignment: sort leaves by (length, position) and hand out
	// sequential codewords.
	type leafLen struct {
		pos uint16
		len int
	}
	leaves := make([]leafLen, 0, len(depth))
	for _, p := range positions {
		leaves = append(leaves, leafLen{pos: p, len: depth[p]})
	}
	leaves = append(leaves, leafLen{pos: 0, len: depth[0]}) // reserve leaf holds its slot
	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].len != leaves[j].len {
			return leaves[i].len < leaves[j].len
		}
		return leaves[i].pos < leaves[j].pos
	})
	changed := false
	var codeVal uint64
	prevLen := 0
	a.maxLen = 0
	next := make(map[uint16]PathCode, len(leaves))
	for i, lf := range leaves {
		if i > 0 {
			codeVal = (codeVal + 1) << (lf.len - prevLen)
		}
		prevLen = lf.len
		label, err := codeFromValue(codeVal, lf.len)
		if err != nil {
			// Label space exhausted (beyond MaxCodeBits): keep the previous
			// assignment for this leaf rather than corrupting the table.
			continue
		}
		if lf.len > a.maxLen {
			a.maxLen = lf.len
		}
		if lf.pos == 0 {
			continue // the reserve leaf's codeword is never assigned
		}
		next[lf.pos] = label
		if old, ok := a.labels[lf.pos]; !ok || !old.Equal(label) {
			changed = true
		}
	}
	a.labels = next
	return changed
}
