package core

// Fuzz test for the codec seam: whatever op sequence arrives, no allocator
// may panic, hand out a colliding position, or break the prefix-free label
// invariant the forwarding plane depends on. Seed inputs live both in
// f.Add calls and in the committed corpus under testdata/fuzz/FuzzCodecLabels/.

import "testing"

// nthLive returns the i-th (mod size) live position in ascending order —
// a deterministic way to turn a fuzz byte into a victim position.
func nthLive(live map[uint16]bool, i int) uint16 {
	ids := sortedPositions(live)
	return ids[i%len(ids)]
}

// FuzzCodecLabels drives one registered codec's allocator through an
// arbitrary join/leave/weight-churn sequence, re-checking the seam's
// invariants (via checkLabelInvariants) after every op.
func FuzzCodecLabels(f *testing.F) {
	f.Add(uint8(0), uint8(3), []byte{0x00, 0x41, 0x82, 0x10})
	f.Add(uint8(1), uint8(1), []byte{0x00, 0x00, 0x01, 0x81, 0x02})
	f.Add(uint8(2), uint8(5), []byte{0x40, 0xC2, 0x00, 0x23, 0x07, 0xFF})
	f.Fuzz(func(t *testing.T, codecSel, initial uint8, ops []byte) {
		names := CodecNames()
		codec, err := CodecByName(names[int(codecSel)%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		alloc := codec.NewAllocator(nil)
		n := int(initial % 16)
		if err := alloc.AllocateInitial(n); err != nil {
			t.Fatal(err)
		}
		live := map[uint16]bool{}
		for p := 1; p <= n; p++ {
			live[uint16(p)] = true
		}
		if len(ops) > 96 {
			ops = ops[:96] // bound the per-exec cost of the O(n²) prefix check
		}
		parent := RootCode()
		for _, op := range ops {
			switch op & 3 {
			case 0, 1: // join
				if len(live) >= 64 {
					continue
				}
				pos, _, err := alloc.Add()
				if err != nil {
					t.Fatalf("Add: %v", err)
				}
				if pos == 0 || live[pos] {
					t.Fatalf("Add returned invalid position %d", pos)
				}
				live[pos] = true
			case 2: // leave
				if len(live) == 0 {
					continue
				}
				pos := nthLive(live, int(op>>2))
				alloc.Release(pos)
				delete(live, pos)
				if _, err := alloc.Label(pos); err == nil {
					t.Fatalf("Label of released position %d succeeded", pos)
				}
			case 3: // subtree-size estimate churn
				if len(live) == 0 {
					continue
				}
				alloc.SetWeight(nthLive(live, int(op>>5)), 1+int(op>>2))
			}
			checkLabelInvariants(t, alloc, parent, live, codec.Positional())
		}
	})
}
