package core

// Fuzz tests for the wire encoding. Two properties, checked per message
// type:
//
//  1. Decoding never panics, whatever bytes arrive (a malformed frame must
//     not take a node down).
//  2. Any value a decoder accepts survives marshal → unmarshal unchanged
//     (decoders produce canonical values: tail bits masked, exact-length
//     slices), and re-encoding is byte-stable.
//
// Seed inputs live both in f.Add calls and in the committed corpus under
// testdata/fuzz/<FuzzName>/.

import (
	"bytes"
	"reflect"
	"testing"

	"teleadjust/internal/radio"
)

// fuzzExt is a representative beacon extension exercising every field.
func fuzzExt() *TeleExt {
	return &TeleExt{
		HasCode:   true,
		Code:      MustCode("10110100111"),
		Depth:     4,
		SpaceBits: 3,
		Parent:    radio.NodeID(7),
		Position:  5,
		Allocations: []ChildEntry{
			{Child: 9, Position: 1, Confirmed: true},
			{Child: 12, Position: 6},
		},
	}
}

// fuzzControl is a representative control packet exercising every field.
func fuzzControl() *Control {
	return &Control{
		UID:         0xdeadbeef,
		Op:          42,
		Dst:         17,
		DstCode:     MustCode("1011001"),
		Expected:    3,
		ExpectedLen: 4,
		Detour:      true,
		FinalDst:    21,
		Hops:        9,
	}
}

// canonicalCode builds a canonical PathCode from fuzz-provided raw
// material by routing it through the decoder, which masks tail bits and
// zero-pads missing payload bytes.
func canonicalCode(n byte, raw []byte) PathCode {
	nbytes := (int(n) + 7) / 8
	buf := make([]byte, 1+nbytes)
	buf[0] = n
	copy(buf[1:], raw)
	c, _, err := DecodeCode(buf)
	if err != nil {
		panic(err) // unreachable: buf always holds the declared length
	}
	return c
}

// FuzzDecodeCode: decoding arbitrary bytes never panics; an accepted code
// re-encodes to exactly the bytes consumed and decodes back equal.
func FuzzDecodeCode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(AppendCode(nil, RootCode()))
	f.Add(AppendCode(nil, MustCode("10110100111")))
	f.Add([]byte{200, 1, 2, 3}) // declared length far beyond the payload
	f.Fuzz(func(t *testing.T, data []byte) {
		c, rest, err := DecodeCode(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		enc := AppendCode(nil, c)
		if consumed != len(enc) {
			t.Fatalf("decode consumed %d bytes but re-encoded to %d", consumed, len(enc))
		}
		c2, rest2, err := DecodeCode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d trailing bytes", len(rest2))
		}
		if !c.Equal(c2) {
			t.Fatalf("round trip changed code: %v vs %v", c, c2)
		}
	})
}

// FuzzUnmarshalExt: beacon-extension decoding never panics and accepted
// extensions round-trip.
func FuzzUnmarshalExt(f *testing.F) {
	f.Add(MarshalExt(fuzzExt()))
	f.Add(MarshalExt(&TeleExt{Parent: radio.BroadcastID}))
	f.Add([]byte{extFlagHasCode}) // code flag set but no code bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalExt(data)
		if err != nil {
			return
		}
		enc := MarshalExt(e)
		e2, err := UnmarshalExt(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("round trip changed extension:\nfirst:  %+v\nsecond: %+v", e, e2)
		}
	})
}

// FuzzUnmarshalControl: control-packet decoding never panics and accepted
// packets round-trip.
func FuzzUnmarshalControl(f *testing.F) {
	f.Add(MarshalControl(fuzzControl()))
	f.Add(MarshalControl(&Control{}))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) // minimum prefix, truncated code
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalControl(data)
		if err != nil {
			return
		}
		enc := MarshalControl(c)
		c2, err := UnmarshalControl(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip changed control:\nfirst:  %+v\nsecond: %+v", c, c2)
		}
	})
}

// FuzzUnmarshalFeedback: feedback decoding never panics and accepted
// packets round-trip.
func FuzzUnmarshalFeedback(f *testing.F) {
	seed, err := MarshalFeedback(&Feedback{UID: 77, FailedRelay: 4, Ctrl: fuzzControl()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:8]) // embedded control truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		fb, err := UnmarshalFeedback(data)
		if err != nil {
			return
		}
		enc, err := MarshalFeedback(fb)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		fb2, err := UnmarshalFeedback(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(fb, fb2) {
			t.Fatalf("round trip changed feedback:\nfirst:  %+v\nsecond: %+v", fb, fb2)
		}
	})
}

// FuzzUnmarshalCodeReport: code-report decoding never panics and accepted
// reports round-trip.
func FuzzUnmarshalCodeReport(f *testing.F) {
	f.Add(MarshalCodeReport(&CodeReport{Code: MustCode("110"), Depth: 3}))
	f.Add([]byte{9, 0xFF}) // declared code length beyond the payload
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalCodeReport(data)
		if err != nil {
			return
		}
		enc := MarshalCodeReport(r)
		r2, err := UnmarshalCodeReport(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip changed report:\nfirst:  %+v\nsecond: %+v", r, r2)
		}
	})
}

// FuzzUnmarshalE2EAck: ack decoding never panics and accepted acks
// round-trip.
func FuzzUnmarshalE2EAck(f *testing.F) {
	f.Add(MarshalE2EAck(&E2EAck{UID: 5, From: 2, Hops: 6}))
	f.Add([]byte{1, 2, 3}) // short
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := UnmarshalE2EAck(data)
		if err != nil {
			return
		}
		enc := MarshalE2EAck(a)
		a2, err := UnmarshalE2EAck(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(a, a2) {
			t.Fatalf("round trip changed ack:\nfirst:  %+v\nsecond: %+v", a, a2)
		}
	})
}

// FuzzControlEncode drives the encoder from the value side: any Control
// built from fuzzed fields must marshal, unmarshal back equal, and
// re-marshal to identical bytes.
func FuzzControlEncode(f *testing.F) {
	c := fuzzControl()
	f.Add(c.UID, c.Op, uint16(c.Dst), uint16(c.Expected), uint16(c.FinalDst),
		uint16(c.ExpectedLen), uint16(c.Hops), c.Detour, c.FinalLeg,
		uint16(c.DstCode.Len()), AppendCode(nil, c.DstCode)[1:])
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0), uint16(0),
		uint16(0), uint16(0), false, false, uint16(0), []byte{})
	f.Fuzz(func(t *testing.T, uid, op uint32, dst, expected, finalDst, expectedLen, hops uint16,
		detour, finalLeg bool, codeLen uint16, codeRaw []byte) {
		c := &Control{
			UID:         uid,
			Op:          op,
			Dst:         radio.NodeID(dst),
			DstCode:     canonicalCode(byte(codeLen), codeRaw),
			Expected:    radio.NodeID(expected),
			ExpectedLen: uint8(expectedLen),
			Detour:      detour,
			FinalLeg:    finalLeg,
			FinalDst:    radio.NodeID(finalDst),
			Hops:        uint8(hops),
		}
		enc := MarshalControl(c)
		got, err := UnmarshalControl(enc)
		if err != nil {
			t.Fatalf("decoding a marshalled control failed: %v", err)
		}
		if !reflect.DeepEqual(c, got) {
			t.Fatalf("round trip changed control:\nsent: %+v\ngot:  %+v", c, got)
		}
		if enc2 := MarshalControl(got); !bytes.Equal(enc, enc2) {
			t.Fatal("re-encode is not byte-stable")
		}
	})
}

// FuzzExtEncode drives the beacon-extension encoder from the value side,
// deriving allocations from raw fuzz bytes.
func FuzzExtEncode(f *testing.F) {
	e := fuzzExt()
	f.Add(true, uint16(e.Code.Len()), AppendCode(nil, e.Code)[1:],
		uint16(e.Depth), uint16(e.SpaceBits), uint16(e.Parent), e.Position,
		[]byte{0, 9, 0, 1, 1, 0, 12, 0, 6, 0})
	f.Add(false, uint16(0), []byte{}, uint16(0), uint16(0), uint16(0xFFFF), uint16(0), []byte{})
	f.Fuzz(func(t *testing.T, hasCode bool, codeLen uint16, codeRaw []byte,
		depth, space, parent, position uint16, allocRaw []byte) {
		e := &TeleExt{
			HasCode:   hasCode,
			Depth:     uint8(depth),
			SpaceBits: uint8(space),
			Parent:    radio.NodeID(parent),
			Position:  position,
		}
		if hasCode {
			e.Code = canonicalCode(byte(codeLen), codeRaw)
		}
		n := len(allocRaw) / 5
		if n > 255 {
			n = 255 // the wire format caps the allocation count at a byte
		}
		for i := 0; i < n; i++ {
			a := allocRaw[5*i:]
			e.Allocations = append(e.Allocations, ChildEntry{
				Child:     radio.NodeID(uint16(a[0])<<8 | uint16(a[1])),
				Position:  uint16(a[2])<<8 | uint16(a[3]),
				Confirmed: a[4]&1 != 0,
			})
		}
		enc := MarshalExt(e)
		got, err := UnmarshalExt(enc)
		if err != nil {
			t.Fatalf("decoding a marshalled extension failed: %v", err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("round trip changed extension:\nsent: %+v\ngot:  %+v", e, got)
		}
		if enc2 := MarshalExt(got); !bytes.Equal(enc, enc2) {
			t.Fatal("re-encode is not byte-stable")
		}
	})
}

// FuzzExtEncodeLabels drives the label-bearing beacon-extension path from
// the value side: variable-width codec labels (including a mix of empty
// and non-empty ones, which flips the top-level labels flag) must
// round-trip and re-encode byte-stably. Eight fuzz bytes per allocation:
// child, position, flags, declared label bit length, two raw label bytes.
func FuzzExtEncodeLabels(f *testing.F) {
	f.Add(uint16(11), []byte{0xB4, 0xE0},
		[]byte{0, 9, 0, 1, 1, 2, 0xC0, 0, 0, 12, 0, 6, 0, 5, 0xA8, 0})
	f.Add(uint16(0), []byte{}, []byte{0, 3, 0, 1, 0, 0, 0, 0}) // all labels empty: flag stays clear
	f.Fuzz(func(t *testing.T, codeLen uint16, codeRaw, allocRaw []byte) {
		e := &TeleExt{Depth: 2, SpaceBits: 4, Parent: radio.NodeID(3), Position: 1}
		if codeLen > 0 {
			e.HasCode = true
			e.Code = canonicalCode(byte(codeLen), codeRaw)
		}
		n := len(allocRaw) / 8
		if n > 255 {
			n = 255 // the wire format caps the allocation count at a byte
		}
		for i := 0; i < n; i++ {
			a := allocRaw[8*i:]
			e.Allocations = append(e.Allocations, ChildEntry{
				Child:     radio.NodeID(uint16(a[0])<<8 | uint16(a[1])),
				Position:  uint16(a[2])<<8 | uint16(a[3]),
				Confirmed: a[4]&1 != 0,
				Label:     canonicalCode(a[5], a[6:8]),
			})
		}
		enc := MarshalExt(e)
		got, err := UnmarshalExt(enc)
		if err != nil {
			t.Fatalf("decoding a marshalled extension failed: %v", err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("round trip changed extension:\nsent: %+v\ngot:  %+v", e, got)
		}
		if enc2 := MarshalExt(got); !bytes.Equal(enc, enc2) {
			t.Fatal("re-encode is not byte-stable")
		}
	})
}
