package core_test

import (
	"fmt"

	"teleadjust/internal/core"
)

// ExamplePathCode reproduces the paper's Figure 2: the sink S holds the
// root code, allocates 2-bit positions to its children A and M, and A
// extends the chain toward B — every ancestor's code is a prefix of its
// descendants'.
func ExamplePathCode() {
	s := core.RootCode()
	a, _ := s.Extend(1, 2) // A takes position 1 of S's 2-bit space
	m, _ := s.Extend(2, 2) // M takes position 2
	b, _ := a.Extend(1, 2) // B takes position 1 of A's space

	fmt.Println("S:", s)
	fmt.Println("A:", a)
	fmt.Println("M:", m)
	fmt.Println("B:", b)
	fmt.Println("S prefix of B:", s.IsPrefixOf(b))
	fmt.Println("A prefix of B:", a.IsPrefixOf(b))
	fmt.Println("M prefix of B:", m.IsPrefixOf(b))
	// Output:
	// S: 0
	// A: 001
	// M: 010
	// B: 00101
	// S prefix of B: true
	// A prefix of B: true
	// M prefix of B: false
}

// ExamplePathCode_relayDecision shows the prefix-matching relay rule of
// Section III-C: given a destination code and the expected relay's valid
// length, a node (or one of its neighbors) qualifies when its matched
// prefix is strictly longer.
func ExamplePathCode_relayDecision() {
	dst := core.MustCode("0010101") // destination's path code
	expectedLen := 3                // expected relay A holds a 3-bit code

	c := core.MustCode("00101") // node C, deeper on the encoded path
	m := core.MustCode("010")   // node M, on another branch

	qualifies := func(code core.PathCode) bool {
		return code.IsPrefixOf(dst) && code.Len() > expectedLen
	}
	fmt.Println("C qualifies:", qualifies(c))
	fmt.Println("M qualifies:", qualifies(m))
	// M still helps if it knows C as a neighbor (condition 3):
	fmt.Println("M can vouch for C:", qualifies(c))
	// Output:
	// C qualifies: true
	// M qualifies: false
	// M can vouch for C: true
}

// ExampleChildTable walks Algorithm 1: size the bit space for the
// discovered children plus reserve, then allocate deterministic positions.
func ExampleChildTable() {
	ct := core.NewChildTable(core.DefaultReserve)
	ct.Observe(12)
	ct.Observe(7)
	if err := ct.AllocateInitial(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("space bits:", ct.SpaceBits())
	for _, e := range ct.Entries() {
		fmt.Printf("child %d -> position %d\n", e.Child, e.Position)
	}
	// Output:
	// space bits: 2
	// child 7 -> position 1
	// child 12 -> position 2
}
