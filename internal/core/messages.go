package core

import (
	"teleadjust/internal/radio"
)

// TeleExt is the TeleAdjusting state piggybacked on every CTP routing
// beacon: the sender's path code, its child bit space, its own position at
// its coding parent (position maintenance), and — while relevant — the
// child position allocations (the "TeleAdjusting beacon" contents of
// Algorithms 1–3).
type TeleExt struct {
	HasCode   bool
	Code      PathCode
	Depth     uint8
	SpaceBits uint8
	// Parent is the sender's coding parent (ctp.NoParent-equivalent
	// radio.BroadcastID when none).
	Parent radio.NodeID
	// Position is the sender's allocated position at its coding parent
	// (0 = none yet).
	Position    uint16
	Allocations []ChildEntry
}

// ExtSize returns the wire size contribution of the extension in bytes
// (the length of its binary encoding).
func (e *TeleExt) ExtSize() int { return len(MarshalExt(e)) }

// PositionRequest asks the (coding) parent for a position (unicast).
type PositionRequest struct{}

// AllocationAck is the parent's unicast answer to a position request or a
// detected inconsistency: the authoritative position plus everything the
// child needs to compute its code immediately. Non-positional codecs also
// carry the child's explicit bit label (empty for the paper codec, whose
// labels are derived from position and space width).
type AllocationAck struct {
	Position    uint16
	SpaceBits   uint8
	ParentCode  PathCode
	ParentDepth uint8
	Label       PathCode
}

// ConfirmFrame is the child's unicast confirmation of an allocation.
type ConfirmFrame struct {
	Position uint16
}

// Control is the downward remote-control packet. It travels as link-layer
// anycast: the frame destination is broadcast and awake neighbors decide
// acceptance by prefix matching (Section III-C).
type Control struct {
	// UID identifies this delivery attempt on the wire (the rescue path
	// re-sends under a fresh UID so relays participate afresh).
	UID uint32
	// Op identifies the control operation end to end: it stays constant
	// across rescue attempts, and the destination dedups and reports
	// deliveries by it.
	Op uint32
	// Dst is the destination node and DstCode its path code.
	Dst     radio.NodeID
	DstCode PathCode
	// Expected is the expected relay and ExpectedLen the qualification
	// bar: a node relays if it (or a neighbor) matches the destination
	// code with strictly more than ExpectedLen bits, or if it is Expected.
	Expected    radio.NodeID
	ExpectedLen uint8
	// Detour marks the rescue path of Section III-C4: the packet is
	// routed to Dst (a code-divergent neighbor of the real target), which
	// then delivers directly to FinalDst.
	Detour   bool
	FinalDst radio.NodeID
	// FinalLeg marks the direct unicast K→destination delivery.
	FinalLeg bool
	// Hops counts link transmissions travelled (ATHX bookkeeping).
	Hops uint8
	// App carries the operator's control parameters.
	App any
	// Batch, when non-empty, marks a piggyback carrier: the packet routes
	// to Dst (the deepest shared-prefix node of all members) and splits
	// there into per-subtree sub-carriers and singles. The carrier's own
	// UID/Op mirror its first member's; the member list is authoritative.
	Batch []BatchMember
}

// BatchMember is one piggybacked command inside a batch control packet
// (the cross-op batching wire extension). Members sharing a path-code
// prefix ride one downward packet to the deepest common-prefix node and
// fan out from there.
type BatchMember struct {
	// UID/Op identify the member's own delivery attempt and end-to-end
	// operation, exactly as for an individual Control.
	UID uint32
	Op  uint32
	Dst radio.NodeID
	// Suffix is the member's path code relative to the carrier's DstCode
	// (empty when the member is addressed to the carrier destination
	// itself); the shared prefix travels once, in the carrier header.
	Suffix PathCode
	// Payload is the member's encoded application payload; the wire
	// format charges its length so batching pays for what it carries.
	Payload []byte
	// App is the in-memory application value (out of band, like
	// Control.App).
	App any
}

// TelemetryIDs implements telemetry.OpIdentified: frame-level trace events
// carrying a control packet are attributed to its operation span.
func (c *Control) TelemetryIDs() (op, uid uint32) { return c.Op, c.UID }

// Feedback returns an undeliverable control packet to the previous upward
// relay (backtracking, Section III-C3).
type Feedback struct {
	UID uint32
	// FailedRelay is the node reporting unreachability.
	FailedRelay radio.NodeID
	Ctrl        *Control
}

// TelemetryIDs implements telemetry.OpIdentified.
func (fb *Feedback) TelemetryIDs() (op, uid uint32) {
	if fb.Ctrl != nil {
		op = fb.Ctrl.Op
	}
	return op, fb.UID
}

// CodeReport is sent upward over CTP so the controller learns each node's
// path code.
type CodeReport struct {
	Code  PathCode
	Depth uint8
}

// E2EAck is the destination's end-to-end acknowledgement, sent upward over
// CTP ("TeleAdjusting transmits the acknowledgement as a data packet").
type E2EAck struct {
	UID  uint32
	From radio.NodeID
	// Hops is the Hops count the control packet had on delivery.
	Hops uint8
}

// AckRelay wraps an E2EAck handed to a neighbor for upward forwarding when
// the destination received the packet on the rescue path (its own upward
// path may be the blocked one).
type AckRelay struct {
	Ack E2EAck
}

// macHeaderBytes is the 802.15.4 MAC header + FCS overhead charged on
// every data frame.
const macHeaderBytes = 11

// controlFrameSize computes the MAC frame size of a control packet from
// its actual wire encoding.
func controlFrameSize(c *Control) int {
	return macHeaderBytes + len(MarshalControl(c))
}

// feedbackFrameSize computes the MAC frame size of a feedback packet.
func feedbackFrameSize(fb *Feedback) int {
	b, err := MarshalFeedback(fb)
	if err != nil {
		return macHeaderBytes
	}
	return macHeaderBytes + len(b)
}
