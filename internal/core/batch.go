package core

import (
	"errors"
	"fmt"
	"time"

	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// ErrEmptyBatch is returned by SendControlBatch for a zero-member request.
var ErrEmptyBatch = errors.New("core: empty batch request")

// BatchRequest is one command handed to SendControlBatch. Payload is the
// encoded application payload charged on the wire; App is the in-memory
// application value delivered to the destination (mirroring Control's
// App/wire split).
type BatchRequest struct {
	Dst     radio.NodeID
	App     any
	Payload []byte
	Cb      func(Result)
}

// SendControlBatch dispatches a set of control operations that share a
// path-code prefix as one downward piggyback carrier: the carrier routes
// to the deepest registered node whose code prefixes every member's code
// and splits there into per-subtree sub-carriers and singles. Each member
// keeps its own UID, pending record, timeout, and (if needed) Re-Tele
// rescue — only the shared downward leg is coalesced.
//
// The returned UID slice is aligned with reqs. Members whose codes are
// unknown get UID 0 and their callback fires synchronously with OK=false;
// the rest of the batch proceeds. When no useful shared prefix exists
// (the deepest common ancestor is the sink itself), members are
// dispatched as individual operations.
func (e *Engine) SendControlBatch(reqs []BatchRequest) ([]uint32, error) {
	if !e.isSink {
		return nil, ErrNotSink
	}
	if len(reqs) == 0 {
		return nil, ErrEmptyBatch
	}
	if len(reqs) > MaxBatchMembers {
		return nil, fmt.Errorf("core: batch of %d exceeds %d members", len(reqs), MaxBatchMembers)
	}
	uids := make([]uint32, len(reqs))

	// Resolve codes; unroutable members fail in place without sinking the
	// batch (matching SendControl's unknown-code behavior).
	type routable struct {
		idx  int
		code PathCode
	}
	members := make([]routable, 0, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		if r.Dst == e.node.ID() {
			if r.Cb != nil {
				r.Cb(Result{Dst: r.Dst, OK: false})
			}
			continue
		}
		info, ok := e.registry[r.Dst]
		if !ok {
			e.emitOp(telemetry.Event{Kind: telemetry.KindOpUnroutable, Dst: r.Dst})
			if r.Cb != nil {
				r.Cb(Result{Dst: r.Dst, OK: false})
			}
			continue
		}
		members = append(members, routable{idx: i, code: info.Code})
	}
	if len(members) == 0 {
		return uids, nil
	}
	if len(members) == 1 {
		m := members[0]
		r := &reqs[m.idx]
		uids[m.idx] = e.launchControl(r.Dst, m.code, r.App, SendOpts{}, r.Cb)
		return uids, nil
	}

	// Common prefix of every member code.
	common := members[0].code
	for _, m := range members[1:] {
		common = common.Prefix(common.CommonPrefixLen(m.code))
	}

	// Split node: the deepest registered node whose code prefixes the
	// common prefix — scan with order-independent best tracking (longest
	// code, lowest id tiebreak) so map iteration order cannot leak into
	// the deterministic trace. The sink itself seeds the search.
	splitNode := e.node.ID()
	splitCode := e.myCode
	bestLen := splitCode.Len()
	for id, info := range e.registry {
		if !info.Code.IsPrefixOf(common) {
			continue
		}
		if l := info.Code.Len(); l > bestLen || (l == bestLen && id < splitNode) {
			splitNode = id
			splitCode = info.Code
			bestLen = l
		}
	}
	if splitNode == e.node.ID() {
		// No shared downward leg to save: dispatch individually.
		for _, m := range members {
			r := &reqs[m.idx]
			uids[m.idx] = e.launchControl(r.Dst, m.code, r.App, SendOpts{}, r.Cb)
		}
		return uids, nil
	}

	// Per-member bookkeeping: each member is a full operation (UID,
	// pending record, timeout, issue event); only the carrier is shared.
	batch := make([]BatchMember, len(members))
	for i, m := range members {
		r := &reqs[m.idx]
		e.uidSeq++
		uid := e.uidSeq
		uids[m.idx] = uid
		e.trackPending(uid, r.Dst, r.App, SendOpts{}, r.Cb)
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpIssue, Op: uid, UID: uid, Dst: r.Dst})
		batch[i] = BatchMember{
			UID:     uid,
			Op:      uid,
			Dst:     r.Dst,
			Suffix:  m.code.Suffix(splitCode.Len()),
			Payload: r.Payload,
			App:     r.App,
		}
	}

	// The carrier borrows its first member's identity on the wire; the
	// member list is authoritative at the split.
	c := &Control{
		UID:     batch[0].UID,
		Op:      batch[0].Op,
		Dst:     splitNode,
		DstCode: splitCode,
		Batch:   batch,
	}
	st := &ctrlState{
		ctrl:       c,
		attempts:   e.cfg.RetryRounds + 1,
		backtracks: e.cfg.Backtracks,
		excluded:   make(map[radio.NodeID]bool),
		status:     ctrlForwarding,
		at:         e.eng.Now(),
	}
	e.ctrl[c.UID] = st
	e.forwardControl(st)
	return uids, nil
}

// deliverBatch splits an arrived piggyback carrier at its destination:
// members addressed here are consumed, the rest regroup by child subtree
// into sub-carriers (≥2 members) or plain singles and continue downward.
func (e *Engine) deliverBatch(f *radio.Frame, c *Control) {
	// A retransmitted or overheard duplicate carrier must not split twice:
	// the carrier UID doubles as its first member's onward UID, so e.ctrl
	// cannot dedup it (classifyControl accepts Dst==me before the UID
	// check).
	if e.batchSeen == nil {
		e.batchSeen = make(map[uint32]time.Duration)
	}
	if _, dup := e.batchSeen[c.UID]; dup {
		return
	}
	e.batchSeen[c.UID] = e.eng.Now()
	e.gcBatchSeen()

	// Consume members addressed to the split node itself.
	rest := make([]BatchMember, 0, len(c.Batch))
	for i := range c.Batch {
		m := &c.Batch[i]
		if m.Suffix.IsEmpty() || m.Dst == e.node.ID() {
			mc := &Control{UID: m.UID, Op: m.Op, Dst: m.Dst, Hops: c.Hops, App: m.App}
			e.consume(mc, f.Src, false)
			continue
		}
		rest = append(rest, *m)
	}
	if len(rest) == 0 {
		return
	}

	// Regroup the remainder by child subtree. Entries() is sorted by child
	// id, so grouping — and therefore sub-carrier identity — is
	// deterministic.
	claimed := make([]bool, len(rest))
	for _, entry := range e.children.Entries() {
		label := e.childLabel(entry)
		if label.IsEmpty() {
			continue
		}
		group := make([]BatchMember, 0, len(rest))
		for i := range rest {
			if !claimed[i] && label.IsPrefixOf(rest[i].Suffix) {
				claimed[i] = true
				group = append(group, rest[i])
			}
		}
		switch {
		case len(group) >= 2:
			e.launchSubCarrier(f, c, entry.Child, label, group)
		case len(group) == 1:
			e.launchBatchSingle(f, c, group[0])
		}
	}
	// Members matching no local child still hold a valid full code: let the
	// regular opportunistic machinery hunt for them as singles.
	for i := range rest {
		if !claimed[i] {
			e.launchBatchSingle(f, c, rest[i])
		}
	}
}

// childLabel returns the code bits a child appends to this node's code:
// derived from position and space width for positional codecs, the
// explicit label otherwise.
func (e *Engine) childLabel(entry ChildEntry) PathCode {
	if !e.codecPositional {
		return entry.Label
	}
	label, err := EmptyCode.Extend(entry.Position, e.children.SpaceBits())
	if err != nil {
		return EmptyCode
	}
	return label
}

// launchSubCarrier continues a batch subgroup downward as a narrower
// carrier addressed to the child subtree root, with member suffixes
// re-based past the child's label.
func (e *Engine) launchSubCarrier(f *radio.Frame, c *Control, child radio.NodeID, label PathCode, group []BatchMember) {
	dstCode, err := c.DstCode.Append(label)
	if err != nil {
		for _, m := range group {
			e.launchBatchSingle(f, c, m)
		}
		return
	}
	sub := make([]BatchMember, len(group))
	for i, m := range group {
		m.Suffix = m.Suffix.Suffix(label.Len())
		sub[i] = m
	}
	sc := &Control{
		UID:     sub[0].UID,
		Op:      sub[0].Op,
		Dst:     child,
		DstCode: dstCode,
		Hops:    c.Hops,
		Batch:   sub,
	}
	e.relayBatchControl(f, sc)
}

// launchBatchSingle continues one batch member downward as a plain control
// packet with its full reconstructed destination code.
func (e *Engine) launchBatchSingle(f *radio.Frame, c *Control, m BatchMember) {
	dstCode, err := c.DstCode.Append(m.Suffix)
	if err != nil {
		return
	}
	sc := &Control{
		UID:     m.UID,
		Op:      m.Op,
		Dst:     m.Dst,
		DstCode: dstCode,
		Hops:    c.Hops,
		App:     m.App,
	}
	e.relayBatchControl(f, sc)
}

// relayBatchControl installs fresh forwarding state for a post-split packet
// and sends it on, exactly like deliverControl's relay path.
func (e *Engine) relayBatchControl(f *radio.Frame, c *Control) {
	st := &ctrlState{
		ctrl:       c,
		prev:       f.Src,
		havePrev:   true,
		attempts:   e.cfg.RetryRounds + 1,
		backtracks: e.cfg.Backtracks,
		excluded:   make(map[radio.NodeID]bool),
		status:     ctrlForwarding,
		at:         e.eng.Now(),
	}
	e.ctrl[c.UID] = st
	e.gcCtrl()
	e.forwardControl(st)
}

// gcBatchSeen bounds the carrier-split dedup table.
func (e *Engine) gcBatchSeen() {
	if len(e.batchSeen) < 256 {
		return
	}
	cutoff := e.eng.Now() - 2*e.cfg.ControlTimeout
	for uid, at := range e.batchSeen {
		if at < cutoff {
			delete(e.batchSeen, uid)
		}
	}
}
