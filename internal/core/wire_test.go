package core

import (
	"testing"
	"testing/quick"

	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

func randomCode(seed uint64) PathCode {
	rng := sim.NewRNG(seed)
	c := RootCode()
	depth := rng.IntN(12)
	for i := 0; i < depth; i++ {
		w := 1 + rng.IntN(4)
		pos := uint16(1 + rng.IntN((1<<w)-1))
		next, err := c.Extend(pos, w)
		if err != nil {
			break
		}
		c = next
	}
	return c
}

func TestCodeWireRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		c := randomCode(seed)
		b := AppendCode(nil, c)
		got, rest, err := DecodeCode(b)
		return err == nil && len(rest) == 0 && got.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeWireEmptyAndTruncated(t *testing.T) {
	b := AppendCode(nil, EmptyCode)
	got, rest, err := DecodeCode(b)
	if err != nil || len(rest) != 0 || !got.Equal(EmptyCode) {
		t.Fatalf("empty round trip: %v %v %v", got, rest, err)
	}
	if _, _, err := DecodeCode(nil); err != ErrTruncated {
		t.Fatalf("nil buffer error = %v", err)
	}
	if _, _, err := DecodeCode([]byte{16, 0x00}); err != ErrTruncated {
		t.Fatalf("short payload error = %v", err)
	}
}

func TestCodeWireTailMasking(t *testing.T) {
	// Garbage in the padding bits must not affect equality after decode.
	c := MustCode("101")
	b := AppendCode(nil, c)
	b[1] |= 0x1F // dirty the 5 padding bits
	got, _, err := DecodeCode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c) {
		t.Fatalf("decoded %v != %v despite tail masking", got, c)
	}
}

func TestExtWireRoundTrip(t *testing.T) {
	f := func(seed uint64, depth, space uint8, parent, pos uint16, nAlloc uint8) bool {
		e := &TeleExt{
			HasCode:   seed%2 == 0,
			Code:      randomCode(seed),
			Depth:     depth,
			SpaceBits: space,
			Parent:    radio.NodeID(parent),
			Position:  pos,
		}
		if !e.HasCode {
			e.Code = PathCode{}
		}
		for i := 0; i < int(nAlloc%6); i++ {
			e.Allocations = append(e.Allocations, ChildEntry{
				Child:     radio.NodeID(i + 1),
				Position:  uint16(i + 1),
				Confirmed: i%2 == 0,
			})
		}
		b := MarshalExt(e)
		if len(b) != e.ExtSize() {
			return false
		}
		got, err := UnmarshalExt(b)
		if err != nil {
			return false
		}
		if got.HasCode != e.HasCode || !got.Code.Equal(e.Code) ||
			got.Depth != e.Depth || got.SpaceBits != e.SpaceBits ||
			got.Parent != e.Parent || got.Position != e.Position ||
			len(got.Allocations) != len(e.Allocations) {
			return false
		}
		for i := range e.Allocations {
			g, w := got.Allocations[i], e.Allocations[i]
			if g.Child != w.Child || g.Position != w.Position ||
				g.Confirmed != w.Confirmed || !g.Label.Equal(w.Label) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestControlWireRoundTrip(t *testing.T) {
	f := func(seed uint64, uid, op uint32, dst, exp, fin uint16, el, hops uint8, detour, final bool) bool {
		c := &Control{
			UID:         uid,
			Op:          op,
			Dst:         radio.NodeID(dst),
			DstCode:     randomCode(seed),
			Expected:    radio.NodeID(exp),
			ExpectedLen: el,
			Detour:      detour,
			FinalLeg:    final,
			FinalDst:    radio.NodeID(fin),
			Hops:        hops,
		}
		got, err := UnmarshalControl(MarshalControl(c))
		if err != nil {
			return false
		}
		return got.UID == c.UID && got.Op == c.Op && got.Dst == c.Dst &&
			got.DstCode.Equal(c.DstCode) && got.Expected == c.Expected &&
			got.ExpectedLen == c.ExpectedLen && got.Detour == c.Detour &&
			got.FinalLeg == c.FinalLeg && got.FinalDst == c.FinalDst &&
			got.Hops == c.Hops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackWireRoundTrip(t *testing.T) {
	fb := &Feedback{
		UID:         99,
		FailedRelay: 12,
		Ctrl: &Control{
			UID:     99,
			Op:      99,
			Dst:     5,
			DstCode: MustCode("0010101"),
			Hops:    3,
		},
	}
	b, err := MarshalFeedback(fb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFeedback(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != fb.UID || got.FailedRelay != fb.FailedRelay ||
		!got.Ctrl.DstCode.Equal(fb.Ctrl.DstCode) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := MarshalFeedback(&Feedback{}); err == nil {
		t.Fatal("feedback without control accepted")
	}
	if _, err := UnmarshalFeedback([]byte{1, 2}); err != ErrTruncated {
		t.Fatalf("truncated error = %v", err)
	}
}

func TestCodeReportAndAckWire(t *testing.T) {
	r := &CodeReport{Code: MustCode("00101"), Depth: 2}
	gotR, err := UnmarshalCodeReport(MarshalCodeReport(r))
	if err != nil || !gotR.Code.Equal(r.Code) || gotR.Depth != 2 {
		t.Fatalf("code report round trip: %+v %v", gotR, err)
	}
	a := &E2EAck{UID: 7, From: 3, Hops: 4}
	gotA, err := UnmarshalE2EAck(MarshalE2EAck(a))
	if err != nil || *gotA != *a {
		t.Fatalf("ack round trip: %+v %v", gotA, err)
	}
	if _, err := UnmarshalE2EAck([]byte{1}); err != ErrTruncated {
		t.Fatalf("truncated ack error = %v", err)
	}
	if _, err := UnmarshalCodeReport(nil); err != ErrTruncated {
		t.Fatalf("truncated report error = %v", err)
	}
}

func TestControlSizeTracksCodeLength(t *testing.T) {
	short := &Control{DstCode: MustCode("001")}
	long := &Control{DstCode: MustCode("0010101010101010101010101")}
	if controlFrameSize(long) <= controlFrameSize(short) {
		t.Fatal("frame size must grow with the destination code")
	}
	// The paper's premise: even deep destinations address in a few bytes.
	if s := controlFrameSize(long); s > 40 {
		t.Fatalf("25-bit-code control frame is %d bytes; should stay compact", s)
	}
}

func TestUnmarshalExtTruncations(t *testing.T) {
	e := &TeleExt{HasCode: true, Code: MustCode("00101"), Parent: 1, Position: 2,
		Allocations: []ChildEntry{{Child: 9, Position: 1}}}
	b := MarshalExt(e)
	for cut := 0; cut < len(b); cut++ {
		if _, err := UnmarshalExt(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
