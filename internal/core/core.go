package core
