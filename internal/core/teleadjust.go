package core

import (
	"math/rand/v2"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/telemetry"
)

// Config holds TeleAdjusting parameters.
type Config struct {
	// Codec selects the tree-coding scheme (nil means the paper's
	// Algorithm 1; see CodecByName for the registry).
	Codec Codec
	// Reserve is the Algorithm 1 bit-space reserve policy.
	Reserve ReservePolicy
	// AllocDelay is how long after the last new-child discovery the
	// initial allocation fires (paper: 10 rounds of routing beacons =
	// 10 × wake-up interval).
	AllocDelay time.Duration
	// RetryRounds is how many additional full LPL rounds a relay tries
	// (with re-chosen expected relays) before backtracking.
	RetryRounds int
	// Backtracks bounds backtracking steps per packet per node.
	Backtracks int
	// Opportunistic enables relaying by nodes other than the expected
	// relay (disable for the strict-path ablation).
	Opportunistic bool
	// Rescue enables the destination-unreachable countermeasure
	// (Section III-C4, the paper's "Re-Tele" variant).
	Rescue bool
	// FeedbackIntercept enables the Figure 5(a) refinement: an on-path
	// node overhearing a feedback packet resumes forwarding itself.
	FeedbackIntercept bool
	// ControlTimeout fails a pending control operation at the sink.
	ControlTimeout time.Duration
	// ReportInterval paces periodic code reports to the controller.
	ReportInterval time.Duration
	// NeighborCodeTTL ages out neighbor code entries.
	NeighborCodeTTL time.Duration
	// OldCodeTTL is how long a superseded code stays valid for matching
	// ("the old code ... will be remained for a period of time").
	OldCodeTTL time.Duration
	// RequestMinGap rate-limits position request frames.
	RequestMinGap time.Duration
}

// DefaultConfig returns paper-faithful defaults for a 512 ms wake interval.
func DefaultConfig() Config {
	return Config{
		Reserve:           DefaultReserve,
		AllocDelay:        10 * 512 * time.Millisecond,
		RetryRounds:       2,
		Backtracks:        3,
		Opportunistic:     true,
		Rescue:            true,
		FeedbackIntercept: true,
		ControlTimeout:    60 * time.Second,
		ReportInterval:    2 * time.Minute,
		NeighborCodeTTL:   15 * time.Minute,
		OldCodeTTL:        5 * time.Minute,
		RequestMinGap:     2 * time.Second,
	}
}

// Stats aggregates per-node TeleAdjusting statistics.
type Stats struct {
	// Coding.
	CodeChanges     uint64
	PositionReqs    uint64
	AllocationAcks  uint64
	Confirms        uint64
	SpaceExtensions uint64
	// Relabels counts label reassignments by variable-length codecs (the
	// non-positional counterpart of SpaceExtensions: a label-space change
	// that must be re-announced to children).
	Relabels uint64
	// HeaderBytes accumulates destination path-code bytes put on the air
	// by control sends — the per-codec header-cost metric of the
	// coding-schemes study.
	HeaderBytes uint64
	// Forwarding.
	ControlSends    uint64 // logical control transmissions (Table III metric)
	ControlRelayed  uint64
	ControlDeliv    uint64 // packets consumed as destination
	ControlDupDeliv uint64
	FeedbackSends   uint64
	Backtracks      uint64
	Rescues         uint64
	SendFailures    uint64
}

// ATHXSample is one Fig-8 scatter point: a control packet received at this
// node after travelling Hops link transmissions.
type ATHXSample = protocol.ATHXSample

type neighborCode struct {
	code      PathCode
	depth     uint8
	spaceBits uint8
	oldCode   PathCode
	oldUntil  time.Duration
	heardAt   time.Duration
}

type ctrlStatus uint8

const (
	ctrlForwarding ctrlStatus = iota + 1
	ctrlDone
	ctrlFailed
)

type ctrlState struct {
	ctrl       *Control
	frame      *radio.Frame // the in-flight MAC frame for implicit acks
	prev       radio.NodeID // upward relay that handed us the packet
	havePrev   bool
	attempts   int
	backtracks int
	excluded   map[radio.NodeID]bool
	status     ctrlStatus
	at         time.Duration
}

// Engine is one node's TeleAdjusting instance. It registers itself as a
// protocol on the node and hooks into the node's CTP instance.
type Engine struct {
	node *node.Node
	eng  *sim.Engine
	cfg  Config
	rng  *rand.Rand
	ctp  *ctp.CTP

	isSink bool

	// Coding state.
	myCode       PathCode
	haveCode     bool
	depth        uint8
	myOldCode    PathCode
	oldCodeUntil time.Duration
	position     uint16
	havePosition bool
	// label is the explicit bit label adopted from the parent
	// (non-positional codecs; positional codecs derive the label from
	// position and parentSpace).
	label       PathCode
	haveLabel   bool
	parentCode  PathCode
	parentSpace uint8
	parentDepth uint8
	haveParent  bool
	codeAt      time.Duration // when the code was first obtained
	// eligibleAt is when code construction became possible at this node:
	// the first moment its (current) parent was known to hold a path code
	// (the paper's Fig 6c convergence clock starts here).
	eligibleAt     time.Duration
	haveEligibleAt bool

	children      *ChildTable
	lastChildNews time.Duration
	allocTimer    *sim.Timer
	lastRequest   time.Duration
	// codecPositional caches Codec.Positional(): true for the paper codec,
	// whose hot paths must stay exactly as before the codec seam.
	codecPositional bool
	// grandkids maps overheard grandchildren to the child whose subtree
	// they belong to — the weight estimate feed for weight-sensitive
	// codecs (nil for positional codecs).
	grandkids map[radio.NodeID]radio.NodeID

	neighborCodes map[radio.NodeID]*neighborCode
	unreachable   map[radio.NodeID]bool

	// Forwarding state.
	ctrl map[uint32]*ctrlState

	// Scoped-dissemination state.
	scopeSeen     map[uint32]time.Duration
	pendingScopes map[uint32]*pendingScope

	// Batch-carrier split state: carrier UIDs already split at this node.
	// Kept separate from ctrl because the first member's onward forwarding
	// reuses the carrier UID and needs its own ctrlState here.
	batchSeen map[uint32]time.Duration

	// Sink-side controller state.
	registry  map[radio.NodeID]CodeInfo
	pending   map[uint32]*pendingControl
	uidSeq    uint32
	oracle    Oracle
	appDelive func(origin radio.NodeID, app any)

	reportTk    *sim.Ticker
	lastReport  time.Duration
	reportDirty bool
	deliverFn   func(uid uint32, hops uint8)

	athx  []ATHXSample
	stats Stats

	// Telemetry (optional; nil bus and handles are valid and near-free).
	bus     *telemetry.Bus
	e2eLat  *telemetry.Histogram
	e2eHops *telemetry.Histogram
}

// CodeInfo is a controller-side registry entry.
type CodeInfo struct {
	Code  PathCode
	Depth uint8
	At    time.Duration
}

// Oracle supplies the controller's global topology knowledge used by the
// destination-unreachable countermeasure (the paper assumes "the local
// topology information of each node is necessary and likely known" at the
// controller). Implementations are backed by the simulation medium.
type Oracle interface {
	NeighborsOf(id radio.NodeID) []radio.NodeID
	// LinkQuality returns the expected delivery ratio of the directed
	// link a→b in [0,1].
	LinkQuality(a, b radio.NodeID) float64
}

type pendingControl struct {
	op       uint32
	dst      radio.NodeID
	app      any
	sentAt   time.Duration
	cb       func(Result)
	timeout  sim.EventRef
	detoured bool
	rescued  bool
	noRescue bool
}

// Result reports the outcome of a control operation at the sink.
type Result = protocol.Result

var _ node.Protocol = (*Engine)(nil)
var _ protocol.ControlProtocol = (*Engine)(nil)

// Name identifies the protocol family for uniform stacks.
func (e *Engine) Name() string { return "teleadjust" }

// New creates a TeleAdjusting engine bound to a node and its CTP instance,
// and registers it with the node runtime. The sink seeds itself with the
// root code.
func New(n *node.Node, c *ctp.CTP, cfg Config, rng *rand.Rand) *Engine {
	if cfg.Reserve == nil {
		cfg.Reserve = DefaultReserve
	}
	if cfg.Codec == nil {
		cfg.Codec = PaperCodec()
	}
	e := &Engine{
		node:            n,
		eng:             n.Engine(),
		cfg:             cfg,
		rng:             rng,
		ctp:             c,
		isSink:          c.IsSink(),
		children:        NewChildTableWithCodec(cfg.Codec, cfg.Reserve),
		codecPositional: cfg.Codec.Positional(),
		neighborCodes:   make(map[radio.NodeID]*neighborCode),
		unreachable:     make(map[radio.NodeID]bool),
		ctrl:            make(map[uint32]*ctrlState),
		batchSeen:       make(map[uint32]time.Duration),
	}
	if !e.codecPositional {
		e.grandkids = make(map[radio.NodeID]radio.NodeID)
	}
	if e.isSink {
		e.myCode = RootCode()
		e.haveCode = true
		e.depth = 0
		e.registry = make(map[radio.NodeID]CodeInfo)
		e.pending = make(map[uint32]*pendingControl)
		c.SetDeliverFunc(e.handleCollect)
	}
	e.allocTimer = sim.NewTimer(e.eng, e.maybeAllocate)
	c.SetBeaconExt(e.buildExt)
	c.OnBeaconReceived(e.onBeacon)
	c.OnParentChange(e.onParentChange)
	n.Register(e)
	return e
}

// Start begins periodic code reporting (non-sink nodes).
func (e *Engine) Start() {
	if e.isSink || e.cfg.ReportInterval <= 0 {
		return
	}
	e.reportTk = sim.NewTicker(e.eng, e.cfg.ReportInterval, e.sendCodeReport)
	e.reportTk.StartWithOffset(time.Duration(e.rng.Int64N(int64(e.cfg.ReportInterval))))
}

// Stop halts timers.
func (e *Engine) Stop() {
	e.allocTimer.Stop()
	if e.reportTk != nil {
		e.reportTk.Stop()
	}
}

// --- Introspection ---

// Code returns the node's current path code (ok=false before assignment).
func (e *Engine) Code() (PathCode, bool) { return e.myCode, e.haveCode }

// ParentCode returns the coding parent's path code as last adopted by this
// node (the prefix its own code extends). Recovery-state introspection for
// invariant checkers: a node's code must strictly extend its parent code.
func (e *Engine) ParentCode() (PathCode, bool) { return e.parentCode, e.haveParent }

// Depth returns the node's depth in the code tree (the reverse-path hop
// count of Fig. 6d).
func (e *Engine) Depth() uint8 { return e.depth }

// CodeAssignedAt returns when the node first obtained a code (0,false
// before that); used by the convergence-time experiments.
func (e *Engine) CodeAssignedAt() (time.Duration, bool) {
	if !e.haveCode || e.isSink {
		return 0, e.isSink
	}
	return e.codeAt, true
}

// EligibleAt returns when code construction became possible (the node had
// a parent that published a path code). The Fig 6c convergence time is
// CodeAssignedAt − EligibleAt.
func (e *Engine) EligibleAt() (time.Duration, bool) {
	return e.eligibleAt, e.haveEligibleAt
}

// Children returns a snapshot of the child table entries.
func (e *Engine) Children() []ChildEntry { return e.children.Entries() }

// SpaceBits returns the node's child bit-space width (0 = unallocated).
func (e *Engine) SpaceBits() int { return e.children.SpaceBits() }

// Stats returns a copy of the statistics.
func (e *Engine) Stats() Stats { return e.stats }

// ControlTx returns the node's logical control-plane transmissions (the
// Table III metric): control forwards plus feedback sends.
func (e *Engine) ControlTx() uint64 {
	return e.stats.ControlSends + e.stats.FeedbackSends
}

// Detail exports the diagnostic counters the comparison studies report.
func (e *Engine) Detail() map[string]uint64 {
	return map[string]uint64{
		"backtracks":     e.stats.Backtracks,
		"rescues":        e.stats.Rescues,
		"dup-deliveries": e.stats.ControlDupDeliv,
		"feedbacks":      e.stats.FeedbackSends,
	}
}

// ATHX returns the Fig-8 samples recorded at this node.
func (e *Engine) ATHX() []ATHXSample {
	out := make([]ATHXSample, len(e.athx))
	copy(out, e.athx)
	return out
}

// SetOracle installs the controller's topology oracle (sink only).
func (e *Engine) SetOracle(o Oracle) { e.oracle = o }

// SetTelemetry binds the node's statistics counters into the registry (as
// externally-owned storage, so the hot-path `stats.X++` sites stay as
// they are) and attaches the event bus for operation span emissions. Both
// arguments may be nil; re-binding after a reboot replaces the previous
// node's counters, modeling volatile-state loss.
func (e *Engine) SetTelemetry(reg *telemetry.Registry, bus *telemetry.Bus) {
	e.bus = bus
	id := e.node.ID()
	reg.BindCounter(telemetry.LayerCore, id, "code-changes", &e.stats.CodeChanges)
	reg.BindCounter(telemetry.LayerCore, id, "position-reqs", &e.stats.PositionReqs)
	reg.BindCounter(telemetry.LayerCore, id, "allocation-acks", &e.stats.AllocationAcks)
	reg.BindCounter(telemetry.LayerCore, id, "confirms", &e.stats.Confirms)
	reg.BindCounter(telemetry.LayerCore, id, "space-extensions", &e.stats.SpaceExtensions)
	reg.BindCounter(telemetry.LayerCore, id, "relabels", &e.stats.Relabels)
	reg.BindCounter(telemetry.LayerCore, id, "header-bytes", &e.stats.HeaderBytes)
	reg.BindCounter(telemetry.LayerCore, id, "control-sends", &e.stats.ControlSends)
	reg.BindCounter(telemetry.LayerCore, id, "control-relayed", &e.stats.ControlRelayed)
	reg.BindCounter(telemetry.LayerCore, id, "control-deliv", &e.stats.ControlDeliv)
	reg.BindCounter(telemetry.LayerCore, id, "control-dup-deliv", &e.stats.ControlDupDeliv)
	reg.BindCounter(telemetry.LayerCore, id, "feedback-sends", &e.stats.FeedbackSends)
	reg.BindCounter(telemetry.LayerCore, id, "backtracks", &e.stats.Backtracks)
	reg.BindCounter(telemetry.LayerCore, id, "rescues", &e.stats.Rescues)
	reg.BindCounter(telemetry.LayerCore, id, "send-failures", &e.stats.SendFailures)
	if e.isSink {
		e.e2eLat = reg.Histogram(telemetry.LayerCore, id, "e2e-latency-s")
		e.e2eHops = reg.Histogram(telemetry.LayerCore, id, "e2e-hops")
	}
}

// emitOp publishes a core-layer event attributed to this node. The bus
// rejects it on one mask test when nobody listens; hot paths additionally
// guard event construction with bus.Wants.
func (e *Engine) emitOp(ev telemetry.Event) {
	ev.Layer = telemetry.LayerCore
	ev.Node = e.node.ID()
	e.bus.Emit(ev)
}

// SetAppDeliver installs the sink-side handler for CTP application payloads
// that are not TeleAdjusting internals (the engine owns the sink's CTP
// delivery hook).
func (e *Engine) SetAppDeliver(fn func(origin radio.NodeID, app any)) { e.appDelive = fn }

// SetDeliveredFn installs a hook fired when this node consumes a control
// packet addressed to it (used by the harness for one-way latency).
func (e *Engine) SetDeliveredFn(fn func(uid uint32, hops uint8)) { e.deliverFn = fn }

// Registry returns the controller's code registry (sink only).
func (e *Engine) Registry() map[radio.NodeID]CodeInfo {
	out := make(map[radio.NodeID]CodeInfo, len(e.registry))
	for k, v := range e.registry {
		out[k] = v
	}
	return out
}

// --- node.Protocol ---

// Owns implements node.Protocol.
func (e *Engine) Owns(payload any) bool {
	switch payload.(type) {
	case *Control, *Feedback, *PositionRequest, *AllocationAck, *ConfirmFrame, *AckRelay, *ScopedControl:
		return true
	}
	return false
}

// Classify implements node.Protocol.
func (e *Engine) Classify(f *radio.Frame) mac.Classification {
	switch p := f.Payload.(type) {
	case *Control:
		return e.classifyControl(f, p)
	case *ScopedControl:
		return e.classifyScope(p)
	case *Feedback:
		return e.classifyFeedback(f, p)
	case *PositionRequest, *AllocationAck, *ConfirmFrame, *AckRelay:
		if f.Dst == e.node.ID() {
			return mac.Classification{Decision: mac.AckAndDeliver}
		}
	}
	return mac.Classification{Decision: mac.Ignore}
}

// Deliver implements node.Protocol.
func (e *Engine) Deliver(f *radio.Frame) {
	switch p := f.Payload.(type) {
	case *Control:
		e.deliverControl(f, p)
	case *ScopedControl:
		e.deliverScope(p)
	case *Feedback:
		e.deliverFeedback(f, p)
	case *PositionRequest:
		e.deliverPositionRequest(f.Src)
	case *AllocationAck:
		e.deliverAllocationAck(f.Src, p)
	case *ConfirmFrame:
		e.children.SetConfirmed(f.Src, p.Position)
	case *AckRelay:
		// Forward the destination's e2e ack upward on our own tree.
		_ = e.ctp.SendToSink(&p.Ack)
	}
}

// OnSendDone implements node.Protocol.
func (e *Engine) OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool) {
	switch p := f.Payload.(type) {
	case *Control:
		e.controlSendDone(f, p, acker, ok)
	case *Feedback:
		if !ok {
			// Could not return the packet upstream; the operation will be
			// recovered by the sink's timeout.
			e.stats.SendFailures++
		}
	case *PositionRequest, *ConfirmFrame, *AllocationAck:
		// Best effort — periodic beacons repair losses — but the outcome
		// still teaches the link estimator about the (possibly
		// asymmetric) link.
		e.ctp.ReportLinkOutcome(f.Dst, ok)
	}
}
