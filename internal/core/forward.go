package core

import (
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// Ack-election priorities: the destination acks first, then on-path relays
// ordered by progress, then relays that only know a qualifying neighbor,
// and the expected relay last (it is the floor everyone else outbids).
const (
	prioDestination = 0
	prioExpected    = 7
)

// progressPrio maps a progress advantage (matched bits beyond the
// qualification bar) to an ack slot: more progress acks earlier.
func progressPrio(adv int) int {
	switch {
	case adv >= 6:
		return 1
	case adv >= 4:
		return 2
	case adv >= 2:
		return 3
	default:
		return 4
	}
}

// countControlSend books one logical control transmission plus the
// destination path-code bytes it puts on the air (the per-codec
// header-cost metric).
func (e *Engine) countControlSend(c *Control) {
	e.stats.ControlSends++
	e.stats.HeaderBytes += uint64(c.DstCode.SizeBytes())
	for i := range c.Batch {
		e.stats.HeaderBytes += uint64(c.Batch[i].Suffix.SizeBytes())
	}
}

// myMatch returns the length of this node's code (or still-valid old code)
// prefix-matched against dst, 0 if neither matches.
func (e *Engine) myMatch(dst PathCode) int {
	best := 0
	if e.haveCode && e.myCode.IsPrefixOf(dst) {
		best = e.myCode.Len()
	}
	if !e.myOldCode.IsEmpty() && e.eng.Now() < e.oldCodeUntil &&
		e.myOldCode.IsPrefixOf(dst) && e.myOldCode.Len() > best {
		best = e.myOldCode.Len()
	}
	return best
}

// neighborMatch returns the freshest qualifying neighbor match above the
// bar: the neighbor id and its matched prefix length (0 if none). Excluded
// and unreachable neighbors are skipped.
func (e *Engine) neighborMatch(dst PathCode, bar int, excluded map[radio.NodeID]bool) (radio.NodeID, int) {
	now := e.eng.Now()
	bestID := radio.BroadcastID
	best := 0
	for id, nc := range e.neighborCodes {
		if e.unreachable[id] || (excluded != nil && excluded[id]) {
			continue
		}
		if now-nc.heardAt > e.cfg.NeighborCodeTTL {
			continue
		}
		ml := 0
		if nc.code.IsPrefixOf(dst) {
			ml = nc.code.Len()
		}
		if !nc.oldCode.IsEmpty() && now < nc.oldUntil &&
			nc.oldCode.IsPrefixOf(dst) && nc.oldCode.Len() > ml {
			ml = nc.oldCode.Len()
		}
		if ml > bar && (ml > best || (ml == best && id < bestID)) {
			best = ml
			bestID = id
		}
	}
	return bestID, best
}

// classifyControl implements the three relay conditions of Section III-C:
// (1) being the expected relay, (2) owning a longer matched prefix than the
// expected relay, (3) knowing a neighbor that satisfies (2) — plus the
// destination itself.
func (e *Engine) classifyControl(f *radio.Frame, c *Control) mac.Classification {
	me := e.node.ID()
	trace := e.bus.Wants(telemetry.LayerCore)
	if c.FinalLeg {
		if f.Dst == me {
			if trace {
				e.emitOp(telemetry.Event{Kind: telemetry.KindOpRelayCase, Op: c.Op, UID: c.UID,
					Hops: c.Hops, Note: "final-leg destination"})
			}
			return mac.Classification{Decision: mac.AckAndDeliver, Prio: prioDestination}
		}
		return mac.Classification{Decision: mac.Ignore}
	}
	if c.Dst == me {
		// Destination (or detour target): always accept.
		if trace {
			note := "destination"
			if c.Detour {
				note = "detour target"
			}
			e.emitOp(telemetry.Event{Kind: telemetry.KindOpRelayCase, Op: c.Op, UID: c.UID,
				Hops: c.Hops, Note: note})
		}
		return mac.Classification{Decision: mac.AckAndDeliver, Prio: prioDestination}
	}
	if st, ok := e.ctrl[c.UID]; ok && st != nil {
		// Already carried (or known undeliverable through us). If we are
		// still streaming this packet and overhear it further along the
		// path, the downstream relay's ack was lost but the packet has
		// progressed: treat the overheard forward as an implicit ack.
		if st.status == ctrlForwarding && f.Src != me &&
			st.frame != nil && c.Hops > st.ctrl.Hops {
			e.node.MAC().CancelSend(st.frame)
		}
		return mac.Classification{Decision: mac.Ignore}
	}
	bar := int(c.ExpectedLen)
	if e.cfg.Opportunistic {
		if m := e.myMatch(c.DstCode); m > bar {
			if trace {
				e.emitOp(telemetry.Event{Kind: telemetry.KindOpRelayCase, Op: c.Op, UID: c.UID,
					Hops: c.Hops, Value: float64(m - bar), Note: "opportunistic self-match"})
			}
			return mac.Classification{Decision: mac.AckAndDeliver, Prio: progressPrio(m - bar)}
		}
		if _, nm := e.neighborMatch(c.DstCode, bar, nil); nm > 0 {
			prio := progressPrio(nm-bar) + 2
			if prio > prioExpected-1 {
				prio = prioExpected - 1
			}
			if trace {
				e.emitOp(telemetry.Event{Kind: telemetry.KindOpRelayCase, Op: c.Op, UID: c.UID,
					Hops: c.Hops, Value: float64(nm - bar), Note: "opportunistic neighbor-match"})
			}
			return mac.Classification{Decision: mac.AckAndDeliver, Prio: prio}
		}
	}
	if c.Expected == me {
		prio := prioExpected
		if !e.cfg.Opportunistic {
			prio = 0 // strict mode: only the expected relay answers
		}
		if trace {
			e.emitOp(telemetry.Event{Kind: telemetry.KindOpRelayCase, Op: c.Op, UID: c.UID,
				Hops: c.Hops, Note: "expected relay"})
		}
		return mac.Classification{Decision: mac.AckAndDeliver, Prio: prio}
	}
	return mac.Classification{Decision: mac.Ignore}
}

// deliverControl handles an accepted (and already link-acked) control
// packet: consume at the destination, hand off at the detour target, or
// relay downward.
func (e *Engine) deliverControl(f *radio.Frame, c *Control) {
	me := e.node.ID()
	e.athx = append(e.athx, ATHXSample{Hops: c.Hops, At: e.eng.Now()})
	switch {
	case c.FinalLeg && f.Dst == me:
		e.consume(c, f.Src, true)
	case c.Dst == me && !c.Detour && len(c.Batch) > 0:
		// Piggyback carrier arrived at its split node: fan the members out.
		e.deliverBatch(f, c)
	case c.Dst == me && !c.Detour:
		e.consume(c, f.Src, false)
	case c.Dst == me && c.Detour:
		// Rescue relay K: deliver directly to the true destination.
		leg := &Control{
			UID:      c.UID,
			Op:       c.Op,
			Dst:      c.FinalDst,
			DstCode:  c.DstCode,
			FinalDst: c.FinalDst,
			FinalLeg: true,
			Hops:     c.Hops + 1,
			App:      c.App,
		}
		e.countControlSend(leg)
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpDetourLeg, Op: c.Op, UID: c.UID,
			Dst: c.FinalDst, Hops: leg.Hops})
		_ = e.node.Send(&radio.Frame{
			Kind:    radio.FrameData,
			Dst:     c.FinalDst,
			Size:    controlFrameSize(leg),
			Payload: leg,
		})
	default:
		st := &ctrlState{
			ctrl:       c,
			prev:       f.Src,
			havePrev:   true,
			attempts:   e.cfg.RetryRounds + 1,
			backtracks: e.cfg.Backtracks,
			excluded:   make(map[radio.NodeID]bool),
			status:     ctrlForwarding,
			at:         e.eng.Now(),
		}
		e.ctrl[c.UID] = st
		e.gcCtrl()
		e.forwardControl(st)
	}
}

// consume delivers a control packet addressed to this node and returns the
// end-to-end acknowledgement — over CTP normally, or back through the
// delivering neighbor on the rescue path (Section III-C5).
func (e *Engine) consume(c *Control, from radio.NodeID, direct bool) {
	if e.opDelivered(c.Op) {
		e.stats.ControlDupDeliv++
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpDupConsume, Op: c.Op, UID: c.UID,
			Src: from, Hops: c.Hops})
	} else {
		e.stats.ControlDeliv++
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpConsume, Op: c.Op, UID: c.UID,
			Src: from, Hops: c.Hops})
		if e.deliverFn != nil {
			e.deliverFn(c.Op, c.Hops)
		}
	}
	ack := E2EAck{UID: c.UID, From: e.node.ID(), Hops: c.Hops}
	if direct {
		_ = e.node.Send(&radio.Frame{
			Kind:    radio.FrameData,
			Dst:     from,
			Size:    10,
			Payload: &AckRelay{Ack: ack},
		})
		return
	}
	_ = e.ctp.SendToSink(&ack)
}

// opDelivered marks and reports per-operation app delivery (dedup across
// rescue attempts, which arrive under fresh wire UIDs).
func (e *Engine) opDelivered(op uint32) bool {
	st, ok := e.ctrl[op]
	if ok && st.status == ctrlDone {
		return true
	}
	e.ctrl[op] = &ctrlState{status: ctrlDone, at: e.eng.Now()}
	return false
}

// forwardControl sends the packet one hop downward: pick the expected
// relay (the qualifying candidate with the *least* progress, so every
// better-placed node can outbid it — Figure 4c) and stream via the MAC.
func (e *Engine) forwardControl(st *ctrlState) {
	c := st.ctrl
	bar := int(c.ExpectedLen)
	if m := e.myMatch(c.DstCode); m > bar {
		bar = m
	}
	// Among qualifying neighbors, the expected relay is the one with the
	// LEAST match above the bar (maximum forwarding opportunity —
	// Figure 4c sets C, not D). With no qualifying neighbor known, fall
	// back to naming the destination with the bar as qualification
	// length, so any on-path node closer than us can still take it.
	expected := c.Dst
	expectedLen := bar
	if minID, minLen := e.minNeighborMatch(c.DstCode, bar, st.excluded); minID != radio.BroadcastID {
		expected = minID
		expectedLen = minLen
	}
	fwd := &Control{
		UID:         c.UID,
		Op:          c.Op,
		Dst:         c.Dst,
		DstCode:     c.DstCode,
		Expected:    expected,
		ExpectedLen: uint8(expectedLen),
		Detour:      c.Detour,
		FinalDst:    c.FinalDst,
		Hops:        c.Hops + 1,
		App:         c.App,
		Batch:       c.Batch,
	}
	st.ctrl = fwd
	e.countControlSend(fwd)
	if !e.isSink {
		e.stats.ControlRelayed++
	}
	if e.bus.Wants(telemetry.LayerCore) {
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpForward, Op: fwd.Op, UID: fwd.UID,
			Dst: expected, Hops: fwd.Hops, Value: float64(expectedLen)})
	}
	frame := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     radio.BroadcastID,
		Size:    controlFrameSize(fwd),
		Payload: fwd,
	}
	st.frame = frame
	if err := e.node.Send(frame); err != nil {
		st.frame = nil
		e.handleForwardFailure(st, expected)
	}
}

// minNeighborMatch returns the qualifying neighbor with the smallest match
// above bar.
func (e *Engine) minNeighborMatch(dst PathCode, bar int, excluded map[radio.NodeID]bool) (radio.NodeID, int) {
	now := e.eng.Now()
	bestID := radio.BroadcastID
	best := int(^uint(0) >> 1)
	for id, nc := range e.neighborCodes {
		if e.unreachable[id] || (excluded != nil && excluded[id]) {
			continue
		}
		if now-nc.heardAt > e.cfg.NeighborCodeTTL {
			continue
		}
		ml := 0
		if nc.code.IsPrefixOf(dst) {
			ml = nc.code.Len()
		}
		if !nc.oldCode.IsEmpty() && now < nc.oldUntil &&
			nc.oldCode.IsPrefixOf(dst) && nc.oldCode.Len() > ml {
			ml = nc.oldCode.Len()
		}
		if ml > bar && (ml < best || (ml == best && id < bestID)) {
			best = ml
			bestID = id
		}
	}
	if bestID == radio.BroadcastID {
		return radio.BroadcastID, 0
	}
	return bestID, best
}

// controlSendDone reacts to the MAC's verdict on a forwarded control
// packet.
func (e *Engine) controlSendDone(f *radio.Frame, c *Control, acker radio.NodeID, ok bool) {
	if c.FinalLeg {
		// The rescue final leg is fire-and-forget; the sink's timeout
		// recovers a loss.
		if !ok {
			e.stats.SendFailures++
		}
		return
	}
	st, tracked := e.ctrl[c.UID]
	if !tracked || st.status != ctrlForwarding {
		return
	}
	if ok {
		st.status = ctrlDone
		st.at = e.eng.Now()
		_ = acker
		return
	}
	e.handleForwardFailure(st, c.Expected)
}

// handleForwardFailure retries with a different expected relay, then
// backtracks (Section III-C3).
func (e *Engine) handleForwardFailure(st *ctrlState, expected radio.NodeID) {
	c := st.ctrl
	if expected != c.Dst {
		// Flag the silent relay unreachable until its next routing beacon.
		st.excluded[expected] = true
		e.unreachable[expected] = true
	}
	st.attempts--
	if st.attempts > 0 {
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpRetry, Op: c.Op, UID: c.UID,
			Dst: expected, Value: float64(st.attempts)})
		e.forwardControl(st)
		return
	}
	// Exhausted: backtrack to the previous upward relay.
	st.status = ctrlFailed
	st.at = e.eng.Now()
	if st.havePrev {
		fb := &Feedback{UID: c.UID, FailedRelay: e.node.ID(), Ctrl: c}
		e.stats.Backtracks++
		e.stats.FeedbackSends++
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpBacktrack, Op: c.Op, UID: c.UID,
			Dst: st.prev})
		_ = e.node.Send(&radio.Frame{
			Kind:    radio.FrameData,
			Dst:     st.prev,
			Size:    feedbackFrameSize(fb),
			Payload: fb,
		})
		return
	}
	if e.isSink {
		e.sinkUndeliverable(c)
	}
}

// classifyFeedback accepts a feedback packet addressed to us, and — the
// Figure 5(a) refinement — lets an overhearing on-path node that can still
// reach the destination intercept the backtrack and resume forwarding
// ("C's forwarding can stop the transmission of B's feedback").
func (e *Engine) classifyFeedback(f *radio.Frame, fb *Feedback) mac.Classification {
	me := e.node.ID()
	if f.Dst == me {
		return mac.Classification{Decision: mac.AckAndDeliver, Prio: prioExpected}
	}
	if !e.cfg.Opportunistic || !e.cfg.FeedbackIntercept || fb.Ctrl == nil {
		return mac.Classification{Decision: mac.Ignore}
	}
	if st, ok := e.ctrl[fb.UID]; ok && st != nil && st.status != ctrlDone {
		// We already failed (or are struggling with) this packet.
		return mac.Classification{Decision: mac.Ignore}
	}
	if fb.FailedRelay == me {
		return mac.Classification{Decision: mac.Ignore}
	}
	// Intercept only with a direct on-path match beyond the failed
	// relay's vantage; this node then owns the packet again.
	if m := e.myMatch(fb.Ctrl.DstCode); m > 0 {
		return mac.Classification{Decision: mac.AckAndDeliver, Prio: progressPrio(m)}
	}
	return mac.Classification{Decision: mac.Ignore}
}

// deliverFeedback reopens a packet returned by a downstream relay — at its
// addressee, or at an on-path interceptor that won the overhearing
// election (Figure 5a).
func (e *Engine) deliverFeedback(f *radio.Frame, fb *Feedback) {
	// The failed relay is excluded for this operation only (below): its
	// feedback frame proves the node itself is reachable — it just could
	// not progress this packet. A global unreachable mark here would
	// blacklist a live first hop for unrelated operations, including the
	// Re-Tele rescue attempt that follows a backtracked failure.
	st, ok := e.ctrl[fb.UID]
	if !ok {
		st = &ctrlState{
			ctrl: fb.Ctrl,
			// An interceptor's upstream, should it fail too, is the relay
			// that emitted this feedback.
			prev:       f.Src,
			havePrev:   f.Src != e.node.ID(),
			attempts:   e.cfg.RetryRounds + 1,
			backtracks: e.cfg.Backtracks,
			excluded:   make(map[radio.NodeID]bool),
			status:     ctrlForwarding,
			at:         e.eng.Now(),
		}
		e.ctrl[fb.UID] = st
	}
	// The state may be a bare delivery marker (opDelivered) or carry no
	// control copy yet; normalize before reopening.
	if st.excluded == nil {
		st.excluded = make(map[radio.NodeID]bool)
	}
	if st.ctrl == nil {
		st.ctrl = fb.Ctrl
	}
	if st.ctrl == nil {
		return
	}
	st.excluded[fb.FailedRelay] = true
	st.backtracks--
	if st.backtracks < 0 {
		// Give up here too: propagate the feedback upstream.
		st.status = ctrlFailed
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpGiveUp, Op: st.ctrl.Op, UID: fb.UID,
			Src: fb.FailedRelay})
		if st.havePrev {
			up := &Feedback{UID: fb.UID, FailedRelay: e.node.ID(), Ctrl: st.ctrl}
			e.stats.FeedbackSends++
			_ = e.node.Send(&radio.Frame{
				Kind:    radio.FrameData,
				Dst:     st.prev,
				Size:    feedbackFrameSize(up),
				Payload: up,
			})
		} else if e.isSink {
			e.sinkUndeliverable(st.ctrl)
		}
		return
	}
	if e.bus.Wants(telemetry.LayerCore) {
		kind := telemetry.KindOpReopen
		if f.Dst != e.node.ID() {
			// The Figure 5(a) refinement: we overheard someone else's
			// feedback and are resuming forwarding ourselves.
			kind = telemetry.KindOpIntercept
		}
		e.emitOp(telemetry.Event{Kind: kind, Op: fb.Ctrl.Op, UID: fb.UID, Src: fb.FailedRelay})
	}
	// The expected-relay bar must be recomputed from our own vantage:
	// restart from our match.
	st.ctrl = &Control{
		UID:         fb.UID,
		Op:          fb.Ctrl.Op,
		Dst:         fb.Ctrl.Dst,
		DstCode:     fb.Ctrl.DstCode,
		ExpectedLen: 0,
		Detour:      fb.Ctrl.Detour,
		FinalDst:    fb.Ctrl.FinalDst,
		Hops:        fb.Ctrl.Hops,
		App:         fb.Ctrl.App,
		Batch:       fb.Ctrl.Batch,
	}
	st.status = ctrlForwarding
	st.attempts = e.cfg.RetryRounds + 1
	e.stats.Backtracks++
	e.forwardControl(st)
}

// gcCtrl bounds the per-UID state table.
func (e *Engine) gcCtrl() {
	if len(e.ctrl) < 512 {
		return
	}
	cutoff := e.eng.Now() - 2*e.cfg.ControlTimeout
	for uid, st := range e.ctrl {
		if st.at < cutoff && st.status != ctrlForwarding {
			delete(e.ctrl, uid)
		}
	}
}
