package core_test

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/experiment"
	"teleadjust/internal/radio"
	"teleadjust/internal/topology"
)

// ladder builds two parallel 4-hop chains with rungs, so every hop level
// has two candidate relays:
//
//	0 ─ 1 ─ 3 ─ 5 ─ 7
//	 \  │   │   │   │
//	  \ 2 ─ 4 ─ 6 ─ 8
func ladder() *topology.Deployment {
	return &topology.Deployment{
		Name: "ladder",
		Positions: []topology.Point{
			{X: 0, Y: 2.5},
			{X: 7, Y: 0}, {X: 7, Y: 5},
			{X: 14, Y: 0}, {X: 14, Y: 5},
			{X: 21, Y: 0}, {X: 21, Y: 5},
			{X: 28, Y: 0}, {X: 28, Y: 5},
		},
		Sink: 0,
	}
}

// TestFig8ATHXBoundedByPath: on a clean line the transmissions travelled
// by a delivered packet equal the path length (no duplicate inflation) —
// the Fig 8(a) property that TeleAdjusting's ATHX tracks the CTP hop
// count.
func TestFig8ATHXBoundedByPath(t *testing.T) {
	net := convergedLine(t, 5, 41, nil)
	for i := 1; i < 5; i++ {
		var gotHops uint8
		idx := i
		net.Tele(radio.NodeID(idx)).SetDeliveredFn(func(op uint32, hops uint8) { gotHops = hops })
		if _, err := net.SinkTele().SendControl(radio.NodeID(idx), "x", nil); err != nil {
			t.Fatal(err)
		}
		run(t, net, 20*time.Second)
		if gotHops == 0 {
			t.Fatalf("packet to node %d not delivered", idx)
		}
		if int(gotHops) > idx+1 {
			t.Fatalf("node %d (hop %d) received after %d transmissions — duplicate inflation",
				idx, idx, gotHops)
		}
	}
}

// TestBacktrackRecoversViaSibling: kill a mid-path relay after convergence
// on the ladder; the control packet must still arrive through the parallel
// chain (opportunistic relaying, backtracking, or rescue — Figures 4c/5).
func TestBacktrackRecoversViaSibling(t *testing.T) {
	net := buildTele(t, ladder(), 42, nil)
	run(t, net, 4*time.Minute)
	dst := radio.NodeID(7)
	if !net.SinkTele().KnowsCode(dst) {
		t.Skip("controller never learned node 7's code")
	}
	// Kill node 7's tree parent (one of 5/6); the other chain survives.
	parent := net.Stacks[dst].Ctp.Parent()
	if parent == 0 || int(parent) >= net.Dep.Len() {
		t.Skipf("unexpected parent %d", parent)
	}
	net.KillNode(parent)
	delivered := false
	net.Tele(radio.NodeID(dst)).SetDeliveredFn(func(op uint32, hops uint8) { delivered = true })
	var res core.Result
	got := false
	if _, err := net.SinkTele().SendControl(dst, "x", func(r core.Result) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	run(t, net, 90*time.Second)
	if !delivered {
		t.Fatalf("packet never reached node %d around dead relay %d (result=%+v got=%v, sink stats %+v)",
			dst, parent, res, got, net.SinkTele().Stats())
	}
}

// TestOpportunisticBeatStrictUnderFailure: with the same dead relay, the
// strict-path variant cannot recover (its encoded path is gone), while the
// opportunistic variant delivers — the core claim of Section III-C2.
func TestOpportunisticBeatsStrictUnderFailure(t *testing.T) {
	deliveredWith := func(opportunistic bool) bool {
		net := buildTele(t, ladder(), 43, func(cfg *experiment.Config) {
			cfg.Tele.Opportunistic = opportunistic
			cfg.Tele.Rescue = false
		})
		run(t, net, 4*time.Minute)
		dst := radio.NodeID(7)
		if !net.SinkTele().KnowsCode(dst) {
			t.Skip("controller never learned node 7's code")
		}
		parent := net.Stacks[dst].Ctp.Parent()
		if parent == 0 {
			t.Skip("node 7 parented directly to the sink")
		}
		net.KillNode(parent)
		delivered := false
		net.Tele(radio.NodeID(dst)).SetDeliveredFn(func(op uint32, hops uint8) { delivered = true })
		if _, err := net.SinkTele().SendControl(dst, "x", nil); err != nil {
			t.Fatal(err)
		}
		run(t, net, 90*time.Second)
		return delivered
	}
	if !deliveredWith(true) {
		t.Fatal("opportunistic variant failed to deliver around the dead relay")
	}
	// The strict variant is EXPECTED to fail here; if it happens to
	// deliver (the dead relay was not on the encoded path), that's not an
	// error, so only assert the opportunistic success above and record
	// the strict outcome.
	strictOK := deliveredWith(false)
	t.Logf("strict-path delivery around dead relay: %v", strictOK)
}

// TestDuplicateDeliveriesBounded: duplicate consumptions at the
// destination must stay a small fraction of deliveries.
func TestDuplicateDeliveriesBounded(t *testing.T) {
	net := convergedLine(t, 5, 44, nil)
	const packets = 10
	for p := 0; p < packets; p++ {
		dst := radio.NodeID(1 + p%4)
		if _, err := net.SinkTele().SendControl(dst, p, nil); err != nil {
			t.Fatal(err)
		}
		run(t, net, 15*time.Second)
	}
	var deliv, dup uint64
	for _, st := range net.Stacks {
		te := st.Ctrl.(*core.Engine)
		s := te.Stats()
		deliv += s.ControlDeliv
		dup += s.ControlDupDeliv
	}
	if deliv < packets-1 {
		t.Fatalf("delivered %d/%d", deliv, packets)
	}
	if dup > deliv {
		t.Fatalf("duplicates (%d) exceed deliveries (%d)", dup, deliv)
	}
}
