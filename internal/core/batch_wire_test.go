package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"teleadjust/internal/radio"
)

func randomBatch(seed uint64, n int) []BatchMember {
	if n <= 0 {
		n = 1
	}
	out := make([]BatchMember, n)
	for i := range out {
		out[i] = BatchMember{
			UID:    uint32(seed) + uint32(i),
			Op:     uint32(seed) + uint32(i),
			Dst:    radio.NodeID(5 + i),
			Suffix: randomCode(seed + uint64(i)).Suffix(1),
		}
		if i%2 == 0 {
			out[i].Payload = []byte{byte(i), byte(i + 1), byte(seed)}
		}
	}
	return out
}

func TestBatchControlWireRoundTrip(t *testing.T) {
	f := func(seed uint64, uid uint32, dst uint16, hops uint8, nn uint8) bool {
		c := &Control{
			UID:     uid,
			Op:      uid,
			Dst:     radio.NodeID(dst),
			DstCode: randomCode(seed),
			Hops:    hops,
			Batch:   randomBatch(seed, int(nn%7)+1),
		}
		got, err := UnmarshalControl(MarshalControl(c))
		if err != nil {
			return false
		}
		if got.UID != c.UID || got.Dst != c.Dst || !got.DstCode.Equal(c.DstCode) ||
			got.Hops != c.Hops || len(got.Batch) != len(c.Batch) {
			return false
		}
		for i := range c.Batch {
			g, w := got.Batch[i], c.Batch[i]
			if g.UID != w.UID || g.Op != w.Op || g.Dst != w.Dst ||
				!g.Suffix.Equal(w.Suffix) || !bytes.Equal(g.Payload, w.Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestUnbatchedControlBytesUnchanged pins the pre-batching encoding: a
// control packet without members must not set the batch flag or grow by a
// single byte, so existing traces stay byte-identical.
func TestUnbatchedControlBytesUnchanged(t *testing.T) {
	c := &Control{
		UID:         7,
		Op:          7,
		Dst:         3,
		DstCode:     MustCode("00101"),
		Expected:    2,
		ExpectedLen: 3,
		Hops:        1,
	}
	b := MarshalControl(c)
	// Layout: uid(4) op(4) dst(2) code(1+1) expected(2) expectedLen(1)
	// flags(1) finalDst(2) hops(1) — and nothing else.
	if len(b) != 19 {
		t.Fatalf("unbatched control encodes to %d bytes, want 19", len(b))
	}
	flags := b[15]
	if flags&ctrlFlagBatch != 0 {
		t.Fatal("unbatched control sets the batch flag")
	}
	// Adding then removing members must restore the exact original bytes.
	c.Batch = randomBatch(1, 3)
	if withBatch := MarshalControl(c); len(withBatch) <= len(b) {
		t.Fatal("batched encoding not larger than unbatched")
	}
	c.Batch = nil
	if !bytes.Equal(MarshalControl(c), b) {
		t.Fatal("unbatched re-encoding differs")
	}
}

func TestBatchControlWireMalformed(t *testing.T) {
	c := &Control{
		UID:     1,
		Op:      1,
		Dst:     2,
		DstCode: MustCode("001"),
		Batch:   randomBatch(9, 3),
	}
	b := MarshalControl(c)
	// Every truncation point must error, never panic or misparse.
	for cut := 0; cut < len(b); cut++ {
		if _, err := UnmarshalControl(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A batch flag with zero members is malformed.
	zero := make([]byte, len(b))
	copy(zero, b)
	zero[15] |= ctrlFlagBatch
	zero = zero[:19]          // cut away the member section
	zero = append(zero, 0x00) // member count zero
	if _, err := UnmarshalControl(zero); err == nil {
		t.Fatal("zero-member batch accepted")
	}
	// A member count pointing past the buffer is truncation, not a crash.
	over := make([]byte, len(b))
	copy(over, b)
	over[19] = 200 // claims 200 members
	if _, err := UnmarshalControl(over); err == nil {
		t.Fatal("overlong member count accepted")
	}
}

func TestMarshalControlBatchLimits(t *testing.T) {
	tooMany := &Control{DstCode: MustCode("0"), Batch: make([]BatchMember, MaxBatchMembers+1)}
	assertPanics(t, func() { MarshalControl(tooMany) }, "member overflow")
	fat := &Control{DstCode: MustCode("0"), Batch: []BatchMember{{Payload: make([]byte, 0x10000)}}}
	assertPanics(t, func() { MarshalControl(fat) }, "payload overflow")
}

func assertPanics(t *testing.T, fn func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestPathCodeSuffix(t *testing.T) {
	c := MustCode("0011010")
	cases := []struct {
		n    int
		want string
	}{
		{0, "0011010"},
		{2, "11010"},
		{6, "0"},
		{7, "ε"},
		{100, "ε"},
		{-1, "0011010"},
	}
	for _, tc := range cases {
		if got := c.Suffix(tc.n).String(); got != tc.want {
			t.Errorf("Suffix(%d) = %s, want %s", tc.n, got, tc.want)
		}
	}
	// Prefix+Suffix partition the code: Prefix(n)+Suffix(n) == c.
	f := func(seed uint64, cut uint8) bool {
		c := randomCode(seed)
		n := int(cut) % (c.Len() + 1)
		joined := c.Prefix(n)
		suf := c.Suffix(n)
		if suf.IsEmpty() {
			return joined.Equal(c)
		}
		j, err := joined.Append(suf)
		return err == nil && j.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
