package core

// Subtree-scoped dissemination: the one-to-many / one-to-all extension the
// paper claims for path coding (Section I). A scope is a code prefix; the
// packet floods exactly the code subtree under it. Ancestors of the scope
// relay it downward; members consume it and relay it on; everyone else
// ignores it. The addressing does all the work: no group state exists
// anywhere in the network.

import (
	"time"

	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

// ScopedControl floods App to every node whose path code extends Scope.
// An empty scope addresses the whole network (one-to-all).
type ScopedControl struct {
	UID   uint32
	Scope PathCode
	Hops  uint8
	App   any
}

// NoAck marks scoped floods as pure broadcasts for the MAC: every member
// must receive them, so there is no single acknowledger to elect.
func (*ScopedControl) NoAck() bool { return true }

// ScopeAck is a member's end-to-end acknowledgement (upward via CTP).
type ScopeAck struct {
	UID  uint32
	From radio.NodeID
}

// ScopeResult reports a scoped operation's outcome at the sink.
type ScopeResult struct {
	UID uint32
	// Expected is the number of registry codes within the scope when the
	// operation started (the controller's best knowledge of membership).
	Expected int
	// Acked lists the members whose acknowledgements arrived in time.
	Acked []radio.NodeID
}

// Coverage returns len(Acked)/Expected (1 when nothing was expected).
func (r ScopeResult) Coverage() float64 {
	if r.Expected == 0 {
		return 1
	}
	return float64(len(r.Acked)) / float64(r.Expected)
}

type pendingScope struct {
	scope   PathCode
	sentAt  time.Duration
	cb      func(ScopeResult)
	timeout sim.EventRef
	res     ScopeResult
	seen    map[radio.NodeID]bool
}

// scopeFrameSize computes the MAC frame size of a scoped control packet.
func scopeFrameSize(sc *ScopedControl) int {
	return macHeaderBytes + 5 + sc.Scope.SizeBytes()
}

// SendScopeControl floods app to the code subtree under scope. cb fires
// once, after ControlTimeout, with the collected member acknowledgements.
// Use the zero-value PathCode (or the sink's own code) for one-to-all.
func (e *Engine) SendScopeControl(scope PathCode, app any, cb func(ScopeResult)) (uint32, error) {
	if !e.isSink {
		return 0, ErrNotSink
	}
	e.uidSeq++
	uid := e.uidSeq
	p := &pendingScope{
		scope:  scope,
		sentAt: e.eng.Now(),
		cb:     cb,
		seen:   make(map[radio.NodeID]bool),
		res:    ScopeResult{UID: uid},
	}
	for id, info := range e.registry {
		if scope.IsPrefixOf(info.Code) {
			p.res.Expected++
		}
		_ = id
	}
	p.timeout = e.eng.Schedule(e.cfg.ControlTimeout, func() {
		delete(e.pendingScopes, uid)
		if p.cb != nil {
			p.cb(p.res)
		}
	})
	if e.pendingScopes == nil {
		e.pendingScopes = make(map[uint32]*pendingScope)
	}
	e.pendingScopes[uid] = p
	sc := &ScopedControl{UID: uid, Scope: scope, App: app}
	e.relayScope(sc)
	// Mid-timeout repair round: busy relays are deaf while streaming their
	// own traffic, so a one-shot flood can die at the first hop. Re-seed
	// the flood if coverage is still incomplete.
	e.eng.Schedule(e.cfg.ControlTimeout/2, func() {
		if pp, ok := e.pendingScopes[uid]; ok && (pp.res.Expected == 0 || len(pp.res.Acked) < pp.res.Expected) {
			e.relayScope(sc)
		}
	})
	return uid, nil
}

// scopeRole classifies this node against a scope.
type scopeRole uint8

const (
	scopeOutside  scopeRole = iota
	scopeMember             // my code extends the scope: consume and relay
	scopeAncestor           // my code is a prefix of the scope: relay toward it
)

func (e *Engine) scopeRoleOf(scope PathCode) scopeRole {
	if !e.haveCode {
		return scopeOutside
	}
	if scope.IsPrefixOf(e.myCode) {
		return scopeMember
	}
	if e.myCode.IsPrefixOf(scope) {
		return scopeAncestor
	}
	// Old code still valid? Members keep serving briefly across code
	// changes.
	if !e.myOldCode.IsEmpty() && e.eng.Now() < e.oldCodeUntil && scope.IsPrefixOf(e.myOldCode) {
		return scopeMember
	}
	return scopeOutside
}

// classifyScope accepts scoped floods for members and ancestors.
func (e *Engine) classifyScope(sc *ScopedControl) mac.Classification {
	if e.scopeRoleOf(sc.Scope) == scopeOutside {
		return mac.Classification{Decision: mac.Ignore}
	}
	return mac.Classification{Decision: mac.Deliver}
}

// deliverScope consumes (members) and re-floods (everyone in-role), once
// per UID.
func (e *Engine) deliverScope(sc *ScopedControl) {
	if e.scopeSeen == nil {
		e.scopeSeen = make(map[uint32]time.Duration)
	}
	if _, dup := e.scopeSeen[sc.UID]; dup {
		return
	}
	e.scopeSeen[sc.UID] = e.eng.Now()
	e.gcScopeSeen()
	role := e.scopeRoleOf(sc.Scope)
	if role == scopeOutside {
		return
	}
	if role == scopeMember && !e.isSink {
		e.stats.ControlDeliv++
		if e.deliverFn != nil {
			e.deliverFn(sc.UID, sc.Hops)
		}
		_ = e.ctp.SendToSink(&ScopeAck{UID: sc.UID, From: e.node.ID()})
	}
	e.relayScope(sc)
}

// relayScope re-broadcasts the flood one hop deeper: one copy now and one
// echo a moment later, so neighbors that were transmitting (deaf) during
// the first stream still catch the flood.
func (e *Engine) relayScope(sc *ScopedControl) {
	e.sendScopeCopy(sc)
	echo := time.Second + time.Duration(e.rng.Int64N(int64(2*time.Second)))
	e.eng.Schedule(echo, func() { e.sendScopeCopy(sc) })
}

func (e *Engine) sendScopeCopy(sc *ScopedControl) {
	fwd := &ScopedControl{UID: sc.UID, Scope: sc.Scope, Hops: sc.Hops + 1, App: sc.App}
	e.stats.ControlSends++
	e.stats.HeaderBytes += uint64(sc.Scope.SizeBytes())
	_ = e.node.Send(&radio.Frame{
		Kind:    radio.FrameData,
		Dst:     radio.BroadcastID,
		Size:    scopeFrameSize(fwd),
		Payload: fwd,
	})
}

// resolveScopeAck records a member acknowledgement at the sink.
func (e *Engine) resolveScopeAck(ack *ScopeAck) {
	p, ok := e.pendingScopes[ack.UID]
	if !ok || p.seen[ack.From] {
		return
	}
	p.seen[ack.From] = true
	p.res.Acked = append(p.res.Acked, ack.From)
	if p.res.Expected > 0 && len(p.res.Acked) >= p.res.Expected {
		// Full coverage: resolve early.
		p.timeout.Cancel()
		delete(e.pendingScopes, ack.UID)
		if p.cb != nil {
			p.cb(p.res)
		}
	}
}

func (e *Engine) gcScopeSeen() {
	if len(e.scopeSeen) < 256 {
		return
	}
	cutoff := e.eng.Now() - 2*e.cfg.ControlTimeout
	for uid, at := range e.scopeSeen {
		if at < cutoff {
			delete(e.scopeSeen, uid)
		}
	}
}
