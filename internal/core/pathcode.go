// Package core implements TeleAdjusting, the paper's contribution: a
// prefix-code addressing scheme built on the collection tree (every node's
// path code extends its parent's code) plus an opportunistic downward
// forwarding engine that delivers control packets from the sink to any
// individual node along — and around — the encoded path.
package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxCodeBits bounds a path code's length. The paper measures ≤ 40 bits in
// a 225-node tight grid and larger codes in sparse topologies; 255 bits is
// far beyond any practical deployment depth.
const MaxCodeBits = 255

// PathCode is a variable-length big-endian bit string. The zero value is
// the empty code. PathCode values are immutable once built; mutating
// operations return new codes.
type PathCode struct {
	bits []byte
	n    int // valid bits
}

// EmptyCode is the zero-length path code.
var EmptyCode = PathCode{}

// RootCode returns the sink's code: a single 0 bit ("path code length is
// 1" in the paper).
func RootCode() PathCode {
	return PathCode{bits: []byte{0}, n: 1}
}

// CodeFromBits builds a code from a string of '0'/'1' runes (test helper
// and debugging).
func CodeFromBits(s string) (PathCode, error) {
	if len(s) > MaxCodeBits {
		return PathCode{}, fmt.Errorf("core: code %q exceeds %d bits", s, MaxCodeBits)
	}
	c := PathCode{bits: make([]byte, (len(s)+7)/8), n: len(s)}
	for i, r := range s {
		switch r {
		case '1':
			c.bits[i/8] |= 1 << (7 - i%8)
		case '0':
		default:
			return PathCode{}, fmt.Errorf("core: invalid bit %q in %q", r, s)
		}
	}
	return c, nil
}

// MustCode is CodeFromBits that panics on error. It exists for tests and
// package-level constants only; production call sites must use
// CodeFromBits (or the structured builders Extend/Append/codeFromValue)
// and propagate the error.
func MustCode(s string) PathCode {
	c, err := CodeFromBits(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of valid bits.
func (c PathCode) Len() int { return c.n }

// IsEmpty reports whether the code has no valid bits.
func (c PathCode) IsEmpty() bool { return c.n == 0 }

// Bit returns bit i (0-indexed from the front).
func (c PathCode) Bit(i int) int {
	if i < 0 || i >= c.n {
		return 0
	}
	return int(c.bits[i/8]>>(7-i%8)) & 1
}

// Extend returns c followed by the width-bit big-endian encoding of
// position. It errors when position does not fit in width bits or the
// result would exceed MaxCodeBits.
func (c PathCode) Extend(position uint16, width int) (PathCode, error) {
	if width <= 0 || width > 16 {
		return PathCode{}, fmt.Errorf("core: invalid position width %d", width)
	}
	if int(position) >= 1<<width {
		return PathCode{}, fmt.Errorf("core: position %d does not fit in %d bits", position, width)
	}
	if c.n+width > MaxCodeBits {
		return PathCode{}, fmt.Errorf("core: extending %d-bit code by %d exceeds limit", c.n, width)
	}
	out := PathCode{bits: make([]byte, (c.n+width+7)/8), n: c.n + width}
	copy(out.bits, c.bits)
	for i := 0; i < width; i++ {
		bit := int(position>>(width-1-i)) & 1
		if bit == 1 {
			pos := c.n + i
			out.bits[pos/8] |= 1 << (7 - pos%8)
		}
	}
	return out, nil
}

// Append returns c followed by all of label's bits. It is the
// variable-length counterpart of Extend: codecs that assign explicit bit
// labels (rather than fixed-width positions) build a child's code as
// parentCode.Append(label). An empty label is an error — a child's code
// must strictly extend its parent's.
func (c PathCode) Append(label PathCode) (PathCode, error) {
	if label.n == 0 {
		return PathCode{}, fmt.Errorf("core: appending empty label")
	}
	if c.n+label.n > MaxCodeBits {
		return PathCode{}, fmt.Errorf("core: appending %d-bit label to %d-bit code exceeds limit", label.n, c.n)
	}
	out := PathCode{bits: make([]byte, (c.n+label.n+7)/8), n: c.n + label.n}
	copy(out.bits, c.bits)
	if rem := c.n % 8; rem != 0 {
		out.bits[c.n/8] &= 0xFF << (8 - rem) // clear any stale tail bits
	}
	for i := 0; i < label.n; i++ {
		if label.Bit(i) == 1 {
			pos := c.n + i
			out.bits[pos/8] |= 1 << (7 - pos%8)
		}
	}
	return out, nil
}

// IsPrefixOf reports whether c's valid bits are a prefix of other's. The
// empty code is a prefix of everything; a code is a prefix of itself.
func (c PathCode) IsPrefixOf(other PathCode) bool {
	if c.n > other.n {
		return false
	}
	full := c.n / 8
	for i := 0; i < full; i++ {
		if c.bits[i] != other.bits[i] {
			return false
		}
	}
	if rem := c.n % 8; rem != 0 {
		mask := byte(0xFF << (8 - rem))
		if c.bits[full]&mask != other.bits[full]&mask {
			return false
		}
	}
	return true
}

// Equal reports bitwise equality including length.
func (c PathCode) Equal(other PathCode) bool {
	return c.n == other.n && c.IsPrefixOf(other)
}

// CommonPrefixLen returns the length of the longest common prefix. It
// compares whole bytes and locates the first differing bit with a
// leading-zeros count, so deep codes cost a few XORs instead of a
// per-bit loop.
func (c PathCode) CommonPrefixLen(other PathCode) int {
	n := c.n
	if other.n < n {
		n = other.n
	}
	full := n / 8
	for i := 0; i < full; i++ {
		if x := c.bits[i] ^ other.bits[i]; x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	if rem := n % 8; rem != 0 {
		mask := byte(0xFF << (8 - rem))
		if x := (c.bits[full] ^ other.bits[full]) & mask; x != 0 {
			return full*8 + bits.LeadingZeros8(x)
		}
	}
	return n
}

// Prefix returns the first n bits of c as a new code.
func (c PathCode) Prefix(n int) PathCode {
	if n >= c.n {
		return c
	}
	if n <= 0 {
		return PathCode{}
	}
	out := PathCode{bits: make([]byte, (n+7)/8), n: n}
	copy(out.bits, c.bits[:len(out.bits)])
	if rem := n % 8; rem != 0 {
		out.bits[len(out.bits)-1] &= 0xFF << (8 - rem)
	}
	return out
}

// Suffix returns the bits of c from position n onward as a new code (the
// counterpart of Prefix). Suffix(0) is c itself; n >= Len yields the
// empty code. Batch carriers ship member codes as suffixes relative to
// the carrier destination's code, so the shared prefix rides the wire
// once.
func (c PathCode) Suffix(n int) PathCode {
	if n <= 0 {
		return c
	}
	if n >= c.n {
		return PathCode{}
	}
	out := PathCode{bits: make([]byte, (c.n-n+7)/8), n: c.n - n}
	for i := 0; i < out.n; i++ {
		if c.Bit(n+i) == 1 {
			out.bits[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}

// SizeBytes returns the wire size of the code (length byte + bit payload).
func (c PathCode) SizeBytes() int { return 1 + (c.n+7)/8 }

// String renders the code as a bit string, e.g. "00101".
func (c PathCode) String() string {
	if c.n == 0 {
		return "ε"
	}
	var b strings.Builder
	b.Grow(c.n)
	for i := 0; i < c.n; i++ {
		if c.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
