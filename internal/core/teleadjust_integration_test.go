package core_test

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/experiment"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/topology"
)

// buildTele assembles a quiet-noise TeleAdjusting network.
func buildTele(t *testing.T, dep *topology.Deployment, seed uint64, mutate func(*experiment.Config)) *experiment.Net {
	t.Helper()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	cfg := experiment.Config{
		Dep:      dep,
		Radio:    params,
		Mac:      mac.DefaultConfig(),
		Ctp:      ctp.DefaultConfig(),
		Tele:     core.DefaultConfig(),
		Protocol: experiment.ProtoTeleAdjust,
		Seed:     seed,
	}
	// Faster experiments: shorter allocation delay and report interval.
	cfg.Tele.AllocDelay = 3 * 512 * time.Millisecond
	cfg.Tele.ReportInterval = 20 * time.Second
	cfg.Tele.ControlTimeout = 20 * time.Second
	if mutate != nil {
		mutate(&cfg)
	}
	net, err := experiment.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	return net
}

func run(t *testing.T, net *experiment.Net, d time.Duration) {
	t.Helper()
	if err := net.Run(d); err != nil {
		t.Fatal(err)
	}
}

func TestCodesConvergeOnLine(t *testing.T) {
	dep := topology.Line(5, 7)
	net := buildTele(t, dep, 1, nil)
	run(t, net, 3*time.Minute)
	// Every node must hold a code whose parent's code is a strict prefix.
	for i := 1; i < 5; i++ {
		code, ok := net.Tele(radio.NodeID(i)).Code()
		if !ok {
			t.Fatalf("node %d has no code after 3 min", i)
		}
		parent := net.Stacks[i].Ctp.Parent()
		pcode, pok := net.Tele(radio.NodeID(parent)).Code()
		if !pok {
			t.Fatalf("parent %d of node %d has no code", parent, i)
		}
		if !pcode.IsPrefixOf(code) || pcode.Len() >= code.Len() {
			t.Fatalf("parent code %v not strict prefix of %v", pcode, code)
		}
	}
	// Codes must be unique.
	seen := map[string]int{}
	for i := 0; i < 5; i++ {
		c, _ := net.Tele(radio.NodeID(i)).Code()
		if prev, dup := seen[c.String()]; dup {
			t.Fatalf("nodes %d and %d share code %v", prev, i, c)
		}
		seen[c.String()] = i
	}
	// Depth on a strict line equals the hop index.
	for i := 1; i < 5; i++ {
		if net.Tele(radio.NodeID(i)).Depth() != uint8(i) {
			t.Errorf("node %d depth = %d, want %d", i, net.Tele(radio.NodeID(i)).Depth(), i)
		}
	}
}

func TestControllerLearnsCodes(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildTele(t, dep, 2, nil)
	run(t, net, 3*time.Minute)
	reg := net.SinkTele().Registry()
	for i := 1; i < 4; i++ {
		info, ok := reg[radio.NodeID(i)]
		if !ok {
			t.Fatalf("controller has no code for node %d", i)
		}
		code, _ := net.Tele(radio.NodeID(i)).Code()
		if !info.Code.Equal(code) {
			t.Fatalf("controller code %v != node code %v", info.Code, code)
		}
	}
}

func TestRemoteControlEndToEnd(t *testing.T) {
	dep := topology.Line(5, 7)
	net := buildTele(t, dep, 3, nil)
	run(t, net, 3*time.Minute)
	var results []core.Result
	delivered := map[uint32]bool{}
	for i := 1; i < 5; i++ {
		i := i
		net.Tele(radio.NodeID(i)).SetDeliveredFn(func(uid uint32, hops uint8) { delivered[uid] = true })
	}
	for i := 1; i < 5; i++ {
		uid, err := net.SinkTele().SendControl(radio.NodeID(i), "set-param", func(r core.Result) {
			results = append(results, r)
		})
		if err != nil {
			t.Fatalf("SendControl to %d: %v", i, err)
		}
		_ = uid
		run(t, net, 30*time.Second)
	}
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Fatalf("control to %d failed: %+v", r.Dst, r)
		}
		if r.Latency <= 0 {
			t.Fatalf("non-positive latency: %+v", r)
		}
	}
	if len(delivered) != 4 {
		t.Fatalf("destinations delivered %d packets, want 4", len(delivered))
	}
}

func TestControlToUnknownNodeErrors(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildTele(t, dep, 4, nil)
	// No convergence time: registry is empty.
	if _, err := net.SinkTele().SendControl(2, "x", nil); err == nil {
		t.Fatal("SendControl without registry entry must error")
	}
	if _, err := net.SinkTele().SendControl(net.Sink, "x", nil); err == nil {
		t.Fatal("SendControl to self must error")
	}
	if _, err := net.Tele(radio.NodeID(1)).SendControl(2, "x", nil); err == nil {
		t.Fatal("SendControl from non-sink must error")
	}
}

func TestControlToDeadNodeFailsOrRescues(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildTele(t, dep, 5, nil)
	run(t, net, 3*time.Minute)
	// Kill node 3 (the last one): no rescue neighbor can help because its
	// radio is off entirely.
	net.KillNode(3)
	done := make(chan struct{}, 1)
	var res core.Result
	if _, err := net.SinkTele().SendControl(3, "x", func(r core.Result) {
		res = r
		done <- struct{}{}
	}); err != nil {
		t.Fatal(err)
	}
	run(t, net, 2*time.Minute)
	select {
	case <-done:
	default:
		t.Fatal("no result for control to dead node")
	}
	if res.OK {
		t.Fatal("control to powered-off node reported success")
	}
}

func TestRescuePathDeliversAroundDeadParent(t *testing.T) {
	// Diamond: sink 0 at origin; nodes 1 and 2 both reach 0 and 3.
	dep := &topology.Deployment{
		Name: "diamond",
		Positions: []topology.Point{
			{X: 0, Y: 0},
			{X: 6, Y: 3},
			{X: 6, Y: -3},
			{X: 12, Y: 0},
		},
		Sink: 0,
	}
	net := buildTele(t, dep, 6, nil)
	run(t, net, 3*time.Minute)
	if _, ok := net.SinkTele().Registry()[3]; !ok {
		t.Skip("node 3 not registered; topology did not converge as expected")
	}
	// Node 3's tree parent is 1 or 2; kill it so the encoded path breaks,
	// then expect delivery anyway (opportunistic or rescue).
	parent := net.Stacks[3].Ctp.Parent()
	if parent != 1 && parent != 2 {
		t.Skipf("node 3's parent is %d; want 1 or 2", parent)
	}
	net.KillNode(parent)
	deliveredAt := time.Duration(0)
	net.Tele(radio.NodeID(3)).SetDeliveredFn(func(uid uint32, hops uint8) { deliveredAt = net.Eng.Now() })
	var res core.Result
	got := false
	if _, err := net.SinkTele().SendControl(3, "fix", func(r core.Result) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	run(t, net, 2*time.Minute)
	if !got {
		t.Fatal("no result")
	}
	if !res.OK {
		t.Fatalf("control around dead parent failed: %+v (stats %+v)", res, net.SinkTele().Stats())
	}
	if deliveredAt == 0 {
		t.Fatal("destination never saw the packet")
	}
}

func TestStrictModeStillDelivers(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildTele(t, dep, 7, func(cfg *experiment.Config) {
		cfg.Tele.Opportunistic = false
	})
	run(t, net, 3*time.Minute)
	var res core.Result
	got := false
	if _, err := net.SinkTele().SendControl(3, "x", func(r core.Result) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	run(t, net, time.Minute)
	if !got || !res.OK {
		t.Fatalf("strict-mode delivery failed: got=%v res=%+v", got, res)
	}
}

func TestTransmissionCountReasonable(t *testing.T) {
	// On an n-hop line, a delivered control packet should take roughly n
	// logical transmissions (the Table III property that TeleAdjusting is
	// near the hop count, far from flooding).
	dep := topology.Line(4, 7)
	net := buildTele(t, dep, 8, nil)
	run(t, net, 3*time.Minute)
	before := uint64(0)
	for _, st := range net.Stacks {
		te := st.Ctrl.(*core.Engine)
		before += te.Stats().ControlSends
	}
	const packets = 5
	okCount := 0
	for p := 0; p < packets; p++ {
		if _, err := net.SinkTele().SendControl(3, p, func(r core.Result) {
			if r.OK {
				okCount++
			}
		}); err != nil {
			t.Fatal(err)
		}
		run(t, net, 25*time.Second)
	}
	after := uint64(0)
	for _, st := range net.Stacks {
		te := st.Ctrl.(*core.Engine)
		after += te.Stats().ControlSends
	}
	if okCount < packets-1 {
		t.Fatalf("only %d/%d delivered", okCount, packets)
	}
	perPacket := float64(after-before) / packets
	if perPacket < 2 || perPacket > 8 {
		t.Fatalf("%.1f transmissions per 3-hop control packet, want ~3-6", perPacket)
	}
}

func TestATHXRecorded(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildTele(t, dep, 9, nil)
	run(t, net, 3*time.Minute)
	if _, err := net.SinkTele().SendControl(2, "x", nil); err != nil {
		t.Fatal(err)
	}
	run(t, net, 30*time.Second)
	samples := 0
	for i := 1; i < 3; i++ {
		samples += len(net.Tele(radio.NodeID(i)).ATHX())
	}
	if samples == 0 {
		t.Fatal("no ATHX samples recorded")
	}
}

func TestCodeCoverageHelper(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildTele(t, dep, 10, nil)
	if c := net.CodeCoverage(); c != 0 {
		t.Fatalf("initial code coverage = %v", c)
	}
	run(t, net, 3*time.Minute)
	if c := net.CodeCoverage(); c != 1 {
		t.Fatalf("code coverage after convergence = %v, want 1", c)
	}
}

func TestSendControlMulti(t *testing.T) {
	dep := topology.Line(5, 7)
	net := buildTele(t, dep, 11, nil)
	run(t, net, 3*time.Minute)
	var res core.MultiResult
	got := false
	err := net.SinkTele().SendControlMulti([]radio.NodeID{1, 2, 3}, "batch", func(r core.MultiResult) {
		res = r
		got = true
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, net, time.Minute)
	if !got {
		t.Fatal("multi-control callback never fired")
	}
	if res.OKCount != 3 {
		t.Fatalf("OKCount = %d, want 3 (%+v)", res.OKCount, res.Results)
	}
	for _, id := range []radio.NodeID{1, 2, 3} {
		if r, ok := res.Results[id]; !ok || !r.OK {
			t.Fatalf("destination %d result %+v", id, r)
		}
	}
}

func TestSendControlMultiUnknownDest(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildTele(t, dep, 12, nil)
	// No convergence: every destination is unknown, the callback must
	// still fire with all failures.
	var res core.MultiResult
	got := false
	err := net.SinkTele().SendControlMulti([]radio.NodeID{1, 2}, "x", func(r core.MultiResult) {
		res = r
		got = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("callback must fire synchronously when all destinations fail fast")
	}
	if res.OKCount != 0 || len(res.Results) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if err := net.SinkTele().SendControlMulti(nil, "x", nil); err == nil {
		t.Fatal("empty destination set accepted")
	}
	if err := net.Tele(radio.NodeID(1)).SendControlMulti([]radio.NodeID{2}, "x", nil); err == nil {
		t.Fatal("non-sink multi-control accepted")
	}
}

// TestLiveSpaceExtension forces Section III-B6's space extension in a
// running network: with the tight reserve policy, node 1 sizes its bit
// space exactly for its initial child; when node 3's original parent dies
// and it re-attaches under node 1, the space is full and must extend —
// and every code must stay unique and consistent.
func TestLiveSpaceExtension(t *testing.T) {
	dep := &topology.Deployment{
		Name: "ext",
		Positions: []topology.Point{
			{X: 0, Y: 0},      // 0 sink
			{X: 7, Y: 2},      // 1
			{X: 7, Y: -2},     // 2
			{X: 13, Y: 7},     // 3: node 1's initial child (out of node 2's range)
			{X: 7.5, Y: -7.5}, // 4: strongly under node 2; node 1 reachable but marginal
		},
		Sink: 0,
	}
	net := buildTele(t, dep, 61, func(cfg *experiment.Config) {
		cfg.Tele.Reserve = core.TightReserve
	})
	run(t, net, 3*time.Minute)
	if p := net.Stacks[4].Ctp.Parent(); p != 2 {
		t.Skipf("node 4 parented under %d, want 2", p)
	}
	if p := net.Stacks[3].Ctp.Parent(); p != 1 {
		t.Skipf("node 3 parented under %d, want 1", p)
	}
	if net.Tele(radio.NodeID(1)).SpaceBits() != 1 {
		t.Skipf("node 1 space = %d bits, want the tight 1-bit space", net.Tele(radio.NodeID(1)).SpaceBits())
	}
	// Kill node 2: node 4 re-attaches under node 1, whose 1-bit space is
	// already full with node 3 — it must extend.
	net.KillNode(2)
	run(t, net, 4*time.Minute)
	if p := net.Stacks[4].Ctp.Parent(); p != 1 {
		t.Skipf("node 4 re-parented under %d, want 1", p)
	}
	if net.Tele(radio.NodeID(1)).Stats().SpaceExtensions == 0 {
		t.Fatal("no space extension despite a full tight space and a new child")
	}
	if net.Tele(radio.NodeID(1)).SpaceBits() < 2 {
		t.Fatalf("space = %d bits after extension", net.Tele(radio.NodeID(1)).SpaceBits())
	}
	c1, _ := net.Tele(radio.NodeID(1)).Code()
	c3, ok3 := net.Tele(radio.NodeID(3)).Code()
	c4, ok4 := net.Tele(radio.NodeID(4)).Code()
	if !ok3 || !ok4 {
		t.Fatal("children lost their codes across the extension")
	}
	if !c1.IsPrefixOf(c3) || !c1.IsPrefixOf(c4) {
		t.Fatalf("children codes %v, %v do not extend parent %v", c3, c4, c1)
	}
	if c3.Equal(c4) {
		t.Fatalf("children share code %v", c3)
	}
}

// TestCodeChangePropagates// TestCodeChangePropagatesToSubtree: when a mid-chain node switches
// parents, its own code changes AND its child's code must follow (the
// iterative update of Section III-B6).
func TestCodeChangePropagatesToSubtree(t *testing.T) {
	// 0 - 1 - 3 - 4 with an alternative relay 2 beside 1.
	dep := &topology.Deployment{
		Name: "switch",
		Positions: []topology.Point{
			{X: 0, Y: 0},
			{X: 7, Y: 2},  // 1
			{X: 7, Y: -2}, // 2 alternative
			{X: 13, Y: 0}, // 3 (hears 1 and 2)
			{X: 20, Y: 0}, // 4 child of 3
		},
		Sink: 0,
	}
	net := buildTele(t, dep, 62, nil)
	run(t, net, 3*time.Minute)
	c3, ok3 := net.Tele(radio.NodeID(3)).Code()
	c4, ok4 := net.Tele(radio.NodeID(4)).Code()
	if !ok3 || !ok4 {
		t.Skip("codes did not converge")
	}
	if !c3.IsPrefixOf(c4) {
		t.Skipf("node 4 not under node 3 (codes %v, %v)", c3, c4)
	}
	// Kill node 3's current parent: it must re-attach via the other
	// relay, obtain a new code, and node 4's code must follow.
	oldParent := net.Stacks[3].Ctp.Parent()
	if oldParent != 1 && oldParent != 2 {
		t.Skipf("node 3's parent is %d", oldParent)
	}
	net.KillNode(oldParent)
	run(t, net, 4*time.Minute)
	n3, ok3b := net.Tele(radio.NodeID(3)).Code()
	n4, ok4b := net.Tele(radio.NodeID(4)).Code()
	if !ok3b || !ok4b {
		t.Fatal("codes lost after parent switch")
	}
	if n3.Equal(c3) {
		t.Fatalf("node 3's code %v unchanged after its parent died", n3)
	}
	if !n3.IsPrefixOf(n4) {
		t.Fatalf("child code %v does not extend the NEW parent code %v", n4, n3)
	}
}
