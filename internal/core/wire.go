package core

// Wire encoding for TeleAdjusting messages. The simulator passes Go values
// in memory, but frame airtimes and the paper's RAM/ROM budget depend on
// real on-air sizes, so every message has a binary encoding and the
// simulator charges the encoded length. The format is little-endian with
// length-prefixed path codes:
//
//	PathCode    := bitLen:u8 bytes:[ceil(bitLen/8)]u8
//	TeleExt     := flags:u8 [code:PathCode] depth:u8 space:u8
//	               parent:u16 position:u16 nAlloc:u8
//	               nAlloc × (child:u16 position:u16 flags:u8 [label:PathCode])
//
// The per-allocation label is present only when the top-level labels flag
// is set (variable-length codecs announce explicit bit labels); the paper
// codec never sets it, so its encoding is byte-identical to the original
// fixed-width format.
//	Control     := uid:u32 op:u32 dst:u16 code:PathCode expected:u16
//	               expectedLen:u8 flags:u8 finalDst:u16 hops:u8
//	               [n:u8 n × (uid:u32 op:u32 dst:u16 suffix:PathCode
//	               payloadLen:u16 payload:[payloadLen]u8)]
//
// The batch member section is present only when the batch flag is set
// (cross-op piggyback carriers); unbatched control packets keep their
// original byte-identical encoding.
//	Feedback    := uid:u32 failedRelay:u16 ctrl:Control
//	CodeReport  := code:PathCode depth:u8
//	E2EAck      := uid:u32 from:u16 hops:u8

import (
	"encoding/binary"
	"errors"
	"fmt"

	"teleadjust/internal/radio"
)

// ErrTruncated reports a wire buffer too short for the declared contents.
var ErrTruncated = errors.New("core: truncated wire message")

// AppendCode appends the wire form of a path code.
func AppendCode(b []byte, c PathCode) []byte {
	b = append(b, byte(c.n))
	nbytes := (c.n + 7) / 8
	for i := 0; i < nbytes; i++ {
		if i < len(c.bits) {
			b = append(b, c.bits[i])
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeCode parses a path code, returning it and the remaining buffer.
func DecodeCode(b []byte) (PathCode, []byte, error) {
	if len(b) < 1 {
		return PathCode{}, nil, ErrTruncated
	}
	n := int(b[0])
	nbytes := (n + 7) / 8
	if len(b) < 1+nbytes {
		return PathCode{}, nil, ErrTruncated
	}
	c := PathCode{n: n}
	if nbytes > 0 {
		c.bits = make([]byte, nbytes)
		copy(c.bits, b[1:1+nbytes])
		// Mask tail bits so equality semantics hold regardless of sender
		// padding.
		if rem := n % 8; rem != 0 {
			c.bits[nbytes-1] &= 0xFF << (8 - rem)
		}
	}
	return c, b[1+nbytes:], nil
}

const (
	extFlagHasCode = 1 << 0
	extFlagLabels  = 1 << 1

	ctrlFlagDetour   = 1 << 0
	ctrlFlagFinalLeg = 1 << 1
	// ctrlFlagBatch marks a piggyback carrier: a batch member section
	// follows the fixed control tail. Unbatched packets never set it, so
	// their encodings are byte-identical to the pre-batching format.
	ctrlFlagBatch = 1 << 2
)

// MaxBatchMembers bounds the member count of one batch carrier (the wire
// count field is one byte).
const MaxBatchMembers = 255

// MarshalExt encodes the beacon extension.
func MarshalExt(e *TeleExt) []byte {
	b := make([]byte, 0, 8+e.Code.SizeBytes()+5*len(e.Allocations))
	var flags byte
	if e.HasCode {
		flags |= extFlagHasCode
	}
	// Explicit labels go on the air only when some allocation carries one;
	// the paper codec's allocations never do, keeping its bytes unchanged.
	labels := false
	for _, a := range e.Allocations {
		if !a.Label.IsEmpty() {
			labels = true
			break
		}
	}
	if labels {
		flags |= extFlagLabels
	}
	b = append(b, flags)
	if e.HasCode {
		b = AppendCode(b, e.Code)
	}
	b = append(b, e.Depth, e.SpaceBits)
	b = binary.LittleEndian.AppendUint16(b, uint16(e.Parent))
	b = binary.LittleEndian.AppendUint16(b, e.Position)
	if len(e.Allocations) > 255 {
		panic("core: too many allocations for wire format")
	}
	b = append(b, byte(len(e.Allocations)))
	for _, a := range e.Allocations {
		b = binary.LittleEndian.AppendUint16(b, uint16(a.Child))
		b = binary.LittleEndian.AppendUint16(b, a.Position)
		var f byte
		if a.Confirmed {
			f = 1
		}
		b = append(b, f)
		if labels {
			b = AppendCode(b, a.Label)
		}
	}
	return b
}

// UnmarshalExt decodes a beacon extension.
func UnmarshalExt(b []byte) (*TeleExt, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	e := &TeleExt{}
	flags := b[0]
	b = b[1:]
	if flags&extFlagHasCode != 0 {
		var err error
		e.HasCode = true
		e.Code, b, err = DecodeCode(b)
		if err != nil {
			return nil, err
		}
	}
	if len(b) < 7 {
		return nil, ErrTruncated
	}
	e.Depth = b[0]
	e.SpaceBits = b[1]
	e.Parent = radio.NodeID(binary.LittleEndian.Uint16(b[2:]))
	e.Position = binary.LittleEndian.Uint16(b[4:])
	n := int(b[6])
	b = b[7:]
	labels := flags&extFlagLabels != 0
	for i := 0; i < n; i++ {
		if len(b) < 5 {
			return nil, ErrTruncated
		}
		a := ChildEntry{
			Child:     radio.NodeID(binary.LittleEndian.Uint16(b)),
			Position:  binary.LittleEndian.Uint16(b[2:]),
			Confirmed: b[4] != 0,
		}
		b = b[5:]
		if labels {
			var err error
			a.Label, b, err = DecodeCode(b)
			if err != nil {
				return nil, err
			}
		}
		e.Allocations = append(e.Allocations, a)
	}
	return e, nil
}

// MarshalControl encodes a control packet.
func MarshalControl(c *Control) []byte {
	b := make([]byte, 0, 18+c.DstCode.SizeBytes())
	b = binary.LittleEndian.AppendUint32(b, c.UID)
	b = binary.LittleEndian.AppendUint32(b, c.Op)
	b = binary.LittleEndian.AppendUint16(b, uint16(c.Dst))
	b = AppendCode(b, c.DstCode)
	b = binary.LittleEndian.AppendUint16(b, uint16(c.Expected))
	b = append(b, c.ExpectedLen)
	var flags byte
	if c.Detour {
		flags |= ctrlFlagDetour
	}
	if c.FinalLeg {
		flags |= ctrlFlagFinalLeg
	}
	if len(c.Batch) > 0 {
		flags |= ctrlFlagBatch
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(c.FinalDst))
	b = append(b, c.Hops)
	if len(c.Batch) > 0 {
		if len(c.Batch) > MaxBatchMembers {
			panic("core: too many batch members for wire format")
		}
		b = append(b, byte(len(c.Batch)))
		for i := range c.Batch {
			m := &c.Batch[i]
			b = binary.LittleEndian.AppendUint32(b, m.UID)
			b = binary.LittleEndian.AppendUint32(b, m.Op)
			b = binary.LittleEndian.AppendUint16(b, uint16(m.Dst))
			b = AppendCode(b, m.Suffix)
			if len(m.Payload) > 0xFFFF {
				panic("core: batch member payload exceeds wire format")
			}
			b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Payload)))
			b = append(b, m.Payload...)
		}
	}
	return b
}

// UnmarshalControl decodes a control packet (the App payload is carried
// out of band in the simulator).
func UnmarshalControl(b []byte) (*Control, error) {
	if len(b) < 10 {
		return nil, ErrTruncated
	}
	c := &Control{
		UID: binary.LittleEndian.Uint32(b),
		Op:  binary.LittleEndian.Uint32(b[4:]),
		Dst: radio.NodeID(binary.LittleEndian.Uint16(b[8:])),
	}
	var err error
	c.DstCode, b, err = DecodeCode(b[10:])
	if err != nil {
		return nil, err
	}
	if len(b) < 7 {
		return nil, ErrTruncated
	}
	c.Expected = radio.NodeID(binary.LittleEndian.Uint16(b))
	c.ExpectedLen = b[2]
	c.Detour = b[3]&ctrlFlagDetour != 0
	c.FinalLeg = b[3]&ctrlFlagFinalLeg != 0
	batched := b[3]&ctrlFlagBatch != 0
	c.FinalDst = radio.NodeID(binary.LittleEndian.Uint16(b[4:]))
	c.Hops = b[6]
	b = b[7:]
	if batched {
		if len(b) < 1 {
			return nil, ErrTruncated
		}
		n := int(b[0])
		b = b[1:]
		if n == 0 {
			return nil, fmt.Errorf("core: batch carrier with no members")
		}
		c.Batch = make([]BatchMember, 0, n)
		for i := 0; i < n; i++ {
			if len(b) < 10 {
				return nil, ErrTruncated
			}
			m := BatchMember{
				UID: binary.LittleEndian.Uint32(b),
				Op:  binary.LittleEndian.Uint32(b[4:]),
				Dst: radio.NodeID(binary.LittleEndian.Uint16(b[8:])),
			}
			var err error
			m.Suffix, b, err = DecodeCode(b[10:])
			if err != nil {
				return nil, err
			}
			if len(b) < 2 {
				return nil, ErrTruncated
			}
			plen := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if len(b) < plen {
				return nil, ErrTruncated
			}
			if plen > 0 {
				m.Payload = make([]byte, plen)
				copy(m.Payload, b[:plen])
			}
			b = b[plen:]
			c.Batch = append(c.Batch, m)
		}
	}
	return c, nil
}

// MarshalFeedback encodes a feedback packet.
func MarshalFeedback(fb *Feedback) ([]byte, error) {
	if fb.Ctrl == nil {
		return nil, fmt.Errorf("core: feedback without control payload")
	}
	b := make([]byte, 0, 6+18+fb.Ctrl.DstCode.SizeBytes())
	b = binary.LittleEndian.AppendUint32(b, fb.UID)
	b = binary.LittleEndian.AppendUint16(b, uint16(fb.FailedRelay))
	b = append(b, MarshalControl(fb.Ctrl)...)
	return b, nil
}

// UnmarshalFeedback decodes a feedback packet.
func UnmarshalFeedback(b []byte) (*Feedback, error) {
	if len(b) < 6 {
		return nil, ErrTruncated
	}
	fb := &Feedback{
		UID:         binary.LittleEndian.Uint32(b),
		FailedRelay: radio.NodeID(binary.LittleEndian.Uint16(b[4:])),
	}
	ctrl, err := UnmarshalControl(b[6:])
	if err != nil {
		return nil, err
	}
	fb.Ctrl = ctrl
	return fb, nil
}

// MarshalCodeReport encodes a code report.
func MarshalCodeReport(r *CodeReport) []byte {
	b := make([]byte, 0, 1+r.Code.SizeBytes())
	b = AppendCode(b, r.Code)
	b = append(b, r.Depth)
	return b
}

// UnmarshalCodeReport decodes a code report.
func UnmarshalCodeReport(b []byte) (*CodeReport, error) {
	code, rest, err := DecodeCode(b)
	if err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, ErrTruncated
	}
	return &CodeReport{Code: code, Depth: rest[0]}, nil
}

// MarshalE2EAck encodes an end-to-end acknowledgement.
func MarshalE2EAck(a *E2EAck) []byte {
	b := make([]byte, 0, 7)
	b = binary.LittleEndian.AppendUint32(b, a.UID)
	b = binary.LittleEndian.AppendUint16(b, uint16(a.From))
	b = append(b, a.Hops)
	return b
}

// UnmarshalE2EAck decodes an end-to-end acknowledgement.
func UnmarshalE2EAck(b []byte) (*E2EAck, error) {
	if len(b) < 7 {
		return nil, ErrTruncated
	}
	return &E2EAck{
		UID:  binary.LittleEndian.Uint32(b),
		From: radio.NodeID(binary.LittleEndian.Uint16(b[4:])),
		Hops: b[6],
	}, nil
}
