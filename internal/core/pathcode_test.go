package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"teleadjust/internal/sim"
)

func TestRootCode(t *testing.T) {
	r := RootCode()
	if r.Len() != 1 || r.Bit(0) != 0 {
		t.Fatalf("root = %v, want single 0 bit", r)
	}
	if r.String() != "0" {
		t.Fatalf("root string = %q", r.String())
	}
}

func TestCodeFromBits(t *testing.T) {
	c := MustCode("00101")
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.String() != "00101" {
		t.Fatalf("string = %q", c.String())
	}
	if _, err := CodeFromBits("01x"); err == nil {
		t.Fatal("invalid bit accepted")
	}
}

func TestExtendMatchesPaperFigure2(t *testing.T) {
	// Figure 2: S=0 (1 bit); A = S+position 1 in 2 bits = 001 (3 bits);
	// M = S+position 2 = 010; B = A+position 01 in 2 bits = 00101 (5 bits).
	s := RootCode()
	a, err := s.Extend(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "001" {
		t.Fatalf("A = %v, want 001", a)
	}
	m, err := s.Extend(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "010" {
		t.Fatalf("M = %v, want 010", m)
	}
	b, err := a.Extend(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "00101" {
		t.Fatalf("B = %v, want 00101", b)
	}
}

func TestExtendErrors(t *testing.T) {
	c := RootCode()
	if _, err := c.Extend(4, 2); err == nil {
		t.Fatal("position overflow accepted")
	}
	if _, err := c.Extend(1, 0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := c.Extend(1, 17); err == nil {
		t.Fatal("width > 16 accepted")
	}
	long := c
	var err error
	for long.Len()+16 <= MaxCodeBits {
		long, err = long.Extend(1, 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := long.Extend(1, 16); err == nil {
		t.Fatal("code beyond MaxCodeBits accepted")
	}
}

func TestPrefixRelations(t *testing.T) {
	s := RootCode()
	a, _ := s.Extend(1, 2)
	b, _ := a.Extend(1, 2)
	m, _ := s.Extend(2, 2)
	if !s.IsPrefixOf(a) || !s.IsPrefixOf(b) || !a.IsPrefixOf(b) {
		t.Fatal("ancestor codes must be prefixes of descendants")
	}
	if a.IsPrefixOf(m) || m.IsPrefixOf(a) {
		t.Fatal("siblings must not be prefixes of each other")
	}
	if b.IsPrefixOf(a) {
		t.Fatal("descendant is not a prefix of ancestor")
	}
	if !a.IsPrefixOf(a) {
		t.Fatal("code must be a prefix of itself")
	}
	if !EmptyCode.IsPrefixOf(a) {
		t.Fatal("empty code must be a universal prefix")
	}
}

func TestEqual(t *testing.T) {
	a := MustCode("0101")
	b := MustCode("0101")
	c := MustCode("01010")
	if !a.Equal(b) {
		t.Fatal("equal codes not equal")
	}
	if a.Equal(c) {
		t.Fatal("different lengths compared equal")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"0101", "0101", 4},
		{"0101", "0100", 3},
		{"0101", "1101", 0},
		{"01", "0101", 2},
		{"", "0101", 0},
	}
	for _, tt := range tests {
		a, b := MustCode(tt.a), MustCode(tt.b)
		if got := a.CommonPrefixLen(b); got != tt.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := b.CommonPrefixLen(a); got != tt.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestPrefixExtraction(t *testing.T) {
	c := MustCode("0110100101")
	p := c.Prefix(6)
	if p.String() != "011010" {
		t.Fatalf("Prefix(6) = %v", p)
	}
	if !p.IsPrefixOf(c) {
		t.Fatal("extracted prefix not a prefix")
	}
	if c.Prefix(0).Len() != 0 || c.Prefix(20).Len() != 10 {
		t.Fatal("prefix length clamping broken")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := MustCode("0").SizeBytes(); got != 2 {
		t.Fatalf("1-bit size = %d, want 2", got)
	}
	if got := MustCode("010101010").SizeBytes(); got != 3 {
		t.Fatalf("9-bit size = %d, want 3", got)
	}
	if got := EmptyCode.SizeBytes(); got != 1 {
		t.Fatalf("empty size = %d, want 1", got)
	}
}

// randomTreeCodes builds a random allocation tree and returns codes with
// their parent relationships, for property testing.
func randomTreeCodes(rng *rand.Rand, n int) (codes []PathCode, parent []int) {
	codes = []PathCode{RootCode()}
	parent = []int{-1}
	// Each node's child space width is fixed at creation. (A live space
	// extension re-encodes every existing child's code with the wider
	// width — see space extension tests in the coding protocol — so for
	// the static property we model post-extension trees directly.)
	widths := []int{2}
	childCount := []int{0}
	for len(codes) < n {
		p := rng.IntN(len(codes))
		if childCount[p] >= (1<<widths[p])-1 {
			continue // space full; pick another parent
		}
		childCount[p]++
		c, err := codes[p].Extend(uint16(childCount[p]), widths[p])
		if err != nil {
			continue
		}
		codes = append(codes, c)
		parent = append(parent, p)
		widths = append(widths, 1+rng.IntN(3))
		childCount = append(childCount, 0)
	}
	return codes, parent
}

// Property: in any allocation tree, codes are unique and the prefix
// relation coincides exactly with the ancestor relation.
func TestTreePrefixProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		codes, parent := randomTreeCodes(rng, 60)
		isAncestor := func(a, d int) bool {
			for d != -1 {
				if d == a {
					return true
				}
				d = parent[d]
			}
			return false
		}
		for i := range codes {
			for j := range codes {
				if i != j && codes[i].Equal(codes[j]) {
					return false
				}
				want := isAncestor(i, j)
				got := codes[i].IsPrefixOf(codes[j])
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend then Prefix round-trips the parent code.
func TestExtendPrefixRoundTrip(t *testing.T) {
	f := func(seed uint64, pos uint16, width uint8) bool {
		w := int(width%16) + 1
		p := uint16(uint32(pos) % (uint32(1) << w))
		rng := sim.NewRNG(seed)
		base := RootCode()
		for i := 0; i < rng.IntN(10); i++ {
			var err error
			base, err = base.Extend(uint16(rng.IntN(4)), 2)
			if err != nil {
				return true // skip overly long
			}
		}
		ext, err := base.Extend(p, w)
		if err != nil {
			return true
		}
		return ext.Prefix(base.Len()).Equal(base) && base.IsPrefixOf(ext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitOutOfRange(t *testing.T) {
	c := MustCode("1")
	if c.Bit(-1) != 0 || c.Bit(5) != 0 {
		t.Fatal("out-of-range Bit should be 0")
	}
}
