package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// Controller-side errors.
var (
	ErrNotSink     = errors.New("core: control operations originate at the sink")
	ErrUnknownCode = errors.New("core: destination path code unknown to the controller")
	ErrSelfControl = errors.New("core: sink cannot be its own control destination")
)

// SendControl originates a control operation from the sink toward dst,
// carrying app. cb (optional) fires exactly once with the outcome: on the
// end-to-end acknowledgement, or on timeout/undeliverability (possibly
// after the Re-Tele rescue attempt).
func (e *Engine) SendControl(dst radio.NodeID, app any, cb func(Result)) (uint32, error) {
	return e.SendControlWith(dst, app, SendOpts{}, cb)
}

// SendOpts tunes one control dispatch beyond the engine defaults.
type SendOpts struct {
	// NoRescue suppresses the Re-Tele rescue detour for this operation:
	// callers holding fresh route-confirmation state (the command
	// service's route cache) skip the redundant probe and let the
	// operation resolve at the first timeout.
	NoRescue bool
}

// SendControlWith is SendControl with per-operation options.
func (e *Engine) SendControlWith(dst radio.NodeID, app any, opts SendOpts, cb func(Result)) (uint32, error) {
	if !e.isSink {
		return 0, ErrNotSink
	}
	if dst == e.node.ID() {
		return 0, ErrSelfControl
	}
	info, ok := e.registry[dst]
	if !ok {
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpUnroutable, Dst: dst})
		return 0, fmt.Errorf("%w: node %d", ErrUnknownCode, dst)
	}
	return e.launchControl(dst, info.Code, app, opts, cb), nil
}

// launchControl allocates a UID and dispatches one resolved-code control
// operation: pending state, timeout, forwarding state, first forward.
// Shared by the single-operation entry points and the batch carrier's
// per-member bookkeeping.
func (e *Engine) launchControl(dst radio.NodeID, code PathCode, app any, opts SendOpts, cb func(Result)) uint32 {
	e.uidSeq++
	uid := e.uidSeq
	c := &Control{
		UID:     uid,
		Op:      uid,
		Dst:     dst,
		DstCode: code,
		App:     app,
	}
	e.trackPending(uid, dst, app, opts, cb)
	st := &ctrlState{
		ctrl:       c,
		attempts:   e.cfg.RetryRounds + 1,
		backtracks: e.cfg.Backtracks,
		excluded:   make(map[radio.NodeID]bool),
		status:     ctrlForwarding,
		at:         e.eng.Now(),
	}
	e.ctrl[uid] = st
	e.emitOp(telemetry.Event{Kind: telemetry.KindOpIssue, Op: uid, UID: uid, Dst: dst})
	e.forwardControl(st)
	return uid
}

// trackPending installs the sink-side pending record and timeout for one
// operation under uid.
func (e *Engine) trackPending(uid uint32, dst radio.NodeID, app any, opts SendOpts, cb func(Result)) {
	p := &pendingControl{op: uid, dst: dst, app: app, sentAt: e.eng.Now(), cb: cb, noRescue: opts.NoRescue}
	p.timeout = e.eng.Schedule(e.cfg.ControlTimeout, func() { e.pendingTimeout(uid) })
	e.pending[uid] = p
}

// MultiResult reports the outcome of a one-to-many control operation.
type MultiResult struct {
	// Results holds the per-destination outcomes, indexed by node.
	Results map[radio.NodeID]Result
	// OKCount is the number of acknowledged destinations.
	OKCount int
}

// SendControlMulti delivers app to every destination in dsts (the paper's
// one-to-many extension): one targeted control operation per destination,
// sharing the encoded-path machinery. cb fires once, after every
// destination has resolved (ack, rescue, or timeout). Destinations whose
// codes are unknown appear in the result with OK=false immediately.
func (e *Engine) SendControlMulti(dsts []radio.NodeID, app any, cb func(MultiResult)) error {
	if !e.isSink {
		return ErrNotSink
	}
	if len(dsts) == 0 {
		return errors.New("core: empty destination set")
	}
	agg := MultiResult{Results: make(map[radio.NodeID]Result, len(dsts))}
	remaining := len(dsts)
	finish := func(dst radio.NodeID, r Result) {
		agg.Results[dst] = r
		if r.OK {
			agg.OKCount++
		}
		remaining--
		if remaining == 0 && cb != nil {
			cb(agg)
		}
	}
	for _, dst := range dsts {
		dst := dst
		if _, err := e.SendControl(dst, app, func(r Result) { finish(dst, r) }); err != nil {
			finish(dst, Result{Dst: dst, OK: false})
		}
	}
	return nil
}

// KnowsCode reports whether the controller has a code for dst.
func (e *Engine) KnowsCode(dst radio.NodeID) bool {
	if e.registry == nil {
		return false
	}
	_, ok := e.registry[dst]
	return ok
}

// DstCode returns the registered path code of dst without copying the
// whole registry, for callers (like the sink command plane's subtree
// grouping) that resolve codes per operation.
func (e *Engine) DstCode(dst radio.NodeID) (PathCode, bool) {
	info, ok := e.registry[dst]
	return info.Code, ok
}

// resolveAck completes a pending operation on the end-to-end ack.
func (e *Engine) resolveAck(ack *E2EAck) {
	p, ok := e.pending[ack.UID]
	if !ok {
		return
	}
	delete(e.pending, ack.UID)
	p.timeout.Cancel()
	lat := e.eng.Now() - p.sentAt
	if e.e2eLat != nil {
		e.e2eLat.Observe(lat.Seconds())
		e.e2eHops.Observe(float64(ack.Hops))
	}
	if e.bus.Wants(telemetry.LayerCore) {
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpE2EAck, Op: p.op, UID: ack.UID,
			Src: ack.From, Hops: ack.Hops, Value: lat.Seconds()})
		e.emitOp(telemetry.Event{Kind: telemetry.KindOpResult, Op: p.op, UID: ack.UID,
			Dst: p.dst, Value: 1})
	}
	if p.cb != nil {
		p.cb(Result{
			UID:      ack.UID,
			Dst:      ack.From,
			OK:       true,
			Latency:  lat,
			E2EHops:  ack.Hops,
			Detoured: p.detoured,
		})
	}
}

// pendingTimeout fires when no e2e ack arrived in time: either the packet
// never made it or its acknowledgement was lost on a blocked upward path.
// Both are what the Section III-C4 countermeasure addresses (the rescue
// relay also carries the ack back on its own tree), so one rescue attempt
// is made before giving up.
func (e *Engine) pendingTimeout(uid uint32) {
	p, ok := e.pending[uid]
	if !ok {
		return
	}
	if e.tryRescue(uid, p) {
		return
	}
	e.failPending(uid, p)
}

// sinkUndeliverable is called when the sink's own forwarding (including
// backtracked packets) gives up before the timeout.
func (e *Engine) sinkUndeliverable(c *Control) {
	p, ok := e.pending[c.UID]
	if !ok {
		return
	}
	if e.tryRescue(c.UID, p) {
		return
	}
	e.failPending(c.UID, p)
}

func (e *Engine) failPending(uid uint32, p *pendingControl) {
	delete(e.pending, uid)
	p.timeout.Cancel()
	e.stats.SendFailures++
	e.emitOp(telemetry.Event{Kind: telemetry.KindOpResult, Op: p.op, UID: uid, Dst: p.dst, Value: 0})
	if p.cb != nil {
		p.cb(Result{
			UID:      uid,
			Dst:      p.dst,
			OK:       false,
			Latency:  e.eng.Now() - p.sentAt,
			Detoured: p.detoured,
		})
	}
}

// tryRescue implements the destination-unreachable countermeasure
// (Section III-C4): route to a code-divergent neighbor K of the
// destination with a good link, and have K deliver directly.
func (e *Engine) tryRescue(uid uint32, p *pendingControl) bool {
	if !e.cfg.Rescue || p.rescued || p.noRescue || e.oracle == nil {
		return false
	}
	dstInfo, ok := e.registry[p.dst]
	if !ok {
		return false
	}
	k := e.pickRescueRelay(p.dst, dstInfo.Code)
	if k == radio.BroadcastID {
		return false
	}
	kInfo := e.registry[k]
	p.rescued = true
	p.detoured = true
	e.stats.Rescues++

	// The rescue attempt gets its own UID on the wire so relays that
	// already carry state for the original attempt participate afresh;
	// both UIDs resolve to the same pending operation.
	e.uidSeq++
	uid2 := e.uidSeq
	e.pending[uid2] = p
	delete(e.pending, uid)
	p.timeout.Cancel()
	p.timeout = e.eng.Schedule(e.cfg.ControlTimeout, func() { e.pendingTimeout(uid2) })

	e.emitOp(telemetry.Event{Kind: telemetry.KindOpRescue, Op: p.op, UID: uid2, Dst: k,
		Note: "re-tele detour via rescue relay"})
	c := &Control{
		UID:      uid2,
		Op:       p.op,
		Dst:      k,
		DstCode:  kInfo.Code,
		Detour:   true,
		FinalDst: p.dst,
		App:      p.app,
	}
	st := &ctrlState{
		ctrl:       c,
		attempts:   e.cfg.RetryRounds + 1,
		backtracks: e.cfg.Backtracks,
		excluded:   make(map[radio.NodeID]bool),
		status:     ctrlForwarding,
		at:         e.eng.Now(),
	}
	e.ctrl[uid2] = st
	e.forwardControl(st)
	return true
}

// pickRescueRelay chooses the destination neighbor with a path code
// diverging from the destination's as early as possible ("a neighbor node
// of the destination with different path code to the greatest extent") and
// a high-quality link to it.
func (e *Engine) pickRescueRelay(dst radio.NodeID, dstCode PathCode) radio.NodeID {
	const minQuality = 0.6
	best := radio.BroadcastID
	bestDivergence := -1
	bestQuality := 0.0
	for _, k := range e.oracle.NeighborsOf(dst) {
		if k == dst || k == e.node.ID() || e.unreachable[k] {
			continue
		}
		info, ok := e.registry[k]
		if !ok {
			continue
		}
		// A candidate whose code prefixes the destination's sits ON the
		// failed primary path — often the suspected-dead hop itself, which
		// the bare divergence metric would otherwise rank highest (a prefix
		// shares the least suffix). The detour must leave that path.
		if info.Code.IsPrefixOf(dstCode) {
			continue
		}
		q := e.oracle.LinkQuality(k, dst)
		if q < minQuality {
			continue
		}
		// Divergence: smaller common prefix = more divergent path.
		div := dstCode.Len() - info.Code.CommonPrefixLen(dstCode)
		if div > bestDivergence || (div == bestDivergence && q > bestQuality) {
			best = k
			bestDivergence = div
			bestQuality = q
		}
	}
	return best
}

// PendingCount returns the number of in-flight control operations.
func (e *Engine) PendingCount() int { return len(e.pending) }

// PendingOp is a read-only snapshot of one in-flight control operation,
// exposed for invariant checkers (liveness: every pending op must resolve
// within a bounded multiple of the control timeout).
type PendingOp struct {
	UID     uint32
	Op      uint32
	Dst     radio.NodeID
	SentAt  time.Duration
	Rescued bool
}

// PendingOps returns the in-flight control operations sorted by UID.
func (e *Engine) PendingOps() []PendingOp {
	ops := make([]PendingOp, 0, len(e.pending))
	for uid, p := range e.pending {
		ops = append(ops, PendingOp{UID: uid, Op: p.op, Dst: p.dst, SentAt: p.sentAt, Rescued: p.rescued})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].UID < ops[j].UID })
	return ops
}
