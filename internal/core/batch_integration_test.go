package core_test

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/radio"
	"teleadjust/internal/topology"
)

// batchTo drives one SendControlBatch through a converged network and
// returns the per-destination results plus the returned UID slice.
func batchTo(t *testing.T, net interface {
	SinkTele() *core.Engine
	Run(time.Duration) error
}, dsts []radio.NodeID) (map[radio.NodeID]core.Result, []uint32) {
	t.Helper()
	reqs := make([]core.BatchRequest, len(dsts))
	results := make(map[radio.NodeID]core.Result, len(dsts))
	for i, d := range dsts {
		d := d
		reqs[i] = core.BatchRequest{
			Dst:     d,
			App:     "batched-cmd",
			Payload: []byte{1, 2, 3},
			Cb:      func(r core.Result) { results[d] = r },
		}
	}
	uids, err := net.SinkTele().SendControlBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return results, uids
}

// TestSendControlBatchDeliversLine: members nested along one line branch
// share their whole path; the carrier splits at the shallowest member and
// every member still acks end to end.
func TestSendControlBatchDeliversLine(t *testing.T) {
	net := buildTele(t, topology.Line(6, 7), 11, nil)
	run(t, net, 4*time.Minute)
	dsts := []radio.NodeID{2, 3, 4, 5}
	delivered := map[radio.NodeID]int{}
	for _, d := range dsts {
		d := d
		net.Tele(d).SetDeliveredFn(func(op uint32, hops uint8) { delivered[d]++ })
	}
	before := net.SinkTele().Stats().ControlSends
	results, uids := batchTo(t, net, dsts)
	batchedSends := net.SinkTele().Stats().ControlSends - before

	if len(results) != len(dsts) {
		t.Fatalf("%d results, want %d", len(results), len(dsts))
	}
	for _, d := range dsts {
		r, ok := results[d]
		if !ok || !r.OK {
			t.Fatalf("member %d not acked: %+v", d, r)
		}
		if delivered[d] != 1 {
			t.Fatalf("member %d consumed %d times, want 1", d, delivered[d])
		}
	}
	seen := map[uint32]bool{}
	for i, uid := range uids {
		if uid == 0 {
			t.Fatalf("member %d got uid 0", i)
		}
		if seen[uid] {
			t.Fatalf("duplicate member uid %d", uid)
		}
		seen[uid] = true
	}
	// The shared leg must actually be shared: the sink sends one carrier,
	// not one packet per member.
	if batchedSends >= uint64(len(dsts)) {
		t.Fatalf("sink issued %d control sends for a %d-member nested batch, want fewer",
			batchedSends, len(dsts))
	}
}

// TestSendControlBatchSavesTransmissions compares network-wide control
// transmissions for the same destination set sent individually vs batched.
func TestSendControlBatchSavesTransmissions(t *testing.T) {
	dsts := []radio.NodeID{3, 4, 5}
	total := func(batched bool) uint64 {
		net := buildTele(t, topology.Line(6, 7), 21, nil)
		run(t, net, 4*time.Minute)
		var before uint64
		for id := range net.Stacks {
			before += net.Tele(radio.NodeID(id)).Stats().ControlSends
		}
		if batched {
			batchTo(t, net, dsts)
		} else {
			for _, d := range dsts {
				if _, err := net.SinkTele().SendControl(d, "cmd", nil); err != nil {
					t.Fatal(err)
				}
			}
			run(t, net, 2*time.Minute)
		}
		var after uint64
		for id := range net.Stacks {
			after += net.Tele(radio.NodeID(id)).Stats().ControlSends
		}
		return after - before
	}
	individual := total(false)
	batched := total(true)
	if batched >= individual {
		t.Fatalf("batched sends %d >= individual sends %d: batching saved nothing",
			batched, individual)
	}
}

// TestSendControlBatchUnroutableMember: unknown destinations fail in place
// with uid 0 while the rest of the batch delivers.
func TestSendControlBatchUnroutableMember(t *testing.T) {
	net := buildTele(t, topology.Line(5, 7), 31, nil)
	run(t, net, 4*time.Minute)
	results, uids := batchTo(t, net, []radio.NodeID{3, 99, 4})
	if r := results[99]; r.OK {
		t.Fatalf("unknown member reported OK: %+v", r)
	}
	if uids[1] != 0 {
		t.Fatalf("unknown member uid = %d, want 0", uids[1])
	}
	for _, d := range []radio.NodeID{3, 4} {
		if r := results[d]; !r.OK {
			t.Fatalf("member %d not acked: %+v", d, r)
		}
	}
}

// TestSendControlBatchNoSharedPrefix: destinations in disjoint subtrees
// (grid rows fanning out of the sink) fall back to individual dispatch and
// still all deliver.
func TestSendControlBatchNoSharedPrefix(t *testing.T) {
	dep := topology.Grid("field", 3, 4, 30, 21, false, topology.Point{X: 15, Y: 10}, 7)
	net := buildTele(t, dep, 41, nil)
	run(t, net, 5*time.Minute)
	reg := net.SinkTele().Registry()
	// Pick a destination pair whose deepest common-prefix holder is the
	// sink itself: no registered code may prefix their common prefix.
	var picked []radio.NodeID
pairs:
	for a, ai := range reg {
		for b, bi := range reg {
			if a >= b {
				continue
			}
			common := ai.Code.Prefix(ai.Code.CommonPrefixLen(bi.Code))
			lcaIsSink := true
			for _, other := range reg {
				if other.Code.IsPrefixOf(common) {
					lcaIsSink = false
					break
				}
			}
			if lcaIsSink {
				picked = []radio.NodeID{a, b}
				break pairs
			}
		}
	}
	if len(picked) < 2 {
		t.Skip("topology converged without divergent subtrees")
	}
	results, _ := batchTo(t, net, picked)
	for _, d := range picked {
		if r := results[d]; !r.OK {
			t.Fatalf("member %d not acked: %+v", d, r)
		}
	}
}

// TestSendControlBatchValidation: entry-point errors.
func TestSendControlBatchValidation(t *testing.T) {
	net := buildTele(t, topology.Line(3, 7), 51, nil)
	run(t, net, 3*time.Minute)
	if _, err := net.SinkTele().SendControlBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := net.Tele(1).SendControlBatch([]core.BatchRequest{{Dst: 2}}); err == nil {
		t.Fatal("non-sink batch accepted")
	}
	big := make([]core.BatchRequest, core.MaxBatchMembers+1)
	for i := range big {
		big[i].Dst = radio.NodeID(i + 1)
	}
	if _, err := net.SinkTele().SendControlBatch(big); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestNoRescueSuppressesDetour: an operation sent with NoRescue to a dead
// destination must fail without a rescue attempt.
func TestNoRescueSuppressesDetour(t *testing.T) {
	net := buildTele(t, topology.Grid("field", 3, 3, 21, 21, false, topology.Point{}, 5), 61, nil)
	run(t, net, 4*time.Minute)
	reg := net.SinkTele().Registry()
	var victim radio.NodeID
	var deepest int
	for id, info := range reg {
		if info.Code.Len() > deepest {
			deepest = info.Code.Len()
			victim = id
		}
	}
	if victim == 0 {
		t.Skip("no registered destination")
	}
	net.KillNode(victim)
	before := net.SinkTele().Stats().Rescues
	var got *core.Result
	if _, err := net.SinkTele().SendControlWith(victim, "cmd", core.SendOpts{NoRescue: true},
		func(r core.Result) { got = &r }); err != nil {
		t.Fatal(err)
	}
	run(t, net, 2*time.Minute)
	if got == nil {
		t.Fatal("operation never resolved")
	}
	if got.OK {
		t.Fatalf("control to dead node reported OK: %+v", got)
	}
	if after := net.SinkTele().Stats().Rescues; after != before {
		t.Fatalf("NoRescue operation still attempted %d rescue(s)", after-before)
	}
}
