// Package drip implements the Drip reliable dissemination baseline (Tolle
// & Culler, EWSN 2005): versioned values advertised with per-key Trickle
// timers and suppression. New versions flood the whole network; remote
// control rides on it by disseminating a command addressed to one node,
// which is the energy-hungry but highly reliable baseline of the paper's
// evaluation.
package drip

import (
	"errors"
	"math/rand/v2"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/trickle"
)

// Update is the dissemination message (broadcast, unacknowledged).
type Update struct {
	Key     uint16
	Version uint32
	// Hops counts flood transmissions from the origin (ATHX bookkeeping).
	Hops    uint8
	Payload any
}

// NoAck marks updates as pure broadcasts for the MAC.
func (Update) NoAck() bool { return true }

// Command is a remote-control payload disseminated via Drip.
type Command struct {
	UID uint32
	Dst radio.NodeID
	App any
}

// CmdAck is the destination's end-to-end acknowledgement, returned over
// the collection tree.
type CmdAck struct {
	UID  uint32
	From radio.NodeID
}

// Config holds Drip parameters.
type Config struct {
	Trickle trickle.Config
	// Size is the MAC frame size of an update.
	Size int
	// ControlTimeout bounds pending control operations at the sink.
	ControlTimeout time.Duration
}

// DefaultConfig uses small minimum intervals for fast propagation and
// suppression constant 2.
func DefaultConfig() Config {
	return Config{
		Trickle: trickle.Config{
			IMin: 128 * time.Millisecond,
			IMax: 32 * time.Second,
			K:    2,
		},
		Size:           32,
		ControlTimeout: 60 * time.Second,
	}
}

// Stats counts Drip activity at one node.
type Stats struct {
	Sends       uint64 // update transmissions (Table III metric)
	NewVersions uint64
	Delivered   uint64 // commands consumed as destination
	SendFail    uint64
}

// Result mirrors the TeleAdjusting controller result for comparisons.
type Result = protocol.Result

type valueState struct {
	version uint32
	hops    uint8
	payload any
	timer   *trickle.Timer
}

type pendingCmd struct {
	dst     radio.NodeID
	sentAt  time.Duration
	cb      func(Result)
	timeout sim.EventRef
}

// Drip is one node's dissemination instance.
type Drip struct {
	node   *node.Node
	eng    *sim.Engine
	cfg    Config
	rng    *rand.Rand
	ctp    *ctp.CTP
	isSink bool

	values map[uint16]*valueState

	// Sink-side control state.
	pending map[uint32]*pendingCmd
	uidSeq  uint32

	onUpdate  func(key uint16, version uint32, payload any)
	deliverFn func(uid uint32, hops uint8)

	athx  []ATHXSample
	stats Stats
}

// ATHXSample is one Fig-8 scatter point: an update adopted at this node
// after travelling Hops flood transmissions.
type ATHXSample = protocol.ATHXSample

// controlKey is the shared dissemination key remote-control commands ride
// on. Sharing one key means a new command supersedes the previous one (a
// straggler that missed version v before v+1 appears loses it — inherent
// Drip semantics the paper's one-minute inter-packet interval tolerates),
// but it also means every node's maintenance trickle helps carry each new
// command, which is what makes Drip so reliable.
const controlKey uint16 = 1

var _ node.Protocol = (*Drip)(nil)
var _ protocol.ControlProtocol = (*Drip)(nil)

// Name identifies the protocol family for uniform stacks.
func (d *Drip) Name() string { return "drip" }

// New creates a Drip instance on the node, registered with the runtime.
// The CTP instance carries end-to-end command acknowledgements upward; the
// sink instance takes over the CTP sink delivery hook.
func New(n *node.Node, c *ctp.CTP, cfg Config, rng *rand.Rand) *Drip {
	d := &Drip{
		node:   n,
		eng:    n.Engine(),
		cfg:    cfg,
		rng:    rng,
		ctp:    c,
		isSink: c.IsSink(),
		values: make(map[uint16]*valueState),
	}
	if d.isSink {
		d.pending = make(map[uint32]*pendingCmd)
		c.SetDeliverFunc(d.handleCollect)
	}
	n.Register(d)
	return d
}

// Start is part of the ControlProtocol lifecycle. Drip state is lazy — a
// per-key Trickle timer starts on the first dissemination or adopted
// update for that key — so Start has nothing to arm; it exists so node
// stacks can drive every control protocol uniformly.
func (d *Drip) Start() {}

// Stop halts every value's Trickle timer.
func (d *Drip) Stop() {
	for _, v := range d.values {
		v.timer.Stop()
	}
}

// SetUpdateFunc installs a callback fired once per adopted new version.
func (d *Drip) SetUpdateFunc(fn func(key uint16, version uint32, payload any)) {
	d.onUpdate = fn
}

// SetDeliveredFn installs a hook fired when this node consumes a command
// addressed to it; hops is the flood transmission count the command
// travelled before adoption.
func (d *Drip) SetDeliveredFn(fn func(uid uint32, hops uint8)) { d.deliverFn = fn }

// Stats returns a copy of the statistics.
func (d *Drip) Stats() Stats { return d.stats }

// ControlTx returns the node's update transmissions (the Table III
// metric: a flood charges every advertisement).
func (d *Drip) ControlTx() uint64 { return d.stats.Sends }

// Detail exports the diagnostic counters the comparison studies report.
func (d *Drip) Detail() map[string]uint64 {
	return map[string]uint64{"advertisements": d.stats.Sends}
}

// ATHX returns the Fig-8 samples recorded at this node.
func (d *Drip) ATHX() []ATHXSample {
	out := make([]ATHXSample, len(d.athx))
	copy(out, d.athx)
	return out
}

// Version returns the current version for a key (0 = never seen).
func (d *Drip) Version(key uint16) uint32 {
	if v, ok := d.values[key]; ok {
		return v.version
	}
	return 0
}

// Disseminate injects a new version of key carrying payload.
func (d *Drip) Disseminate(key uint16, payload any) {
	v := d.value(key)
	v.version++
	v.payload = payload
	d.stats.NewVersions++
	v.timer.Reset()
}

// ErrNotSink is returned when control operations originate off-sink.
var ErrNotSink = errors.New("drip: control operations originate at the sink")

// SendControl disseminates a command for dst network-wide and reports the
// outcome through cb (end-to-end ack or timeout).
func (d *Drip) SendControl(dst radio.NodeID, app any, cb func(Result)) (uint32, error) {
	if !d.isSink {
		return 0, ErrNotSink
	}
	d.uidSeq++
	uid := d.uidSeq
	p := &pendingCmd{dst: dst, sentAt: d.eng.Now(), cb: cb}
	p.timeout = d.eng.Schedule(d.cfg.ControlTimeout, func() {
		if _, ok := d.pending[uid]; !ok {
			return
		}
		delete(d.pending, uid)
		if cb != nil {
			cb(Result{UID: uid, Dst: dst, OK: false, Latency: d.eng.Now() - p.sentAt})
		}
	})
	d.pending[uid] = p
	d.Disseminate(controlKey, &Command{UID: uid, Dst: dst, App: app})
	return uid, nil
}

// value returns (creating) the state for a key.
func (d *Drip) value(key uint16) *valueState {
	v, ok := d.values[key]
	if !ok {
		v = &valueState{}
		v.timer = trickle.New(d.eng, d.cfg.Trickle, d.rng, func() { d.advertise(key) })
		v.timer.Start()
		d.values[key] = v
	}
	return v
}

// advertise broadcasts the current value of a key.
func (d *Drip) advertise(key uint16) {
	v := d.values[key]
	if v == nil || v.version == 0 {
		return
	}
	u := &Update{Key: key, Version: v.version, Hops: v.hops + 1, Payload: v.payload}
	f := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     radio.BroadcastID,
		Size:    d.cfg.Size,
		Payload: u,
	}
	if err := d.node.Send(f); err != nil {
		d.stats.SendFail++
		return
	}
	d.stats.Sends++
}

// handleUpdate applies Trickle's consistency rules.
func (d *Drip) handleUpdate(u *Update) {
	v := d.value(u.Key)
	switch {
	case u.Version > v.version:
		v.version = u.Version
		v.hops = u.Hops
		v.payload = u.Payload
		v.timer.Reset()
		d.adopt(u)
	case u.Version == v.version:
		v.timer.Hear()
	default:
		// The sender is behind: inconsistency, advertise soon.
		v.timer.Reset()
	}
}

// adopt processes a newly learned version.
func (d *Drip) adopt(u *Update) {
	d.athx = append(d.athx, ATHXSample{Hops: u.Hops, At: d.eng.Now()})
	if d.onUpdate != nil {
		d.onUpdate(u.Key, u.Version, u.Payload)
	}
	cmd, ok := u.Payload.(*Command)
	if !ok {
		return
	}
	if cmd.Dst != d.node.ID() {
		return
	}
	d.stats.Delivered++
	if d.deliverFn != nil {
		d.deliverFn(cmd.UID, u.Hops)
	}
	_ = d.ctp.SendToSink(&CmdAck{UID: cmd.UID, From: d.node.ID()})
}

// handleCollect is the sink's CTP delivery hook: resolve command acks.
func (d *Drip) handleCollect(origin radio.NodeID, app any) {
	ack, ok := app.(*CmdAck)
	if !ok {
		return
	}
	p, ok := d.pending[ack.UID]
	if !ok {
		return
	}
	delete(d.pending, ack.UID)
	p.timeout.Cancel()
	if p.cb != nil {
		p.cb(Result{
			UID:     ack.UID,
			Dst:     ack.From,
			OK:      true,
			Latency: d.eng.Now() - p.sentAt,
		})
	}
}

// --- node.Protocol ---

// Owns implements node.Protocol.
func (d *Drip) Owns(payload any) bool {
	_, ok := payload.(*Update)
	return ok
}

// Classify implements node.Protocol.
func (d *Drip) Classify(f *radio.Frame) mac.Classification {
	return mac.Classification{Decision: mac.Deliver}
}

// Deliver implements node.Protocol.
func (d *Drip) Deliver(f *radio.Frame) {
	if u, ok := f.Payload.(*Update); ok {
		d.handleUpdate(u)
	}
}

// OnSendDone implements node.Protocol.
func (d *Drip) OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool) {}
