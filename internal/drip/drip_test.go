package drip_test

import (
	"testing"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/experiment"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/topology"
)

func buildDrip(t *testing.T, dep *topology.Deployment, seed uint64) *experiment.Net {
	t.Helper()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	cfg := experiment.Config{
		Dep:      dep,
		Radio:    params,
		Mac:      mac.DefaultConfig(),
		Ctp:      ctp.DefaultConfig(),
		Drip:     drip.DefaultConfig(),
		Protocol: experiment.ProtoDrip,
		Seed:     seed,
	}
	cfg.Drip.ControlTimeout = 30 * time.Second
	net, err := experiment.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	return net
}

func TestDisseminationReachesAllNodes(t *testing.T) {
	dep := topology.Line(5, 7)
	net := buildDrip(t, dep, 1)
	if err := net.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := map[int]uint32{}
	for i := 1; i < 5; i++ {
		i := i
		net.Drip(radio.NodeID(i)).SetUpdateFunc(func(key uint16, version uint32, payload any) {
			got[i] = version
		})
	}
	net.SinkDrip().Disseminate(7, "value-1")
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if got[i] != 1 {
			t.Fatalf("node %d version = %d, want 1", i, got[i])
		}
		if net.Drip(radio.NodeID(i)).Version(7) != 1 {
			t.Fatalf("node %d stored version %d", i, net.Drip(radio.NodeID(i)).Version(7))
		}
	}
}

func TestNewVersionSupersedes(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildDrip(t, dep, 2)
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	net.SinkDrip().Disseminate(7, "v1")
	if err := net.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	net.SinkDrip().Disseminate(7, "v2")
	if err := net.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if v := net.Drip(radio.NodeID(i)).Version(7); v != 2 {
			t.Fatalf("node %d version = %d, want 2", i, v)
		}
	}
}

func TestControlViaDissemination(t *testing.T) {
	dep := topology.Line(4, 7)
	net := buildDrip(t, dep, 3)
	if err := net.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	var res drip.Result
	got := false
	deliveredAt := map[uint32]bool{}
	net.Drip(3).SetDeliveredFn(func(uid uint32, hops uint8) { deliveredAt[uid] = true })
	if _, err := net.SinkDrip().SendControl(3, "cmd", func(r drip.Result) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !got || !res.OK {
		t.Fatalf("drip control failed: got=%v res=%+v", got, res)
	}
	if len(deliveredAt) != 1 {
		t.Fatalf("destination deliveries = %d, want 1", len(deliveredAt))
	}
	// Non-destinations must not deliver.
	if net.Drip(1).Stats().Delivered != 0 {
		t.Fatal("non-destination consumed the command")
	}
}

func TestFloodingCostExceedsPathCost(t *testing.T) {
	// Table III's qualitative property: flooding transmissions grow with
	// network size, far beyond the destination's hop count.
	dep := topology.Line(5, 7)
	net := buildDrip(t, dep, 4)
	if err := net.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := uint64(0)
	for i := 0; i < net.Dep.Len(); i++ {
		before += net.Drip(radio.NodeID(i)).Stats().Sends
	}
	if _, err := net.SinkDrip().SendControl(1, "cmd", nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	after := uint64(0)
	for i := 0; i < net.Dep.Len(); i++ {
		after += net.Drip(radio.NodeID(i)).Stats().Sends
	}
	// Destination is 1 hop away, yet the flood must involve most nodes.
	if after-before < 5 {
		t.Fatalf("flood produced only %d transmissions", after-before)
	}
}

func TestSendControlFromNonSink(t *testing.T) {
	dep := topology.Line(2, 7)
	net := buildDrip(t, dep, 5)
	if _, err := net.Drip(1).SendControl(0, "x", nil); err != drip.ErrNotSink {
		t.Fatalf("err = %v, want ErrNotSink", err)
	}
}

func TestVersionZeroNeverAdvertised(t *testing.T) {
	dep := topology.Line(2, 7)
	net := buildDrip(t, dep, 6)
	if err := net.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No value was ever disseminated: no Drip sends at all.
	for i := 0; i < net.Dep.Len(); i++ {
		if n := net.Drip(radio.NodeID(i)).Stats().Sends; n != 0 {
			t.Fatalf("node %d advertised version 0 (%d sends)", i, n)
		}
	}
}

func TestOutdatedNeighborTriggersReadvertise(t *testing.T) {
	dep := topology.Line(3, 7)
	net := buildDrip(t, dep, 7)
	if err := net.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	net.SinkDrip().Disseminate(9, "v1")
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if net.Drip(2).Version(9) != 1 {
		t.Skip("v1 did not reach node 2")
	}
	// All consistent now; inject v2 and verify it replaces v1 everywhere
	// (the behind-neighbor inconsistency rule drives the re-flood).
	net.SinkDrip().Disseminate(9, "v2")
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if v := net.Drip(radio.NodeID(i)).Version(9); v != 2 {
			t.Fatalf("node %d stuck at version %d", i, v)
		}
	}
}

func TestDripStopSilences(t *testing.T) {
	dep := topology.Line(2, 7)
	net := buildDrip(t, dep, 8)
	net.SinkDrip().Disseminate(3, "x")
	if err := net.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := net.SinkDrip().Stats().Sends
	net.SinkDrip().Stop()
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if net.SinkDrip().Stats().Sends != before {
		t.Fatal("stopped Drip kept advertising")
	}
}
