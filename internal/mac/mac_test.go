package mac

import (
	"testing"
	"time"

	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// testUpper is a scriptable protocol layer.
type testUpper struct {
	classify  func(f *radio.Frame) Classification
	delivered []*radio.Frame
	done      []sendResult
}

type sendResult struct {
	frame *radio.Frame
	acker radio.NodeID
	ok    bool
}

func (u *testUpper) Classify(f *radio.Frame) Classification {
	if u.classify == nil {
		return Classification{Decision: Ignore}
	}
	return u.classify(f)
}

func (u *testUpper) Deliver(f *radio.Frame) { u.delivered = append(u.delivered, f) }

func (u *testUpper) OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool) {
	u.done = append(u.done, sendResult{frame: f, acker: acker, ok: ok})
}

// acceptUnicast accepts frames addressed to id.
func acceptUnicast(id radio.NodeID) func(f *radio.Frame) Classification {
	return func(f *radio.Frame) Classification {
		if f.Dst == id {
			return Classification{Decision: AckAndDeliver}
		}
		return Classification{Decision: Ignore}
	}
}

// noAckPayload marks broadcast frames that expect no acknowledgement.
type noAckPayload struct{ v int }

func (noAckPayload) NoAck() bool { return true }

// buildNet creates n nodes in a line, spacing metres apart, quiet noise.
func buildNet(t *testing.T, n int, spacing float64, cfg Config, alwaysOn ...radio.NodeID) (*sim.Engine, []*MAC, []*testUpper) {
	t.Helper()
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := radio.NewMedium(eng, topology.Line(n, spacing), nil, params, 42)
	if err != nil {
		t.Fatal(err)
	}
	on := make(map[radio.NodeID]bool, len(alwaysOn))
	for _, id := range alwaysOn {
		on[id] = true
	}
	macs := make([]*MAC, n)
	uppers := make([]*testUpper, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.AlwaysOn = on[radio.NodeID(i)]
		uppers[i] = &testUpper{}
		macs[i] = New(eng, med.Radio(radio.NodeID(i)), c, sim.DeriveRNG(7, uint64(i)), uppers[i])
		macs[i].Start()
	}
	return eng, macs, uppers
}

func TestUnicastAlwaysOn(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	uppers[1].classify = acceptUnicast(1)
	f := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30, Payload: "hi"}
	if err := macs[0].Send(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(uppers[1].delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(uppers[1].delivered))
	}
	if len(uppers[0].done) != 1 || !uppers[0].done[0].ok || uppers[0].done[0].acker != 1 {
		t.Fatalf("send result = %+v, want ack from 1", uppers[0].done)
	}
}

func TestUnicastToDutyCycledReceiver(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0)
	uppers[1].classify = acceptUnicast(1)
	f := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}
	start := eng.Now()
	if err := macs[0].Send(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(uppers[1].delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (LPL streaming must catch the wake-up)", len(uppers[1].delivered))
	}
	res := uppers[0].done
	if len(res) != 1 || !res[0].ok {
		t.Fatalf("send result = %+v, want success", res)
	}
	_ = start
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	cfg := DefaultConfig()
	eng, macs, uppers := buildNet(t, 3, 5, cfg, 0)
	for i := 1; i < 3; i++ {
		uppers[i].classify = func(f *radio.Frame) Classification {
			return Classification{Decision: Deliver}
		}
	}
	f := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     radio.BroadcastID,
		Size:    30,
		Payload: noAckPayload{v: 1},
	}
	if err := macs[0].Send(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if len(uppers[i].delivered) != 1 {
			t.Fatalf("node %d delivered %d, want exactly 1 (dedup)", i, len(uppers[i].delivered))
		}
	}
	if len(uppers[0].done) != 1 || !uppers[0].done[0].ok {
		t.Fatalf("broadcast completion = %+v", uppers[0].done)
	}
}

func TestAnycastElectionLowestPrioWins(t *testing.T) {
	// Node 1 transmits; nodes 0 and 2 both qualify, with different prio.
	eng, macs, uppers := buildNet(t, 3, 5, DefaultConfig(), 0, 1, 2)
	uppers[0].classify = func(f *radio.Frame) Classification {
		return Classification{Decision: AckAndDeliver, Prio: 4}
	}
	uppers[2].classify = func(f *radio.Frame) Classification {
		return Classification{Decision: AckAndDeliver, Prio: 1}
	}
	f := &radio.Frame{Kind: radio.FrameData, Dst: radio.BroadcastID, Size: 30}
	if err := macs[1].Send(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(uppers[2].delivered) != 1 {
		t.Fatalf("winner delivered %d, want 1", len(uppers[2].delivered))
	}
	if len(uppers[0].delivered) != 0 {
		t.Fatalf("loser delivered %d, want 0 (suppressed)", len(uppers[0].delivered))
	}
	if macs[0].Stats().Suppressed == 0 {
		t.Fatal("suppression not recorded")
	}
	res := uppers[1].done
	if len(res) != 1 || !res[0].ok || res[0].acker != 2 {
		t.Fatalf("send result = %+v, want ack from node 2", res)
	}
}

func TestSendFailsWhenNoReceiver(t *testing.T) {
	cfg := DefaultConfig()
	eng, macs, uppers := buildNet(t, 2, 5, cfg, 0, 1)
	// Receiver ignores everything: stream must exhaust and fail.
	f := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}
	if err := macs[0].Send(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := uppers[0].done
	if len(res) != 1 || res[0].ok {
		t.Fatalf("send result = %+v, want failure", res)
	}
	// The stream must have retransmitted many times within the interval.
	if macs[0].Stats().FrameTx < 10 {
		t.Fatalf("FrameTx = %d, want many LPL repetitions", macs[0].Stats().FrameTx)
	}
}

func TestDeliverOncePerPacket(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	uppers[1].classify = acceptUnicast(1)
	// Two separate packets deliver twice; retransmissions of one deliver once.
	for i := 0; i < 2; i++ {
		f := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30, Payload: i}
		if err := macs[0].Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(uppers[1].delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(uppers[1].delivered))
	}
}

func TestQueueProcessedInOrder(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	uppers[1].classify = acceptUnicast(1)
	for i := 0; i < 5; i++ {
		f := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30, Payload: i}
		if err := macs[0].Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(uppers[1].delivered) != 5 {
		t.Fatalf("delivered %d, want 5", len(uppers[1].delivered))
	}
	for i, f := range uppers[1].delivered {
		if f.Payload.(int) != i {
			t.Fatalf("out of order delivery: %v", uppers[1].delivered)
		}
	}
}

func TestQueueFull(t *testing.T) {
	_, macs, _ := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	var err error
	for i := 0; i < sendQueueCap+2; i++ {
		err = macs[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30})
		if err != nil {
			break
		}
	}
	if err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestIdleDutyCycleLow(t *testing.T) {
	eng, macs, _ := buildNet(t, 4, 5, DefaultConfig())
	if err := eng.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, m := range macs {
		dc := m.DutyCycle()
		if dc > 0.10 {
			t.Fatalf("node %d idle duty cycle %.3f, want < 0.10", i, dc)
		}
		if dc <= 0 {
			t.Fatalf("node %d never woke", i)
		}
	}
}

func TestAlwaysOnDutyCycle(t *testing.T) {
	eng, macs, _ := buildNet(t, 2, 5, DefaultConfig(), 0)
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if dc := macs[0].DutyCycle(); dc < 0.99 {
		t.Fatalf("always-on duty cycle %.3f, want ~1", dc)
	}
}

func TestStopPowersDown(t *testing.T) {
	eng, macs, _ := buildNet(t, 2, 5, DefaultConfig(), 0)
	eng.Schedule(time.Second, func() { macs[0].Stop() })
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	on := macs[0].radio.OnTime()
	if on > 1100*time.Millisecond {
		t.Fatalf("radio on %v after Stop at 1s", on)
	}
}

func TestBroadcastLatencyUnderWakeInterval(t *testing.T) {
	// An LPL broadcast must reach a duty-cycled neighbor within roughly one
	// wake interval.
	cfg := DefaultConfig()
	eng, macs, uppers := buildNet(t, 2, 5, cfg, 0)
	uppers[1].classify = func(f *radio.Frame) Classification {
		return Classification{Decision: Deliver}
	}
	var sentAt, gotAt time.Duration
	eng.Schedule(100*time.Millisecond, func() {
		sentAt = eng.Now()
		f := &radio.Frame{
			Kind:    radio.FrameData,
			Dst:     radio.BroadcastID,
			Size:    30,
			Payload: noAckPayload{},
		}
		if err := macs[0].Send(f); err != nil {
			t.Fatal(err)
		}
		// Poll for delivery time.
		var poll func()
		poll = func() {
			if gotAt == 0 && len(uppers[1].delivered) > 0 {
				gotAt = eng.Now()
				return
			}
			if gotAt == 0 {
				eng.Schedule(time.Millisecond, poll)
			}
		}
		poll()
	})
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(uppers[1].delivered) != 1 {
		t.Fatal("broadcast not delivered")
	}
	if lat := gotAt - sentAt; lat > cfg.WakeInterval+cfg.StreamSlack {
		t.Fatalf("broadcast latency %v exceeds one LPL round", lat)
	}
}

func TestSendAssignsSeqAndSrc(t *testing.T) {
	_, macs, _ := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	f1 := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}
	f2 := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}
	if err := macs[0].Send(f1); err != nil {
		t.Fatal(err)
	}
	if err := macs[0].Send(f2); err != nil {
		t.Fatal(err)
	}
	if f1.Src != 0 || f2.Src != 0 {
		t.Fatal("Src not assigned")
	}
	if f1.Seq == f2.Seq {
		t.Fatal("Seq not unique per send")
	}
}
