// Package mac implements the link layer used by every protocol in this
// repository: CSMA/CA with clear-channel assessment, BoX-MAC-2-style
// low-power listening (LPL) duty cycling, link-layer acknowledgements, and
// anycast acknowledgement election with priority slots — the mechanism
// TeleAdjusting's opportunistic forwarding rides on (the awake neighbor
// with the most routing progress acks first and suppresses the others).
package mac

import (
	"errors"
	"math/rand/v2"
	"time"

	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/telemetry"
)

// Decision tells the MAC what to do with a received data frame.
type Decision uint8

// Classification decisions.
const (
	// Ignore drops the frame silently.
	Ignore Decision = iota + 1
	// Deliver passes the frame up without acknowledging (broadcasts).
	Deliver
	// AckAndDeliver acknowledges after the priority slot, then delivers.
	AckAndDeliver
)

// Classification is the upper layer's verdict on an overheard frame.
type Classification struct {
	Decision Decision
	// Prio orders contending anycast receivers: lower values ack earlier
	// and win the election. Clamped to [0, MaxAckSlots-1].
	Prio int
}

// Upper is the protocol layer above the MAC.
type Upper interface {
	// Classify inspects a decoded data frame and decides acceptance. It is
	// called once per link-layer packet (retransmissions of the same
	// (src,seq) reuse the first verdict).
	Classify(f *radio.Frame) Classification
	// Deliver hands an accepted frame up, exactly once per (src,seq)
	// within the dedup window.
	Deliver(f *radio.Frame)
	// OnSendDone reports the fate of a Send: for acked unicast/anycast,
	// acker is the acknowledging node; ok is false when the LPL round
	// ended unacknowledged. Broadcasts always complete with ok=true and
	// acker=BroadcastID.
	OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool)
}

// Config holds MAC timing parameters.
type Config struct {
	// WakeInterval is the LPL wake-up period (paper: 512 ms).
	WakeInterval time.Duration
	// ProbeSamples CCA samples spaced ProbeSpacing apart form the wake-up
	// channel probe.
	ProbeSamples int
	ProbeSpacing time.Duration
	// IdleSleepAfter is how long an awake radio must observe a quiet
	// channel (and no reception in progress) before sleeping again.
	IdleSleepAfter time.Duration
	// IdleCheckEvery is the polling period for the idle check.
	IdleCheckEvery time.Duration
	// AckTurnaround is the base RX→TX turnaround before an ack.
	AckTurnaround time.Duration
	// AckSlot is the per-priority ack election slot width.
	AckSlot time.Duration
	// MaxAckSlots bounds the election (prio clamps to MaxAckSlots-1).
	MaxAckSlots int
	// AckGuard pads the sender's ack wait beyond the last slot.
	AckGuard time.Duration
	// BroadcastGap separates the repeated copies of an LPL broadcast
	// stream. It must be wide enough for a neighbor's CSMA (CCA sample +
	// backoff) to inject a unicast frame, or broadcast streams starve all
	// unicast traffic around them.
	BroadcastGap time.Duration
	// CSMA backoff window.
	BackoffMin, BackoffMax time.Duration
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// StreamSlack extends the LPL streaming deadline beyond WakeInterval.
	StreamSlack time.Duration
	// SleepAfterRx returns to sleep right after a received frame has been
	// handled (BoX-MAC-2's early-sleep optimization): the rest of an LPL
	// stream addressed elsewhere is not worth listening to.
	SleepAfterRx bool
	// AlwaysOn disables duty cycling (typical for the sink).
	AlwaysOn bool
	// DedupWindow is how long (src,seq) reception state is remembered.
	DedupWindow time.Duration
}

// DefaultConfig returns the paper's LPL configuration (512 ms wake-up).
func DefaultConfig() Config {
	return Config{
		WakeInterval:   512 * time.Millisecond,
		ProbeSamples:   5,
		ProbeSpacing:   3 * time.Millisecond,
		IdleSleepAfter: 24 * time.Millisecond,
		IdleCheckEvery: 6 * time.Millisecond,
		AckTurnaround:  300 * time.Microsecond,
		AckSlot:        600 * time.Microsecond,
		MaxAckSlots:    8,
		AckGuard:       500 * time.Microsecond,
		BroadcastGap:   8 * time.Millisecond,
		BackoffMin:     320 * time.Microsecond,
		BackoffMax:     2560 * time.Microsecond,
		TxPowerDBm:     0,
		StreamSlack:    64 * time.Millisecond,
		SleepAfterRx:   true,
		DedupWindow:    2 * 512 * time.Millisecond,
	}
}

// ErrQueueFull is returned by Send when too many packets are pending.
var ErrQueueFull = errors.New("mac: send queue full")

// ErrDead is returned by Send after Kill.
var ErrDead = errors.New("mac: node is dead")

const sendQueueCap = 32

// Stats aggregates MAC-level statistics.
type Stats struct {
	SendsStarted   uint64
	SendsAcked     uint64
	SendsFailed    uint64
	SendsBroadcast uint64
	// FrameTx counts individual frame transmissions (LPL streaming
	// repetitions included).
	FrameTx uint64
	// AcksSent counts acknowledgement transmissions.
	AcksSent uint64
	// Suppressed counts anycast acceptances cancelled because a
	// better-placed neighbor acked first.
	Suppressed uint64
}

// rxState remembers the fate of a link-layer packet (src,seq).
type rxState struct {
	at        time.Duration
	class     Classification
	delivered bool
	// suppressed means another node won the anycast election.
	suppressed bool
	ackPending sim.EventRef
	frame      *radio.Frame
}

type outstanding struct {
	frame    *radio.Frame
	deadline time.Duration
	attempts int
}

// MAC is one node's link layer instance.
type MAC struct {
	eng   *sim.Engine
	radio *radio.Radio
	cfg   Config
	rng   *rand.Rand
	upper Upper

	queue []*radio.Frame
	cur   *outstanding
	// curBuf backs cur so starting a send never allocates; cur is nil or
	// points at curBuf.
	curBuf outstanding
	seq    uint32

	awakeForTx  bool
	probeEvents []sim.EventRef
	// probeIdx/probeFound track the in-progress wake-up probe sequence;
	// probeFn/csmaFn/electFn are bound once at construction so the LPL
	// wake-up, CSMA backoff, and ack-election hot paths schedule without
	// allocating per-event closures (all three were top allocation sites
	// on the recorded profiles).
	probeIdx   int
	probeFound bool
	probeFn    func()
	csmaFn     func()
	electFn    func(any)
	idleTimer  *sim.Timer
	ackWait    *sim.Timer
	wakeTicker *sim.Ticker

	rx map[rxKey]*rxState

	dead  bool
	stats Stats

	// Telemetry (optional; a nil bus is valid and near-free).
	bus        *telemetry.Bus
	cancelling bool
}

type rxKey struct {
	src radio.NodeID
	seq uint32
}

var _ radio.Handler = (*MAC)(nil)

// New creates a MAC bound to a radio. Call Start to begin duty cycling.
func New(eng *sim.Engine, r *radio.Radio, cfg Config, rng *rand.Rand, upper Upper) *MAC {
	m := &MAC{
		eng:   eng,
		radio: r,
		cfg:   cfg,
		rng:   rng,
		upper: upper,
		rx:    make(map[rxKey]*rxState),
	}
	r.SetHandler(m)
	m.probeFn = m.probeStep
	m.csmaFn = m.csmaAttempt
	m.electFn = m.runElection
	m.idleTimer = sim.NewTimer(eng, m.idleCheck)
	m.ackWait = sim.NewTimer(eng, m.onAckTimeout)
	return m
}

// ID returns the node id.
func (m *MAC) ID() radio.NodeID { return m.radio.ID() }

// SetUpper installs (or replaces) the protocol layer above the MAC; used
// when the upper layer (e.g. the node runtime) is constructed after the
// MAC.
func (m *MAC) SetUpper(u Upper) { m.upper = u }

// Stats returns a copy of the MAC statistics.
func (m *MAC) Stats() Stats { return m.stats }

// SetTelemetry binds the MAC statistics counters into the registry and
// attaches the event bus for send-lifecycle emissions. Both may be nil.
func (m *MAC) SetTelemetry(reg *telemetry.Registry, bus *telemetry.Bus) {
	m.bus = bus
	id := m.radio.ID()
	reg.BindCounter(telemetry.LayerMAC, id, "sends-started", &m.stats.SendsStarted)
	reg.BindCounter(telemetry.LayerMAC, id, "sends-acked", &m.stats.SendsAcked)
	reg.BindCounter(telemetry.LayerMAC, id, "sends-failed", &m.stats.SendsFailed)
	reg.BindCounter(telemetry.LayerMAC, id, "sends-broadcast", &m.stats.SendsBroadcast)
	reg.BindCounter(telemetry.LayerMAC, id, "frame-tx", &m.stats.FrameTx)
	reg.BindCounter(telemetry.LayerMAC, id, "acks-sent", &m.stats.AcksSent)
	reg.BindCounter(telemetry.LayerMAC, id, "suppressed", &m.stats.Suppressed)
}

// emitMac publishes a MAC-layer event for the frame when anyone listens.
// peer is the counterpart node (the acker for send outcomes, the election
// winner for suppressions; BroadcastID when n/a).
func (m *MAC) emitMac(kind telemetry.Kind, f *radio.Frame, peer radio.NodeID, note string) {
	if !m.bus.Wants(telemetry.LayerMAC) {
		return
	}
	ev := telemetry.Event{Layer: telemetry.LayerMAC, Kind: kind, Node: m.radio.ID(),
		Src: peer, Note: note}
	if f != nil {
		ev.Dst, ev.Seq = f.Dst, f.Seq
		if ids, ok := f.Payload.(telemetry.OpIdentified); ok {
			ev.Op, ev.UID = ids.TelemetryIDs()
		}
	}
	m.bus.Emit(ev)
}

// Dead reports whether Kill has been called.
func (m *MAC) Dead() bool { return m.dead }

// Config returns the MAC configuration.
func (m *MAC) Config() Config { return m.cfg }

// Start begins duty cycling (or powers the radio permanently for AlwaysOn
// nodes). The first wake-up happens at a random phase within WakeInterval.
func (m *MAC) Start() {
	if m.cfg.AlwaysOn {
		m.radio.SetOn(true)
		return
	}
	m.wakeTicker = sim.NewTicker(m.eng, m.cfg.WakeInterval, m.wakeUp)
	phase := time.Duration(m.rng.Int64N(int64(m.cfg.WakeInterval)))
	m.wakeTicker.StartWithOffset(phase)
}

// Kill models node failure: all MAC activity ceases, the radio powers
// down immediately (even mid-transmission), and all future Sends are
// refused — a stray timer in some protocol must not resurrect the node.
func (m *MAC) Kill() {
	m.Stop()
	m.dead = true
	m.cur = nil
	m.queue = nil
	// Cancel pending ack elections eagerly: without this, a dead node's
	// election events linger in the heap and fire later, delivering
	// frames to a protocol stack that is supposed to be gone.
	for _, st := range m.rx {
		st.ackPending.Cancel()
	}
	m.rx = make(map[rxKey]*rxState)
	m.radio.ForceOff()
}

// Stop halts duty cycling and powers the radio down.
func (m *MAC) Stop() {
	if m.wakeTicker != nil {
		m.wakeTicker.Stop()
	}
	m.idleTimer.Stop()
	m.ackWait.Stop()
	for _, ev := range m.probeEvents {
		ev.Cancel()
	}
	m.probeEvents = nil
	if m.radio.On() && !m.radio.Transmitting() {
		m.radio.SetOn(false)
	}
}

// DutyCycle returns the fraction of elapsed time the radio has been on.
func (m *MAC) DutyCycle() float64 {
	now := m.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(m.radio.OnTime()) / float64(now)
}

// RadioOnTime returns the cumulative radio on-time (for windowed
// duty-cycle measurements: snapshot before and after a phase).
func (m *MAC) RadioOnTime() time.Duration { return m.radio.OnTime() }

// --- Sending ---

// Send enqueues a frame. Src and Seq are assigned by the MAC. Unicast and
// anycast (Dst=BroadcastID with AckAndDeliver receivers) frames are
// LPL-streamed until acked or the wake interval is covered; broadcast
// frames marked NoAck are streamed for the full interval.
func (m *MAC) Send(f *radio.Frame) error {
	if m.dead {
		return ErrDead
	}
	if len(m.queue) >= sendQueueCap {
		return ErrQueueFull
	}
	f.Src = m.radio.ID()
	m.seq++
	f.Seq = m.seq
	m.queue = append(m.queue, f)
	m.kick()
	return nil
}

// QueueLen returns the number of frames waiting (excluding in-flight).
func (m *MAC) QueueLen() int { return len(m.queue) }

// CancelSend completes an in-flight or queued send early with a successful
// outcome and no acker — used when the upper layer learns out of band that
// the packet has already progressed (implicit acknowledgement by
// overhearing the next hop's forward). It reports whether the frame was
// found.
func (m *MAC) CancelSend(f *radio.Frame) bool {
	if m.cur != nil && m.cur.frame == f {
		m.cancelling = true
		m.finishSend(radio.BroadcastID, true)
		m.cancelling = false
		return true
	}
	for i, q := range m.queue {
		if q == f {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.emitMac(telemetry.KindMacSendCancelled, f, radio.BroadcastID, "dequeued")
			if m.upper != nil {
				m.upper.OnSendDone(f, radio.BroadcastID, true)
			}
			return true
		}
	}
	return false
}

// Busy reports whether a send is in progress.
func (m *MAC) Busy() bool { return m.cur != nil }

func (m *MAC) kick() {
	if m.cur != nil || len(m.queue) == 0 {
		return
	}
	f := m.queue[0]
	m.queue = m.queue[1:]
	m.curBuf = outstanding{
		frame:    f,
		deadline: m.eng.Now() + m.cfg.WakeInterval + m.cfg.StreamSlack,
	}
	m.cur = &m.curBuf
	m.stats.SendsStarted++
	m.emitMac(telemetry.KindMacSendStart, f, radio.BroadcastID, "")
	m.awakeForTx = true
	if !m.radio.On() {
		m.radio.SetOn(true)
	}
	m.csmaAttempt()
}

// csmaAttempt samples CCA and either transmits or backs off.
func (m *MAC) csmaAttempt() {
	cur := m.cur
	if m.dead || cur == nil {
		return
	}
	if m.eng.Now() >= cur.deadline {
		m.finishSend(radio.BroadcastID, cur.frame.Dst == radio.BroadcastID && !m.expectsAck(cur.frame))
		return
	}
	if m.radio.CCABusy() || m.radio.Transmitting() {
		m.backoff()
		return
	}
	if err := m.radio.Transmit(cur.frame, m.cfg.TxPowerDBm); err != nil {
		m.backoff()
		return
	}
	if cur.attempts == 0 {
		// Anchor the stream deadline at the first copy actually sent, so
		// CSMA deferral (a neighbor's stream occupying the channel) does
		// not eat into the wake-interval coverage the stream must provide.
		cur.deadline = m.eng.Now() + m.cfg.WakeInterval + m.cfg.StreamSlack
	}
	cur.attempts++
	m.stats.FrameTx++
}

func (m *MAC) backoff() {
	d := m.cfg.BackoffMin +
		time.Duration(m.rng.Int64N(int64(m.cfg.BackoffMax-m.cfg.BackoffMin)+1))
	m.eng.Schedule(d, m.csmaFn)
}

// expectsAck reports whether the frame solicits link-layer acks. All data
// frames do except pure broadcasts (beacons, dissemination): those are
// identified by the NoAck marker interface on the payload.
func (m *MAC) expectsAck(f *radio.Frame) bool {
	if f.Dst != radio.BroadcastID {
		return true
	}
	type noAcker interface{ NoAck() bool }
	if p, ok := f.Payload.(noAcker); ok && p.NoAck() {
		return false
	}
	return true
}

// OnTxDone implements radio.Handler.
func (m *MAC) OnTxDone() {
	cur := m.cur
	if cur == nil {
		// An ack or stray transmission finished.
		m.maybeSleepSoon()
		return
	}
	if m.expectsAck(cur.frame) {
		wait := m.cfg.AckTurnaround +
			time.Duration(m.cfg.MaxAckSlots)*m.cfg.AckSlot +
			m.cfg.AckGuard + m.ackAirtime()
		m.ackWait.Start(wait)
		return
	}
	// Pure broadcast: stream until the deadline, leaving gaps wide enough
	// for neighbors' unicast CSMA to interleave.
	if m.eng.Now() >= cur.deadline {
		m.finishSend(radio.BroadcastID, true)
		return
	}
	m.eng.Schedule(m.cfg.BroadcastGap, m.csmaFn)
}

func (m *MAC) ackAirtime() time.Duration {
	return m.radio.Params().Airtime(5)
}

func (m *MAC) onAckTimeout() {
	cur := m.cur
	if cur == nil {
		return
	}
	if m.eng.Now() >= cur.deadline {
		m.finishSend(radio.BroadcastID, false)
		return
	}
	m.csmaAttempt()
}

func (m *MAC) finishSend(acker radio.NodeID, ok bool) {
	cur := m.cur
	m.cur = nil
	m.ackWait.Stop()
	m.awakeForTx = len(m.queue) > 0
	if ok {
		if m.expectsAck(cur.frame) {
			m.stats.SendsAcked++
		} else {
			m.stats.SendsBroadcast++
		}
	} else {
		m.stats.SendsFailed++
	}
	if m.bus.Wants(telemetry.LayerMAC) {
		kind := telemetry.KindMacSendFailed
		switch {
		case m.cancelling:
			kind = telemetry.KindMacSendCancelled
		case ok && m.expectsAck(cur.frame):
			kind = telemetry.KindMacSendAcked
		case ok:
			kind = telemetry.KindMacSendBroadcastDone
		}
		m.emitMac(kind, cur.frame, acker, "")
	}
	up := m.upper
	frame := cur.frame
	m.kick()
	if m.cur == nil {
		m.maybeSleepSoon()
	}
	if up != nil {
		up.OnSendDone(frame, acker, ok)
	}
}

// --- Receiving ---

// OnFrame implements radio.Handler.
func (m *MAC) OnFrame(f *radio.Frame) {
	m.gcRxStates()
	switch f.Kind {
	case radio.FrameAck:
		m.onAck(f)
	case radio.FrameData:
		m.onData(f)
	}
	// Receiving traffic counts as channel activity: defer sleeping.
	m.bumpIdle()
}

func (m *MAC) onAck(f *radio.Frame) {
	// Is this ack for my in-flight send?
	if cur := m.cur; cur != nil && f.AckSrc == m.radio.ID() && f.AckSeq == cur.frame.Seq {
		m.finishSend(f.Src, true)
		return
	}
	// Ack for someone else's frame: suppress my pending election entry.
	key := rxKey{src: f.AckSrc, seq: f.AckSeq}
	if st, ok := m.rx[key]; ok && st.ackPending.Pending() {
		st.ackPending.Cancel()
		st.ackPending = sim.EventRef{}
		st.suppressed = true
		m.stats.Suppressed++
		m.emitMac(telemetry.KindMacSuppressed, st.frame, f.Src, "peer acked first")
	}
}

func (m *MAC) onData(f *radio.Frame) {
	key := rxKey{src: f.Src, seq: f.Seq}
	st, seen := m.rx[key]
	if seen && !st.ackPending.Pending() && m.eng.Now()-st.at > m.cfg.DedupWindow {
		// The dedup window has lapsed, so this is not a retransmission but
		// a reuse of the (src,seq) pair — typically a rebooted neighbor
		// restarting its sequence counter at 1. Forget the stale verdict
		// and classify afresh; without this, every frame a rebooted node
		// sends is swallowed as a duplicate until its counter climbs past
		// its pre-crash value, and the node can never re-attach.
		delete(m.rx, key)
		st, seen = nil, false
	}
	if seen {
		st.at = m.eng.Now()
		switch {
		case st.suppressed:
			// Someone else owns this packet; stay quiet.
			m.earlySleep()
			return
		case st.class.Decision == AckAndDeliver && st.delivered:
			// Sender missed our ack: re-ack (unless another ack is already
			// on the air), don't re-deliver.
			if !m.radio.CCABusy() {
				m.sendAck(f)
			}
			return
		case st.ackPending.Pending():
			// Election in progress from an earlier copy; let it play out.
			return
		default:
			m.earlySleep()
			return
		}
	}
	class := Classification{Decision: Ignore}
	if m.upper != nil {
		class = m.upper.Classify(f)
	}
	st = &rxState{at: m.eng.Now(), class: class, frame: f}
	m.rx[key] = st
	switch class.Decision {
	case Deliver:
		st.delivered = true
		if m.upper != nil {
			m.upper.Deliver(f)
		}
		m.earlySleep()
	case AckAndDeliver:
		prio := class.Prio
		if prio < 0 {
			prio = 0
		}
		if prio >= m.cfg.MaxAckSlots {
			prio = m.cfg.MaxAckSlots - 1
		}
		// Randomize within the slot so equal-priority contenders
		// serialize; whoever fires second sees the channel busy and
		// yields.
		jitter := time.Duration(m.rng.Int64N(int64(m.cfg.AckSlot / 3)))
		delay := m.cfg.AckTurnaround + time.Duration(prio)*m.cfg.AckSlot + jitter
		st.ackPending = m.eng.ScheduleArg(delay, m.electFn, st)
	default:
		// Not for us: the rest of this stream is someone else's.
		m.earlySleep()
	}
}

// runElection is the ack-election firing for one received packet: the
// pre-bound target of the ScheduleArg call in onData (an equivalent
// closure would allocate per received packet).
func (m *MAC) runElection(a any) {
	st := a.(*rxState)
	f := st.frame
	st.ackPending = sim.EventRef{}
	if m.radio.CCABusy() || m.radio.State() == radio.StateReceiving {
		// Another contender's ack (or other traffic) owns the
		// channel: yield the election.
		st.suppressed = true
		m.stats.Suppressed++
		m.emitMac(telemetry.KindMacSuppressed, f, radio.BroadcastID, "election yield")
		m.earlySleep()
		return
	}
	m.sendAck(f)
	st.delivered = true
	if m.upper != nil {
		m.upper.Deliver(f)
	}
	m.earlySleep()
}

// earlySleep returns to sleep immediately after handling a frame
// (SleepAfterRx): a short grace period lets an in-flight ack transmission
// finish first.
func (m *MAC) earlySleep() {
	if !m.cfg.SleepAfterRx || m.cfg.AlwaysOn {
		return
	}
	if !m.radio.On() || m.awakeForTx || m.cur != nil || m.hasPendingAcks() {
		return
	}
	if m.radio.Transmitting() {
		m.idleTimer.Start(m.cfg.IdleCheckEvery)
		return
	}
	m.sleep()
}

// sendAck transmits an acknowledgement immediately (acks skip CSMA: they
// own their election slot).
func (m *MAC) sendAck(f *radio.Frame) {
	if !m.radio.On() || m.radio.Transmitting() {
		return
	}
	ack := radio.NewAck(m.radio.ID(), f)
	if err := m.radio.Transmit(ack, m.cfg.TxPowerDBm); err == nil {
		m.stats.AcksSent++
	}
}

func (m *MAC) gcRxStates() {
	if len(m.rx) < 256 {
		return
	}
	cutoff := m.eng.Now() - m.cfg.DedupWindow
	for k, st := range m.rx {
		if st.at < cutoff && !st.ackPending.Pending() {
			delete(m.rx, k)
		}
	}
}

// --- Duty cycling ---

func (m *MAC) wakeUp() {
	if m.radio.On() {
		return // already awake (sending or lingering)
	}
	m.radio.SetOn(true)
	m.probeEvents = m.probeEvents[:0]
	m.probeIdx = 0
	m.probeFound = false
	for i := 0; i < m.cfg.ProbeSamples; i++ {
		ev := m.eng.Schedule(time.Duration(i)*m.cfg.ProbeSpacing, m.probeFn)
		m.probeEvents = append(m.probeEvents, ev)
	}
}

// probeStep is one CCA sample of the wake-up probe. The samples fire in
// scheduling order, so the step index is tracked on the MAC rather than
// captured per-event (wakeUp used to allocate one closure per sample).
func (m *MAC) probeStep() {
	i := m.probeIdx
	m.probeIdx++
	if m.probeFound || !m.radio.On() {
		return
	}
	if m.radio.CCABusy() || m.radio.State() == radio.StateReceiving {
		m.probeFound = true
		m.bumpIdle()
		return
	}
	if i == m.cfg.ProbeSamples-1 && !m.awakeForTx && !m.idleTimer.Pending() {
		// Quiet channel: end of probe, go back to sleep.
		m.sleep()
	}
}

// bumpIdle restarts the idle countdown that eventually puts the radio to
// sleep after activity ends.
func (m *MAC) bumpIdle() {
	if m.cfg.AlwaysOn {
		return
	}
	m.idleTimer.Start(m.cfg.IdleSleepAfter)
}

func (m *MAC) idleCheck() {
	if m.cfg.AlwaysOn || !m.radio.On() {
		return
	}
	if m.awakeForTx || m.cur != nil ||
		m.radio.Transmitting() || m.radio.State() == radio.StateReceiving ||
		m.radio.CCABusy() || m.hasPendingAcks() {
		m.idleTimer.Start(m.cfg.IdleCheckEvery)
		return
	}
	m.sleep()
}

func (m *MAC) hasPendingAcks() bool {
	for _, st := range m.rx {
		if st.ackPending.Pending() {
			return true
		}
	}
	return false
}

func (m *MAC) maybeSleepSoon() {
	if m.cfg.AlwaysOn || !m.radio.On() || m.awakeForTx || m.cur != nil {
		return
	}
	if !m.idleTimer.Pending() {
		m.idleTimer.Start(m.cfg.IdleCheckEvery)
	}
}

func (m *MAC) sleep() {
	if m.radio.Transmitting() {
		m.idleTimer.Start(m.cfg.IdleCheckEvery)
		return
	}
	for _, ev := range m.probeEvents {
		ev.Cancel()
	}
	m.probeEvents = m.probeEvents[:0]
	m.idleTimer.Stop()
	m.radio.SetOn(false)
}
