package mac

import (
	"testing"
	"time"

	"teleadjust/internal/radio"
)

func TestCancelSendInFlight(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	// Receiver never acks (ignores everything): the stream would fail
	// after the full round, but an implicit ack cancels it early.
	f := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}
	if err := macs[0].Send(f); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(100*time.Millisecond, func() {
		if !macs[0].CancelSend(f) {
			t.Error("CancelSend did not find the in-flight frame")
		}
	})
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := uppers[0].done
	if len(res) != 1 || !res[0].ok {
		t.Fatalf("cancelled send result = %+v, want success", res)
	}
	if res[0].acker != radio.BroadcastID {
		t.Fatalf("cancelled send acker = %v, want BroadcastID", res[0].acker)
	}
	// The stream must have stopped well before the full LPL round.
	if tx := macs[0].Stats().FrameTx; tx > 30 {
		t.Fatalf("stream continued after cancel: %d frames", tx)
	}
}

func TestCancelSendQueued(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	f1 := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}
	f2 := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}
	if err := macs[0].Send(f1); err != nil {
		t.Fatal(err)
	}
	if err := macs[0].Send(f2); err != nil {
		t.Fatal(err)
	}
	if !macs[0].CancelSend(f2) {
		t.Fatal("queued frame not cancellable")
	}
	if macs[0].QueueLen() != 0 {
		t.Fatalf("queue len = %d after cancel", macs[0].QueueLen())
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Both frames resolved: f2 via cancel (ok), f1 via stream exhaustion.
	if len(uppers[0].done) != 2 {
		t.Fatalf("completions = %d, want 2", len(uppers[0].done))
	}
}

func TestCancelSendUnknownFrame(t *testing.T) {
	_, macs, _ := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	if macs[0].CancelSend(&radio.Frame{}) {
		t.Fatal("cancelled a frame that was never sent")
	}
}

func TestAckYieldOnBusyChannel(t *testing.T) {
	// Three contenders with the SAME priority: the sub-slot jitter plus
	// the CCA check at ack time must elect exactly one deliverer.
	eng, macs, uppers := buildNet(t, 4, 5, DefaultConfig(), 0, 1, 2, 3)
	for i := 1; i < 4; i++ {
		uppers[i].classify = func(f *radio.Frame) Classification {
			return Classification{Decision: AckAndDeliver, Prio: 3}
		}
	}
	f := &radio.Frame{Kind: radio.FrameData, Dst: radio.BroadcastID, Size: 30}
	if err := macs[0].Send(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 1; i < 4; i++ {
		delivered += len(uppers[i].delivered)
	}
	if delivered == 0 {
		t.Fatal("nobody won the same-priority election")
	}
	if delivered > 2 {
		t.Fatalf("%d same-priority contenders delivered; election too leaky", delivered)
	}
	if len(uppers[0].done) != 1 || !uppers[0].done[0].ok {
		t.Fatalf("sender outcome %+v", uppers[0].done)
	}
}

func TestBroadcastGapAdmitsUnicast(t *testing.T) {
	// While node 0 streams a long broadcast, node 2 must still complete a
	// unicast to node 1 by squeezing into the inter-copy gaps.
	cfg := DefaultConfig()
	eng, macs, uppers := buildNet(t, 3, 5, cfg, 0, 1, 2)
	uppers[1].classify = acceptUnicast(1)
	bro := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     radio.BroadcastID,
		Size:    30,
		Payload: noAckPayload{},
	}
	if err := macs[0].Send(bro); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(50*time.Millisecond, func() {
		uni := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30, Payload: "hi"}
		if err := macs[2].Send(uni); err != nil {
			t.Fatal(err)
		}
	})
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(uppers[1].delivered) != 1 {
		t.Fatal("unicast starved by concurrent broadcast stream")
	}
	res := uppers[2].done
	if len(res) != 1 || !res[0].ok {
		t.Fatalf("unicast outcome %+v", res)
	}
}

func TestSleepAfterRxSavesEnergy(t *testing.T) {
	// Node 2 overhears a long unicast stream addressed to node 1; with
	// SleepAfterRx it naps through it, without it stays awake.
	duty := func(sleepAfterRx bool) float64 {
		cfg := DefaultConfig()
		cfg.SleepAfterRx = sleepAfterRx
		eng, macs, uppers := buildNet(t, 3, 5, cfg, 0)
		uppers[1].classify = acceptUnicast(1)
		uppers[2].classify = func(f *radio.Frame) Classification {
			return Classification{Decision: Ignore}
		}
		// A train of unicasts 0→1 keeps the channel busy.
		for i := 0; i < 6; i++ {
			f := &radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30, Payload: i}
			if err := macs[0].Send(f); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		return macs[2].DutyCycle()
	}
	with := duty(true)
	without := duty(false)
	if with >= without {
		t.Fatalf("SleepAfterRx did not reduce overhearing duty: with=%.3f without=%.3f", with, without)
	}
}

func TestKillStopsEverything(t *testing.T) {
	eng, macs, _ := buildNet(t, 2, 5, DefaultConfig(), 0)
	if err := macs[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(10*time.Millisecond, func() { macs[0].Kill() })
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if macs[0].Busy() || macs[0].QueueLen() != 0 {
		t.Fatal("MAC still active after Kill")
	}
}

func TestSendAfterKillRefused(t *testing.T) {
	eng, macs, _ := buildNet(t, 2, 5, DefaultConfig(), 0)
	macs[0].Kill()
	err := macs[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 10})
	if err != ErrDead {
		t.Fatalf("send after Kill = %v, want ErrDead", err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if macs[0].RadioOnTime() > time.Second {
		t.Fatal("dead node's radio came back on")
	}
}

// TestKillCancelsPendingAckElection reproduces the zombie-receiver bug:
// a node dies while an anycast ack election it joined is still pending.
// The election event must be cancelled eagerly — a dead node must never
// ack, deliver the frame upward, or leave events in the engine heap.
func TestKillCancelsPendingAckElection(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	// Lowest-urgency slot: the election fires ≥ 4.5 ms after reception,
	// leaving room to kill the receiver first.
	uppers[1].classify = func(f *radio.Frame) Classification {
		eng.Schedule(time.Millisecond, func() { macs[1].Kill() })
		return Classification{Decision: AckAndDeliver, Prio: 7}
	}
	if err := macs[0].Send(&radio.Frame{Kind: radio.FrameData, Dst: 1, Size: 30}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !macs[1].Dead() {
		t.Fatal("receiver not dead")
	}
	if n := macs[1].Stats().AcksSent; n != 0 {
		t.Fatalf("dead node sent %d acks", n)
	}
	if len(uppers[1].delivered) != 0 {
		t.Fatalf("dead node delivered %d frames upward", len(uppers[1].delivered))
	}
	if len(uppers[0].done) != 1 || uppers[0].done[0].ok {
		t.Fatalf("sender result = %+v, want unacked failure", uppers[0].done)
	}
	if eng.QueueLen() != 0 {
		t.Fatalf("%d events still queued after the dust settled", eng.QueueLen())
	}
}

// TestKilledNodeNeverTransmitsAgain kills a node mid-stream and verifies
// its transmit counter freezes permanently.
func TestKilledNodeNeverTransmitsAgain(t *testing.T) {
	eng, macs, uppers := buildNet(t, 2, 5, DefaultConfig(), 0, 1)
	uppers[0].classify = acceptUnicast(0)
	if err := macs[1].Send(&radio.Frame{Kind: radio.FrameData, Dst: 0, Size: 30}); err != nil {
		t.Fatal(err)
	}
	var txAtKill uint64
	eng.Schedule(200*time.Microsecond, func() {
		macs[1].Kill()
		txAtKill = macs[1].Stats().FrameTx
	})
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := macs[1].Stats().FrameTx; got != txAtKill {
		t.Fatalf("dead node kept transmitting: %d frames at kill, %d after", txAtKill, got)
	}
	if macs[1].Stats().AcksSent != 0 {
		t.Fatal("dead node acked")
	}
}
