package experiment

import (
	"bytes"
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
)

func codecStudyOpts() CodingSchemesOpts {
	return CodingSchemesOpts{
		Warmup:   2 * time.Minute,
		Packets:  6,
		Interval: 16 * time.Second,
		Drain:    30 * time.Second,
		Joins:    1,
	}
}

// goldenCodingSchemesResult is a hand-built fixture exercising every
// column of the codec-comparison report.
func goldenCodingSchemesResult() *CodingSchemesResult {
	mk := func(name string, lens []float64, churn, recodes, hdr, sends uint64,
		sent, del, skip int, conv float64) *CodecCell {
		c := &CodecCell{
			Codec: name, Converged: conv, CodeLen: &stats.Series{},
			Churn: churn, CodeChanges: recodes,
			HeaderBytes: hdr, ControlSends: sends,
			Sent: sent, Delivered: del, Skipped: skip,
		}
		for _, v := range lens {
			c.CodeLen.Add(v)
		}
		return c
	}
	return &CodingSchemesResult{
		Scenario: "golden-grid",
		Codecs: []*CodecCell{
			mk("paper", []float64{2, 3, 5, 6, 8}, 3, 12, 40, 20, 20, 19, 0, 0.99),
			mk("treeexplorer", []float64{2, 2, 4, 5, 7}, 1, 9, 34, 20, 20, 18, 1, 0.985),
			mk("huffman", []float64{1, 2, 4, 4, 6}, 5, 15, 30, 20, 20, 17, 0, 0.97),
		},
	}
}

func TestWriteCodingSchemesReportGolden(t *testing.T) {
	var sb bytes.Buffer
	WriteCodingSchemesReport(&sb, goldenCodingSchemesResult())
	checkGolden(t, "coding_schemes_report.golden", sb.Bytes())
}

func TestWriteCodingSchemesCSVGolden(t *testing.T) {
	// Two scenarios under one header: the multi-scenario CLI path
	// (-scenario a,b -study coding-schemes) writes exactly this shape.
	second := goldenCodingSchemesResult()
	second.Scenario = "golden-line"
	var sb bytes.Buffer
	if err := WriteCodingSchemesCSV(&sb, goldenCodingSchemesResult(), second); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "coding_schemes.csv.golden", sb.Bytes())
}

func TestMergeCodingSchemesResults(t *testing.T) {
	a := goldenCodingSchemesResult()
	b := goldenCodingSchemesResult()
	m := mergeCodingSchemesResults([]*CodingSchemesResult{a, b})
	if len(m.Codecs) != 3 {
		t.Fatalf("merged codec count = %d", len(m.Codecs))
	}
	c := m.Codecs[0]
	if c.Sent != 40 || c.Delivered != 38 || c.Churn != 6 || c.HeaderBytes != 80 {
		t.Fatalf("counters not summed: %+v", c)
	}
	if c.CodeLen.Count() != 10 {
		t.Fatalf("code-length samples not concatenated: %d", c.CodeLen.Count())
	}
	if c.Converged != 0.99 {
		t.Fatalf("converged not averaged: %v", c.Converged)
	}
	if mergeCodingSchemesResults(nil) != nil {
		t.Fatal("empty merge must return nil")
	}
}

// TestCodingSchemesStudySmall runs the full three-codec comparison on the
// 8-node line: every codec must converge, deliver probes, and put
// destination-code header bytes on the air. The mid-probe reboot exercises
// each codec's late-join path.
func TestCodingSchemesStudySmall(t *testing.T) {
	res, err := RunCodingSchemesStudy(smallScenario(21), core.CodecNames(), codecStudyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Codecs) != 3 {
		t.Fatalf("cells = %d, want 3", len(res.Codecs))
	}
	for i, name := range core.CodecNames() {
		c := res.Codecs[i]
		if c.Codec != name {
			t.Fatalf("cell %d codec = %q, want %q", i, c.Codec, name)
		}
		if c.Converged < 0.99 {
			t.Errorf("%s: converged %.2f on a strong line, want ~1", c.Codec, c.Converged)
		}
		if c.CodeLen.Count() != 7 {
			t.Errorf("%s: %d code-length samples, want 7", c.Codec, c.CodeLen.Count())
		}
		if c.CodeLen.Max() < 3 {
			t.Errorf("%s: max code length %.0f bits; the 7-hop tail must be deeper", c.Codec, c.CodeLen.Max())
		}
		if c.Sent != 6 {
			t.Errorf("%s: sent %d, want 6", c.Codec, c.Sent)
		}
		if c.Delivered < 3 {
			t.Errorf("%s: delivered %d of 6 with one reboot", c.Codec, c.Delivered)
		}
		if c.ControlSends == 0 || c.HeaderBytes == 0 {
			t.Errorf("%s: header cost not measured (%d sends, %d bytes)",
				c.Codec, c.ControlSends, c.HeaderBytes)
		}
		if hb := c.HeaderBytesPerSend(); hb < 1 || hb > 33 {
			t.Errorf("%s: %.2f header bytes per send implausible", c.Codec, hb)
		}
	}
	if _, err := RunCodingSchemesStudy(smallScenario(21), nil, codecStudyOpts()); err == nil {
		t.Fatal("empty codec list accepted")
	}
	if _, err := RunCodingSchemesStudy(smallScenario(21), []string{"bogus"}, codecStudyOpts()); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestCodingSchemesParallelReplication extends the Replicator determinism
// contract to the codec study: a multi-worker merge must render
// byte-identically to the serial merge.
func TestCodingSchemesParallelReplication(t *testing.T) {
	seeds := DeriveSeeds(17, 2)
	opts := CodingSchemesOpts{
		Warmup:   90 * time.Second,
		Packets:  3,
		Interval: 16 * time.Second,
		Drain:    20 * time.Second,
	}
	codecs := []string{"paper", "treeexplorer"}
	serial, err := Replicator{Workers: 1}.CodingSchemesStudy(smallScenario, codecs, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Workers: 2}.CodingSchemesStudy(smallScenario, codecs, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var sb, pb bytes.Buffer
	WriteCodingSchemesReport(&sb, serial)
	WriteCodingSchemesReport(&pb, parallel)
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("parallel codec merge diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			sb.String(), pb.String())
	}
	if got := serial.Codecs[0].Sent; got != 3*len(seeds) {
		t.Fatalf("merged sent = %d, want %d", got, 3*len(seeds))
	}
	if _, err := (Replicator{}).CodingSchemesStudy(smallScenario, codecs, opts, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

// TestPaperCodecTraceByteIdentical is the refactor's regression bar: an
// explicit Codec="paper" selection must produce the exact same telemetry
// trace as the pre-refactor default (Codec unset), under both serial and
// parallel replication.
func TestPaperCodecTraceByteIdentical(t *testing.T) {
	seeds := DeriveSeeds(19, 2)
	opts := replicateOpts()
	opts.Trace = true
	withCodec := func(seed uint64) Scenario {
		s := smallScenario(seed)
		s.Codec = "paper"
		return s
	}
	base, err := Replicator{Workers: 1}.ControlStudy(smallScenario, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Replicator{Workers: 2}.ControlStudy(withCodec, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Events) == 0 {
		t.Fatal("tracing enabled but no events collected")
	}
	var bb, pb bytes.Buffer
	if err := telemetry.WriteJSONL(&bb, base.Events); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(&pb, paper.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bb.Bytes(), pb.Bytes()) {
		t.Fatalf("codec=paper trace diverged from the default: %d vs %d bytes", bb.Len(), pb.Len())
	}
}

// TestPaperCodecTraceByteIdenticalRefGrid repeats the byte-identity bar on
// the 100-node reference grid. Skipped under -short.
func TestPaperCodecTraceByteIdenticalRefGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("long regression test")
	}
	opts := ControlOpts{
		Warmup:   3 * time.Minute,
		Packets:  4,
		Interval: 15 * time.Second,
		Drain:    20 * time.Second,
		Trace:    true,
	}
	build := func(codec string) func(seed uint64) Scenario {
		return func(seed uint64) Scenario {
			s := ReferenceGrid(seed)
			s.Codec = codec
			s.TuneControlTimeouts(14 * time.Second)
			return s
		}
	}
	seeds := []uint64{1}
	base, err := Replicator{Workers: 1}.ControlStudy(build(""), ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Replicator{Workers: 1}.ControlStudy(build("paper"), ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var bb, pb bytes.Buffer
	if err := telemetry.WriteJSONL(&bb, base.Events); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(&pb, paper.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bb.Bytes(), pb.Bytes()) {
		t.Fatalf("codec=paper ref-grid trace diverged from the default: %d vs %d bytes", bb.Len(), pb.Len())
	}
}

// TestBuildRejectsUnknownCodec pins the Config.Codec resolution error.
func TestBuildRejectsUnknownCodec(t *testing.T) {
	s := smallScenario(22)
	s.Codec = "morse"
	if _, err := Build(s.config(ProtoTeleAdjust)); err == nil {
		t.Fatal("unknown codec accepted by Build")
	}
}
