package experiment

import (
	"fmt"
	"io"
	"math"

	"teleadjust/internal/radio"
)

// WriteTopologySVG renders the deployment, the converged collection tree
// (parent edges) and, when TeleAdjusting runs, each node's path code — a
// self-contained picture of what the coding scheme built.
func (n *Net) WriteTopologySVG(w io.Writer) error {
	minX, minY, maxX, maxY := n.Dep.Bounds()
	const (
		margin = 40.0
		maxDim = 900.0
	)
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	scale := math.Min((maxDim-2*margin)/spanX, (maxDim-2*margin)/spanY)
	width := spanX*scale + 2*margin
	height := spanY*scale + 2*margin
	px := func(i int) (float64, float64) {
		p := n.Dep.Positions[i]
		return (p.X-minX)*scale + margin, (p.Y-minY)*scale + margin
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	fmt.Fprintln(w, `<rect width="100%" height="100%" fill="white"/>`)

	// Tree edges.
	for i := range n.Stacks {
		p := n.Stacks[i].Ctp.Parent()
		if int(p) >= n.Dep.Len() {
			continue
		}
		x1, y1 := px(i)
		x2, y2 := px(int(p))
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888" stroke-width="1.2"/>`+"\n",
			x1, y1, x2, y2)
	}
	// Nodes.
	for i := range n.Dep.Positions {
		x, y := px(i)
		fill := "#4a90d9"
		r := 5.0
		if radio.NodeID(i) == n.Sink {
			fill = "#d94a4a"
			r = 8
		}
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
		label := fmt.Sprintf("%d", i)
		if te := n.Tele(radio.NodeID(i)); te != nil {
			if code, ok := te.Code(); ok {
				label = fmt.Sprintf("%d:%s", i, code)
			}
		}
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="9" font-family="monospace" fill="#333">%s</text>`+"\n",
			x+7, y-4, label)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
