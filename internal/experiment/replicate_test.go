package experiment

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"teleadjust/internal/fault"
	"teleadjust/internal/telemetry"
)

// replicateOpts is a fast control study for replication tests.
func replicateOpts() ControlOpts {
	return ControlOpts{
		Warmup:   90 * time.Second,
		Packets:  3,
		Interval: 16 * time.Second,
		Drain:    20 * time.Second,
	}
}

// TestParallelReplicationByteIdentical is the determinism contract of the
// Replicator: N replications merged on a multi-worker pool must produce a
// byte-identical report to the serial merge, regardless of scheduling.
func TestParallelReplicationByteIdentical(t *testing.T) {
	seeds := DeriveSeeds(7, 4)
	opts := replicateOpts()

	serial, err := Replicator{Workers: 1}.ControlStudy(smallScenario, ProtoTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Workers: 4}.ControlStudy(smallScenario, ProtoTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}

	var sb, pb bytes.Buffer
	WriteControlReport(&sb, serial)
	WriteControlReport(&pb, parallel)
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("parallel merge diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			sb.String(), pb.String())
	}
	if serial.Sent != 3*len(seeds) {
		t.Fatalf("merged Sent = %d, want %d", serial.Sent, 3*len(seeds))
	}
}

// TestParallelReplicationTraceByteIdentical extends the determinism
// contract to the telemetry plane: with tracing enabled, the merged event
// stream of a multi-worker pool must serialize to the exact same JSONL
// bytes as the serial merge. Events are tagged with their replication
// index during the merge, so ordering is by seed position, never by
// worker completion order.
func TestParallelReplicationTraceByteIdentical(t *testing.T) {
	seeds := DeriveSeeds(11, 3)
	opts := replicateOpts()
	opts.Trace = true

	serial, err := Replicator{Workers: 1}.ControlStudy(smallScenario, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Workers: 3}.ControlStudy(smallScenario, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Events) == 0 {
		t.Fatal("tracing enabled but no events collected")
	}
	runs := map[int]bool{}
	for _, ev := range serial.Events {
		runs[ev.Run] = true
	}
	for ri := range seeds {
		if !runs[ri] {
			t.Fatalf("no events tagged with replication index %d", ri)
		}
	}

	var sb, pb bytes.Buffer
	if err := telemetry.WriteJSONL(&sb, serial.Events); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(&pb, parallel.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("parallel trace diverged from serial: %d vs %d bytes", sb.Len(), pb.Len())
	}
}

// TestParallelCodingReplication checks the coding-study path of the
// Replicator the same way.
func TestParallelCodingReplication(t *testing.T) {
	seeds := DeriveSeeds(9, 3)
	serial, err := Replicator{Workers: 1}.CodingStudy(smallScenario, 2*time.Minute, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Workers: 3}.CodingStudy(smallScenario, 2*time.Minute, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var sb, pb bytes.Buffer
	WriteCodingReport(&sb, serial)
	WriteCodingReport(&pb, parallel)
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("parallel coding merge diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			sb.String(), pb.String())
	}
}

// TestFaultPlanReplicationByteIdentical extends the determinism contract
// to fault-scripted runs: a scenario carrying a FaultPlan (crash, lossy
// window, reboot — all of which consume injector RNG and mutate node
// lifecycles) must still merge byte-identically on a parallel pool. The
// plan value is shared across all replications on purpose: the injector
// must treat it as read-only.
func TestFaultPlanReplicationByteIdentical(t *testing.T) {
	plan := &fault.Plan{Name: "replicate-churn", Events: []fault.Event{
		{At: fault.Duration(100 * time.Second), Kind: fault.Crash, Node: 6},
		{At: fault.Duration(105 * time.Second), Kind: fault.Drop, From: fault.Any, To: fault.Any, Prob: 0.2, For: fault.Duration(30 * time.Second)},
		{At: fault.Duration(140 * time.Second), Kind: fault.Reboot, Node: 6},
	}}
	build := func(seed uint64) Scenario {
		s := smallScenario(seed)
		s.Fault = plan
		return s
	}
	seeds := DeriveSeeds(13, 4)
	opts := replicateOpts()
	opts.DataIPI = 20 * time.Second // exercise the ticker bookkeeping across crash/reboot

	serial, err := Replicator{Workers: 1}.ControlStudy(build, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Workers: 4}.ControlStudy(build, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var sb, pb bytes.Buffer
	WriteControlReport(&sb, serial)
	WriteControlReport(&pb, parallel)
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("fault-scripted parallel merge diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			sb.String(), pb.String())
	}
	if serial.Sent == 0 {
		t.Fatal("nothing sent through the fault plan")
	}
}

func TestDeriveSeedsDeterministic(t *testing.T) {
	a := DeriveSeeds(1, 8)
	b := DeriveSeeds(1, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs between derivations", i)
		}
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate derived seed %#x", s)
		}
		seen[s] = true
	}
	if c := DeriveSeeds(2, 8); c[0] == a[0] {
		t.Fatal("different base seeds derived the same stream")
	}
}

func TestReplicatorEmptySeeds(t *testing.T) {
	if _, err := (Replicator{}).ControlStudy(smallScenario, ProtoTele, replicateOpts(), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	if _, err := (Replicator{}).CodingStudy(smallScenario, time.Minute, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

// TestReplicatorPropagatesErrors: a failing replication must surface its
// error deterministically (lowest seed index wins).
func TestReplicatorPropagatesErrors(t *testing.T) {
	bad := func(seed uint64) Scenario {
		s := smallScenario(seed)
		if seed == 2 || seed == 3 {
			s.Dep = nil // Build fails
		}
		return s
	}
	_, err := Replicator{Workers: 4}.ControlStudy(bad, ProtoTele, replicateOpts(), []uint64{1, 2, 3})
	if err == nil {
		t.Fatal("replication error swallowed")
	}
	want := fmt.Sprintf("%v", err)
	for i := 0; i < 3; i++ {
		_, err2 := Replicator{Workers: 4}.ControlStudy(bad, ProtoTele, replicateOpts(), []uint64{1, 2, 3})
		if got := fmt.Sprintf("%v", err2); got != want {
			t.Fatalf("error not deterministic: %q vs %q", got, want)
		}
	}
}

// TestReplicatorWorkerCaps: worker counts beyond the seed count and the
// zero default both behave.
func TestReplicatorWorkerCaps(t *testing.T) {
	seeds := DeriveSeeds(5, 2)
	opts := replicateOpts()
	res, err := Replicator{Workers: 16}.ControlStudy(smallScenario, ProtoTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 6 {
		t.Fatalf("sent = %d, want 6", res.Sent)
	}
	if w := (Replicator{Workers: 0}).workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
}
