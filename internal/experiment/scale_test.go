package experiment

import (
	"bytes"
	"os"
	"testing"
	"time"

	"teleadjust/internal/obs"
	"teleadjust/internal/radio"
	"teleadjust/internal/telemetry"
)

// skipUnlessScale gates the multi-minute 1k-node studies: they exceed
// the default per-package `go test` timeout budget, so they only run
// when asked for explicitly (make test-scale-full).
func skipUnlessScale(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("1k-node study skipped in short mode")
	}
	if os.Getenv("TELEADJUST_SCALE") == "" {
		t.Skip("set TELEADJUST_SCALE=1 (make test-scale-full) to run the multi-minute 1k-node studies")
	}
}

// TestGrid1kSmoke is the short-friendly scale smoke (make test-scale runs
// it under -race): the 1024-node field must build through the sparse
// medium with an O(links) channel table and run its beacon-storm opening
// without incident.
func TestGrid1kSmoke(t *testing.T) {
	scn := Grid1K(3)
	net, err := Build(scn.config(ProtoReTele))
	if err != nil {
		t.Fatal(err)
	}
	n := net.Dep.Len()
	if n != 1024 {
		t.Fatalf("grid1k has %d nodes, want 1024", n)
	}
	avgDeg := float64(net.Medium.NumLinks()) / float64(n)
	if avgDeg < 10 || avgDeg > 200 {
		t.Fatalf("average stored degree %.1f outside the calibrated range", avgDeg)
	}
	net.Start()
	if err := net.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	withParent := 0
	for i, st := range net.Stacks {
		if radio.NodeID(i) == net.Sink {
			continue
		}
		if st.Ctp.Parent() != radio.NodeID(i) {
			withParent++
		}
	}
	// 15 s is early convergence; the tree must already be spreading
	// outward from the sink.
	if withParent < n/8 {
		t.Fatalf("only %d/%d nodes joined the tree after 15s", withParent, n-1)
	}
}

// TestGrid1kParallelReplicationByteIdentical extends the replication
// determinism contract to the 1024-node field: the merged control report
// and the merged telemetry trace of a 2-seed study must serialize to the
// same bytes on a serial runner and a 2-worker pool.
func TestGrid1kParallelReplicationByteIdentical(t *testing.T) {
	skipUnlessScale(t)
	seeds := DeriveSeeds(21, 2)
	opts := ControlOpts{
		Warmup:   60 * time.Second,
		Packets:  2,
		Interval: 10 * time.Second,
		Drain:    12 * time.Second,
		Trace:    true,
		Window:   30 * time.Second,
	}
	serial, err := Replicator{Workers: 1}.ControlStudy(Grid1K, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Workers: 2}.ControlStudy(Grid1K, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Events) == 0 {
		t.Fatal("tracing enabled but no events collected")
	}
	var sb, pb bytes.Buffer
	WriteControlReport(&sb, serial)
	WriteControlReport(&pb, parallel)
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("grid1k parallel merge diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			sb.String(), pb.String())
	}
	sb.Reset()
	pb.Reset()
	if err := telemetry.WriteJSONL(&sb, serial.Events); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(&pb, parallel.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("grid1k parallel trace diverged from serial: %d vs %d bytes", sb.Len(), pb.Len())
	}
	sb.Reset()
	pb.Reset()
	obs.WriteConvergenceReport(&sb, serial.Convergence)
	obs.WriteConvergenceReport(&pb, parallel.Convergence)
	if sb.Len() == 0 || !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("grid1k parallel convergence report diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			sb.String(), pb.String())
	}
}

// TestGrid1kControlStudy runs a full control study on the 1024-node
// field. Controller registry coverage builds level by level over the
// ~12-hop tree, so early picks of the uniform destination draw are
// skipped; with a 10-minute warmup (codes stable, trickle backed off)
// and 24 packets the study must send and deliver through the sparse
// medium. Deterministic for the fixed seed — any change in the numbers
// is a behavior change, not flakiness.
func TestGrid1kControlStudy(t *testing.T) {
	skipUnlessScale(t)
	opts := ControlOpts{
		Warmup:   10 * time.Minute,
		Packets:  24,
		Interval: 8 * time.Second,
		Drain:    30 * time.Second,
	}
	res, err := RunControlStudy(Grid1K(1), ProtoReTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("grid1k: sent=%d delivered=%d acked=%d skipped=%d",
		res.Sent, res.Delivered, res.AckedOK, res.Skipped)
	// At minute 10–13 the 1k field is still settling (codes cascade for
	// tens of minutes; see EXPERIMENTS.md "Scaling the field"), so the
	// bar is completion and some end-to-end deliveries, not a converged
	// PDR: seed 1 sends 6 and delivers 3, including 7- and 8-hop paths.
	if res.Sent < 4 {
		t.Fatalf("only %d control packets found a coded destination on the 1k field", res.Sent)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered on the 1k field")
	}
}
