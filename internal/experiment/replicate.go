package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"teleadjust/internal/sim"
)

// Replicator runs independent replications of a study — one fully
// separate (sim.Engine, Net) pair per seed — on a bounded worker pool.
// Each replication is single-threaded and deterministic, so parallelism
// across replications is safe: no engine, medium, or RNG stream is shared
// between seeds. Results are merged in seed order, making the aggregate
// byte-identical no matter how the scheduler interleaves workers (and
// identical to the serial Workers=1 run).
type Replicator struct {
	// Workers bounds the worker pool; <=0 means runtime.GOMAXPROCS(0).
	Workers int
}

// workers resolves the effective pool size.
func (r Replicator) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DeriveSeeds expands a base seed into n decorrelated replication seeds
// using the engine's SplitMix64 stream derivation.
func DeriveSeeds(base uint64, n int) []uint64 {
	rng := sim.DeriveRNG(base, 0x5eed5)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	return seeds
}

// each runs fn once per seed index on the bounded pool and returns the
// first error (lowest seed index wins, so failures are deterministic too).
func (r Replicator) each(n int, fn func(i int) error) error {
	w := r.workers()
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ControlStudy runs RunControlStudy once per seed (fresh topology and
// channel per seed) and merges the results in seed order.
func (r Replicator) ControlStudy(build func(seed uint64) Scenario, proto Proto, opts ControlOpts, seeds []uint64) (*ControlResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	results := make([]*ControlResult, len(seeds))
	err := r.each(len(seeds), func(i int) error {
		res, err := RunControlStudy(build(seeds[i]), proto, opts)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeControlResults(results), nil
}

// CodingStudy runs RunCodingStudy once per seed and merges the results in
// seed order.
func (r Replicator) CodingStudy(build func(seed uint64) Scenario, dur time.Duration, seeds []uint64) (*CodingResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	results := make([]*CodingResult, len(seeds))
	err := r.each(len(seeds), func(i int) error {
		res, err := RunCodingStudy(build(seeds[i]), dur)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeCodingResults(results), nil
}
