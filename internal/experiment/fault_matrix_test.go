package experiment

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/fault"
	"teleadjust/internal/telemetry"
)

// matrixChurnPlan is the shared fault script of the cross-protocol churn
// matrix: an end-of-line crash with a later reboot, a lossy broadcast
// window mid-line, and a degraded (but not severed) link — all inside the
// control phase of a smallScenario study (2-minute warmup). Times are
// absolute simulation times.
func matrixChurnPlan() *fault.Plan {
	return &fault.Plan{
		Name: "matrix-churn",
		Events: []fault.Event{
			{At: fault.Duration(130 * time.Second), Kind: fault.Crash, Node: 7},
			{At: fault.Duration(140 * time.Second), Kind: fault.Drop, From: 2, To: 3, Prob: 0.3, Dst: fault.DstBcast, For: fault.Duration(40 * time.Second)},
			{At: fault.Duration(150 * time.Second), Kind: fault.Link, From: 3, To: 4, OffsetDB: -6, Both: true, For: fault.Duration(40 * time.Second)},
			{At: fault.Duration(190 * time.Second), Kind: fault.Reboot, Node: 7},
		},
	}
}

// TestFaultMatrixAcrossProtocols runs the same fault script against every
// protocol of the paper's comparison and asserts the survival properties
// that must hold regardless of protocol: the study completes, packets
// flow, the rebooted node re-attaches, and the tree recovers. For the
// TeleAdjusting variants the protocol invariant oracle rides along on the
// radio trace and must stay clean through every fault epoch.
func TestFaultMatrixAcrossProtocols(t *testing.T) {
	opts := ControlOpts{
		Warmup:   2 * time.Minute,
		Packets:  6,
		Interval: 16 * time.Second,
		Drain:    40 * time.Second,
	}
	plan := matrixChurnPlan()
	for _, proto := range []Proto{ProtoTele, ProtoReTele, ProtoDrip, ProtoRPL} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			scn := smallScenario(21)
			scn.Fault = plan
			var net *Net
			var orc *fault.Oracle
			tele := proto == ProtoTele || proto == ProtoReTele
			scn.OnNetBuilt = func(n *Net) {
				net = n
				if !tele {
					return
				}
				orc = fault.NewOracle(fault.OracleConfig{
					NumNodes:       n.Dep.Len(),
					Sink:           n.Sink,
					RetryRounds:    scn.Tele.RetryRounds,
					Backtracks:     scn.Tele.Backtracks,
					ControlTimeout: scn.Tele.ControlTimeout,
					RescueEnabled:  proto == ProtoReTele,
				})
				orc.TeleAt = n.Tele
				orc.Alive = n.Alive
				orc.Now = n.Eng.Now
				n.Bus.Subscribe(orc, telemetry.LayerRadio)
			}
			res, err := RunControlStudy(scn, proto, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Sent == 0 {
				t.Fatal("nothing sent through the fault script")
			}
			// Every plan event fired, plus one closing edge per bounded
			// window (the drop and link events above).
			if inj := net.FaultInjector(); inj == nil {
				t.Fatal("scenario plan did not install an injector")
			} else if inj.Applied() != len(plan.Events)+2 {
				t.Fatalf("injector applied %d fault edges, want %d", inj.Applied(), len(plan.Events)+2)
			}
			if !net.Alive(7) {
				t.Fatal("node 7 still dead after the scripted reboot")
			}
			if h := net.CTPHops(7); h <= 0 {
				t.Fatalf("rebooted node 7 not re-attached (hops %d)", h)
			}
			if c := net.TreeCoverage(); c < 0.85 {
				t.Fatalf("tree coverage %.2f after the churn script", c)
			}
			if orc != nil {
				if v := orc.Check(); len(v) != 0 {
					t.Fatalf("oracle violations under %s:\n%s", proto, orc.Summary())
				}
				if _, ok := net.Tele(7).Code(); !ok {
					t.Error("rebooted node 7 did not regain a path code")
				}
			}
			t.Logf("%s: sent=%d delivered=%d skipped=%d coverage=%.2f",
				proto, res.Sent, res.Delivered, res.Skipped, net.TreeCoverage())
		})
	}
}

// TestFaultMatrixAcrossCodecs re-runs the same churn script once per
// registered tree-coding codec under ReTeleAdjusting, with the invariant
// oracle riding the radio trace. The crash/loss/degradation/reboot sequence
// must leave every codec's tree consistent — the variable-length codecs'
// relabel paths get exercised by node 7's re-join, not just the paper's
// fixed-width extension path.
func TestFaultMatrixAcrossCodecs(t *testing.T) {
	opts := ControlOpts{
		Warmup:   2 * time.Minute,
		Packets:  6,
		Interval: 16 * time.Second,
		Drain:    40 * time.Second,
	}
	plan := matrixChurnPlan()
	for _, codec := range core.CodecNames() {
		codec := codec
		t.Run(codec, func(t *testing.T) {
			scn := smallScenario(21)
			scn.Codec = codec
			scn.Fault = plan
			var net *Net
			var orc *fault.Oracle
			scn.OnNetBuilt = func(n *Net) {
				net = n
				orc = fault.NewOracle(fault.OracleConfig{
					NumNodes:       n.Dep.Len(),
					Sink:           n.Sink,
					RetryRounds:    scn.Tele.RetryRounds,
					Backtracks:     scn.Tele.Backtracks,
					ControlTimeout: scn.Tele.ControlTimeout,
					RescueEnabled:  true,
				})
				orc.TeleAt = n.Tele
				orc.Alive = n.Alive
				orc.Now = n.Eng.Now
				n.Bus.Subscribe(orc, telemetry.LayerRadio)
			}
			res, err := RunControlStudy(scn, ProtoReTele, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Sent == 0 {
				t.Fatal("nothing sent through the fault script")
			}
			if inj := net.FaultInjector(); inj == nil {
				t.Fatal("scenario plan did not install an injector")
			} else if inj.Applied() != len(plan.Events)+2 {
				t.Fatalf("injector applied %d fault edges, want %d", inj.Applied(), len(plan.Events)+2)
			}
			if !net.Alive(7) {
				t.Fatal("node 7 still dead after the scripted reboot")
			}
			if h := net.CTPHops(7); h <= 0 {
				t.Fatalf("rebooted node 7 not re-attached (hops %d)", h)
			}
			if c := net.TreeCoverage(); c < 0.85 {
				t.Fatalf("tree coverage %.2f after the churn script", c)
			}
			if v := orc.Check(); len(v) != 0 {
				t.Fatalf("oracle violations under codec %s:\n%s", codec, orc.Summary())
			}
			if _, ok := net.Tele(7).Code(); !ok {
				t.Error("rebooted node 7 did not regain a path code")
			}
			t.Logf("%s: sent=%d delivered=%d skipped=%d coverage=%.2f",
				codec, res.Sent, res.Delivered, res.Skipped, net.TreeCoverage())
		})
	}
}
