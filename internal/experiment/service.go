package experiment

import (
	"errors"
	"fmt"
	"time"

	"teleadjust/internal/cmdsvc"
	"teleadjust/internal/sim"
	"teleadjust/internal/sink"
	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
	"teleadjust/internal/workload"
)

// ServiceOpts tunes a command-service study: an open-loop offered-load
// ramp driven twice per point — once through a transparent service
// (plain scheduler semantics) and once with prefix batching, the route
// cache, and backpressure on — so every row reports the service's win
// over the baseline at identical offered load.
type ServiceOpts struct {
	// Warmup lets the tree, codes, and registries converge before the
	// workload starts.
	Warmup time.Duration
	// Ops is the number of control operations per sub-run.
	Ops int
	// Rates are the open-loop offered rates (operations per second),
	// normally a ramp ending past the baseline's saturation point.
	Rates []float64
	// Dist selects the destination distribution (see throughputDist).
	Dist string

	// Scheduler knobs, applied identically to both sub-runs. Buffered
	// commands hold their scheduler slots, so batches can only grow to
	// min(Window, MaxBatch) members — and to min(PerGroup, MaxBatch)
	// when the members share one serialization group. The window timer
	// still flushes whatever accumulated, so smaller limits shrink
	// batches rather than stall them.
	Window    int
	PerGroup  int
	GroupBits int
	Retries   int
	OpBudget  time.Duration

	// Service knobs (the batching sub-run only).
	BatchWindow time.Duration
	BatchBits   int
	MaxBatch    int
	CacheTTL    time.Duration
	CacheCap    int
	QueueDepth  int
	HighWater   int
	Policy      string // "reject" or "delay"

	// MaxRun caps each sub-run's workload phase in simulated time.
	MaxRun time.Duration
	// Trace collects sink-layer telemetry: baseline sub-run events into
	// EventsBase (byte-comparable to an open-loop throughput study) and
	// service sub-run events — including svc.batch spans — into EventsSvc.
	Trace bool
}

// DefaultServiceOpts returns a two-point ramp with batching, caching, and
// backpressure sized for the reference scenarios. The backpressure
// defaults deliberately pace rather than refuse: a low high-water mark
// with the delay policy keeps the scheduler's queue shallow under
// overload, which is where the batcher and the route cache earn their
// keep (a congested field fails rescue-free sends and fragments
// batches; a paced one completes them). The batch window is short —
// admissions arrive in bursts under pacing, so half a second is enough
// to coalesce them, and buffered members hold scheduler slots for the
// whole window — and the 3-bit prefix trades deeper carriers for more
// batching opportunities.
func DefaultServiceOpts() ServiceOpts {
	return ServiceOpts{
		Warmup:      4 * time.Minute,
		Ops:         120,
		Rates:       []float64{0.5, 1.8},
		Dist:        "hotspot",
		Window:      16,
		PerGroup:    8,
		GroupBits:   6,
		Retries:     1,
		BatchWindow: 500 * time.Millisecond,
		BatchBits:   3,
		MaxBatch:    16,
		CacheTTL:    5 * time.Minute,
		CacheCap:    256,
		QueueDepth:  128,
		HighWater:   6,
		Policy:      "delay",
		MaxRun:      30 * time.Minute,
	}
}

// Transparent reports that every service feature is disabled: no batch
// window, no cache TTL, no admission bounds. A transparent study runs one
// sub-run per point on the throughput study's exact ticket range, so its
// telemetry trace is byte-identical to `-study throughput -workload open`
// over the same seed, rates, and scheduler knobs.
func (o ServiceOpts) Transparent() bool {
	return o.BatchWindow <= 0 && o.CacheTTL <= 0 && o.QueueDepth <= 0 && o.HighWater <= 0
}

// serviceConfig converts the service knobs into a cmdsvc.Config.
func (o ServiceOpts) serviceConfig() cmdsvc.Config {
	return cmdsvc.Config{
		Batch: cmdsvc.BatcherConfig{
			Window:   o.BatchWindow,
			Bits:     o.BatchBits,
			MaxBatch: o.MaxBatch,
		},
		Cache:      cmdsvc.CacheConfig{TTL: o.CacheTTL, Cap: o.CacheCap},
		QueueDepth: o.QueueDepth,
		HighWater:  o.HighWater,
		Policy:     cmdsvc.ShedPolicy(o.Policy),
	}
}

// ServicePoint is one offered-load point: paired baseline and service
// sub-runs at the same rate.
type ServicePoint struct {
	// Label names the swept rate ("rate=2.00").
	Label string
	// Offered is the realized offered load of the service sub-run;
	// OfferedBase the baseline's (they differ only through shed timing).
	Offered     float64
	OfferedBase float64
	// GoodputBase and GoodputSvc are completed operations per second.
	GoodputBase float64
	GoodputSvc  float64

	Ops            int
	OKBase         int
	OKSvc          int
	FailedBase     int
	FailedSvc      int
	UnresolvedBase int
	UnresolvedSvc  int

	// Shed and Delayed count admission-gate decisions in the service
	// sub-run (per-tenant detail lives in the telemetry trace).
	Shed    int
	Delayed int

	// Batches and BatchedCmds mirror the batcher counters; CacheHits and
	// CacheMisses the route-cache lookups.
	Batches     int
	BatchedCmds int
	CacheHits   int
	CacheMisses int

	// LatencyBase and LatencySvc are end-to-end sink latencies (seconds)
	// of successful operations.
	LatencyBase *stats.Series
	LatencySvc  *stats.Series
}

// Speedup returns the goodput ratio service / baseline (0 when the
// baseline completed nothing).
func (p *ServicePoint) Speedup() float64 {
	if p.GoodputBase == 0 {
		return 0
	}
	return p.GoodputSvc / p.GoodputBase
}

// MeanBatch returns the mean members per flushed carrier.
func (p *ServicePoint) MeanBatch() float64 {
	if p.Batches == 0 {
		return 0
	}
	return float64(p.BatchedCmds) / float64(p.Batches)
}

// CacheHitRate returns hits / (hits + misses).
func (p *ServicePoint) CacheHitRate() float64 {
	if p.CacheHits+p.CacheMisses == 0 {
		return 0
	}
	return float64(p.CacheHits) / float64(p.CacheHits+p.CacheMisses)
}

// ServiceResult aggregates one command-service study.
type ServiceResult struct {
	Proto    string
	Scenario string
	Dist     string
	Points   []*ServicePoint
	// EventsBase is the baseline sub-runs' sink-layer telemetry — with
	// every service feature off it is byte-comparable to an open-loop
	// throughput study over the same seed and rates. EventsSvc is the
	// service sub-runs', carrying the svc.batch membership spans.
	EventsBase []telemetry.Event
	EventsSvc  []telemetry.Event
}

// subRunMetrics is what one sub-run hands back to the point assembler.
type subRunMetrics struct {
	offered    float64
	goodput    float64
	ok         int
	failed     int
	shed       int
	delayed    int
	unresolved int
	latency    *stats.Series
	batch      cmdsvc.BatcherStats
	cache      cmdsvc.CacheStats
	events     []telemetry.Event
}

// runServicePoint drives one sub-run: fresh network, warmup, a command
// service over the sink scheduler, and an open-loop Poisson workload at
// the point's rate. svcCfg zero-valued gives the transparent baseline.
func runServicePoint(scn Scenario, proto Proto, opts ServiceOpts, pi int, svcCfg cmdsvc.Config, ticketBase uint32) (*subRunMetrics, error) {
	net, err := Build(scn.config(proto))
	if err != nil {
		return nil, err
	}
	var collector *telemetry.Collector
	if opts.Trace {
		collector = telemetry.NewCollector()
		net.Bus.Subscribe(collector, telemetry.LayerSink)
	}
	if scn.OnNetBuilt != nil {
		scn.OnNetBuilt(net)
	}
	net.Start()
	if err := net.Run(opts.Warmup); err != nil {
		return nil, err
	}

	dist, err := throughputDist(net, opts.Dist)
	if err != nil {
		return nil, err
	}

	schedCfg := sink.Config{
		Window:     opts.Window,
		PerGroup:   opts.PerGroup,
		GroupBits:  opts.GroupBits,
		Retries:    opts.Retries,
		OpBudget:   opts.OpBudget,
		TicketBase: ticketBase,
	}
	svc := cmdsvc.New(net.Eng, net.SinkCtrl(), schedCfg, svcCfg)
	svc.SetTelemetry(net.Metrics, net.Bus, net.Sink)
	if te := net.SinkTele(); te != nil {
		svc.SetCoder(te.DstCode)
	}
	svc.AttachFaults(net.FaultInjector())

	// The same stream the throughput study derives for this point index:
	// identical destinations and arrival gaps, so the baseline sub-run is
	// an exact open-loop replay.
	rng := sim.DeriveRNG(scn.Seed, 0x3077+uint64(pi))
	gen := workload.NewOpenLoop(net.Eng, svc, dist, rng, opts.Rates[pi], opts.Ops)

	maxRun := opts.MaxRun
	if maxRun <= 0 {
		maxRun = 30 * time.Minute
	}
	start := net.Eng.Now()
	gen.Start()
	for !gen.Done() && net.Eng.Now()-start < maxRun {
		chunk := 30 * time.Second
		if left := maxRun - (net.Eng.Now() - start); left < chunk {
			chunk = left
		}
		if err := net.Run(chunk); err != nil {
			return nil, err
		}
	}
	elapsed := net.Eng.Now() - start
	if gen.Done() && gen.FinishedAt() > start {
		elapsed = gen.FinishedAt() - start
	}

	m := &subRunMetrics{latency: &stats.Series{}}
	for _, o := range gen.Outcomes() {
		switch {
		case o.OK:
			m.ok++
			m.latency.Add(o.Total().Seconds())
		case errors.Is(o.Err, cmdsvc.ErrShed):
			m.shed++
		default:
			m.failed++
		}
	}
	m.unresolved = opts.Ops - len(gen.Outcomes())
	if secs := elapsed.Seconds(); secs > 0 {
		m.offered = float64(len(gen.Outcomes())) / secs
		m.goodput = float64(m.ok) / secs
	}
	for _, tn := range svc.Tenants() {
		m.delayed += int(tn.Delayed)
	}
	m.batch = svc.BatcherStats()
	m.cache = svc.CacheStats()
	if collector != nil {
		m.events = collector.Events()
	}
	return m, nil
}

// RunServiceStudy ramps offered load against the command service: each
// rate point runs the identical Poisson workload twice on fresh networks
// — transparent baseline, then full service — and reports goodput,
// shedding, batching, and cache effectiveness side by side.
// Deterministic per seed: the same seed yields byte-identical results
// under serial and parallel replication.
func RunServiceStudy(scn Scenario, proto Proto, opts ServiceOpts) (*ServiceResult, error) {
	if len(opts.Rates) == 0 {
		return nil, fmt.Errorf("experiment: service study with no rates")
	}
	res := &ServiceResult{
		Proto:    proto.String(),
		Scenario: scn.Name,
		Dist:     opts.Dist,
	}
	if res.Dist == "" {
		res.Dist = "uniform"
	}
	for pi, rate := range opts.Rates {
		// Baseline: zero service config, and the exact ticket range the
		// throughput study would use, so traces line up byte for byte.
		base, err := runServicePoint(scn, proto, opts, pi, cmdsvc.Config{}, uint32(pi)<<20)
		if err != nil {
			return nil, err
		}
		// Service: batching + cache + backpressure, disjoint ticket range.
		// With every feature disabled the baseline IS the service run —
		// reuse it so a transparent study stays a single exact replay.
		svc := base
		if !opts.Transparent() {
			svc, err = runServicePoint(scn, proto, opts, pi, opts.serviceConfig(), uint32(pi)<<20|1<<19)
			if err != nil {
				return nil, err
			}
		} else {
			// The point carries two latency series; give the reused
			// sub-run its own copy so a later merge cannot double-pool.
			cl := &stats.Series{}
			for _, v := range base.latency.Values() {
				cl.Add(v)
			}
			svc = &subRunMetrics{}
			*svc = *base
			svc.latency = cl
		}
		pt := &ServicePoint{
			Label:          fmt.Sprintf("rate=%.2f", rate),
			Ops:            opts.Ops,
			Offered:        svc.offered,
			OfferedBase:    base.offered,
			GoodputBase:    base.goodput,
			GoodputSvc:     svc.goodput,
			OKBase:         base.ok,
			OKSvc:          svc.ok,
			FailedBase:     base.failed,
			FailedSvc:      svc.failed,
			UnresolvedBase: base.unresolved,
			UnresolvedSvc:  svc.unresolved,
			Shed:           svc.shed,
			Delayed:        svc.delayed,
			Batches:        int(svc.batch.Batches),
			BatchedCmds:    int(svc.batch.BatchedCmds),
			CacheHits:      int(svc.cache.Hits),
			CacheMisses:    int(svc.cache.Misses),
			LatencyBase:    base.latency,
			LatencySvc:     svc.latency,
		}
		res.Points = append(res.Points, pt)
		res.EventsBase = append(res.EventsBase, base.events...)
		res.EventsSvc = append(res.EventsSvc, svc.events...)
	}
	return res, nil
}

// mergeServiceResults merges per-seed studies point-by-point in slice
// (seed) order: counters sum, sample series pool, and rates average.
func mergeServiceResults(results []*ServiceResult) *ServiceResult {
	var merged *ServiceResult
	var eventsBase, eventsSvc []telemetry.Event
	for ri, res := range results {
		for _, ev := range res.EventsBase {
			ev.Run = ri
			eventsBase = append(eventsBase, ev)
		}
		for _, ev := range res.EventsSvc {
			ev.Run = ri
			eventsSvc = append(eventsSvc, ev)
		}
	}
	n := float64(len(results))
	for _, res := range results {
		if merged == nil {
			merged = res
			continue
		}
		for i, pt := range res.Points {
			m := merged.Points[i]
			m.Offered += pt.Offered
			m.OfferedBase += pt.OfferedBase
			m.GoodputBase += pt.GoodputBase
			m.GoodputSvc += pt.GoodputSvc
			m.Ops += pt.Ops
			m.OKBase += pt.OKBase
			m.OKSvc += pt.OKSvc
			m.FailedBase += pt.FailedBase
			m.FailedSvc += pt.FailedSvc
			m.UnresolvedBase += pt.UnresolvedBase
			m.UnresolvedSvc += pt.UnresolvedSvc
			m.Shed += pt.Shed
			m.Delayed += pt.Delayed
			m.Batches += pt.Batches
			m.BatchedCmds += pt.BatchedCmds
			m.CacheHits += pt.CacheHits
			m.CacheMisses += pt.CacheMisses
			for _, v := range pt.LatencyBase.Values() {
				m.LatencyBase.Add(v)
			}
			for _, v := range pt.LatencySvc.Values() {
				m.LatencySvc.Add(v)
			}
		}
	}
	if merged == nil {
		return nil
	}
	if len(results) > 1 {
		for _, m := range merged.Points {
			m.Offered /= n
			m.OfferedBase /= n
			m.GoodputBase /= n
			m.GoodputSvc /= n
		}
	}
	merged.EventsBase = eventsBase
	merged.EventsSvc = eventsSvc
	return merged
}

// ServiceStudy runs RunServiceStudy once per seed (fresh topology and
// channel per seed) and merges the studies in seed order.
func (r Replicator) ServiceStudy(build func(seed uint64) Scenario, proto Proto, opts ServiceOpts, seeds []uint64) (*ServiceResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	results := make([]*ServiceResult, len(seeds))
	err := r.each(len(seeds), func(i int) error {
		res, err := RunServiceStudy(build(seeds[i]), proto, opts)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeServiceResults(results), nil
}
