package experiment

import (
	"bytes"
	"testing"
	"time"

	"teleadjust/internal/telemetry"
)

// traceGoldenOpts is a short control study whose full telemetry stream is
// pinned byte-for-byte: every event timestamp depends transitively on the
// medium's RNG draw order, so any change to channel-state construction
// that perturbs gains, neighbor order, or draw sequence shows up here.
func traceGoldenOpts() ControlOpts {
	return ControlOpts{
		Warmup:   90 * time.Second,
		Packets:  3,
		Interval: 16 * time.Second,
		Drain:    20 * time.Second,
		Trace:    true,
	}
}

// pinTrace runs the study and compares the JSONL-serialized event stream
// against the committed golden (created with -update under the dense
// all-pairs medium; the sparse medium must reproduce it exactly).
func pinTrace(t *testing.T, name string, scn Scenario, proto Proto) {
	t.Helper()
	res, err := RunControlStudy(scn, proto, traceGoldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("tracing enabled but no events collected")
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, res.Events); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, name, buf.Bytes())
}

// TestControlTraceGoldenLine pins the 8-node line scenario's telemetry
// stream (the regression bar for "existing scenario traces stay
// byte-identical" across medium refactors).
func TestControlTraceGoldenLine(t *testing.T) {
	pinTrace(t, "trace_line.jsonl.golden", smallScenario(5), ProtoReTele)
}

// TestControlTraceGoldenRefGrid pins the 100-node reference grid, whose
// shadowed gains consume the medium's full legacy RNG sweep — a change in
// draw order or count anywhere in construction breaks this.
func TestControlTraceGoldenRefGrid(t *testing.T) {
	pinTrace(t, "trace_refgrid.jsonl.golden", ReferenceGrid(3), ProtoTele)
}
