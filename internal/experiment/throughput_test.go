package experiment

import (
	"bytes"
	"testing"
	"time"

	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
)

// throughputOpts is a scaled-down closed-loop sweep for tests.
func throughputOpts() ThroughputOpts {
	o := DefaultThroughputOpts()
	o.Warmup = 90 * time.Second
	o.Ops = 6
	o.Concurrency = []int{1, 2}
	o.MaxRun = 10 * time.Minute
	return o
}

func TestThroughputStudySmall(t *testing.T) {
	opts := throughputOpts()
	opts.Trace = true
	res, err := RunThroughputStudy(smallScenario(7), ProtoTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d load points, want 2", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.OK == 0 {
			t.Fatalf("point %s completed no operations: %+v", pt.Label, pt)
		}
		if pt.Goodput <= 0 || pt.Offered <= 0 {
			t.Fatalf("point %s rates: offered=%v goodput=%v", pt.Label, pt.Offered, pt.Goodput)
		}
		if pt.Unresolved != 0 {
			t.Fatalf("point %s left %d ops unresolved", pt.Label, pt.Unresolved)
		}
		if pt.Latency.Count() != pt.OK {
			t.Fatalf("point %s latency samples=%d ok=%d", pt.Label, pt.Latency.Count(), pt.OK)
		}
	}
	// The trace must reconstruct into one command-plane span per op.
	spans := telemetry.BuildQueueSpans(res.Events)
	if len(spans) != 2*opts.Ops {
		t.Fatalf("%d queue spans, want %d", len(spans), 2*opts.Ops)
	}
	for _, sp := range spans {
		if !sp.Resolved {
			t.Fatalf("span for ticket %d unresolved", sp.Ticket)
		}
	}
}

func TestThroughputOpenLoop(t *testing.T) {
	opts := throughputOpts()
	opts.Mode = "open"
	opts.Rates = []float64{0.2}
	opts.Dist = "depth"
	res, err := RunThroughputStudy(smallScenario(7), ProtoTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.OK == 0 || pt.Unresolved != 0 {
		t.Fatalf("open-loop point: %+v", pt)
	}
}

func TestThroughputDistValidation(t *testing.T) {
	opts := throughputOpts()
	opts.Dist = "bogus"
	if _, err := RunThroughputStudy(smallScenario(7), ProtoTele, opts); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	opts = throughputOpts()
	opts.Concurrency = nil
	if _, err := RunThroughputStudy(smallScenario(7), ProtoTele, opts); err == nil {
		t.Fatal("empty concurrency sweep accepted")
	}
	opts = throughputOpts()
	opts.Mode = "open"
	opts.Rates = nil
	if _, err := RunThroughputStudy(smallScenario(7), ProtoTele, opts); err == nil {
		t.Fatal("empty rate sweep accepted")
	}
}

// TestThroughputReplicationDeterministic: the parallel replication must
// render byte-identical reports and CSVs to the serial one, trace
// included.
func TestThroughputReplicationDeterministic(t *testing.T) {
	seeds := DeriveSeeds(11, 3)
	opts := throughputOpts()
	opts.Trace = true

	render := func(workers int) ([]byte, []byte, []byte) {
		res, err := Replicator{Workers: workers}.ThroughputStudy(smallScenario, ProtoTele, opts, seeds)
		if err != nil {
			t.Fatal(err)
		}
		var report, csvOut, events bytes.Buffer
		WriteThroughputReport(&report, res)
		if err := WriteThroughputCSV(&csvOut, res); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteJSONL(&events, res.Events); err != nil {
			t.Fatal(err)
		}
		return report.Bytes(), csvOut.Bytes(), events.Bytes()
	}

	serialRep, serialCSV, serialEv := render(1)
	parallelRep, parallelCSV, parallelEv := render(4)
	if !bytes.Equal(serialRep, parallelRep) {
		t.Fatalf("parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialRep, parallelRep)
	}
	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Fatalf("parallel CSV differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialCSV, parallelCSV)
	}
	if !bytes.Equal(serialEv, parallelEv) {
		t.Fatal("parallel telemetry stream differs from serial")
	}
}

// goldenThroughputResult is a hand-built fixture exercising every column
// of the throughput report.
func goldenThroughputResult() *ThroughputResult {
	res := &ThroughputResult{
		Proto:    "TeleAdjust",
		Scenario: "golden-grid",
		Mode:     "closed",
		Dist:     "uniform",
	}
	p1 := &ThroughputPoint{
		Label: "conc=1", Offered: 0.118, Goodput: 0.112,
		Ops: 40, OK: 38, Failed: 1, Unroutable: 1, Retries: 2,
		Latency: &stats.Series{}, QueueWait: &stats.Series{},
	}
	for _, v := range []float64{4.2, 5.1, 5.8, 7.3, 11.6} {
		p1.Latency.Add(v)
	}
	for _, v := range []float64{0, 0.4, 1.2} {
		p1.QueueWait.Add(v)
	}
	p2 := &ThroughputPoint{
		Label: "conc=8", Offered: 0.412, Goodput: 0.387,
		Ops: 40, OK: 37, Failed: 1, Rejected: 1, Expired: 1, Retries: 5, Unresolved: 0,
		Latency: &stats.Series{}, QueueWait: &stats.Series{},
	}
	for _, v := range []float64{5.0, 6.2, 8.8, 13.4, 21.7} {
		p2.Latency.Add(v)
	}
	for _, v := range []float64{0.8, 2.5, 6.1} {
		p2.QueueWait.Add(v)
	}
	res.Points = []*ThroughputPoint{p1, p2}
	return res
}

func TestWriteThroughputReportGolden(t *testing.T) {
	var sb bytes.Buffer
	WriteThroughputReport(&sb, goldenThroughputResult())
	checkGolden(t, "throughput_report.golden", sb.Bytes())
}

func TestWriteThroughputCSVGolden(t *testing.T) {
	var sb bytes.Buffer
	if err := WriteThroughputCSV(&sb, goldenThroughputResult()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "throughput_csv.golden", sb.Bytes())
}
