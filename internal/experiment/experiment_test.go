package experiment

import (
	"testing"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/mac"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/topology"
)

// smallScenario is a fast 8-node test scenario (line of strong links).
func smallScenario(seed uint64) Scenario {
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	s := Scenario{
		Name:  "test-line",
		Dep:   topology.Line(8, 7),
		Radio: params,
		Mac:   mac.DefaultConfig(),
		Ctp:   ctp.DefaultConfig(),
		Tele:  core.DefaultConfig(),
		Drip:  drip.DefaultConfig(),
		Rpl:   rpl.DefaultConfig(),
		Seed:  seed,
	}
	s.Tele.AllocDelay = 2 * 512 * time.Millisecond
	s.Tele.ReportInterval = 15 * time.Second
	s.Rpl.DAOInterval = 15 * time.Second
	s.TuneControlTimeouts(15 * time.Second)
	return s
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Fatal("Build without deployment accepted")
	}
	bad := smallScenario(1)
	bad.Dep = &topology.Deployment{Name: "empty"}
	if _, err := Build(bad.config(ProtoTeleAdjust)); err == nil {
		t.Fatal("Build with empty deployment accepted")
	}
}

func TestBuildAllProtocols(t *testing.T) {
	scn := smallScenario(1)
	for _, p := range Protocols() {
		net, err := Build(scn.config(p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if net.SinkCtrl() == nil {
			t.Fatalf("%v: sink protocol instance missing", p)
		}
		if net.SinkCtrl().Name() == "" {
			t.Fatalf("%v: unnamed protocol", p)
		}
		if net.Medium.NumNodes() != 8 {
			t.Fatalf("%v: medium has %d nodes", p, net.Medium.NumNodes())
		}
	}
	// Typed accessors resolve exactly the protocol the net was built with.
	tele, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		t.Fatal(err)
	}
	if tele.SinkTele() == nil || tele.SinkDrip() != nil || tele.SinkRPL() != nil {
		t.Fatal("typed accessors disagree with the built protocol")
	}
	none, err := Build(scn.config(ProtoNone))
	if err != nil {
		t.Fatal(err)
	}
	if none.SinkCtrl() != nil {
		t.Fatal("ProtoNone built a control protocol")
	}
}

func TestCodingStudySmall(t *testing.T) {
	res, err := RunCodingStudy(smallScenario(2), 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged < 0.99 {
		t.Fatalf("converged = %v, want ~1 on a strong 8-node line", res.Converged)
	}
	// Code length must grow with hop count (Fig 6a property).
	keys := res.CodeLenByHop.Keys()
	if len(keys) < 5 {
		t.Fatalf("too few hop levels: %v", keys)
	}
	first := res.CodeLenByHop.Get(keys[0]).Mean()
	last := res.CodeLenByHop.Get(keys[len(keys)-1]).Mean()
	if last <= first {
		t.Fatalf("code length not increasing: hop %d→%.1f bits, hop %d→%.1f bits",
			keys[0], first, keys[len(keys)-1], last)
	}
	// On a line, reverse hops ≈ CTP hops (Fig 6d property).
	if res.HopRatio < 0.8 || res.HopRatio > 1.3 {
		t.Fatalf("hop ratio = %v, want ~1", res.HopRatio)
	}
	// Convergence measured in beacons must be recorded and bounded.
	if res.ConvergenceBeacons.Count() == 0 {
		t.Fatal("no convergence samples")
	}
	if res.ConvergenceBeacons.Max() > 100 {
		t.Fatalf("max convergence %v beacons on a trivial line", res.ConvergenceBeacons.Max())
	}
}

func TestControlStudyTele(t *testing.T) {
	opts := ControlOpts{
		Warmup:   2 * time.Minute,
		Packets:  6,
		Interval: 16 * time.Second,
		Drain:    30 * time.Second,
	}
	res, err := RunControlStudy(smallScenario(3), ProtoTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proto != "Tele" {
		t.Fatalf("proto = %q", res.Proto)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.PDR() < 0.8 {
		t.Fatalf("PDR = %v on a strong line", res.PDR())
	}
	if res.TxPerPacket <= 0 {
		t.Fatal("no transmissions recorded")
	}
	if res.AvgDutyCycle <= 0 || res.AvgDutyCycle > 0.5 {
		t.Fatalf("duty cycle %v implausible", res.AvgDutyCycle)
	}
	if res.ATHX.Len() == 0 {
		t.Fatal("no ATHX samples")
	}
}

func TestControlStudyAllProtocolsRun(t *testing.T) {
	opts := ControlOpts{
		Warmup:   2 * time.Minute,
		Packets:  4,
		Interval: 16 * time.Second,
		Drain:    30 * time.Second,
	}
	for _, proto := range []Proto{ProtoReTele, ProtoTeleStrict, ProtoDrip, ProtoRPL} {
		res, err := RunControlStudy(smallScenario(4), proto, opts)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.Sent+res.Skipped == 0 {
			t.Fatalf("%v: nothing attempted", proto)
		}
	}
}

func TestControlStudyUnknownProto(t *testing.T) {
	if _, err := RunControlStudy(smallScenario(5), Proto("bogus"), DefaultControlOpts()); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestSeedsRunnerMerges(t *testing.T) {
	opts := ControlOpts{
		Warmup:   90 * time.Second,
		Packets:  3,
		Interval: 16 * time.Second,
		Drain:    20 * time.Second,
	}
	res, err := RunControlStudySeeds(smallScenario, ProtoTele, opts, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 6 {
		t.Fatalf("merged sent = %d, want 6", res.Sent)
	}
	if _, err := RunControlStudySeeds(smallScenario, ProtoTele, opts, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestKillNodeSilencesRadio(t *testing.T) {
	scn := smallScenario(6)
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := net.Stacks[3].Mac.Stats().FrameTx
	net.KillNode(3)
	if err := net.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if net.Stacks[3].Mac.Stats().FrameTx != before {
		t.Fatal("killed node kept transmitting")
	}
	if net.Medium.Radio(3).On() {
		t.Fatal("killed node's radio still on")
	}
	if net.Alive(3) {
		t.Fatal("Alive(3) still true after KillNode")
	}
	if !net.Stacks[3].Mac.Dead() {
		t.Fatal("killed node's MAC not marked dead")
	}
	// Idempotent, and the sink is protected.
	net.KillNode(3)
	net.KillNode(net.Sink)
	if !net.Alive(net.Sink) {
		t.Fatal("KillNode reached the sink")
	}
}

// TestRebootNodeReattaches kills the end-of-line node, reboots it with a
// fresh (amnesiac) stack, and verifies it rejoins the tree and regains a
// path code. A reboot of a live node must be a no-op.
func TestRebootNodeReattaches(t *testing.T) {
	scn := smallScenario(14)
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.Tele(7).Code(); !ok {
		t.Fatal("node 7 never converged; cannot test reboot")
	}
	net.KillNode(7)
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	net.RebootNode(7)
	if !net.Alive(7) {
		t.Fatal("RebootNode left the node dead")
	}
	// A rebooted mote loses all volatile state.
	if net.Stacks[7].Ctp.HasRoute() {
		t.Fatal("rebooted node retained a route")
	}
	if _, ok := net.Tele(7).Code(); ok {
		t.Fatal("rebooted node retained a path code")
	}
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if h := net.CTPHops(7); h <= 0 {
		t.Fatalf("rebooted node did not re-attach (hops %d)", h)
	}
	if _, ok := net.Tele(7).Code(); !ok {
		t.Fatal("rebooted node did not regain a path code")
	}
	// Rebooting a live node must not rebuild its stack.
	st := net.Stacks[7]
	net.RebootNode(7)
	if net.Stacks[7] != st {
		t.Fatal("reboot of a live node rebuilt the stack")
	}
}

func TestOracleBackedByMedium(t *testing.T) {
	scn := smallScenario(7)
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		t.Fatal(err)
	}
	o := net.Oracle()
	// On a 7 m line, node 3's radio neighbors are 2 and 4.
	ns := o.NeighborsOf(3)
	if len(ns) != 2 {
		t.Fatalf("neighbors of 3 = %v, want {2,4}", ns)
	}
	if q := o.LinkQuality(2, 3); q < 0.9 {
		t.Fatalf("adjacent link quality %v", q)
	}
	if q := o.LinkQuality(0, 7); q != 0 {
		t.Fatalf("49 m link quality %v, want 0", q)
	}
}

func TestScenarioConstructors(t *testing.T) {
	for _, s := range []Scenario{TightGrid(1), SparseLinear(1), Indoor(1, false), Indoor(1, true)} {
		if err := s.Dep.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if s.Mac.WakeInterval != 512*time.Millisecond {
			t.Fatalf("%s: wake interval %v, want 512ms (paper)", s.Name, s.Mac.WakeInterval)
		}
	}
	if TightGrid(1).Dep.Len() != 225 || SparseLinear(1).Dep.Len() != 225 {
		t.Fatal("simulation fields must have 225 nodes")
	}
	if Indoor(1, false).Dep.Len() != 40 {
		t.Fatal("indoor testbed must have 40 nodes")
	}
	if Indoor(1, true).WifiPowerDBm == 0 {
		t.Fatal("indoor-19 must enable the interferer")
	}
	if Indoor(1, false).WifiPowerDBm != 0 {
		t.Fatal("indoor-26 must not enable the interferer")
	}
}

func TestTreeAndCodeCoverageHelpers(t *testing.T) {
	scn := smallScenario(8)
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if c := net.TreeCoverage(); c < 0.99 {
		t.Fatalf("tree coverage %v", c)
	}
	if c := net.CodeCoverage(); c < 0.99 {
		t.Fatalf("code coverage %v", c)
	}
	// CTPHops on the line must be the index.
	for i := 1; i < 8; i++ {
		if h := net.CTPHops(radio.NodeID(i)); h != i {
			t.Fatalf("node %d hops = %d", i, h)
		}
	}
}

func TestScopeStudySmall(t *testing.T) {
	scn := smallScenario(9)
	opts := ScopeOpts{
		Warmup:     2 * time.Minute,
		Operations: 1,
		Settle:     45 * time.Second,
	}
	res, err := RunScopeStudy(scn, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations != 1 {
		t.Fatalf("operations = %d, want 1", res.Operations)
	}
	// On an 8-node line the depth-1 subtree is the whole chain below the
	// sink's child.
	if res.Members < 5 {
		t.Fatalf("members = %d, want the chain", res.Members)
	}
	if res.Coverage.Mean() < 0.7 {
		t.Fatalf("coverage %.2f", res.Coverage.Mean())
	}
	if res.TxPerMember <= 0 || res.UnicastTxPerMember <= 0 {
		t.Fatalf("costs not measured: %+v", res)
	}
	// Scoped flood amortizes: per-member cost below unicast per-member.
	if res.TxPerMember >= res.UnicastTxPerMember {
		t.Logf("note: scoped %.2f vs unicast %.2f tx/member (chain topology keeps them close)",
			res.TxPerMember, res.UnicastTxPerMember)
	}
}

func TestControlStudyWithDataTraffic(t *testing.T) {
	opts := ControlOpts{
		Warmup:   2 * time.Minute,
		Packets:  4,
		Interval: 16 * time.Second,
		Drain:    30 * time.Second,
		DataIPI:  20 * time.Second,
	}
	res, err := RunControlStudy(smallScenario(11), ProtoTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.PDR() < 0.7 {
		t.Fatalf("PDR %.2f with background data traffic", res.PDR())
	}
}

func TestControlStudyWithChurn(t *testing.T) {
	opts := ControlOpts{
		Warmup:    2 * time.Minute,
		Packets:   6,
		Interval:  16 * time.Second,
		Drain:     30 * time.Second,
		KillNodes: 1,
	}
	res, err := RunControlStudy(smallScenario(12), ProtoTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A line with a killed mid-node partitions; only completeness of the
	// accounting is asserted here (the indoor churn behaviour is covered
	// by the long test).
	if res.Sent == 0 {
		t.Fatal("nothing sent under churn")
	}
}
