package experiment

import (
	"bytes"
	"testing"
	"time"

	"teleadjust/internal/obs"
)

// convergenceOpts is the short control study used by the windowed
// aggregation tests; Window divides the run into a handful of windows.
func convergenceOpts() ControlOpts {
	return ControlOpts{
		Warmup:   90 * time.Second,
		Packets:  3,
		Interval: 16 * time.Second,
		Drain:    20 * time.Second,
		Window:   30 * time.Second,
	}
}

// renderConvergence serializes a report both ways (text + CSV) — the
// byte-identity comparisons cover every writer.
func renderConvergence(t *testing.T, r *obs.Report) []byte {
	t.Helper()
	if r == nil {
		t.Fatal("no convergence report collected")
	}
	var buf bytes.Buffer
	obs.WriteConvergenceReport(&buf, r)
	buf.WriteString("\n")
	if err := obs.WriteConvergenceCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestControlConvergenceGoldenLine pins a real run's windowed aggregates:
// the 8-node line study's convergence report and CSV are a pure function
// of the seed, like the trace goldens beside it.
func TestControlConvergenceGoldenLine(t *testing.T) {
	res, err := RunControlStudy(smallScenario(5), ProtoReTele, convergenceOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Convergence
	if r == nil {
		t.Fatal("Window set but no convergence report")
	}
	if r.CodedTotal() != 7 {
		t.Fatalf("line-8 coded %d/7 nodes", r.CodedTotal())
	}
	if r.ReportedTotal() == 0 {
		t.Fatal("no node ever reported its code to the sink")
	}
	checkGolden(t, "convergence_line.golden", renderConvergence(t, r))
}

// TestConvergenceSerialParallelByteIdentical extends the established
// replication regression bar to the windowed aggregates: a 4-seed study's
// merged convergence report must serialize to the same bytes on a serial
// runner and a 2-worker pool.
func TestConvergenceSerialParallelByteIdentical(t *testing.T) {
	seeds := DeriveSeeds(9, 4)
	opts := convergenceOpts()
	serial, err := Replicator{Workers: 1}.ControlStudy(Line, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Workers: 2}.ControlStudy(Line, ProtoReTele, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Convergence == nil || serial.Convergence.Runs != 4 {
		t.Fatalf("merged convergence = %+v", serial.Convergence)
	}
	sb := renderConvergence(t, serial.Convergence)
	pb := renderConvergence(t, parallel.Convergence)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("parallel windowed aggregates diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sb, pb)
	}
}

// TestWindowDisabledLeavesResultUntouched: without Window the study must
// not attach an aggregator or produce a report.
func TestWindowDisabledLeavesResultUntouched(t *testing.T) {
	opts := convergenceOpts()
	opts.Window = 0
	res, err := RunControlStudy(smallScenario(5), ProtoReTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Convergence != nil {
		t.Fatal("Window=0 still produced a convergence report")
	}
}
