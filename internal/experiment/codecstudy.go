package experiment

import (
	"fmt"
	"time"

	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
)

// CodecCell is one codec's column of the coding-schemes comparison on one
// scenario: code-length distribution after construction, label-churn and
// header-byte cost, and delivery accuracy under the same probe sequence
// every codec gets.
type CodecCell struct {
	Codec string
	// Converged is the fraction of non-sink nodes holding a path code at
	// the end of the construction phase.
	Converged float64
	// CodeLen is the per-node path-code length (bits) of converged nodes.
	CodeLen *stats.Series
	// Churn counts label-space changes that had to be re-announced:
	// bit-space extensions (paper codec) plus relabels (variable-length
	// codecs), summed network-wide over the whole run including the
	// mid-probe joins.
	Churn uint64
	// CodeChanges counts node code adoptions network-wide (cascaded
	// re-coding is the secondary cost of churn).
	CodeChanges uint64
	// HeaderBytes is the total destination path-code bytes put on the air
	// by control sends; ControlSends the matching send count.
	HeaderBytes  uint64
	ControlSends uint64

	Sent      int
	Delivered int
	Skipped   int
}

// HeaderBytesPerSend is the mean destination-code header cost of one
// control transmission.
func (c *CodecCell) HeaderBytesPerSend() float64 {
	if c.ControlSends == 0 {
		return 0
	}
	return float64(c.HeaderBytes) / float64(c.ControlSends)
}

// PDR returns the cell's probe delivery ratio.
func (c *CodecCell) PDR() float64 {
	if c.Sent == 0 {
		return 0
	}
	return float64(c.Delivered) / float64(c.Sent)
}

// CodingSchemesResult is the per-scenario codec comparison.
type CodingSchemesResult struct {
	Scenario string
	Codecs   []*CodecCell
}

// CodingSchemesOpts tunes a coding-schemes study.
type CodingSchemesOpts struct {
	// Warmup lets the tree and the code assignment converge before
	// measuring.
	Warmup time.Duration
	// Packets is the number of control probes sent per codec; Interval the
	// inter-probe interval and Drain the straggler allowance.
	Packets  int
	Interval time.Duration
	Drain    time.Duration
	// Joins, when positive, crash-reboots that many random non-sink nodes
	// at evenly spaced points of the probe phase. A rebooted node loses
	// its volatile state and re-joins the code tree, exercising each
	// codec's late-join path (the churn metric's stressor). The node
	// sequence is derived from the scenario seed, so every codec faces the
	// same joins.
	Joins int
}

// DefaultCodingSchemesOpts mirrors the control study's scaled-down
// defaults.
func DefaultCodingSchemesOpts() CodingSchemesOpts {
	return CodingSchemesOpts{
		Warmup:   4 * time.Minute,
		Packets:  20,
		Interval: 15 * time.Second,
		Drain:    time.Minute,
		Joins:    3,
	}
}

// RunCodingSchemesStudy runs one fresh TeleAdjusting network per codec on
// the scenario and compares code-length distribution, churn, header bytes
// on air, and delivery accuracy. Every codec's run draws destinations and
// join victims from the same seed-derived streams, so the cells differ
// only in the coding scheme.
func RunCodingSchemesStudy(scn Scenario, codecs []string, opts CodingSchemesOpts) (*CodingSchemesResult, error) {
	if len(codecs) == 0 {
		return nil, fmt.Errorf("experiment: no codecs given")
	}
	res := &CodingSchemesResult{Scenario: scn.Name}
	for _, codec := range codecs {
		cell, err := runCodecCell(scn, codec, opts)
		if err != nil {
			return nil, fmt.Errorf("codec %q: %w", codec, err)
		}
		res.Codecs = append(res.Codecs, cell)
	}
	return res, nil
}

func runCodecCell(scn Scenario, codec string, opts CodingSchemesOpts) (*CodecCell, error) {
	s := scn
	s.Codec = codec
	net, err := Build(s.config(ProtoTeleAdjust))
	if err != nil {
		return nil, err
	}
	delivery := &deliverySink{at: make(map[uint32]time.Duration)}
	net.Bus.Subscribe(delivery, telemetry.LayerRun)
	if scn.OnNetBuilt != nil {
		scn.OnNetBuilt(net)
	}
	net.Start()
	if err := net.Run(opts.Warmup); err != nil {
		return nil, err
	}

	cell := &CodecCell{Codec: codec, CodeLen: &stats.Series{}}

	// Construction-phase metrics: code-length distribution and coverage.
	withCode := 0
	for i := range net.Stacks {
		id := radio.NodeID(i)
		if id == net.Sink {
			continue
		}
		te := net.Tele(id)
		if te == nil {
			continue
		}
		if code, ok := te.Code(); ok {
			withCode++
			cell.CodeLen.Add(float64(code.Len()))
		}
	}
	cell.Converged = float64(withCode) / float64(net.Dep.Len()-1)

	// Delivery hooks publish run-layer events consumed by the delivery
	// sink, exactly like the control study.
	for i, st := range net.Stacks {
		id := radio.NodeID(i)
		if id == net.Sink || st.Ctrl == nil {
			continue
		}
		st.Ctrl.SetDeliveredFn(func(uid uint32, hops uint8) {
			net.Bus.Emit(telemetry.Event{Layer: telemetry.LayerRun,
				Kind: telemetry.KindOpDelivered, Node: id, Op: uid, Hops: hops})
		})
	}

	// Probe phase: the destination and join streams derive from the
	// scenario seed alone, so every codec's cell sees the same sequence.
	destRNG := sim.DeriveRNG(scn.Seed, 0xc0dec)
	joinRNG := sim.DeriveRNG(scn.Seed, 0x10145)
	joinEvery := 0
	if opts.Joins > 0 {
		joinEvery = opts.Packets / (opts.Joins + 1)
		if joinEvery < 1 {
			joinEvery = 1
		}
	}
	joined := 0
	var sentUIDs []uint32
	ctrl := net.SinkCtrl()
	for p := 0; p < opts.Packets; p++ {
		if joinEvery > 0 && joined < opts.Joins && p > 0 && p%joinEvery == 0 {
			// Crash-reboot a random non-sink node: the fresh stack re-joins
			// the code tree, driving the codec's late-allocation path.
			for tries := 0; tries < 100; tries++ {
				v := radio.NodeID(joinRNG.IntN(net.Dep.Len()))
				if v != net.Sink && net.Alive(v) {
					joined++
					net.KillNode(v)
					net.RebootNode(v)
					break
				}
			}
		}
		dst := radio.BroadcastID
		for tries := 0; tries < 50*net.Dep.Len(); tries++ {
			v := radio.NodeID(destRNG.IntN(net.Dep.Len()))
			if v != net.Sink && net.Alive(v) {
				dst = v
				break
			}
		}
		if dst == radio.BroadcastID {
			cell.Skipped++
			if err := net.Run(opts.Interval); err != nil {
				return nil, err
			}
			continue
		}
		uid, err := ctrl.SendControl(dst, "adjust", func(protocol.Result) {})
		switch {
		case err == nil:
			cell.Sent++
			sentUIDs = append(sentUIDs, uid)
		default:
			// Undeliverable at send time (no code registered yet, e.g.
			// right after a join): counts against delivery accuracy.
			cell.Sent++
			cell.Skipped++
		}
		if err := net.Run(opts.Interval); err != nil {
			return nil, err
		}
	}
	if err := net.Run(opts.Drain); err != nil {
		return nil, err
	}

	for _, uid := range sentUIDs {
		if _, ok := delivery.at[uid]; ok {
			cell.Delivered++
		}
	}
	// Network-wide cost counters, read from the live stacks (a rebooted
	// node's pre-reboot counts are lost with its volatile state — the same
	// accounting for every codec).
	for i := range net.Stacks {
		te := net.Tele(radio.NodeID(i))
		if te == nil {
			continue
		}
		st := te.Stats()
		cell.Churn += st.SpaceExtensions + st.Relabels
		cell.CodeChanges += st.CodeChanges
		cell.ControlSends += st.ControlSends
		cell.HeaderBytes += st.HeaderBytes
	}
	return cell, nil
}

// mergeCodingSchemesResults merges per-seed results in slice order; all
// inputs ran the same codec list.
func mergeCodingSchemesResults(results []*CodingSchemesResult) *CodingSchemesResult {
	var merged *CodingSchemesResult
	for _, res := range results {
		if merged == nil {
			merged = res
			continue
		}
		for i, cell := range res.Codecs {
			m := merged.Codecs[i]
			m.Converged += cell.Converged
			for _, v := range cell.CodeLen.Values() {
				m.CodeLen.Add(v)
			}
			m.Churn += cell.Churn
			m.CodeChanges += cell.CodeChanges
			m.HeaderBytes += cell.HeaderBytes
			m.ControlSends += cell.ControlSends
			m.Sent += cell.Sent
			m.Delivered += cell.Delivered
			m.Skipped += cell.Skipped
		}
	}
	if merged == nil {
		return nil
	}
	if n := len(results); n > 1 {
		for _, m := range merged.Codecs {
			m.Converged /= float64(n)
		}
	}
	return merged
}

// CodingSchemesStudy runs RunCodingSchemesStudy once per seed and merges
// the results in seed order.
func (r Replicator) CodingSchemesStudy(build func(seed uint64) Scenario, codecs []string, opts CodingSchemesOpts, seeds []uint64) (*CodingSchemesResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	results := make([]*CodingSchemesResult, len(seeds))
	err := r.each(len(seeds), func(i int) error {
		res, err := RunCodingSchemesStudy(build(seeds[i]), codecs, opts)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeCodingSchemesResults(results), nil
}

// RunCodingSchemesStudySeeds is the serial replication convenience.
func RunCodingSchemesStudySeeds(build func(seed uint64) Scenario, codecs []string, opts CodingSchemesOpts, seeds []uint64) (*CodingSchemesResult, error) {
	return Replicator{Workers: 1}.CodingSchemesStudy(build, codecs, opts, seeds)
}
