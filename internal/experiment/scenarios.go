package experiment

import (
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/fault"
	"teleadjust/internal/mac"
	"teleadjust/internal/noise"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/topology"
)

// Scenario bundles a deployment with calibrated physical and protocol
// parameters matching one of the paper's evaluation settings.
type Scenario struct {
	Name         string
	Dep          *topology.Deployment
	Radio        radio.Params
	Mac          mac.Config
	Ctp          ctp.Config
	Tele         core.Config
	Drip         drip.Config
	Rpl          rpl.Config
	NoiseSeed    uint64
	NoiseProfile *noise.TraceProfile // nil = meyer-heavy
	WifiPowerDBm float64
	// Codec selects the tree-coding scheme by name for TeleAdjusting
	// variants (empty = the paper's Algorithm 1).
	Codec string
	// Fault is an optional fault script applied to every network built
	// from this scenario (shared read-only across replicated runs).
	Fault *fault.Plan
	Seed  uint64
	// OnNetBuilt, when set, is invoked with the assembled network before
	// Start — the hook point for medium traces and custom instrumentation.
	OnNetBuilt func(*Net)
}

// TightGrid is the 225-node 200 m × 200 m "high gain" simulation field.
// RefLoss 35 dB with exponent 4 gives a ~32 m deterministic radio range,
// so the 13 m grid spacing yields a dense multi-hop network of ~5 hops to
// the central sink.
func TightGrid(seed uint64) Scenario {
	params := radio.DefaultParams()
	params.RefLossDB = 35
	c := ctp.DefaultConfig()
	// Static links (no fading): help beacons safely accelerate the
	// construction frontier across the 225-node field, and prompt
	// cost-change advertising keeps the code tree tracking the ETX tree.
	c.HelpBeaconDelta = 6
	c.CostChangeDelta = 3
	return Scenario{
		Name:      "tight-grid",
		Dep:       topology.TightGrid(seed),
		Radio:     params,
		Mac:       mac.DefaultConfig(),
		Ctp:       c,
		Tele:      core.DefaultConfig(),
		Drip:      drip.DefaultConfig(),
		Rpl:       rpl.DefaultConfig(),
		NoiseSeed: seed ^ 0x77,
		Seed:      seed,
	}
}

// ReferenceGrid is the 100-node reference scenario for command-plane
// throughput studies: a 10×10 jittered grid over 130 m × 130 m with the
// sink at the centre, using the same "high gain" radio calibration as
// TightGrid (~32 m range), giving a dense 3–4-hop network that converges
// quickly enough for load sweeps across many fresh networks.
func ReferenceGrid(seed uint64) Scenario {
	params := radio.DefaultParams()
	params.RefLossDB = 35
	c := ctp.DefaultConfig()
	c.HelpBeaconDelta = 6
	c.CostChangeDelta = 3
	return Scenario{
		Name:      "ref-grid-100",
		Dep:       topology.Grid("ref-grid-100", 10, 10, 130, 130, true, topology.Point{X: 65, Y: 65}, seed),
		Radio:     params,
		Mac:       mac.DefaultConfig(),
		Ctp:       c,
		Tele:      core.DefaultConfig(),
		Drip:      drip.DefaultConfig(),
		Rpl:       rpl.DefaultConfig(),
		NoiseSeed: seed ^ 0x77,
		Seed:      seed,
	}
}

// Grid1K is the 1024-node large-field scenario: a 32×32 jittered grid
// over 420 m × 420 m — the same node density and high-gain radio as
// ReferenceGrid, scaled to ~12 hops across. It selects the per-link gain
// model (radio.GainPerLink), so channel state is built from a spatial
// index in O(n·neighbors) rather than an n×n sweep; the interference
// floor is raised to −106 dBm to keep audible neighborhoods at ~60 m
// (~65 nodes) instead of letting thousand-node fields couple end to end.
func Grid1K(seed uint64) Scenario {
	params := radio.DefaultParams()
	params.RefLossDB = 35
	params.InterferenceFloorDBm = -106
	params.GainModel = radio.GainPerLink
	c := ctp.DefaultConfig()
	c.HelpBeaconDelta = 6
	c.CostChangeDelta = 3
	return Scenario{
		Name:      "grid-1k",
		Dep:       topology.Grid("grid-1k", 32, 32, 420, 420, true, topology.Point{X: 210, Y: 210}, seed),
		Radio:     params,
		Mac:       mac.DefaultConfig(),
		Ctp:       c,
		Tele:      core.DefaultConfig(),
		Drip:      drip.DefaultConfig(),
		Rpl:       rpl.DefaultConfig(),
		NoiseSeed: seed ^ 0x77,
		Seed:      seed,
	}
}

// Line is the 8-node line with deterministic links (no shadowing): big
// enough to exercise multi-hop control, small enough that many
// replications fit in one benchmark iteration. The replication and
// telemetry benchmarks and the profiling harness all run it, so its
// parameters are part of the recorded BENCH_* baselines — change them
// and the trajectories restart.
func Line(seed uint64) Scenario {
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	s := Scenario{
		Name:  "bench-line",
		Dep:   topology.Line(8, 7),
		Radio: params,
		Mac:   mac.DefaultConfig(),
		Ctp:   ctp.DefaultConfig(),
		Tele:  core.DefaultConfig(),
		Drip:  drip.DefaultConfig(),
		Rpl:   rpl.DefaultConfig(),
		Seed:  seed,
	}
	s.Tele.AllocDelay = 2 * 512 * time.Millisecond
	s.TuneControlTimeouts(15 * time.Second)
	return s
}

// SparseLinear is the 225-node 60 m × 600 m "low gain" field: RefLoss
// 42 dB shrinks the range to ~21 m, stretching the network to tens of
// hops along the long axis.
func SparseLinear(seed uint64) Scenario {
	params := radio.DefaultParams()
	params.RefLossDB = 42
	c := ctp.DefaultConfig()
	// Tens of hops along the 600 m axis: the route-validity caps must sit
	// well above the legitimate path depth and cost.
	c.MaxPathETX = 200
	c.MaxTHL = 96
	c.HelpBeaconDelta = 6
	c.CostChangeDelta = 3
	// Aggressive datapath loop healing: the long strip's frontier loops
	// congest and starve the hop-counting detector, so any cross-sender
	// duplicate breaks the route.
	c.DupLoopTHLDelta = 0
	return Scenario{
		Name:      "sparse-linear",
		Dep:       topology.SparseLinear(seed),
		Radio:     params,
		Mac:       mac.DefaultConfig(),
		Ctp:       c,
		Tele:      core.DefaultConfig(),
		Drip:      drip.DefaultConfig(),
		Rpl:       rpl.DefaultConfig(),
		NoiseSeed: seed ^ 0x77,
		Seed:      seed,
	}
}

// Indoor is the 40-node testbed at CC2420 power level 2, calibrated to a
// ≤6-hop diameter; wifi selects the interfered "channel 19" condition.
func Indoor(seed uint64, wifi bool) Scenario {
	params := radio.DefaultParams()
	params.PathLossExponent = 3.0
	params.RefLossDB = 30
	// Slow per-link fading models the bursty testbed links (people and
	// doors moving in an indoor environment).
	params.FadingSigmaDB = 1.5
	params.FadingMinPeriod = 15 * time.Second
	params.FadingMaxPeriod = 60 * time.Second
	m := mac.DefaultConfig()
	m.TxPowerDBm = radio.PowerLevelDBm(2)
	quiet := noise.QuietChannel()
	s := Scenario{
		Name:         "indoor-26",
		Dep:          topology.IndoorTestbed(seed),
		Radio:        params,
		Mac:          m,
		Ctp:          ctp.DefaultConfig(),
		Tele:         core.DefaultConfig(),
		Drip:         drip.DefaultConfig(),
		Rpl:          rpl.DefaultConfig(),
		NoiseSeed:    seed ^ 0x99,
		NoiseProfile: &quiet,
		Seed:         seed,
	}
	if wifi {
		s.Name = "indoor-19"
		s.WifiPowerDBm = -58
	}
	return s
}

// config builds a network Config from the scenario with the given
// protocol registry key.
func (s Scenario) config(p Proto) Config {
	return Config{
		Dep:            s.Dep,
		Radio:          s.Radio,
		Mac:            s.Mac,
		Ctp:            s.Ctp,
		Tele:           s.Tele,
		Drip:           s.Drip,
		Rpl:            s.Rpl,
		Protocol:       p,
		Codec:          s.Codec,
		NoiseTraceSeed: s.NoiseSeed,
		NoiseProfile:   s.NoiseProfile,
		WifiPowerDBm:   s.WifiPowerDBm,
		Fault:          s.Fault,
		Seed:           s.Seed,
	}
}

// TuneControlTimeouts shortens controller timeouts so failed operations
// (and the Re-Tele rescue) resolve within one inter-packet interval of a
// control study.
func (s *Scenario) TuneControlTimeouts(d time.Duration) {
	s.Tele.ControlTimeout = d
	s.Drip.ControlTimeout = d
	s.Rpl.ControlTimeout = d
}
