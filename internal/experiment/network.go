// Package experiment assembles complete simulated networks (radio medium,
// MAC, node runtime, CTP, and a registry-selected control protocol) and
// provides the scenario runners that regenerate every table and figure of
// the paper's evaluation.
package experiment

import (
	"fmt"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/fault"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/noise"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/sim"
	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
	"teleadjust/internal/topology"
)

// Config describes a network to build.
type Config struct {
	Dep   *topology.Deployment
	Radio radio.Params
	Mac   mac.Config
	Ctp   ctp.Config
	Tele  core.Config
	Drip  drip.Config
	Rpl   rpl.Config
	// Protocol selects the control protocol by registry key (ProtoNone
	// builds a collection-only network). Exactly one control protocol
	// runs per network: they all claim the sink's CTP delivery hook for
	// their end-to-end acks.
	Protocol Proto
	// Codec selects the tree-coding scheme by name for TeleAdjusting
	// variants (see core.CodecByName; empty means the paper's
	// Algorithm 1). Resolved into Tele.Codec at build time.
	Codec string
	// NoiseTraceSeed != 0 trains a CPM model on a synthetic noise trace
	// with that seed; 0 uses the constant quiet floor.
	NoiseTraceSeed uint64
	// NoiseTraceLen is the training trace length (default 60000 samples).
	NoiseTraceLen int
	// NoiseProfile selects the trace statistics (nil = meyer-heavy).
	NoiseProfile *noise.TraceProfile
	// WifiPowerDBm != 0 installs a WiFi interferer at that power (the
	// "channel 19" condition); 0 disables it.
	WifiPowerDBm float64
	// Fault, when non-nil, is a fault script scheduled on the engine at
	// build time (crashes, reboots, link perturbations, drop windows).
	// The plan is read-only and may be shared across replicated runs.
	Fault *fault.Plan
	Seed  uint64
}

// Stack is one node's protocol stack: the link layer, the dispatch
// runtime, the collection substrate, and the registry-built control
// protocol (nil for collection-only networks).
type Stack struct {
	Mac  *mac.MAC
	Node *node.Node
	Ctp  *ctp.CTP
	Ctrl protocol.ControlProtocol
}

// Net is an assembled network: one Stack per node over a shared medium.
type Net struct {
	Eng    *sim.Engine
	Medium *radio.Medium
	Dep    *topology.Deployment
	Sink   radio.NodeID
	Stacks []*Stack

	// Bus is the network's unified telemetry event stream: the medium's
	// radio tap, the MAC send lifecycle, and the control protocol's
	// operation spans all emit into it. With no subscribers it is
	// near-free (every emission dies on one mask test).
	Bus *telemetry.Bus
	// Metrics is the cross-layer metrics registry: protocol and MAC
	// counters are bound into it per node, and per-node radio duty-cycle
	// gauges read the medium directly (so they survive reboots).
	Metrics *telemetry.Registry

	cfg Config

	alive   []bool
	reboots []int
	inj     *fault.Injector

	dataTickers []*sim.Ticker
	dataIPI     time.Duration
	dataSeed    uint64
}

// Build assembles the network. Call Start before Run.
func Build(cfg Config) (*Net, error) {
	if cfg.Dep == nil {
		return nil, fmt.Errorf("experiment: no deployment")
	}
	if err := cfg.Dep.Validate(); err != nil {
		return nil, err
	}
	build, err := builderFor(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if cfg.Codec != "" {
		codec, err := core.CodecByName(cfg.Codec)
		if err != nil {
			return nil, err
		}
		cfg.Tele.Codec = codec
	}
	eng := sim.NewEngine()
	var model *noise.Model
	if cfg.NoiseTraceSeed != 0 {
		n := cfg.NoiseTraceLen
		if n <= 0 {
			n = 60000
		}
		profile := noise.MeyerHeavy()
		if cfg.NoiseProfile != nil {
			profile = *cfg.NoiseProfile
		}
		model = noise.Train(noise.GenerateTraceProfile(n, cfg.NoiseTraceSeed, profile))
	}
	med, err := radio.NewMedium(eng, cfg.Dep, model, cfg.Radio, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.WifiPowerDBm != 0 {
		med.SetInterferer(noise.NewWifiInterferer(sim.DeriveRNG(cfg.Seed, 0xbeef), cfg.WifiPowerDBm))
	}
	n := cfg.Dep.Len()
	net := &Net{
		Eng:     eng,
		Medium:  med,
		Dep:     cfg.Dep,
		Sink:    radio.NodeID(cfg.Dep.Sink),
		Stacks:  make([]*Stack, n),
		Bus:     telemetry.NewBus(eng.Now),
		Metrics: telemetry.NewRegistry(),
		cfg:     cfg,
	}
	// The radio tap costs one callback per frame event, so it is only
	// installed once something subscribes to the radio layer (the invariant
	// oracle, a span collector); until then the medium's trace hook stays
	// nil and frames cost nothing.
	net.Bus.OnLayerEnabled(telemetry.LayerRadio, func() {
		med.SetTraceFn(telemetry.RadioTap(net.Bus))
	})
	for i := 0; i < n; i++ {
		id := radio.NodeID(i)
		mcfg := cfg.Mac
		mcfg.AlwaysOn = cfg.Mac.AlwaysOn || id == net.Sink
		st := &Stack{}
		st.Mac = mac.New(eng, med.Radio(id), mcfg, sim.DeriveRNG(cfg.Seed, 0x1000+uint64(i)), nil)
		st.Node = node.New(eng, st.Mac)
		st.Ctp = ctp.New(st.Node, cfg.Ctp, sim.DeriveRNG(cfg.Seed, 0x2000+uint64(i)), id == net.Sink)
		if build != nil {
			st.Ctrl = build(&net.cfg, st.Node, st.Ctp, i)
		}
		net.wireTelemetry(st, id)
		net.Stacks[i] = st
	}
	net.alive = make([]bool, n)
	for i := range net.alive {
		net.alive[i] = true
	}
	net.reboots = make([]int, n)
	net.dataTickers = make([]*sim.Ticker, n)
	// The destination-unreachable countermeasure needs the controller's
	// assumed global topology knowledge at the sink.
	if te := net.SinkTele(); te != nil {
		te.SetOracle(net.Oracle())
	}
	if cfg.Fault != nil {
		net.inj = fault.NewInjector(eng, (*netTarget)(net), cfg.Seed)
		if err := net.inj.Schedule(cfg.Fault); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// telemetrySettable is implemented by stack components that bind their
// statistics into the registry and emit events onto the bus.
type telemetrySettable interface {
	SetTelemetry(*telemetry.Registry, *telemetry.Bus)
}

// wireTelemetry binds a (fresh) stack's counters into the registry and
// hands it the event bus. The per-node duty-cycle gauge reads the radio
// through the medium, which survives reboots — it measures the mote's
// energy history, not the current stack instance's.
func (n *Net) wireTelemetry(st *Stack, id radio.NodeID) {
	st.Mac.SetTelemetry(n.Metrics, n.Bus)
	if ts, ok := st.Ctrl.(telemetrySettable); ok {
		ts.SetTelemetry(n.Metrics, n.Bus)
	}
	r := n.Medium.Radio(id)
	eng := n.Eng
	n.Metrics.GaugeFunc(telemetry.LayerRadio, id, "duty-cycle", func() float64 {
		now := eng.Now()
		if now == 0 {
			return 0
		}
		return float64(r.OnTime()) / float64(now)
	})
	n.Metrics.GaugeFunc(telemetry.LayerRadio, id, "on-time-s", func() float64 {
		return r.OnTime().Seconds()
	})
}

// Start launches the MAC, the collection substrate, and the control
// protocol on every node.
func (n *Net) Start() {
	for _, st := range n.Stacks {
		st.Mac.Start()
		st.Ctp.Start()
		if st.Ctrl != nil {
			st.Ctrl.Start()
		}
	}
}

// dataReading is the background collection payload (the paper's concurrent
// data traffic); the sink-side hooks ignore it.
type dataReading struct {
	Seq int
}

// startDataTraffic begins periodic upward data packets from every live
// non-sink node at the given inter-packet interval, with random phases.
// Tickers are tracked per node so KillNode silences a dead node's
// application traffic too.
func (n *Net) startDataTraffic(ipi time.Duration, seed uint64) {
	n.dataIPI, n.dataSeed = ipi, seed
	rng := sim.DeriveRNG(seed, 0xda7a)
	for i := range n.Stacks {
		id := radio.NodeID(i)
		if id == n.Sink {
			continue
		}
		// The phase is drawn for dead nodes too, so a fault plan never
		// shifts the phases of the surviving nodes.
		phase := time.Duration(rng.Int64N(int64(ipi)))
		if !n.alive[i] {
			continue
		}
		n.startNodeData(id, phase)
	}
}

func (n *Net) startNodeData(id radio.NodeID, phase time.Duration) {
	c := n.Stacks[id].Ctp
	seq := 0
	tk := sim.NewTicker(n.Eng, n.dataIPI, func() {
		seq++
		_ = c.SendToSink(&dataReading{Seq: seq})
	})
	tk.StartWithOffset(phase)
	n.dataTickers[id] = tk
}

// KillNode models a node failure: every protocol stops, the node's
// application traffic ceases, pending MAC events are cancelled eagerly,
// and the radio goes dark immediately. Idempotent on a dead node. The
// sink cannot be killed through this path (partition it instead).
func (n *Net) KillNode(id radio.NodeID) {
	if id == n.Sink || !n.alive[id] {
		return
	}
	n.alive[id] = false
	if tk := n.dataTickers[id]; tk != nil {
		tk.Stop()
		n.dataTickers[id] = nil
	}
	st := n.Stacks[id]
	st.Ctp.Stop()
	if st.Ctrl != nil {
		st.Ctrl.Stop()
	}
	st.Mac.Kill()
}

// RebootNode resurrects a crashed node with a completely fresh protocol
// stack (a rebooted mote loses all volatile state: routes, codes, MAC
// phase). The fresh stack reuses the node's original seed streams, which
// keeps replicated runs deterministic. No-op on a live node.
func (n *Net) RebootNode(id radio.NodeID) {
	if n.alive[id] {
		return
	}
	i := int(id)
	n.reboots[i]++
	mcfg := n.cfg.Mac
	mcfg.AlwaysOn = n.cfg.Mac.AlwaysOn || id == n.Sink
	st := &Stack{}
	st.Mac = mac.New(n.Eng, n.Medium.Radio(id), mcfg, sim.DeriveRNG(n.cfg.Seed, 0x1000+uint64(i)), nil)
	st.Node = node.New(n.Eng, st.Mac)
	st.Ctp = ctp.New(st.Node, n.cfg.Ctp, sim.DeriveRNG(n.cfg.Seed, 0x2000+uint64(i)), id == n.Sink)
	if build, err := builderFor(n.cfg.Protocol); err == nil && build != nil {
		st.Ctrl = build(&n.cfg, st.Node, st.Ctp, i)
	}
	// Re-bind the fresh stack's counters: the registry replaces the dead
	// stack's bindings, modeling the volatile-state loss of a reboot.
	n.wireTelemetry(st, id)
	n.Stacks[i] = st
	n.alive[i] = true
	st.Mac.Start()
	st.Ctp.Start()
	if st.Ctrl != nil {
		st.Ctrl.Start()
	}
	if id == n.Sink {
		if te := n.SinkTele(); te != nil {
			te.SetOracle(n.Oracle())
		}
	}
	if n.dataIPI > 0 {
		// Fresh deterministic phase: derived from the node id and its
		// reboot count so repeated reboots do not replay each other.
		rng := sim.DeriveRNG(n.dataSeed, 0xda7a0+uint64(i)<<8+uint64(n.reboots[i]))
		n.startNodeData(id, time.Duration(rng.Int64N(int64(n.dataIPI))))
	}
}

// Alive reports whether the node has not been killed (or has been
// rebooted since).
func (n *Net) Alive(id radio.NodeID) bool { return n.alive[id] }

// FaultInjector returns the injector executing Config.Fault, or nil when
// the network was built without a plan.
func (n *Net) FaultInjector() *fault.Injector { return n.inj }

// InjectPlan schedules an additional fault plan against the running
// network. Plans whose state is only known mid-run (e.g. "crash the
// destination's current parent") cannot be written at build time; tests
// converge first, inspect the tree, and inject the plan they need. Event
// times are absolute simulation times; times already in the past fire
// immediately. Creates the injector lazily when the network was built
// without Config.Fault.
func (n *Net) InjectPlan(p *fault.Plan) error {
	if n.inj == nil {
		n.inj = fault.NewInjector(n.Eng, (*netTarget)(n), n.cfg.Seed)
	}
	return n.inj.Schedule(p)
}

// netTarget adapts Net to the fault injector's Target interface.
type netTarget Net

var _ fault.Target = (*netTarget)(nil)

func (t *netTarget) NumNodes() int          { return len(t.Stacks) }
func (t *netTarget) Crash(id radio.NodeID)  { (*Net)(t).KillNode(id) }
func (t *netTarget) Reboot(id radio.NodeID) { (*Net)(t).RebootNode(id) }
func (t *netTarget) AddLinkOffsetDB(from, to radio.NodeID, dB float64) {
	t.Medium.AddLinkOffsetDB(from, to, dB)
}
func (t *netTarget) SetDropFn(fn func(rx radio.NodeID, f *radio.Frame) bool) {
	t.Medium.SetDropFn(fn)
}

// Ctrl returns the node's control-protocol instance (nil for
// collection-only networks).
func (n *Net) Ctrl(id radio.NodeID) protocol.ControlProtocol { return n.Stacks[id].Ctrl }

// SinkCtrl returns the sink's control-protocol instance (the controller
// side of whatever protocol the network was built with).
func (n *Net) SinkCtrl() protocol.ControlProtocol { return n.Stacks[n.Sink].Ctrl }

// Tele returns the node's TeleAdjusting engine, or nil when the network
// runs a different (or no) control protocol. The coding and scope studies
// use it for path-code introspection beyond the uniform interface.
func (n *Net) Tele(id radio.NodeID) *core.Engine {
	te, _ := n.Stacks[id].Ctrl.(*core.Engine)
	return te
}

// SinkTele returns the sink's TeleAdjusting engine (controller side), or
// nil when the network runs a different protocol.
func (n *Net) SinkTele() *core.Engine { return n.Tele(n.Sink) }

// Drip returns the node's Drip instance, or nil for other stacks.
func (n *Net) Drip(id radio.NodeID) *drip.Drip {
	d, _ := n.Stacks[id].Ctrl.(*drip.Drip)
	return d
}

// SinkDrip returns the sink's Drip instance (controller side), or nil.
func (n *Net) SinkDrip() *drip.Drip { return n.Drip(n.Sink) }

// RPL returns the node's RPL instance, or nil for other stacks.
func (n *Net) RPL(id radio.NodeID) *rpl.RPL {
	r, _ := n.Stacks[id].Ctrl.(*rpl.RPL)
	return r
}

// SinkRPL returns the sink's RPL instance (controller side), or nil.
func (n *Net) SinkRPL() *rpl.RPL { return n.RPL(n.Sink) }

// Run advances the simulation by d.
func (n *Net) Run(d time.Duration) error {
	return n.Eng.Run(n.Eng.Now() + d)
}

// CTPHops walks the parent chain from id to the sink; -1 on detachment or
// loop.
func (n *Net) CTPHops(id radio.NodeID) int {
	cur := id
	for hops := 0; hops <= len(n.Stacks); hops++ {
		if cur == n.Sink {
			return hops
		}
		p := n.Stacks[cur].Ctp.Parent()
		if p == ctp.NoParent {
			return -1
		}
		cur = p
	}
	return -1
}

// TreeCoverage returns the fraction of non-sink nodes attached loop-free.
func (n *Net) TreeCoverage() float64 {
	attached := 0
	for i := range n.Stacks {
		if radio.NodeID(i) == n.Sink {
			continue
		}
		if n.CTPHops(radio.NodeID(i)) > 0 {
			attached++
		}
	}
	return float64(attached) / float64(len(n.Stacks)-1)
}

// CodeCoverage returns the fraction of non-sink nodes holding a path code
// (0 when the network does not run TeleAdjusting).
func (n *Net) CodeCoverage() float64 {
	have, teles := 0, 0
	for i := range n.Stacks {
		id := radio.NodeID(i)
		te := n.Tele(id)
		if te == nil || id == n.Sink {
			continue
		}
		teles++
		if _, ok := te.Code(); ok {
			have++
		}
	}
	if teles == 0 {
		return 0
	}
	return float64(have) / float64(len(n.Stacks)-1)
}

// controlTx sums the control protocol's logical transmissions
// network-wide (the Table III metric).
func (n *Net) controlTx() uint64 {
	var sum uint64
	for _, st := range n.Stacks {
		if st.Ctrl != nil {
			sum += st.Ctrl.ControlTx()
		}
	}
	return sum
}

// detailPerPacket sums the control protocol's diagnostic counters
// network-wide and normalizes them per sent packet.
func (n *Net) detailPerPacket(sent int) map[string]float64 {
	totals := make(map[string]uint64)
	for _, st := range n.Stacks {
		if st.Ctrl == nil {
			continue
		}
		for k, v := range st.Ctrl.Detail() {
			totals[k] += v
		}
	}
	d := make(map[string]float64, len(totals))
	for k, v := range totals {
		d[k+"/pkt"] = float64(v) / float64(max(1, sent))
	}
	return d
}

// collectATHX gathers Fig-8 samples recorded after phaseStart.
func (n *Net) collectATHX(sc *stats.Scatter, phaseStart time.Duration) {
	for i, st := range n.Stacks {
		id := radio.NodeID(i)
		if id == n.Sink || st.Ctrl == nil {
			continue
		}
		hops := n.CTPHops(id)
		if hops <= 0 {
			continue
		}
		for _, s := range st.Ctrl.ATHX() {
			if s.At >= phaseStart {
				sc.Add(float64(hops), float64(s.Hops))
			}
		}
	}
}

// mediumOracle adapts the radio medium to the controller's topology
// oracle.
type mediumOracle struct {
	med     *radio.Medium
	power   float64
	minLink float64
}

var _ core.Oracle = (*mediumOracle)(nil)

// Oracle returns a topology oracle backed by the simulation medium (the
// controller's assumed global knowledge).
func (n *Net) Oracle() core.Oracle {
	return &mediumOracle{med: n.Medium, power: n.cfg.Mac.TxPowerDBm, minLink: 0.2}
}

func (o *mediumOracle) NeighborsOf(id radio.NodeID) []radio.NodeID {
	var out []radio.NodeID
	for j := 0; j < o.med.NumNodes(); j++ {
		nid := radio.NodeID(j)
		if nid == id {
			continue
		}
		if o.med.ExpectedPRR(nid, id, o.power, 32) >= o.minLink {
			out = append(out, nid)
		}
	}
	return out
}

func (o *mediumOracle) LinkQuality(a, b radio.NodeID) float64 {
	return o.med.ExpectedPRR(a, b, o.power, 32)
}
