// Package experiment assembles complete simulated networks (radio medium,
// MAC, node runtime, CTP, TeleAdjusting, Drip, RPL) and provides the
// scenario runners that regenerate every table and figure of the paper's
// evaluation.
package experiment

import (
	"fmt"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/noise"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// Config describes a network to build.
type Config struct {
	Dep   *topology.Deployment
	Radio radio.Params
	Mac   mac.Config
	Ctp   ctp.Config
	Tele  core.Config
	Drip  drip.Config
	Rpl   rpl.Config
	// Exactly one control protocol is normally enabled per run (they all
	// claim the sink's CTP delivery hook for their end-to-end acks).
	WithTele bool
	WithDrip bool
	WithRPL  bool
	// NoiseTraceSeed != 0 trains a CPM model on a synthetic noise trace
	// with that seed; 0 uses the constant quiet floor.
	NoiseTraceSeed uint64
	// NoiseTraceLen is the training trace length (default 60000 samples).
	NoiseTraceLen int
	// NoiseProfile selects the trace statistics (nil = meyer-heavy).
	NoiseProfile *noise.TraceProfile
	// WifiPowerDBm != 0 installs a WiFi interferer at that power (the
	// "channel 19" condition); 0 disables it.
	WifiPowerDBm float64
	Seed         uint64
}

// Net is an assembled network.
type Net struct {
	Eng    *sim.Engine
	Medium *radio.Medium
	Dep    *topology.Deployment
	Sink   radio.NodeID

	Macs  []*mac.MAC
	Nodes []*node.Node
	Ctps  []*ctp.CTP
	Teles []*core.Engine // nil entries when WithTele is false
	Drips []*drip.Drip   // nil entries when WithDrip is false
	Rpls  []*rpl.RPL     // nil entries when WithRPL is false

	cfg Config
}

// Build assembles the network. Call Start before Run.
func Build(cfg Config) (*Net, error) {
	if cfg.Dep == nil {
		return nil, fmt.Errorf("experiment: no deployment")
	}
	if err := cfg.Dep.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	var model *noise.Model
	if cfg.NoiseTraceSeed != 0 {
		n := cfg.NoiseTraceLen
		if n <= 0 {
			n = 60000
		}
		profile := noise.MeyerHeavy()
		if cfg.NoiseProfile != nil {
			profile = *cfg.NoiseProfile
		}
		model = noise.Train(noise.GenerateTraceProfile(n, cfg.NoiseTraceSeed, profile))
	}
	med, err := radio.NewMedium(eng, cfg.Dep, model, cfg.Radio, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.WifiPowerDBm != 0 {
		med.SetInterferer(noise.NewWifiInterferer(sim.DeriveRNG(cfg.Seed, 0xbeef), cfg.WifiPowerDBm))
	}
	n := cfg.Dep.Len()
	net := &Net{
		Eng:    eng,
		Medium: med,
		Dep:    cfg.Dep,
		Sink:   radio.NodeID(cfg.Dep.Sink),
		Macs:   make([]*mac.MAC, n),
		Nodes:  make([]*node.Node, n),
		Ctps:   make([]*ctp.CTP, n),
		Teles:  make([]*core.Engine, n),
		Drips:  make([]*drip.Drip, n),
		Rpls:   make([]*rpl.RPL, n),
		cfg:    cfg,
	}
	for i := 0; i < n; i++ {
		id := radio.NodeID(i)
		mcfg := cfg.Mac
		mcfg.AlwaysOn = cfg.Mac.AlwaysOn || id == net.Sink
		net.Macs[i] = mac.New(eng, med.Radio(id), mcfg, sim.DeriveRNG(cfg.Seed, 0x1000+uint64(i)), nil)
		net.Nodes[i] = node.New(eng, net.Macs[i])
		net.Ctps[i] = ctp.New(net.Nodes[i], cfg.Ctp, sim.DeriveRNG(cfg.Seed, 0x2000+uint64(i)), id == net.Sink)
		if cfg.WithTele {
			net.Teles[i] = core.New(net.Nodes[i], net.Ctps[i], cfg.Tele, sim.DeriveRNG(cfg.Seed, 0x3000+uint64(i)))
		}
		if cfg.WithDrip {
			net.Drips[i] = drip.New(net.Nodes[i], net.Ctps[i], cfg.Drip, sim.DeriveRNG(cfg.Seed, 0x4000+uint64(i)))
		}
		if cfg.WithRPL {
			net.Rpls[i] = rpl.New(net.Nodes[i], net.Ctps[i], cfg.Rpl, sim.DeriveRNG(cfg.Seed, 0x5000+uint64(i)))
		}
	}
	if cfg.WithTele {
		net.Teles[net.Sink].SetOracle(net.Oracle())
	}
	return net, nil
}

// Start launches MACs and protocols on all nodes.
func (n *Net) Start() {
	for i := range n.Macs {
		n.Macs[i].Start()
		n.Ctps[i].Start()
		if n.Teles[i] != nil {
			n.Teles[i].Start()
		}
		if n.Rpls[i] != nil {
			n.Rpls[i].Start()
		}
	}
}

// dataReading is the background collection payload (the paper's concurrent
// data traffic); the sink-side hooks ignore it.
type dataReading struct {
	Seq int
}

// startDataTraffic begins periodic upward data packets from every live
// non-sink node at the given inter-packet interval, with random phases.
func (n *Net) startDataTraffic(ipi time.Duration, seed uint64) {
	rng := sim.DeriveRNG(seed, 0xda7a)
	for i := range n.Ctps {
		if radio.NodeID(i) == n.Sink {
			continue
		}
		c := n.Ctps[i]
		seq := 0
		tk := sim.NewTicker(n.Eng, ipi, func() {
			seq++
			_ = c.SendToSink(&dataReading{Seq: seq})
		})
		tk.StartWithOffset(time.Duration(rng.Int64N(int64(ipi))))
	}
}

// KillNode models a node failure: every protocol stops and the radio goes
// dark immediately.
func (n *Net) KillNode(id radio.NodeID) {
	i := int(id)
	n.Ctps[i].Stop()
	if n.Teles[i] != nil {
		n.Teles[i].Stop()
	}
	if n.Drips[i] != nil {
		n.Drips[i].Stop()
	}
	if n.Rpls[i] != nil {
		n.Rpls[i].Stop()
	}
	n.Macs[i].Kill()
}

// SinkDrip returns the sink's Drip instance (controller side).
func (n *Net) SinkDrip() *drip.Drip { return n.Drips[n.Sink] }

// SinkRPL returns the sink's RPL instance (controller side).
func (n *Net) SinkRPL() *rpl.RPL { return n.Rpls[n.Sink] }

// Run advances the simulation by d.
func (n *Net) Run(d time.Duration) error {
	return n.Eng.Run(n.Eng.Now() + d)
}

// SinkTele returns the sink's TeleAdjusting engine (controller side).
func (n *Net) SinkTele() *core.Engine { return n.Teles[n.Sink] }

// CTPHops walks the parent chain from id to the sink; -1 on detachment or
// loop.
func (n *Net) CTPHops(id radio.NodeID) int {
	cur := id
	for hops := 0; hops <= len(n.Ctps); hops++ {
		if cur == n.Sink {
			return hops
		}
		p := n.Ctps[cur].Parent()
		if p == ctp.NoParent {
			return -1
		}
		cur = p
	}
	return -1
}

// TreeCoverage returns the fraction of non-sink nodes attached loop-free.
func (n *Net) TreeCoverage() float64 {
	attached := 0
	for i := range n.Ctps {
		if radio.NodeID(i) == n.Sink {
			continue
		}
		if n.CTPHops(radio.NodeID(i)) > 0 {
			attached++
		}
	}
	return float64(attached) / float64(len(n.Ctps)-1)
}

// CodeCoverage returns the fraction of non-sink nodes holding a path code.
func (n *Net) CodeCoverage() float64 {
	if !n.cfg.WithTele {
		return 0
	}
	have := 0
	for i, t := range n.Teles {
		if radio.NodeID(i) == n.Sink {
			continue
		}
		if _, ok := t.Code(); ok {
			have++
		}
	}
	return float64(have) / float64(len(n.Teles)-1)
}

// mediumOracle adapts the radio medium to the controller's topology
// oracle.
type mediumOracle struct {
	med     *radio.Medium
	power   float64
	minLink float64
}

var _ core.Oracle = (*mediumOracle)(nil)

// Oracle returns a topology oracle backed by the simulation medium (the
// controller's assumed global knowledge).
func (n *Net) Oracle() core.Oracle {
	return &mediumOracle{med: n.Medium, power: n.cfg.Mac.TxPowerDBm, minLink: 0.2}
}

func (o *mediumOracle) NeighborsOf(id radio.NodeID) []radio.NodeID {
	var out []radio.NodeID
	for j := 0; j < o.med.NumNodes(); j++ {
		nid := radio.NodeID(j)
		if nid == id {
			continue
		}
		if o.med.ExpectedPRR(nid, id, o.power, 32) >= o.minLink {
			out = append(out, nid)
		}
	}
	return out
}

func (o *mediumOracle) LinkQuality(a, b radio.NodeID) float64 {
	return o.med.ExpectedPRR(a, b, o.power, 32)
}
