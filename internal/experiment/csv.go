package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"teleadjust/internal/stats"
)

// WriteByKeyCSV exports a grouped series as CSV rows
// (key,count,mean,min,max) for external plotting.
func WriteByKeyCSV(w io.Writer, b *stats.ByKey, keyName, valueName string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{keyName, "n", "mean_" + valueName, "min", "max"}); err != nil {
		return err
	}
	for _, k := range b.Keys() {
		s := b.Get(k)
		rec := []string{
			strconv.Itoa(k),
			strconv.Itoa(s.Count()),
			strconv.FormatFloat(s.Mean(), 'g', 6, 64),
			strconv.FormatFloat(s.Min(), 'g', 6, 64),
			strconv.FormatFloat(s.Max(), 'g', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScatterCSV exports a scatter cloud as CSV rows (x,y).
func WriteScatterCSV(w io.Writer, s *stats.Scatter, xName, yName string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{xName, yName}); err != nil {
		return err
	}
	for i := range s.Xs {
		rec := []string{
			strconv.FormatFloat(s.Xs[i], 'g', 6, 64),
			strconv.FormatFloat(s.Ys[i], 'g', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteControlCSV exports every per-hop series of a control study with a
// figure label column, one file for all of Fig 7/8/10.
func WriteControlCSV(w io.Writer, res *ControlResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "protocol", "scenario", "key", "n", "mean"}); err != nil {
		return err
	}
	emit := func(fig string, b *stats.ByKey) error {
		for _, k := range b.Keys() {
			s := b.Get(k)
			rec := []string{
				fig, res.Proto, res.Scenario,
				strconv.Itoa(k),
				strconv.Itoa(s.Count()),
				strconv.FormatFloat(s.Mean(), 'g', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("fig7_pdr", res.PDRByHop); err != nil {
		return err
	}
	if err := emit("fig10_latency", res.LatencyByHop); err != nil {
		return err
	}
	if err := emit("fig8_athx", res.ATHX.MeanYForX()); err != nil {
		return err
	}
	summary := []string{"table3_tx", res.Proto, res.Scenario, "0", strconv.Itoa(res.Sent),
		strconv.FormatFloat(res.TxPerPacket, 'g', 6, 64)}
	if err := cw.Write(summary); err != nil {
		return err
	}
	duty := []string{"fig9_duty", res.Proto, res.Scenario, "0", strconv.Itoa(res.Sent),
		strconv.FormatFloat(res.AvgDutyCycle, 'g', 6, 64)}
	if err := cw.Write(duty); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteThroughputCSV exports a throughput sweep, one row per load point:
// the offered-load vs goodput curve with latency percentiles and the
// command plane's loss accounting.
func WriteThroughputCSV(w io.Writer, res *ThroughputResult) error {
	cw := csv.NewWriter(w)
	header := []string{"protocol", "scenario", "mode", "dist", "point",
		"ops", "ok", "failed", "unroutable", "rejected", "expired", "retries", "unresolved",
		"offered_ops_s", "goodput_ops_s", "lat_p50_s", "lat_p95_s", "lat_p99_s", "wait_mean_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, pt := range res.Points {
		rec := []string{res.Proto, res.Scenario, res.Mode, res.Dist, pt.Label,
			strconv.Itoa(pt.Ops), strconv.Itoa(pt.OK), strconv.Itoa(pt.Failed),
			strconv.Itoa(pt.Unroutable), strconv.Itoa(pt.Rejected), strconv.Itoa(pt.Expired),
			strconv.Itoa(pt.Retries), strconv.Itoa(pt.Unresolved),
			f(pt.Offered), f(pt.Goodput),
			f(pt.Latency.P50()), f(pt.Latency.P95()), f(pt.Latency.P99()), f(pt.QueueWait.Mean())}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("throughput csv: %w", err)
	}
	return nil
}

// WriteServiceCSV exports a command-service study, one row per rate
// point with paired baseline/service columns.
func WriteServiceCSV(w io.Writer, res *ServiceResult) error {
	cw := csv.NewWriter(w)
	header := []string{"protocol", "scenario", "dist", "point", "ops",
		"offered_base_ops_s", "offered_svc_ops_s",
		"goodput_base_ops_s", "goodput_svc_ops_s", "speedup",
		"ok_base", "ok_svc", "failed_base", "failed_svc",
		"unresolved_base", "unresolved_svc",
		"shed", "delayed", "batches", "batched_cmds", "mean_batch",
		"cache_hits", "cache_misses", "cache_hit_rate",
		"lat_base_p50_s", "lat_svc_p50_s", "lat_base_p95_s", "lat_svc_p95_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, pt := range res.Points {
		rec := []string{res.Proto, res.Scenario, res.Dist, pt.Label,
			strconv.Itoa(pt.Ops),
			f(pt.OfferedBase), f(pt.Offered),
			f(pt.GoodputBase), f(pt.GoodputSvc), f(pt.Speedup()),
			strconv.Itoa(pt.OKBase), strconv.Itoa(pt.OKSvc),
			strconv.Itoa(pt.FailedBase), strconv.Itoa(pt.FailedSvc),
			strconv.Itoa(pt.UnresolvedBase), strconv.Itoa(pt.UnresolvedSvc),
			strconv.Itoa(pt.Shed), strconv.Itoa(pt.Delayed),
			strconv.Itoa(pt.Batches), strconv.Itoa(pt.BatchedCmds), f(pt.MeanBatch()),
			strconv.Itoa(pt.CacheHits), strconv.Itoa(pt.CacheMisses), f(pt.CacheHitRate()),
			f(pt.LatencyBase.P50()), f(pt.LatencySvc.P50()),
			f(pt.LatencyBase.P95()), f(pt.LatencySvc.P95())}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("service csv: %w", err)
	}
	return nil
}

// WriteCodingSchemesCSV exports codec comparisons under one header, one
// row per (scenario, codec) cell.
func WriteCodingSchemesCSV(w io.Writer, results ...*CodingSchemesResult) error {
	cw := csv.NewWriter(w)
	header := []string{"scenario", "codec", "converged",
		"len_p50", "len_p95", "len_max", "len_mean",
		"churn", "code_changes", "header_bytes", "control_sends", "hdr_bytes_per_send",
		"sent", "delivered", "skipped", "pdr"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, res := range results {
		for _, c := range res.Codecs {
			rec := []string{res.Scenario, c.Codec, f(c.Converged),
				f(c.CodeLen.P50()), f(c.CodeLen.P95()), f(c.CodeLen.Max()), f(c.CodeLen.Mean()),
				strconv.FormatUint(c.Churn, 10), strconv.FormatUint(c.CodeChanges, 10),
				strconv.FormatUint(c.HeaderBytes, 10), strconv.FormatUint(c.ControlSends, 10),
				f(c.HeaderBytesPerSend()),
				strconv.Itoa(c.Sent), strconv.Itoa(c.Delivered), strconv.Itoa(c.Skipped), f(c.PDR())}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("coding schemes csv: %w", err)
	}
	return nil
}

// WriteCodingCSV exports a coding study's per-hop series.
func WriteCodingCSV(w io.Writer, res *CodingResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "scenario", "key", "n", "mean"}); err != nil {
		return err
	}
	emit := func(fig string, b *stats.ByKey) error {
		for _, k := range b.Keys() {
			s := b.Get(k)
			rec := []string{
				fig, res.Scenario,
				strconv.Itoa(k),
				strconv.Itoa(s.Count()),
				strconv.FormatFloat(s.Mean(), 'g', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("fig6a_codelen", res.CodeLenByHop); err != nil {
		return err
	}
	if err := emit("fig6b_children", res.ChildrenByHop); err != nil {
		return err
	}
	if err := emit("fig6d_revhops", res.ReverseVsCTP.MeanYForX()); err != nil {
		return err
	}
	row := []string{"fig6c_convergence", res.Scenario, "0",
		strconv.Itoa(res.ConvergenceBeacons.Count()),
		strconv.FormatFloat(res.ConvergenceBeacons.Mean(), 'g', 6, 64)}
	if err := cw.Write(row); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("coding csv: %w", err)
	}
	return nil
}
