package experiment

import (
	"fmt"
	"sort"

	"teleadjust/internal/core"
	"teleadjust/internal/ctp"
	"teleadjust/internal/drip"
	"teleadjust/internal/node"
	"teleadjust/internal/protocol"
	"teleadjust/internal/rpl"
	"teleadjust/internal/sim"
)

// Proto is a control-protocol registry key. The experiment runners are
// protocol-agnostic: they build networks by key and drive whatever the
// registered builder returns through the protocol.ControlProtocol
// interface.
type Proto string

// Registry keys of the paper's comparison (Tele is TeleAdjusting without
// the destination-unreachable countermeasure, ReTele with it, TeleStrict
// the non-opportunistic ablation) plus the raw TeleAdjusting stack used by
// the coding and scope studies.
const (
	// ProtoNone builds a collection-only network without a control plane.
	ProtoNone Proto = ""
	// ProtoTeleAdjust runs TeleAdjusting exactly as the scenario
	// configures it (coding and scope studies; scenario defaults keep the
	// rescue countermeasure on).
	ProtoTeleAdjust Proto = "teleadjust"
	ProtoTele       Proto = "tele"
	ProtoReTele     Proto = "retele"
	ProtoTeleStrict Proto = "strict"
	ProtoDrip       Proto = "drip"
	ProtoRPL        Proto = "rpl"
)

// String returns the protocol's display name as used in the paper's
// figures.
func (p Proto) String() string {
	switch p {
	case ProtoNone:
		return "none"
	case ProtoTeleAdjust:
		return "TeleAdjusting"
	case ProtoTele:
		return "Tele"
	case ProtoReTele:
		return "Re-Tele"
	case ProtoTeleStrict:
		return "Tele-strict"
	case ProtoDrip:
		return "Drip"
	case ProtoRPL:
		return "RPL"
	}
	return string(p)
}

// Builder assembles one node's control-protocol instance during Build.
// Builders run once per node in node-index order and must derive their
// randomness from cfg.Seed and the node index (not from shared streams) so
// replications stay independent and reproducible.
type Builder func(cfg *Config, n *node.Node, c *ctp.CTP, idx int) protocol.ControlProtocol

var protoBuilders = map[Proto]Builder{}

// RegisterProtocol adds a control-protocol builder under a registry key.
// Keys are a global namespace; registering a duplicate panics.
func RegisterProtocol(p Proto, b Builder) {
	if p == ProtoNone {
		panic("experiment: cannot register the empty protocol key")
	}
	if b == nil {
		panic("experiment: nil protocol builder")
	}
	if _, dup := protoBuilders[p]; dup {
		panic(fmt.Sprintf("experiment: protocol %q registered twice", p))
	}
	protoBuilders[p] = b
}

// Protocols lists the registered protocol keys in sorted order.
func Protocols() []Proto {
	out := make([]Proto, 0, len(protoBuilders))
	for p := range protoBuilders {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// builderFor resolves a registry key; ProtoNone resolves to a nil builder.
func builderFor(p Proto) (Builder, error) {
	if p == ProtoNone {
		return nil, nil
	}
	b, ok := protoBuilders[p]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown protocol %q", p)
	}
	return b, nil
}

// teleBuilder returns a builder for a TeleAdjusting variant; tweak maps
// the scenario's core config to the variant's (the Rescue and
// Opportunistic switches of the paper's comparison).
func teleBuilder(tweak func(core.Config) core.Config) Builder {
	return func(cfg *Config, n *node.Node, c *ctp.CTP, idx int) protocol.ControlProtocol {
		return core.New(n, c, tweak(cfg.Tele), sim.DeriveRNG(cfg.Seed, 0x3000+uint64(idx)))
	}
}

func init() {
	RegisterProtocol(ProtoTeleAdjust, teleBuilder(func(c core.Config) core.Config {
		return c
	}))
	RegisterProtocol(ProtoTele, teleBuilder(func(c core.Config) core.Config {
		c.Rescue = false
		return c
	}))
	RegisterProtocol(ProtoReTele, teleBuilder(func(c core.Config) core.Config {
		c.Rescue = true
		return c
	}))
	RegisterProtocol(ProtoTeleStrict, teleBuilder(func(c core.Config) core.Config {
		c.Rescue = false
		c.Opportunistic = false
		return c
	}))
	RegisterProtocol(ProtoDrip, func(cfg *Config, n *node.Node, c *ctp.CTP, idx int) protocol.ControlProtocol {
		return drip.New(n, c, cfg.Drip, sim.DeriveRNG(cfg.Seed, 0x4000+uint64(idx)))
	})
	RegisterProtocol(ProtoRPL, func(cfg *Config, n *node.Node, c *ctp.CTP, idx int) protocol.ControlProtocol {
		return rpl.New(n, c, cfg.Rpl, sim.DeriveRNG(cfg.Seed, 0x5000+uint64(idx)))
	})
}
