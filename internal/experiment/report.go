package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"teleadjust/internal/stats"
)

// WriteCodingReport renders a coding study in the layout of the paper's
// Fig. 6 panels and Table II.
func WriteCodingReport(w io.Writer, res *CodingResult) {
	fmt.Fprintf(w, "=== Coding study: %s ===\n", res.Scenario)
	fmt.Fprintf(w, "converged: %.1f%% of nodes hold a path code\n\n", 100*res.Converged)
	fmt.Fprintln(w, "Fig 6a / Table II — path code length (bits) by CTP hop count:")
	fmt.Fprint(w, res.CodeLenByHop.Table("hops", "bits"))
	fmt.Fprintln(w, "\nFig 6b — children per node by hop:")
	fmt.Fprint(w, res.ChildrenByHop.Table("hops", "children"))
	if res.ConvergenceBeacons.Count() == 0 {
		fmt.Fprintln(w, "\nFig 6c — convergence: n=0 mean=n/a beacons p90=n/a max=n/a (no node converged)")
	} else {
		fmt.Fprintf(w, "\nFig 6c — convergence: n=%d mean=%.1f beacons p90=%.1f max=%.1f (paper: most <10, all ≤20)\n",
			res.ConvergenceBeacons.Count(), res.ConvergenceBeacons.Mean(),
			res.ConvergenceBeacons.Percentile(90), res.ConvergenceBeacons.Max())
	}
	fmt.Fprintf(w, "\nFig 6d — reverse vs CTP hop count: ratio=%.3f (paper: 1.08)\n", res.HopRatio)
	fmt.Fprint(w, res.ReverseVsCTP.MeanYForX().Table("ctp-hops", "rev-hops"))
}

// WriteControlReport renders one control study (one row of Fig. 7–10 and
// Table III).
func WriteControlReport(w io.Writer, res *ControlResult) {
	fmt.Fprintf(w, "=== Control study: %s on %s ===\n", res.Proto, res.Scenario)
	fmt.Fprintf(w, "sent=%d delivered=%d unroutable=%d PDR=%.1f%%\n",
		res.Sent, res.Delivered, res.Skipped, 100*res.PDR())
	fmt.Fprintln(w, "\nFig 7 — PDR by destination hop count:")
	fmt.Fprint(w, res.PDRByHop.Table("hops", "PDR"))
	fmt.Fprint(w, BarTable(res.PDRByHop, 1))
	fmt.Fprintln(w, "\nFig 10 — one-way latency (s) by hop:")
	fmt.Fprint(w, res.LatencyByHop.Table("hops", "latency"))
	fmt.Fprintf(w, "\nTable III — transmissions per control packet: %.2f\n", res.TxPerPacket)
	fmt.Fprintf(w, "Fig 9 — average radio duty cycle: %.2f%%\n", 100*res.AvgDutyCycle)
	fmt.Fprintf(w, "Fig 8 — ATHX (%d samples), mean transmissions travelled by receiver hop:\n", res.ATHX.Len())
	fmt.Fprint(w, res.ATHX.MeanYForX().Table("ctp-hops", "athx"))
	if len(res.Detail) > 0 {
		fmt.Fprintln(w, "diagnostics:")
		keys := make([]string, 0, len(res.Detail))
		for k := range res.Detail {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-22s %.3f\n", k, res.Detail[k])
		}
	}
}

// WriteComparisonSummary renders the cross-protocol summary rows the
// paper's Fig 7/9/10 and Table III compare.
func WriteComparisonSummary(w io.Writer, results []*ControlResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "--- %s: protocol comparison ---\n", results[0].Scenario)
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s\n", "protocol", "PDR", "tx/packet", "duty", "latency")
	for _, r := range results {
		lat, n := 0.0, 0
		for _, k := range r.LatencyByHop.Keys() {
			s := r.LatencyByHop.Get(k)
			lat += s.Mean() * float64(s.Count())
			n += s.Count()
		}
		avgLat := 0.0
		if n > 0 {
			avgLat = lat / float64(n)
		}
		fmt.Fprintf(w, "%-12s %7.1f%% %10.2f %9.2f%% %9.2fs\n",
			r.Proto, 100*r.PDR(), r.TxPerPacket, 100*r.AvgDutyCycle, avgLat)
	}
}

// WriteThroughputReport renders a throughput sweep: offered load vs
// goodput and latency percentiles per load point, plus the command
// plane's loss accounting.
func WriteThroughputReport(w io.Writer, res *ThroughputResult) {
	fmt.Fprintf(w, "=== Throughput study: %s on %s (%s loop, %s destinations) ===\n",
		res.Proto, res.Scenario, res.Mode, res.Dist)
	fmt.Fprintf(w, "%-10s %8s %9s %9s %8s %8s %8s %9s\n",
		"point", "ops", "offered", "goodput", "lat-p50", "lat-p95", "lat-p99", "wait-mean")
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%-10s %8d %8.3f/s %8.3f/s %7.2fs %7.2fs %7.2fs %8.2fs\n",
			pt.Label, pt.Ops, pt.Offered, pt.Goodput,
			pt.Latency.P50(), pt.Latency.P95(), pt.Latency.P99(), pt.QueueWait.Mean())
	}
	fmt.Fprintln(w, "\nloss accounting per point:")
	fmt.Fprintf(w, "%-10s %6s %6s %8s %8s %8s %8s %8s\n",
		"point", "ok", "fail", "unroute", "reject", "expire", "retries", "pending")
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%-10s %6d %6d %8d %8d %8d %8d %8d\n",
			pt.Label, pt.OK, pt.Failed, pt.Unroutable, pt.Rejected, pt.Expired, pt.Retries, pt.Unresolved)
	}
}

// WriteServiceReport renders a command-service study: per rate point the
// baseline-vs-service goodput comparison, then the service-side detail
// (admission decisions, batching, cache effectiveness).
func WriteServiceReport(w io.Writer, res *ServiceResult) {
	fmt.Fprintf(w, "=== Command service study: %s on %s (open loop, %s destinations) ===\n",
		res.Proto, res.Scenario, res.Dist)
	fmt.Fprintf(w, "%-10s %8s %10s %10s %8s %9s %9s\n",
		"point", "ops", "base", "service", "speedup", "lat-base", "lat-svc")
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%-10s %8d %9.3f/s %9.3f/s %7.2fx %8.2fs %8.2fs\n",
			pt.Label, pt.Ops, pt.GoodputBase, pt.GoodputSvc, pt.Speedup(),
			pt.LatencyBase.P50(), pt.LatencySvc.P50())
	}
	fmt.Fprintln(w, "\nservice detail per point:")
	fmt.Fprintf(w, "%-10s %6s %6s %6s %8s %9s %9s %8s\n",
		"point", "ok", "shed", "delay", "batches", "meanbatch", "cache-hit", "pending")
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%-10s %6d %6d %6d %8d %9.2f %8.1f%% %8d\n",
			pt.Label, pt.OKSvc, pt.Shed, pt.Delayed, pt.Batches,
			pt.MeanBatch(), 100*pt.CacheHitRate(), pt.UnresolvedSvc)
	}
}

// WriteScopeReport renders a scoped-dissemination study.
func WriteScopeReport(w io.Writer, res *ScopeStudyResult) {
	fmt.Fprintf(w, "=== Scoped dissemination: %s ===\n", res.Scenario)
	fmt.Fprintf(w, "operations=%d members=%d acked=%d mean-coverage=%.1f%%\n",
		res.Operations, res.Members, res.Acked, 100*res.Coverage.Mean())
	fmt.Fprintf(w, "scoped flood:       %.2f tx per addressed member\n", res.TxPerMember)
	fmt.Fprintf(w, "per-member unicast: %.2f tx per addressed member\n", res.UnicastTxPerMember)
}

// WriteCodingSchemesReport renders the per-scenario codec comparison: one
// row per tree-coding scheme with code-length percentiles, churn, header
// cost on air, and probe delivery accuracy.
func WriteCodingSchemesReport(w io.Writer, res *CodingSchemesResult) {
	fmt.Fprintf(w, "=== Coding schemes: %s ===\n", res.Scenario)
	fmt.Fprintf(w, "%-14s %6s %8s %8s %8s %7s %8s %10s %8s\n",
		"codec", "conv", "len-p50", "len-p95", "len-max", "churn", "recodes", "hdrB/send", "PDR")
	for _, c := range res.Codecs {
		fmt.Fprintf(w, "%-14s %5.1f%% %8.1f %8.1f %8.1f %7d %8d %10.2f %7.1f%%\n",
			c.Codec, 100*c.Converged,
			c.CodeLen.P50(), c.CodeLen.P95(), c.CodeLen.Max(),
			c.Churn, c.CodeChanges, c.HeaderBytesPerSend(), 100*c.PDR())
	}
	fmt.Fprintln(w, "\nmean code length (bits):")
	maxMean := 0.0
	for _, c := range res.Codecs {
		if m := c.CodeLen.Mean(); m > maxMean {
			maxMean = m
		}
	}
	if maxMean <= 0 {
		maxMean = 1
	}
	const width = 30
	for _, c := range res.Codecs {
		m := c.CodeLen.Mean()
		n := int(m / maxMean * width)
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "%-14s %8.3f %s\n", c.Codec, m, strings.Repeat("█", n))
	}
}

// BarTable renders a grouped series as an aligned table with ASCII bars
// scaled to the maximum mean (or scaleMax when positive) — a text
// rendition of the paper's bar figures.
func BarTable(b *stats.ByKey, scaleMax float64) string {
	const width = 30
	var sb strings.Builder
	maxMean := scaleMax
	if maxMean <= 0 {
		for _, k := range b.Keys() {
			if m := b.Get(k).Mean(); m > maxMean {
				maxMean = m
			}
		}
	}
	if maxMean <= 0 {
		maxMean = 1
	}
	for _, k := range b.Keys() {
		m := b.Get(k).Mean()
		n := int(m / maxMean * width)
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-8d %8.3f %s\n", k, m, strings.Repeat("█", n))
	}
	return sb.String()
}

// Indent prefixes every line of s.
func Indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
