package experiment

import (
	"sort"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/radio"
	"teleadjust/internal/stats"
)

// ScopeStudyResult evaluates the one-to-many extension: reconfiguring
// whole code subtrees with scoped floods versus per-member unicast control
// versus what a network-wide Drip flood would cost.
type ScopeStudyResult struct {
	Scenario string
	// Operations is the number of scoped operations performed.
	Operations int
	// Members accumulates subtree sizes addressed.
	Members int
	// Acked accumulates members acknowledged in time.
	Acked int
	// Coverage holds per-operation coverage samples.
	Coverage *stats.Series
	// TxPerMember is the scoped flood's transmissions per addressed member.
	TxPerMember float64
	// UnicastTxPerMember is the same work done with per-member SendControl.
	UnicastTxPerMember float64
}

// ScopeOpts tunes a scope study.
type ScopeOpts struct {
	Warmup time.Duration
	// Operations is how many subtrees to reconfigure (largest first).
	Operations int
	// Settle is the time allowed per operation.
	Settle time.Duration
}

// DefaultScopeOpts returns a moderate configuration.
func DefaultScopeOpts() ScopeOpts {
	return ScopeOpts{
		Warmup:     7 * time.Minute,
		Operations: 3,
		Settle:     90 * time.Second,
	}
}

// RunScopeStudy reconfigures the Operations largest depth-1 code subtrees,
// once via scoped floods and (on a twin network) once via per-member
// unicast, reporting coverage and cost.
func RunScopeStudy(scn Scenario, opts ScopeOpts) (*ScopeStudyResult, error) {
	res := &ScopeStudyResult{Scenario: scn.Name, Coverage: &stats.Series{}}

	// Pass 1: scoped floods.
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		return nil, err
	}
	net.Start()
	if err := net.Run(opts.Warmup); err != nil {
		return nil, err
	}
	scopes, memberSets := topScopes(net.SinkTele(), opts.Operations)
	txBase := net.controlTx()
	for i, scope := range scopes {
		done := false
		var r core.ScopeResult
		if _, err := net.SinkTele().SendScopeControl(scope, "reconfig", func(sr core.ScopeResult) {
			r = sr
			done = true
		}); err != nil {
			return nil, err
		}
		if err := net.Run(opts.Settle); err != nil {
			return nil, err
		}
		if !done {
			continue
		}
		res.Operations++
		res.Members += len(memberSets[i])
		res.Acked += len(r.Acked)
		res.Coverage.Add(r.Coverage())
	}
	if res.Members > 0 {
		res.TxPerMember = float64(net.controlTx()-txBase) / float64(res.Members)
	}

	// Pass 2: the same member sets via per-member unicast on a twin
	// network (same seed ⇒ same topology; tree details may differ).
	net2, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		return nil, err
	}
	net2.Start()
	if err := net2.Run(opts.Warmup); err != nil {
		return nil, err
	}
	tx2Base := net2.controlTx()
	addressed := 0
	for _, members := range memberSets {
		for _, id := range members {
			if _, err := net2.SinkTele().SendControl(id, "reconfig", nil); err != nil {
				continue
			}
			addressed++
			if err := net2.Run(12 * time.Second); err != nil {
				return nil, err
			}
		}
	}
	if err := net2.Run(30 * time.Second); err != nil {
		return nil, err
	}
	if addressed > 0 {
		res.UnicastTxPerMember = float64(net2.controlTx()-tx2Base) / float64(addressed)
	}
	return res, nil
}

// topScopes returns the n largest depth-1 subtree scopes in the
// controller's registry along with their member sets.
func topScopes(sink *core.Engine, n int) ([]core.PathCode, [][]radio.NodeID) {
	reg := sink.Registry()
	type subtree struct {
		scope   core.PathCode
		members []radio.NodeID
	}
	byPrefix := make(map[string]*subtree)
	for id, info := range reg {
		if info.Code.Len() < 2 {
			continue
		}
		// Depth-1 scope: the sink's code (1 bit) plus the first position
		// field. The field width varies; group by the full code of
		// depth-1 nodes instead: find each node's depth-1 ancestor prefix
		// by trying prefixes of increasing length present in the
		// registry.
		prefix := info.Code
		for _, other := range reg {
			if other.Code.Len() < prefix.Len() && other.Code.Len() >= 2 &&
				other.Code.IsPrefixOf(info.Code) {
				prefix = other.Code
			}
		}
		key := prefix.String()
		st, ok := byPrefix[key]
		if !ok {
			st = &subtree{scope: prefix}
			byPrefix[key] = st
		}
		st.members = append(st.members, id)
	}
	list := make([]*subtree, 0, len(byPrefix))
	for _, st := range byPrefix {
		list = append(list, st)
	}
	sort.Slice(list, func(i, j int) bool {
		if len(list[i].members) != len(list[j].members) {
			return len(list[i].members) > len(list[j].members)
		}
		return list[i].scope.String() < list[j].scope.String()
	})
	if len(list) > n {
		list = list[:n]
	}
	scopes := make([]core.PathCode, len(list))
	members := make([][]radio.NodeID, len(list))
	for i, st := range list {
		scopes[i] = st.scope
		members[i] = st.members
	}
	return scopes, members
}
