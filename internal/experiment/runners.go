package experiment

import (
	"errors"
	"fmt"
	"time"

	"teleadjust/internal/core"
	"teleadjust/internal/drip"
	"teleadjust/internal/radio"
	"teleadjust/internal/rpl"
	"teleadjust/internal/sim"
	"teleadjust/internal/stats"
)

// CodingResult aggregates the path-code experiments (Fig. 6a–d, Table II).
type CodingResult struct {
	Scenario string
	// CodeLenByHop groups path-code length (bits) by CTP hop count
	// (Fig. 6a, Table II).
	CodeLenByHop *stats.ByKey
	// ChildrenByHop groups per-node child counts by hop (Fig. 6b).
	ChildrenByHop *stats.ByKey
	// ConvergenceBeacons holds per-node beacon periods from the routing
	// found event to code assignment (Fig. 6c).
	ConvergenceBeacons *stats.Series
	// ReverseVsCTP scatters code-tree depth against CTP hop count
	// (Fig. 6d).
	ReverseVsCTP *stats.Scatter
	// HopRatio is mean(reverse hops)/mean(CTP hops) — the paper reports
	// 1.08.
	HopRatio float64
	// Converged is the fraction of non-sink nodes holding a code.
	Converged float64
}

// RunCodingStudy builds the scenario with TeleAdjusting, runs it for dur,
// and extracts the Fig-6/Table-II metrics.
func RunCodingStudy(scn Scenario, dur time.Duration) (*CodingResult, error) {
	net, err := Build(scn.config(true, false, false))
	if err != nil {
		return nil, err
	}
	if scn.OnNetBuilt != nil {
		scn.OnNetBuilt(net)
	}
	// Record each node's routing-found time.
	foundAt := make([]time.Duration, net.Dep.Len())
	for i := range foundAt {
		foundAt[i] = -1
	}
	for i := range net.Ctps {
		i := i
		net.Ctps[i].OnParentChange(func(old, new radio.NodeID) {
			if foundAt[i] < 0 {
				foundAt[i] = net.Eng.Now()
			}
		})
	}
	net.Start()
	if err := net.Run(dur); err != nil {
		return nil, err
	}

	res := &CodingResult{
		Scenario:           scn.Name,
		CodeLenByHop:       stats.NewByKey(),
		ChildrenByHop:      stats.NewByKey(),
		ConvergenceBeacons: &stats.Series{},
		ReverseVsCTP:       &stats.Scatter{},
	}
	var revSum, ctpSum float64
	var pairCount, withCode int
	for i := range net.Teles {
		id := radio.NodeID(i)
		if id == net.Sink {
			continue
		}
		hops := net.CTPHops(id)
		te := net.Teles[i]
		code, ok := te.Code()
		if ok {
			withCode++
			if hops > 0 {
				res.CodeLenByHop.Add(hops, float64(code.Len()))
				res.ReverseVsCTP.Add(float64(hops), float64(te.Depth()))
				revSum += float64(te.Depth())
				ctpSum += float64(hops)
				pairCount++
			}
			// Fig 6c measures per-node convergence: beacon periods from
			// when the node could start (it has a parent AND that parent
			// holds a code) to code assignment. Measuring from the node's
			// own routing-found alone would charge level k for the k−1
			// serial allocation delays above it.
			if at, has := te.CodeAssignedAt(); has && foundAt[i] >= 0 {
				start := foundAt[i]
				if el, hasEl := te.EligibleAt(); hasEl && el > start {
					start = el
				}
				if at >= start {
					beacons := float64(at-start) / float64(scn.Mac.WakeInterval)
					res.ConvergenceBeacons.Add(beacons)
				}
			}
		}
		if hops >= 0 {
			res.ChildrenByHop.Add(hops, float64(len(te.Children())))
		}
	}
	if ctpSum > 0 {
		res.HopRatio = revSum / ctpSum
	}
	_ = pairCount
	res.Converged = float64(withCode) / float64(net.Dep.Len()-1)
	return res, nil
}

// Proto selects the control protocol under test.
type Proto int

// Protocols of the comparison (Tele is TeleAdjusting without the
// destination-unreachable countermeasure, ReTele with it, TeleStrict the
// non-opportunistic ablation).
const (
	ProtoTele Proto = iota + 1
	ProtoReTele
	ProtoTeleStrict
	ProtoDrip
	ProtoRPL
)

// String returns the protocol's display name.
func (p Proto) String() string {
	switch p {
	case ProtoTele:
		return "Tele"
	case ProtoReTele:
		return "Re-Tele"
	case ProtoTeleStrict:
		return "Tele-strict"
	case ProtoDrip:
		return "Drip"
	case ProtoRPL:
		return "RPL"
	}
	return "unknown"
}

// ControlResult aggregates one control-plane run (Fig. 7–10, Table III).
type ControlResult struct {
	Proto    string
	Scenario string

	Sent      int
	Delivered int
	AckedOK   int
	Skipped   int // destinations without route/code at send time

	// PDRByHop groups delivery (1/0) by the destination's CTP hop count
	// (Fig. 7).
	PDRByHop *stats.ByKey
	// LatencyByHop groups one-way delivery latency (seconds) by hop
	// (Fig. 10).
	LatencyByHop *stats.ByKey
	// TxPerPacket is the network-wide logical transmissions per control
	// packet (Table III).
	TxPerPacket float64
	// AvgDutyCycle is the mean radio duty cycle over the control phase
	// (Fig. 9).
	AvgDutyCycle float64
	// ATHX scatters transmissions-travelled against the receiving node's
	// CTP hop count (Fig. 8).
	ATHX *stats.Scatter
	// Detail holds protocol-specific per-packet diagnostics (backtracks,
	// rescues, duplicate deliveries, DAO traffic, ...).
	Detail map[string]float64
}

// PDR returns the overall delivery ratio.
func (r *ControlResult) PDR() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// ControlOpts tunes a control study.
type ControlOpts struct {
	// Warmup lets the tree, codes, routes and registries converge.
	Warmup time.Duration
	// Packets is the number of control packets to send.
	Packets int
	// Interval is the inter-packet interval (paper: one per minute).
	Interval time.Duration
	// Drain is extra time after the last packet for stragglers.
	Drain time.Duration
	// KillNodes, when positive, fails that many random non-sink nodes at
	// evenly spaced points of the control phase (the "network dynamics"
	// stressor). Killed nodes are never chosen as destinations afterward.
	KillNodes int
	// DataIPI, when positive, makes every non-sink node originate an
	// upward data packet at this inter-packet interval during the control
	// phase (the paper's concurrent collection traffic; its testbed used
	// a 10-minute IPI).
	DataIPI time.Duration
}

// DefaultControlOpts returns a scaled-down version of the paper's 3-hour
// runs that preserves the statistics.
func DefaultControlOpts() ControlOpts {
	return ControlOpts{
		Warmup:   4 * time.Minute,
		Packets:  60,
		Interval: 15 * time.Second,
		Drain:    time.Minute,
	}
}

// RunControlStudy runs one protocol on the scenario and reports the
// Fig 7–10 / Table III metrics.
func RunControlStudy(scn Scenario, proto Proto, opts ControlOpts) (*ControlResult, error) {
	cfg := scn.config(false, false, false)
	switch proto {
	case ProtoTele:
		cfg.WithTele = true
		cfg.Tele.Rescue = false
	case ProtoReTele:
		cfg.WithTele = true
		cfg.Tele.Rescue = true
	case ProtoTeleStrict:
		cfg.WithTele = true
		cfg.Tele.Rescue = false
		cfg.Tele.Opportunistic = false
	case ProtoDrip:
		cfg.WithDrip = true
	case ProtoRPL:
		cfg.WithRPL = true
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %d", proto)
	}
	net, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	if scn.OnNetBuilt != nil {
		scn.OnNetBuilt(net)
	}
	net.Start()
	if err := net.Run(opts.Warmup); err != nil {
		return nil, err
	}
	if opts.DataIPI > 0 {
		net.startDataTraffic(opts.DataIPI, scn.Seed)
	}

	res := &ControlResult{
		Proto:        proto.String(),
		Scenario:     scn.Name,
		PDRByHop:     stats.NewByKey(),
		LatencyByHop: stats.NewByKey(),
		ATHX:         &stats.Scatter{},
	}

	// Snapshot baselines after warmup.
	phaseStart := net.Eng.Now()
	onBase := make([]time.Duration, net.Dep.Len())
	for i, m := range net.Macs {
		onBase[i] = m.RadioOnTime()
	}
	txBase := net.protoTxCount(proto)

	type sent struct {
		at   time.Duration
		dst  radio.NodeID
		hops int
	}
	sentByUID := make(map[uint32]*sent)
	deliveredAt := make(map[uint32]time.Duration)

	// Register delivered hooks once.
	switch proto {
	case ProtoTele, ProtoReTele, ProtoTeleStrict:
		for i, te := range net.Teles {
			if radio.NodeID(i) == net.Sink || te == nil {
				continue
			}
			te.SetDeliveredFn(func(uid uint32, hops uint8) {
				if _, ok := deliveredAt[uid]; !ok {
					deliveredAt[uid] = net.Eng.Now()
				}
			})
		}
	case ProtoDrip:
		for i, d := range net.Drips {
			if radio.NodeID(i) == net.Sink || d == nil {
				continue
			}
			d.SetDeliveredFn(func(uid uint32) {
				if _, ok := deliveredAt[uid]; !ok {
					deliveredAt[uid] = net.Eng.Now()
				}
			})
		}
	case ProtoRPL:
		for i, r := range net.Rpls {
			if radio.NodeID(i) == net.Sink || r == nil {
				continue
			}
			r.SetDeliveredFn(func(uid uint32, hops uint8) {
				if _, ok := deliveredAt[uid]; !ok {
					deliveredAt[uid] = net.Eng.Now()
				}
			})
		}
	}

	ackOK := 0
	destRNG := sim.DeriveRNG(scn.Seed, 0xd057)
	killRNG := sim.DeriveRNG(scn.Seed, 0x1c11)
	dead := make(map[radio.NodeID]bool)
	killEvery := 0
	if opts.KillNodes > 0 {
		killEvery = opts.Packets / (opts.KillNodes + 1)
		if killEvery < 1 {
			killEvery = 1
		}
	}
	killed := 0
	for p := 0; p < opts.Packets; p++ {
		if killEvery > 0 && killed < opts.KillNodes && p > 0 && p%killEvery == 0 {
			// Fail a random live non-sink node.
			for tries := 0; tries < 100; tries++ {
				v := radio.NodeID(killRNG.IntN(net.Dep.Len()))
				if v != net.Sink && !dead[v] {
					dead[v] = true
					killed++
					net.KillNode(v)
					break
				}
			}
		}
		// Pick a random live destination (uniform over non-sink nodes).
		var dst radio.NodeID
		for {
			dst = radio.NodeID(destRNG.IntN(net.Dep.Len()))
			if dst != net.Sink && !dead[dst] {
				break
			}
		}
		hops := net.CTPHops(dst)
		uid, err := net.sendControlCB(proto, dst, func(ok bool) {
			if ok {
				ackOK++
			}
		})
		switch {
		case err == nil:
			res.Sent++
			sentByUID[uid] = &sent{at: net.Eng.Now(), dst: dst, hops: hops}
		case errors.Is(err, rpl.ErrNoRoute):
			// The stored route evaporated: that is RPL's failure mode
			// under dynamics and counts against its delivery ratio, like
			// any other undeliverable packet.
			res.Sent++
			res.Skipped++
			h := hops
			if h < 1 {
				h = 1
			}
			res.PDRByHop.Add(h, 0)
		default:
			res.Skipped++
		}
		if err := net.Run(opts.Interval); err != nil {
			return nil, err
		}
	}
	if err := net.Run(opts.Drain); err != nil {
		return nil, err
	}

	// Aggregate.
	res.AckedOK = ackOK
	for uid, s := range sentByUID {
		at, ok := deliveredAt[uid]
		hop := s.hops
		if hop < 1 {
			hop = 1
		}
		if ok {
			res.Delivered++
			res.PDRByHop.Add(hop, 1)
			res.LatencyByHop.Add(hop, (at - s.at).Seconds())
		} else {
			res.PDRByHop.Add(hop, 0)
		}
	}
	res.TxPerPacket = float64(net.protoTxCount(proto)-txBase) / float64(max(1, res.Sent))
	res.Detail = net.protoDetail(proto, res.Sent)
	phaseDur := net.Eng.Now() - phaseStart
	var dutySum float64
	for i, m := range net.Macs {
		dutySum += float64(m.RadioOnTime()-onBase[i]) / float64(phaseDur)
	}
	res.AvgDutyCycle = dutySum / float64(len(net.Macs))
	net.collectATHX(proto, res.ATHX, phaseStart)
	return res, nil
}

// sendControlCB dispatches a control packet via the selected protocol,
// reporting the controller-side outcome (e2e ack or timeout) through cb.
func (n *Net) sendControlCB(proto Proto, dst radio.NodeID, cb func(ok bool)) (uint32, error) {
	switch proto {
	case ProtoTele, ProtoReTele, ProtoTeleStrict:
		return n.SinkTele().SendControl(dst, "adjust", func(r core.Result) { cb(r.OK) })
	case ProtoDrip:
		return n.SinkDrip().SendControl(dst, "adjust", func(r drip.Result) { cb(r.OK) })
	case ProtoRPL:
		return n.SinkRPL().SendControl(dst, "adjust", func(r rpl.Result) { cb(r.OK) })
	}
	return 0, fmt.Errorf("experiment: unknown protocol %d", proto)
}

// protoTxCount sums the protocol's logical control-plane transmissions
// network-wide (the Table III metric).
func (n *Net) protoTxCount(proto Proto) uint64 {
	var sum uint64
	switch proto {
	case ProtoTele, ProtoReTele, ProtoTeleStrict:
		for _, te := range n.Teles {
			if te != nil {
				s := te.Stats()
				sum += s.ControlSends + s.FeedbackSends
			}
		}
	case ProtoDrip:
		for _, d := range n.Drips {
			if d != nil {
				sum += d.Stats().Sends
			}
		}
	case ProtoRPL:
		for _, r := range n.Rpls {
			if r != nil {
				sum += r.Stats().DownSends
			}
		}
	}
	return sum
}

// RunControlStudySeeds runs the study across several seeds (fresh topology
// and channel per seed) and merges the results, reducing single-run
// variance the way the paper averages over at least 5 runs.
func RunControlStudySeeds(build func(seed uint64) Scenario, proto Proto, opts ControlOpts, seeds []uint64) (*ControlResult, error) {
	var merged *ControlResult
	var txSum, dutySum float64
	for _, seed := range seeds {
		res, err := RunControlStudy(build(seed), proto, opts)
		if err != nil {
			return nil, err
		}
		txSum += res.TxPerPacket
		dutySum += res.AvgDutyCycle
		if merged == nil {
			merged = res
			continue
		}
		merged.Sent += res.Sent
		merged.Delivered += res.Delivered
		merged.AckedOK += res.AckedOK
		merged.Skipped += res.Skipped
		merged.PDRByHop.Merge(res.PDRByHop)
		merged.LatencyByHop.Merge(res.LatencyByHop)
		merged.ATHX.Merge(res.ATHX)
	}
	if merged == nil {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	merged.TxPerPacket = txSum / float64(len(seeds))
	merged.AvgDutyCycle = dutySum / float64(len(seeds))
	return merged, nil
}

// RunCodingStudySeeds merges coding studies over several seeds.
func RunCodingStudySeeds(build func(seed uint64) Scenario, dur time.Duration, seeds []uint64) (*CodingResult, error) {
	var merged *CodingResult
	var ratioSum, convSum float64
	for _, seed := range seeds {
		res, err := RunCodingStudy(build(seed), dur)
		if err != nil {
			return nil, err
		}
		ratioSum += res.HopRatio
		convSum += res.Converged
		if merged == nil {
			merged = res
			continue
		}
		merged.CodeLenByHop.Merge(res.CodeLenByHop)
		merged.ChildrenByHop.Merge(res.ChildrenByHop)
		for _, v := range res.ConvergenceBeacons.Values() {
			merged.ConvergenceBeacons.Add(v)
		}
		merged.ReverseVsCTP.Merge(res.ReverseVsCTP)
	}
	if merged == nil {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	merged.HopRatio = ratioSum / float64(len(seeds))
	merged.Converged = convSum / float64(len(seeds))
	return merged, nil
}

// protoDetail gathers protocol-specific per-packet diagnostics.
func (n *Net) protoDetail(proto Proto, sent int) map[string]float64 {
	per := func(v uint64) float64 { return float64(v) / float64(max(1, sent)) }
	d := make(map[string]float64)
	switch proto {
	case ProtoTele, ProtoReTele, ProtoTeleStrict:
		var s core.Stats
		for _, te := range n.Teles {
			if te == nil {
				continue
			}
			t := te.Stats()
			s.Backtracks += t.Backtracks
			s.Rescues += t.Rescues
			s.ControlDupDeliv += t.ControlDupDeliv
			s.FeedbackSends += t.FeedbackSends
			s.SendFailures += t.SendFailures
		}
		d["backtracks/pkt"] = per(s.Backtracks)
		d["rescues/pkt"] = per(s.Rescues)
		d["dup-deliveries/pkt"] = per(s.ControlDupDeliv)
		d["feedbacks/pkt"] = per(s.FeedbackSends)
	case ProtoDrip:
		var sends, vers uint64
		for _, dr := range n.Drips {
			if dr == nil {
				continue
			}
			st := dr.Stats()
			sends += st.Sends
			vers += st.NewVersions
		}
		d["advertisements/pkt"] = per(sends)
	case ProtoRPL:
		var dao, noRoute, retry uint64
		for _, r := range n.Rpls {
			if r == nil {
				continue
			}
			st := r.Stats()
			dao += st.DAOSent
			noRoute += st.DropNoRoute
			retry += st.DropRetry
		}
		d["daos/pkt"] = per(dao)
		d["drops-no-route/pkt"] = per(noRoute)
		d["drops-retry/pkt"] = per(retry)
	}
	return d
}

// collectATHX gathers Fig-8 samples recorded after phaseStart.
func (n *Net) collectATHX(proto Proto, sc *stats.Scatter, phaseStart time.Duration) {
	for i := range n.Macs {
		id := radio.NodeID(i)
		if id == n.Sink {
			continue
		}
		hops := n.CTPHops(id)
		if hops <= 0 {
			continue
		}
		switch proto {
		case ProtoTele, ProtoReTele, ProtoTeleStrict:
			if te := n.Teles[i]; te != nil {
				for _, s := range te.ATHX() {
					if s.At >= phaseStart {
						sc.Add(float64(hops), float64(s.Hops))
					}
				}
			}
		case ProtoDrip:
			if d := n.Drips[i]; d != nil {
				for _, s := range d.ATHX() {
					if s.At >= phaseStart {
						sc.Add(float64(hops), float64(s.Hops))
					}
				}
			}
		case ProtoRPL:
			if r := n.Rpls[i]; r != nil {
				for _, s := range r.ATHX() {
					if s.At >= phaseStart {
						sc.Add(float64(hops), float64(s.Hops))
					}
				}
			}
		}
	}
}
