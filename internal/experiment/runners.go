package experiment

import (
	"errors"
	"io"
	"sort"
	"time"

	"teleadjust/internal/obs"
	"teleadjust/internal/protocol"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
)

// CodingResult aggregates the path-code experiments (Fig. 6a–d, Table II).
type CodingResult struct {
	Scenario string
	// CodeLenByHop groups path-code length (bits) by CTP hop count
	// (Fig. 6a, Table II).
	CodeLenByHop *stats.ByKey
	// ChildrenByHop groups per-node child counts by hop (Fig. 6b).
	ChildrenByHop *stats.ByKey
	// ConvergenceBeacons holds per-node beacon periods from the routing
	// found event to code assignment (Fig. 6c).
	ConvergenceBeacons *stats.Series
	// ReverseVsCTP scatters code-tree depth against CTP hop count
	// (Fig. 6d).
	ReverseVsCTP *stats.Scatter
	// HopRatio is mean(reverse hops)/mean(CTP hops) — the paper reports
	// 1.08.
	HopRatio float64
	// Converged is the fraction of non-sink nodes holding a code.
	Converged float64
}

// RunCodingStudy builds the scenario with TeleAdjusting, runs it for dur,
// and extracts the Fig-6/Table-II metrics.
func RunCodingStudy(scn Scenario, dur time.Duration) (*CodingResult, error) {
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		return nil, err
	}
	if scn.OnNetBuilt != nil {
		scn.OnNetBuilt(net)
	}
	// Record each node's routing-found time.
	foundAt := make([]time.Duration, net.Dep.Len())
	for i := range foundAt {
		foundAt[i] = -1
	}
	for i, st := range net.Stacks {
		i := i
		st.Ctp.OnParentChange(func(old, new radio.NodeID) {
			if foundAt[i] < 0 {
				foundAt[i] = net.Eng.Now()
			}
		})
	}
	net.Start()
	if err := net.Run(dur); err != nil {
		return nil, err
	}

	res := &CodingResult{
		Scenario:           scn.Name,
		CodeLenByHop:       stats.NewByKey(),
		ChildrenByHop:      stats.NewByKey(),
		ConvergenceBeacons: &stats.Series{},
		ReverseVsCTP:       &stats.Scatter{},
	}
	var revSum, ctpSum float64
	var withCode int
	for i := range net.Stacks {
		id := radio.NodeID(i)
		if id == net.Sink {
			continue
		}
		hops := net.CTPHops(id)
		te := net.Tele(id)
		code, ok := te.Code()
		if ok {
			withCode++
			if hops > 0 {
				res.CodeLenByHop.Add(hops, float64(code.Len()))
				res.ReverseVsCTP.Add(float64(hops), float64(te.Depth()))
				revSum += float64(te.Depth())
				ctpSum += float64(hops)
			}
			// Fig 6c measures per-node convergence: beacon periods from
			// when the node could start (it has a parent AND that parent
			// holds a code) to code assignment. Measuring from the node's
			// own routing-found alone would charge level k for the k−1
			// serial allocation delays above it.
			if at, has := te.CodeAssignedAt(); has && foundAt[i] >= 0 {
				start := foundAt[i]
				if el, hasEl := te.EligibleAt(); hasEl && el > start {
					start = el
				}
				if at >= start {
					beacons := float64(at-start) / float64(scn.Mac.WakeInterval)
					res.ConvergenceBeacons.Add(beacons)
				}
			}
		}
		if hops >= 0 {
			res.ChildrenByHop.Add(hops, float64(len(te.Children())))
		}
	}
	if ctpSum > 0 {
		res.HopRatio = revSum / ctpSum
	}
	res.Converged = float64(withCode) / float64(net.Dep.Len()-1)
	return res, nil
}

// ControlResult aggregates one control-plane run (Fig. 7–10, Table III).
type ControlResult struct {
	Proto    string
	Scenario string

	Sent      int
	Delivered int
	AckedOK   int
	Skipped   int // destinations without route/code at send time

	// PDRByHop groups delivery (1/0) by the destination's CTP hop count
	// (Fig. 7).
	PDRByHop *stats.ByKey
	// LatencyByHop groups one-way delivery latency (seconds) by hop
	// (Fig. 10).
	LatencyByHop *stats.ByKey
	// TxPerPacket is the network-wide logical transmissions per control
	// packet (Table III).
	TxPerPacket float64
	// AvgDutyCycle is the mean radio duty cycle over the control phase
	// (Fig. 9).
	AvgDutyCycle float64
	// ATHX scatters transmissions-travelled against the receiving node's
	// CTP hop count (Fig. 8).
	ATHX *stats.Scatter
	// Detail holds protocol-specific per-packet diagnostics (backtracks,
	// rescues, duplicate deliveries, DAO traffic, ...).
	Detail map[string]float64
	// Events is the collected telemetry stream of the control phase
	// (ControlOpts.Trace); merged seed runs carry their replication index
	// in Event.Run, appended in seed order.
	Events []telemetry.Event
	// Convergence is the streaming windowed aggregation of the run
	// (ControlOpts.Window): per-window per-layer rates plus the
	// depth-binned convergence probe. Merged seed runs sum windows in
	// seed order, keeping parallel replication byte-identical to serial.
	Convergence *obs.Report
}

// PDR returns the overall delivery ratio.
func (r *ControlResult) PDR() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// ControlOpts tunes a control study.
type ControlOpts struct {
	// Warmup lets the tree, codes, routes and registries converge.
	Warmup time.Duration
	// Packets is the number of control packets to send.
	Packets int
	// Interval is the inter-packet interval (paper: one per minute).
	Interval time.Duration
	// Drain is extra time after the last packet for stragglers.
	Drain time.Duration
	// KillNodes, when positive, fails that many random non-sink nodes at
	// evenly spaced points of the control phase (the "network dynamics"
	// stressor). Killed nodes are never chosen as destinations afterward.
	KillNodes int
	// DataIPI, when positive, makes every non-sink node originate an
	// upward data packet at this inter-packet interval during the control
	// phase (the paper's concurrent collection traffic; its testbed used
	// a 10-minute IPI).
	DataIPI time.Duration
	// Trace collects the core-layer operation spans and run-layer delivery
	// events of the whole run into ControlResult.Events (deterministic,
	// seed-merge safe; JSONL-exportable via telemetry.WriteJSONL).
	Trace bool
	// Window, when positive, attaches a streaming windowed aggregator to
	// every replication's bus: the full event stream (all layers,
	// including the coding-milestone probe) folds online into
	// ControlResult.Convergence without retaining events — the
	// observability path for runs too long or too large to trace.
	Window time.Duration
	// Progress, when non-nil with Window set, receives one live status
	// line per closed window. Single-replication runs only: replications
	// on a worker pool would interleave their lines nondeterministically.
	Progress io.Writer
}

// DefaultControlOpts returns a scaled-down version of the paper's 3-hour
// runs that preserves the statistics.
func DefaultControlOpts() ControlOpts {
	return ControlOpts{
		Warmup:   4 * time.Minute,
		Packets:  60,
		Interval: 15 * time.Second,
		Drain:    time.Minute,
	}
}

// RunControlStudy runs one protocol on the scenario and reports the
// Fig 7–10 / Table III metrics. The runner is protocol-agnostic: any
// registered protocol key works, and all interaction goes through the
// protocol.ControlProtocol interface.
func RunControlStudy(scn Scenario, proto Proto, opts ControlOpts) (*ControlResult, error) {
	net, err := Build(scn.config(proto))
	if err != nil {
		return nil, err
	}
	// The Fig-7/Fig-10 delivery bookkeeping consumes the unified telemetry
	// stream: the per-protocol delivered hooks (installed below) emit
	// run-layer delivery events, and this sink is their only consumer —
	// there is no second aggregation path.
	delivery := &deliverySink{at: make(map[uint32]time.Duration)}
	net.Bus.Subscribe(delivery, telemetry.LayerRun)
	var collector *telemetry.Collector
	if opts.Trace {
		collector = telemetry.NewCollector()
		net.Bus.Subscribe(collector, telemetry.LayerCore, telemetry.LayerRun)
	}
	var agg *obs.Aggregator
	if opts.Window > 0 {
		agg = obs.NewAggregator(net.Dep.Len(), opts.Window)
		if opts.Progress != nil {
			agg.OnWindow(obs.ProgressPrinter(opts.Progress, net.Dep.Len(), opts.Window))
		}
		agg.Attach(net.Bus)
	}
	if scn.OnNetBuilt != nil {
		scn.OnNetBuilt(net)
	}
	net.Start()
	if err := net.Run(opts.Warmup); err != nil {
		return nil, err
	}
	if opts.DataIPI > 0 {
		net.startDataTraffic(opts.DataIPI, scn.Seed)
	}

	res := &ControlResult{
		Proto:        proto.String(),
		Scenario:     scn.Name,
		PDRByHop:     stats.NewByKey(),
		LatencyByHop: stats.NewByKey(),
		ATHX:         &stats.Scatter{},
	}

	// Snapshot baselines after warmup. Radio on-time reads the registry's
	// per-node gauges (Fig 9 consumes the metrics plane).
	phaseStart := net.Eng.Now()
	onBase := make([]float64, net.Dep.Len())
	for i := range net.Stacks {
		onBase[i], _ = net.Metrics.Gauge(telemetry.LayerRadio, radio.NodeID(i), "on-time-s")
	}
	txBase := net.controlTx()

	type sent struct {
		at   time.Duration
		dst  radio.NodeID
		hops int
	}
	sentByUID := make(map[uint32]*sent)
	deliveredAt := delivery.at

	// Register delivered hooks once, uniformly over all stacks: each hook
	// publishes a run-layer delivery event onto the bus, which the
	// delivery sink (and an optional trace collector) consume.
	for i, st := range net.Stacks {
		id := radio.NodeID(i)
		if id == net.Sink || st.Ctrl == nil {
			continue
		}
		st.Ctrl.SetDeliveredFn(func(uid uint32, hops uint8) {
			net.Bus.Emit(telemetry.Event{Layer: telemetry.LayerRun,
				Kind: telemetry.KindOpDelivered, Node: id, Op: uid, Hops: hops})
		})
	}

	ackOK := 0
	destRNG := sim.DeriveRNG(scn.Seed, 0xd057)
	killRNG := sim.DeriveRNG(scn.Seed, 0x1c11)
	killEvery := 0
	if opts.KillNodes > 0 {
		killEvery = opts.Packets / (opts.KillNodes + 1)
		if killEvery < 1 {
			killEvery = 1
		}
	}
	killed := 0
	ctrl := net.SinkCtrl()
	for p := 0; p < opts.Packets; p++ {
		if killEvery > 0 && killed < opts.KillNodes && p > 0 && p%killEvery == 0 {
			// Fail a random live non-sink node. Liveness is tracked by the
			// network itself, so scripted fault-plan crashes and reboots
			// compose with the runner's own churn.
			for tries := 0; tries < 100; tries++ {
				v := radio.NodeID(killRNG.IntN(net.Dep.Len()))
				if v != net.Sink && net.Alive(v) {
					killed++
					net.KillNode(v)
					break
				}
			}
		}
		// Pick a random live destination (uniform over non-sink nodes). The
		// attempt bound guards against a fault plan that kills every
		// non-sink node; packets without a live destination are skipped.
		dst := radio.BroadcastID
		for tries := 0; tries < 50*net.Dep.Len(); tries++ {
			v := radio.NodeID(destRNG.IntN(net.Dep.Len()))
			if v != net.Sink && net.Alive(v) {
				dst = v
				break
			}
		}
		if dst == radio.BroadcastID {
			res.Skipped++
			if err := net.Run(opts.Interval); err != nil {
				return nil, err
			}
			continue
		}
		hops := net.CTPHops(dst)
		uid, err := ctrl.SendControl(dst, "adjust", func(r protocol.Result) {
			if r.OK {
				ackOK++
			}
		})
		switch {
		case err == nil:
			res.Sent++
			sentByUID[uid] = &sent{at: net.Eng.Now(), dst: dst, hops: hops}
		case errors.Is(err, protocol.ErrNoRoute):
			// The stored route evaporated: that is the protocol's failure
			// mode under dynamics (RPL's storing mode, notably) and counts
			// against its delivery ratio, like any other undeliverable
			// packet.
			res.Sent++
			res.Skipped++
			h := hops
			if h < 1 {
				h = 1
			}
			res.PDRByHop.Add(h, 0)
		default:
			res.Skipped++
		}
		if err := net.Run(opts.Interval); err != nil {
			return nil, err
		}
	}
	if err := net.Run(opts.Drain); err != nil {
		return nil, err
	}

	// Aggregate in ascending-UID order so the result is independent of map
	// iteration order (byte-identical reports across runs and runners).
	res.AckedOK = ackOK
	uids := make([]uint32, 0, len(sentByUID))
	for uid := range sentByUID {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		s := sentByUID[uid]
		at, ok := deliveredAt[uid]
		hop := s.hops
		if hop < 1 {
			hop = 1
		}
		if ok {
			res.Delivered++
			res.PDRByHop.Add(hop, 1)
			res.LatencyByHop.Add(hop, (at - s.at).Seconds())
		} else {
			res.PDRByHop.Add(hop, 0)
		}
	}
	res.TxPerPacket = float64(net.controlTx()-txBase) / float64(max(1, res.Sent))
	res.Detail = net.detailPerPacket(res.Sent)
	phaseDur := (net.Eng.Now() - phaseStart).Seconds()
	var dutySum float64
	for i := range net.Stacks {
		on, _ := net.Metrics.Gauge(telemetry.LayerRadio, radio.NodeID(i), "on-time-s")
		dutySum += (on - onBase[i]) / phaseDur
	}
	res.AvgDutyCycle = dutySum / float64(len(net.Stacks))
	net.collectATHX(res.ATHX, phaseStart)
	if collector != nil {
		res.Events = collector.Events()
	}
	if agg != nil {
		res.Convergence = agg.Finalize(net.Eng.Now())
	}
	return res, nil
}

// deliverySink indexes run-layer delivery events by operation id: the
// first arrival per op is the Fig-10 one-way latency sample.
type deliverySink struct {
	at map[uint32]time.Duration
}

func (s *deliverySink) Consume(ev telemetry.Event) {
	if ev.Kind != telemetry.KindOpDelivered {
		return
	}
	if _, ok := s.at[ev.Op]; !ok {
		s.at[ev.Op] = ev.At
	}
}

// mergeControlResults merges per-seed control results in slice order; the
// caller guarantees that order is the seed order regardless of which
// worker finished first, keeping the merge deterministic.
func mergeControlResults(results []*ControlResult) *ControlResult {
	var merged *ControlResult
	var txSum, dutySum float64
	// Telemetry events are concatenated in seed order, each tagged with
	// its replication index, so a parallel replication's merged stream is
	// byte-identical to the serial one.
	var events []telemetry.Event
	var convs []*obs.Report
	for ri, res := range results {
		for _, ev := range res.Events {
			ev.Run = ri
			events = append(events, ev)
		}
		if res.Convergence != nil {
			convs = append(convs, res.Convergence)
		}
	}
	for _, res := range results {
		txSum += res.TxPerPacket
		dutySum += res.AvgDutyCycle
		if merged == nil {
			merged = res
			continue
		}
		merged.Sent += res.Sent
		merged.Delivered += res.Delivered
		merged.AckedOK += res.AckedOK
		merged.Skipped += res.Skipped
		merged.PDRByHop.Merge(res.PDRByHop)
		merged.LatencyByHop.Merge(res.LatencyByHop)
		merged.ATHX.Merge(res.ATHX)
		for k, v := range res.Detail {
			merged.Detail[k] += v
		}
	}
	if merged == nil {
		return nil
	}
	merged.TxPerPacket = txSum / float64(len(results))
	merged.AvgDutyCycle = dutySum / float64(len(results))
	merged.Events = events
	merged.Convergence = obs.Merge(convs...)
	if len(results) > 1 {
		for k := range merged.Detail {
			merged.Detail[k] /= float64(len(results))
		}
	}
	return merged
}

// mergeCodingResults merges per-seed coding results in slice order.
func mergeCodingResults(results []*CodingResult) *CodingResult {
	var merged *CodingResult
	var ratioSum, convSum float64
	for _, res := range results {
		ratioSum += res.HopRatio
		convSum += res.Converged
		if merged == nil {
			merged = res
			continue
		}
		merged.CodeLenByHop.Merge(res.CodeLenByHop)
		merged.ChildrenByHop.Merge(res.ChildrenByHop)
		for _, v := range res.ConvergenceBeacons.Values() {
			merged.ConvergenceBeacons.Add(v)
		}
		merged.ReverseVsCTP.Merge(res.ReverseVsCTP)
	}
	if merged == nil {
		return nil
	}
	merged.HopRatio = ratioSum / float64(len(results))
	merged.Converged = convSum / float64(len(results))
	return merged
}

// RunControlStudySeeds runs the study across several seeds (fresh topology
// and channel per seed) and merges the results, reducing single-run
// variance the way the paper averages over at least 5 runs. Replications
// run serially; use Replicator for the parallel version.
func RunControlStudySeeds(build func(seed uint64) Scenario, proto Proto, opts ControlOpts, seeds []uint64) (*ControlResult, error) {
	return Replicator{Workers: 1}.ControlStudy(build, proto, opts, seeds)
}

// RunCodingStudySeeds merges coding studies over several seeds.
func RunCodingStudySeeds(build func(seed uint64) Scenario, dur time.Duration, seeds []uint64) (*CodingResult, error) {
	return Replicator{Workers: 1}.CodingStudy(build, dur, seeds)
}
